# Developer / CI entry points. `make check` is what CI runs.
GO ?= go

.PHONY: check vet build test race fuzz bench bench-smoke serve-selftest

check: vet build test race fuzz

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Execute the fuzz seed corpora as regression tests (no fuzzing time;
# use `go test -fuzz FuzzReadFrame ./internal/remote` to actually fuzz).
fuzz:
	$(GO) test -run Fuzz ./internal/remote ./internal/attest

bench:
	$(GO) test -bench . -benchtime 1x -run xxx .

# Quick gateway-throughput smoke: one iteration per case, cache off vs
# on. CI uploads the output so fast-path regressions are visible per-PR.
bench-smoke:
	$(GO) test -bench ServerThroughput -benchtime 1x -run xxx . | tee bench-smoke.txt

# One-command load check of the gateway networking path.
serve-selftest:
	$(GO) run ./cmd/raptrack serve -apps prime,gps,crc32 -selftest 16
