# Developer / CI entry points. `make check` is what CI runs.
GO ?= go

.PHONY: check vet staticcheck build test race fuzz fuzz-smoke fuzz-corpus chaos journal-chaos stream-chaos replay-selftest obs bench bench-smoke bench-verify bench-fleet bench-stream serve-selftest metrics-scrape

check: vet staticcheck build test race fuzz chaos journal-chaos

vet:
	$(GO) vet ./...

# staticcheck is optional locally: run it when installed, skip with a
# note otherwise. CI installs it, so `command -v` finds it there.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Execute the fuzz seed corpora as regression tests (no fuzzing time;
# use `go test -fuzz FuzzReadFrame ./internal/remote` to actually fuzz).
fuzz:
	$(GO) test -run Fuzz ./internal/remote ./internal/attest ./internal/core ./internal/trace/pipeline ./internal/router

# Short coverage-guided fuzzing of every target (one at a time: the Go
# fuzzer allows a single -fuzz pattern per package invocation). 30s per
# target keeps this inside a CI budget while still churning millions of
# execs over the checked-in seed corpora.
FUZZTIME ?= 30s
fuzz-smoke: fuzz
	$(GO) test -run xxx -fuzz FuzzReadFrame -fuzztime $(FUZZTIME) ./internal/remote
	$(GO) test -run xxx -fuzz FuzzParseBusy -fuzztime $(FUZZTIME) ./internal/remote
	$(GO) test -run xxx -fuzz FuzzDecodeVerdict -fuzztime $(FUZZTIME) ./internal/remote
	$(GO) test -run xxx -fuzz FuzzDecodeReport -fuzztime $(FUZZTIME) ./internal/attest
	$(GO) test -run xxx -fuzz FuzzDecodeChallenge -fuzztime $(FUZZTIME) ./internal/attest
	$(GO) test -run xxx -fuzz FuzzAutomatonDifferential -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run xxx -fuzz FuzzPipelineDecode -fuzztime $(FUZZTIME) ./internal/trace/pipeline
	$(GO) test -run xxx -fuzz FuzzRouterHello -fuzztime $(FUZZTIME) ./internal/router

# Regenerate the checked-in seed corpora under testdata/fuzz/.
fuzz-corpus:
	$(GO) run ./tools/fuzzcorpus

# Chaos suite: seeded fault injection across hardware, wire, and gateway
# plus the prover retry / breaker / quarantine resilience tests. Seeds
# are pinned in the tests, so -count=2 re-runs the same schedules — what
# it actually shakes out is goroutine scheduling under -race.
chaos:
	$(GO) test -race -run 'Chaos|Faults' -count=2 ./internal/server ./internal/trace ./internal/faults

# Evidence-plane chaos: the crash-recovery matrix, the seeded disk-fault
# schedules (short writes, fsync storms, torn tails, bit flips), and the
# gateway-under-journal-failure integration tests. Seeds are pinned;
# -count=2 shakes goroutine schedules under -race.
journal-chaos:
	$(GO) test -race -run 'Journal|Recovery|DiskFaults' -count=2 \
		./internal/journal ./internal/faults ./internal/server

# Streaming chaos: hostile slice schedules (loss, reorder, duplication,
# truncation, dropped heal acks) against the gateway's streaming plane,
# plus the heal lifecycle under -race. Zero false accepts is the
# invariant; seeds are pinned, -count=2 shakes goroutine schedules.
stream-chaos:
	$(GO) test -race -run 'StreamChaos|StreamingHeal|StreamingRoundTrip|StreamingMatchesBatch|StreamingJournalReplay' \
		-count=2 ./internal/server

# End-to-end evidence audit: run a journaling selftest, then re-verify
# every journaled verdict bit-for-bit from the evidence alone. Any diff
# (or chain break) fails the build.
replay-selftest:
	rm -rf replay-selftest.journal
	$(GO) run ./cmd/raptrack serve -apps prime,gps,crc32 -selftest 16 \
		-journal replay-selftest.journal
	$(GO) run ./cmd/raptrack replay -journal replay-selftest.journal

# Observability surface: the obs package tests (registry, exposition,
# tracing, admin endpoint) plus the gateway scrape-under-load race test.
obs:
	$(GO) test -race ./internal/obs
	$(GO) test -race -run 'MetricsScrapeUnderLoad' ./internal/server

# One selftest run with the admin endpoint up, persisting a real
# /metrics scrape. CI uploads the file so every PR carries a sample
# exposition to diff against.
metrics-scrape:
	$(GO) run ./cmd/raptrack serve -apps prime,gps,crc32 -selftest 16 \
		-admin 127.0.0.1:0 -metrics-out metrics-scrape.txt

bench:
	$(GO) test -bench . -benchtime 1x -run xxx .

# Quick gateway-throughput smoke: one iteration per case, cache off vs
# on. CI uploads the output so fast-path regressions are visible per-PR.
bench-smoke:
	$(GO) test -bench ServerThroughput -benchtime 1x -run xxx . | tee bench-smoke.txt

# Verifier-core engine matrix: interpreter vs compiled automaton, cache
# off/on, on frozen attested evidence. Writes BENCH_verify.json; CI
# uploads it so verifier-core regressions are visible per-PR.
bench-verify:
	$(GO) run ./cmd/benchsuite -fig verify -out BENCH_verify.json

# Fleet-scale attestation plane benchmark: differential (sharded vs
# single-gateway verdicts bit-identical), capacity scaling at 1/2/4
# shards, a 10k-prover diurnal wave + firmware-push herd, and a
# cross-shard cache-warming probe. The pinned -smoke profile finishes
# inside a minute on one core; CI uploads BENCH_fleet.json per-PR.
bench-fleet:
	$(GO) run ./cmd/fleetsim -smoke -out BENCH_fleet.json

# Streaming attestation plane: slices-to-detect distribution for a
# mid-run compromise plus honest streamed-session overhead vs the batch
# path (must stay under 10%). Writes BENCH_stream.json; CI uploads it so
# detection-latency regressions are visible per-PR.
bench-stream:
	$(GO) run ./cmd/benchsuite -fig stream -out BENCH_stream.json

# One-command load check of the gateway networking path.
serve-selftest:
	$(GO) run ./cmd/raptrack serve -apps prime,gps,crc32 -selftest 16
