# Developer / CI entry points. `make check` is what CI runs.
GO ?= go

.PHONY: check vet build test race fuzz chaos bench bench-smoke serve-selftest

check: vet build test race fuzz chaos

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Execute the fuzz seed corpora as regression tests (no fuzzing time;
# use `go test -fuzz FuzzReadFrame ./internal/remote` to actually fuzz).
fuzz:
	$(GO) test -run Fuzz ./internal/remote ./internal/attest

# Chaos suite: seeded fault injection across hardware, wire, and gateway
# plus the prover retry / breaker / quarantine resilience tests. Seeds
# are pinned in the tests, so -count=2 re-runs the same schedules — what
# it actually shakes out is goroutine scheduling under -race.
chaos:
	$(GO) test -race -run 'Chaos|Faults' -count=2 ./internal/server ./internal/trace ./internal/faults

bench:
	$(GO) test -bench . -benchtime 1x -run xxx .

# Quick gateway-throughput smoke: one iteration per case, cache off vs
# on. CI uploads the output so fast-path regressions are visible per-PR.
bench-smoke:
	$(GO) test -bench ServerThroughput -benchtime 1x -run xxx . | tee bench-smoke.txt

# One-command load check of the gateway networking path.
serve-selftest:
	$(GO) run ./cmd/raptrack serve -apps prime,gps,crc32 -selftest 16
