// Package raptrack is a full-system reproduction of "RAP-Track: Efficient
// Control Flow Attestation via Parallel Tracking in Commodity MCUs" (DAC
// 2025) on a simulated ARMv8-M platform.
//
// The public surface lives under internal/core (linking, attestation,
// verification), with the substrates in internal/{isa,asm,mem,tz,trace,
// cpu,cfg,linker,cfa,verify,attest,periph} and the evaluation machinery in
// internal/{apps,baseline,report}. See README.md for a tour, DESIGN.md for
// the architecture and hardware-substitution rationale, and EXPERIMENTS.md
// for the paper-versus-measured results.
//
// The benchmarks in bench_test.go regenerate every figure of the paper's
// evaluation; `go run ./cmd/benchsuite` prints them as labelled tables.
package raptrack
