module raptrack

go 1.22
