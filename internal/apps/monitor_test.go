package apps

import (
	"testing"

	"raptrack/internal/periph"
)

// refMonitor mirrors the monitor firmware tick-for-tick against the same
// deterministic peripheral models.
func refMonitor() (hostWords []uint32, gpioWrites int) {
	tempRng := periph.NewRand(0xFACE)
	tempRaw := uint32(512)
	readTemp := func() uint32 {
		delta := int32(tempRng.Intn(9)) - 4
		v := int32(tempRaw) + delta
		if v < 0 {
			v = 0
		}
		if v > 1023 {
			v = 1023
		}
		tempRaw = uint32(v)
		return tempRaw
	}
	geigRng := periph.NewRand(0xCAFE)
	geigerTick := func() uint32 {
		if geigRng.Intn(100) < 20 {
			return 1
		}
		return 0
	}
	ultraRng := periph.NewRand(0x5EED)
	measure := func() uint32 { return 10 + ultraRng.Intn(40-10+1) }

	script := append([]byte(nil), monitorScript...)
	pos := 0

	threshold := uint32(150)
	var alarms, events, cmds uint32
	var ring [8]uint32
	ewma := uint32(512)
	countdown := 10

	for i := 0; i < monIterations; i++ {
		raw := readTemp()
		ewma = (7*ewma + raw) >> 3
		events += geigerTick()
		countdown--
		if countdown == 0 {
			countdown = 10
			d := measure()
			ring[(uint32(i)/10)&7] = d
		}
		// handle_uart: one command per tick.
		if pos < len(script) {
			op := script[pos]
			pos++
			if op < 2 {
				switch op {
				case 0:
					threshold = uint32(script[pos])
					pos++
				case 1:
					hostWords = append(hostWords, alarms)
				}
				cmds++
			}
		}
		if ewma > threshold {
			alarms++
			gpioWrites++
		}
	}
	var ringSum uint32
	for _, v := range ring {
		ringSum += v
	}
	hostWords = append(hostWords, events, alarms, cmds, ringSum)
	return hostWords, gpioWrites
}

func TestMonitorReference(t *testing.T) {
	a, err := Get("monitor")
	if err != nil {
		t.Fatal(err)
	}
	c, dev, err := RunPlain(a)
	if err != nil {
		t.Fatal(err)
	}
	want, gpio := refMonitor()
	if len(dev.Host.Words) != len(want) {
		t.Fatalf("host words: got %v, want %v", dev.Host.Words, want)
	}
	for i := range want {
		if dev.Host.Words[i] != want[i] {
			t.Errorf("word %d = %d, want %d", i, dev.Host.Words[i], want[i])
		}
	}
	if dev.GPIO.Writes != gpio {
		t.Errorf("gpio writes = %d, want %d", dev.GPIO.Writes, gpio)
	}
	if c.Steps < 10_000 {
		t.Errorf("monitor should be the longest workload, got %d instructions", c.Steps)
	}
}
