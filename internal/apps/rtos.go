package apps

import (
	"raptrack/internal/asm"
	"raptrack/internal/isa"
	"raptrack/internal/mem"
	"raptrack/internal/periph"
)

// rtos is a cooperative RTOS-style scheduler — the multiplexed-task
// workload class (the control-flow shape of protothread/super-loop
// firmware: FreeRTOS-lite schedulers, Contiki protothreads).
//
// Branch mix (CFA-relevant): control flow is multiplexed across three
// protothreads by a scheduler that BLXes through a RAM-resident
// function-pointer table — indirect calls whose targets live in mutable
// memory, the classic JOP surface (the verifier's function-entry policy
// is what stands between this and a pivot). The report task adds a
// per-invocation LDRPC resume-point dispatch (protothread continuation),
// and the producer/consumer ring makes the filter task's branches
// data-dependent on peripheral values. The interleaving matters for
// SpecCFA: the repeating unit is a whole scheduler round that *spans
// task boundaries* (sense→filter→report), so mined sub-paths cross
// call/return edges instead of staying inside one loop body — a longer,
// rarer pattern than the tight loops of matmult/temperature.

// RAM layout for the rtos app (offsets from mem.NSDataBase).
const (
	rtosTaskTab  = 0x00 // 3 function pointers, written at init
	rtosWIdx     = 0x10 // ring write index (monotonic)
	rtosRIdx     = 0x14 // ring read index (monotonic)
	rtosEWMA     = 0x18 // filtered value
	rtosRState   = 0x1C // report protothread state (0 wait, 1 emit)
	rtosRCount   = 0x20 // report round counter
	rtosRing     = 0x40 // 8-word sample ring
	rtosRounds   = 40   // scheduler rounds
	rtosEmitWait = 6    // report emits every emitWait+1 rounds
)

func init() {
	register(App{
		Name: "rtos",
		Description: "cooperative scheduler: BLX through a RAM function-pointer table " +
			"multiplexes three protothreads; report task resumes via LDRPC state dispatch " +
			"(task-interleaved / mutable-pointer-table stress)",
		Build: buildRTOS,
		Setup: func(m *mem.Memory) *Devices {
			d := &Devices{
				Temp: periph.NewTemp(0x7E3A),
				Host: &periph.HostLink{},
			}
			m.Map(periph.TempBase, periph.DeviceWindow, d.Temp)
			m.Map(periph.HostLinkBase, periph.DeviceWindow, d.Host)
			return d
		},
	})
}

// Global register convention (set by main, read by every task):
//
//	R8 RAM base (NSDataBase)   R9 Temp base   R10 host-link base
//
// Tasks use only R0-R3 as scratch; the scheduler keeps its round and
// task counters in R4/R5 across the indirect calls.
func buildRTOS() *asm.Program {
	p := asm.NewProgram("rtos")
	p.AddData(&asm.DataSegment{
		Name: "report_states",
		Syms: []string{"task_report.r_wait", "task_report.r_emit"},
	})

	main := p.NewFunc("main")
	main.PUSH(isa.R4, isa.R5, isa.LR)
	main.MOV32(isa.R8, mem.NSDataBase)
	main.MOV32(isa.R9, periph.TempBase)
	main.MOV32(isa.R10, periph.HostLinkBase)

	// Populate the task table in RAM — the pointers the scheduler calls
	// through live in mutable memory from here on.
	main.LA(isa.R0, "task_sense")
	main.STRi(isa.R0, isa.R8, rtosTaskTab+0)
	main.LA(isa.R0, "task_filter")
	main.STRi(isa.R0, isa.R8, rtosTaskTab+4)
	main.LA(isa.R0, "task_report")
	main.STRi(isa.R0, isa.R8, rtosTaskTab+8)

	main.MOVi(isa.R0, 0)
	main.STRi(isa.R0, isa.R8, rtosWIdx)
	main.STRi(isa.R0, isa.R8, rtosRIdx)
	main.STRi(isa.R0, isa.R8, rtosEWMA)
	main.STRi(isa.R0, isa.R8, rtosRState)
	main.STRi(isa.R0, isa.R8, rtosRCount)

	main.MOVi(isa.R4, rtosRounds)
	main.Label("round_loop")
	main.MOVi(isa.R5, 0)
	main.Label("task_loop")
	main.LSLi(isa.R1, isa.R5, 2)
	main.LDRr(isa.R3, isa.R8, isa.R1) // fetch task pointer from RAM
	main.BLX(isa.R3)
	main.ADDi(isa.R5, isa.R5, 1)
	main.CMPi(isa.R5, 3)
	main.BLT("task_loop")
	main.SUBi(isa.R4, isa.R4, 1)
	main.CMPi(isa.R4, 0)
	main.BNE("round_loop")

	// Final report: the settled filter value.
	main.LDRi(isa.R0, isa.R8, rtosEWMA)
	main.STRi(isa.R0, isa.R10, periph.HostData)
	main.POP(isa.R4, isa.R5, isa.PC)

	// task_sense: producer protothread. Samples the sensor and admits even
	// readings into the ring (data-dependent accept/reject), dropping when
	// the ring is full.
	sense := p.NewFunc("task_sense")
	sense.LDRi(isa.R0, isa.R9, periph.TempSample)
	sense.MOVi(isa.R1, 1)
	sense.TST(isa.R0, isa.R1)
	sense.BNE("s_done") // odd sample: reject
	sense.LDRi(isa.R1, isa.R8, rtosWIdx)
	sense.LDRi(isa.R2, isa.R8, rtosRIdx)
	sense.SUBr(isa.R3, isa.R1, isa.R2)
	sense.CMPi(isa.R3, 8)
	sense.BGE("s_done") // ring full: drop
	sense.MOVi(isa.R2, 7)
	sense.ANDr(isa.R2, isa.R1, isa.R2)
	sense.LSLi(isa.R2, isa.R2, 2)
	sense.ADDi(isa.R2, isa.R2, rtosRing)
	sense.STRr(isa.R0, isa.R8, isa.R2)
	sense.ADDi(isa.R1, isa.R1, 1)
	sense.STRi(isa.R1, isa.R8, rtosWIdx)
	sense.Label("s_done")
	sense.RET()

	// task_filter: consumer protothread. Drains one ring entry per round
	// (when one exists) into an EWMA: ewma += (v - ewma) / 4, computed as
	// ewma - ewma>>2 + v>>2 in unsigned arithmetic.
	filter := p.NewFunc("task_filter")
	filter.LDRi(isa.R0, isa.R8, rtosWIdx)
	filter.LDRi(isa.R1, isa.R8, rtosRIdx)
	filter.CMPr(isa.R1, isa.R0)
	filter.BEQ("f_done") // ring empty
	filter.MOVi(isa.R2, 7)
	filter.ANDr(isa.R2, isa.R1, isa.R2)
	filter.LSLi(isa.R2, isa.R2, 2)
	filter.ADDi(isa.R2, isa.R2, rtosRing)
	filter.LDRr(isa.R3, isa.R8, isa.R2) // v
	filter.LDRi(isa.R2, isa.R8, rtosEWMA)
	filter.LSRi(isa.R0, isa.R2, 2)
	filter.SUBr(isa.R2, isa.R2, isa.R0)
	filter.LSRi(isa.R0, isa.R3, 2)
	filter.ADDr(isa.R2, isa.R2, isa.R0)
	filter.STRi(isa.R2, isa.R8, rtosEWMA)
	filter.ADDi(isa.R1, isa.R1, 1)
	filter.STRi(isa.R1, isa.R8, rtosRIdx)
	filter.Label("f_done")
	filter.RET()

	// task_report: protothread with an explicit continuation — each
	// invocation resumes at the state the previous one stored, via a
	// computed jump through report_states.
	report := p.NewFunc("task_report")
	report.LDRi(isa.R0, isa.R8, rtosRState)
	report.LA(isa.R2, "report_states")
	report.LDRPC(isa.R2, isa.R0)

	report.Label("r_wait")
	report.LDRi(isa.R1, isa.R8, rtosRCount)
	report.ADDi(isa.R1, isa.R1, 1)
	report.STRi(isa.R1, isa.R8, rtosRCount)
	report.CMPi(isa.R1, rtosEmitWait)
	report.BLT("r_done")
	report.MOVi(isa.R1, 1)
	report.STRi(isa.R1, isa.R8, rtosRState)
	report.Label("r_done")
	report.RET()

	report.Label("r_emit")
	report.LDRi(isa.R1, isa.R8, rtosEWMA)
	report.STRi(isa.R1, isa.R10, periph.HostData)
	report.MOVi(isa.R1, 0)
	report.STRi(isa.R1, isa.R8, rtosRCount)
	report.STRi(isa.R1, isa.R8, rtosRState)
	report.RET()

	return p
}
