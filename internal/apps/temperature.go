package apps

import (
	"encoding/binary"

	"raptrack/internal/asm"
	"raptrack/internal/isa"
	"raptrack/internal/mem"
	"raptrack/internal/periph"
)

func init() {
	register(App{
		Name: "temperature",
		Description: "Grove temperature sensor: 64 ADC samples, EWMA filter, " +
			"threshold-table conversion and periodic reports",
		Build: buildTemperature,
		Setup: func(m *mem.Memory) *Devices {
			d := &Devices{
				Temp: periph.NewTemp(0x7E3A),
				Host: &periph.HostLink{},
			}
			m.Map(periph.TempBase, periph.DeviceWindow, d.Temp)
			m.Map(periph.HostLinkBase, periph.DeviceWindow, d.Host)
			return d
		},
	})
}

// tempThresholds is the ADC-to-temperature conversion table: the index of
// the first threshold above the filtered reading is the reported
// temperature bucket. The final entry is a sentinel guaranteeing exit.
func tempThresholds() []byte {
	vals := []uint32{64, 128, 192, 256, 320, 384, 448, 512,
		576, 640, 704, 768, 832, 896, 960, 0xffff}
	out := make([]byte, 0, 4*len(vals))
	for _, v := range vals {
		out = binary.LittleEndian.AppendUint32(out, v)
	}
	return out
}

func buildTemperature() *asm.Program {
	p := asm.NewProgram("temperature")
	const samples = 64
	p.AddData(&asm.DataSegment{Name: "thresholds", Bytes: tempThresholds()})
	buckets := mem.NSDataBase // per-sample bucket history

	main := p.NewFunc("main")
	main.PUSH(isa.R4, isa.R5, isa.R6, isa.R7, isa.LR)
	main.MOV32(isa.R8, periph.TempBase)
	main.MOV32(isa.R10, periph.HostLinkBase)
	main.LA(isa.R9, "thresholds")
	main.MOV32(isa.R11, buckets)

	main.MOVi(isa.R4, 0)   // sample index
	main.MOVi(isa.R5, 512) // EWMA state
	main.MOVi(isa.R6, 8)   // report countdown
	main.Label("sample")
	main.LDRi(isa.R0, isa.R8, periph.TempSample)
	// ewma = (ewma*7 + raw) / 8
	main.MOVi(isa.R1, 7)
	main.MUL(isa.R5, isa.R5, isa.R1)
	main.ADDr(isa.R5, isa.R5, isa.R0)
	main.LSRi(isa.R5, isa.R5, 3)

	// Threshold-table scan (variable forward loop, trampolined).
	main.MOVi(isa.R2, 0) // bucket index
	main.Label("scan")
	main.LSLi(isa.R0, isa.R2, 2)
	main.LDRr(isa.R1, isa.R9, isa.R0)
	main.CMPr(isa.R5, isa.R1)
	main.BLT("found") // first threshold above the EWMA
	main.ADDi(isa.R2, isa.R2, 1)
	main.B("scan")
	main.Label("found")
	main.LSLi(isa.R0, isa.R4, 2)
	main.STRr(isa.R2, isa.R11, isa.R0) // buckets[i]

	main.SUBi(isa.R6, isa.R6, 1)
	main.CMPi(isa.R6, 0)
	main.BNE("no_report")
	main.MOVi(isa.R6, 8)
	main.STRi(isa.R2, isa.R10, periph.HostData) // periodic bucket report
	main.Label("no_report")
	main.ADDi(isa.R4, isa.R4, 1)
	main.CMPi(isa.R4, samples)
	main.BLT("sample") // not simple: data-dependent body

	// Average bucket over the run (simple loop).
	main.MOVi(isa.R4, 0)
	main.MOVi(isa.R7, 0)
	main.Label("avg")
	main.LSLi(isa.R0, isa.R4, 2)
	main.LDRr(isa.R1, isa.R11, isa.R0)
	main.ADDr(isa.R7, isa.R7, isa.R1)
	main.ADDi(isa.R4, isa.R4, 1)
	main.CMPi(isa.R4, samples)
	main.BLT("avg")
	main.LSRi(isa.R7, isa.R7, 6)

	main.STRi(isa.R7, isa.R10, periph.HostData)
	main.MOVr(isa.R0, isa.R7)
	main.POP(isa.R4, isa.R5, isa.R6, isa.R7, isa.PC)
	return p
}
