package apps

import (
	"raptrack/internal/asm"
	"raptrack/internal/isa"
	"raptrack/internal/mem"
	"raptrack/internal/periph"
)

// interrupt is interrupt-heavy firmware — the asynchronous-event
// workload class (the control-flow shape of NVIC-driven sensor nodes:
// a thin main loop that exists to service prioritized IRQs).
//
// The MCU model has no hardware exception entry, so the app implements
// a software NVIC: each tick latches pending bits (a stochastic
// radiation pulse plus deterministic timer and watchdog reloads), then
// a priority dispatch loop drains them highest-priority-first through a
// vector table of indirect calls.
//
// Branch mix (CFA-relevant): whether each ISR runs on a given tick is
// decided by peripheral data, so the trace is dominated by
// *asynchronously interleaved* call/return edges at unpredictable
// points — the pattern CFA papers single out because ISR preemption
// breaks the repeating packet sequences loop optimization and SpecCFA
// mining rely on. Two nested-exception shapes ride along: every fourth
// radiation event escalates by indirectly calling the watchdog ISR from
// inside the radiation ISR, and every fourth timer tick chains the
// watchdog through the vector table from inside the timer ISR — ISR→ISR
// indirect calls whose return path pops through two monitored frames.

// RAM layout for the interrupt app (offsets from mem.NSDataBase).
const (
	irqRadCount   = 0x0 // radiation ISR invocations
	irqTimerCount = 0x4 // timer ISR invocations
	irqWdogCount  = 0x8 // watchdog ISR invocations (incl. nested)

	irqTicks       = 60 // main-loop ticks
	irqTimerReload = 7  // timer fires every 7th tick
	irqWdogReload  = 19 // watchdog fires every 19th tick
	irqGeigerSeed  = 0x5EED1
	irqGeigerRate  = 30 // percent chance of a pulse per tick
)

func init() {
	register(App{
		Name: "interrupt",
		Description: "software-NVIC firmware: stochastic radiation IRQ plus timer and " +
			"watchdog reloads drain through a prioritized vector-table dispatch with " +
			"nested ISR-to-ISR calls (async-interleaving stress)",
		Build: buildInterrupt,
		Setup: func(m *mem.Memory) *Devices {
			d := &Devices{
				Geig: periph.NewGeiger(irqGeigerSeed, irqGeigerRate),
				Host: &periph.HostLink{},
			}
			m.Map(periph.GeigerBase, periph.DeviceWindow, d.Geig)
			m.Map(periph.HostLinkBase, periph.DeviceWindow, d.Host)
			return d
		},
	})
}

// Global register convention (set by main, read by ISRs):
//
//	R9 vector-table base   R10 host-link base   R11 RAM base
//
// main additionally keeps R4 tick counter, R5/R6 timer and watchdog
// down-counters, R7 pending mask, R8 Geiger base; ISRs clobber only
// R0-R3 (and LR where they nest).
func buildInterrupt() *asm.Program {
	p := asm.NewProgram("interrupt")
	p.AddData(&asm.DataSegment{
		Name: "ivec",
		Syms: []string{"isr_radiation", "isr_timer", "isr_watchdog"},
	})

	main := p.NewFunc("main")
	main.PUSH(isa.R4, isa.R5, isa.R6, isa.R7, isa.LR)
	main.MOV32(isa.R8, periph.GeigerBase)
	main.MOV32(isa.R10, periph.HostLinkBase)
	main.MOV32(isa.R11, mem.NSDataBase)
	main.LA(isa.R9, "ivec")
	main.MOVi(isa.R0, 0)
	main.STRi(isa.R0, isa.R11, irqRadCount)
	main.STRi(isa.R0, isa.R11, irqTimerCount)
	main.STRi(isa.R0, isa.R11, irqWdogCount)
	main.MOVi(isa.R4, irqTicks)
	main.MOVi(isa.R5, irqTimerReload)
	main.MOVi(isa.R6, irqWdogReload)
	main.MOVi(isa.R7, 0) // pending mask

	main.Label("tick_loop")
	// Latch interrupt sources for this tick.
	main.MOVi(isa.R0, 1)
	main.STRi(isa.R0, isa.R8, periph.GeigerTick) // advance detector time
	main.LDRi(isa.R0, isa.R8, periph.GeigerPulse)
	main.CMPi(isa.R0, 0)
	main.BEQ("no_rad")
	main.MOVi(isa.R0, 1)
	main.ORRr(isa.R7, isa.R7, isa.R0) // IRQ0: radiation (highest priority)
	main.Label("no_rad")
	main.SUBi(isa.R5, isa.R5, 1)
	main.CMPi(isa.R5, 0)
	main.BNE("no_timer")
	main.MOVi(isa.R5, irqTimerReload)
	main.MOVi(isa.R0, 2)
	main.ORRr(isa.R7, isa.R7, isa.R0) // IRQ1: timer
	main.Label("no_timer")
	main.SUBi(isa.R6, isa.R6, 1)
	main.CMPi(isa.R6, 0)
	main.BNE("no_wdog")
	main.MOVi(isa.R6, irqWdogReload)
	main.MOVi(isa.R0, 4)
	main.ORRr(isa.R7, isa.R7, isa.R0) // IRQ2: watchdog (lowest priority)
	main.Label("no_wdog")

	// Priority dispatch: drain pending bits lowest-bit-first through the
	// vector table until quiescent.
	main.Label("dispatch")
	main.CMPi(isa.R7, 0)
	main.BEQ("tick_next")
	main.MOVi(isa.R0, 1)
	main.TST(isa.R7, isa.R0)
	main.BEQ("try_timer")
	main.BICr(isa.R7, isa.R7, isa.R0)
	main.LDRi(isa.R3, isa.R9, 0)
	main.BLX(isa.R3)
	main.B("dispatch")
	main.Label("try_timer")
	main.MOVi(isa.R0, 2)
	main.TST(isa.R7, isa.R0)
	main.BEQ("try_wdog")
	main.BICr(isa.R7, isa.R7, isa.R0)
	main.LDRi(isa.R3, isa.R9, 4)
	main.BLX(isa.R3)
	main.B("dispatch")
	main.Label("try_wdog")
	// Only bit 2 can remain set here.
	main.MOVi(isa.R0, 4)
	main.BICr(isa.R7, isa.R7, isa.R0)
	main.LDRi(isa.R3, isa.R9, 8)
	main.BLX(isa.R3)
	main.B("dispatch")

	main.Label("tick_next")
	main.SUBi(isa.R4, isa.R4, 1)
	main.CMPi(isa.R4, 0)
	main.BNE("tick_loop")

	// Report: per-ISR service counts and a weighted checksum.
	main.LDRi(isa.R0, isa.R11, irqRadCount)
	main.STRi(isa.R0, isa.R10, periph.HostData)
	main.LDRi(isa.R1, isa.R11, irqTimerCount)
	main.STRi(isa.R1, isa.R10, periph.HostData)
	main.LDRi(isa.R2, isa.R11, irqWdogCount)
	main.STRi(isa.R2, isa.R10, periph.HostData)
	main.LSLi(isa.R3, isa.R0, 2)
	main.LSLi(isa.R1, isa.R1, 1)
	main.ADDr(isa.R3, isa.R3, isa.R1)
	main.ADDr(isa.R3, isa.R3, isa.R2)
	main.STRi(isa.R3, isa.R10, periph.HostData)
	main.POP(isa.R4, isa.R5, isa.R6, isa.R7, isa.PC)

	// IRQ0: every fourth radiation event escalates by calling the watchdog
	// ISR indirectly from inside this one (nested exception shape 1).
	rad := p.NewFunc("isr_radiation")
	rad.PUSH(isa.LR)
	rad.LDRi(isa.R0, isa.R11, irqRadCount)
	rad.ADDi(isa.R0, isa.R0, 1)
	rad.STRi(isa.R0, isa.R11, irqRadCount)
	rad.MOVi(isa.R1, 3)
	rad.ANDr(isa.R1, isa.R0, isa.R1)
	rad.CMPi(isa.R1, 0)
	rad.BNE("rad_done")
	rad.LA(isa.R3, "isr_watchdog")
	rad.BLX(isa.R3)
	rad.Label("rad_done")
	rad.POP(isa.PC)

	// IRQ1: every fourth service chains the watchdog through the vector
	// table from inside the handler (nested exception shape 2).
	tmr := p.NewFunc("isr_timer")
	tmr.PUSH(isa.LR)
	tmr.LDRi(isa.R0, isa.R11, irqTimerCount)
	tmr.ADDi(isa.R0, isa.R0, 1)
	tmr.STRi(isa.R0, isa.R11, irqTimerCount)
	tmr.MOVi(isa.R1, 3)
	tmr.ANDr(isa.R1, isa.R0, isa.R1)
	tmr.CMPi(isa.R1, 0)
	tmr.BNE("t_done")
	tmr.LDRi(isa.R3, isa.R9, 8)
	tmr.BLX(isa.R3)
	tmr.Label("t_done")
	tmr.POP(isa.PC)

	// IRQ2: leaf handler.
	wdog := p.NewFunc("isr_watchdog")
	wdog.LDRi(isa.R0, isa.R11, irqWdogCount)
	wdog.ADDi(isa.R0, isa.R0, 1)
	wdog.STRi(isa.R0, isa.R11, irqWdogCount)
	wdog.RET()

	return p
}
