package apps

import (
	"raptrack/internal/asm"
	"raptrack/internal/isa"
	"raptrack/internal/mem"
	"raptrack/internal/periph"
)

// Syringe pump command opcodes (first byte of each command).
const (
	cmdSetRate  = 0
	cmdDispense = 1
	cmdWithdraw = 2
	cmdStatus   = 3
)

// syringeScript is the host command stream the pump executes.
var syringeScript = []byte{
	cmdSetRate, 3,
	cmdStatus,
	cmdDispense, 8,
	cmdDispense, 5,
	cmdStatus,
	cmdWithdraw, 4,
	cmdSetRate, 2,
	cmdDispense, 12,
	cmdWithdraw, 30, // over-withdraw: exercises the clamp branch
	cmdStatus,
}

func init() {
	register(App{
		Name: "syringe",
		Description: "OpenSyringePump: UART command dispatch through function pointers, " +
			"stepper pulse loops with nested delays (loop-optimization beneficiary)",
		Build: buildSyringe,
		Setup: func(m *mem.Memory) *Devices {
			d := &Devices{
				UART: periph.NewUART(append([]byte(nil), syringeScript...)),
				GPIO: &periph.GPIO{},
				Host: &periph.HostLink{},
			}
			m.Map(periph.UARTBase, periph.DeviceWindow, d.UART)
			m.Map(periph.GPIOBase, periph.DeviceWindow, d.GPIO)
			m.Map(periph.HostLinkBase, periph.DeviceWindow, d.Host)
			return d
		},
	})
}

// Pump state in RAM: rate @ +0, dispensed-total @ +4.
func buildSyringe() *asm.Program {
	p := asm.NewProgram("syringe")
	state := mem.NSDataBase
	p.AddData(&asm.DataSegment{
		Name: "cmd_handlers",
		Syms: []string{"h_rate", "h_dispense", "h_withdraw", "h_status"},
	})

	main := p.NewFunc("main")
	main.PUSH(isa.LR)
	main.MOV32(isa.R8, periph.UARTBase)
	main.MOV32(isa.R9, periph.GPIOBase)
	main.MOV32(isa.R10, periph.HostLinkBase)
	main.MOV32(isa.R11, state)
	main.MOVi(isa.R0, 2)
	main.STRi(isa.R0, isa.R11, 0) // rate = 2
	main.MOVi(isa.R0, 0)
	main.STRi(isa.R0, isa.R11, 4) // total = 0

	main.Label("cmd_loop")
	main.LDRi(isa.R0, isa.R8, periph.UARTStatus)
	main.MOVi(isa.R1, 1)
	main.ANDr(isa.R1, isa.R0, isa.R1)
	main.CMPi(isa.R1, 0)
	main.BEQ("done") // stream exhausted
	main.LDRi(isa.R0, isa.R8, periph.UARTData)
	main.CMPi(isa.R0, 4)
	main.BCS("next") // unknown opcode: ignore
	main.LA(isa.R2, "cmd_handlers")
	main.LSLi(isa.R1, isa.R0, 2)
	main.LDRr(isa.R3, isa.R2, isa.R1)
	main.BLX(isa.R3) // indirect call through the handler table
	main.Label("next")
	main.B("cmd_loop")
	main.Label("done")
	main.LDRi(isa.R0, isa.R11, 4)
	main.STRi(isa.R0, isa.R10, periph.HostData) // final total
	main.POP(isa.PC)

	// h_rate: rate = next UART byte. Leaf.
	hr := p.AddFunc(asm.NewFunction("h_rate"))
	hr.LDRi(isa.R0, isa.R8, periph.UARTData)
	hr.STRi(isa.R0, isa.R11, 0)
	hr.RET()

	// h_dispense: steps = volume*rate stepper pulses; total += volume.
	hd := p.AddFunc(asm.NewFunction("h_dispense"))
	hd.PUSH(isa.R4, isa.R5)
	hd.LDRi(isa.R0, isa.R8, periph.UARTData) // volume
	hd.LDRi(isa.R1, isa.R11, 0)              // rate
	hd.MUL(isa.R4, isa.R0, isa.R1)           // steps
	hd.LDRi(isa.R2, isa.R11, 4)
	hd.ADDr(isa.R2, isa.R2, isa.R0)
	hd.STRi(isa.R2, isa.R11, 4)
	emitStepLoop(hd, 1)
	hd.POP(isa.R4, isa.R5)
	hd.RET()

	// h_withdraw: clamp to the dispensed total, reverse direction.
	hw := p.AddFunc(asm.NewFunction("h_withdraw"))
	hw.PUSH(isa.R4, isa.R5)
	hw.LDRi(isa.R0, isa.R8, periph.UARTData) // volume
	hw.LDRi(isa.R2, isa.R11, 4)              // total
	hw.CMPr(isa.R2, isa.R0)
	hw.BCS("enough")
	hw.MOVr(isa.R0, isa.R2) // clamp to what was dispensed
	hw.Label("enough")
	hw.SUBr(isa.R2, isa.R2, isa.R0)
	hw.STRi(isa.R2, isa.R11, 4)
	hw.LDRi(isa.R1, isa.R11, 0)
	hw.MUL(isa.R4, isa.R0, isa.R1) // steps
	emitStepLoop(hw, 2)
	hw.POP(isa.R4, isa.R5)
	hw.RET()

	// h_status: report rate and total. Leaf.
	hs := p.AddFunc(asm.NewFunction("h_status"))
	hs.LDRi(isa.R0, isa.R11, 0)
	hs.STRi(isa.R0, isa.R10, periph.HostData)
	hs.LDRi(isa.R0, isa.R11, 4)
	hs.STRi(isa.R0, isa.R10, periph.HostData)
	hs.RET()

	return p
}

// emitStepLoop emits the stepper pulse loop: R4 holds the (runtime) step
// count; each step toggles the GPIO latch with fixed delay loops between
// edges. The outer loop is a forward simple loop with a register-valued
// entry count; the delays are constant-bound simple loops — all eligible
// for the §IV-D loop optimization.
func emitStepLoop(f *asm.Function, level int32) {
	f.Label("step_loop")
	f.CMPi(isa.R4, 0)
	f.BEQ("step_done")
	f.MOVi(isa.R0, level)
	f.STRi(isa.R0, isa.R9, periph.GPIOOut)
	f.MOVi(isa.R5, 12)
	f.Label("dly_hi")
	f.SUBi(isa.R5, isa.R5, 1)
	f.CMPi(isa.R5, 0)
	f.BNE("dly_hi")
	f.MOVi(isa.R0, 0)
	f.STRi(isa.R0, isa.R9, periph.GPIOOut)
	f.MOVi(isa.R5, 12)
	f.Label("dly_lo")
	f.SUBi(isa.R5, isa.R5, 1)
	f.CMPi(isa.R5, 0)
	f.BNE("dly_lo")
	f.SUBi(isa.R4, isa.R4, 1)
	f.B("step_loop")
	f.Label("step_done")
}
