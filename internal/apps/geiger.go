package apps

import (
	"raptrack/internal/asm"
	"raptrack/internal/isa"
	"raptrack/internal/mem"
	"raptrack/internal/periph"
)

func init() {
	register(App{
		Name: "geiger",
		Description: "ArduinoPocketGeiger-style counter: 400 sampling slots with " +
			"event-driven conditionals, a ring history and periodic CPM reports",
		Build: buildGeiger,
		Setup: func(m *mem.Memory) *Devices {
			d := &Devices{
				Geig: periph.NewGeiger(0xBEE5, 12),
				Host: &periph.HostLink{},
			}
			m.Map(periph.GeigerBase, periph.DeviceWindow, d.Geig)
			m.Map(periph.HostLinkBase, periph.DeviceWindow, d.Host)
			return d
		},
	})
}

func buildGeiger() *asm.Program {
	p := asm.NewProgram("geiger")
	const slots = 400
	ring := mem.NSDataBase // 16-entry event-time ring

	main := p.NewFunc("main")
	main.PUSH(isa.R4, isa.R5, isa.R6, isa.R7, isa.LR)
	main.MOV32(isa.R8, periph.GeigerBase)
	main.MOV32(isa.R9, ring)
	main.MOV32(isa.R10, periph.HostLinkBase)

	main.MOVi(isa.R4, 0)   // slot
	main.MOVi(isa.R5, 0)   // event count
	main.MOVi(isa.R6, 100) // report countdown
	main.Label("slot")
	main.MOVi(isa.R0, 1)
	main.STRi(isa.R0, isa.R8, periph.GeigerTick)
	main.LDRi(isa.R0, isa.R8, periph.GeigerPulse)
	main.CMPi(isa.R0, 0)
	main.BEQ("no_event") // data-dependent conditional
	main.ADDi(isa.R5, isa.R5, 1)
	main.MOVi(isa.R1, 15)
	main.ANDr(isa.R1, isa.R5, isa.R1)
	main.LSLi(isa.R1, isa.R1, 2)
	main.STRr(isa.R4, isa.R9, isa.R1) // ring[count & 15] = slot
	main.Label("no_event")
	main.SUBi(isa.R6, isa.R6, 1)
	main.CMPi(isa.R6, 0)
	main.BNE("no_report")
	main.MOVi(isa.R6, 100)
	// Report CPM estimate: events-per-100-slots scaled by 6.
	main.MOVi(isa.R0, 6)
	main.MUL(isa.R0, isa.R5, isa.R0)
	main.STRi(isa.R0, isa.R10, periph.HostData)
	main.Label("no_report")
	main.ADDi(isa.R4, isa.R4, 1)
	main.CMPi(isa.R4, slots)
	main.BLT("slot") // non-deterministic body: not simple

	// Drain the ring into a spread metric (simple loop).
	main.MOVi(isa.R4, 0)
	main.MOVi(isa.R7, 0)
	main.Label("drain")
	main.LSLi(isa.R0, isa.R4, 2)
	main.LDRr(isa.R1, isa.R9, isa.R0)
	main.ADDr(isa.R7, isa.R7, isa.R1)
	main.ADDi(isa.R4, isa.R4, 1)
	main.CMPi(isa.R4, 16)
	main.BLT("drain")

	main.STRi(isa.R5, isa.R10, periph.HostData) // total events
	main.STRi(isa.R7, isa.R10, periph.HostData) // ring sum
	main.MOVr(isa.R0, isa.R5)
	main.POP(isa.R4, isa.R5, isa.R6, isa.R7, isa.PC)
	return p
}
