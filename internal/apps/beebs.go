package apps

import (
	"raptrack/internal/asm"
	"raptrack/internal/isa"
	"raptrack/internal/mem"
	"raptrack/internal/periph"
)

// BEEBs-style kernels. Each leaves its primary result in R0 at halt and
// reports it over the host link, so both plain runs and attested runs can
// be checked for functional correctness.

func setupHostOnly(m *mem.Memory) *Devices {
	d := &Devices{Host: &periph.HostLink{}}
	m.Map(periph.HostLinkBase, periph.DeviceWindow, d.Host)
	return d
}

// emitReportR0 stores R0 to the host link (clobbers R12).
func emitReportR0(f *asm.Function) {
	f.MOV32(isa.R12, periph.HostLinkBase)
	f.STRi(isa.R0, isa.R12, periph.HostData)
}

func init() {
	register(App{
		Name:        "prime",
		Description: "BEEBs prime: count primes below 400 by trial division (conditional-branch heavy, variable inner loops)",
		Build:       buildPrime,
		Setup:       setupHostOnly,
	})
	register(App{
		Name:        "crc32",
		Description: "BEEBs crc32: bitwise CRC-32 over a 192-byte message (data-dependent conditionals inside fixed loops)",
		Build:       buildCRC32,
		Setup:       setupHostOnly,
	})
	register(App{
		Name:        "bubblesort",
		Description: "BEEBs bubblesort: sort 48 pseudo-random words (nested loops, data-dependent swaps)",
		Build:       buildBubblesort,
		Setup:       setupHostOnly,
	})
	register(App{
		Name:        "fibcall",
		Description: "BEEBs fibcall: recursive fib(15) (call/return heavy; monitored POP-to-PC returns)",
		Build:       buildFibcall,
		Setup:       setupHostOnly,
	})
	register(App{
		Name:        "matmult",
		Description: "BEEBs matmult: 10x10 integer matrix product (deeply nested simple loops; loop-optimization showcase)",
		Build:       buildMatmult,
		Setup:       setupHostOnly,
	})
}

// buildPrime counts primes below 400.
func buildPrime() *asm.Program {
	p := asm.NewProgram("prime")

	main := p.NewFunc("main")
	main.PUSH(isa.R4, isa.R7, isa.LR)
	main.MOVi(isa.R7, 0) // prime count
	main.MOVi(isa.R4, 2) // candidate
	main.Label("outer")
	main.MOVr(isa.R0, isa.R4)
	main.BL("is_prime")
	main.CMPi(isa.R0, 0)
	main.BEQ("not_prime")
	main.ADDi(isa.R7, isa.R7, 1)
	main.Label("not_prime")
	main.ADDi(isa.R4, isa.R4, 1)
	main.CMPi(isa.R4, 400)
	main.BLT("outer") // body contains a call: not a simple loop
	main.MOVr(isa.R0, isa.R7)
	emitReportR0(main)
	main.POP(isa.R4, isa.R7, isa.PC)

	// is_prime(R0=n) -> R0 in {0,1}. Leaf: deterministic BX LR returns.
	f := p.AddFunc(asm.NewFunction("is_prime"))
	f.CMPi(isa.R0, 2)
	f.BLT("no")
	f.MOVi(isa.R1, 2) // trial divisor
	f.Label("check")
	f.MUL(isa.R2, isa.R1, isa.R1)
	f.CMPr(isa.R2, isa.R0)
	f.BGT("yes") // divisor^2 > n: prime (forward loop exit)
	f.UDIV(isa.R2, isa.R0, isa.R1)
	f.MUL(isa.R3, isa.R2, isa.R1)
	f.CMPr(isa.R3, isa.R0)
	f.BEQ("no") // divisible: composite (second forward exit)
	f.ADDi(isa.R1, isa.R1, 1)
	f.B("check")
	f.Label("yes")
	f.MOVi(isa.R0, 1)
	f.RET()
	f.Label("no")
	f.MOVi(isa.R0, 0)
	f.RET()

	return p
}

// buildCRC32 computes a bitwise CRC-32 (poly 0xEDB88320) over a constant
// message stored in rodata.
func buildCRC32() *asm.Program {
	p := asm.NewProgram("crc32")

	msg := make([]byte, 192)
	for i := range msg {
		msg[i] = byte(i*7 + 13)
	}
	p.AddData(&asm.DataSegment{Name: "message", Bytes: msg})

	main := p.NewFunc("main")
	main.PUSH(isa.LR)
	main.LA(isa.R0, "message")
	main.MOVi(isa.R1, int32(len(msg)))
	main.BL("crc32")
	emitReportR0(main)
	main.POP(isa.PC)

	f := p.AddFunc(asm.NewFunction("crc32"))
	// R0 ptr, R1 len -> R0 crc. Saves R4/R5 (no LR push: leaf).
	f.PUSH(isa.R4, isa.R5)
	f.MOV32(isa.R2, 0xffffffff) // crc
	f.MOV32(isa.R4, 0xEDB88320) // poly
	f.Label("byte_loop")
	f.CMPi(isa.R1, 0)
	f.BEQ("done") // forward loop exit
	f.LDRBi(isa.R3, isa.R0, 0)
	f.ADDi(isa.R0, isa.R0, 1)
	f.SUBi(isa.R1, isa.R1, 1)
	f.EORr(isa.R2, isa.R2, isa.R3)
	f.MOVi(isa.R5, 8)
	f.Label("bit_loop")
	f.MOVi(isa.R3, 1)
	f.ANDr(isa.R3, isa.R2, isa.R3)
	f.CMPi(isa.R3, 0)
	f.LSRi(isa.R2, isa.R2, 1)
	f.BEQ("no_xor") // data-dependent: bit loop is not simple
	f.EORr(isa.R2, isa.R2, isa.R4)
	f.Label("no_xor")
	f.SUBi(isa.R5, isa.R5, 1)
	f.CMPi(isa.R5, 0)
	f.BNE("bit_loop")
	f.B("byte_loop")
	f.Label("done")
	f.MVN(isa.R0, isa.R2)
	f.POP(isa.R4, isa.R5)
	f.RET()

	return p
}

// buildBubblesort fills a 48-word array with an LCG sequence and sorts it.
// The result word is (min<<16)|max xor'd with a checksum of the sorted
// array, cheap to recompute in the test.
func buildBubblesort() *asm.Program {
	p := asm.NewProgram("bubblesort")
	const n = 48
	arrBase := mem.NSDataBase

	main := p.NewFunc("main")
	main.PUSH(isa.R4, isa.R5, isa.R6, isa.R7, isa.LR)

	// Fill: x = x*1664525 + 1013904223 (mod 2^32), keep 16 bits.
	main.MOV32(isa.R4, arrBase)
	main.MOVi(isa.R5, 0)          // i
	main.MOV32(isa.R6, 0x2545F49) // x seed
	main.Label("fill")
	main.MOV32(isa.R0, 1664525)
	main.MUL(isa.R6, isa.R6, isa.R0)
	main.MOV32(isa.R0, 1013904223)
	main.ADDr(isa.R6, isa.R6, isa.R0)
	main.LSRi(isa.R1, isa.R6, 16)
	main.LSLi(isa.R2, isa.R5, 2)
	main.STRr(isa.R1, isa.R4, isa.R2)
	main.ADDi(isa.R5, isa.R5, 1)
	main.CMPi(isa.R5, n)
	main.BLT("fill") // simple loop: constant bound, single ADDi update

	// Bubble sort: for i in 0..n-2 { for j in 0..n-2-i { cmp/swap } }
	main.MOVi(isa.R5, 0) // i
	main.Label("oloop")
	main.MOVi(isa.R6, 0) // j
	main.Label("iloop")
	main.LSLi(isa.R2, isa.R6, 2)
	main.LDRr(isa.R0, isa.R4, isa.R2) // a[j]
	main.ADDi(isa.R3, isa.R2, 4)
	main.LDRr(isa.R1, isa.R4, isa.R3) // a[j+1]
	main.CMPr(isa.R0, isa.R1)
	main.BLS("noswap") // data-dependent conditional
	main.STRr(isa.R1, isa.R4, isa.R2)
	main.STRr(isa.R0, isa.R4, isa.R3)
	main.Label("noswap")
	main.ADDi(isa.R6, isa.R6, 1)
	main.MOVi(isa.R0, n-1)
	main.SUBr(isa.R0, isa.R0, isa.R5)
	main.CMPr(isa.R6, isa.R0)
	main.BLT("iloop") // CMP reg,reg: not simple (variable bound)
	main.ADDi(isa.R5, isa.R5, 1)
	main.CMPi(isa.R5, n-1)
	main.BLT("oloop") // body has non-deterministic branches: not simple

	// Checksum: sum of a[k]*k over the sorted array.
	main.MOVi(isa.R5, 0)
	main.MOVi(isa.R7, 0)
	main.Label("sum")
	main.LSLi(isa.R2, isa.R5, 2)
	main.LDRr(isa.R0, isa.R4, isa.R2)
	main.MUL(isa.R0, isa.R0, isa.R5)
	main.ADDr(isa.R7, isa.R7, isa.R0)
	main.ADDi(isa.R5, isa.R5, 1)
	main.CMPi(isa.R5, n)
	main.BLT("sum") // simple loop

	main.MOVr(isa.R0, isa.R7)
	emitReportR0(main)
	main.POP(isa.R4, isa.R5, isa.R6, isa.R7, isa.PC)
	return p
}

// buildFibcall computes fib(15) by naive recursion.
func buildFibcall() *asm.Program {
	p := asm.NewProgram("fibcall")

	main := p.NewFunc("main")
	main.PUSH(isa.LR)
	main.MOVi(isa.R0, 15)
	main.BL("fib")
	emitReportR0(main)
	main.POP(isa.PC)

	f := p.AddFunc(asm.NewFunction("fib"))
	f.CMPi(isa.R0, 2)
	f.BLT("base")
	f.PUSH(isa.R4, isa.LR)
	f.MOVr(isa.R4, isa.R0)
	f.SUBi(isa.R0, isa.R4, 1)
	f.BL("fib")
	f.MOVr(isa.R1, isa.R0)
	f.SUBi(isa.R0, isa.R4, 2)
	f.MOVr(isa.R4, isa.R1) // keep fib(n-1) in callee-saved R4
	f.BL("fib")
	f.ADDr(isa.R0, isa.R4, isa.R0)
	f.POP(isa.R4, isa.PC) // monitored return
	f.Label("base")
	f.RET() // fib(0)=0, fib(1)=1: R0 already holds n

	return p
}

// buildMatmult multiplies two 10x10 integer matrices (A[i][j]=i+j+1,
// B[i][j]=i*j+1) and reports the checksum of C.
func buildMatmult() *asm.Program {
	p := asm.NewProgram("matmult")
	const n = 10
	baseA := mem.NSDataBase
	baseB := baseA + 4*n*n
	baseC := baseB + 4*n*n

	main := p.NewFunc("main")
	main.PUSH(isa.R4, isa.R5, isa.R6, isa.R7, isa.LR)
	main.MOV32(isa.R8, baseA)
	main.MOV32(isa.R9, baseB)
	main.MOV32(isa.R10, baseC)

	// Fill A and B (nested simple loops).
	main.MOVi(isa.R4, 0) // i
	main.Label("fa_i")
	main.MOVi(isa.R5, 0) // j
	main.Label("fa_j")
	main.MOVi(isa.R0, n)
	main.MUL(isa.R0, isa.R4, isa.R0)
	main.ADDr(isa.R0, isa.R0, isa.R5)
	main.LSLi(isa.R0, isa.R0, 2) // offset
	main.ADDr(isa.R1, isa.R4, isa.R5)
	main.ADDi(isa.R1, isa.R1, 1)
	main.STRr(isa.R1, isa.R8, isa.R0) // A[i][j] = i+j+1
	main.MUL(isa.R1, isa.R4, isa.R5)
	main.ADDi(isa.R1, isa.R1, 1)
	main.STRr(isa.R1, isa.R9, isa.R0) // B[i][j] = i*j+1
	main.ADDi(isa.R5, isa.R5, 1)
	main.CMPi(isa.R5, n)
	main.BLT("fa_j") // inner simple loop
	main.ADDi(isa.R4, isa.R4, 1)
	main.CMPi(isa.R4, n)
	main.BLT("fa_i") // outer: simple once inner is optimized (nested opt)

	// C = A x B.
	main.MOVi(isa.R4, 0) // i
	main.Label("mm_i")
	main.MOVi(isa.R5, 0) // j
	main.Label("mm_j")
	main.MOVi(isa.R7, 0) // acc
	main.MOVi(isa.R6, 0) // k
	main.Label("mm_k")
	main.MOVi(isa.R0, n)
	main.MUL(isa.R0, isa.R4, isa.R0)
	main.ADDr(isa.R0, isa.R0, isa.R6)
	main.LSLi(isa.R0, isa.R0, 2)
	main.LDRr(isa.R1, isa.R8, isa.R0) // A[i][k]
	main.MOVi(isa.R0, n)
	main.MUL(isa.R0, isa.R6, isa.R0)
	main.ADDr(isa.R0, isa.R0, isa.R5)
	main.LSLi(isa.R0, isa.R0, 2)
	main.LDRr(isa.R2, isa.R9, isa.R0) // B[k][j]
	main.MUL(isa.R1, isa.R1, isa.R2)
	main.ADDr(isa.R7, isa.R7, isa.R1)
	main.ADDi(isa.R6, isa.R6, 1)
	main.CMPi(isa.R6, n)
	main.BLT("mm_k")
	main.MOVi(isa.R0, n)
	main.MUL(isa.R0, isa.R4, isa.R0)
	main.ADDr(isa.R0, isa.R0, isa.R5)
	main.LSLi(isa.R0, isa.R0, 2)
	main.STRr(isa.R7, isa.R10, isa.R0) // C[i][j]
	main.ADDi(isa.R5, isa.R5, 1)
	main.CMPi(isa.R5, n)
	main.BLT("mm_j")
	main.ADDi(isa.R4, isa.R4, 1)
	main.CMPi(isa.R4, n)
	main.BLT("mm_i")

	// Checksum C.
	main.MOVi(isa.R4, 0)
	main.MOVi(isa.R7, 0)
	main.Label("cs")
	main.LSLi(isa.R0, isa.R4, 2)
	main.LDRr(isa.R1, isa.R10, isa.R0)
	main.EORr(isa.R7, isa.R7, isa.R1)
	main.ADDr(isa.R7, isa.R7, isa.R1)
	main.ADDi(isa.R4, isa.R4, 1)
	main.CMPi(isa.R4, n*n)
	main.BLT("cs")

	main.MOVr(isa.R0, isa.R7)
	emitReportR0(main)
	main.POP(isa.R4, isa.R5, isa.R6, isa.R7, isa.PC)
	return p
}
