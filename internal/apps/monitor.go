package apps

import (
	"raptrack/internal/asm"
	"raptrack/internal/isa"
	"raptrack/internal/mem"
	"raptrack/internal/periph"
)

// monitor is a composite firmware in the style of real deployed MCU
// applications: a main sensing loop that filters an ADC channel, counts
// radiation events, periodically ranges with the ultrasonic sensor,
// dispatches host commands through a function-pointer table, and raises an
// alarm line when the filtered value crosses a threshold. It is the
// longest-running workload and exercises every evidence kind at once.

// monitorScript is the host command stream: (0, v) sets the alarm
// threshold, (1) queries the alarm count.
var monitorScript = []byte{
	1,
	0, 200,
	1,
	0, 90,
	1,
}

// Monitor RAM globals (offsets from mem.NSDataBase).
const (
	monThreshold = 0  // alarm threshold for the filtered value
	monAlarms    = 4  // alarm counter
	monDistRing  = 8  // 8-word distance ring
	monCmds      = 40 // commands handled
)

const monIterations = 200

func init() {
	register(App{
		Name: "monitor",
		Description: "composite firmware: sensing main loop with EWMA filter, Geiger events, " +
			"periodic ranging, command dispatch and an alarm interlock (longest workload)",
		Build: buildMonitor,
		Setup: func(m *mem.Memory) *Devices {
			d := &Devices{
				UART:  periph.NewUART(append([]byte(nil), monitorScript...)),
				Ultra: periph.NewUltrasonic(0x5EED, 10, 40),
				Geig:  periph.NewGeiger(0xCAFE, 20),
				Temp:  periph.NewTemp(0xFACE),
				GPIO:  &periph.GPIO{},
				Host:  &periph.HostLink{},
			}
			m.Map(periph.UARTBase, periph.DeviceWindow, d.UART)
			m.Map(periph.UltrasonicBase, periph.DeviceWindow, d.Ultra)
			m.Map(periph.GeigerBase, periph.DeviceWindow, d.Geig)
			m.Map(periph.TempBase, periph.DeviceWindow, d.Temp)
			m.Map(periph.GPIOBase, periph.DeviceWindow, d.GPIO)
			m.Map(periph.HostLinkBase, periph.DeviceWindow, d.Host)
			return d
		},
	})
}

// Register plan (main): R4 loop counter, R5 EWMA, R6 geiger count,
// R7 ranging countdown, R11 RAM base. Helpers use R0-R3 (+saved R4/R5).
func buildMonitor() *asm.Program {
	p := asm.NewProgram("monitor")
	p.AddData(&asm.DataSegment{
		Name: "mon_handlers",
		Syms: []string{"h_set_threshold", "h_query"},
	})

	main := p.NewFunc("main")
	main.PUSH(isa.R4, isa.R5, isa.R6, isa.R7, isa.LR)
	main.MOV32(isa.R11, mem.NSDataBase)
	main.MOVi(isa.R0, 150)
	main.STRi(isa.R0, isa.R11, monThreshold) // default threshold
	main.MOVi(isa.R0, 0)
	main.STRi(isa.R0, isa.R11, monAlarms)
	main.STRi(isa.R0, isa.R11, monCmds)
	main.MOVi(isa.R4, 0)   // i
	main.MOVi(isa.R5, 512) // ewma
	main.MOVi(isa.R6, 0)   // geiger events
	main.MOVi(isa.R7, 10)  // ranging countdown

	main.Label("tick")
	// 1. Filtered temperature channel: ewma = (7*ewma + raw) / 8.
	main.BL("read_temp") // leaf -> raw in R0
	main.MOVi(isa.R1, 7)
	main.MUL(isa.R5, isa.R5, isa.R1)
	main.ADDr(isa.R5, isa.R5, isa.R0)
	main.LSRi(isa.R5, isa.R5, 3)

	// 2. Radiation events.
	main.BL("geiger_tick") // leaf -> 1/0 in R0
	main.ADDr(isa.R6, isa.R6, isa.R0)

	// 3. Periodic ranging (every 10 ticks).
	main.SUBi(isa.R7, isa.R7, 1)
	main.CMPi(isa.R7, 0)
	main.BNE("no_range")
	main.MOVi(isa.R7, 10)
	main.BL("measure_dist") // distance in R0
	// ring[(i/10) & 7] = distance
	main.MOVi(isa.R1, 10)
	main.UDIV(isa.R1, isa.R4, isa.R1)
	main.MOVi(isa.R2, 7)
	main.ANDr(isa.R1, isa.R1, isa.R2)
	main.LSLi(isa.R1, isa.R1, 2)
	main.ADDi(isa.R1, isa.R1, monDistRing)
	main.STRr(isa.R0, isa.R11, isa.R1)
	main.Label("no_range")

	// 4. Host commands (drains at most one per tick).
	main.BL("handle_uart")

	// 5. Alarm interlock: filtered value above threshold?
	main.LDRi(isa.R0, isa.R11, monThreshold)
	main.CMPr(isa.R5, isa.R0)
	main.BLS("no_alarm")
	main.LDRi(isa.R0, isa.R11, monAlarms)
	main.ADDi(isa.R0, isa.R0, 1)
	main.STRi(isa.R0, isa.R11, monAlarms)
	main.MOV32(isa.R1, periph.GPIOBase)
	main.MOVi(isa.R2, 1)
	main.STRi(isa.R2, isa.R1, periph.GPIOOut)
	main.Label("no_alarm")

	main.ADDi(isa.R4, isa.R4, 1)
	main.CMPi(isa.R4, monIterations)
	main.BLT("tick") // body is non-deterministic: trampolined per tick

	// Summary: events, alarms, commands, ring sum.
	main.MOV32(isa.R10, periph.HostLinkBase)
	main.STRi(isa.R6, isa.R10, periph.HostData)
	main.LDRi(isa.R0, isa.R11, monAlarms)
	main.STRi(isa.R0, isa.R10, periph.HostData)
	main.LDRi(isa.R0, isa.R11, monCmds)
	main.STRi(isa.R0, isa.R10, periph.HostData)
	main.MOVi(isa.R0, 0)
	main.MOVi(isa.R1, 0)
	main.Label("ringsum")
	main.LSLi(isa.R2, isa.R1, 2)
	main.ADDi(isa.R2, isa.R2, monDistRing)
	main.LDRr(isa.R3, isa.R11, isa.R2)
	main.ADDr(isa.R0, isa.R0, isa.R3)
	main.ADDi(isa.R1, isa.R1, 1)
	main.CMPi(isa.R1, 8)
	main.BLT("ringsum") // static simple loop
	main.STRi(isa.R0, isa.R10, periph.HostData)
	main.POP(isa.R4, isa.R5, isa.R6, isa.R7, isa.PC)

	// read_temp() -> R0 raw sample. Leaf.
	rt := p.AddFunc(asm.NewFunction("read_temp"))
	rt.MOV32(isa.R1, periph.TempBase)
	rt.LDRi(isa.R0, isa.R1, periph.TempSample)
	rt.RET()

	// geiger_tick() -> R0 in {0,1}. Leaf.
	gt := p.AddFunc(asm.NewFunction("geiger_tick"))
	gt.MOV32(isa.R1, periph.GeigerBase)
	gt.MOVi(isa.R0, 1)
	gt.STRi(isa.R0, isa.R1, periph.GeigerTick)
	gt.LDRi(isa.R0, isa.R1, periph.GeigerPulse)
	gt.RET()

	// measure_dist() -> R0 distance (poll count). Leaf with a variable
	// polling loop.
	md := p.AddFunc(asm.NewFunction("measure_dist"))
	md.MOV32(isa.R1, periph.UltrasonicBase)
	md.MOVi(isa.R2, 1)
	md.STRi(isa.R2, isa.R1, periph.UltraTrigger)
	md.MOVi(isa.R0, 0)
	md.Label("poll")
	md.LDRi(isa.R2, isa.R1, periph.UltraEcho)
	md.CMPi(isa.R2, 0)
	md.BEQ("done")
	md.ADDi(isa.R0, isa.R0, 1)
	md.B("poll")
	md.Label("done")
	md.RET()

	// handle_uart(): dispatch at most one pending command. Non-leaf.
	hu := p.AddFunc(asm.NewFunction("handle_uart"))
	hu.PUSH(isa.R4, isa.LR)
	hu.MOV32(isa.R4, periph.UARTBase)
	hu.LDRi(isa.R0, isa.R4, periph.UARTStatus)
	hu.MOVi(isa.R1, 1)
	hu.ANDr(isa.R1, isa.R0, isa.R1)
	hu.CMPi(isa.R1, 0)
	hu.BEQ("idle")
	hu.LDRi(isa.R0, isa.R4, periph.UARTData) // opcode
	hu.CMPi(isa.R0, 2)
	hu.BCS("idle") // unknown opcode
	hu.LA(isa.R2, "mon_handlers")
	hu.LSLi(isa.R1, isa.R0, 2)
	hu.LDRr(isa.R3, isa.R2, isa.R1)
	hu.BLX(isa.R3) // indirect call
	hu.LDRi(isa.R0, isa.R11, monCmds)
	hu.ADDi(isa.R0, isa.R0, 1)
	hu.STRi(isa.R0, isa.R11, monCmds)
	hu.Label("idle")
	hu.POP(isa.R4, isa.PC)

	// h_set_threshold: next UART byte becomes the threshold. Leaf.
	hs := p.AddFunc(asm.NewFunction("h_set_threshold"))
	hs.MOV32(isa.R1, periph.UARTBase)
	hs.LDRi(isa.R0, isa.R1, periph.UARTData)
	hs.STRi(isa.R0, isa.R11, monThreshold)
	hs.RET()

	// h_query: report the alarm count so far. Leaf.
	hq := p.AddFunc(asm.NewFunction("h_query"))
	hq.MOV32(isa.R1, periph.HostLinkBase)
	hq.LDRi(isa.R0, isa.R11, monAlarms)
	hq.STRi(isa.R0, isa.R1, periph.HostData)
	hq.RET()

	return p
}
