// Package apps contains the evaluation workloads: the five open-source MCU
// applications the paper measures (ultrasonic ranger, Geiger counter,
// syringe pump, temperature sensor, GPS/NMEA parser) and BEEBs benchmark
// kernels (prime, crc32, bubblesort, fibcall, matmult), re-implemented
// against the simulated ISA with deterministic synthetic peripherals.
//
// Each workload reproduces the control-flow character its paper
// counterpart stresses: gps is switch/indirect heavy (worst case for
// instrumentation-based CFA), matmult/temperature are dominated by simple
// fixed-bound loops (loop-optimization showcase), prime/crc32/bubblesort
// are conditional-branch heavy, fibcall is call/return heavy, and
// ultrasonic/syringe mix variable-duration polling with fixed
// post-processing.
package apps

import (
	"fmt"
	"sort"

	"raptrack/internal/asm"
	"raptrack/internal/mem"
	"raptrack/internal/periph"
)

// Devices bundles the peripheral handles an app's Setup mapped, so tests
// and examples can assert on observable outputs.
type Devices struct {
	UART  *periph.UART
	Ultra *periph.Ultrasonic
	Geig  *periph.Geiger
	Temp  *periph.Temp
	GPIO  *periph.GPIO
	Host  *periph.HostLink
}

// App is one runnable workload.
type App struct {
	Name        string
	Description string
	// Build constructs a fresh program.
	Build func() *asm.Program
	// Setup maps the app's peripherals into a fresh memory system and
	// returns their handles. Nil for pure-compute kernels.
	Setup func(m *mem.Memory) *Devices
	// MaxSteps bounds execution (0: harness default).
	MaxSteps uint64
}

// SetupMem adapts Setup to the core.ProverConfig hook shape.
func (a App) SetupMem() func(*mem.Memory) {
	if a.Setup == nil {
		return nil
	}
	return func(m *mem.Memory) { a.Setup(m) }
}

var registry = map[string]App{}

func register(a App) {
	if _, dup := registry[a.Name]; dup {
		panic(fmt.Sprintf("apps: duplicate app %q", a.Name))
	}
	registry[a.Name] = a
}

// Get returns the named app.
func Get(name string) (App, error) {
	a, ok := registry[name]
	if !ok {
		return App{}, fmt.Errorf("apps: unknown app %q (have %v)", name, Names())
	}
	return a, nil
}

// Names lists registered apps in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All returns every registered app, sorted by name.
func All() []App {
	names := Names()
	out := make([]App, 0, len(names))
	for _, n := range names {
		out = append(out, registry[n])
	}
	return out
}

// EvalOrder is the paper's presentation order for the evaluation figures.
var EvalOrder = []string{
	"ultrasonic", "geiger", "syringe", "temperature", "gps",
	"prime", "crc32", "bubblesort", "fibcall", "matmult",
}

// GenericSetup maps the full standard peripheral set with fixed seeds —
// used for user-supplied programs (the CLI's -file mode) that may talk to
// any device.
func GenericSetup(uartStream []byte) func(m *mem.Memory) *Devices {
	return func(m *mem.Memory) *Devices {
		d := &Devices{
			UART:  periph.NewUART(uartStream),
			Ultra: periph.NewUltrasonic(0xA11CE, 20, 90),
			Geig:  periph.NewGeiger(0xBEE5, 12),
			Temp:  periph.NewTemp(0x7E3A),
			GPIO:  &periph.GPIO{},
			Host:  &periph.HostLink{},
		}
		m.Map(periph.UARTBase, periph.DeviceWindow, d.UART)
		m.Map(periph.UltrasonicBase, periph.DeviceWindow, d.Ultra)
		m.Map(periph.GeigerBase, periph.DeviceWindow, d.Geig)
		m.Map(periph.TempBase, periph.DeviceWindow, d.Temp)
		m.Map(periph.GPIOBase, periph.DeviceWindow, d.GPIO)
		m.Map(periph.HostLinkBase, periph.DeviceWindow, d.Host)
		return d
	}
}

// FromSource wraps a parsed assembly source as an App with the generic
// peripheral setup.
func FromSource(name, src string) (App, error) {
	prog, err := asm.Parse(name, src)
	if err != nil {
		return App{}, err
	}
	return App{
		Name:        name,
		Description: "user-supplied program",
		Build:       func() *asm.Program { return prog.Clone() },
		Setup:       GenericSetup(nil),
	}, nil
}
