package apps

import (
	"hash/crc32"
	"sort"
	"testing"
)

// The kernels are checked against independent Go reference computations.

func runAndGetResult(t *testing.T, name string) uint32 {
	t.Helper()
	a, err := Get(name)
	if err != nil {
		t.Fatal(err)
	}
	c, dev, err := RunPlain(a)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if dev == nil || dev.Host == nil {
		t.Fatalf("%s has no host link", name)
	}
	if len(dev.Host.Words) == 0 {
		t.Fatalf("%s reported no result words", name)
	}
	if c.Steps == 0 {
		t.Fatalf("%s retired no instructions", name)
	}
	return dev.Host.Words[len(dev.Host.Words)-1]
}

func TestPrime(t *testing.T) {
	got := runAndGetResult(t, "prime")
	want := uint32(0)
	for n := 2; n < 400; n++ {
		prime := true
		for d := 2; d*d <= n; d++ {
			if n%d == 0 {
				prime = false
				break
			}
		}
		if prime {
			want++
		}
	}
	if got != want {
		t.Errorf("prime count = %d, want %d", got, want)
	}
}

func TestCRC32(t *testing.T) {
	got := runAndGetResult(t, "crc32")
	msg := make([]byte, 192)
	for i := range msg {
		msg[i] = byte(i*7 + 13)
	}
	want := crc32.ChecksumIEEE(msg)
	if got != want {
		t.Errorf("crc32 = %#x, want %#x", got, want)
	}
}

func TestBubblesort(t *testing.T) {
	got := runAndGetResult(t, "bubblesort")
	// Reference: same LCG fill, sort, checksum sum(a[k]*k).
	const n = 48
	x := uint32(0x2545F49)
	vals := make([]uint32, n)
	for i := 0; i < n; i++ {
		x = x*1664525 + 1013904223
		vals[i] = x >> 16
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	var want uint32
	for i, v := range vals {
		want += v * uint32(i)
	}
	if got != want {
		t.Errorf("bubblesort checksum = %#x, want %#x", got, want)
	}
}

func TestFibcall(t *testing.T) {
	got := runAndGetResult(t, "fibcall")
	fib := func(n int) uint32 {
		a, b := uint32(0), uint32(1)
		for i := 0; i < n; i++ {
			a, b = b, a+b
		}
		return a
	}
	if want := fib(15); got != want {
		t.Errorf("fib(15) = %d, want %d", got, want)
	}
}

func TestMatmult(t *testing.T) {
	got := runAndGetResult(t, "matmult")
	const n = 10
	var a, b, c [n][n]uint32
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a[i][j] = uint32(i + j + 1)
			b[i][j] = uint32(i*j + 1)
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var acc uint32
			for k := 0; k < n; k++ {
				acc += a[i][k] * b[k][j]
			}
			c[i][j] = acc
		}
	}
	var want uint32
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := c[i][j]
			want = (want ^ v) + v
		}
	}
	if got != want {
		t.Errorf("matmult checksum = %#x, want %#x", got, want)
	}
}
