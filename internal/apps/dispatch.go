package apps

import (
	"fmt"

	"raptrack/internal/asm"
	"raptrack/internal/isa"
	"raptrack/internal/mem"
	"raptrack/internal/periph"
)

// dispatch is a bytecode virtual machine — the jump-table/computed-
// dispatch workload class (an embedded rules/automation interpreter, the
// control-flow shape of PLC runtimes and scripting shims on MCUs).
//
// Branch mix (CFA-relevant): the hot loop is one LDR pc,[table, op<<2]
// computed jump per bytecode instruction — every dynamic instruction is
// an indirect transfer, the densest comparator-coverage stress in the
// suite (gps dispatches per parser *state change*; this dispatches per
// *instruction*). A second LDRPC through a separate ALU sub-table nests
// computed dispatch inside computed dispatch, and the interpreted JNZ
// turns data values into trace-visible control flow: the verifier must
// check every table target stays inside main (table-escape policy) at a
// rate no other workload approaches. Almost no statically predictable
// branches survive — worst case for the §IV-D loop optimization, best
// case for SpecCFA mining (the fetch/dispatch packet pattern repeats per
// opcode).

// VM opcodes (one byte each; operands are single trailing bytes).
const (
	vmHALT   = 0  // stop the VM
	vmPUSHI  = 1  // push imm8
	vmADD    = 2  // pop b, a; push a+b
	vmSUB    = 3  // pop b, a; push a-b
	vmMUL    = 4  // pop b, a; push a*b
	vmDUP    = 5  // duplicate the top of stack
	vmOUT    = 6  // pop; write to the host link
	vmJNZ    = 7  // pop; branch to imm8 bytecode index when non-zero
	vmLOADG  = 8  // push global slot imm8
	vmSTOREG = 9  // pop into global slot imm8
	vmALU    = 10 // imm8 selects AND/OR/XOR from the ALU sub-table
	vmNumOps = 11
)

// ALU sub-opcodes (the nested dispatch table).
const (
	aluAND = 0
	aluOR  = 1
	aluXOR = 2
)

// vmAsm is a two-pass label-resolving assembler for the byte-addressed
// VM (JNZ operands are absolute bytecode indices).
type vmAsm struct {
	code   []byte
	labels map[string]int
	fixups map[int]string
}

func newVMAsm() *vmAsm {
	return &vmAsm{labels: map[string]int{}, fixups: map[int]string{}}
}

func (a *vmAsm) label(name string) { a.labels[name] = len(a.code) }
func (a *vmAsm) op(bs ...byte)     { a.code = append(a.code, bs...) }
func (a *vmAsm) jnz(target string) {
	a.code = append(a.code, vmJNZ, 0)
	a.fixups[len(a.code)-1] = target
}
func (a *vmAsm) assemble() []byte {
	for off, name := range a.fixups {
		idx, ok := a.labels[name]
		if !ok || idx > 255 {
			panic(fmt.Sprintf("apps: dispatch bytecode label %q (at %d)", name, idx))
		}
		a.code[off] = byte(idx)
	}
	return a.code
}

// dispatchBytecode is the interpreted program: 6! by a counted loop over
// VM globals, then the three ALU flavors over fixed masks. Expected host
// words: 720, 720, 160, 245, 85.
func dispatchBytecode() []byte {
	a := newVMAsm()
	a.op(vmPUSHI, 1, vmSTOREG, 0) // acc = 1
	a.op(vmPUSHI, 6, vmSTOREG, 1) // n = 6
	a.label("loop")
	a.op(vmLOADG, 0, vmLOADG, 1, vmMUL, vmSTOREG, 0) // acc *= n
	a.op(vmLOADG, 1, vmPUSHI, 1, vmSUB, vmSTOREG, 1) // n -= 1
	a.op(vmLOADG, 1)
	a.jnz("loop")
	a.op(vmLOADG, 0, vmDUP, vmOUT, vmOUT)                  // 720 twice
	a.op(vmPUSHI, 240, vmPUSHI, 165, vmALU, aluAND, vmOUT) // 160
	a.op(vmPUSHI, 240, vmPUSHI, 165, vmALU, aluOR, vmOUT)  // 245
	a.op(vmPUSHI, 240, vmPUSHI, 165, vmALU, aluXOR, vmOUT) // 85
	a.op(vmHALT)
	return a.assemble()
}

func init() {
	register(App{
		Name: "dispatch",
		Description: "bytecode VM: one jump-table dispatch per interpreted instruction " +
			"plus a nested ALU sub-table (computed-dispatch / comparator-coverage stress)",
		Build: buildDispatch,
		Setup: func(m *mem.Memory) *Devices {
			d := &Devices{Host: &periph.HostLink{}}
			m.Map(periph.HostLinkBase, periph.DeviceWindow, d.Host)
			return d
		},
	})
}

// VM register allocation:
//
//	R4 bytecode index          R5 operand-stack byte offset
//	R6 globals base (RAM)      R8 bytecode base
//	R10 host-link base         R11 operand-stack base (RAM)
func buildDispatch() *asm.Program {
	p := asm.NewProgram("dispatch")
	p.AddData(&asm.DataSegment{
		Name: "vm_ops",
		Syms: []string{
			"main.op_halt", "main.op_pushi", "main.op_add", "main.op_sub",
			"main.op_mul", "main.op_dup", "main.op_out", "main.op_jnz",
			"main.op_loadg", "main.op_storeg", "main.op_alu",
		},
	})
	p.AddData(&asm.DataSegment{
		Name: "vm_alu",
		Syms: []string{"main.alu_and", "main.alu_or", "main.alu_xor"},
	})
	p.AddData(&asm.DataSegment{Name: "vm_prog", Bytes: dispatchBytecode()})

	main := p.NewFunc("main")
	main.PUSH(isa.R4, isa.R5, isa.R6, isa.R7, isa.LR)
	main.LA(isa.R8, "vm_prog")
	main.MOV32(isa.R10, periph.HostLinkBase)
	main.MOV32(isa.R11, mem.NSDataBase)      // operand stack
	main.MOV32(isa.R6, mem.NSDataBase+0x100) // globals
	main.MOVi(isa.R4, 0)
	main.MOVi(isa.R5, 0)

	// fetch/dispatch: every interpreted instruction takes this computed jump.
	main.Label("vm_loop")
	main.LDRBr(isa.R0, isa.R8, isa.R4)
	main.ADDi(isa.R4, isa.R4, 1)
	main.CMPi(isa.R0, vmNumOps)
	main.BCS("op_halt") // out-of-range opcode: halt defensively
	main.LA(isa.R2, "vm_ops")
	main.LDRPC(isa.R2, isa.R0)

	main.Label("op_halt")
	main.POP(isa.R4, isa.R5, isa.R6, isa.R7, isa.PC)

	main.Label("op_pushi")
	main.LDRBr(isa.R0, isa.R8, isa.R4) // imm8
	main.ADDi(isa.R4, isa.R4, 1)
	main.STRr(isa.R0, isa.R11, isa.R5)
	main.ADDi(isa.R5, isa.R5, 4)
	main.B("vm_loop")

	emitPop2 := func(f *asm.Function) { // R1 = b (top), R0 = a
		f.SUBi(isa.R5, isa.R5, 4)
		f.LDRr(isa.R1, isa.R11, isa.R5)
		f.SUBi(isa.R5, isa.R5, 4)
		f.LDRr(isa.R0, isa.R11, isa.R5)
	}
	emitPush := func(f *asm.Function) { // push R0
		f.STRr(isa.R0, isa.R11, isa.R5)
		f.ADDi(isa.R5, isa.R5, 4)
	}

	main.Label("op_add")
	emitPop2(main)
	main.ADDr(isa.R0, isa.R0, isa.R1)
	emitPush(main)
	main.B("vm_loop")

	main.Label("op_sub")
	emitPop2(main)
	main.SUBr(isa.R0, isa.R0, isa.R1)
	emitPush(main)
	main.B("vm_loop")

	main.Label("op_mul")
	emitPop2(main)
	main.MUL(isa.R0, isa.R0, isa.R1)
	emitPush(main)
	main.B("vm_loop")

	main.Label("op_dup")
	main.SUBi(isa.R5, isa.R5, 4)
	main.LDRr(isa.R0, isa.R11, isa.R5)
	main.ADDi(isa.R5, isa.R5, 4)
	emitPush(main)
	main.B("vm_loop")

	main.Label("op_out")
	main.SUBi(isa.R5, isa.R5, 4)
	main.LDRr(isa.R0, isa.R11, isa.R5)
	main.STRi(isa.R0, isa.R10, periph.HostData)
	main.B("vm_loop")

	main.Label("op_jnz")
	main.SUBi(isa.R5, isa.R5, 4)
	main.LDRr(isa.R0, isa.R11, isa.R5) // condition
	main.LDRBr(isa.R1, isa.R8, isa.R4) // target index
	main.ADDi(isa.R4, isa.R4, 1)
	main.CMPi(isa.R0, 0)
	main.BEQ("vm_loop")
	main.MOVr(isa.R4, isa.R1) // interpreted branch taken
	main.B("vm_loop")

	main.Label("op_loadg")
	main.LDRBr(isa.R0, isa.R8, isa.R4) // slot
	main.ADDi(isa.R4, isa.R4, 1)
	main.LSLi(isa.R1, isa.R0, 2)
	main.LDRr(isa.R0, isa.R6, isa.R1)
	emitPush(main)
	main.B("vm_loop")

	main.Label("op_storeg")
	main.LDRBr(isa.R1, isa.R8, isa.R4) // slot
	main.ADDi(isa.R4, isa.R4, 1)
	main.LSLi(isa.R1, isa.R1, 2)
	main.SUBi(isa.R5, isa.R5, 4)
	main.LDRr(isa.R0, isa.R11, isa.R5)
	main.STRr(isa.R0, isa.R6, isa.R1)
	main.B("vm_loop")

	// Nested computed dispatch: the ALU opcode's operand byte selects from
	// a second table.
	main.Label("op_alu")
	main.LDRBr(isa.R7, isa.R8, isa.R4) // sub-op
	main.ADDi(isa.R4, isa.R4, 1)
	main.CMPi(isa.R7, 3)
	main.BCS("op_halt")
	main.LA(isa.R2, "vm_alu")
	main.LDRPC(isa.R2, isa.R7)

	main.Label("alu_and")
	emitPop2(main)
	main.ANDr(isa.R0, isa.R0, isa.R1)
	emitPush(main)
	main.B("vm_loop")

	main.Label("alu_or")
	emitPop2(main)
	main.ORRr(isa.R0, isa.R0, isa.R1)
	emitPush(main)
	main.B("vm_loop")

	main.Label("alu_xor")
	emitPop2(main)
	main.EORr(isa.R0, isa.R0, isa.R1)
	emitPush(main)
	main.B("vm_loop")

	return p
}
