package apps

import (
	"testing"

	"raptrack/internal/periph"
)

// Reference models mirror the peripheral PRNGs and the assembly logic.

func TestUltrasonicReference(t *testing.T) {
	a, err := Get("ultrasonic")
	if err != nil {
		t.Fatal(err)
	}
	_, dev, err := RunPlain(a)
	if err != nil {
		t.Fatal(err)
	}

	rng := periph.NewRand(0xA11CE)
	const min, max, n = 20, 90, 16
	samples := make([]uint32, n)
	var sum uint32
	for i := range samples {
		samples[i] = min + rng.Intn(max-min+1)
		sum += samples[i]
	}
	avg := sum >> 4
	mm := avg * 343 / 200
	lo, hi := samples[0], samples[0]
	for _, s := range samples[1:] {
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	want := []uint32{mm, lo, hi}
	if len(dev.Host.Words) != len(want) {
		t.Fatalf("host words = %v, want %v", dev.Host.Words, want)
	}
	for i, w := range want {
		if dev.Host.Words[i] != w {
			t.Errorf("word %d = %d, want %d", i, dev.Host.Words[i], w)
		}
	}
	if dev.Ultra.Triggers != n {
		t.Errorf("triggers = %d, want %d", dev.Ultra.Triggers, n)
	}
}

func TestGeigerReference(t *testing.T) {
	a, err := Get("geiger")
	if err != nil {
		t.Fatal(err)
	}
	_, dev, err := RunPlain(a)
	if err != nil {
		t.Fatal(err)
	}

	rng := periph.NewRand(0xBEE5)
	var ring [16]uint32
	var count uint32
	var want []uint32
	countdown := 100
	for slot := uint32(0); slot < 400; slot++ {
		if rng.Intn(100) < 12 {
			count++
			ring[count&15] = slot
		}
		countdown--
		if countdown == 0 {
			countdown = 100
			want = append(want, count*6)
		}
	}
	var ringSum uint32
	for _, v := range ring {
		ringSum += v
	}
	want = append(want, count, ringSum)

	if len(dev.Host.Words) != len(want) {
		t.Fatalf("host words = %v, want %v", dev.Host.Words, want)
	}
	for i, w := range want {
		if dev.Host.Words[i] != w {
			t.Errorf("word %d = %d, want %d", i, dev.Host.Words[i], w)
		}
	}
}

func TestTemperatureReference(t *testing.T) {
	a, err := Get("temperature")
	if err != nil {
		t.Fatal(err)
	}
	_, dev, err := RunPlain(a)
	if err != nil {
		t.Fatal(err)
	}

	rng := periph.NewRand(0x7E3A)
	raw := uint32(512)
	sample := func() uint32 {
		delta := int32(rng.Intn(9)) - 4
		v := int32(raw) + delta
		if v < 0 {
			v = 0
		}
		if v > 1023 {
			v = 1023
		}
		raw = uint32(v)
		return raw
	}
	thresholds := []uint32{64, 128, 192, 256, 320, 384, 448, 512,
		576, 640, 704, 768, 832, 896, 960, 0xffff}
	ewma := uint32(512)
	var want []uint32
	var bucketSum uint32
	countdown := 8
	for i := 0; i < 64; i++ {
		r := sample()
		ewma = (ewma*7 + r) >> 3
		bucket := uint32(0)
		for thresholds[bucket] <= ewma {
			bucket++
		}
		bucketSum += bucket
		countdown--
		if countdown == 0 {
			countdown = 8
			want = append(want, bucket)
		}
	}
	want = append(want, bucketSum>>6)

	if len(dev.Host.Words) != len(want) {
		t.Fatalf("host words = %v, want %v", dev.Host.Words, want)
	}
	for i, w := range want {
		if dev.Host.Words[i] != w {
			t.Errorf("word %d = %d, want %d", i, dev.Host.Words[i], w)
		}
	}
}

func TestSyringeReference(t *testing.T) {
	a, err := Get("syringe")
	if err != nil {
		t.Fatal(err)
	}
	_, dev, err := RunPlain(a)
	if err != nil {
		t.Fatal(err)
	}

	// Mirror the command semantics.
	rate, total := uint32(2), uint32(0)
	var want []uint32
	gpioWrites := 0
	script := syringeScript
	for i := 0; i < len(script); {
		switch script[i] {
		case cmdSetRate:
			rate = uint32(script[i+1])
			i += 2
		case cmdDispense:
			vol := uint32(script[i+1])
			total += vol
			gpioWrites += int(vol*rate) * 2
			i += 2
		case cmdWithdraw:
			vol := uint32(script[i+1])
			if vol > total {
				vol = total
			}
			total -= vol
			gpioWrites += int(vol*rate) * 2
			i += 2
		case cmdStatus:
			want = append(want, rate, total)
			i++
		}
	}
	want = append(want, total)

	if len(dev.Host.Words) != len(want) {
		t.Fatalf("host words = %v, want %v", dev.Host.Words, want)
	}
	for i, w := range want {
		if dev.Host.Words[i] != w {
			t.Errorf("word %d = %d, want %d", i, dev.Host.Words[i], w)
		}
	}
	if dev.GPIO.Writes != gpioWrites {
		t.Errorf("gpio writes = %d, want %d", dev.GPIO.Writes, gpioWrites)
	}
}

// refGPSParse mirrors the assembly state machine character by character.
func refGPSParse(stream []byte) (good, bad, sum uint32) {
	state := 0
	var cs, val, expect uint32
	hex := func(c byte) uint32 {
		if c >= '0' && c <= '9' {
			return uint32(c - '0')
		}
		return uint32(c-'A') + 10
	}
	for _, c := range stream {
		switch state {
		case 0:
			if c == '$' {
				state, cs, val = 1, 0, 0
			}
		case 1:
			if c == '*' {
				sum += val
				val = 0
				state = 2
				continue
			}
			cs ^= uint32(c)
			if c == ',' {
				sum += val
				val = 0
				continue
			}
			if d := uint32(c) - '0'; d < 10 {
				val = val*10 + d
			}
		case 2:
			expect = hex(c) << 4
			state = 3
		case 3:
			expect += hex(c)
			if expect == cs {
				good++
			} else {
				bad++
			}
			state = 0
		}
	}
	return good, bad, sum
}

func TestGPSReference(t *testing.T) {
	a, err := Get("gps")
	if err != nil {
		t.Fatal(err)
	}
	_, dev, err := RunPlain(a)
	if err != nil {
		t.Fatal(err)
	}
	good, bad, sum := refGPSParse(GPSStream())
	if good < 8 {
		t.Fatalf("reference stream should contain >=8 good sentences, got %d", good)
	}
	if bad == 0 {
		t.Fatalf("reference stream should contain a corrupted sentence")
	}
	want := []uint32{good, bad, sum}
	if len(dev.Host.Words) != len(want) {
		t.Fatalf("host words = %v, want %v", dev.Host.Words, want)
	}
	for i, w := range want {
		if dev.Host.Words[i] != w {
			t.Errorf("word %d = %d, want %d", i, dev.Host.Words[i], w)
		}
	}
}
