package apps

import (
	"testing"

	"raptrack/internal/periph"
)

// Reference models for the hostile-workload apps: each test re-runs the
// app's logic in Go (mirroring the peripheral PRNGs exactly) and checks
// the host words match the simulated firmware.

// vmRun interprets dispatch bytecode in Go — the oracle the assembly VM
// is checked against.
func vmRun(code []byte) []uint32 {
	var stack []uint32
	var globals [16]uint32
	var out []uint32
	pc := 0
	pop := func() uint32 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return v
	}
	for {
		op := code[pc]
		pc++
		switch op {
		case vmHALT:
			return out
		case vmPUSHI:
			stack = append(stack, uint32(code[pc]))
			pc++
		case vmADD:
			b, a := pop(), pop()
			stack = append(stack, a+b)
		case vmSUB:
			b, a := pop(), pop()
			stack = append(stack, a-b)
		case vmMUL:
			b, a := pop(), pop()
			stack = append(stack, a*b)
		case vmDUP:
			stack = append(stack, stack[len(stack)-1])
		case vmOUT:
			out = append(out, pop())
		case vmJNZ:
			t := int(code[pc])
			pc++
			if pop() != 0 {
				pc = t
			}
		case vmLOADG:
			stack = append(stack, globals[code[pc]])
			pc++
		case vmSTOREG:
			globals[code[pc]] = pop()
			pc++
		case vmALU:
			sub := code[pc]
			pc++
			b, a := pop(), pop()
			switch sub {
			case aluAND:
				stack = append(stack, a&b)
			case aluOR:
				stack = append(stack, a|b)
			case aluXOR:
				stack = append(stack, a^b)
			}
		}
	}
}

func TestDispatchReference(t *testing.T) {
	a, err := Get("dispatch")
	if err != nil {
		t.Fatal(err)
	}
	_, dev, err := RunPlain(a)
	if err != nil {
		t.Fatal(err)
	}
	want := vmRun(dispatchBytecode())
	if len(want) == 0 {
		t.Fatal("oracle produced no output")
	}
	assertWords(t, dev.Host.Words, want)
	// Pin the program's actual values so a bytecode edit that changes
	// behavior (in both VM and oracle) is still noticed.
	assertWords(t, want, []uint32{720, 720, 160, 245, 85})
}

func TestRTOSReference(t *testing.T) {
	a, err := Get("rtos")
	if err != nil {
		t.Fatal(err)
	}
	_, dev, err := RunPlain(a)
	if err != nil {
		t.Fatal(err)
	}

	rng := periph.NewRand(0x7E3A)
	raw := int32(512)
	sample := func() uint32 {
		delta := int32(rng.Intn(9)) - 4
		raw += delta
		if raw < 0 {
			raw = 0
		}
		if raw > 1023 {
			raw = 1023
		}
		return uint32(raw)
	}

	var ring [8]uint32
	var widx, ridx, ewma, state, count uint32
	var want []uint32
	for round := 0; round < rtosRounds; round++ {
		// task_sense: admit even samples while the ring has room.
		s := sample()
		if s&1 == 0 && widx-ridx < 8 {
			ring[widx&7] = s
			widx++
		}
		// task_filter: drain one entry into the EWMA.
		if ridx != widx {
			v := ring[ridx&7]
			ewma = ewma - ewma>>2 + v>>2
			ridx++
		}
		// task_report: protothread continuation.
		switch state {
		case 0:
			count++
			if count >= rtosEmitWait {
				state = 1
			}
		case 1:
			want = append(want, ewma)
			count, state = 0, 0
		}
	}
	want = append(want, ewma)
	if len(want) < 3 {
		t.Fatalf("degenerate run: only %d host words", len(want))
	}
	assertWords(t, dev.Host.Words, want)
}

func TestInterruptReference(t *testing.T) {
	a, err := Get("interrupt")
	if err != nil {
		t.Fatal(err)
	}
	_, dev, err := RunPlain(a)
	if err != nil {
		t.Fatal(err)
	}

	rng := periph.NewRand(irqGeigerSeed)
	var rad, timer, wdog uint32
	timerCtr, wdogCtr := uint32(irqTimerReload), uint32(irqWdogReload)
	for tick := 0; tick < irqTicks; tick++ {
		var pending uint32
		if rng.Intn(100) < irqGeigerRate {
			pending |= 1
		}
		timerCtr--
		if timerCtr == 0 {
			timerCtr = irqTimerReload
			pending |= 2
		}
		wdogCtr--
		if wdogCtr == 0 {
			wdogCtr = irqWdogReload
			pending |= 4
		}
		if pending&1 != 0 {
			rad++
			if rad&3 == 0 {
				wdog++ // nested escalation from the radiation ISR
			}
		}
		if pending&2 != 0 {
			timer++
			if timer&3 == 0 {
				wdog++ // nested chain from the timer ISR
			}
		}
		if pending&4 != 0 {
			wdog++
		}
	}
	if rad == 0 || rad == irqTicks {
		t.Fatalf("degenerate radiation stream: %d events in %d ticks", rad, irqTicks)
	}
	want := []uint32{rad, timer, wdog, rad<<2 + timer<<1 + wdog}
	assertWords(t, dev.Host.Words, want)
}

func assertWords(t *testing.T, got, want []uint32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("host words = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("word %d = %d, want %d", i, got[i], want[i])
		}
	}
}
