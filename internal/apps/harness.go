package apps

import (
	"fmt"

	"raptrack/internal/asm"
	"raptrack/internal/cpu"
	"raptrack/internal/mem"
)

// RunPlain executes the app without any CFA machinery (the paper's
// "Baseline" configuration) and returns the halted CPU and the peripheral
// handles.
func RunPlain(a App) (*cpu.CPU, *Devices, error) {
	img, err := asm.Layout(a.Build(), mem.NSCodeBase)
	if err != nil {
		return nil, nil, fmt.Errorf("apps: laying out %s: %w", a.Name, err)
	}
	m := mem.New()
	var dev *Devices
	if a.Setup != nil {
		dev = a.Setup(m)
	}
	c, err := cpu.New(cpu.Config{Image: img, Mem: m})
	if err != nil {
		return nil, nil, err
	}
	if err := c.Run(a.MaxSteps); err != nil {
		return nil, dev, fmt.Errorf("apps: running %s: %w", a.Name, err)
	}
	return c, dev, nil
}
