package apps

import (
	"fmt"
	"strings"

	"raptrack/internal/asm"
	"raptrack/internal/isa"
	"raptrack/internal/mem"
	"raptrack/internal/periph"
)

// nmea wraps a sentence body with "$...*CS\r\n" framing.
func nmea(body string) string {
	cs := byte(0)
	for i := 0; i < len(body); i++ {
		cs ^= body[i]
	}
	return fmt.Sprintf("$%s*%02X\r\n", body, cs)
}

// GPSStream is the UART input: a TinyGPS++-style mix of GGA/RMC sentences,
// inter-sentence noise, and one corrupted checksum. Exported so tests can
// compute the reference parse.
func GPSStream() []byte {
	var b strings.Builder
	bodies := []string{
		"GPGGA,123519,4807.038,N,01131.000,E,1,08,0.9,545.4,M,46.9,M,,",
		"GPRMC,123519,A,4807.038,N,01131.000,E,022.4,084.4,230394,003.1,W",
		"GPGGA,123520,4807.040,N,01131.004,E,1,08,0.9,545.9,M,46.9,M,,",
		"GPRMC,123520,A,4807.040,N,01131.004,E,022.6,084.5,230394,003.1,W",
		"GPGGA,123521,4807.043,N,01131.009,E,1,07,1.1,546.3,M,46.9,M,,",
		"GPRMC,123521,A,4807.043,N,01131.009,E,022.9,084.7,230394,003.1,W",
		"GPGGA,123522,4807.047,N,01131.015,E,1,07,1.1,546.8,M,46.9,M,,",
		"GPRMC,123522,A,4807.047,N,01131.015,E,023.1,084.8,230394,003.1,W",
		"GPGGA,123523,4807.052,N,01131.022,E,1,08,0.9,547.1,M,46.9,M,,",
		"GPRMC,123523,A,4807.052,N,01131.022,E,023.4,085.0,230394,003.1,W",
	}
	b.WriteString("@@noise@@") // pre-sentence garbage
	for i, body := range bodies {
		s := nmea(body)
		if i == 6 {
			// Corrupt one checksum nibble: the parser must count it bad.
			s = strings.Replace(s, "*", "*0", 1)
			s = s[:len(s)-3] + "\r\n"
		}
		b.WriteString(s)
	}
	return []byte(b.String())
}

func init() {
	register(App{
		Name: "gps",
		Description: "TinyGPS++-style NMEA parser: per-character state machine with " +
			"jump-table dispatch and checksum validation (indirect-jump heavy)",
		Build: buildGPS,
		Setup: func(m *mem.Memory) *Devices {
			d := &Devices{
				UART: periph.NewUART(GPSStream()),
				Host: &periph.HostLink{},
			}
			m.Map(periph.UARTBase, periph.DeviceWindow, d.UART)
			m.Map(periph.HostLinkBase, periph.DeviceWindow, d.Host)
			return d
		},
	})
}

// Parser register allocation:
//
//	R4 state (0 wait-$, 1 body, 2 checksum-hi, 3 checksum-lo)
//	R5 running XOR checksum   R6 current field value
//	R7 field-value sum        R8 expected checksum
//	R9 UART base              R10 good count   R11 bad count
func buildGPS() *asm.Program {
	p := asm.NewProgram("gps")
	p.AddData(&asm.DataSegment{
		Name: "gps_states",
		Syms: []string{"main.st_wait", "main.st_body", "main.st_cs_hi", "main.st_cs_lo"},
	})

	main := p.NewFunc("main")
	main.PUSH(isa.R4, isa.R5, isa.R6, isa.R7, isa.LR)
	main.MOV32(isa.R9, periph.UARTBase)
	main.MOVi(isa.R4, 0)
	main.MOVi(isa.R5, 0)
	main.MOVi(isa.R6, 0)
	main.MOVi(isa.R7, 0)
	main.MOVi(isa.R10, 0)
	main.MOVi(isa.R11, 0)

	main.Label("next_char")
	main.LDRi(isa.R0, isa.R9, periph.UARTStatus)
	main.MOVi(isa.R1, 1)
	main.ANDr(isa.R1, isa.R0, isa.R1)
	main.CMPi(isa.R1, 0)
	main.BEQ("parse_done") // stream exhausted (forward loop exit)
	main.LDRi(isa.R0, isa.R9, periph.UARTData)
	main.LA(isa.R2, "gps_states")
	main.LDRPC(isa.R2, isa.R4) // jump-table dispatch on parser state

	main.Label("st_wait")
	main.CMPi(isa.R0, '$')
	main.BNE("next_char")
	main.MOVi(isa.R4, 1)
	main.MOVi(isa.R5, 0)
	main.MOVi(isa.R6, 0)
	main.B("next_char")

	main.Label("st_body")
	main.CMPi(isa.R0, '*')
	main.BEQ("to_cs")
	main.EORr(isa.R5, isa.R5, isa.R0)
	main.CMPi(isa.R0, ',')
	main.BEQ("field_end")
	main.SUBi(isa.R1, isa.R0, '0')
	main.CMPi(isa.R1, 10)
	main.BCS("next_char") // not a digit
	main.MOVi(isa.R2, 10)
	main.MUL(isa.R6, isa.R6, isa.R2)
	main.ADDr(isa.R6, isa.R6, isa.R1)
	main.B("next_char")
	main.Label("field_end")
	main.ADDr(isa.R7, isa.R7, isa.R6)
	main.MOVi(isa.R6, 0)
	main.B("next_char")
	main.Label("to_cs")
	main.ADDr(isa.R7, isa.R7, isa.R6)
	main.MOVi(isa.R6, 0)
	main.MOVi(isa.R4, 2)
	main.B("next_char")

	main.Label("st_cs_hi")
	main.BL("hexval")
	main.LSLi(isa.R8, isa.R0, 4)
	main.MOVi(isa.R4, 3)
	main.B("next_char")

	main.Label("st_cs_lo")
	main.BL("hexval")
	main.ADDr(isa.R8, isa.R8, isa.R0)
	main.CMPr(isa.R8, isa.R5)
	main.BNE("cs_bad")
	main.ADDi(isa.R10, isa.R10, 1)
	main.B("cs_done")
	main.Label("cs_bad")
	main.ADDi(isa.R11, isa.R11, 1)
	main.Label("cs_done")
	main.MOVi(isa.R4, 0)
	main.B("next_char")

	main.Label("parse_done")
	main.MOV32(isa.R12, periph.HostLinkBase)
	main.STRi(isa.R10, isa.R12, periph.HostData) // good sentences
	main.STRi(isa.R11, isa.R12, periph.HostData) // bad sentences
	main.STRi(isa.R7, isa.R12, periph.HostData)  // field-value sum
	main.MOVr(isa.R0, isa.R10)
	main.POP(isa.R4, isa.R5, isa.R6, isa.R7, isa.PC)

	// hexval(R0 = ASCII hex char) -> R0 in [0,15]. Leaf.
	hx := p.AddFunc(asm.NewFunction("hexval"))
	hx.SUBi(isa.R1, isa.R0, '0')
	hx.CMPi(isa.R1, 10)
	hx.BCS("alpha")
	hx.MOVr(isa.R0, isa.R1)
	hx.RET()
	hx.Label("alpha")
	hx.SUBi(isa.R0, isa.R0, 'A'-10)
	hx.RET()

	return p
}
