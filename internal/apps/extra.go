package apps

import (
	"encoding/binary"

	"raptrack/internal/asm"
	"raptrack/internal/isa"
	"raptrack/internal/mem"
)

// Extra workloads beyond the paper's evaluation set: a recursive
// quicksort (heavy exercise for the verifier's pushdown reconstruction)
// and a binary search over a constant table. They participate in the
// test suite but not in the paper-figure tables (apps.EvalOrder).

func init() {
	register(App{
		Name: "quicksort",
		Description: "recursive quicksort of 32 pseudo-random words " +
			"(data-dependent recursion depth; verifier stress test)",
		Build: buildQuicksort,
		Setup: setupHostOnly,
	})
	register(App{
		Name: "binsearch",
		Description: "binary search of 24 keys over a sorted 32-word table " +
			"(logarithmic loops with three-way conditionals)",
		Build: buildBinsearch,
		Setup: setupHostOnly,
	})
}

// QuicksortSeed and QuicksortN parameterize the workload (shared with the
// reference test).
const (
	QuicksortSeed = 0x1D2C3B4A
	QuicksortN    = 32
)

// buildQuicksort fills NSDataBase with LCG values and sorts in place via
// textbook Lomuto-partition recursion. R9 holds the array base globally.
func buildQuicksort() *asm.Program {
	p := asm.NewProgram("quicksort")

	main := p.NewFunc("main")
	main.PUSH(isa.R4, isa.R5, isa.LR)
	main.MOV32(isa.R9, mem.NSDataBase)

	// Fill (simple static loop).
	main.MOVi(isa.R4, 0)
	main.MOV32(isa.R5, QuicksortSeed)
	main.Label("fill")
	main.MOV32(isa.R0, 1664525)
	main.MUL(isa.R5, isa.R5, isa.R0)
	main.MOV32(isa.R0, 1013904223)
	main.ADDr(isa.R5, isa.R5, isa.R0)
	main.LSRi(isa.R1, isa.R5, 16)
	main.LSLi(isa.R2, isa.R4, 2)
	main.STRr(isa.R1, isa.R9, isa.R2)
	main.ADDi(isa.R4, isa.R4, 1)
	main.CMPi(isa.R4, QuicksortN)
	main.BLT("fill")

	main.MOVi(isa.R0, 0)
	main.MOVi(isa.R1, QuicksortN-1)
	main.BL("qsort")

	// Checksum sum(a[k]*k) (simple static loop).
	main.MOVi(isa.R4, 0)
	main.MOVi(isa.R5, 0)
	main.Label("sum")
	main.LSLi(isa.R2, isa.R4, 2)
	main.LDRr(isa.R0, isa.R9, isa.R2)
	main.MUL(isa.R0, isa.R0, isa.R4)
	main.ADDr(isa.R5, isa.R5, isa.R0)
	main.ADDi(isa.R4, isa.R4, 1)
	main.CMPi(isa.R4, QuicksortN)
	main.BLT("sum")

	main.MOVr(isa.R0, isa.R5)
	emitReportR0(main)
	main.POP(isa.R4, isa.R5, isa.PC)

	// qsort(R0=lo, R1=hi), signed bounds. Early-out return is on the
	// clean-LR path (deterministic); the recursive exit is monitored.
	q := p.AddFunc(asm.NewFunction("qsort"))
	q.CMPr(isa.R0, isa.R1)
	q.BGE("done")
	q.PUSH(isa.R4, isa.R5, isa.R6, isa.R7, isa.LR)
	q.MOVr(isa.R4, isa.R0) // lo
	q.MOVr(isa.R5, isa.R1) // hi
	// Lomuto partition with pivot a[hi] (kept in R12: no calls inside).
	q.LSLi(isa.R2, isa.R5, 2)
	q.LDRr(isa.R12, isa.R9, isa.R2)
	q.SUBi(isa.R6, isa.R4, 1) // i = lo-1
	q.MOVr(isa.R7, isa.R4)    // j = lo
	q.Label("part")
	q.CMPr(isa.R7, isa.R5)
	q.BGE("placed")
	q.LSLi(isa.R2, isa.R7, 2)
	q.LDRr(isa.R3, isa.R9, isa.R2)
	q.CMPr(isa.R3, isa.R12)
	q.BGT("noswap")
	q.ADDi(isa.R6, isa.R6, 1)
	q.LSLi(isa.R0, isa.R6, 2)
	q.LDRr(isa.R1, isa.R9, isa.R0)
	q.STRr(isa.R1, isa.R9, isa.R2) // a[j] = a[i]
	q.STRr(isa.R3, isa.R9, isa.R0) // a[i] = old a[j]
	q.Label("noswap")
	q.ADDi(isa.R7, isa.R7, 1)
	q.B("part")
	q.Label("placed")
	// Pivot into place: swap a[i+1], a[hi].
	q.ADDi(isa.R6, isa.R6, 1)
	q.LSLi(isa.R0, isa.R6, 2)
	q.LDRr(isa.R1, isa.R9, isa.R0)
	q.LSLi(isa.R2, isa.R5, 2)
	q.LDRr(isa.R3, isa.R9, isa.R2)
	q.STRr(isa.R3, isa.R9, isa.R0)
	q.STRr(isa.R1, isa.R9, isa.R2)
	// Recurse left and right (R4-R6 survive the calls).
	q.MOVr(isa.R0, isa.R4)
	q.SUBi(isa.R1, isa.R6, 1)
	q.BL("qsort")
	q.ADDi(isa.R0, isa.R6, 1)
	q.MOVr(isa.R1, isa.R5)
	q.BL("qsort")
	q.POP(isa.R4, isa.R5, isa.R6, isa.R7, isa.PC)
	q.Label("done")
	q.RET()

	return p
}

// Binsearch parameters (shared with the reference test).
const (
	BinsearchKeys = 24
	BinsearchN    = 32
)

// BinsearchTable returns the sorted lookup table.
func BinsearchTable() []uint32 {
	t := make([]uint32, BinsearchN)
	v := uint32(3)
	for i := range t {
		t[i] = v
		v += 1 + (v*2654435761)%13
	}
	return t
}

// BinsearchKey returns the i-th probe key: every third probe is a known
// miss (value+1 falls between table entries by construction).
func BinsearchKey(i int) uint32 {
	t := BinsearchTable()
	k := t[(i*7)%BinsearchN]
	if i%3 == 2 {
		k++
	}
	return k
}

func buildBinsearch() *asm.Program {
	p := asm.NewProgram("binsearch")
	tbl := BinsearchTable()
	raw := make([]byte, 0, 4*len(tbl))
	for _, v := range tbl {
		raw = binary.LittleEndian.AppendUint32(raw, v)
	}
	p.AddData(&asm.DataSegment{Name: "table", Bytes: raw})

	keys := make([]byte, 0, 4*BinsearchKeys)
	for i := 0; i < BinsearchKeys; i++ {
		keys = binary.LittleEndian.AppendUint32(keys, BinsearchKey(i))
	}
	p.AddData(&asm.DataSegment{Name: "keys", Bytes: keys})

	main := p.NewFunc("main")
	main.PUSH(isa.R4, isa.R5, isa.R6, isa.R7, isa.LR)
	main.LA(isa.R9, "table")
	main.LA(isa.R10, "keys")
	main.MOVi(isa.R4, 0) // key index
	main.MOVi(isa.R6, 0) // found count
	main.MOVi(isa.R7, 0) // found-position sum
	main.Label("keys_loop")
	main.LSLi(isa.R0, isa.R4, 2)
	main.LDRr(isa.R0, isa.R10, isa.R0)
	main.BL("bsearch") // R0 = key -> R0 = index or 0xffffffff
	main.CMPi(isa.R0, 0)
	main.BLT("miss") // signed: -1 means not found
	main.ADDi(isa.R6, isa.R6, 1)
	main.ADDr(isa.R7, isa.R7, isa.R0)
	main.Label("miss")
	main.ADDi(isa.R4, isa.R4, 1)
	main.CMPi(isa.R4, BinsearchKeys)
	main.BLT("keys_loop") // contains a call: not simple

	main.MOV32(isa.R12, 0) // report found<<16 | possum (possum < 2^9 here)
	main.LSLi(isa.R0, isa.R6, 16)
	main.ORRr(isa.R0, isa.R0, isa.R7)
	emitReportR0(main)
	main.POP(isa.R4, isa.R5, isa.R6, isa.R7, isa.PC)

	// bsearch(R0 = key) -> R0 = index or -1. Leaf.
	b := p.AddFunc(asm.NewFunction("bsearch"))
	b.MOVi(isa.R1, 0)            // lo
	b.MOVi(isa.R2, BinsearchN-1) // hi
	b.Label("loop")
	b.CMPr(isa.R1, isa.R2)
	b.BGT("notfound") // lo > hi (signed)
	b.ADDr(isa.R3, isa.R1, isa.R2)
	b.LSRi(isa.R3, isa.R3, 1) // mid
	b.LSLi(isa.R12, isa.R3, 2)
	b.LDRr(isa.R12, isa.R9, isa.R12) // table[mid]
	b.CMPr(isa.R12, isa.R0)
	b.BEQ("hit")
	b.BCC("go_right") // table[mid] < key (unsigned)
	b.SUBi(isa.R2, isa.R3, 1)
	b.B("loop")
	b.Label("go_right")
	b.ADDi(isa.R1, isa.R3, 1)
	b.B("loop")
	b.Label("hit")
	b.MOVr(isa.R0, isa.R3)
	b.RET()
	b.Label("notfound")
	b.MOVi(isa.R0, 0)
	b.SUBi(isa.R0, isa.R0, 1) // -1
	b.RET()

	return p
}
