package apps

import (
	"raptrack/internal/asm"
	"raptrack/internal/isa"
	"raptrack/internal/mem"
	"raptrack/internal/periph"
)

func init() {
	register(App{
		Name: "ultrasonic",
		Description: "Seeed ultrasonic ranger: 16 echo measurements (variable polling loops) " +
			"plus fixed-window statistics (loop-optimization beneficiary)",
		Build: buildUltrasonic,
		Setup: func(m *mem.Memory) *Devices {
			d := &Devices{
				Ultra: periph.NewUltrasonic(0xA11CE, 20, 90),
				Host:  &periph.HostLink{},
			}
			m.Map(periph.UltrasonicBase, periph.DeviceWindow, d.Ultra)
			m.Map(periph.HostLinkBase, periph.DeviceWindow, d.Host)
			return d
		},
	})
}

func buildUltrasonic() *asm.Program {
	p := asm.NewProgram("ultrasonic")
	const samples = 16
	arr := mem.NSDataBase

	main := p.NewFunc("main")
	main.PUSH(isa.R4, isa.R5, isa.R6, isa.R7, isa.LR)
	main.MOV32(isa.R8, periph.UltrasonicBase)
	main.MOV32(isa.R9, arr)
	main.MOV32(isa.R10, periph.HostLinkBase)

	// Measurement phase: trigger, then count polls while the echo is high
	// (variable-duration loop, trampolined per iteration).
	main.MOVi(isa.R4, 0) // sample index
	main.Label("meas")
	main.MOVi(isa.R0, 1)
	main.STRi(isa.R0, isa.R8, periph.UltraTrigger)
	main.MOVi(isa.R5, 0) // poll count
	main.Label("poll")
	main.LDRi(isa.R0, isa.R8, periph.UltraEcho)
	main.CMPi(isa.R0, 0)
	main.BEQ("poll_done") // forward exit, data dependent
	main.ADDi(isa.R5, isa.R5, 1)
	main.B("poll")
	main.Label("poll_done")
	main.LSLi(isa.R0, isa.R4, 2)
	main.STRr(isa.R5, isa.R9, isa.R0)
	main.ADDi(isa.R4, isa.R4, 1)
	main.CMPi(isa.R4, samples)
	main.BLT("meas") // contains non-deterministic polling: not simple

	// Statistics phase. Sum (simple loop, optimized).
	main.MOVi(isa.R4, 0)
	main.MOVi(isa.R5, 0) // sum
	main.Label("sum")
	main.LSLi(isa.R0, isa.R4, 2)
	main.LDRr(isa.R1, isa.R9, isa.R0)
	main.ADDr(isa.R5, isa.R5, isa.R1)
	main.ADDi(isa.R4, isa.R4, 1)
	main.CMPi(isa.R4, samples)
	main.BLT("sum")
	main.LSRi(isa.R5, isa.R5, 4) // avg polls

	// Convert average to millimetres: mm = polls * 343 / 200 (sound speed
	// scaling at the synthetic poll rate).
	main.MOV32(isa.R0, 343)
	main.MUL(isa.R5, isa.R5, isa.R0)
	main.MOVi(isa.R0, 200)
	main.UDIV(isa.R5, isa.R5, isa.R0)

	// Min/max scan (data-dependent conditionals: not simple).
	main.LDRi(isa.R6, isa.R9, 0) // min
	main.MOVr(isa.R7, isa.R6)    // max
	main.MOVi(isa.R4, 1)
	main.Label("mm")
	main.LSLi(isa.R0, isa.R4, 2)
	main.LDRr(isa.R1, isa.R9, isa.R0)
	main.CMPr(isa.R1, isa.R6)
	main.BCS("not_min")
	main.MOVr(isa.R6, isa.R1)
	main.Label("not_min")
	main.CMPr(isa.R1, isa.R7)
	main.BLS("not_max")
	main.MOVr(isa.R7, isa.R1)
	main.Label("not_max")
	main.ADDi(isa.R4, isa.R4, 1)
	main.CMPi(isa.R4, samples)
	main.BLT("mm")

	// Report avg_mm, min, max.
	main.STRi(isa.R5, isa.R10, periph.HostData)
	main.STRi(isa.R6, isa.R10, periph.HostData)
	main.STRi(isa.R7, isa.R10, periph.HostData)
	main.MOVr(isa.R0, isa.R5)
	main.POP(isa.R4, isa.R5, isa.R6, isa.R7, isa.PC)
	return p
}
