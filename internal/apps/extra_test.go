package apps

import (
	"sort"
	"testing"
)

func TestQuicksort(t *testing.T) {
	got := runAndGetResult(t, "quicksort")
	x := uint32(QuicksortSeed)
	vals := make([]uint32, QuicksortN)
	for i := range vals {
		x = x*1664525 + 1013904223
		vals[i] = x >> 16
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	var want uint32
	for i, v := range vals {
		want += v * uint32(i)
	}
	if got != want {
		t.Errorf("quicksort checksum = %#x, want %#x", got, want)
	}
}

func TestBinsearch(t *testing.T) {
	got := runAndGetResult(t, "binsearch")
	tbl := BinsearchTable()
	idx := make(map[uint32]uint32, len(tbl))
	for i, v := range tbl {
		idx[v] = uint32(i)
	}
	var found, possum uint32
	for i := 0; i < BinsearchKeys; i++ {
		if pos, ok := idx[BinsearchKey(i)]; ok {
			found++
			possum += pos
		}
	}
	if found == 0 || found == BinsearchKeys {
		t.Fatalf("degenerate key mix: %d/%d found", found, BinsearchKeys)
	}
	want := found<<16 | possum
	if got != want {
		t.Errorf("binsearch = %#x, want %#x (found=%d possum=%d)", got, want, found, possum)
	}
}
