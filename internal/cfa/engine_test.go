package cfa

import (
	"errors"
	"testing"

	"raptrack/internal/asm"
	"raptrack/internal/attest"
	"raptrack/internal/cpu"
	"raptrack/internal/isa"
	"raptrack/internal/linker"
	"raptrack/internal/mem"
	"raptrack/internal/trace/pipeline"
	"raptrack/internal/tz"
)

func smallLinked(t *testing.T) *linker.Output {
	t.Helper()
	p := asm.NewProgram("small")
	f := p.NewFunc("main")
	f.PUSH(isa.LR)
	f.MUL(isa.R3, isa.R0, isa.R0) // runtime-ish init (not static)
	f.ADDi(isa.R3, isa.R3, 9)
	f.Label("loop")
	f.SUBi(isa.R3, isa.R3, 1)
	f.CMPi(isa.R3, 0)
	f.BNE("loop") // logged loop
	f.CMPi(isa.R3, 1)
	f.BEQ("skip")
	f.MOVi(isa.R1, 2)
	f.Label("skip")
	f.POP(isa.PC)
	out, err := linker.Link(p, linker.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func newEngine(t *testing.T, cfg Config) (*Engine, *mem.Memory) {
	t.Helper()
	if cfg.Mem == nil {
		cfg.Mem = mem.New()
	}
	if cfg.Signer == nil {
		key, err := attest.GenerateHMACKey()
		if err != nil {
			t.Fatal(err)
		}
		cfg.Signer = key
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e, cfg.Mem
}

func TestSessionLifecycle(t *testing.T) {
	out := smallLinked(t)
	e, _ := newEngine(t, Config{Link: out})
	chal, _ := attest.NewChallenge("small")

	if _, err := e.Finish(); err == nil {
		t.Error("Finish before Begin should fail")
	}
	if err := e.Begin(chal); err != nil {
		t.Fatal(err)
	}
	if err := e.Begin(chal); err == nil {
		t.Error("double Begin should fail")
	}
	c, err := cpu.New(e.CPUConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	reports, err := e.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) == 0 || !reports[len(reports)-1].Final {
		t.Fatalf("reports = %d", len(reports))
	}
	if _, err := e.Finish(); err == nil {
		t.Error("double Finish should fail")
	}
	// A new session can start on the same engine.
	chal2, _ := attest.NewChallenge("small")
	if err := e.Begin(chal2); err != nil {
		t.Errorf("re-Begin: %v", err)
	}
}

func TestBeginLocksNSMPU(t *testing.T) {
	out := smallLinked(t)
	e, _ := newEngine(t, Config{Link: out})
	chal, _ := attest.NewChallenge("small")
	if err := e.Begin(chal); err != nil {
		t.Fatal(err)
	}
	if !e.NSMPU.Locked() {
		t.Fatal("NS-MPU not locked after Begin")
	}
	img := out.Image
	if err := e.NSMPU.CheckWrite(img.Base); err == nil {
		t.Error("APP code writable after Begin")
	}
	if err := e.NSMPU.CheckWrite(mem.NSDataBase); err != nil {
		t.Errorf("APP RAM should stay writable: %v", err)
	}
}

func TestDWTConfiguredForRegions(t *testing.T) {
	out := smallLinked(t)
	e, _ := newEngine(t, Config{Link: out})
	chal, _ := attest.NewChallenge("small")
	if err := e.Begin(chal); err != nil {
		t.Fatal(err)
	}
	start, stop := e.DWT.Evaluate(out.MTBAR.Base)
	if !start || stop {
		t.Error("MTBAR base must assert TSTART")
	}
	start, stop = e.DWT.Evaluate(out.MTBDR.Base)
	if start || !stop {
		t.Error("MTBDR base must assert TSTOP")
	}
}

func TestSecureAttribution(t *testing.T) {
	out := smallLinked(t)
	e, _ := newEngine(t, Config{Link: out})
	if e.SAU.WorldOf(mem.SDataBase) != tz.Secure {
		t.Error("CFLog SRAM must be secure")
	}
	if e.SAU.WorldOf(mem.SCodeBase) != tz.Secure {
		t.Error("engine code must be secure")
	}
	if e.SAU.WorldOf(mem.NSCodeBase) != tz.NonSecure {
		t.Error("APP code must be non-secure")
	}
}

// chattyLinked produces one packet per loop iteration (CMP reg,reg defeats
// the loop optimization).
func chattyLinked(t *testing.T) *linker.Output {
	t.Helper()
	p := asm.NewProgram("chatty")
	f := p.NewFunc("main")
	f.MOVi(isa.R3, 40)
	f.MOVi(isa.R6, 0)
	f.Label("loop")
	f.SUBi(isa.R3, isa.R3, 1)
	f.CMPr(isa.R3, isa.R6)
	f.BNE("loop") // trampolined per iteration
	f.HLT()
	out, err := linker.Link(p, linker.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestPartialReportsAtWatermark(t *testing.T) {
	out := chattyLinked(t)
	e, _ := newEngine(t, Config{Link: out, Watermark: 32}) // 4 packets per window
	chal, _ := attest.NewChallenge("chatty")
	if err := e.Begin(chal); err != nil {
		t.Fatal(err)
	}
	c, _ := cpu.New(e.CPUConfig())
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	reports, err := e.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if e.Partials == 0 {
		t.Fatal("no partial reports despite tiny watermark")
	}
	if len(reports) != e.Partials+1 {
		t.Errorf("reports %d != partials %d + 1", len(reports), e.Partials)
	}
	for i, r := range reports[:len(reports)-1] {
		if len(r.CFLog) != 32 {
			t.Errorf("partial %d window = %d bytes", i, len(r.CFLog))
		}
	}
	if e.MTB.Wraps != 0 {
		t.Error("watermark draining must prevent buffer wraps")
	}
	if e.PauseCycles == 0 {
		t.Error("report emission must cost pause cycles")
	}
}

func TestConfigValidation(t *testing.T) {
	out := smallLinked(t)
	key, _ := attest.GenerateHMACKey()
	if _, err := New(Config{Mem: mem.New(), Signer: key}); err == nil {
		t.Error("nil Link accepted")
	}
	if _, err := New(Config{Link: out, Mem: mem.New(), Signer: key, Watermark: 33}); err == nil {
		t.Error("unaligned watermark accepted")
	}
	if _, err := New(Config{Link: out, Mem: mem.New(), Signer: key, Watermark: 8192, MTBBufferSize: 4096}); err == nil {
		t.Error("watermark beyond buffer accepted")
	}
}

func TestSvcLogLoopOutsideSession(t *testing.T) {
	out := smallLinked(t)
	e, _ := newEngine(t, Config{Link: out})
	var regs [16]uint32
	if _, err := e.Gateway.Call(tz.SvcLogLoop, &regs); err == nil {
		t.Error("loop logging outside a session should fail")
	}
}

func TestEngineEntriesInterleaved(t *testing.T) {
	out := smallLinked(t)
	e, _ := newEngine(t, Config{Link: out})
	chal, _ := attest.NewChallenge("small")
	if err := e.Begin(chal); err != nil {
		t.Fatal(err)
	}
	c, _ := cpu.New(e.CPUConfig())
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	if e.MTB.EngineEntries != 1 {
		t.Errorf("engine entries = %d, want 1 (one logged loop)", e.MTB.EngineEntries)
	}
	reports, _ := e.Finish()
	pkts, _ := pipeline.New(pipeline.Raw(pipeline.FormatMTB, reports[len(reports)-1].CFLog)).Packets()
	// The loop-condition entry must appear before the final return packet.
	var loopIdx, retIdx = -1, -1
	for i, p := range pkts {
		if _, ok := out.Loops[p.Src]; ok {
			loopIdx = i
		}
		if s, ok := out.Stubs[p.Src]; ok && s.Class.String() == "return" {
			retIdx = i
		}
	}
	if loopIdx < 0 || retIdx < 0 || loopIdx > retIdx {
		t.Errorf("ordering: loop@%d return@%d", loopIdx, retIdx)
	}
}

func TestSetupCyclesScaleWithCode(t *testing.T) {
	out := smallLinked(t)
	e, _ := newEngine(t, Config{Link: out})
	chal, _ := attest.NewChallenge("small")
	if err := e.Begin(chal); err != nil {
		t.Fatal(err)
	}
	if e.SetupCycles == 0 {
		t.Error("hashing APP must cost setup cycles")
	}
}

func TestNSCannotTouchCFLog(t *testing.T) {
	// An application instruction trying to read or clobber the CFLog SRAM
	// must take a SecureFault.
	p := asm.NewProgram("evil")
	f := p.NewFunc("main")
	f.MOV32(isa.R0, mem.SDataBase)
	f.MOVi(isa.R1, 0)
	f.STRi(isa.R1, isa.R0, 0)
	f.HLT()
	out, err := linker.Link(p, linker.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	e, _ := newEngine(t, Config{Link: out})
	chal, _ := attest.NewChallenge("evil")
	if err := e.Begin(chal); err != nil {
		t.Fatal(err)
	}
	c, _ := cpu.New(e.CPUConfig())
	err = c.Run(0)
	var sf *tz.SecurityFault
	if !errors.As(err, &sf) {
		t.Errorf("CFLog write by NS code: %v", err)
	}
}
