// Package cfa implements the RAP-Track CFA Engine — the Secure-World Root
// of Trust of paper §IV-A. For each attestation session the engine:
//
//  1. locks the NS-MPU with the application code marked read-only,
//  2. measures the application (H_MEM),
//  3. programs the DWT comparators so the MTB is active exactly inside
//     MTBAR, and arms the MTB watermark for partial reports (§IV-E),
//  4. serves the SvcLogLoop secure call that appends loop-condition
//     entries to CFLog (§IV-D),
//  5. signs and emits (partial) reports binding Chal, H_MEM and CFLog.
//
// Cycle accounting separates the application's runtime (CPU cycles,
// including trampolines and secure calls) from engine pause time (hashing
// and signing during partial-report emission), mirroring how the paper
// reports runtime vs. communication costs.
package cfa

import (
	"errors"
	"fmt"

	"raptrack/internal/attest"
	"raptrack/internal/cpu"
	"raptrack/internal/isa"
	"raptrack/internal/linker"
	"raptrack/internal/mem"
	"raptrack/internal/speccfa"
	"raptrack/internal/trace"
	"raptrack/internal/trace/pipeline"
	"raptrack/internal/tz"
)

// Modeled Secure-World footprint, matching the paper's prototype (§V:
// "RAP-Track Secure World code occupies 11 KB in total with the CFA Engine
// occupying 2.8 KB"). The simulator reserves this much Secure code space.
const (
	SecureWorldCodeBytes = 11 * 1024
	EngineCodeBytes      = 2868
)

// Engine work cycle model.
const (
	// HashCyclesPerByte approximates software SHA-256 on a Cortex-M33.
	HashCyclesPerByte = 13
	// SignFixedCycles is the fixed cost of an HMAC/signature over the
	// report header.
	SignFixedCycles = 4000
	// LogAppendCycles is the Secure-World work to append one CFLog entry
	// (on top of the gateway's context-switch cost).
	LogAppendCycles = 20
	// CompressCyclesPerPacket is the Secure-World work to match one packet
	// against the speculation dictionary during report emission.
	CompressCyclesPerPacket = 6
)

// Config assembles an Engine.
type Config struct {
	Link   *linker.Output
	Mem    *mem.Memory
	Signer attest.Signer

	// MTBBufferSize is the MTB SRAM capacity (default 4 KB, the M33
	// limit discussed in §V-B).
	MTBBufferSize int
	// Watermark is the partial-report trigger position in bytes; 0 means
	// "buffer full" (a partial report whenever the buffer would wrap).
	Watermark int
	// ArmLatency is the MTB activation delay in instructions (default 2;
	// the linker's NopPad must cover it).
	ArmLatency int
	// ContextSwitchCycles overrides the NS<->S round-trip cost (default
	// tz.DefaultContextSwitchCycles).
	ContextSwitchCycles uint64
	// Speculation, when non-nil, enables SpecCFA-style sub-path
	// compression: each report window is compressed against the
	// Verifier-provisioned dictionary before signing.
	Speculation *speccfa.Dictionary
}

// Engine is the Secure-World CFA engine instance for one application.
type Engine struct {
	link   *linker.Output
	mem    *mem.Memory
	signer attest.Signer

	SAU     *tz.SAU
	NSMPU   *tz.MPU
	Gateway *tz.Gateway
	MTB     *trace.MTB
	DWT     *trace.DWT

	spec    *speccfa.Dictionary
	chal    attest.Challenge
	hmem    [32]byte
	active  bool
	seq     uint32
	reports []*attest.Report

	// SetupCycles is the one-time session cost (hashing APP).
	// PauseCycles accumulates partial/final report emission (hash+sign)
	// during which the application is stalled.
	SetupCycles uint64
	PauseCycles uint64
	// Partials counts watermark-triggered report emissions.
	Partials int

	// lastWraps/lastDropped snapshot the MTB loss counters at the last
	// report emission, so each report carries only its own window's loss
	// evidence (Report.Wraps / Report.Dropped).
	lastWraps   uint64
	lastDropped uint64

	// OnReport, when non-nil, observes each signed report the moment it
	// is emitted (partial reports included) — the hook remote transports
	// use to stream evidence while the application is still running.
	OnReport func(*attest.Report)

	armLatency int
	watermark  int
}

// New wires an engine and its TrustZone environment around the linked
// application.
func New(cfg Config) (*Engine, error) {
	if cfg.Link == nil || cfg.Mem == nil || cfg.Signer == nil {
		return nil, errors.New("cfa: Config.Link, Config.Mem and Config.Signer are required")
	}
	bufSize := cfg.MTBBufferSize
	if bufSize == 0 {
		bufSize = trace.DefaultBufferSize
	}
	wm := cfg.Watermark
	if wm == 0 {
		wm = bufSize
	}
	if wm > bufSize || wm%trace.PacketSize != 0 {
		return nil, fmt.Errorf("cfa: watermark %d invalid for %d-byte MTB buffer", wm, bufSize)
	}
	arm := cfg.ArmLatency
	if arm == 0 {
		arm = 2
	}

	e := &Engine{
		link:       cfg.Link,
		mem:        cfg.Mem,
		signer:     cfg.Signer,
		spec:       cfg.Speculation,
		SAU:        tz.NewSAU(),
		NSMPU:      tz.NewMPU(),
		Gateway:    tz.NewGateway(),
		DWT:        trace.NewDWT(),
		armLatency: arm,
		watermark:  wm,
	}
	if cfg.ContextSwitchCycles != 0 {
		e.Gateway.ContextSwitchCycles = cfg.ContextSwitchCycles
	}
	// Secure-World attribution: engine code, CFLog SRAM (and with it the
	// MTB/DWT control blocks, which live in Secure space).
	e.SAU.MarkSecure(mem.SCodeBase, SecureWorldCodeBytes)
	e.SAU.MarkSecure(mem.SDataBase, uint32(bufSize))
	e.MTB = trace.NewMTB(cfg.Mem, mem.SDataBase, bufSize)
	e.MTB.SetArmLatency(arm)
	e.Gateway.Register(tz.SvcLogLoop, e.svcLogLoop)
	return e, nil
}

// Link returns the linked artifact the engine attests.
func (e *Engine) Link() *linker.Output { return e.link }

// SetSpeculation replaces the SpecCFA dictionary (nil disables
// compression). Gateways deliver a live, mined dictionary in the session
// handshake; it must land before Begin — mid-session swaps would compress
// different report windows with different speculation sets, which the
// Verifier cannot expand.
func (e *Engine) SetSpeculation(d *speccfa.Dictionary) error {
	if e.active {
		return errors.New("cfa: cannot replace the speculation dictionary mid-session")
	}
	e.spec = d
	return nil
}

// Begin starts a CFA session for chal: locks the NS-MPU over APP code,
// measures H_MEM, programs DWT/MTB. Call before running the application.
func (e *Engine) Begin(chal attest.Challenge) error {
	if e.active {
		return errors.New("cfa: session already active")
	}
	img := e.link.Image

	// Lock APP code (including MTBAR stubs and tables) read-only.
	e.NSMPU.Unlock()
	if err := e.NSMPU.Clear(); err != nil {
		return err
	}
	err := e.NSMPU.AddRegion(tz.MPURegion{
		Range:    tz.Range{Base: img.Base, Limit: img.Base + img.TotalSize},
		ReadOnly: true,
		Name:     "APP code",
	})
	if err != nil {
		return err
	}
	e.NSMPU.Lock()

	// Measure.
	canon := img.CanonicalBytes()
	e.hmem = img.Hash()
	e.SetupCycles = uint64(len(canon)) * HashCyclesPerByte

	// Trace configuration: MTB active exactly inside MTBAR.
	e.DWT.Clear()
	if err := e.DWT.Program(trace.RangeRule{
		Base: e.link.MTBAR.Base, Limit: e.link.MTBAR.Limit, Action: trace.ActionStartMTB,
	}); err != nil {
		return err
	}
	if err := e.DWT.Program(trace.RangeRule{
		Base: e.link.MTBDR.Base, Limit: e.link.MTBDR.Limit, Action: trace.ActionStopMTB,
	}); err != nil {
		return err
	}
	e.MTB.ResetPosition()
	e.MTB.TStop()
	e.MTB.SetMaster(false)
	if err := e.MTB.SetWatermark(e.watermark); err != nil {
		return err
	}
	e.MTB.OnWatermark = func() { e.emitReport(false) }

	e.chal = chal
	e.seq = 0
	e.reports = nil
	e.Partials = 0
	e.PauseCycles = 0
	e.lastWraps = e.MTB.Wraps
	e.lastDropped = e.MTB.DroppedArming
	e.active = true
	return nil
}

// svcLogLoop is the Secure-World service behind the §IV-D loop-condition
// instrumentation: it appends an engine packet (source = the SECALL's own
// address, destination = the counter value staged in R0).
func (e *Engine) svcLogLoop(_ int32, regs *[16]uint32) (uint64, error) {
	if !e.active {
		return 0, errors.New("cfa: SvcLogLoop outside an active session")
	}
	e.MTB.SoftAppend(regs[isa.PC], regs[isa.R0])
	return LogAppendCycles, nil
}

// emitReport drains the CFLog window [0, position) into a signed report
// and rewinds the MTB. The report also carries the window's loss evidence
// (buffer wraps, arming drops) read from the MTB counters — the simulator
// makes both observable to Secure-World code; on silicon the wrap is
// inferable from MTB_POSITION's wrap bit — so a Verifier can tell
// "evidence incomplete" apart from "evidence attests an attack".
func (e *Engine) emitReport(final bool) {
	n := e.MTB.Position()
	log := e.mem.ReadBytes(mem.SDataBase, uint32(n))
	if e.spec.Len() > 0 {
		// The MTB window is whole-packet by construction; strict decode
		// asserts that instead of assuming it.
		packets, derr := pipeline.DecodeMTB(log)
		if derr != nil {
			panic("cfa: MTB window not whole-packet: " + derr.Error())
		}
		e.PauseCycles += uint64(len(packets)) * CompressCyclesPerPacket
		log = pipeline.EncodeMTB(e.spec.Compress(packets))
	}
	wraps := e.MTB.Wraps - e.lastWraps
	dropped := e.MTB.DroppedArming - e.lastDropped
	e.lastWraps = e.MTB.Wraps
	e.lastDropped = e.MTB.DroppedArming
	r := &attest.Report{
		App:     e.chal.App,
		Nonce:   e.chal.Nonce,
		Seq:     e.seq,
		Final:   final,
		Wraps:   uint32(wraps),
		Dropped: uint32(dropped),
		HMem:    e.hmem,
		CFLog:   log,
	}
	if err := attest.SignReport(r, e.signer); err != nil {
		// Signing with an in-memory key cannot fail; treat as fatal.
		panic(fmt.Sprintf("cfa: signing report: %v", err))
	}
	e.PauseCycles += uint64(len(log))*HashCyclesPerByte + SignFixedCycles
	e.reports = append(e.reports, r)
	e.seq++
	if !final {
		e.Partials++
	}
	e.MTB.ResetPosition()
	if e.OnReport != nil {
		e.OnReport(r)
	}
}

// Finish ends the session, emitting the final report, and returns the full
// report chain in sequence order.
func (e *Engine) Finish() ([]*attest.Report, error) {
	if !e.active {
		return nil, errors.New("cfa: no active session")
	}
	e.emitReport(true)
	e.active = false
	e.MTB.OnWatermark = nil
	return e.reports, nil
}

// CPUConfig wires a CPU configuration for running the attested application
// under this engine.
func (e *Engine) CPUConfig() cpu.Config {
	return cpu.Config{
		Image:   e.link.Image,
		Mem:     e.mem,
		SAU:     e.SAU,
		NSMPU:   e.NSMPU,
		Gateway: e.Gateway,
		MTB:     e.MTB,
		DWT:     e.DWT,
	}
}
