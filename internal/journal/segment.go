package journal

import (
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
)

// Segment header layout:
//
//	magic "RTJS" | u32 version | u64 baseSeq | prevHash[32]
//
// Segments are created via temp-file+rename with the header already
// synced, so a *.seg file either carries a complete header or does not
// exist; a short or mangled header is therefore evidence damage, never
// a benign crash artifact.
const (
	segmentHeaderSize = 4 + 4 + 8 + 32
	segmentVersion    = 1
)

var segmentMagic = []byte("RTJS")

// manifestName is the sealed-segment index, written atomically after
// every rotation. It is advisory for chain validation (segments
// self-describe) but load-bearing for deletion detection: a sealed
// segment listed here but missing on disk is a chain break, not a
// fresh journal.
const manifestName = "MANIFEST"

func segmentName(base uint64) string { return fmt.Sprintf("journal-%016x.seg", base) }

// parseSegmentName extracts the base sequence from a segment filename.
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "journal-") || !strings.HasSuffix(name, ".seg") {
		return 0, false
	}
	hexPart := strings.TrimSuffix(strings.TrimPrefix(name, "journal-"), ".seg")
	if len(hexPart) != 16 {
		return 0, false
	}
	var base uint64
	if _, err := fmt.Sscanf(hexPart, "%016x", &base); err != nil {
		return 0, false
	}
	return base, true
}

func encodeSegmentHeader(baseSeq uint64, prevHash [32]byte) []byte {
	b := make([]byte, 0, segmentHeaderSize)
	b = append(b, segmentMagic...)
	b = binary.LittleEndian.AppendUint32(b, segmentVersion)
	b = binary.LittleEndian.AppendUint64(b, baseSeq)
	b = append(b, prevHash[:]...)
	return b
}

func parseSegmentHeader(data []byte) (baseSeq uint64, prevHash [32]byte, err error) {
	if len(data) < segmentHeaderSize {
		return 0, prevHash, fmt.Errorf("%w: %d-byte segment header", ErrBadRecord, len(data))
	}
	if string(data[:4]) != string(segmentMagic) {
		return 0, prevHash, fmt.Errorf("%w: bad segment magic", ErrBadRecord)
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != segmentVersion {
		return 0, prevHash, fmt.Errorf("%w: segment version %d (want %d)", ErrBadRecord, v, segmentVersion)
	}
	baseSeq = binary.LittleEndian.Uint64(data[8:])
	copy(prevHash[:], data[16:segmentHeaderSize])
	return baseSeq, prevHash, nil
}

// manifest is the JSON sealed-segment index.
type manifest struct {
	Sealed []manifestSegment `json:"sealed"`
}

type manifestSegment struct {
	Name    string `json:"name"`
	BaseSeq uint64 `json:"base_seq"`
	LastSeq uint64 `json:"last_seq"`
	Head    string `json:"head"` // hex hash of the last record
}

func loadManifest(fsys FS, dir string) manifest {
	var m manifest
	data, err := fsys.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return manifest{}
	}
	if json.Unmarshal(data, &m) != nil {
		// A corrupt manifest is rebuilt from the segments themselves;
		// it indexes the chain, it is not part of it.
		return manifest{}
	}
	return m
}

func writeManifest(fsys FS, dir string, m manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return WriteFileAtomic(fsys, filepath.Join(dir, manifestName), append(data, '\n'), 0o644)
}

// ChainError pinpoints a broken hash chain: the exact segment, byte
// offset and expected sequence where validation failed. Recovery never
// silently skips past one — policy decides between refusing to open and
// quarantining the damaged suffix.
type ChainError struct {
	Segment string // segment filename
	Offset  int64  // byte offset of the offending frame
	Seq     uint64 // expected sequence at that point
	Reason  string
}

func (e *ChainError) Error() string {
	return fmt.Sprintf("journal: broken chain in %s at offset %d (seq %d): %s",
		e.Segment, e.Offset, e.Seq, e.Reason)
}

// segInfo is one scanned segment.
type segInfo struct {
	name    string
	base    uint64
	size    int64
	lastSeq uint64
	head    [32]byte
	records int
}

// TornTail describes a truncatable interrupted append at the journal
// tail: everything from Offset on in the final segment is a partial
// record that was never acknowledged durable.
type TornTail struct {
	Segment string
	Offset  int64
}

// scanResult is the outcome of one full-chain validation pass.
type scanResult struct {
	records  []Record  // validated prefix, in order
	segments []segInfo // fully validated segments (final may be partial)
	nextSeq  uint64    // sequence the next append gets
	head     [32]byte  // hash of the last validated record
	torn     *TornTail // non-nil: final-segment tail to truncate
	// breakErr is non-nil when the chain is damaged beyond a torn tail;
	// breakIdx is the index into names of the offending segment.
	breakErr *ChainError
	breakIdx int
	names    []string // all segment files on disk, in base order
}

// scan validates the whole journal chain under dir. IO errors are
// returned directly; chain damage is reported in the result so the
// caller can apply policy (refuse, quarantine, truncate).
func scan(fsys FS, dir string) (scanResult, error) {
	res := scanResult{breakIdx: -1}
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return res, fmt.Errorf("journal: reading %s: %w", dir, err)
	}
	type seg struct {
		name string
		base uint64
	}
	var segs []seg
	for _, e := range entries {
		if base, ok := parseSegmentName(e.Name()); ok {
			segs = append(segs, seg{e.Name(), base})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].base < segs[j].base })
	for _, s := range segs {
		res.names = append(res.names, s.name)
	}

	// Deletion detection: every sealed segment the manifest knows must
	// still be present.
	man := loadManifest(fsys, dir)
	onDisk := make(map[string]bool, len(segs))
	for _, s := range segs {
		onDisk[s.name] = true
	}
	for _, ms := range man.Sealed {
		if !onDisk[ms.Name] {
			res.breakErr = &ChainError{Segment: ms.Name, Seq: ms.BaseSeq,
				Reason: "sealed segment listed in manifest is missing"}
			res.breakIdx = 0
			return res, nil
		}
	}

	if len(segs) == 0 {
		res.nextSeq = 1
		return res, nil
	}

	var head [32]byte
	nextSeq := uint64(0) // 0: adopt the first segment's base as the anchor
	for i, s := range segs {
		final := i == len(segs)-1
		data, err := fsys.ReadFile(filepath.Join(dir, s.name))
		if err != nil {
			return res, fmt.Errorf("journal: reading %s: %w", s.name, err)
		}
		fail := func(off int64, seq uint64, reason string) {
			res.breakErr = &ChainError{Segment: s.name, Offset: off, Seq: seq, Reason: reason}
			res.breakIdx = i
		}
		base, prev, err := parseSegmentHeader(data)
		if err != nil {
			fail(0, nextSeq, err.Error())
			return res, nil
		}
		if base != s.base {
			fail(0, nextSeq, fmt.Sprintf("header base seq %d does not match filename", base))
			return res, nil
		}
		if nextSeq == 0 {
			// Chain anchor: the first segment on disk (earlier history
			// may have been quarantined; the manifest check above
			// already ruled out silent deletion of sealed segments).
			nextSeq = base
			head = prev
		}
		if base != nextSeq || prev != head {
			fail(0, nextSeq, "segment header does not continue the chain")
			return res, nil
		}
		info := segInfo{name: s.name, base: base, size: int64(len(data))}
		off := segmentHeaderSize
		for off < len(data) {
			rec, next, state, perr := parseFrame(data, off)
			switch state {
			case frameComplete:
				if rec.Seq != nextSeq {
					fail(int64(off), nextSeq, fmt.Sprintf("record seq %d, want %d", rec.Seq, nextSeq))
					return res, nil
				}
				if rec.PrevHash != head {
					fail(int64(off), nextSeq, "record does not chain to its predecessor")
					return res, nil
				}
				head = rec.Hash
				nextSeq++
				info.lastSeq = rec.Seq
				info.head = rec.Hash
				info.records++
				res.records = append(res.records, rec)
				off = next
			case frameTorn:
				// An interrupted append only ever damages the tail of
				// the final segment. Anywhere else — or with valid
				// records still parseable beyond the damage — this is
				// corruption, not a crash artifact.
				if final && !validFrameBeyond(data, off+1, nextSeq) {
					res.torn = &TornTail{Segment: s.name, Offset: int64(off)}
					off = len(data)
					break
				}
				fail(int64(off), nextSeq, perr.Error())
				return res, nil
			case frameCorrupt:
				fail(int64(off), nextSeq, perr.Error())
				return res, nil
			}
		}
		res.segments = append(res.segments, info)
	}
	res.nextSeq = nextSeq
	res.head = head
	return res, nil
}

// validFrameBeyond reports whether any CRC-valid frame with a plausible
// sequence number starts at or after off — the disambiguator between a
// torn tail (garbage to EOF, safe to truncate) and damage in the middle
// of surviving records (a chain break that must be surfaced, never
// silently dropped).
func validFrameBeyond(data []byte, off int, expectSeq uint64) bool {
	const maxScan = 4 << 20
	end := len(data)
	if end-off > maxScan {
		end = off + maxScan
	}
	for c := off; c+frameHeaderSize+recordBodyMin <= end; c++ {
		rec, _, state, _ := parseFrame(data, c)
		if state != frameComplete {
			continue
		}
		if rec.Seq >= expectSeq && rec.Seq < expectSeq+1<<20 {
			return true
		}
	}
	return false
}

func hashHex(h [32]byte) string { return hex.EncodeToString(h[:]) }
