package journal

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"time"
)

// auditIndex is the in-memory query index over the journal: built from
// the recovery scan at Open and updated on every Append (shed records
// included — degraded mode must not blind the audit surface). Bounded:
// per-device history is a small ring and total tracked devices are
// capped FIFO, so a device-churning fleet cannot grow it without bound.
type auditIndex struct {
	mu          sync.Mutex
	devices     map[string][]auditEntry
	deviceOrder []string
	reasons     map[string]*reasonCluster
	dicts       []dictEvent
}

const (
	auditPerDevice  = 64
	auditMaxDevices = 4096
)

// auditEntry is one device-history row.
type auditEntry struct {
	Seq     uint64    `json:"seq"`
	Time    time.Time `json:"time"`
	App     string    `json:"app"`
	Outcome string    `json:"outcome"`
	Reason  string    `json:"reason,omitempty"`
	Detail  string    `json:"detail,omitempty"`
}

// reasonCluster aggregates rejections sharing one ReasonCode.
type reasonCluster struct {
	Reason     string            `json:"reason"`
	Count      uint64            `json:"count"`
	Apps       map[string]uint64 `json:"apps"`
	LastSeq    uint64            `json:"last_seq"`
	LastDevice string            `json:"last_device,omitempty"`
	LastDetail string            `json:"last_detail,omitempty"`
}

// dictEvent is one point on the dictionary-version timeline.
type dictEvent struct {
	Seq     uint64    `json:"seq"`
	Time    time.Time `json:"time"`
	App     string    `json:"app"`
	Version uint64    `json:"version"`
	Bytes   int       `json:"bytes"`
}

// note folds one record into the index.
func (a *auditIndex) note(rec Record) {
	a.mu.Lock()
	defer a.mu.Unlock()
	switch rec.Kind {
	case KindDict:
		a.dicts = append(a.dicts, dictEvent{
			Seq: rec.Seq, Time: rec.Time, App: rec.App,
			Version: rec.DictVersion, Bytes: len(rec.Payload),
		})
	case KindVerdict:
		e := auditEntry{
			Seq: rec.Seq, Time: rec.Time, App: rec.App,
			Outcome: rec.Outcome.String(), Detail: rec.Detail,
		}
		if rec.Outcome == OutcomeAttack || rec.Outcome == OutcomeInconclusive {
			e.Reason = rec.Code.String()
		}
		if a.devices == nil {
			a.devices = make(map[string][]auditEntry)
		}
		hist, known := a.devices[rec.Device]
		if !known {
			if len(a.deviceOrder) >= auditMaxDevices {
				oldest := a.deviceOrder[0]
				a.deviceOrder = a.deviceOrder[1:]
				delete(a.devices, oldest)
			}
			a.deviceOrder = append(a.deviceOrder, rec.Device)
		}
		if len(hist) >= auditPerDevice {
			copy(hist, hist[1:])
			hist = hist[:auditPerDevice-1]
		}
		a.devices[rec.Device] = append(hist, e)

		if rec.Outcome != OutcomeOK {
			if a.reasons == nil {
				a.reasons = make(map[string]*reasonCluster)
			}
			key := rec.Code.String()
			c := a.reasons[key]
			if c == nil {
				c = &reasonCluster{Reason: key, Apps: make(map[string]uint64)}
				a.reasons[key] = c
			}
			c.Count++
			c.Apps[rec.App]++
			c.LastSeq = rec.Seq
			c.LastDevice = rec.Device
			c.LastDetail = rec.Detail
		}
	}
}

// AuditHandler serves the journal's audit queries as JSON:
//
//	/debug/journal            chain summary + counters
//	/debug/journal?device=D   verdict history for one device
//	/debug/journal?reasons=1  rejection clusters by ReasonCode
//	/debug/journal?dicts=1    dictionary-version timeline
func AuditHandler(j *Journal) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		q := r.URL.Query()
		switch {
		case q.Get("device") != "":
			_ = enc.Encode(j.audit.deviceHistory(q.Get("device")))
		case q.Get("reasons") != "":
			_ = enc.Encode(j.audit.reasonClusters())
		case q.Get("dicts") != "":
			_ = enc.Encode(j.audit.dictTimeline())
		default:
			_ = enc.Encode(j.summary())
		}
	})
}

// summary is the default /debug/journal body.
func (j *Journal) summary() map[string]any {
	c := j.Counters()
	degraded := j.Degraded()
	j.mu.Lock()
	next := j.nextSeq
	head := j.head
	segs := len(j.sealed) + 1
	j.mu.Unlock()
	return map[string]any{
		"next_seq":  next,
		"head":      hashHex(head),
		"segments":  segs,
		"degraded":  degraded,
		"devices":   j.audit.deviceCount(),
		"appended":  c.Appended,
		"rotated":   c.Rotated,
		"recovered": c.Recovered,
		"truncated": c.Truncated,
		"chain_breaks": c.ChainBreaks,
		"quarantined":  c.Quarantined,
		"shed":         c.Shed,
		"ring_dropped": c.RingDropped,
		"write_errors": c.WriteErrors,
		"fsyncs":       c.Fsyncs,
	}
}

func (a *auditIndex) deviceCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.devices)
}

func (a *auditIndex) deviceHistory(device string) map[string]any {
	a.mu.Lock()
	defer a.mu.Unlock()
	hist := append([]auditEntry(nil), a.devices[device]...)
	return map[string]any{"device": device, "history": hist}
}

func (a *auditIndex) reasonClusters() map[string]any {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]*reasonCluster, 0, len(a.reasons))
	for _, c := range a.reasons {
		cp := *c
		cp.Apps = make(map[string]uint64, len(c.Apps))
		for k, v := range c.Apps {
			cp.Apps[k] = v
		}
		out = append(out, &cp)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Count > out[k].Count })
	return map[string]any{"clusters": out}
}

func (a *auditIndex) dictTimeline() map[string]any {
	a.mu.Lock()
	defer a.mu.Unlock()
	return map[string]any{"dictionaries": append([]dictEvent(nil), a.dicts...)}
}
