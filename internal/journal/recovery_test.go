// Crash-recovery matrix: every row damages a journal on disk in a
// specific way and asserts recover-or-detect — a torn tail is truncated
// and the durable prefix survives byte-for-byte, while any in-chain
// damage is refused (or quarantined, by policy) and NEVER silently
// accepted. The seeded disk-fault schedules (short writes, fsync
// bursts, power-loss torn tails) live in internal/faults/disk_test.go;
// this file covers the surgically precise cases.
package journal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// buildJournal writes n verdict records (tiny segments when rotate is
// set) and returns the directory plus the clean scan for ground truth.
func buildJournal(t *testing.T, n int, rotate bool) (string, ScanReport) {
	t.Helper()
	dir := t.TempDir()
	opts := Options{Fsync: SyncNever}
	if rotate {
		opts.SegmentBytes = 512
	}
	j := mustOpen(t, dir, opts)
	for i := 0; i < n; i++ {
		if err := j.Append(testEntry(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := ScanDir(nil, dir)
	if err != nil || rep.Break != nil || len(rep.Records) != n {
		t.Fatalf("ground truth scan: %d records, break=%v, err=%v", len(rep.Records), rep.Break, err)
	}
	return dir, rep
}

func finalSegment(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".seg") {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		t.Fatal("no segments")
	}
	return names[len(names)-1] // ReadDir sorts; base-seq order == lexical order
}

// assertPrefix fails unless got is exactly the first len(got) records of
// want — same sequence numbers, hashes and payload bytes.
func assertPrefix(t *testing.T, got, want []Record) {
	t.Helper()
	if len(got) > len(want) {
		t.Fatalf("recovered %d records, more than the %d written", len(got), len(want))
	}
	for i := range got {
		if got[i].Seq != want[i].Seq || got[i].Hash != want[i].Hash ||
			got[i].Detail != want[i].Detail {
			t.Fatalf("recovered record %d differs from what was written:\n got %+v\nwant %+v",
				i, got[i], want[i])
		}
	}
}

func TestRecoveryTornLastRecord(t *testing.T) {
	for _, cut := range []int{1, 3, frameHeaderSize, frameHeaderSize + 17} {
		t.Run(fmt.Sprintf("keep%dB", cut), func(t *testing.T) {
			dir, truth := buildJournal(t, 10, false)
			seg := filepath.Join(dir, finalSegment(t, dir))
			data, err := os.ReadFile(seg)
			if err != nil {
				t.Fatal(err)
			}
			// Re-locate the last record's frame start and cut mid-frame.
			off := segmentHeaderSize
			last := off
			for off < len(data) {
				_, next, state, _ := parseFrame(data, off)
				if state != frameComplete {
					break
				}
				last = off
				off = next
			}
			if err := os.Truncate(seg, int64(last+cut)); err != nil {
				t.Fatal(err)
			}

			j := mustOpen(t, dir, Options{})
			c := j.Counters()
			if c.Truncated != 1 || c.ChainBreaks != 0 || c.Recovered != 9 {
				t.Fatalf("counters = %+v", c)
			}
			// The journal appends cleanly at the truncated head.
			if err := j.Append(testEntry(99)); err != nil {
				t.Fatal(err)
			}
			if j.NextSeq() != 11 {
				t.Fatalf("next seq %d, want 11", j.NextSeq())
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			rep, err := ScanDir(nil, dir)
			if err != nil || rep.Break != nil || len(rep.Records) != 10 {
				t.Fatalf("post-recovery scan: %d records, break=%v, err=%v", len(rep.Records), rep.Break, err)
			}
			assertPrefix(t, rep.Records[:9], truth.Records)
		})
	}
}

func TestRecoveryTruncatedSegmentHeader(t *testing.T) {
	dir, _ := buildJournal(t, 10, false)
	seg := filepath.Join(dir, finalSegment(t, dir))
	if err := os.Truncate(seg, segmentHeaderSize-10); err != nil {
		t.Fatal(err)
	}
	// Segment creation is atomic (temp+rename with the header synced), so
	// a short header can only mean damage — detected, never accepted.
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("open accepted a truncated segment header")
	} else if !strings.Contains(err.Error(), "broken chain") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestRecoveryBitFlipMidChain(t *testing.T) {
	dir, truth := buildJournal(t, 20, true)
	// Flip one bit inside the SECOND segment: damage with valid records
	// both before and after — unambiguously corruption, not a torn tail.
	entries, _ := os.ReadDir(dir)
	var segs []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".seg") {
			segs = append(segs, e.Name())
		}
	}
	if len(segs) < 3 {
		t.Fatalf("want >=3 segments, have %d", len(segs))
	}
	target := filepath.Join(dir, segs[1])
	data, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	data[segmentHeaderSize+frameHeaderSize+30] ^= 0x04
	if err := os.WriteFile(target, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// Policy RefuseOpen: the default answer to tampering is to stop.
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("open accepted a flipped bit mid-chain")
	} else {
		var ce *ChainError
		if !errors.As(err, &ce) || ce.Segment != segs[1] {
			t.Fatalf("error %v does not pinpoint %s", err, segs[1])
		}
	}

	// Policy Quarantine: resume from the verified prefix, damage kept on
	// disk for forensics, nothing silently deleted.
	j, err := Open(dir, Options{OnChainBreak: Quarantine})
	if err != nil {
		t.Fatal(err)
	}
	c := j.Counters()
	if c.ChainBreaks != 1 || c.Quarantined < 2 {
		t.Fatalf("counters = %+v", c)
	}
	firstBase, _ := parseSegmentName(segs[1])
	if j.NextSeq() != firstBase {
		t.Fatalf("resumed at seq %d, want %d", j.NextSeq(), firstBase)
	}
	if err := j.Append(testEntry(7)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	quarantined := 0
	entries, _ = os.ReadDir(dir)
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".quarantined") {
			quarantined++
		}
	}
	if quarantined < 2 {
		t.Fatalf("%d quarantined files on disk, want the damaged suffix", quarantined)
	}
	rep, err := ScanDir(nil, dir)
	if err != nil || rep.Break != nil {
		t.Fatalf("post-quarantine scan: break=%v, err=%v", rep.Break, err)
	}
	if len(rep.Records) != int(firstBase) {
		t.Fatalf("post-quarantine records %d, want %d (prefix + 1 fresh)", len(rep.Records), firstBase)
	}
	assertPrefix(t, rep.Records[:firstBase-1], truth.Records)
}

func TestRecoveryRotationInterrupted(t *testing.T) {
	// Crash window: the new segment was renamed into place but the
	// manifest was not yet updated to list the old one as sealed. The
	// scan re-derives the sealed set from the segments themselves.
	dir, truth := buildJournal(t, 20, true)
	stale := manifest{} // pretend the manifest write never happened
	if err := writeManifest(OSFS, dir, stale); err != nil {
		t.Fatal(err)
	}
	j := mustOpen(t, dir, Options{})
	if c := j.Counters(); c.ChainBreaks != 0 || c.Recovered != 20 {
		t.Fatalf("counters = %+v", c)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Open repaired the manifest.
	m := loadManifest(OSFS, dir)
	if len(m.Sealed) == 0 {
		t.Fatal("manifest not rebuilt after interrupted rotation")
	}
	rep, err := ScanDir(nil, dir)
	if err != nil || rep.Break != nil {
		t.Fatalf("scan after repair: break=%v, err=%v", rep.Break, err)
	}
	assertPrefix(t, rep.Records, truth.Records)
}

func TestRecoverySealedSegmentDeleted(t *testing.T) {
	dir, _ := buildJournal(t, 20, true)
	m := loadManifest(OSFS, dir)
	if len(m.Sealed) == 0 {
		t.Fatal("no sealed segments")
	}
	victim := m.Sealed[0].Name
	if err := os.Remove(filepath.Join(dir, victim)); err != nil {
		t.Fatal(err)
	}
	// Deleting evidence must never look like a fresh journal.
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("open accepted a deleted sealed segment")
	} else if !strings.Contains(err.Error(), "missing") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestRecoveryStrayTempFilesRemoved(t *testing.T) {
	dir, truth := buildJournal(t, 5, false)
	// An interrupted atomic write leaves a temp file; it was never part
	// of the chain and Open clears it.
	stray := filepath.Join(dir, "MANIFEST.tmp")
	if err := os.WriteFile(stray, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	j := mustOpen(t, dir, Options{})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Fatalf("stray temp file survived recovery: %v", err)
	}
	rep, err := ScanDir(nil, dir)
	if err != nil || rep.Break != nil {
		t.Fatalf("scan: break=%v, err=%v", rep.Break, err)
	}
	assertPrefix(t, rep.Records, truth.Records)
}
