package journal

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"time"

	"raptrack/internal/verify"
)

// Kind classifies a journal record.
type Kind uint8

const (
	// KindVerdict is one session outcome plus its complete evidence
	// (attest.EncodeEvidence bytes: the challenge and signed report
	// chain), sufficient for a later bit-for-bit re-verification.
	KindVerdict Kind = iota + 1
	// KindDict is one live-dictionary version (speccfa wire encoding),
	// journaled at registration and on every mining promotion so replay
	// can expand each session's evidence with exactly the dictionary its
	// prover compressed with.
	KindDict

	numKinds
)

func (k Kind) String() string {
	switch k {
	case KindVerdict:
		return "verdict"
	case KindDict:
		return "dict"
	}
	return "invalid-kind"
}

// Outcome classifies a journaled session verdict.
type Outcome uint8

const (
	OutcomeOK           Outcome = iota // accepted
	OutcomeAttack                      // rejected (typed ReasonCode)
	OutcomeInconclusive                // attested capture loss; re-attest
	OutcomeError                       // malformed or inauthentic evidence

	numOutcomes
)

var outcomeNames = [numOutcomes]string{"ok", "attack", "inconclusive", "error"}

func (o Outcome) String() string {
	if o < numOutcomes {
		return outcomeNames[o]
	}
	return "invalid-outcome"
}

// Entry is the caller-supplied content of one journal record; the
// journal assigns sequencing and chain hashes on Append.
type Entry struct {
	Kind   Kind
	Time   time.Time
	App    string
	Device string // session peer (remote address); "" for dict records

	Outcome     Outcome
	Code        verify.ReasonCode
	Detail      string
	DictVersion uint64

	// Payload carries the evidence (KindVerdict: attest.EncodeEvidence
	// bytes) or the dictionary encoding (KindDict).
	Payload []byte
}

// Record is one committed journal entry. Hash = SHA-256 of the encoded
// body, which itself contains PrevHash — so every record seals the full
// history before it, and altering any stored byte breaks the chain at
// the next link (the paper's tamper-evidence argument for reports,
// applied to storage).
type Record struct {
	Entry
	Seq      uint64
	PrevHash [32]byte
	Hash     [32]byte
}

// Record frame layout inside a segment:
//
//	u32 bodyLen | u32 crc32(body) | body
//
// body:
//
//	u64 seq | i64 unixNano | prevHash[32] | u8 kind | u8 outcome |
//	u8 code | u64 dictVersion | u16 appLen | app | u16 deviceLen |
//	device | u32 detailLen | detail | u32 payloadLen | payload
//
// The CRC detects torn tails and cold bit flips cheaply; the hash chain
// makes deliberate tampering detectable even when the CRC is fixed up.
const (
	frameHeaderSize = 8
	recordBodyMin   = 8 + 8 + 32 + 3 + 8 + 2 + 2 + 4 + 4
	// MaxRecordBody bounds one record body (a report chain plus slack).
	MaxRecordBody = 16 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrBadRecord is returned for structurally invalid record bytes.
var ErrBadRecord = errors.New("journal: malformed record")

// appendBody serializes r's body (everything under the CRC and hash).
func (r *Record) appendBody(b []byte) []byte {
	b = binary.LittleEndian.AppendUint64(b, r.Seq)
	b = binary.LittleEndian.AppendUint64(b, uint64(r.Time.UnixNano()))
	b = append(b, r.PrevHash[:]...)
	b = append(b, byte(r.Kind), byte(r.Outcome), byte(r.Code))
	b = binary.LittleEndian.AppendUint64(b, r.DictVersion)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(r.App)))
	b = append(b, r.App...)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(r.Device)))
	b = append(b, r.Device...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(r.Detail)))
	b = append(b, r.Detail...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(r.Payload)))
	b = append(b, r.Payload...)
	return b
}

// encode seals the record: computes Hash over the body and returns the
// complete frame (len | crc | body).
func (r *Record) encode() ([]byte, error) {
	if r.Kind == 0 || r.Kind >= numKinds {
		return nil, fmt.Errorf("%w: kind %d", ErrBadRecord, r.Kind)
	}
	if r.Outcome >= numOutcomes {
		return nil, fmt.Errorf("%w: outcome %d", ErrBadRecord, r.Outcome)
	}
	if len(r.App) > 0xffff || len(r.Device) > 0xffff {
		return nil, fmt.Errorf("%w: name too long", ErrBadRecord)
	}
	body := r.appendBody(make([]byte, 0, recordBodyMin+len(r.App)+len(r.Device)+len(r.Detail)+len(r.Payload)))
	if len(body) > MaxRecordBody {
		return nil, fmt.Errorf("%w: %d-byte body exceeds limit", ErrBadRecord, len(body))
	}
	r.Hash = sha256.Sum256(body)
	frame := make([]byte, frameHeaderSize, frameHeaderSize+len(body))
	binary.LittleEndian.PutUint32(frame[0:], uint32(len(body)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(body, crcTable))
	return append(frame, body...), nil
}

// decodeRecordBody parses one CRC-validated body into a Record,
// recomputing Hash. Chain linkage (PrevHash, Seq continuity) is the
// scanner's job.
func decodeRecordBody(body []byte) (Record, error) {
	var r Record
	if len(body) < recordBodyMin {
		return r, fmt.Errorf("%w: %d-byte body", ErrBadRecord, len(body))
	}
	r.Seq = binary.LittleEndian.Uint64(body[0:])
	r.Time = time.Unix(0, int64(binary.LittleEndian.Uint64(body[8:])))
	copy(r.PrevHash[:], body[16:48])
	r.Kind = Kind(body[48])
	r.Outcome = Outcome(body[49])
	r.Code = verify.ReasonCode(body[50])
	r.DictVersion = binary.LittleEndian.Uint64(body[51:])
	if r.Kind == 0 || r.Kind >= numKinds || r.Outcome >= numOutcomes || !r.Code.Valid() {
		return r, fmt.Errorf("%w: invalid enums", ErrBadRecord)
	}
	rest := body[59:]
	takeStr16 := func() (string, bool) {
		if len(rest) < 2 {
			return "", false
		}
		n := int(binary.LittleEndian.Uint16(rest))
		rest = rest[2:]
		if len(rest) < n {
			return "", false
		}
		s := string(rest[:n])
		rest = rest[n:]
		return s, true
	}
	takeBytes32 := func() ([]byte, bool) {
		if len(rest) < 4 {
			return nil, false
		}
		n := int(binary.LittleEndian.Uint32(rest))
		rest = rest[4:]
		if len(rest) < n {
			return nil, false
		}
		b := rest[:n]
		rest = rest[n:]
		return b, true
	}
	var ok bool
	if r.App, ok = takeStr16(); !ok {
		return r, fmt.Errorf("%w: truncated app", ErrBadRecord)
	}
	if r.Device, ok = takeStr16(); !ok {
		return r, fmt.Errorf("%w: truncated device", ErrBadRecord)
	}
	detail, ok := takeBytes32()
	if !ok {
		return r, fmt.Errorf("%w: truncated detail", ErrBadRecord)
	}
	r.Detail = string(detail)
	if r.Payload, ok = takeBytes32(); !ok {
		return r, fmt.Errorf("%w: truncated payload", ErrBadRecord)
	}
	r.Payload = append([]byte(nil), r.Payload...)
	if len(rest) != 0 {
		return r, fmt.Errorf("%w: %d trailing body bytes", ErrBadRecord, len(rest))
	}
	r.Hash = sha256.Sum256(body)
	return r, nil
}

// parseFrame reads one frame at data[off:]. It distinguishes the three
// outcomes the recovery scan keys on:
//
//	complete  — CRC-valid frame; rec holds the decoded record
//	torn      — the frame cannot be complete at this offset (short
//	            header, length past EOF): the signature of an
//	            interrupted append at the tail
//	corrupt   — a complete frame whose CRC or structure is wrong: bytes
//	            were altered in place, not cut short
type frameState uint8

const (
	frameComplete frameState = iota
	frameTorn
	frameCorrupt
)

func parseFrame(data []byte, off int) (rec Record, next int, state frameState, err error) {
	if off+frameHeaderSize > len(data) {
		return rec, len(data), frameTorn, fmt.Errorf("%w: short frame header", ErrBadRecord)
	}
	bodyLen := int(binary.LittleEndian.Uint32(data[off:]))
	if bodyLen < recordBodyMin || bodyLen > MaxRecordBody {
		// An insane length field: either a partially written header
		// (torn) or a flipped bit in a cold length field (corrupt).
		// The caller disambiguates by looking for valid frames beyond.
		return rec, len(data), frameTorn, fmt.Errorf("%w: implausible body length %d", ErrBadRecord, bodyLen)
	}
	end := off + frameHeaderSize + bodyLen
	if end > len(data) {
		return rec, len(data), frameTorn, fmt.Errorf("%w: %d-byte body cut short", ErrBadRecord, bodyLen)
	}
	body := data[off+frameHeaderSize : end]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(data[off+4:]) {
		return rec, end, frameCorrupt, fmt.Errorf("%w: CRC mismatch", ErrBadRecord)
	}
	rec, err = decodeRecordBody(body)
	if err != nil {
		return rec, end, frameCorrupt, err
	}
	return rec, end, frameComplete, nil
}
