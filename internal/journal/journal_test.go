// Journal core tests: record framing, append/recover round trips,
// rotation + manifest bookkeeping, group commit under concurrency, the
// atomic-write helper, and degraded-mode shedding. All must pass under
// -race; the crash/corruption matrix lives in recovery_test.go.
package journal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"raptrack/internal/verify"
)

func testEntry(i int) Entry {
	return Entry{
		Kind:        KindVerdict,
		Time:        time.Unix(1700000000, int64(i)),
		App:         "prime",
		Device:      fmt.Sprintf("127.0.0.1:%d", 40000+i),
		Outcome:     Outcome(i % int(numOutcomes)),
		Code:        verify.ReasonCode(i % 3),
		Detail:      fmt.Sprintf("detail-%d", i),
		DictVersion: uint64(i % 4),
		Payload:     bytes.Repeat([]byte{byte(i)}, 64+i%32),
	}
}

func mustOpen(t *testing.T, dir string, opts Options) *Journal {
	t.Helper()
	j, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestRecordFrameRoundTrip(t *testing.T) {
	r := Record{Entry: testEntry(3), Seq: 7}
	r.PrevHash[0] = 0xAB
	frame, err := r.encode()
	if err != nil {
		t.Fatal(err)
	}
	got, next, state, err := parseFrame(frame, 0)
	if err != nil || state != frameComplete || next != len(frame) {
		t.Fatalf("parseFrame: state=%d next=%d err=%v", state, next, err)
	}
	if got.Seq != 7 || got.PrevHash != r.PrevHash || got.Hash != r.Hash ||
		got.App != r.App || got.Device != r.Device || got.Detail != r.Detail ||
		got.Outcome != r.Outcome || got.Code != r.Code || got.DictVersion != r.DictVersion ||
		!bytes.Equal(got.Payload, r.Payload) || !got.Time.Equal(r.Time) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, r)
	}

	// Truncations of a valid frame are torn, never complete.
	for _, cut := range []int{1, frameHeaderSize - 1, frameHeaderSize + 1, len(frame) - 1} {
		if _, _, state, _ := parseFrame(frame[:cut], 0); state != frameTorn {
			t.Errorf("cut at %d: state %d, want torn", cut, state)
		}
	}
	// An in-place body flip is corrupt (CRC), never torn.
	mut := append([]byte(nil), frame...)
	mut[frameHeaderSize+20] ^= 0x40
	if _, _, state, _ := parseFrame(mut, 0); state != frameCorrupt {
		t.Errorf("flipped body: state %d, want corrupt", state)
	}
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{Fsync: SyncNever})
	const n = 40
	var hashes [][32]byte
	for i := 0; i < n; i++ {
		if err := j.Append(testEntry(i)); err != nil {
			t.Fatal(err)
		}
		hashes = append(hashes, j.Head())
	}
	if err := j.Append(Entry{Kind: KindDict, App: "prime", DictVersion: 1, Payload: []byte("dict")}); err != nil {
		t.Fatal(err)
	}
	if c := j.Counters(); c.Appended != n+1 || c.Shed != 0 {
		t.Fatalf("counters = %+v", c)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := j.Append(testEntry(0)); err == nil {
		t.Fatal("append after close succeeded")
	}

	j2 := mustOpen(t, dir, Options{})
	defer j2.Close()
	c := j2.Counters()
	if c.Recovered != n+1 || c.Truncated != 0 || c.ChainBreaks != 0 {
		t.Fatalf("recovery counters = %+v", c)
	}
	if j2.NextSeq() != n+2 {
		t.Fatalf("next seq %d, want %d", j2.NextSeq(), n+2)
	}
	rep, err := ScanDir(nil, dir)
	if err != nil || rep.Break != nil || rep.Torn != nil {
		t.Fatalf("ScanDir: %v %v %v", err, rep.Break, rep.Torn)
	}
	if len(rep.Records) != n+1 {
		t.Fatalf("scanned %d records, want %d", len(rep.Records), n+1)
	}
	for i := 0; i < n; i++ {
		rec := rep.Records[i]
		want := testEntry(i)
		if rec.Seq != uint64(i+1) || rec.Hash != hashes[i] ||
			rec.Device != want.Device || !bytes.Equal(rec.Payload, want.Payload) {
			t.Fatalf("record %d mismatch: %+v", i, rec)
		}
		if i > 0 && rec.PrevHash != rep.Records[i-1].Hash {
			t.Fatalf("record %d does not chain", i)
		}
	}
	if last := rep.Records[n]; last.Kind != KindDict || last.DictVersion != 1 {
		t.Fatalf("dict record = %+v", last)
	}
}

func TestRotationAndManifest(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force many rotations.
	j := mustOpen(t, dir, Options{Fsync: SyncNever, SegmentBytes: 512})
	const n = 30
	for i := 0; i < n; i++ {
		if err := j.Append(testEntry(i)); err != nil {
			t.Fatal(err)
		}
	}
	c := j.Counters()
	if c.Rotated < 3 {
		t.Fatalf("rotated %d segments, want several", c.Rotated)
	}
	if got := j.SealedSegments(); uint64(got) != c.Rotated {
		t.Fatalf("sealed %d != rotated %d", got, c.Rotated)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	m := loadManifest(OSFS, dir)
	if uint64(len(m.Sealed)) != c.Rotated {
		t.Fatalf("manifest lists %d sealed, want %d", len(m.Sealed), c.Rotated)
	}
	for i := 1; i < len(m.Sealed); i++ {
		if m.Sealed[i].BaseSeq != m.Sealed[i-1].LastSeq+1 {
			t.Fatalf("manifest gap between %+v and %+v", m.Sealed[i-1], m.Sealed[i])
		}
	}

	j2 := mustOpen(t, dir, Options{})
	defer j2.Close()
	if c2 := j2.Counters(); c2.Recovered != n {
		t.Fatalf("recovered %d records across segments, want %d", c2.Recovered, n)
	}
	if err := j2.Append(testEntry(0)); err != nil {
		t.Fatal(err)
	}
	if j2.NextSeq() != n+2 {
		t.Fatalf("next seq %d after cross-segment recovery", j2.NextSeq())
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	for i, content := range []string{"first exposition\n", "second, longer exposition\n"} {
		if err := WriteFileAtomic(nil, path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(path)
		if err != nil || string(got) != content {
			t.Fatalf("write %d: %q, %v", i, got, err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".tmp" {
			t.Fatalf("stray temp file %s", e.Name())
		}
	}
}

func TestGroupCommitConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{Fsync: SyncEach})
	const workers, per = 8, 12
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := j.Append(testEntry(w*per + i)); err != nil {
					t.Errorf("append: %v", err)
				}
			}
		}(w)
	}
	wg.Wait()
	c := j.Counters()
	if c.Appended != workers*per {
		t.Fatalf("appended %d, want %d", c.Appended, workers*per)
	}
	if c.Fsyncs == 0 || c.Fsyncs > c.Appended+1 {
		t.Fatalf("fsyncs %d out of range for %d appends", c.Fsyncs, c.Appended)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := ScanDir(nil, dir)
	if err != nil || rep.Break != nil || len(rep.Records) != workers*per {
		t.Fatalf("recovery after concurrent appends: %d records, break=%v, err=%v",
			len(rep.Records), rep.Break, err)
	}
}

// failFS passes writes through until armed, then fails every file write
// and sync — a disk that dies mid-run.
type failFS struct {
	FS
	mu     sync.Mutex
	broken bool
}

func (f *failFS) fail() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.broken
}

func (f *failFS) breakNow() {
	f.mu.Lock()
	f.broken = true
	f.mu.Unlock()
}

func (f *failFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if f.fail() {
		return nil, errors.New("failFS: open")
	}
	inner, err := f.FS.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &failFile{File: inner, fs: f}, nil
}

type failFile struct {
	File
	fs *failFS
}

func (f *failFile) Write(p []byte) (int, error) {
	if f.fs.fail() {
		return 0, errors.New("failFS: write")
	}
	return f.File.Write(p)
}

func (f *failFile) Sync() error {
	if f.fs.fail() {
		return errors.New("failFS: sync")
	}
	return f.File.Sync()
}

func TestDegradedModeShedsToRing(t *testing.T) {
	dir := t.TempDir()
	ffs := &failFS{FS: OSFS}
	j := mustOpen(t, dir, Options{FS: ffs, Fsync: SyncNever, RingSize: 8})
	for i := 0; i < 5; i++ {
		if err := j.Append(testEntry(i)); err != nil {
			t.Fatal(err)
		}
	}
	if j.Degraded() {
		t.Fatal("degraded before any failure")
	}
	ffs.breakNow()

	// Every post-failure append must still succeed from the caller's view.
	const lost = 12
	for i := 0; i < lost; i++ {
		if err := j.Append(testEntry(100 + i)); err != nil {
			t.Fatalf("append during disk failure: %v", err)
		}
	}
	if !j.Degraded() {
		t.Fatal("not degraded after write failures")
	}
	if ok, detail := j.Health(); ok || detail == "" {
		t.Fatalf("health = %v %q", ok, detail)
	}
	c := j.Counters()
	if c.Appended != 5 || c.Shed != lost || c.RingDropped != lost-8 || c.WriteErrors == 0 {
		t.Fatalf("counters = %+v", c)
	}
	// Accounting invariant: nothing disappears without a number attached.
	if c.Appended+c.Shed != 5+lost {
		t.Fatalf("appended %d + shed %d != offered %d", c.Appended, c.Shed, 5+lost)
	}
	ring := j.Ring()
	if len(ring) != 8 {
		t.Fatalf("ring holds %d, want 8", len(ring))
	}
	// Ring keeps the newest shed records, oldest first, still chained.
	for i, rec := range ring {
		if rec.Detail != fmt.Sprintf("detail-%d", 100+lost-8+i) {
			t.Fatalf("ring[%d] = %q", i, rec.Detail)
		}
		if i > 0 && rec.PrevHash != ring[i-1].Hash {
			t.Fatalf("ring[%d] does not chain", i)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("close degraded journal: %v", err)
	}

	// The durable prefix survives untouched.
	rep, err := ScanDir(nil, dir)
	if err != nil || rep.Break != nil || len(rep.Records) != 5 {
		t.Fatalf("post-failure scan: %d records, break=%v, err=%v", len(rep.Records), rep.Break, err)
	}
}

func TestAppendValidation(t *testing.T) {
	j := mustOpen(t, t.TempDir(), Options{Fsync: SyncNever})
	defer j.Close()
	if err := j.Append(Entry{}); err == nil {
		t.Fatal("zero-kind entry accepted")
	}
	if err := j.Append(Entry{Kind: numKinds}); err == nil {
		t.Fatal("out-of-range kind accepted")
	}
}
