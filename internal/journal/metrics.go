package journal

import (
	"raptrack/internal/obs"
)

// fsyncBounds are the fsync-latency buckets (seconds). Commodity SSDs
// land in the sub-millisecond to low-millisecond range; the top buckets
// exist to make a dying disk visible before it escalates to errors.
var fsyncBounds = []float64{0.0001, 0.0005, 0.001, 0.005, 0.025, 0.1, 0.5}

// RegisterMetrics exposes the journal's accounting as the
// raptrack_journal_* metric families and installs the fsync-latency
// histogram. Call once per journal, before serving traffic.
func (j *Journal) RegisterMetrics(reg *obs.Registry) {
	type cf struct {
		name, help string
		read       func(Counters) uint64
	}
	for _, m := range []cf{
		{"raptrack_journal_appended_total", "Records written to the active segment.",
			func(c Counters) uint64 { return c.Appended }},
		{"raptrack_journal_rotated_total", "Segments sealed by rotation.",
			func(c Counters) uint64 { return c.Rotated }},
		{"raptrack_journal_recovered_total", "Records validated by the startup recovery scan.",
			func(c Counters) uint64 { return c.Recovered }},
		{"raptrack_journal_truncated_total", "Torn tail records truncated at startup.",
			func(c Counters) uint64 { return c.Truncated }},
		{"raptrack_journal_chain_breaks_total", "Broken hash chains detected at startup.",
			func(c Counters) uint64 { return c.ChainBreaks }},
		{"raptrack_journal_quarantined_total", "Segments moved aside by the quarantine policy.",
			func(c Counters) uint64 { return c.Quarantined }},
		{"raptrack_journal_shed_total", "Records diverted to the degraded-mode ring.",
			func(c Counters) uint64 { return c.Shed }},
		{"raptrack_journal_ring_dropped_total", "Degraded-mode ring evictions (oldest shed record lost).",
			func(c Counters) uint64 { return c.RingDropped }},
		{"raptrack_journal_write_errors_total", "Disk write, sync and rotation failures observed.",
			func(c Counters) uint64 { return c.WriteErrors }},
		{"raptrack_journal_fsyncs_total", "Fsyncs issued (group commit shares them across appenders).",
			func(c Counters) uint64 { return c.Fsyncs }},
	} {
		read := m.read
		reg.CounterFunc(m.name, m.help, func() float64 {
			return float64(read(j.Counters()))
		})
	}
	reg.GaugeFunc("raptrack_journal_degraded",
		"1 when the journal is shedding records to the in-memory ring after a disk failure.",
		func() float64 {
			if j.Degraded() {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("raptrack_journal_segments",
		"Segments on disk (sealed plus the active one).",
		func() float64 { return float64(j.SealedSegments() + 1) })
	reg.GaugeFunc("raptrack_journal_next_seq",
		"Sequence number the next appended record receives.",
		func() float64 { return float64(j.NextSeq()) })

	h := reg.Histogram("raptrack_journal_fsync_seconds",
		"Wall time per journal fsync.", fsyncBounds)
	j.fsyncObserve = h.ObserveDuration
}
