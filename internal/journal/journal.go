// Package journal is the durable evidence plane: an append-only,
// segment-rotated, checksummed verdict/evidence journal in which every
// record is hash-chained to its predecessor. Production attestation is
// an audit system — a verdict that dies with the gateway process erases
// exactly the evidence trail the scheme exists to produce — so the
// gateway commits every session outcome (and every live dictionary
// version) through here.
//
// # Trust and failure model
//
// The chain applies the paper's report trust argument to storage: each
// record's hash covers its body including the previous record's hash,
// so altering, reordering or deleting any stored byte is detectable at
// the next link. Per-record CRCs catch accidental damage (torn tails,
// cold bit flips) cheaply; the hash chain catches deliberate tampering
// even when a CRC is fixed up.
//
// Crash safety is end to end:
//
//   - appends are group-committed under a configurable fsync policy
//     ([SyncEach] amortizes one fsync over all concurrently waiting
//     appenders — real group commit, not fsync-per-record);
//   - segments are created and the manifest rewritten via
//     temp-file+rename ([WriteFileAtomic]), so rotation is atomic;
//   - the startup recovery scan truncates a torn tail record (an
//     interrupted append that was never acknowledged durable) but
//     refuses — or quarantines, by policy — a broken hash chain: zero
//     silently-dropped and zero silently-altered records;
//   - a disk-write failure degrades instead of killing the gateway:
//     the journal sheds subsequent records into a bounded in-memory
//     ring, reports Health() degraded, and counts every shed record.
//
// All disk access goes through the [FS] seam so the chaos layer
// (internal/faults) can inject short writes, fsync errors, torn tails
// and cold bit flips with a seeded, replayable schedule.
package journal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// FsyncPolicy selects when appended records are flushed to stable
// storage.
type FsyncPolicy uint8

const (
	// SyncEach makes Append return only after the record is fsynced.
	// Concurrent appenders share fsyncs via group commit.
	SyncEach FsyncPolicy = iota
	// SyncInterval fsyncs on a background ticker; a crash loses at most
	// one interval of records (as a truncatable torn tail).
	SyncInterval
	// SyncNever leaves flushing to the OS (tests, throwaway runs).
	SyncNever
)

// BreakPolicy decides what Open does with a broken hash chain.
type BreakPolicy uint8

const (
	// RefuseOpen fails Open with the *ChainError — the operator must
	// look at the evidence before anything touches it.
	RefuseOpen BreakPolicy = iota
	// Quarantine renames the offending segment and everything after it
	// to *.quarantined and resumes the journal from the last verified
	// record. Nothing is deleted; the damaged suffix stays on disk for
	// forensics.
	Quarantine
)

// Options tunes a Journal; the zero value selects every default.
type Options struct {
	// FS is the filesystem seam (nil: OSFS).
	FS FS
	// SegmentBytes rotates the active segment beyond this size
	// (default 1 MiB).
	SegmentBytes int64
	// Fsync selects the commit durability policy (default SyncEach).
	Fsync FsyncPolicy
	// FsyncEvery is the SyncInterval ticker period (default 100ms).
	FsyncEvery time.Duration
	// OnChainBreak selects the broken-chain policy (default RefuseOpen).
	OnChainBreak BreakPolicy
	// RingSize bounds the degraded-mode in-memory ring (default 1024).
	RingSize int
}

func (o Options) withDefaults() Options {
	if o.FS == nil {
		o.FS = OSFS
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 1 << 20
	}
	if o.FsyncEvery <= 0 {
		o.FsyncEvery = 100 * time.Millisecond
	}
	if o.RingSize <= 0 {
		o.RingSize = 1024
	}
	return o
}

// Counters is a snapshot of the journal's own accounting. Appended +
// Shed covers every record ever handed to Append, so nothing disappears
// without a number attached.
type Counters struct {
	Appended    uint64 // records written to the active segment
	Rotated     uint64 // segments sealed
	Recovered   uint64 // records validated by the startup scan
	Truncated   uint64 // torn tail records truncated at startup
	ChainBreaks uint64 // broken chains detected (quarantined or refused)
	Quarantined uint64 // segments moved aside by the Quarantine policy
	Shed        uint64 // records diverted to the degraded-mode ring
	RingDropped uint64 // ring evictions (oldest shed record lost)
	WriteErrors uint64 // disk write/sync/rotate failures observed
	Fsyncs      uint64 // fsyncs issued (group commit shares them)
}

// Journal is an open evidence journal. All methods are safe for
// concurrent use.
type Journal struct {
	opts Options
	dir  string

	mu      sync.Mutex // guards the append path and segment state
	active  File
	actName string
	actSize int64
	nextSeq uint64
	head    [32]byte
	sealed  []manifestSegment
	closed  bool

	// Group commit: appenders record the byte offset their record ends
	// at and wait until a leader's fsync covers it. Rotation bumps gen;
	// waiters from a sealed generation are satisfied by the seal fsync.
	cmu      sync.Mutex
	ccond    *sync.Cond
	cGen     uint64
	cWritten int64
	cSynced  int64
	cBusy    bool
	cErr     error

	degraded atomic.Bool
	lastErr  atomic.Pointer[error]
	ring     []Record // degraded-mode shed buffer, oldest first

	c struct {
		appended, rotated, recovered, truncated atomic.Uint64
		chainBreaks, quarantined                atomic.Uint64
		shed, ringDropped, writeErrors, fsyncs  atomic.Uint64
	}

	// fsyncObserve, when non-nil, receives each fsync's wall time
	// (installed by RegisterMetrics as the raptrack_journal_fsync_seconds
	// histogram).
	fsyncObserve func(time.Duration)

	audit auditIndex

	stopSync chan struct{}
	syncDone chan struct{}
}

// Open validates the full chain under dir (creating it if absent),
// applies recovery policy — truncating a torn tail, refusing or
// quarantining a broken chain — and returns a journal ready to append
// at the verified head.
func Open(dir string, opts Options) (*Journal, error) {
	opts = opts.withDefaults()
	fsys := opts.FS
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	// Interrupted atomic writes leave *.tmp files; they were never part
	// of the chain.
	if entries, err := fsys.ReadDir(dir); err == nil {
		for _, e := range entries {
			if filepath.Ext(e.Name()) == ".tmp" {
				_ = fsys.Remove(filepath.Join(dir, e.Name()))
			}
		}
	}

	j := &Journal{opts: opts, dir: dir}
	j.ccond = sync.NewCond(&j.cmu)

	res, err := scan(fsys, dir)
	if err != nil {
		return nil, err
	}
	if res.breakErr != nil {
		j.c.chainBreaks.Add(1)
		if opts.OnChainBreak == RefuseOpen {
			return nil, res.breakErr
		}
		// Quarantine: move the offending segment and all later ones
		// aside, then rescan the surviving prefix.
		for _, name := range res.names[res.breakIdx:] {
			src := filepath.Join(dir, name)
			if err := fsys.Rename(src, src+".quarantined"); err != nil {
				return nil, fmt.Errorf("journal: quarantining %s: %w", name, err)
			}
			j.c.quarantined.Add(1)
		}
		// The stale manifest may reference the segments just moved aside;
		// drop it so the rescan re-derives the sealed set (Open rewrites
		// it below).
		_ = fsys.Remove(filepath.Join(dir, manifestName))
		_ = fsys.SyncDir(dir)
		if res, err = scan(fsys, dir); err != nil {
			return nil, err
		}
		if res.breakErr != nil {
			// Damage in the surviving prefix too; nothing left to save.
			return nil, res.breakErr
		}
	}
	if res.torn != nil {
		if err := fsys.Truncate(filepath.Join(dir, res.torn.Segment), res.torn.Offset); err != nil {
			return nil, fmt.Errorf("journal: truncating torn tail: %w", err)
		}
		j.c.truncated.Add(1)
	}
	j.c.recovered.Add(uint64(len(res.records)))
	j.nextSeq = res.nextSeq
	j.head = res.head
	for _, rec := range res.records {
		j.audit.note(rec)
	}

	// All but the final segment are sealed; rewrite the manifest to
	// match reality (this also completes a rotation that crashed
	// between rename and manifest update).
	for i, info := range res.segments {
		if i == len(res.segments)-1 {
			break
		}
		j.sealed = append(j.sealed, manifestSegment{
			Name: info.name, BaseSeq: info.base, LastSeq: info.lastSeq, Head: hashHex(info.head),
		})
	}
	if err := writeManifest(fsys, dir, manifest{Sealed: j.sealed}); err != nil {
		return nil, err
	}

	if n := len(res.segments); n > 0 {
		info := res.segments[n-1]
		size := info.size
		if res.torn != nil {
			size = res.torn.Offset
		}
		f, err := fsys.OpenFile(filepath.Join(dir, info.name), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("journal: reopening active segment: %w", err)
		}
		j.active, j.actName, j.actSize = f, info.name, size
	} else if err := j.newSegmentLocked(); err != nil {
		return nil, err
	}

	if opts.Fsync == SyncInterval {
		j.stopSync = make(chan struct{})
		j.syncDone = make(chan struct{})
		go j.syncLoop()
	}
	return j, nil
}

// newSegmentLocked creates and installs a fresh active segment whose
// header continues the chain, via temp-file+rename so the file appears
// atomically with its header already durable. Caller holds j.mu (or is
// Open, before the journal is shared).
func (j *Journal) newSegmentLocked() error {
	fsys := j.opts.FS
	base := j.nextSeq
	name := segmentName(base)
	path := filepath.Join(j.dir, name)
	if err := WriteFileAtomic(fsys, path, encodeSegmentHeader(base, j.head), 0o644); err != nil {
		return err
	}
	f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal: opening new segment: %w", err)
	}
	j.active, j.actName, j.actSize = f, name, segmentHeaderSize
	return nil
}

// Append seals entry into the chain and commits it under the journal's
// fsync policy. A journal in degraded mode (or driven into it by this
// append's disk failure) sheds the record into the bounded in-memory
// ring instead — the gateway must never die, or block sessions, on its
// evidence plane. Every call is accounted: Counters().Appended + Shed.
func (j *Journal) Append(e Entry) error {
	if e.Kind == 0 || e.Kind >= numKinds {
		return fmt.Errorf("%w: kind %d", ErrBadRecord, e.Kind)
	}
	if e.Time.IsZero() {
		e.Time = time.Now()
	}

	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return errors.New("journal: closed")
	}
	rec := Record{Entry: e, Seq: j.nextSeq, PrevHash: j.head}
	frame, err := rec.encode()
	if err != nil {
		j.mu.Unlock()
		return err
	}
	if j.degraded.Load() {
		j.shedLocked(rec)
		j.mu.Unlock()
		return nil
	}
	if j.actSize >= j.opts.SegmentBytes {
		if err := j.rotateLocked(); err != nil {
			j.enterDegradedLocked(err)
			j.shedLocked(rec)
			j.mu.Unlock()
			return nil
		}
	}
	if _, err := j.active.Write(frame); err != nil {
		// The segment tail is now indeterminate (a short write may have
		// landed a partial frame); recovery will truncate it as torn.
		j.enterDegradedLocked(err)
		j.shedLocked(rec)
		j.mu.Unlock()
		return nil
	}
	j.actSize += int64(len(frame))
	j.nextSeq++
	j.head = rec.Hash
	j.c.appended.Add(1)
	j.audit.note(rec)
	target := j.actSize
	file := j.active
	j.mu.Unlock()
	j.cmu.Lock()
	if target > j.cWritten {
		j.cWritten = target
	}
	j.cmu.Unlock()

	if j.opts.Fsync == SyncEach {
		if err := j.groupCommit(file, target); err != nil {
			j.noteWriteError(err)
		}
	}
	return nil
}

// groupCommit waits until an fsync covers target bytes of the active
// segment. The first waiter to find no fsync in flight becomes the
// leader and syncs for everyone queued behind it; a generation bump
// (rotation sealed the segment, which fsyncs it) satisfies stragglers.
func (j *Journal) groupCommit(file File, target int64) error {
	j.cmu.Lock()
	gen := j.cGen
	for {
		if j.cGen != gen {
			// Rotated away: the seal fsync covered this record.
			j.cmu.Unlock()
			return nil
		}
		if j.cErr != nil {
			err := j.cErr
			j.cmu.Unlock()
			return err
		}
		if j.cSynced >= target {
			j.cmu.Unlock()
			return nil
		}
		if !j.cBusy {
			j.cBusy = true
			high := j.cWritten
			j.cmu.Unlock()
			start := time.Now()
			err := file.Sync()
			j.observeFsync(time.Since(start))
			j.cmu.Lock()
			j.cBusy = false
			if err != nil {
				j.cErr = err
			} else if j.cGen == gen && high > j.cSynced {
				j.cSynced = high
			}
			j.ccond.Broadcast()
			continue
		}
		j.ccond.Wait()
	}
}

func (j *Journal) observeFsync(d time.Duration) {
	j.c.fsyncs.Add(1)
	if j.fsyncObserve != nil {
		j.fsyncObserve(d)
	}
}

// rotateLocked seals the active segment (fsync, close, manifest) and
// installs a fresh one. Caller holds j.mu.
func (j *Journal) rotateLocked() error {
	// Quiesce group commit on the old file, then retire its generation:
	// waiters see the gen bump and trust the seal fsync below.
	j.cmu.Lock()
	for j.cBusy {
		j.ccond.Wait()
	}
	j.cGen++
	j.cWritten = 0
	j.cSynced = 0
	j.cErr = nil
	j.ccond.Broadcast()
	j.cmu.Unlock()

	start := time.Now()
	err := j.active.Sync()
	j.observeFsync(time.Since(start))
	if err != nil {
		return fmt.Errorf("journal: sealing %s: %w", j.actName, err)
	}
	if err := j.active.Close(); err != nil {
		return fmt.Errorf("journal: sealing %s: %w", j.actName, err)
	}
	base, _ := parseSegmentName(j.actName)
	j.sealed = append(j.sealed, manifestSegment{
		Name: j.actName, BaseSeq: base, LastSeq: j.nextSeq - 1, Head: hashHex(j.head),
	})
	// Order matters for crash-recovery: the new segment appears on disk
	// before the manifest lists the old one as sealed, so a crash
	// between the two steps leaves a scan that re-derives the sealed
	// set from the segments themselves.
	if err := j.newSegmentLocked(); err != nil {
		return err
	}
	if err := writeManifest(j.opts.FS, j.dir, manifest{Sealed: j.sealed}); err != nil {
		return fmt.Errorf("journal: manifest update: %w", err)
	}
	j.c.rotated.Add(1)
	return nil
}

// shedLocked routes one record into the degraded-mode ring, evicting
// the oldest when full. Caller holds j.mu.
func (j *Journal) shedLocked(rec Record) {
	// Shed records stay on the in-memory chain so the sequence numbers
	// and hashes remain consistent if they are later exported.
	j.nextSeq++
	j.head = rec.Hash
	if len(j.ring) >= j.opts.RingSize {
		copy(j.ring, j.ring[1:])
		j.ring = j.ring[:len(j.ring)-1]
		j.c.ringDropped.Add(1)
	}
	j.ring = append(j.ring, rec)
	j.c.shed.Add(1)
	j.audit.note(rec)
}

func (j *Journal) enterDegradedLocked(err error) {
	j.noteWriteError(err)
	j.degraded.Store(true)
}

func (j *Journal) noteWriteError(err error) {
	j.c.writeErrors.Add(1)
	e := err
	j.lastErr.Store(&e)
	j.degraded.Store(true)
}

// syncLoop is the SyncInterval ticker.
func (j *Journal) syncLoop() {
	defer close(j.syncDone)
	t := time.NewTicker(j.opts.FsyncEvery)
	defer t.Stop()
	for {
		select {
		case <-j.stopSync:
			return
		case <-t.C:
			j.mu.Lock()
			file := j.active
			closed := j.closed || j.degraded.Load()
			j.mu.Unlock()
			if closed || file == nil {
				continue
			}
			start := time.Now()
			// Serialize with rotation via the group-commit lock so the
			// ticker never fsyncs a just-closed file.
			j.cmu.Lock()
			for j.cBusy {
				j.ccond.Wait()
			}
			j.cBusy = true
			j.cmu.Unlock()
			err := file.Sync()
			j.cmu.Lock()
			j.cBusy = false
			j.ccond.Broadcast()
			j.cmu.Unlock()
			j.observeFsync(time.Since(start))
			if err != nil {
				j.noteWriteError(err)
			}
		}
	}
}

// Close seals the journal: final fsync, manifest flush, file close.
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	j.closed = true
	file := j.active
	j.active = nil
	degraded := j.degraded.Load()
	j.mu.Unlock()
	if j.stopSync != nil {
		close(j.stopSync)
		<-j.syncDone
	}
	if file == nil {
		return nil
	}
	// Quiesce in-flight group commits before touching the file handle.
	j.cmu.Lock()
	for j.cBusy {
		j.ccond.Wait()
	}
	j.cGen++
	j.ccond.Broadcast()
	j.cmu.Unlock()
	var err error
	if !degraded && j.opts.Fsync != SyncNever {
		err = file.Sync()
	}
	if cerr := file.Close(); err == nil {
		err = cerr
	}
	return err
}

// Degraded reports whether the journal has shed to the in-memory ring
// after a disk failure.
func (j *Journal) Degraded() bool { return j.degraded.Load() }

// Health renders the journal's liveness for a /healthz subsystem probe.
func (j *Journal) Health() (ok bool, detail string) {
	if !j.degraded.Load() {
		return true, fmt.Sprintf("chain head seq %d", j.NextSeq()-1)
	}
	c := j.Counters()
	msg := fmt.Sprintf("degraded: %d records shed to ring (%d dropped)", c.Shed, c.RingDropped)
	if p := j.lastErr.Load(); p != nil {
		msg += ": " + (*p).Error()
	}
	return false, msg
}

// Counters snapshots the journal's accounting.
func (j *Journal) Counters() Counters {
	return Counters{
		Appended:    j.c.appended.Load(),
		Rotated:     j.c.rotated.Load(),
		Recovered:   j.c.recovered.Load(),
		Truncated:   j.c.truncated.Load(),
		ChainBreaks: j.c.chainBreaks.Load(),
		Quarantined: j.c.quarantined.Load(),
		Shed:        j.c.shed.Load(),
		RingDropped: j.c.ringDropped.Load(),
		WriteErrors: j.c.writeErrors.Load(),
		Fsyncs:      j.c.fsyncs.Load(),
	}
}

// NextSeq returns the sequence number the next appended record gets.
func (j *Journal) NextSeq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.nextSeq
}

// Head returns the chain head hash (zero before the first record).
func (j *Journal) Head() [32]byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.head
}

// Ring returns a copy of the degraded-mode ring, oldest first.
func (j *Journal) Ring() []Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Record, len(j.ring))
	copy(out, j.ring)
	return out
}

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.dir }

// SealedSegments returns the count of sealed (rotation-retired)
// segments.
func (j *Journal) SealedSegments() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.sealed)
}
