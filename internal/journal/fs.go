package journal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// FS is the filesystem seam the journal writes through. Production code
// uses [OSFS]; chaos harnesses wrap it (faults.Injector.WrapFS) to
// inject short writes, fsync errors, torn tails and cold bit flips with
// a seeded schedule. The surface is deliberately small: everything the
// journal does is sequential appends, whole-file reads, and the
// temp-file+rename idiom.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	// OpenFile opens name with os.O_* flags; the returned File supports
	// sequential writes and fsync.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	ReadDir(name string) ([]os.DirEntry, error)
	ReadFile(name string) ([]byte, error)
	Truncate(name string, size int64) error
	// SyncDir flushes directory metadata (the rename barrier). A
	// filesystem that cannot sync directories may no-op.
	SyncDir(name string) error
}

// File is one journal file handle.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// OSFS is the production filesystem.
var OSFS FS = osFS{}

type osFS struct{}

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) ReadDir(name string) ([]os.DirEntry, error) {
	return os.ReadDir(name)
}
func (osFS) ReadFile(name string) ([]byte, error)   { return os.ReadFile(name) }
func (osFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func (osFS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// WriteFileAtomic writes data to path via a same-directory temp file,
// fsync, rename, and directory sync, so a crash at any point leaves
// either the old file or the complete new one — never a torn mix. The
// gateway's -metrics-out scrape and the journal manifest both go
// through here.
func WriteFileAtomic(fsys FS, path string, data []byte, perm os.FileMode) error {
	if fsys == nil {
		fsys = OSFS
	}
	dir := filepath.Dir(path)
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, perm)
	if err != nil {
		return fmt.Errorf("journal: atomic write %s: %w", path, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		_ = fsys.Remove(tmp)
		return fmt.Errorf("journal: atomic write %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		_ = fsys.Remove(tmp)
		return fmt.Errorf("journal: atomic write %s: sync: %w", path, err)
	}
	if err := f.Close(); err != nil {
		_ = fsys.Remove(tmp)
		return fmt.Errorf("journal: atomic write %s: close: %w", path, err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		_ = fsys.Remove(tmp)
		return fmt.Errorf("journal: atomic write %s: rename: %w", path, err)
	}
	return fsys.SyncDir(dir)
}
