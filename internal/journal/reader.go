package journal

// ScanReport is the outcome of a read-only chain validation pass: the
// validated record prefix plus an explicit account of any damage. A
// replay tool must distinguish "clean", "clean but for a torn tail"
// (crash artifact, nothing acknowledged was lost) and "chain break"
// (evidence was altered or removed).
type ScanReport struct {
	Records  []Record
	Segments int
	// Torn is non-nil when the final segment ends in a truncatable
	// partial record.
	Torn *TornTail
	// Break is non-nil when the chain is damaged beyond a torn tail.
	// Records still holds the validated prefix before the break.
	Break *ChainError
}

// ScanDir validates the journal chain under dir without opening it for
// writing and without mutating anything on disk — no truncation, no
// quarantine, no manifest rewrite. This is the replay and audit entry
// point; a journal being actively written by a gateway should be read
// after the gateway seals it.
func ScanDir(fsys FS, dir string) (ScanReport, error) {
	if fsys == nil {
		fsys = OSFS
	}
	res, err := scan(fsys, dir)
	if err != nil {
		return ScanReport{}, err
	}
	return ScanReport{
		Records:  res.records,
		Segments: len(res.names),
		Torn:     res.torn,
		Break:    res.breakErr,
	}, nil
}
