package linker

import (
	"testing"

	"raptrack/internal/asm"
	"raptrack/internal/cfg"
	"raptrack/internal/isa"
	"raptrack/internal/mem"
)

func linkOne(t *testing.T, build func(p *asm.Program), opts Options) *Output {
	t.Helper()
	p := asm.NewProgram("t")
	build(p)
	out, err := Link(p, opts)
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	return out
}

func TestMTBARIsLastAndContiguous(t *testing.T) {
	out := linkOne(t, func(p *asm.Program) {
		f := p.NewFunc("main")
		f.BLX(isa.R2)
		f.HLT()
	}, DefaultOptions())
	if out.MTBAR.Base != out.MTBDR.Limit {
		t.Errorf("MTBAR %v does not abut MTBDR %v", out.MTBAR, out.MTBDR)
	}
	if out.MTBDR.Base != mem.NSCodeBase {
		t.Errorf("MTBDR base %#x", out.MTBDR.Base)
	}
	if out.MTBAR.Limit-out.MTBAR.Base == 0 {
		t.Error("empty MTBAR")
	}
	// Every stub's recording instruction must live inside MTBAR; every
	// site outside it.
	for rec, stub := range out.Stubs {
		if !out.MTBAR.Contains(rec) {
			t.Errorf("stub record %#x outside MTBAR", rec)
		}
		if out.MTBAR.Contains(stub.SiteAddr) {
			t.Errorf("site %#x inside MTBAR", stub.SiteAddr)
		}
	}
}

func TestIndirectCallTrampolineShape(t *testing.T) {
	out := linkOne(t, func(p *asm.Program) {
		f := p.NewFunc("main")
		f.BLX(isa.R5)
		f.HLT()
	}, DefaultOptions())
	if len(out.Stubs) != 1 {
		t.Fatalf("stubs = %d", len(out.Stubs))
	}
	for _, stub := range out.Stubs {
		if stub.Class != cfg.ClassIndirectCall {
			t.Fatalf("class = %v", stub.Class)
		}
		// Site: BL (wide) into MTBAR.
		site, _ := out.Image.InstrAt(stub.SiteAddr)
		if site.Op != isa.OpBL || !out.MTBAR.Contains(site.Target) {
			t.Errorf("site instr %v", site)
		}
		// Record: BX through the original register, after NOP padding.
		rec, _ := out.Image.InstrAt(stub.RecordAddr)
		if rec.Op != isa.OpBX || rec.Rm != isa.R5 {
			t.Errorf("record instr %v", rec)
		}
		// NOP padding precedes the record.
		nop, _ := out.Image.InstrAt(stub.RecordAddr - 2)
		if nop.Op != isa.OpNOP {
			t.Errorf("expected NOP before record, got %v", nop)
		}
	}
}

func TestReturnTrampolineMovesPop(t *testing.T) {
	out := linkOne(t, func(p *asm.Program) {
		f := p.NewFunc("main")
		f.PUSH(isa.R4, isa.LR)
		f.POP(isa.R4, isa.PC)
	}, DefaultOptions())
	var found bool
	for _, stub := range out.Stubs {
		if stub.Class != cfg.ClassReturn {
			continue
		}
		found = true
		rec, _ := out.Image.InstrAt(stub.RecordAddr)
		if rec.Op != isa.OpPOP || !rec.List.Has(isa.PC) || !rec.List.Has(isa.R4) {
			t.Errorf("record instr %v", rec)
		}
		site, _ := out.Image.InstrAt(stub.SiteAddr)
		if site.Op != isa.OpB || site.Cond != isa.AL {
			t.Errorf("site instr %v", site)
		}
	}
	if !found {
		t.Fatal("no return stub")
	}
}

func TestCondTrampolineTakenTarget(t *testing.T) {
	out := linkOne(t, func(p *asm.Program) {
		f := p.NewFunc("main")
		f.CMPi(isa.R0, 0)
		f.BEQ("taken")
		f.MOVi(isa.R1, 1)
		f.Label("taken")
		f.HLT()
	}, DefaultOptions())
	for _, stub := range out.Stubs {
		if stub.Class != cfg.ClassCondNonLoop {
			continue
		}
		site, _ := out.Image.InstrAt(stub.SiteAddr)
		if site.Cond != isa.EQ || !site.Wide {
			t.Errorf("site %v should keep the condition, wide", site)
		}
		if stub.StaticTarget != out.Image.Symbols["main.taken"] {
			t.Errorf("static target %#x != taken label %#x",
				stub.StaticTarget, out.Image.Symbols["main.taken"])
		}
	}
}

func TestForwardLoopTrampolineShape(t *testing.T) {
	out := linkOne(t, func(p *asm.Program) {
		f := p.NewFunc("main")
		f.MUL(isa.R0, isa.R1, isa.R2) // variable bound: not static
		f.Label("loop")
		f.LDRi(isa.R3, isa.R0, 0) // memory-coupled: not simple
		f.CMPi(isa.R3, 0)
		f.BEQ("done")
		f.SUBi(isa.R0, isa.R0, 4)
		f.B("loop")
		f.Label("done")
		f.HLT()
	}, DefaultOptions())
	var fwd *Stub
	for _, s := range out.Stubs {
		if s.Class == cfg.ClassCondLoopFwd {
			fwd = s
		}
	}
	if fwd == nil {
		t.Fatal("no forward-loop stub")
	}
	// The guard (kept BEQ) precedes the inserted logging branch.
	guard, _ := out.Image.InstrAt(fwd.GuardAddr)
	if guard.Op != isa.OpB || guard.Cond != isa.EQ {
		t.Errorf("guard %v", guard)
	}
	site, _ := out.Image.InstrAt(fwd.SiteAddr)
	if site.Op != isa.OpB || site.Cond != isa.AL {
		t.Errorf("site %v", site)
	}
	if fwd.SiteAddr != fwd.GuardAddr+guard.Size() {
		t.Error("logging branch does not immediately follow the guard")
	}
	// The stub bounces back to the instruction after the logging branch.
	if fwd.StaticTarget != fwd.SiteAddr+site.Size() {
		t.Errorf("fall target %#x, want %#x", fwd.StaticTarget, fwd.SiteAddr+site.Size())
	}
}

func TestLoopOptInsertsSecall(t *testing.T) {
	out := linkOne(t, func(p *asm.Program) {
		f := p.NewFunc("main")
		f.MUL(isa.R3, isa.R0, isa.R1) // runtime init: logged, not static
		f.Label("loop")
		f.SUBi(isa.R3, isa.R3, 1)
		f.CMPi(isa.R3, 0)
		f.BNE("loop")
		f.HLT()
	}, DefaultOptions())
	if out.Stats.OptimizedLoops != 1 || out.Stats.StaticLoops != 0 {
		t.Fatalf("loops: opt=%d static=%d", out.Stats.OptimizedLoops, out.Stats.StaticLoops)
	}
	if len(out.Loops) != 1 {
		t.Fatalf("Loops map = %d", len(out.Loops))
	}
	for secall, site := range out.Loops {
		ins, _ := out.Image.InstrAt(secall)
		if ins.Op != isa.OpSECALL {
			t.Errorf("SecallAddr holds %v", ins)
		}
		cond, _ := out.Image.InstrAt(site.CondAddr)
		if cond.Op != isa.OpB || cond.Cond != isa.NE {
			t.Errorf("CondAddr holds %v", cond)
		}
		if out.LoopConds[site.CondAddr] != site {
			t.Error("LoopConds inconsistent")
		}
	}
}

func TestStaticLoopNeedsNothing(t *testing.T) {
	out := linkOne(t, func(p *asm.Program) {
		f := p.NewFunc("main")
		f.MOVi(isa.R3, 0)
		f.Label("loop")
		f.ADDi(isa.R3, isa.R3, 1)
		f.CMPi(isa.R3, 10)
		f.BLT("loop")
		f.HLT()
	}, DefaultOptions())
	if out.Stats.StaticLoops != 1 || out.Stats.OptimizedLoops != 0 || out.Stats.Stubs != 0 {
		t.Fatalf("stats: %+v", out.Stats)
	}
	if len(out.Loops) != 0 || len(out.LoopConds) != 1 {
		t.Fatalf("maps: loops=%d conds=%d", len(out.Loops), len(out.LoopConds))
	}
	// Code grows only by the (single NOP) MTBAR placeholder.
	if out.Stats.CodeAfter-out.Stats.CodeBefore > 4 {
		t.Errorf("static loop added %d bytes", out.Stats.CodeAfter-out.Stats.CodeBefore)
	}
}

func TestLoopOptDisabled(t *testing.T) {
	opts := DefaultOptions()
	opts.LoopOpt = false
	out := linkOne(t, func(p *asm.Program) {
		f := p.NewFunc("main")
		f.MOVi(isa.R3, 0)
		f.Label("loop")
		f.ADDi(isa.R3, isa.R3, 1)
		f.CMPi(isa.R3, 10)
		f.BLT("loop")
		f.HLT()
	}, opts)
	// Without the optimization the loop branch gets a per-iteration stub.
	if out.Stats.StubsByClass[cfg.ClassCondLoopBack] != 1 {
		t.Errorf("stubs: %+v", out.Stats.StubsByClass)
	}
	if out.Stats.OptimizedLoops != 0 && out.Stats.StaticLoops != 0 {
		t.Errorf("loops optimized despite LoopOpt=false")
	}
}

func TestLeafFunctionUntouched(t *testing.T) {
	out := linkOne(t, func(p *asm.Program) {
		f := p.NewFunc("main")
		f.PUSH(isa.LR)
		f.BL("leaf")
		f.POP(isa.PC)
		g := p.AddFunc(asm.NewFunction("leaf"))
		g.ADDi(isa.R0, isa.R0, 1)
		g.RET()
	}, DefaultOptions())
	// Only main's POP{PC} needs a stub; the leaf's BX LR is deterministic.
	if n := out.Stats.StubsByClass[cfg.ClassReturn]; n != 1 {
		t.Errorf("return stubs = %d, want 1", n)
	}
}

func TestNopPadConfigurable(t *testing.T) {
	build := func(p *asm.Program) {
		f := p.NewFunc("main")
		f.BLX(isa.R1)
		f.HLT()
	}
	for _, pad := range []int{0, 1, 3} {
		opts := DefaultOptions()
		opts.NopPad = pad
		out := linkOne(t, build, opts)
		for _, stub := range out.Stubs {
			nops := 0
			for a := out.MTBAR.Base; a < stub.RecordAddr; {
				ins, ok := out.Image.InstrAt(a)
				if !ok {
					t.Fatalf("hole in MTBAR at %#x", a)
				}
				if ins.Op == isa.OpNOP {
					nops++
				}
				a += ins.Size()
			}
			if nops != pad {
				t.Errorf("pad=%d: found %d NOPs", pad, nops)
			}
		}
	}
}

func TestOriginalProgramUnmodified(t *testing.T) {
	p := asm.NewProgram("t")
	f := p.NewFunc("main")
	f.BLX(isa.R1)
	f.HLT()
	before := len(f.Instrs)
	if _, err := Link(p, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	if len(p.Funcs) != 1 || len(f.Instrs) != before {
		t.Error("Link modified its input program")
	}
	if f.Instrs[0].Op != isa.OpBLX {
		t.Error("input instruction rewritten")
	}
}

func TestStubMapsConsistent(t *testing.T) {
	// A program with every class at once.
	out := linkOne(t, func(p *asm.Program) {
		f := p.NewFunc("main")
		f.PUSH(isa.LR)
		f.BLX(isa.R1) // icall
		f.BX(isa.R2)  // ijump (unreachable but classified)
		f.CMPi(isa.R0, 0)
		f.BEQ("x") // cond
		f.Label("back")
		f.LDRi(isa.R3, isa.R0, 0)
		f.CMPr(isa.R3, isa.R1)
		f.BNE("back") // backward cond (not simple: CMPr)
		f.Label("x")
		f.POP(isa.PC) // return
	}, DefaultOptions())
	if len(out.Stubs) != len(out.Sites) {
		t.Errorf("stubs %d != sites %d", len(out.Stubs), len(out.Sites))
	}
	for _, stub := range out.Stubs {
		if out.Sites[stub.SiteAddr] != stub {
			t.Errorf("site map inconsistent for %s", stub.Label)
		}
		if stub.Class == cfg.ClassCondLoopFwd && out.Guards[stub.GuardAddr] != stub {
			t.Errorf("guard map inconsistent for %s", stub.Label)
		}
	}
}
