// Package linker implements RAP-Track's offline phase (paper §IV): it
// rewrites an application so that every non-deterministic control transfer
// executes inside a single contiguous MTB Activation Region (MTBAR), with
// trampolines connecting the original sites (which stay in the MTB
// Deactivation Region, MTBDR) to per-site stubs:
//
//	indirect calls   -> Fig. 3: site BL -> stub { nop*, BX Rm }
//	returns/ijumps   -> Fig. 4: site B  -> stub { nop*, POP/BX/LDRPC }
//	non-loop conds   -> Fig. 5: site Bcc-> stub { nop*, B taken }
//	backward loops   -> Fig. 6: same as Fig. 5 (log every iteration)
//	forward loops    -> Fig. 7: kept Bcc; fallthrough B -> stub { nop*, B fall }
//
// Simple loops (§IV-D) are not trampolined at all: a four-instruction block
// before the loop entry SECALLs the CFA engine to log the loop-condition
// register once, and the verifier recomputes the trip count.
//
// The stubs are collected into one function placed last in the image, so
// two DWT comparators can bound MTBAR and two more can bound MTBDR.
package linker

import (
	"fmt"

	"raptrack/internal/asm"
	"raptrack/internal/cfg"
	"raptrack/internal/isa"
	"raptrack/internal/mem"
	"raptrack/internal/tz"
)

// MTBARFunc is the name of the synthesized stub region function.
const MTBARFunc = "__raptrack_mtbar"

// Options configures the offline phase.
type Options struct {
	// Base is the layout base address (default mem.NSCodeBase).
	Base uint32
	// NopPad is the number of NOPs prepended to each stub so the MTB has
	// time to activate (must be >= the MTB's ArmLatency; default 2).
	NopPad int
	// LoopOpt enables the §IV-D simple-loop optimization.
	LoopOpt bool
	// NestedLoopOpt lets outer loops qualify once inner loops are
	// optimized (RAP-Track behaviour; ignored unless LoopOpt).
	NestedLoopOpt bool
}

// DefaultOptions returns the paper-faithful configuration.
func DefaultOptions() Options {
	return Options{Base: mem.NSCodeBase, NopPad: 2, LoopOpt: true, NestedLoopOpt: true}
}

// Stub describes one MTBAR trampoline stub and its site.
type Stub struct {
	Label string // qualified label of the stub ("__raptrack_mtbar.sN")
	Class cfg.Class
	Func  string // function the original branch lived in
	Site  int    // original instruction index within Func

	// Addresses resolved after layout.
	SiteAddr     uint32 // trampoline instruction at the original site
	GuardAddr    uint32 // ClassCondLoopFwd only: the kept conditional branch
	RecordAddr   uint32 // stub instruction the MTB records as packet source
	StaticTarget uint32 // cond classes: the stub's fixed destination (0 for indirect/return)

	siteNewIdx, guardNewIdx, recordIdx int
}

// LoopSite describes one optimized simple loop. Static loops (fixed
// iteration count, §IV-C) carry no SECALL at all: SecallAddr is zero and
// the verifier derives the trip count from Loop.EntryValue.
type LoopSite struct {
	Loop *cfg.Loop
	Func string

	// SecallAddr is the SECALL instruction's address: engine-appended
	// CFLog packets carry it as their source (0 for static loops).
	// CondAddr is the loop's controlling conditional branch in the
	// linked image.
	SecallAddr uint32
	CondAddr   uint32

	secallNewIdx, condNewIdx int
}

// Stats summarizes the transformation.
type Stats struct {
	StubsByClass   map[cfg.Class]int
	Stubs          int
	OptimizedLoops int // loops instrumented with a loop-condition SECALL
	StaticLoops    int // fixed-count loops needing no instrumentation
	NopBytes       uint32
	CodeBefore     uint32 // code bytes before rewriting (no data)
	CodeAfter      uint32 // code bytes after rewriting (incl. MTBAR)
}

// Output is the linked artifact set.
type Output struct {
	Prog     *asm.Program
	Image    *asm.Image
	Analysis *cfg.Analysis

	MTBAR asm.Range // stub region (DWT TSTART range)
	MTBDR asm.Range // everything else in code (DWT TSTOP range)

	// Stubs indexes stubs by RecordAddr (packet source); Sites by the
	// trampoline instruction address; Guards by the kept conditional
	// branch of forward-loop trampolines.
	Stubs  map[uint32]*Stub
	Sites  map[uint32]*Stub
	Guards map[uint32]*Stub
	// Loops indexes optimized loops by SecallAddr; LoopConds by the
	// controlling branch address.
	Loops     map[uint32]*LoopSite
	LoopConds map[uint32]*LoopSite

	Stats Stats
}

// edit replaces the instruction at one original index with a sequence.
type edit struct {
	seq    []isa.Instr
	labels map[string]int // inner label -> offset (may equal len(seq))

	stub              *Stub
	siteOff, guardOff int

	loop      *LoopSite
	secallOff int
}

func (e *edit) addLabel(name string, off int) {
	if e.labels == nil {
		e.labels = make(map[string]int)
	}
	e.labels[name] = off
}

// prepend inserts block at the front, shifting labels and tracked offsets.
func (e *edit) prepend(block []isa.Instr) {
	n := len(block)
	e.seq = append(append([]isa.Instr(nil), block...), e.seq...)
	for k := range e.labels {
		e.labels[k] += n
	}
	if e.stub != nil {
		e.siteOff += n
		e.guardOff += n
	}
	if e.loop != nil {
		e.secallOff += n
	}
}

// qualify turns a branch symbol into a globally resolvable name: local
// labels become "func.label"; everything else is already global.
func qualify(fn *asm.Function, sym string) string {
	if _, ok := fn.Labels()[sym]; ok {
		return fn.Name + "." + sym
	}
	return sym
}

func progCodeSize(p *asm.Program) uint32 {
	var n uint32
	for _, f := range p.Funcs {
		n += f.Size()
	}
	return n
}

// Link runs the offline phase on p (which is not modified) and returns the
// laid-out, attestable artifact set.
func Link(p *asm.Program, opts Options) (*Output, error) {
	if opts.Base == 0 {
		opts.Base = mem.NSCodeBase
	}
	if opts.NopPad < 0 {
		return nil, fmt.Errorf("linker: negative NopPad")
	}
	prog := p.Clone()
	analysis, err := cfg.Analyze(prog, cfg.Options{LoopOpt: opts.LoopOpt, NestedLoopOpt: opts.NestedLoopOpt})
	if err != nil {
		return nil, err
	}

	out := &Output{
		Prog:      prog,
		Analysis:  analysis,
		Stubs:     make(map[uint32]*Stub),
		Sites:     make(map[uint32]*Stub),
		Guards:    make(map[uint32]*Stub),
		Loops:     make(map[uint32]*LoopSite),
		LoopConds: make(map[uint32]*LoopSite),
	}
	out.Stats.StubsByClass = make(map[cfg.Class]int)
	out.Stats.CodeBefore = progCodeSize(p)

	mtbar := asm.NewFunction(MTBARFunc)
	stubCount := 0
	var allStubs []*Stub
	var allLoops []*LoopSite

	for _, fn := range prog.Funcs {
		fa := analysis.Funcs[fn.Name]
		edits := make(map[int]*edit)

		// Which conditional branches are controlled by optimized loops
		// (and therefore keep their original form)?
		simpleCond := make(map[int]*cfg.Loop)
		if opts.LoopOpt {
			seenHeads := make(map[int]bool)
			for _, l := range fa.Loops {
				if !l.Simple {
					continue
				}
				if seenHeads[l.Head] {
					// Two optimized loops sharing an entry would double-log;
					// keep the innermost (processed first), trampoline the rest.
					l.Simple = false
					continue
				}
				seenHeads[l.Head] = true
				simpleCond[l.Cond] = l
			}
		}

		// Pass 1: trampolines for non-deterministic branches.
		for i, ins := range fn.Instrs {
			class := fa.Classes[i]
			if !class.NonDeterministic() {
				continue
			}
			if _, ok := simpleCond[i]; ok {
				continue // controlled by an optimized loop: no trampoline
			}
			if ins.IsBranch() && ins.Sym == "" && ins.Op == isa.OpB {
				return nil, fmt.Errorf("linker: %s[%d]: direct branch without symbol", fn.Name, i)
			}

			label := fmt.Sprintf("s%d", stubCount)
			stubCount++
			full := MTBARFunc + "." + label
			stub := &Stub{Label: full, Class: class, Func: fn.Name, Site: i}
			mtbar.Label(label)
			for k := 0; k < opts.NopPad; k++ {
				mtbar.NOP()
			}
			stub.recordIdx = len(mtbar.Instrs)
			e := &edit{stub: stub}

			moved := ins
			moved.Addr, moved.Target = 0, 0
			switch class {
			case cfg.ClassIndirectCall:
				// Fig. 3: BL to the stub (sets LR to the site's successor),
				// stub performs the indirect branch.
				mtbar.Emit(isa.Instr{Op: isa.OpBX, Rm: ins.Rm})
				e.seq = []isa.Instr{{Op: isa.OpBL, Sym: full, Wide: true}}
			case cfg.ClassReturn, cfg.ClassIndirectJump:
				// Fig. 4: the original POP/BX/LDRPC moves into the stub.
				mtbar.Emit(moved)
				e.seq = []isa.Instr{{Op: isa.OpB, Cond: isa.AL, Sym: full, Wide: true}}
			case cfg.ClassCondNonLoop, cfg.ClassCondLoopBack:
				// Fig. 5/6: the conditional branch targets the stub; the
				// stub branches to the original taken address.
				mtbar.Emit(isa.Instr{Op: isa.OpB, Cond: isa.AL, Sym: qualify(fn, ins.Sym), Wide: true})
				e.seq = []isa.Instr{{Op: isa.OpB, Cond: ins.Cond, Sym: full, Wide: true}}
			case cfg.ClassCondLoopFwd:
				// Fig. 7: keep the exit branch; log the not-taken (loop
				// continue) path through the stub and bounce back to the
				// original fallthrough.
				fall := fmt.Sprintf("__rtk_fall%d", stubCount)
				mtbar.Emit(isa.Instr{Op: isa.OpB, Cond: isa.AL, Sym: fn.Name + "." + fall, Wide: true})
				e.seq = []isa.Instr{
					ins, // kept conditional exit
					{Op: isa.OpB, Cond: isa.AL, Sym: full, Wide: true},
				}
				e.seq[0].Addr, e.seq[0].Target = 0, 0
				e.addLabel(fall, 2)
				e.guardOff = 0
				e.siteOff = 1
			default:
				return nil, fmt.Errorf("linker: unhandled class %v", class)
			}
			edits[i] = e
			allStubs = append(allStubs, stub)
			out.Stats.StubsByClass[class]++
			out.Stats.NopBytes += uint32(opts.NopPad) * 2
		}

		// Pass 2: simple-loop instrumentation — entry block plus back-edge
		// retarget so re-iterations skip the block. Static loops need
		// neither: the verifier reconstructs them without evidence.
		loopIdx := 0
		for _, l := range fa.Loops {
			if !l.Simple {
				continue
			}
			site := &LoopSite{Loop: l, Func: fn.Name}
			if l.Static {
				site.secallNewIdx = -1
				site.condNewIdx = l.Cond
				allLoops = append(allLoops, site)
				out.Stats.StaticLoops++
				continue
			}
			body := fmt.Sprintf("__rtk_l%d_body", loopIdx)
			loopIdx++

			block := []isa.Instr{
				{Op: isa.OpPUSH, List: isa.Regs(isa.R0)},
				{Op: isa.OpMOVr, Rd: isa.R0, Rm: l.CounterReg},
				{Op: isa.OpSECALL, Imm: tz.SvcImm(tz.SvcLogLoop, 0)},
				{Op: isa.OpPOP, List: isa.Regs(isa.R0)},
			}
			if e, ok := edits[l.Head]; ok {
				e.prepend(block)
				e.addLabel(body, len(block))
				e.loop = site
				e.secallOff = 2 // block sits at the front after prepend
			} else {
				head := fn.Instrs[l.Head]
				head.Addr, head.Target = 0, 0
				e := &edit{seq: append(block, head), loop: site, secallOff: 2}
				e.addLabel(body, len(block))
				edits[l.Head] = e
			}

			// Retarget the back edge to skip the entry block.
			tail := fn.Instrs[l.Tail]
			tail.Addr, tail.Target = 0, 0
			tail.Sym = body
			if _, ok := edits[l.Tail]; ok {
				return nil, fmt.Errorf("linker: %s: conflicting edit on loop tail %d", fn.Name, l.Tail)
			}
			edits[l.Tail] = &edit{seq: []isa.Instr{tail}}
			site.condNewIdx = l.Cond // original index; mapped after rebuild
			allLoops = append(allLoops, site)
			out.Stats.OptimizedLoops++
		}

		newIndex := rebuild(fn, edits)

		// Map tracked offsets to new instruction indices.
		for i, e := range edits {
			if e.stub != nil {
				e.stub.siteNewIdx = newIndex[i] + e.siteOff
				if e.stub.Class == cfg.ClassCondLoopFwd {
					e.stub.guardNewIdx = newIndex[i] + e.guardOff
				} else {
					e.stub.guardNewIdx = -1
				}
			}
			if e.loop != nil {
				e.loop.secallNewIdx = newIndex[i] + e.secallOff
			}
		}
		for _, site := range allLoops {
			if site.Func == fn.Name {
				site.condNewIdx = newIndex[site.condNewIdx]
			}
		}
	}

	// An empty MTBAR would make the DWT range degenerate; keep one NOP.
	if len(mtbar.Instrs) == 0 {
		mtbar.NOP()
	}
	prog.AddFunc(mtbar)

	img, err := asm.Layout(prog, opts.Base)
	if err != nil {
		return nil, err
	}
	out.Image = img
	out.Stats.CodeAfter = progCodeSize(prog)
	out.Stats.Stubs = len(allStubs)

	mtbarRange, ok := img.FuncRanges[MTBARFunc]
	if !ok {
		return nil, fmt.Errorf("linker: MTBAR region missing after layout")
	}
	out.MTBAR = mtbarRange
	out.MTBDR = asm.Range{Base: opts.Base, Limit: mtbarRange.Base}

	// Resolve addresses.
	for _, stub := range allStubs {
		fn := prog.Func(stub.Func)
		stub.SiteAddr = fn.Instrs[stub.siteNewIdx].Addr
		if stub.guardNewIdx >= 0 {
			stub.GuardAddr = fn.Instrs[stub.guardNewIdx].Addr
			out.Guards[stub.GuardAddr] = stub
		}
		rec := mtbar.Instrs[stub.recordIdx]
		stub.RecordAddr = rec.Addr
		switch stub.Class {
		case cfg.ClassCondNonLoop, cfg.ClassCondLoopBack, cfg.ClassCondLoopFwd:
			stub.StaticTarget = rec.Target
		}
		out.Stubs[stub.RecordAddr] = stub
		out.Sites[stub.SiteAddr] = stub
	}
	for _, site := range allLoops {
		fn := prog.Func(site.Func)
		site.CondAddr = fn.Instrs[site.condNewIdx].Addr
		out.LoopConds[site.CondAddr] = site
		if site.secallNewIdx >= 0 {
			site.SecallAddr = fn.Instrs[site.secallNewIdx].Addr
			out.Loops[site.SecallAddr] = site
		}
	}
	return out, nil
}

// rebuild applies edits to fn, rewriting labels, and returns the mapping
// from original instruction index to new index (length len(old)+1; the
// final entry maps the end-of-function position).
func rebuild(fn *asm.Function, edits map[int]*edit) []int {
	old := fn.Instrs
	byIdx := make(map[int][]string)
	for name, idx := range fn.Labels() {
		byIdx[idx] = append(byIdx[idx], name)
	}
	var instrs []isa.Instr
	labels := make(map[string]int)
	newIndex := make([]int, len(old)+1)
	for i := 0; i <= len(old); i++ {
		newIndex[i] = len(instrs)
		for _, name := range byIdx[i] {
			labels[name] = len(instrs)
		}
		if i == len(old) {
			break
		}
		if e := edits[i]; e != nil {
			for name, off := range e.labels {
				labels[name] = len(instrs) + off
			}
			instrs = append(instrs, e.seq...)
		} else {
			instrs = append(instrs, old[i])
		}
	}
	fn.Instrs = instrs
	fn.SetLabels(labels)
	return newIndex
}
