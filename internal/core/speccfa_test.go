package core

import (
	"testing"

	"raptrack/internal/apps"
	"raptrack/internal/attest"
	"raptrack/internal/speccfa"
	"raptrack/internal/verify"
)

// TestSpecCFAEndToEnd runs the full SpecCFA workflow: an uncompressed
// session, dictionary mining from its evidence, a second compressed
// session, and verification of the compressed evidence — with a real
// reduction in transmitted bytes.
func TestSpecCFAEndToEnd(t *testing.T) {
	for _, name := range []string{"gps", "ultrasonic", "prime"} {
		name := name
		t.Run(name, func(t *testing.T) {
			a, err := apps.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			link, err := LinkForCFA(a.Build(), DefaultLinkOptions())
			if err != nil {
				t.Fatal(err)
			}
			key, err := attest.GenerateHMACKey()
			if err != nil {
				t.Fatal(err)
			}

			// Session 1: uncompressed baseline.
			p1, err := NewProver(link, key, ProverConfig{SetupMem: a.SetupMem()})
			if err != nil {
				t.Fatal(err)
			}
			chal1 := mustChal(t, name)
			reports1, stats1, err := p1.Attest(chal1)
			if err != nil {
				t.Fatal(err)
			}
			if v, err := NewVerifier(link, key).Verify(chal1, reports1); err != nil || !v.OK {
				t.Fatalf("baseline session rejected: %v %v", err, v)
			}

			// The Verifier mines speculation candidates from the accepted
			// evidence.
			var log []byte
			for _, r := range reports1 {
				log = append(log, r.CFLog...)
			}
			dict, err := speccfa.Mine(decodeMTB(t, log), 8, 2, 8)
			if err != nil {
				t.Fatal(err)
			}
			if dict.Len() == 0 {
				t.Skip("no repeating sub-paths to speculate on")
			}

			// Session 2: compressed with the provisioned dictionary.
			p2, err := NewProver(link, key, ProverConfig{
				SetupMem:    a.SetupMem(),
				Speculation: dict,
			})
			if err != nil {
				t.Fatal(err)
			}
			chal2 := mustChal(t, name)
			reports2, stats2, err := p2.Attest(chal2)
			if err != nil {
				t.Fatal(err)
			}
			if stats2.CFLogBytes >= stats1.CFLogBytes {
				t.Errorf("speculation did not shrink evidence: %d -> %d bytes",
					stats1.CFLogBytes, stats2.CFLogBytes)
			}

			verdict, err := NewVerifier(link, key, verify.WithSpeculation(dict)).Verify(chal2, reports2)
			if err != nil {
				t.Fatal(err)
			}
			if !verdict.OK {
				t.Fatalf("compressed session rejected: %s", verdict.Reason())
			}
			// The reconstruction must cover the same execution as session 1.
			base, err := NewVerifier(link, key).Verify(chal1, reports1)
			if err != nil {
				t.Fatal(err)
			}
			if verdict.Transfers != base.Transfers {
				t.Errorf("transfers %d != baseline %d", verdict.Transfers, base.Transfers)
			}
			t.Logf("%s: evidence %d -> %d bytes (%.1fx), dictionary %d paths",
				name, stats1.CFLogBytes, stats2.CFLogBytes,
				float64(stats1.CFLogBytes)/float64(stats2.CFLogBytes), dict.Len())
		})
	}
}

// TestSpecCFAWithoutVerifierDictionary checks the failure mode: compressed
// evidence cannot be verified without the dictionary.
func TestSpecCFAWithoutVerifierDictionary(t *testing.T) {
	a, err := apps.Get("ultrasonic")
	if err != nil {
		t.Fatal(err)
	}
	link, err := LinkForCFA(a.Build(), DefaultLinkOptions())
	if err != nil {
		t.Fatal(err)
	}
	key, _ := attest.GenerateHMACKey()

	p1, _ := NewProver(link, key, ProverConfig{SetupMem: a.SetupMem()})
	chal1 := mustChal(t, "ultrasonic")
	reports1, _, err := p1.Attest(chal1)
	if err != nil {
		t.Fatal(err)
	}
	var log []byte
	for _, r := range reports1 {
		log = append(log, r.CFLog...)
	}
	dict, err := speccfa.Mine(decodeMTB(t, log), 8, 2, 8)
	if err != nil || dict.Len() == 0 {
		t.Skip("no dictionary")
	}

	p2, _ := NewProver(link, key, ProverConfig{SetupMem: a.SetupMem(), Speculation: dict})
	chal2 := mustChal(t, "ultrasonic")
	reports2, _, err := p2.Attest(chal2)
	if err != nil {
		t.Fatal(err)
	}
	verdict, err := NewVerifier(link, key).Verify(chal2, reports2) // no dictionary
	if err == nil && verdict.OK {
		t.Fatal("compressed evidence verified without the dictionary")
	}
}
