package core

import (
	"fmt"
	"testing"

	"raptrack/internal/apps"
	"raptrack/internal/attest"
	"raptrack/internal/cpu"
	"raptrack/internal/trace"
	"raptrack/internal/trace/pipeline"
	"raptrack/internal/verify"
)

// decodeMTB decodes a CFLog through the pipeline's lenient MTB path —
// the same framing the verifier applies to assembled chains.
func decodeMTB(tb testing.TB, b []byte) []trace.Packet {
	tb.Helper()
	ps, derr := pipeline.New(pipeline.Raw(pipeline.FormatMTB, b)).Packets()
	if derr != nil {
		tb.Fatal(derr)
	}
	return ps
}

// Differential engine conformance: the compiled table-driven automaton
// (the default accept path) against the interpretive pushdown search (the
// reference oracle), over benign fuzz programs, the evaluation workloads,
// corrupted evidence, trace-loss evidence, and budget-abort edges. The
// two engines must render identical Verdicts on the invariant projection
// below; the single documented divergence is the work budget (see
// Verifier.VerifyWithAutomaton), which gets its own weaker check.

// engineInvariant is the Verdict projection both engines must agree on.
// Instrs and Passes describe per-engine search effort, Timing is wall
// clock, and Evidence is stamped by the calling pipeline — all excluded
// by design, everything else compared field for field.
type engineInvariant struct {
	OK            bool
	Code          verify.ReasonCode
	Detail        string
	FailPC        uint32
	Packets       int
	PacketsUsed   int
	Transfers     uint64
	LoopsReplayed uint64
	Path          []verify.Edge
}

func invariantOf(vd *verify.Verdict) engineInvariant {
	return engineInvariant{
		OK:            vd.OK,
		Code:          vd.Code,
		Detail:        vd.Detail,
		FailPC:        vd.FailPC,
		Packets:       vd.Packets,
		PacketsUsed:   vd.PacketsUsed,
		Transfers:     vd.Transfers,
		LoopsReplayed: vd.LoopsReplayed,
		Path:          vd.Path,
	}
}

func (a engineInvariant) equal(b engineInvariant) bool {
	if a.OK != b.OK || a.Code != b.Code || a.Detail != b.Detail || a.FailPC != b.FailPC ||
		a.Packets != b.Packets || a.PacketsUsed != b.PacketsUsed ||
		a.Transfers != b.Transfers || a.LoopsReplayed != b.LoopsReplayed ||
		len(a.Path) != len(b.Path) {
		return false
	}
	ordered := true
	for i := range a.Path {
		if a.Path[i] != b.Path[i] {
			ordered = false
			break
		}
	}
	if ordered {
		return true
	}
	// Non-accepts come from the same interpreter run on both engines, so
	// their paths must match edge for edge. On accepts, presence-encoded
	// evidence from recursive programs can admit several benign
	// derivations; each engine materializes one valid witness, so the
	// invariant is the edge multiset (same transfers, possibly interleaved
	// differently across recursion levels), not the edge order.
	if !a.OK {
		return false
	}
	counts := make(map[verify.Edge]int, len(a.Path))
	for _, e := range a.Path {
		counts[e]++
	}
	for _, e := range b.Path {
		counts[e]--
		if counts[e] < 0 {
			return false
		}
	}
	return true
}

func (a engineInvariant) String() string {
	return fmt.Sprintf("ok=%v code=%v detail=%q failpc=%#x packets=%d/%d transfers=%d loops=%d path=%d edges",
		a.OK, a.Code, a.Detail, a.FailPC, a.PacketsUsed, a.Packets, a.Transfers, a.LoopsReplayed, len(a.Path))
}

// diffEngines replays pk through both engines and fails the test on any
// invariant divergence. The one tolerated asymmetry is the documented
// budget band: when the interpreter aborts on ReasonWorkBudget, the
// automaton may accept instead (its single walk can fit a budget the full
// fixed point does not), but it must never render a different rejection.
func diffEngines(t *testing.T, ref, fast *verify.Verifier, pk []trace.Packet, label string) {
	t.Helper()
	ri := invariantOf(ref.ReplayPackets(pk))
	fi := invariantOf(fast.ReplayPacketsAutomaton(pk))
	if ri.equal(fi) {
		return
	}
	if ri.Code == verify.ReasonWorkBudget && fi.OK {
		return // documented budget-band divergence
	}
	t.Errorf("%s: engines diverge\n  interpreter: %s\n  automaton:   %s", label, ri, fi)
}

// attestedPackets runs prog attested and returns its linked artifact, key
// and the decoded (pre-expansion) evidence stream.
func attestedPackets(t *testing.T, seed int64) (*verify.Verifier, *verify.Verifier, []trace.Packet) {
	t.Helper()
	prog := generate(seed)
	out, err := LinkForCFA(prog, DefaultLinkOptions())
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	key, err := attest.GenerateHMACKey()
	if err != nil {
		t.Fatal(err)
	}
	prover, err := NewProver(out, key, ProverConfig{MaxSteps: 20_000_000})
	if err != nil {
		t.Fatal(err)
	}
	chal := mustChal(t, prog.Name)
	reports, _, err := prover.Attest(chal)
	if err != nil {
		t.Fatalf("attest: %v", err)
	}
	log, _, err := attest.AssembleChain(reports, chal, key)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	ref := NewVerifier(out, key, verify.WithAutomaton(false))
	fast := NewVerifier(out, key)
	return ref, fast, decodeMTB(t, log)
}

// TestEngineConformanceFuzz: benign evidence from random structured
// programs must verify identically through both engines.
func TestEngineConformanceFuzz(t *testing.T) {
	seeds := 40
	if testing.Short() {
		seeds = 8
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			ref, fast, pk := attestedPackets(t, seed)
			if fast.Automaton() == nil {
				t.Fatal("automaton did not compile for fuzz program")
			}
			diffEngines(t, ref, fast, pk, "benign")
		})
	}
}

// corruptions are deterministic evidence mutations covering the rejection
// space: wrong destinations, spurious and missing packets, truncation,
// reordering, and an empty stream.
func corruptions(pk []trace.Packet) map[string][]trace.Packet {
	mut := make(map[string][]trace.Packet)
	cp := func() []trace.Packet { return append([]trace.Packet(nil), pk...) }
	if len(pk) == 0 {
		return mut
	}
	mid := len(pk) / 2

	m := cp()
	m[mid].Dst ^= 4
	mut["flip-dst"] = m

	m = cp()
	m[mid].Src ^= 4
	mut["flip-src"] = m

	mut["drop-packet"] = append(cp()[:mid], pk[mid+1:]...)
	mut["truncate"] = cp()[:mid]
	mut["empty"] = nil

	m = cp()
	m = append(m, m[len(m)-1])
	mut["dup-last"] = m

	if len(pk) > 1 {
		m = cp()
		m[mid-1], m[mid] = m[mid], m[mid-1]
		mut["swap-adjacent"] = m
	}

	m = cp()
	m = append(m, trace.Packet{Src: 0x1000_0000, Dst: 0x2000_0000})
	mut["append-bogus"] = m
	return mut
}

// TestEngineConformanceCorrupted: every corruption must reject (or
// coincidentally accept) identically through both engines — rejection
// codes, details, fail PCs and witness paths may never depend on the
// engine. The instruction budget is lowered so degenerate corruptions
// cannot make the interpreter's fixed point excessively expensive.
func TestEngineConformanceCorrupted(t *testing.T) {
	seeds := []int64{3, 7, 11, 19}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			ref, fast, pk := attestedPackets(t, seed)
			ref = ref.With(verify.WithMaxInstrs(20_000_000))
			fast = fast.With(verify.WithMaxInstrs(20_000_000))
			for name, mpk := range corruptions(pk) {
				diffEngines(t, ref, fast, mpk, name)
			}
		})
	}
}

// TestEngineConformanceApps: the evaluation workloads — including the
// deep-recursion stream that forces the automaton through its
// summarization rescue pass — must verify identically.
func TestEngineConformanceApps(t *testing.T) {
	for _, a := range apps.All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			out, err := LinkForCFA(a.Build(), DefaultLinkOptions())
			if err != nil {
				t.Fatalf("link: %v", err)
			}
			key, err := attest.GenerateHMACKey()
			if err != nil {
				t.Fatal(err)
			}
			prover, err := NewProver(out, key, ProverConfig{SetupMem: a.SetupMem()})
			if err != nil {
				t.Fatal(err)
			}
			chal := mustChal(t, a.Name)
			reports, _, err := prover.Attest(chal)
			if err != nil {
				t.Fatalf("attest: %v", err)
			}
			log, _, err := attest.AssembleChain(reports, chal, key)
			if err != nil {
				t.Fatal(err)
			}
			pk := decodeMTB(t, log)
			ref := NewVerifier(out, key, verify.WithAutomaton(false))
			fast := NewVerifier(out, key)
			diffEngines(t, ref, fast, pk, "benign")
			for name, mpk := range corruptions(pk) {
				diffEngines(t, ref.With(verify.WithMaxInstrs(20_000_000)),
					fast.With(verify.WithMaxInstrs(20_000_000)), mpk, name)
			}
		})
	}
}

// TestEngineConformanceInconclusive: wrap-loss evidence (the MTB
// overruns with the watermark drain suppressed, the loss counters ride
// the signed reports) must render the identical Inconclusive verdict
// through the full Verify pipeline of both engines.
func TestEngineConformanceInconclusive(t *testing.T) {
	a, err := apps.Get("prime")
	if err != nil {
		t.Fatal(err)
	}
	out, err := LinkForCFA(a.Build(), DefaultLinkOptions())
	if err != nil {
		t.Fatal(err)
	}
	key, err := attest.GenerateHMACKey()
	if err != nil {
		t.Fatal(err)
	}
	prover, err := NewProver(out, key, ProverConfig{
		SetupMem:      a.SetupMem(),
		MTBBufferSize: 256, // 32-packet buffer: prime overruns it
		Watermark:     128,
	})
	if err != nil {
		t.Fatal(err)
	}
	chal := mustChal(t, a.Name)
	if err := prover.Engine.Begin(chal); err != nil {
		t.Fatal(err)
	}
	prover.Engine.MTB.OnWatermark = nil // suppress draining: force wraps
	c, err := cpu.New(prover.Engine.CPUConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	reports, err := prover.Engine.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if reports[len(reports)-1].Wraps == 0 {
		t.Fatal("schedule did not wrap the MTB; the fixture no longer forces loss")
	}

	rv, err := NewVerifier(out, key, verify.WithAutomaton(false)).Verify(chal, reports)
	if err != nil {
		t.Fatal(err)
	}
	fv, err := NewVerifier(out, key).Verify(chal, reports)
	if err != nil {
		t.Fatal(err)
	}
	if rv.Code != verify.ReasonInconclusive {
		t.Fatalf("interpreter code = %v, want inconclusive", rv.Code)
	}
	if ri, fi := invariantOf(rv), invariantOf(fv); !ri.equal(fi) {
		t.Errorf("engines diverge on trace loss\n  interpreter: %s\n  automaton:   %s", ri, fi)
	}
}

// TestEngineConformanceBudget probes the budget-abort edge directly: under
// a budget too small for the interpreter's fixed point, the automaton must
// either accept (the documented divergence — its single validated walk can
// fit the budget) or render the interpreter's exact budget verdict. Any
// third outcome is a conformance failure.
func TestEngineConformanceBudget(t *testing.T) {
	ref, fast, pk := attestedPackets(t, 5)
	for _, budget := range []uint64{1, 100, 10_000, 1_000_000} {
		r := ref.With(verify.WithMaxInstrs(budget)).ReplayPackets(pk)
		f := fast.With(verify.WithMaxInstrs(budget)).ReplayPacketsAutomaton(pk)
		switch {
		case f.OK:
			// Documented budget-band acceptance, or both engines fit.
		case invariantOf(r).equal(invariantOf(f)):
		default:
			t.Errorf("budget=%d: interpreter %s vs automaton %s",
				budget, invariantOf(r), invariantOf(f))
		}
		if !r.OK && r.Code != verify.ReasonWorkBudget && !f.OK && f.Code != r.Code {
			t.Errorf("budget=%d: non-budget rejection diverged: %v vs %v", budget, r.Code, f.Code)
		}
	}
}
