package core

import (
	"fmt"
	"reflect"
	"testing"

	"raptrack/internal/apps"
	"raptrack/internal/attest"
	"raptrack/internal/linker"
	"raptrack/internal/verify"
)

// Streaming differential conformance: a gateway-style Begin/Feed/Seal
// session (per-slice checks on) against the whole-report Verify entry
// point, over the evaluation workloads, watermark-varied cut schedules,
// report-level corruption classes, and the cache-on/off × automaton-
// on/off configuration matrix. The sealed (Verdict, error) pair must be
// bit-identical — only wall-clock Timing is excluded — because the
// server journals streamed sessions for `raptrack replay`, which re-runs
// them through the batch path.

// streamedRun attests app through a prover cut at the given MTB
// watermark and returns the linked artifact, key, challenge and report
// chain. Smaller watermarks cut the same execution into more slices.
func streamedRun(t *testing.T, app apps.App, watermark int) (*linker.Output, attest.Authenticator, attest.Challenge, []*attest.Report) {
	t.Helper()
	out, err := LinkForCFA(app.Build(), DefaultLinkOptions())
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	key, err := attest.GenerateHMACKey()
	if err != nil {
		t.Fatal(err)
	}
	prover, err := NewProver(out, key, ProverConfig{SetupMem: app.SetupMem(), Watermark: watermark})
	if err != nil {
		t.Fatal(err)
	}
	chal := mustChal(t, app.Name)
	reports, _, err := prover.Attest(chal)
	if err != nil {
		t.Fatalf("attest: %v", err)
	}
	return out, key, chal, reports
}

// cloneReports deep-copies a report chain so mutations cannot leak
// between corruption classes.
func cloneReports(reports []*attest.Report) []*attest.Report {
	out := make([]*attest.Report, len(reports))
	for i, r := range reports {
		cp := *r
		cp.CFLog = append([]byte(nil), r.CFLog...)
		cp.Auth = append([]byte(nil), r.Auth...)
		out[i] = &cp
	}
	return out
}

// reportCorruptions is the report-level rejection space: forged
// authenticators, tampered evidence payloads, and every transport-shaped
// chain break (drop, reorder, duplicate, truncation, empty).
func reportCorruptions(reports []*attest.Report) map[string][]*attest.Report {
	mut := map[string][]*attest.Report{"benign": cloneReports(reports)}
	if len(reports) < 2 {
		return mut
	}
	mid := len(reports) / 2

	m := cloneReports(reports)
	m[mid].Auth[0] ^= 0x40
	mut["tamper-auth"] = m

	m = cloneReports(reports)
	if len(m[mid].CFLog) > 0 {
		m[mid].CFLog[0] ^= 0x04
		mut["tamper-log"] = m
	}

	mut["drop-mid"] = append(cloneReports(reports)[:mid], cloneReports(reports)[mid+1:]...)

	m = cloneReports(reports)
	m[mid-1], m[mid] = m[mid], m[mid-1]
	mut["swap-adjacent"] = m

	m = cloneReports(reports)
	mut["dup-mid"] = append(append(m[:mid+1:mid+1], m[mid]), m[mid+1:]...)

	mut["truncate-tail"] = cloneReports(reports)[:mid]
	mut["empty"] = nil
	return mut
}

// diffStream seals reports through a slice-checking session and fails
// the test unless the (Verdict, error) pair matches the batch Verify
// path bit for bit. Along the way the per-slice judgments are held to
// their contract: a chain-level SliceReject must surface as a seal
// error, and an H_MEM SliceReject as a rejecting sealed verdict.
func diffStream(t *testing.T, v *verify.Verifier, chal attest.Challenge, reports []*attest.Report, label string) {
	t.Helper()
	bv, berr := v.Verify(chal, cloneReports(reports))

	sess := v.Begin(chal)
	var chainCut, hmemCut bool
	for _, r := range cloneReports(reports) {
		sv := sess.Feed(r)
		if sv.Status == verify.SliceReject {
			switch sv.Code {
			case verify.ReasonNone:
				chainCut = true
			case verify.ReasonHMemMismatch:
				hmemCut = true
			}
		}
	}
	sv, serr := sess.Seal()

	if (berr == nil) != (serr == nil) {
		t.Errorf("%s: error presence diverges: batch=%v stream=%v", label, berr, serr)
		return
	}
	if berr != nil {
		if berr.Error() != serr.Error() {
			t.Errorf("%s: error text diverges:\n  batch:  %v\n  stream: %v", label, berr, serr)
		}
		// No converse check: truncated and empty chains authenticate
		// slice by slice and only break at Seal (missing final report),
		// so a seal error without a per-slice reject is legitimate.
		return
	}
	if chainCut {
		t.Errorf("%s: a slice raised a chain-level SliceReject but Seal returned a verdict", label)
	}
	if hmemCut && (sv.OK || sv.Code != verify.ReasonHMemMismatch) {
		t.Errorf("%s: H_MEM slice alarm not confirmed by sealed verdict %+v", label, sv)
	}
	a, b := *bv, *sv
	a.Timing, b.Timing = verify.PhaseTiming{}, verify.PhaseTiming{}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("%s: sealed verdict diverges from batch\n  batch:  ok=%v code=%v detail=%q packets=%d/%d transfers=%d path=%d\n  stream: ok=%v code=%v detail=%q packets=%d/%d transfers=%d path=%d",
			label,
			a.OK, a.Code, a.Detail, a.PacketsUsed, a.Packets, a.Transfers, len(a.Path),
			b.OK, b.Code, b.Detail, b.PacketsUsed, b.Packets, b.Transfers, len(b.Path))
	}
}

// streamMatrix runs every corruption class through the four
// cache × automaton configurations. Cached cells warm the verdict cache
// with one benign batch pass first, so streamed seals must agree with
// batch even when one side of a comparison is served from cache.
func streamMatrix(t *testing.T, out *linker.Output, key attest.Authenticator, chal attest.Challenge, reports []*attest.Report) {
	t.Helper()
	cells := []struct {
		name      string
		automaton bool
		cached    bool
	}{
		{"automaton", true, false},
		{"interpreter", false, false},
		{"automaton-cached", true, true},
		{"interpreter-cached", false, true},
	}
	for _, cell := range cells {
		cell := cell
		t.Run(cell.name, func(t *testing.T) {
			opts := []verify.Option{verify.WithAutomaton(cell.automaton)}
			if !cell.automaton {
				opts = append(opts, verify.WithMaxInstrs(50_000_000))
			}
			if cell.cached {
				opts = append(opts, verify.WithCache(verify.NewCache(1<<20)))
			}
			v := NewVerifier(out, key, opts...)
			if cell.cached {
				if _, err := v.Verify(chal, cloneReports(reports)); err != nil {
					t.Fatalf("cache warmup: %v", err)
				}
			}
			for name, mrep := range reportCorruptions(reports) {
				diffStream(t, v, chal, mrep, name)
			}
		})
	}
}

// TestStreamConformanceApps: every evaluation workload, streamed at the
// default gateway watermark, across the full configuration matrix.
func TestStreamConformanceApps(t *testing.T) {
	for _, a := range apps.All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			// Short workloads fill the MTB slowly; tighten the watermark
			// until the run cuts into enough slices for every corruption
			// class (ideally >= 3 reports; >= 2 still covers every class).
			var (
				out     *linker.Output
				key     attest.Authenticator
				chal    attest.Challenge
				reports []*attest.Report
			)
			for _, wm := range []int{512, 128, 32, 8} {
				out, key, chal, reports = streamedRun(t, a, wm)
				if len(reports) >= 3 {
					break
				}
			}
			if len(reports) < 2 {
				t.Fatalf("no watermark cut %s into >= 2 reports (got %d)", a.Name, len(reports))
			}
			streamMatrix(t, out, key, chal, reports)
		})
	}
}

// TestStreamConformanceCutSchedules: the same execution cut at different
// MTB watermarks — more, smaller slices must never change the sealed
// verdict relative to batch.
func TestStreamConformanceCutSchedules(t *testing.T) {
	watermarks := []int{256, 1024, 4096}
	if testing.Short() {
		watermarks = watermarks[:1]
	}
	app := apps.All()[0]
	for _, wm := range watermarks {
		wm := wm
		t.Run(fmt.Sprintf("watermark%d", wm), func(t *testing.T) {
			out, key, chal, reports := streamedRun(t, app, wm)
			streamMatrix(t, out, key, chal, reports)
		})
	}
}

// TestStreamConformanceHMem: an honest run of a tampered image — the
// firmware-measurement reject must stream identically to batch, with the
// H_MEM slice alarm firing on the very first Feed.
func TestStreamConformanceHMem(t *testing.T) {
	app := apps.All()[0]
	clean, err := LinkForCFA(app.Build(), DefaultLinkOptions())
	if err != nil {
		t.Fatalf("link clean: %v", err)
	}
	topts := DefaultLinkOptions()
	topts.NopPad++
	tampered, err := LinkForCFA(app.Build(), topts)
	if err != nil {
		t.Fatalf("link tampered: %v", err)
	}
	key, err := attest.GenerateHMACKey()
	if err != nil {
		t.Fatal(err)
	}
	prover, err := NewProver(tampered, key, ProverConfig{SetupMem: app.SetupMem(), Watermark: 512})
	if err != nil {
		t.Fatal(err)
	}
	chal := mustChal(t, app.Name)
	reports, _, err := prover.Attest(chal)
	if err != nil {
		t.Fatalf("attest: %v", err)
	}

	v := NewVerifier(clean, key)
	first := v.Begin(chal).Feed(cloneReports(reports)[0])
	if first.Status != verify.SliceReject || first.Code != verify.ReasonHMemMismatch {
		t.Fatalf("first slice of tampered image = %+v, want H_MEM SliceReject", first)
	}
	streamMatrix(t, clean, key, chal, reports)
}
