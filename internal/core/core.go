// Package core is the public facade of the RAP-Track library: one-stop
// helpers to run the offline phase, stand up a Prover (CFA engine + MCU),
// attest an execution, and verify the resulting evidence.
//
// Typical use:
//
//	out, _ := core.LinkForCFA(prog, core.DefaultLinkOptions())
//	prover, _ := core.NewProver(out, signer, core.ProverConfig{})
//	chal, _ := attest.NewChallenge(prog.Name)
//	reports, stats, _ := prover.Attest(chal)
//	verifier := core.NewVerifier(out, authenticator)
//	verdict, _ := verifier.Verify(chal, reports)
package core

import (
	"fmt"

	"raptrack/internal/asm"
	"raptrack/internal/attest"
	"raptrack/internal/cfa"
	"raptrack/internal/cpu"
	"raptrack/internal/linker"
	"raptrack/internal/mem"
	"raptrack/internal/speccfa"
	"raptrack/internal/verify"
)

// LinkOptions re-exports the offline-phase options.
type LinkOptions = linker.Options

// DefaultLinkOptions returns the paper-faithful offline configuration.
func DefaultLinkOptions() LinkOptions { return linker.DefaultOptions() }

// LinkForCFA runs RAP-Track's offline phase on prog.
func LinkForCFA(prog *asm.Program, opts LinkOptions) (*linker.Output, error) {
	return linker.Link(prog, opts)
}

// ProverConfig tunes a Prover instance.
type ProverConfig struct {
	// SetupMem, when non-nil, prepares the fresh memory system before
	// execution (peripheral mapping, RAM initialization).
	SetupMem func(*mem.Memory)
	// MaxSteps bounds application execution (0: generous default).
	MaxSteps uint64
	// Engine knobs (zero values select defaults).
	MTBBufferSize       int
	Watermark           int
	ArmLatency          int
	ContextSwitchCycles uint64
	// Speculation enables SpecCFA-style sub-path compression of the
	// evidence (provision the same dictionary on the Verifier).
	Speculation *speccfa.Dictionary
}

// RunStats summarizes one attested execution.
type RunStats struct {
	Cycles      uint64 // application cycles (incl. trampolines + secure calls)
	Steps       uint64 // retired instructions
	Transfers   uint64 // taken non-sequential transfers
	SecureCalls uint64 // SECALLs dispatched
	CFLogBytes  int    // total evidence bytes across the report chain
	Packets     uint64 // MTB packets written (incl. engine entries)
	Partials    int    // watermark-triggered partial reports
	SetupCycles uint64 // engine session setup (hashing APP)
	PauseCycles uint64 // engine report emission while APP is stalled
	CodeBytes   uint32 // linked code footprint
}

// Prover bundles the Secure-World engine and the simulated MCU for one
// attestation session. Each Prover runs a single session: construct a new
// one per attestation so application RAM starts fresh.
type Prover struct {
	Engine *cfa.Engine
	Mem    *mem.Memory

	link *linker.Output
	cfg  ProverConfig
	used bool
}

// NewProver builds a prover for the linked application.
func NewProver(link *linker.Output, signer attest.Signer, cfg ProverConfig) (*Prover, error) {
	m := mem.New()
	if cfg.SetupMem != nil {
		cfg.SetupMem(m)
	}
	eng, err := cfa.New(cfa.Config{
		Link:                link,
		Mem:                 m,
		Signer:              signer,
		MTBBufferSize:       cfg.MTBBufferSize,
		Watermark:           cfg.Watermark,
		ArmLatency:          cfg.ArmLatency,
		ContextSwitchCycles: cfg.ContextSwitchCycles,
		Speculation:         cfg.Speculation,
	})
	if err != nil {
		return nil, err
	}
	return &Prover{Engine: eng, Mem: m, link: link, cfg: cfg}, nil
}

// Attest runs one full CFA session: engine setup, application execution,
// and report-chain emission.
func (p *Prover) Attest(chal attest.Challenge) ([]*attest.Report, RunStats, error) {
	var stats RunStats
	if p.used {
		return nil, stats, fmt.Errorf("core: prover already used; create a fresh one per session")
	}
	p.used = true

	if err := p.Engine.Begin(chal); err != nil {
		return nil, stats, err
	}
	c, err := cpu.New(p.Engine.CPUConfig())
	if err != nil {
		return nil, stats, err
	}
	if err := c.Run(p.cfg.MaxSteps); err != nil {
		return nil, stats, fmt.Errorf("core: attested execution failed: %w", err)
	}
	reports, err := p.Engine.Finish()
	if err != nil {
		return nil, stats, err
	}

	stats.Cycles = c.Cycles
	stats.Steps = c.Steps
	stats.Transfers = c.TotalBranches()
	stats.SecureCalls = p.Engine.Gateway.Calls
	stats.Packets = p.Engine.MTB.TotalPackets
	stats.Partials = p.Engine.Partials
	stats.SetupCycles = p.Engine.SetupCycles
	stats.PauseCycles = p.Engine.PauseCycles
	stats.CodeBytes = p.link.Image.CodeSize
	for _, r := range reports {
		stats.CFLogBytes += len(r.CFLog)
	}
	return reports, stats, nil
}

// NewVerifier builds the Verifier for a linked application, configured by
// functional options (verify.WithMaxInstrs, verify.WithSpeculation,
// verify.WithCache, ...); none are required for the defaults.
func NewVerifier(link *linker.Output, auth attest.Authenticator, opts ...verify.Option) *verify.Verifier {
	return verify.New(link, auth, opts...)
}
