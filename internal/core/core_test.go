package core

import (
	"testing"

	"raptrack/internal/asm"
	"raptrack/internal/attest"
	"raptrack/internal/cpu"
	"raptrack/internal/isa"
	"raptrack/internal/mem"
)

// testProgram builds a program exercising every trampoline class:
// direct call, leaf return, indirect call, monitored POP return,
// conditional taken and not-taken, an optimized simple loop, and a
// non-simple (CMP reg,reg) backward loop.
func testProgram() *asm.Program {
	p := asm.NewProgram("e2e")

	main := p.NewFunc("main")
	main.PUSH(isa.LR)
	main.MOVi(isa.R0, 5)
	main.BL("compute") // direct call -> leaf
	main.CMPi(isa.R0, 100)
	main.BLT("less") // cond non-loop: 5*5+17=42 < 100 -> taken
	main.MOVi(isa.R1, 1)
	main.B("end_if")
	main.Label("less")
	main.MOVi(isa.R1, 2)
	main.Label("end_if")
	main.CMPi(isa.R1, 7)
	main.BEQ("never") // cond non-loop: not taken
	main.LA(isa.R2, "helper")
	main.BLX(isa.R2) // indirect call
	// Simple loop: 10 iterations, constant bound -> optimized.
	main.MOVi(isa.R3, 0)
	main.MOVi(isa.R6, 0)
	main.Label("loop")
	main.ADDr(isa.R6, isa.R6, isa.R3)
	main.ADDi(isa.R3, isa.R3, 1)
	main.CMPi(isa.R3, 10)
	main.BLT("loop")
	main.Label("never")
	main.POP(isa.PC) // monitored return (to the halt sentinel)

	compute := p.AddFunc(asm.NewFunction("compute")) // leaf: BX LR stays deterministic
	compute.MUL(isa.R0, isa.R0, isa.R0)
	compute.ADDi(isa.R0, isa.R0, 17)
	compute.RET()

	helper := p.AddFunc(asm.NewFunction("helper"))
	helper.PUSH(isa.R4, isa.LR)
	helper.MOVi(isa.R4, 3)
	helper.MOVi(isa.R5, 0)
	helper.Label("vloop") // CMP reg,reg -> not simple: trampolined per iteration
	helper.SUBi(isa.R4, isa.R4, 1)
	helper.CMPr(isa.R4, isa.R5)
	helper.BNE("vloop")
	helper.POP(isa.R4, isa.PC) // monitored return

	return p
}

// runPlain executes prog without any CFA machinery and returns the CPU.
func runPlain(t *testing.T, prog *asm.Program) *cpu.CPU {
	t.Helper()
	img, err := asm.Layout(prog.Clone(), mem.NSCodeBase)
	if err != nil {
		t.Fatalf("layout: %v", err)
	}
	c, err := cpu.New(cpu.Config{Image: img, Mem: mem.New()})
	if err != nil {
		t.Fatalf("cpu: %v", err)
	}
	if err := c.Run(0); err != nil {
		t.Fatalf("plain run: %v", err)
	}
	return c
}

func TestEndToEndAttestation(t *testing.T) {
	prog := testProgram()
	out, err := LinkForCFA(prog, DefaultLinkOptions())
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	// The constant-bound loop has a constant init too, so it is fully
	// static: reconstructed with zero evidence (§IV-C).
	if out.Stats.StaticLoops != 1 {
		t.Errorf("static loops = %d, want 1", out.Stats.StaticLoops)
	}
	if out.Stats.OptimizedLoops != 0 {
		t.Errorf("optimized (logged) loops = %d, want 0", out.Stats.OptimizedLoops)
	}
	if out.Stats.Stubs == 0 {
		t.Fatalf("no stubs generated")
	}

	key, err := attest.GenerateHMACKey()
	if err != nil {
		t.Fatal(err)
	}
	prover, err := NewProver(out, key, ProverConfig{})
	if err != nil {
		t.Fatalf("prover: %v", err)
	}
	chal, err := attest.NewChallenge(prog.Name)
	if err != nil {
		t.Fatal(err)
	}
	reports, stats, err := prover.Attest(chal)
	if err != nil {
		t.Fatalf("attest: %v", err)
	}
	if len(reports) != 1 || !reports[0].Final {
		t.Fatalf("got %d reports, want exactly 1 final", len(reports))
	}
	if stats.CFLogBytes == 0 {
		t.Fatalf("empty CFLog")
	}

	verdict, err := NewVerifier(out, key).Verify(chal, reports)
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if !verdict.OK {
		t.Fatalf("verdict not OK: %s (pc=%#x)", verdict.Reason(), verdict.FailPC)
	}
	if verdict.PacketsUsed != verdict.Packets {
		t.Errorf("packets used %d != total %d", verdict.PacketsUsed, verdict.Packets)
	}
	if verdict.LoopsReplayed != 1 {
		t.Errorf("loops replayed = %d, want 1", verdict.LoopsReplayed)
	}
}

func TestLinkedProgramSemanticsPreserved(t *testing.T) {
	prog := testProgram()
	plain := runPlain(t, prog)

	out, err := LinkForCFA(prog, DefaultLinkOptions())
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	key, _ := attest.GenerateHMACKey()
	prover, err := NewProver(out, key, ProverConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := prover.Engine.Begin(mustChal(t, prog.Name)); err != nil {
		t.Fatal(err)
	}
	c, err := cpu.New(prover.Engine.CPUConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(0); err != nil {
		t.Fatalf("linked run: %v", err)
	}

	// The transformation must preserve the computation: compare the
	// architectural register file (minus LR/PC, which legitimately differ
	// through trampolines, and R2 which holds a code address).
	for r := isa.R0; r <= isa.R12; r++ {
		if r == isa.R2 {
			continue
		}
		if plain.R[r] != c.R[r] {
			t.Errorf("register %s: plain=%#x linked=%#x", r, plain.R[r], c.R[r])
		}
	}
	if c.Cycles <= plain.Cycles {
		t.Errorf("linked cycles %d should exceed plain cycles %d (trampolines)", c.Cycles, plain.Cycles)
	}
}

func TestTamperedReportRejected(t *testing.T) {
	prog := testProgram()
	out, err := LinkForCFA(prog, DefaultLinkOptions())
	if err != nil {
		t.Fatal(err)
	}
	key, _ := attest.GenerateHMACKey()
	prover, _ := NewProver(out, key, ProverConfig{})
	chal := mustChal(t, prog.Name)
	reports, _, err := prover.Attest(chal)
	if err != nil {
		t.Fatal(err)
	}

	// Flip one evidence byte: the MAC must catch it.
	reports[0].CFLog[0] ^= 0xff
	if _, err := NewVerifier(out, key).Verify(chal, reports); err == nil {
		t.Fatal("tampered CFLog accepted")
	}
	reports[0].CFLog[0] ^= 0xff

	// Replay under a different nonce must be rejected.
	other := mustChal(t, prog.Name)
	if _, err := NewVerifier(out, key).Verify(other, reports); err == nil {
		t.Fatal("replayed report accepted under fresh challenge")
	}
}

func mustChal(t *testing.T, app string) attest.Challenge {
	t.Helper()
	c, err := attest.NewChallenge(app)
	if err != nil {
		t.Fatal(err)
	}
	return c
}
