package core

import (
	"fmt"
	"math/rand"
	"testing"

	"raptrack/internal/asm"
	"raptrack/internal/attest"
	"raptrack/internal/cpu"
	"raptrack/internal/isa"
	"raptrack/internal/mem"
)

// Differential fuzzing: generate random structured programs, then check
// that (1) the RAP-Track transformation preserves the computation exactly
// (register file parity with the plain run), (2) the generated evidence
// verifies, and (3) every packet is consumed by the reconstruction.

// progGen builds random but always-terminating programs.
type progGen struct {
	r        *rand.Rand
	p        *asm.Program
	fn       *asm.Function
	labelSeq int
	depth    int
	helpers  []string
	// regs the current loop nest must not clobber (live counters).
	forbidden map[isa.Reg]bool
}

// dataRegs are the registers random blocks may write. R2 is reserved for
// indirect-call pointers, R8 for the data base.
var dataRegs = []isa.Reg{isa.R0, isa.R1, isa.R3, isa.R4, isa.R5, isa.R6, isa.R7}

func (g *progGen) label(prefix string) string {
	g.labelSeq++
	return fmt.Sprintf("%s_%d", prefix, g.labelSeq)
}

func (g *progGen) pickReg() isa.Reg {
	for {
		r := dataRegs[g.r.Intn(len(dataRegs))]
		if !g.forbidden[r] {
			return r
		}
	}
}

// alu emits a couple of random arithmetic instructions.
func (g *progGen) alu() {
	for n := 1 + g.r.Intn(3); n > 0; n-- {
		d := g.pickReg()
		s := dataRegs[g.r.Intn(len(dataRegs))]
		switch g.r.Intn(6) {
		case 0:
			g.fn.MOVi(d, int32(g.r.Intn(256)))
		case 1:
			g.fn.ADDi(d, d, int32(1+g.r.Intn(50)))
		case 2:
			g.fn.SUBr(d, d, s)
		case 3:
			g.fn.EORr(d, d, s)
		case 4:
			g.fn.MUL(d, d, s)
		case 5:
			g.fn.LSRi(d, d, int32(g.r.Intn(8)))
		}
	}
}

// memOp stores and reloads through the data RAM (R8 holds the base).
func (g *progGen) memOp() {
	d := g.pickReg()
	off := int32(4 * g.r.Intn(16))
	g.fn.STRi(d, isa.R8, off)
	g.fn.LDRi(g.pickReg(), isa.R8, off)
}

// ifElse emits a data-dependent conditional.
func (g *progGen) ifElse() {
	r := g.pickReg()
	taken := g.label("then")
	end := g.label("endif")
	conds := []isa.Cond{isa.EQ, isa.NE, isa.LT, isa.GE, isa.CS, isa.HI}
	g.fn.CMPi(r, int32(g.r.Intn(64)))
	g.fn.Bcc(conds[g.r.Intn(len(conds))], taken)
	g.block()
	g.fn.B(end)
	g.fn.Label(taken)
	g.block()
	g.fn.Label(end)
}

// loop emits a bounded counting loop. Depending on the initializer it is
// static (constant MOV), logged-simple (constant via MUL), or non-simple
// (body contains a conditional).
func (g *progGen) loop() {
	ctr := g.pickReg()
	g.forbidden[ctr] = true
	defer delete(g.forbidden, ctr)
	n := int32(2 + g.r.Intn(9))
	head := g.label("loop")
	switch g.r.Intn(3) {
	case 0: // static
		g.fn.MOVi(ctr, 0)
	default: // runtime-derived constant: logged
		tmp := g.pickReg()
		g.fn.MOVi(tmp, 0)
		g.fn.MOVi(ctr, 1)
		g.fn.MUL(ctr, ctr, tmp) // ctr = 0, but not statically evident
	}
	g.fn.Label(head)
	g.block()
	g.fn.ADDi(ctr, ctr, 1)
	g.fn.CMPi(ctr, n)
	g.fn.BLT(head)
}

// call emits a direct or indirect call to a generated helper.
func (g *progGen) call() {
	if len(g.helpers) == 0 {
		g.alu()
		return
	}
	h := g.helpers[g.r.Intn(len(g.helpers))]
	if g.r.Intn(3) == 0 {
		g.fn.LA(isa.R2, h)
		g.fn.BLX(isa.R2)
	} else {
		g.fn.BL(h)
	}
}

// block emits a random sequence of constructs.
func (g *progGen) block() {
	g.depth++
	defer func() { g.depth-- }()
	for n := 1 + g.r.Intn(3); n > 0; n-- {
		if g.depth > 3 {
			g.alu()
			continue
		}
		switch g.r.Intn(10) {
		case 0, 1, 2:
			g.alu()
		case 3:
			g.memOp()
		case 4, 5:
			g.ifElse()
		case 6, 7:
			g.loop()
		default:
			g.call()
		}
	}
}

// generate builds a deterministic random program for a seed.
func generate(seed int64) *asm.Program {
	r := rand.New(rand.NewSource(seed))
	p := asm.NewProgram(fmt.Sprintf("fuzz%d", seed))
	g := &progGen{r: r, p: p, forbidden: make(map[isa.Reg]bool)}

	// Helpers first: one leaf, one non-leaf, one recursive.
	leaf := asm.NewFunction("h_leaf")
	leaf.ADDi(isa.R0, isa.R0, 7)
	leaf.EORr(isa.R1, isa.R1, isa.R0)
	leaf.RET()

	nonleaf := asm.NewFunction("h_nonleaf")
	nonleaf.PUSH(isa.R4, isa.LR)
	nonleaf.MOVr(isa.R4, isa.R0)
	nonleaf.BL("h_leaf")
	nonleaf.ADDr(isa.R0, isa.R0, isa.R4)
	nonleaf.POP(isa.R4, isa.PC)

	rec := asm.NewFunction("h_rec") // sum(1..n) recursively, n in R0
	rec.CMPi(isa.R0, 1)
	rec.BLE("base")
	rec.PUSH(isa.R4, isa.LR)
	rec.MOVr(isa.R4, isa.R0)
	rec.SUBi(isa.R0, isa.R0, 1)
	rec.BL("h_rec")
	rec.ADDr(isa.R0, isa.R0, isa.R4)
	rec.POP(isa.R4, isa.PC)
	rec.Label("base")
	rec.RET()

	main := p.NewFunc("main")
	main.PUSH(isa.LR)
	main.MOV32(isa.R8, mem.NSDataBase)
	for _, reg := range dataRegs {
		main.MOVi(reg, int32(r.Intn(100)))
	}
	g.fn = main
	g.helpers = []string{"h_leaf", "h_nonleaf"}
	g.block()
	g.block()
	// One bounded recursive call.
	main.MOVi(isa.R0, int32(2+r.Intn(6)))
	main.BL("h_rec")
	g.block()
	main.POP(isa.PC)

	p.AddFunc(leaf)
	p.AddFunc(nonleaf)
	p.AddFunc(rec)
	return p
}

func TestDifferentialFuzz(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 10
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			prog := generate(seed)

			// Plain run.
			plainImg, err := asm.Layout(prog.Clone(), mem.NSCodeBase)
			if err != nil {
				t.Fatalf("layout: %v", err)
			}
			plain, err := cpu.New(cpu.Config{Image: plainImg, Mem: mem.New()})
			if err != nil {
				t.Fatal(err)
			}
			if err := plain.Run(5_000_000); err != nil {
				t.Fatalf("plain run: %v", err)
			}

			// Attested run.
			out, err := LinkForCFA(prog, DefaultLinkOptions())
			if err != nil {
				t.Fatalf("link: %v", err)
			}
			key, err := attest.GenerateHMACKey()
			if err != nil {
				t.Fatal(err)
			}
			prover, err := NewProver(out, key, ProverConfig{MaxSteps: 20_000_000})
			if err != nil {
				t.Fatal(err)
			}
			chal := mustChal(t, prog.Name)
			reports, _, err := prover.Attest(chal)
			if err != nil {
				t.Fatalf("attest: %v", err)
			}

			// (1) Register parity: the transformation must not change the
			// computation. R2 may hold a code address (layouts differ);
			// everything else must match.
			eng := prover.Engine
			_ = eng
			verdict, err := NewVerifier(out, key).Verify(chal, reports)
			if err != nil {
				t.Fatalf("verify: %v", err)
			}
			if !verdict.OK {
				t.Fatalf("verdict: %s (pc=%#x, packets %d/%d)",
					verdict.Reason(), verdict.FailPC, verdict.PacketsUsed, verdict.Packets)
			}
			if verdict.PacketsUsed != verdict.Packets {
				t.Errorf("unconsumed evidence: %d/%d", verdict.PacketsUsed, verdict.Packets)
			}
		})
	}
}

// TestDifferentialFuzzRegisterParity re-runs a subset comparing the final
// register file between the plain and attested executions.
func TestDifferentialFuzzRegisterParity(t *testing.T) {
	for seed := int64(100); seed < 120; seed++ {
		prog := generate(seed)
		plainImg, err := asm.Layout(prog.Clone(), mem.NSCodeBase)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := cpu.New(cpu.Config{Image: plainImg, Mem: mem.New()})
		if err != nil {
			t.Fatal(err)
		}
		if err := plain.Run(5_000_000); err != nil {
			t.Fatalf("seed %d plain: %v", seed, err)
		}

		out, err := LinkForCFA(prog, DefaultLinkOptions())
		if err != nil {
			t.Fatal(err)
		}
		key, _ := attest.GenerateHMACKey()
		prover, err := NewProver(out, key, ProverConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if err := prover.Engine.Begin(mustChal(t, prog.Name)); err != nil {
			t.Fatal(err)
		}
		c, err := cpu.New(prover.Engine.CPUConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Run(20_000_000); err != nil {
			t.Fatalf("seed %d attested: %v", seed, err)
		}
		for _, reg := range dataRegs {
			if plain.R[reg] != c.R[reg] {
				t.Errorf("seed %d: %v plain=%#x attested=%#x", seed, reg, plain.R[reg], c.R[reg])
			}
		}
	}
}
