package core

import (
	"testing"

	"raptrack/internal/asm"
	"raptrack/internal/attest"
	"raptrack/internal/isa"
)

func fibProg(n int32) *asm.Program {
	p := asm.NewProgram("fibdbg")
	main := p.NewFunc("main")
	main.PUSH(isa.LR)
	main.MOVi(isa.R0, n)
	main.BL("fib")
	main.POP(isa.PC)

	f := p.AddFunc(asm.NewFunction("fib"))
	f.CMPi(isa.R0, 2)
	f.BLT("base")
	f.PUSH(isa.R4, isa.LR)
	f.MOVr(isa.R4, isa.R0)
	f.SUBi(isa.R0, isa.R4, 1)
	f.BL("fib")
	f.MOVr(isa.R1, isa.R0)
	f.SUBi(isa.R0, isa.R4, 2)
	f.MOVr(isa.R4, isa.R1)
	f.BL("fib")
	f.ADDr(isa.R0, isa.R4, isa.R0)
	f.POP(isa.R4, isa.PC)
	f.Label("base")
	f.RET()
	return p
}

func TestFibDepthScaling(t *testing.T) {
	for _, n := range []int32{3, 5, 7, 9, 11, 13, 15} {
		out, err := LinkForCFA(fibProg(n), DefaultLinkOptions())
		if err != nil {
			t.Fatal(err)
		}
		key, _ := attest.GenerateHMACKey()
		prover, _ := NewProver(out, key, ProverConfig{})
		chal := mustChal(t, "fibdbg")
		reports, stats, err := prover.Attest(chal)
		if err != nil {
			t.Fatalf("fib(%d) attest: %v", n, err)
		}
		verdict, err := NewVerifier(out, key).Verify(chal, reports)
		if err != nil {
			t.Fatalf("fib(%d) verify: %v", n, err)
		}
		t.Logf("fib(%d): packets=%d ok=%v passes=%d work=%d reason=%q",
			n, verdict.Packets, verdict.OK, verdict.Passes, verdict.Instrs, verdict.Reason())
		if !verdict.OK {
			t.Fatalf("fib(%d) rejected: %s", n, verdict.Reason())
		}
		_ = stats
	}
}
