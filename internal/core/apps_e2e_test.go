package core

import (
	"testing"

	"raptrack/internal/apps"
	"raptrack/internal/attest"
	"raptrack/internal/cpu"
	"raptrack/internal/mem"
)

// TestAllAppsAttestAndVerify is the system-level acceptance test: every
// evaluation workload must (1) run unmodified, (2) run identically after
// the RAP-Track offline phase (same host-visible outputs), and (3) produce
// evidence the verifier reconstructs losslessly.
func TestAllAppsAttestAndVerify(t *testing.T) {
	for _, a := range apps.All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			// Plain (baseline) run.
			_, plainDev, err := apps.RunPlain(a)
			if err != nil {
				t.Fatalf("plain run: %v", err)
			}

			// Offline phase + attested run.
			out, err := LinkForCFA(a.Build(), DefaultLinkOptions())
			if err != nil {
				t.Fatalf("link: %v", err)
			}
			key, err := attest.GenerateHMACKey()
			if err != nil {
				t.Fatal(err)
			}
			m := mem.New()
			var dev *apps.Devices
			prover, err := NewProver(out, key, ProverConfig{
				SetupMem: func(mm *mem.Memory) { dev = a.Setup(mm) },
			})
			if err != nil {
				t.Fatalf("prover: %v", err)
			}
			_ = m
			chal, err := attest.NewChallenge(a.Name)
			if err != nil {
				t.Fatal(err)
			}
			reports, stats, err := prover.Attest(chal)
			if err != nil {
				t.Fatalf("attest: %v", err)
			}

			// Device outputs must match the plain run (semantic
			// preservation through trampolines and loop instrumentation).
			if plainDev != nil && dev != nil && plainDev.Host != nil {
				if len(dev.Host.Words) != len(plainDev.Host.Words) {
					t.Fatalf("host words differ: plain %v, attested %v",
						plainDev.Host.Words, dev.Host.Words)
				}
				for i := range dev.Host.Words {
					if dev.Host.Words[i] != plainDev.Host.Words[i] {
						t.Errorf("host word %d: plain %d, attested %d",
							i, plainDev.Host.Words[i], dev.Host.Words[i])
					}
				}
			}

			// No trace packets may be lost to the MTB arming window: the
			// NOP padding must cover the activation latency.
			if prover.Engine.MTB.DroppedArming != 0 {
				t.Errorf("%d packets lost during MTB arming (NOP padding insufficient)",
					prover.Engine.MTB.DroppedArming)
			}

			// Verification must reconstruct the complete path.
			verdict, err := NewVerifier(out, key).Verify(chal, reports)
			if err != nil {
				t.Fatalf("verify: %v", err)
			}
			if !verdict.OK {
				t.Fatalf("verdict: %s (pc=%#x, packets %d/%d)",
					verdict.Reason(), verdict.FailPC, verdict.PacketsUsed, verdict.Packets)
			}
			if verdict.PacketsUsed != verdict.Packets {
				t.Errorf("evidence not fully consumed: %d/%d", verdict.PacketsUsed, verdict.Packets)
			}
			if stats.CFLogBytes == 0 {
				t.Errorf("no evidence generated")
			}
			t.Logf("%s: cycles=%d steps=%d cflog=%dB packets=%d stubs=%d loops=%d partials=%d",
				a.Name, stats.Cycles, stats.Steps, stats.CFLogBytes, stats.Packets,
				out.Stats.Stubs, out.Stats.OptimizedLoops, stats.Partials)
		})
	}
}

// TestAllAppsRegisterParity cross-checks the full architectural register
// file between plain and attested executions for the pure-compute kernels.
func TestAllAppsRegisterParity(t *testing.T) {
	for _, name := range []string{"prime", "crc32", "bubblesort", "fibcall", "matmult"} {
		a, err := apps.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			plain, _, err := apps.RunPlain(a)
			if err != nil {
				t.Fatal(err)
			}
			out, err := LinkForCFA(a.Build(), DefaultLinkOptions())
			if err != nil {
				t.Fatal(err)
			}
			key, _ := attest.GenerateHMACKey()
			prover, err := NewProver(out, key, ProverConfig{SetupMem: a.SetupMem()})
			if err != nil {
				t.Fatal(err)
			}
			if err := prover.Engine.Begin(mustChal(t, name)); err != nil {
				t.Fatal(err)
			}
			c, err := cpu.New(prover.Engine.CPUConfig())
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Run(0); err != nil {
				t.Fatalf("attested run: %v", err)
			}
			// R0 carries the kernel result and must always match.
			if plain.R[0] != c.R[0] {
				t.Errorf("R0: plain %#x, attested %#x", plain.R[0], c.R[0])
			}
		})
	}
}
