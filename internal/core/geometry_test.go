package core

import (
	"testing"

	"raptrack/internal/apps"
	"raptrack/internal/attest"
	"raptrack/internal/verify"
)

// TestVerifyGeometry bounds the search complexity on the most ambiguous
// workload (crc32: per-bit conditionals inside a per-byte guard): the memo
// must stay polynomial — entries linear in evidence, outcomes at most
// quadratic (the triangle of structurally-possible prefix completions).
func TestVerifyGeometry(t *testing.T) {
	a, err := apps.Get("crc32")
	if err != nil {
		t.Fatal(err)
	}
	out, err := LinkForCFA(a.Build(), DefaultLinkOptions())
	if err != nil {
		t.Fatal(err)
	}
	key, _ := attest.GenerateHMACKey()
	prover, _ := NewProver(out, key, ProverConfig{SetupMem: a.SetupMem()})
	chal := mustChal(t, "crc32")
	reports, _, err := prover.Attest(chal)
	if err != nil {
		t.Fatal(err)
	}
	var log []byte
	for _, r := range reports {
		log = append(log, r.CFLog...)
	}
	pkts := decodeMTB(t, log)
	v := NewVerifier(out, key)
	entries, outcomes, advs, work := verify.Diag(v, pkts)
	t.Logf("crc32: packets=%d entries=%d outcomes=%d advs=%d work=%d",
		len(pkts), entries, outcomes, advs, work)
	n := len(pkts)
	if entries > 8*n {
		t.Errorf("entries %d super-linear in %d packets", entries, n)
	}
	if outcomes > 2*n*n {
		t.Errorf("outcomes %d super-quadratic in %d packets", outcomes, n)
	}
	if work > uint64(100*n) {
		t.Errorf("abstract work %d super-linear-ish in %d packets", work, n)
	}
}
