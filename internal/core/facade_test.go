package core

import (
	"strings"
	"testing"

	"raptrack/internal/apps"
	"raptrack/internal/attest"
)

func TestProverSingleUse(t *testing.T) {
	a, err := apps.Get("prime")
	if err != nil {
		t.Fatal(err)
	}
	link, err := LinkForCFA(a.Build(), DefaultLinkOptions())
	if err != nil {
		t.Fatal(err)
	}
	key, _ := attest.GenerateHMACKey()
	prover, err := NewProver(link, key, ProverConfig{SetupMem: a.SetupMem()})
	if err != nil {
		t.Fatal(err)
	}
	chal := mustChal(t, "prime")
	if _, _, err := prover.Attest(chal); err != nil {
		t.Fatal(err)
	}
	if _, _, err := prover.Attest(chal); err == nil ||
		!strings.Contains(err.Error(), "already used") {
		t.Errorf("second Attest: %v", err)
	}
}

func TestNewProverRejectsBadEngineConfig(t *testing.T) {
	a, _ := apps.Get("prime")
	link, _ := LinkForCFA(a.Build(), DefaultLinkOptions())
	key, _ := attest.GenerateHMACKey()
	if _, err := NewProver(link, key, ProverConfig{Watermark: 13}); err == nil {
		t.Error("unaligned watermark accepted")
	}
	if _, err := NewProver(nil, key, ProverConfig{}); err == nil {
		t.Error("nil link accepted")
	}
}

func TestAttestRunawayExecutionSurfaced(t *testing.T) {
	a, _ := apps.Get("monitor")
	link, _ := LinkForCFA(a.Build(), DefaultLinkOptions())
	key, _ := attest.GenerateHMACKey()
	prover, err := NewProver(link, key, ProverConfig{SetupMem: a.SetupMem(), MaxSteps: 100})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := prover.Attest(mustChal(t, "monitor")); err == nil ||
		!strings.Contains(err.Error(), "step limit") {
		t.Errorf("runaway: %v", err)
	}
}

func TestRunStatsPlausibility(t *testing.T) {
	a, _ := apps.Get("monitor")
	link, _ := LinkForCFA(a.Build(), DefaultLinkOptions())
	key, _ := attest.GenerateHMACKey()
	prover, _ := NewProver(link, key, ProverConfig{SetupMem: a.SetupMem()})
	_, stats, err := prover.Attest(mustChal(t, "monitor"))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Steps == 0 || stats.Cycles < stats.Steps {
		t.Errorf("cycles %d < steps %d", stats.Cycles, stats.Steps)
	}
	if stats.Transfers == 0 || stats.Packets == 0 {
		t.Error("no transfers/packets")
	}
	if uint64(stats.CFLogBytes) != stats.Packets*8 {
		t.Errorf("CFLog %d != packets %d * 8", stats.CFLogBytes, stats.Packets)
	}
	if stats.CodeBytes != link.Image.CodeSize {
		t.Error("code bytes mismatch")
	}
	if stats.SetupCycles == 0 {
		t.Error("setup cycles missing")
	}
}
