package core

import (
	"bytes"
	"testing"

	"raptrack/internal/apps"
	"raptrack/internal/attest"
	"raptrack/internal/trace"
	"raptrack/internal/trace/pipeline"
)

// Differential pipeline conformance: the typed decode pipeline must be
// bit-identical to the legacy MTB framing on real evidence. For every
// registered workload this attests a session and checks, packet for
// packet, that the lenient pipeline path reproduces trace.DecodePackets
// (the pre-pipeline decoder, kept as the oracle) over every report, the
// assembled chain, and ragged truncations of it — and that re-encoding
// round-trips to the original bytes. This is the acceptance criterion
// for the decode-path redesign: same evidence in, same packets out.
func TestPipelineDecodeConformance(t *testing.T) {
	for _, a := range apps.All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			link, err := LinkForCFA(a.Build(), DefaultLinkOptions())
			if err != nil {
				t.Fatal(err)
			}
			key, err := attest.GenerateHMACKey()
			if err != nil {
				t.Fatal(err)
			}
			p, err := NewProver(link, key, ProverConfig{SetupMem: a.SetupMem()})
			if err != nil {
				t.Fatal(err)
			}
			chal := mustChal(t, a.Name)
			reports, _, err := p.Attest(chal)
			if err != nil {
				t.Fatal(err)
			}
			if v, err := NewVerifier(link, key).Verify(chal, reports); err != nil || !v.OK {
				t.Fatalf("session rejected: %v %v", err, v)
			}

			var log []byte
			for _, r := range reports {
				assertSameDecode(t, r.CFLog)
				log = append(log, r.CFLog...)
			}
			assertSameDecode(t, log)
			// Ragged tails: the lenient pipeline must repair exactly as the
			// legacy decoder silently dropped.
			for cut := 1; cut <= trace.PacketSize && cut < len(log); cut++ {
				assertSameDecode(t, log[:len(log)-cut])
			}
		})
	}
}

// assertSameDecode checks legacy and pipeline MTB decoding agree on b,
// and that the decoded packets re-encode to the whole-packet prefix.
func assertSameDecode(t *testing.T, b []byte) {
	t.Helper()
	//lint:ignore SA1019 the deprecated decoder is the differential oracle here
	legacy := trace.DecodePackets(b)
	got, derr := pipeline.New(pipeline.Raw(pipeline.FormatMTB, b)).Packets()
	if derr != nil {
		t.Fatalf("lenient pipeline decode failed: %v", derr)
	}
	le, ge := pipeline.EncodeMTB(legacy), pipeline.EncodeMTB(got)
	if !bytes.Equal(le, ge) {
		t.Fatalf("decode divergence on %d bytes: legacy %d packets, pipeline %d packets",
			len(b), len(legacy), len(got))
	}
	if want := b[:len(b)-len(b)%trace.PacketSize]; !bytes.Equal(ge, want) {
		t.Fatalf("re-encode is not the whole-packet prefix: %d bytes vs %d", len(ge), len(want))
	}
}
