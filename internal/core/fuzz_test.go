package core

import (
	"testing"

	"raptrack/internal/attest"
	"raptrack/internal/trace/pipeline"
	"raptrack/internal/verify"
)

// FuzzAutomatonDifferential fuzzes the engine-equivalence contract
// itself: arbitrary bytes are decoded as an MTB packet stream and
// replayed through both the interpretive pushdown search and the
// compiled automaton. Any divergence on the invariant Verdict projection
// (outside the documented budget band — see diffEngines) is a bug in one
// of the engines. Seeds cover a benign attested stream of a structured
// fuzz program plus every corruption class the conformance suite pins.
func FuzzAutomatonDifferential(f *testing.F) {
	prog := generate(7)
	out, err := LinkForCFA(prog, DefaultLinkOptions())
	if err != nil {
		f.Fatal(err)
	}
	key, err := attest.GenerateHMACKey()
	if err != nil {
		f.Fatal(err)
	}
	prover, err := NewProver(out, key, ProverConfig{MaxSteps: 20_000_000})
	if err != nil {
		f.Fatal(err)
	}
	chal, err := attest.NewChallenge(prog.Name)
	if err != nil {
		f.Fatal(err)
	}
	reports, _, err := prover.Attest(chal)
	if err != nil {
		f.Fatal(err)
	}
	log, _, err := attest.AssembleChain(reports, chal, key)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(log)
	for _, mpk := range corruptions(decodeMTB(f, log)) {
		f.Add(pipeline.EncodeMTB(mpk))
	}
	f.Add([]byte{})
	f.Add([]byte{0xfe, 0xff, 0xff, 0xff, 0x00, 0x00, 0x20, 0x00}) // halt-sentinel-ish

	// The work budget bounds the interpreter's fixed point on adversarial
	// streams; the budget band in diffEngines keeps that sound.
	ref := NewVerifier(out, key, verify.WithAutomaton(false), verify.WithMaxInstrs(2_000_000))
	fast := NewVerifier(out, key, verify.WithMaxInstrs(2_000_000))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<14 {
			t.Skip("stream beyond fuzz size budget")
		}
		diffEngines(t, ref, fast, decodeMTB(t, data), "fuzz")
	})
}
