package server

import (
	"sync"
	"time"

	"raptrack/internal/remote"
	"raptrack/internal/verify"
)

// HealState is one device's position in the gateway's healing state
// machine. Streaming sessions drive the transitions:
//
//	healthy ──(definitive slice alarm / sealed reject)──▶ suspect
//	suspect ──(sealed attack verdict)──▶ quarantined
//	suspect|quarantined ──(HEAL acknowledged)──▶ healing
//	healing|suspect ──(sealed accepted session)──▶ healthy
//
// Healthy devices are not tracked at all — absence from the registry is
// the healthy state — so the registry's size is bounded by the number of
// currently-unhealthy devices, not the fleet.
type HealState uint8

const (
	// HealHealthy: no unresolved alarm (untracked).
	HealHealthy HealState = iota
	// HealSuspect: a definitive mid-stream alarm (suspect, inconclusive,
	// or chain-level reject slice) fired; a HEAL directive is in flight.
	HealSuspect
	// HealQuarantined: the sealed verdict confirmed an attack; the device
	// stays quarantined until it acknowledges remediation.
	HealQuarantined
	// HealHealing: the device acknowledged its HEAL directive and is
	// expected to remediate and re-attest; the next accepted session
	// returns it to healthy.
	HealHealing
)

var healStateNames = [...]string{
	HealHealthy:     "healthy",
	HealSuspect:     "suspect",
	HealQuarantined: "quarantined",
	HealHealing:     "healing",
}

func (s HealState) String() string {
	if int(s) < len(healStateNames) {
		return healStateNames[s]
	}
	return "invalid"
}

// healEntry is one tracked (unhealthy) device.
type healEntry struct {
	state     HealState
	directive remote.HealDirective // last directive pushed
	seq       uint32               // slice that triggered it
	since     time.Time            // entering the current state
}

// healKey scopes healing state by (app, device): the same physical
// device attesting two apps heals each independently. The NUL separator
// cannot appear in an app name (the HELO wire format guarantees it).
func healKey(app, device string) string { return app + "\x00" + device }

// healRegistry is the gateway's per-device healing state machine. All
// methods are safe for concurrent sessions.
type healRegistry struct {
	mu      sync.Mutex
	devices map[string]*healEntry
}

func newHealRegistry() *healRegistry {
	return &healRegistry{devices: make(map[string]*healEntry)}
}

// suspect records a definitive mid-stream alarm and the directive pushed
// for it. A quarantined device stays quarantined (the stronger state);
// anything else becomes suspect.
func (h *healRegistry) suspect(key string, d remote.HealDirective, seq uint32) {
	h.mu.Lock()
	defer h.mu.Unlock()
	e := h.devices[key]
	if e == nil {
		e = &healEntry{}
		h.devices[key] = e
	}
	e.directive, e.seq = d, seq
	if e.state != HealQuarantined {
		e.state = HealSuspect
		e.since = time.Now()
	}
}

// quarantine records a sealed attack verdict. A device already healing
// under the same directive keeps that state — the seal confirms the very
// compromise the device committed to remediate, it is not new evidence
// against the remediation.
func (h *healRegistry) quarantine(key string, d remote.HealDirective) {
	h.mu.Lock()
	defer h.mu.Unlock()
	e := h.devices[key]
	if e == nil {
		e = &healEntry{}
		h.devices[key] = e
	}
	if e.state == HealHealing && e.directive == d {
		return
	}
	e.directive = d
	e.state = HealQuarantined
	e.since = time.Now()
}

// acked records the device's HEALACK for the directive it was pushed:
// the device committed to remediate, so it moves to healing. An ack for
// a directive the registry never pushed (replay, confusion) is ignored.
func (h *healRegistry) acked(key string, d remote.HealDirective) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	e := h.devices[key]
	if e == nil || e.directive != d {
		return false
	}
	e.state = HealHealing
	e.since = time.Now()
	return true
}

// accepted records a sealed accepted session: whatever the device's
// prior state, fresh authenticated evidence of a benign run returns it
// to healthy (untracked).
func (h *healRegistry) accepted(key string) {
	h.mu.Lock()
	delete(h.devices, key)
	h.mu.Unlock()
}

// state reports the device's current state (healthy when untracked).
func (h *healRegistry) state(key string) HealState {
	h.mu.Lock()
	defer h.mu.Unlock()
	if e := h.devices[key]; e != nil {
		return e.state
	}
	return HealHealthy
}

// counts sizes the registry by state (healthy is omitted: untracked).
func (h *healRegistry) counts() map[HealState]int {
	h.mu.Lock()
	defer h.mu.Unlock()
	c := make(map[HealState]int, 3)
	for _, e := range h.devices {
		c[e.state]++
	}
	return c
}

// healDirectiveForSlice maps a definitive slice alarm to the directive
// pushed mid-run: attested trace loss asks for a fresh session, a
// firmware-measurement mismatch for re-provisioning, and everything else
// (chain violations, no-benign-derivation alarms) for quarantine.
func healDirectiveForSlice(sv verify.SliceVerdict) remote.HealDirective {
	switch {
	case sv.Status == verify.SliceInconclusive:
		return remote.HealReattest
	case sv.Code == verify.ReasonHMemMismatch:
		return remote.HealReprovision
	default:
		return remote.HealQuarantine
	}
}

// healDirectiveForVerdict maps a sealed non-OK verdict to a directive,
// for sessions whose first definitive judgment only lands at Seal.
func healDirectiveForVerdict(code verify.ReasonCode) remote.HealDirective {
	switch code {
	case verify.ReasonHMemMismatch, verify.ReasonBadImage:
		return remote.HealReprovision
	case verify.ReasonInconclusive:
		return remote.HealReattest
	default:
		return remote.HealQuarantine
	}
}
