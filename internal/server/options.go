package server

import (
	"runtime"
	"time"

	"raptrack/internal/journal"
	"raptrack/internal/obs"
	"raptrack/internal/speccfa"
)

// config tunes a Gateway; zero values select the documented defaults.
// It is internal plumbing behind the functional options ([New] with
// [WithSessionSlots], [WithVerifyWorkers], [WithCache], [WithMining],
// [WithFaults], [WithObserver] and friends) — the former exported Config
// struct and its NewFromConfig shim are gone.
type config struct {
	// MaxSessions caps concurrently served sessions; further connections
	// are shed with a BUSY frame (default 64).
	MaxSessions int
	// VerifyWorkers sizes the reconstruction worker pool (default
	// GOMAXPROCS).
	VerifyWorkers int
	// VerifyQueue bounds verification jobs waiting for a worker; beyond
	// it, session goroutines block — backpressure — until their session
	// deadline (default 2 * VerifyWorkers).
	VerifyQueue int
	// SessionTimeout bounds one whole session, connection to verdict
	// (default 30s).
	SessionTimeout time.Duration
	// IOTimeout bounds each read/write (default 10s).
	IOTimeout time.Duration
	// OnSessionError, when non-nil, observes per-session failures
	// (diagnostics; the session is already counted in the snapshot).
	OnSessionError func(remoteAddr string, err error)

	// BusyRetryAfter is the retry-after hint carried in capacity-shed BUSY
	// frames (0: no hint — the frame is wire-identical to protocol v2's
	// empty BUSY, so old provers are unaffected).
	BusyRetryAfter time.Duration
	// BreakerThreshold opens an app's circuit breaker after this many
	// consecutive verification *errors* — malformed/inauthentic evidence or
	// recovered verify panics, never attack verdicts (0: default 8;
	// negative: breaker disabled).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker sheds the app's sessions
	// before admitting a half-open probe (default 2s).
	BreakerCooldown time.Duration

	// VerifyHook, when non-nil, runs on the worker goroutine immediately
	// before each verification (chaos injection: panics and stalls land
	// exactly where a verifier bug would).
	VerifyHook func(app string)
	// DictFault, when non-nil, may rewrite a mined dictionary's encoded
	// bytes before the promotion self-check (chaos injection for the
	// quarantine path).
	DictFault func([]byte) []byte

	// CacheBytes bounds the per-app verification summary cache (0: 64 MiB
	// default; negative: no cache is attached at Register).
	CacheBytes int64
	// MineEvery runs speccfa.Mine on the evidence of every MineEvery-th
	// accepted session per app, starting with the first (0: default 16;
	// negative: mining off).
	MineEvery int
	// MinePaths caps the sub-paths one mining pass may surface (default 8).
	MinePaths int
	// MaxDictPaths caps the live dictionary a mining promotion may grow to
	// (default 32; hard limit speccfa.MaxPaths).
	MaxDictPaths int

	// Journal, when non-nil, is the durable evidence plane: every session
	// verdict (with its complete evidence) and every live dictionary
	// version is committed through it. Journal failure never fails a
	// session — the journal degrades internally and the gateway keeps
	// serving.
	Journal *journal.Journal

	// DisableAutomaton turns off the compiled table-driven verifier core
	// for all sessions: every job runs the interpretive pushdown search.
	// Default off — the automaton decodes the accept path, with the
	// interpreter rendering every non-accept verdict.
	DisableAutomaton bool
}

func (c config) withDefaults() config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 64
	}
	if c.VerifyWorkers <= 0 {
		c.VerifyWorkers = runtime.GOMAXPROCS(0)
	}
	if c.VerifyQueue <= 0 {
		c.VerifyQueue = 2 * c.VerifyWorkers
	}
	if c.SessionTimeout <= 0 {
		c.SessionTimeout = 30 * time.Second
	}
	if c.IOTimeout <= 0 {
		c.IOTimeout = 10 * time.Second
	}
	if c.MineEvery == 0 {
		c.MineEvery = 16
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 8
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	if c.MinePaths <= 0 {
		c.MinePaths = 8
	}
	if c.MaxDictPaths <= 0 || c.MaxDictPaths > speccfa.MaxPaths {
		c.MaxDictPaths = 32
	}
	return c
}

// settings is the resolved constructor input: the config plus the
// observer attachment.
type settings struct {
	cfg config
	obs *obs.Observer
}

// Option configures a Gateway at construction ([New]).
type Option func(*settings)

// WithSessionSlots caps concurrently served sessions; connections beyond
// the cap are shed with one BUSY frame (default 64).
func WithSessionSlots(n int) Option {
	return func(s *settings) { s.cfg.MaxSessions = n }
}

// WithVerifyWorkers sizes the reconstruction worker pool and its queue.
// workers defaults to GOMAXPROCS when <= 0; queue bounds jobs waiting for
// a worker — beyond it session goroutines block (backpressure) until
// their session deadline — and defaults to 2*workers when <= 0.
func WithVerifyWorkers(workers, queue int) Option {
	return func(s *settings) {
		s.cfg.VerifyWorkers = workers
		s.cfg.VerifyQueue = queue
	}
}

// WithTimeouts bounds one whole session (connection to verdict, default
// 30s) and each individual read/write (default 10s).
func WithTimeouts(session, io time.Duration) Option {
	return func(s *settings) {
		s.cfg.SessionTimeout = session
		s.cfg.IOTimeout = io
	}
}

// WithBusyRetryAfter sets the retry-after hint carried in capacity-shed
// BUSY frames (0: no hint).
func WithBusyRetryAfter(d time.Duration) Option {
	return func(s *settings) { s.cfg.BusyRetryAfter = d }
}

// WithBreaker tunes the per-app circuit breaker: threshold consecutive
// verification errors open it (0: default 8; negative: disabled), and an
// open breaker sheds the app's sessions for cooldown before admitting a
// half-open probe (<= 0: default 2s).
func WithBreaker(threshold int, cooldown time.Duration) Option {
	return func(s *settings) {
		s.cfg.BreakerThreshold = threshold
		s.cfg.BreakerCooldown = cooldown
	}
}

// WithCache bounds the per-app verification summary cache in bytes
// (0: 64 MiB default; negative: no cache is attached at Register).
func WithCache(bytes int64) Option {
	return func(s *settings) { s.cfg.CacheBytes = bytes }
}

// WithMining tunes online SpecCFA mining: every-th accepted session per
// app is mined (0: default 16; negative: mining off), each pass surfaces
// at most paths sub-paths (<= 0: default 8), and the live dictionary may
// grow to maxDictPaths (<= 0: default 32, hard limit speccfa.MaxPaths).
func WithMining(every, paths, maxDictPaths int) Option {
	return func(s *settings) {
		s.cfg.MineEvery = every
		s.cfg.MinePaths = paths
		s.cfg.MaxDictPaths = maxDictPaths
	}
}

// WithAutomaton toggles the compiled table-driven verifier core (default
// on). When on, each live dictionary version carries an automaton machine
// compiled against exactly that dictionary, and accepted sessions decode
// through the flat table instead of the interpretive pushdown search; the
// interpreter still renders every non-accept verdict, so rejection codes
// never depend on this switch. When off, all sessions run the
// interpreter — the reference configuration for differential testing and
// benchmarking.
func WithAutomaton(on bool) Option {
	return func(s *settings) { s.cfg.DisableAutomaton = !on }
}

// WithFaults installs the chaos-injection hooks: verifyHook runs on the
// worker goroutine immediately before each verification, and dictFault
// may rewrite a mined dictionary's encoded bytes before the promotion
// self-check. Either may be nil.
func WithFaults(verifyHook func(app string), dictFault func([]byte) []byte) Option {
	return func(s *settings) {
		s.cfg.VerifyHook = verifyHook
		s.cfg.DictFault = dictFault
	}
}

// WithObserver attaches the observability layer: the observer's registry
// receives every gateway metric family at construction time, and its
// trace rings receive one span trace per session. Without this option
// the gateway creates a private observer, so Snapshot and span tracing
// work regardless; pass one explicitly to serve the registry over an
// admin endpoint (obs.AdminHandler) or to pre-register your own families
// alongside the gateway's.
//
// One observer serves one gateway: registering a second gateway on the
// same observer panics on the duplicate metric names.
func WithObserver(o *obs.Observer) Option {
	return func(s *settings) { s.obs = o }
}

// WithJournal attaches the durable evidence plane: every session verdict
// — acceptance, rejection with its typed reason, or evidence error — is
// committed to j together with the complete evidence bytes, and every
// live dictionary version (registration seed and each mining promotion)
// is journaled so a later replay expands each session with exactly the
// dictionary its prover compressed with. The gateway never blocks a
// session on the journal and never dies on journal failure: a broken
// disk degrades the journal (Health reports it; records shed to its
// bounded ring) while sessions keep verifying.
func WithJournal(j *journal.Journal) Option {
	return func(s *settings) { s.cfg.Journal = j }
}

// WithSessionErrorHandler observes per-session failures (diagnostics;
// the session is already counted in the snapshot).
func WithSessionErrorHandler(fn func(remoteAddr string, err error)) Option {
	return func(s *settings) { s.cfg.OnSessionError = fn }
}
