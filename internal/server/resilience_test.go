// Gateway resilience tests: recovered verify panics, the per-app circuit
// breaker's open/probe/close cycle, dictionary quarantine on a failed
// promotion self-check, and goroutine hygiene after Close. All must pass
// under -race.
package server_test

import (
	"errors"
	"net"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"raptrack/internal/attest"
	"raptrack/internal/core"
	"raptrack/internal/remote"
	"raptrack/internal/server"
	"raptrack/internal/trace"
	"raptrack/internal/verify"
)

// waitGoroutines polls until the goroutine count drops back to the
// baseline taken before the gateway existed (other runtime goroutines may
// exit meanwhile, so undershooting is fine). On timeout it dumps stacks —
// the leak's identity, not just its size.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines leaked: %d, baseline %d\n%s", n, baseline, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFaultsVerifyPanicRecovered injects a panic into the verify worker:
// the poisoned session must fail with a FAIL frame (not a hung or killed
// connection), the panic must be counted, and the same worker pool must
// verify the next session normally.
func TestFaultsVerifyPanicRecovered(t *testing.T) {
	var boom atomic.Bool
	boom.Store(true)
	g, addr, ep := startGateway(t, []server.Option{
		server.WithBreaker(-1, 0), // isolate panic recovery from the breaker
		server.WithFaults(func(app string) {
			if boom.Load() {
				panic("injected verify bomb for " + app)
			}
		}, nil),
	}, "prime")

	_, err := attestApp(ep, dial(t, addr), "prime")
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("poisoned session err = %v, want a reported panic", err)
	}
	st := waitStats(t, g, func(s server.Stats) bool {
		return s.PanicsRecovered == 1 && s.SessionsFailed == 1
	})
	if st.Verifications != 1 {
		t.Errorf("stats = %+v", st)
	}

	boom.Store(false)
	gv, err := attestApp(ep, dial(t, addr), "prime")
	if err != nil || !gv.OK {
		t.Fatalf("post-panic session: %+v, %v", gv, err)
	}
	if !strings.Contains(g.Snapshot().String(), "panics recovered") {
		t.Errorf("Stats.String() missing resilience line:\n%s", g.Snapshot())
	}
}

// TestFaultsBreakerOpensShedsRecovers walks the whole breaker cycle:
// consecutive verify errors open it, open sheds carry the remaining
// cooldown as a BUSY retry-after hint, and after the cooldown a half-open
// probe closes it again.
func TestFaultsBreakerOpensShedsRecovers(t *testing.T) {
	const cooldown = 300 * time.Millisecond
	var boom atomic.Bool
	boom.Store(true)
	g, addr, ep := startGateway(t, []server.Option{
		server.WithBreaker(2, cooldown),
		server.WithFaults(func(string) {
			if boom.Load() {
				panic("injected verify bomb")
			}
		}, nil),
	}, "prime")

	for i := 0; i < 2; i++ {
		if _, err := attestApp(ep, dial(t, addr), "prime"); err == nil {
			t.Fatalf("session %d: poisoned verify succeeded", i)
		}
	}
	waitStats(t, g, func(s server.Stats) bool { return s.BreakerOpens == 1 })

	// Open: the app's sessions are shed gracefully, with a hint bounded by
	// the cooldown, and no verification work is spent on them.
	_, err := attestApp(ep, dial(t, addr), "prime")
	var be *remote.BusyError
	if !errors.As(err, &be) || !errors.Is(err, remote.ErrBusy) {
		t.Fatalf("open-breaker session err = %v, want BusyError", err)
	}
	if be.RetryAfter <= 0 || be.RetryAfter > cooldown {
		t.Errorf("retry-after hint = %v, want in (0, %v]", be.RetryAfter, cooldown)
	}
	st := g.Snapshot()
	if st.BreakerSheds == 0 || st.Verifications != 2 || st.SessionsFailed != 2 {
		t.Errorf("stats = %+v", st)
	}

	// Cooldown elapses with the fault cleared: the next session is the
	// half-open probe, and its success closes the breaker for everyone.
	boom.Store(false)
	time.Sleep(cooldown + 50*time.Millisecond)
	gv, err := attestApp(ep, dial(t, addr), "prime")
	if err != nil || !gv.OK {
		t.Fatalf("probe session: %+v, %v", gv, err)
	}
	st = waitStats(t, g, func(s server.Stats) bool { return s.BreakerCloses == 1 })
	if st.BreakerHalfOpens != 1 || st.VerdictOK != 1 {
		t.Errorf("stats = %+v", st)
	}
	gv, err = attestApp(ep, dial(t, addr), "prime")
	if err != nil || !gv.OK {
		t.Fatalf("post-close session: %+v, %v", gv, err)
	}
}

// TestFaultsDictQuarantine corrupts every mined dictionary encoding
// before the promotion self-check: each promotion must be quarantined,
// the live dictionary must stay empty, sessions must keep verifying on
// the slow path, and no DICT frame may ever reach a prover.
func TestFaultsDictQuarantine(t *testing.T) {
	g, addr, ep := startGateway(t, []server.Option{
		server.WithMining(1, 0, 0),
		server.WithFaults(nil, func(b []byte) []byte {
			if len(b) == 0 {
				return b
			}
			return b[:len(b)-1] // truncated encoding must not survive decode
		}),
	}, "prime")

	const sessions = 3
	for i := 0; i < sessions; i++ {
		gv, err := attestApp(ep, dial(t, addr), "prime")
		if err != nil || !gv.OK {
			t.Fatalf("session %d under quarantine: %+v, %v", i, gv, err)
		}
	}
	st := waitStats(t, g, func(s server.Stats) bool { return s.DictQuarantines >= 1 })
	if st.DictPromotions != 0 || st.DictPaths != 0 {
		t.Errorf("quarantined dictionary went live: %+v", st)
	}
	if !strings.Contains(st.String(), "quarantined") {
		t.Errorf("Stats.String() missing quarantine count:\n%s", st)
	}

	// The handshake proof: a raw session's first gateway frame must be the
	// challenge — no DICT frame derived from quarantined bytes.
	conn := dial(t, addr)
	if err := remote.WriteFrame(conn, remote.FrameHello, remote.EncodeHello("prime")); err != nil {
		t.Fatal(err)
	}
	typ, _, err := remote.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if typ != remote.FrameChal {
		t.Fatalf("first frame type = %d, want CHAL (quarantined dictionary reached the handshake)", typ)
	}
}

// TestFaultsSingleDropVerdicts pins the detection envelope for silent
// single-packet capture loss, the justification for the chaos harness's
// false-accept definition. Dropping one of prime's repetitive loop-edge
// packets leaves a log that a benign run with one fewer iteration
// genuinely produces — the verifier accepts it, and nothing short of
// per-packet sequence numbers (which the MTB does not emit) could do
// otherwise. Dropping a structurally required packet breaks the
// reconstruction and must reject as missing-evidence: degraded evidence
// fails safe, it is never misread as an attack and never accepted.
func TestFaultsSingleDropVerdicts(t *testing.T) {
	f := fixture(t, "prime")
	cases := []struct {
		packet int  // 0-based index of the single dropped MTB packet
		wantOK bool // positions pinned against prime's current trace shape
	}{
		{packet: 100, wantOK: true},   // mid-loop repetitive edge
		{packet: 1298, wantOK: true},  // repetitive edge in a later window
		{packet: 2000, wantOK: false}, // structurally required evidence
		{packet: 2595, wantOK: false}, // final packet: tail structure lost
	}
	for _, tc := range cases {
		p, err := core.NewProver(f.link, f.key, core.ProverConfig{SetupMem: f.app.SetupMem()})
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		p.Engine.MTB.Faults = &trace.MTBFaults{
			Drop: func(uint32, uint32) bool {
				n++
				return n-1 == tc.packet
			},
		}
		chal, err := attest.NewChallenge("prime")
		if err != nil {
			t.Fatal(err)
		}
		reports, _, err := p.Attest(chal)
		if err != nil {
			t.Fatalf("drop #%d: attest: %v", tc.packet, err)
		}
		if p.Engine.MTB.InjectedDrops != 1 {
			t.Fatalf("drop #%d: %d packets dropped, want 1", tc.packet, p.Engine.MTB.InjectedDrops)
		}
		vd, err := core.NewVerifier(f.link, f.key).Verify(chal, reports)
		if err != nil {
			t.Fatalf("drop #%d: verify: %v", tc.packet, err)
		}
		if vd.OK != tc.wantOK {
			t.Errorf("drop #%d: OK = %v, want %v (code %v)", tc.packet, vd.OK, tc.wantOK, vd.Code)
		}
		if !vd.OK && vd.Code != verify.ReasonMissingEvidence {
			t.Errorf("drop #%d: code = %v, want missing-evidence (loss must fail safe, not claim attack)",
				tc.packet, vd.Code)
		}
	}
}

// TestGatewayCloseReleasesGoroutines: sessions, workers, and the accept
// loop must all be gone after Close — the gateway borrows goroutines, it
// does not keep them.
func TestGatewayCloseReleasesGoroutines(t *testing.T) {
	f := fixture(t, "prime") // build the fixture before the baseline
	before := runtime.NumGoroutine()

	g := server.New(server.WithVerifyWorkers(4, 0))
	g.Register("prime", core.NewVerifier(f.link, f.key))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- g.Serve(ln) }()

	ep := remote.NewProverEndpoint()
	f.provision(ep, 0)
	for i := 0; i < 2; i++ {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		gv, err := attestApp(ep, conn, "prime")
		conn.Close()
		if err != nil || !gv.OK {
			t.Fatalf("session %d: %+v, %v", i, gv, err)
		}
	}

	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-serveErr; err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, before)
}
