package server

import (
	"errors"
	"fmt"
	"io"
	"time"

	"raptrack/internal/attest"
	"raptrack/internal/obs"
	"raptrack/internal/remote"
	"raptrack/internal/verify"
)

// This file is the gateway side of streaming attestation (ACFA-style
// slice delivery): evidence arrives as SLICE frames and is verified
// slice-by-slice on the worker pool through a verify.Session, so a
// compromise is detected within a bounded number of slices instead of at
// end-of-run, and the gateway can push a HEAL directive at the prover
// while its workload is still executing. The sealed verdict is
// bit-identical to the batch path (Session.Seal IS the whole-chain
// verification), and the sealed session is journaled over the exact
// report chain fed on the wire, so `raptrack replay` re-verifies sliced
// sessions exactly as batch ones.

// truncated maps a premature end-of-stream onto the
// remote.ErrSessionTruncated sentinel (mirroring the remote package's
// own mapping) so operators can classify mid-evidence hangups.
func truncated(err error) error {
	if errors.Is(err, remote.ErrSessionTruncated) {
		return err
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.ErrClosedPipe) {
		return fmt.Errorf("%w (%v)", remote.ErrSessionTruncated, err)
	}
	return err
}

// collectReports drains a batch report stream whose first frame is
// already in hand (session reads it to dispatch on the delivery mode),
// counting every subsequent frame through g.readFrame.
func (g *Gateway) collectReports(tc *timedConn, typ byte, payload []byte) ([]*attest.Report, error) {
	var reports []*attest.Report
	for {
		switch typ {
		case remote.FrameRprt:
			rp, err := attest.DecodeReport(payload)
			if err != nil {
				return nil, err
			}
			reports = append(reports, rp)
			if rp.Final {
				return reports, nil
			}
		case remote.FrameFail:
			return nil, &remote.PeerFailError{Context: "prover reported failure", Msg: string(payload)}
		default:
			return nil, fmt.Errorf("server: unexpected frame type %d in report stream", typ)
		}
		var err error
		typ, payload, err = g.readFrame(tc)
		if err != nil {
			return nil, fmt.Errorf("server: reading report stream: %w", truncated(err))
		}
	}
}

// pushHeal writes one HEAL directive frame and counts it; a false return
// means the device never saw the directive (dead transport).
func (g *Gateway) pushHeal(tc *timedConn, d remote.HealDirective, seq uint32, detail string) bool {
	h := remote.Heal{Directive: d, Seq: seq, Detail: detail}
	if g.writeFrame(tc, remote.FrameHeal, remote.EncodeHeal(h)) != nil {
		return false
	}
	g.m.healDirectives[d].Inc()
	return true
}

// feedSlice runs one Session.Feed on the worker pool, so the CPU-heavy
// incremental work (chain HMAC, prefix walk) respects the same
// backpressure as whole-chain verification. The session goroutine waits
// for each feed before reading the next slice, so the single-use Session
// never sees concurrent use (the resp channel orders the worker handoffs).
func (g *Gateway) feedSlice(st *appState, sess *verify.Session, device string, chal attest.Challenge, ds *dictState, rep *attest.Report, deadline time.Time) (verify.SliceVerdict, error) {
	var sv verify.SliceVerdict
	job := verifyJob{app: st, device: device, chal: chal,
		dict: ds.dict, dictVersion: ds.version, aut: ds.aut,
		resp: make(chan verifyResult, 1),
		exec: func() verifyResult {
			sv = sess.Feed(rep)
			return verifyResult{}
		}}
	r, _, err := g.enqueue(job, deadline)
	if err == nil && r.err != nil {
		err = fmt.Errorf("server: slice verification: %w", r.err)
	}
	return sv, err
}

// streamSession speaks the streaming leg of one session: the challenge
// is already out and the first SLICE frame (first) already read. It
// validates each slice's transport integrity (sequence order, running
// tag chain, final-flag consistency), feeds it through the session's
// resumable verifier on the worker pool, pushes a HEAL directive on the
// first definitive alarm, and seals — early on a chain-level reject,
// at the final slice otherwise. Returns whether the seal job reached the
// pool (the breaker-probe contract verify() has on the batch path).
func (g *Gateway) streamSession(tc *timedConn, tr *obs.Trace, st *appState, device string, chal attest.Challenge, ds *dictState, deadline time.Time, first []byte, collectStart time.Time) (enqueued bool, err error) {
	g.m.streamSessions.Inc()
	key := healKey(st.name, device)
	sess := st.verifier.Begin(chal,
		verify.SessionDictionary(ds.dict), verify.SessionAutomaton(ds.aut))

	var (
		// fed retains every report decoded from the wire — including one
		// the chain rejects (Session.Reports drops it, but replay must
		// re-feed the exact wire chain to reproduce the sealed outcome
		// bit-for-bit).
		fed     []*attest.Report
		tag     = remote.SliceTagInit(chal.Nonce)
		nextSeq uint32
		lastSeq uint32
		healed  bool   // a HEAL directive reached the transport
		healSeq uint32 // slice it was pushed for
		acked   bool
		alarmed bool // first definitive alarm already counted
		cut     bool // sealing before the final slice
	)
	handleAck := func(payload []byte) {
		h, err := remote.DecodeHealAck(payload)
		if err != nil || !healed || h.Seq != healSeq {
			return
		}
		if g.heals.acked(key, h.Directive) {
			acked = true
			g.m.healAcks.Inc()
		}
	}

	typ, payload := remote.FrameSlice, first
collect:
	for {
		switch typ {
		case remote.FrameHealAck:
			handleAck(payload)
		case remote.FrameFail:
			return enqueued, &remote.PeerFailError{Context: "prover reported failure", Msg: string(payload)}
		case remote.FrameSlice:
			sl, err := remote.DecodeSlice(payload)
			if err != nil {
				_ = g.writeFrame(tc, remote.FrameFail, []byte(err.Error()))
				return enqueued, err
			}
			if sl.Seq != nextSeq {
				_ = g.writeFrame(tc, remote.FrameFail, []byte("slice out of order"))
				return enqueued, fmt.Errorf("server: slice %d out of order (want %d)", sl.Seq, nextSeq)
			}
			rep, err := attest.DecodeReport(sl.Report)
			if err != nil {
				_ = g.writeFrame(tc, remote.FrameFail, []byte(err.Error()))
				return enqueued, err
			}
			// The running tag chain binds slice order and count to the
			// session nonce at the frame layer: a middle box dropping,
			// duplicating, or reordering slices breaks it before any
			// report cryptography runs.
			tag = remote.SliceTagNext(tag, rep.Auth)
			if sl.Tag != tag {
				g.m.streamTagBreaks.Inc()
				_ = g.writeFrame(tc, remote.FrameFail, []byte("slice tag chain broken"))
				return enqueued, fmt.Errorf("server: slice %d: authentication tag chain broken", sl.Seq)
			}
			if sl.Final != rep.Final {
				_ = g.writeFrame(tc, remote.FrameFail, []byte("slice final flag disagrees with report"))
				return enqueued, fmt.Errorf("server: slice %d: final flag disagrees with report", sl.Seq)
			}
			nextSeq++
			lastSeq = sl.Seq
			g.m.streamSlices.Inc()
			fed = append(fed, rep)
			sv, ferr := g.feedSlice(st, sess, device, chal, ds, rep, deadline)
			if ferr != nil {
				_ = g.writeFrame(tc, remote.FrameFail, []byte(ferr.Error()))
				return enqueued, ferr
			}
			if sv.Status.Definitive() && !alarmed {
				alarmed = true
				g.m.streamAlarms[sv.Status].Inc()
				d := healDirectiveForSlice(sv)
				g.heals.suspect(key, d, sl.Seq)
				if g.pushHeal(tc, d, sl.Seq, sv.Detail) {
					healed, healSeq = true, sl.Seq
				}
				// A chain-level reject is exact and final: no later slice
				// can change the sealed outcome, so stop reading and seal
				// now. Advisory alarms (suspect, inconclusive, H_MEM) keep
				// collecting — Seal renders the authoritative code and
				// detail over the complete chain, exactly as batch would.
				if sv.Status == verify.SliceReject && sv.Code == verify.ReasonNone {
					cut = true
					g.m.streamEarlyCuts.Inc()
				}
			}
			if sl.Final || cut {
				break collect
			}
		default:
			_ = g.writeFrame(tc, remote.FrameFail, []byte("unexpected frame in slice stream"))
			return enqueued, fmt.Errorf("server: unexpected frame type %d in slice stream", typ)
		}
		typ, payload, err = g.readFrame(tc)
		if err != nil {
			return enqueued, fmt.Errorf("server: reading slice stream: %w", truncated(err))
		}
	}
	g.span(tr, obs.StageCollect, -1, time.Since(collectStart))

	// Seal on the worker pool as the session's finalize job: it carries
	// the full verify accounting (histograms, breaker, journal, mining),
	// and journals over the wire-fed chain so replay is bit-identical.
	verifyOffset := time.Since(tr.Began)
	stageStart := time.Now()
	job := verifyJob{app: st, device: device, chal: chal, reports: fed,
		dict: ds.dict, dictVersion: ds.version, aut: ds.aut,
		finalize: true, resp: make(chan verifyResult, 1),
		exec: func() verifyResult {
			vd, err := sess.Seal()
			return verifyResult{verdict: vd, err: err}
		}}
	r, sent, err := g.enqueue(job, deadline)
	enqueued = sent
	if err == nil && r.err != nil {
		err = fmt.Errorf("server: malformed or inauthentic evidence: %w", r.err)
	}
	if err != nil {
		_ = g.writeFrame(tc, remote.FrameFail, []byte(err.Error()))
		return enqueued, err
	}
	verdict := r.verdict
	g.span(tr, obs.StageVerify, -1, time.Since(stageStart))
	if tm := verdict.Timing; tm.Expand > 0 {
		g.span(tr, obs.StageExpand, verifyOffset+tm.Auth, tm.Expand)
	}

	// Healing transitions from the sealed authoritative verdict. A HEAL
	// for a session whose first definitive judgment only lands at Seal
	// (per-slice checking unavailable) goes out here, before the verdict,
	// so the device always hears the directive before the summary.
	switch {
	case verdict.OK:
		g.heals.accepted(key)
	case verdict.Code == verify.ReasonInconclusive:
		if !healed {
			g.heals.suspect(key, remote.HealReattest, lastSeq)
			if g.pushHeal(tc, remote.HealReattest, lastSeq, verdict.Detail) {
				healed, healSeq = true, lastSeq
			}
		}
	default:
		d := healDirectiveForVerdict(verdict.Code)
		if !healed {
			if g.pushHeal(tc, d, lastSeq, verdict.Detail) {
				healed, healSeq = true, lastSeq
			}
		}
		g.heals.quarantine(key, d)
	}

	if err := g.deliverVerdict(tc, tr, verdict); err != nil {
		return enqueued, err
	}
	// The device may still owe a HEALACK (for a directive pushed with the
	// last slices or alongside the verdict). Drain a bounded number of
	// frames so the ack lands in the healing registry before the session
	// closes; a device that just hangs up ends the drain immediately.
	for i := 0; i < 4 && healed && !acked; i++ {
		typ, payload, err := g.readFrame(tc)
		if err != nil {
			break
		}
		if typ == remote.FrameHealAck {
			handleAck(payload)
		}
	}
	return enqueued, nil
}

// HealState reports the healing state machine's view of one (app,
// device) pair — healthy when the device has no unresolved alarm.
func (g *Gateway) HealState(app, device string) HealState {
	return g.heals.state(healKey(app, device))
}
