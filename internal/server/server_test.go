// Gateway behavior tests: round trips, BUSY shedding at the session cap,
// deadline enforcement against stalled and dribbling clients, and the
// stats contract. All must pass under -race.
package server_test

import (
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"raptrack/internal/apps"
	"raptrack/internal/attest"
	"raptrack/internal/core"
	"raptrack/internal/linker"
	"raptrack/internal/remote"
	"raptrack/internal/server"
	"raptrack/internal/verify"
)

// appFixture is one provisioned application: the golden artifact plus the
// shared HMAC key, reused across tests (linking is the expensive part).
type appFixture struct {
	name string
	link *linker.Output
	key  *attest.HMACKey
	app  apps.App
}

var (
	fixturesMu sync.Mutex
	fixtures   = map[string]*appFixture{}
)

func fixture(t testing.TB, name string) *appFixture {
	t.Helper()
	fixturesMu.Lock()
	defer fixturesMu.Unlock()
	if f, ok := fixtures[name]; ok {
		return f
	}
	a, err := apps.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	link, err := core.LinkForCFA(a.Build(), core.DefaultLinkOptions())
	if err != nil {
		t.Fatal(err)
	}
	key, err := attest.GenerateHMACKey()
	if err != nil {
		t.Fatal(err)
	}
	f := &appFixture{name: name, link: link, key: key, app: a}
	fixtures[name] = f
	return f
}

func (f *appFixture) provision(ep *remote.ProverEndpoint, watermark int) {
	ep.Provision(f.name, func() (*core.Prover, error) {
		return core.NewProver(f.link, f.key, core.ProverConfig{
			SetupMem:  f.app.SetupMem(),
			Watermark: watermark,
		})
	})
}

// startGateway serves the named apps on a loopback listener and returns
// the dial address plus a matching prover endpoint.
func startGateway(t *testing.T, opts []server.Option, names ...string) (*server.Gateway, string, *remote.ProverEndpoint) {
	t.Helper()
	g := server.New(opts...)
	ep := remote.NewProverEndpoint()
	for _, n := range names {
		f := fixture(t, n)
		g.Register(n, core.NewVerifier(f.link, f.key))
		f.provision(ep, 0)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- g.Serve(ln) }()
	t.Cleanup(func() {
		if err := g.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
		if err := <-serveErr; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return g, ln.Addr().String(), ep
}

// attest runs one batch attestation session through the unified client
// API (remote.Client).
func attestApp(ep *remote.ProverEndpoint, conn io.ReadWriter, app string) (remote.GatewayVerdict, error) {
	return remote.NewClient(ep).Attest(conn, app)
}

func dial(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

// waitStats polls the gateway until pred holds or the deadline passes.
func waitStats(t *testing.T, g *server.Gateway, pred func(server.Stats) bool) server.Stats {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := g.Snapshot()
		if pred(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats condition not reached; last: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestGatewayRoundTrip(t *testing.T) {
	g, addr, ep := startGateway(t, nil, "prime")
	gv, err := attestApp(ep, dial(t, addr), "prime")
	if err != nil {
		t.Fatal(err)
	}
	if !gv.OK {
		t.Fatalf("verdict: %s", gv.Reason())
	}
	st := waitStats(t, g, func(s server.Stats) bool { return s.VerdictOK == 1 })
	if st.SessionsAccepted != 1 || st.SessionsFailed != 0 || st.Verifications != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.BytesIn == 0 || st.BytesOut == 0 {
		t.Errorf("byte counters not moving: %+v", st)
	}
}

func TestGatewayUnknownApp(t *testing.T) {
	g, addr, ep := startGateway(t, nil, "prime")
	_, err := attestApp(ep, dial(t, addr), "nonexistent")
	if err == nil || !strings.Contains(err.Error(), "unknown application") {
		t.Fatalf("err = %v", err)
	}
	st := waitStats(t, g, func(s server.Stats) bool { return s.SessionsFailed == 1 })
	if st.VerdictOK != 0 || st.VerdictAttack != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestGatewayDetectsMismatchedImage drives a prover whose firmware was
// linked differently from the gateway's golden image: the session itself
// completes, but H_MEM disagrees, so the verdict — not the transport —
// reports the compromise, and the attack counter moves.
func TestGatewayDetectsMismatchedImage(t *testing.T) {
	f := fixture(t, "prime")
	g, addr, _ := startGateway(t, nil, "prime")

	opts := core.DefaultLinkOptions()
	opts.NopPad++ // a differently-linked (here: repadded) firmware image
	otherLink, err := core.LinkForCFA(f.app.Build(), opts)
	if err != nil {
		t.Fatal(err)
	}
	ep := remote.NewProverEndpoint()
	ep.Provision("prime", func() (*core.Prover, error) {
		return core.NewProver(otherLink, f.key, core.ProverConfig{SetupMem: f.app.SetupMem()})
	})

	gv, err := attestApp(ep, dial(t, addr), "prime")
	if err != nil {
		t.Fatal(err)
	}
	if gv.OK || !strings.Contains(gv.Reason(), "H_MEM") {
		t.Fatalf("verdict = %+v", gv)
	}
	st := waitStats(t, g, func(s server.Stats) bool { return s.VerdictAttack == 1 })
	if st.SessionsFailed != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestGatewayShedsAtCapacity pins the single session slot with a client
// that holds its session open, then asserts a second client is shed with
// BUSY (remote.ErrBusy) and that the slot serves again once freed.
func TestGatewayShedsAtCapacity(t *testing.T) {
	g, addr, ep := startGateway(t, []server.Option{
		server.WithSessionSlots(1),
		server.WithTimeouts(5*time.Second, 2*time.Second),
	}, "prime")

	// Occupy the only slot: handshake past HELO and hold before reports.
	holder := dial(t, addr)
	if err := remote.WriteFrame(holder, remote.FrameHello, remote.EncodeHello("prime")); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := remote.ReadFrame(holder); err != nil || typ != remote.FrameChal {
		t.Fatalf("holder challenge: type %d, err %v", typ, err)
	}

	// Shed: the gateway is provably inside the holder's session now.
	_, err := attestApp(ep, dial(t, addr), "prime")
	if !errors.Is(err, remote.ErrBusy) {
		t.Fatalf("errors.Is(err, remote.ErrBusy) = false; err = %v", err)
	}
	st := g.Snapshot()
	if st.SessionsRejected != 1 || st.ActiveSessions != 1 {
		t.Errorf("stats = %+v", st)
	}

	// Free the slot; a new session must succeed (the shed was graceful,
	// nothing wedged).
	holder.Close()
	waitStats(t, g, func(s server.Stats) bool { return s.ActiveSessions == 0 })
	gv, err := attestApp(ep, dial(t, addr), "prime")
	if err != nil || !gv.OK {
		t.Fatalf("post-shed session: %+v, %v", gv, err)
	}
}

// TestGatewayStalledClientTimesOut connects a client that goes silent
// after the handshake: the per-I/O deadline must fail the session and
// free its slot for others.
func TestGatewayStalledClientTimesOut(t *testing.T) {
	g, addr, ep := startGateway(t, []server.Option{
		server.WithSessionSlots(1),
		server.WithTimeouts(10*time.Second, 150*time.Millisecond),
	}, "prime")

	staller := dial(t, addr)
	if err := remote.WriteFrame(staller, remote.FrameHello, remote.EncodeHello("prime")); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := remote.ReadFrame(staller); err != nil || typ != remote.FrameChal {
		t.Fatalf("challenge: type %d, err %v", typ, err)
	}
	// ... and now say nothing.

	start := time.Now()
	st := waitStats(t, g, func(s server.Stats) bool { return s.SessionsFailed == 1 })
	if waited := time.Since(start); waited > 5*time.Second {
		t.Errorf("stall detection took %v", waited)
	}
	if st.ActiveSessions != 0 {
		t.Errorf("slot not freed: %+v", st)
	}

	// The sole slot must be available again.
	gv, err := attestApp(ep, dial(t, addr), "prime")
	if err != nil || !gv.OK {
		t.Fatalf("post-stall session: %+v, %v", gv, err)
	}
}

// TestGatewaySessionDeadlineCapsDribble defeats the slow-loris variant: a
// client dribbling single bytes keeps every per-I/O deadline fresh, so
// only the overall session deadline can end it.
func TestGatewaySessionDeadlineCapsDribble(t *testing.T) {
	g, addr, _ := startGateway(t, []server.Option{
		server.WithSessionSlots(1),
		server.WithTimeouts(300*time.Millisecond, 10*time.Second),
	}, "prime")

	dribbler := dial(t, addr)
	if err := remote.WriteFrame(dribbler, remote.FrameHello, remote.EncodeHello("prime")); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := remote.ReadFrame(dribbler); err != nil || typ != remote.FrameChal {
		t.Fatalf("challenge: type %d, err %v", typ, err)
	}
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		// A valid-looking report frame header, then one payload byte at a
		// time, forever.
		_, _ = dribbler.Write([]byte{remote.FrameRprt, 0xff, 0xff, 0x0f, 0x00})
		for {
			select {
			case <-stop:
				return
			case <-time.After(20 * time.Millisecond):
			}
			if _, err := dribbler.Write([]byte{0x00}); err != nil {
				return
			}
		}
	}()

	start := time.Now()
	waitStats(t, g, func(s server.Stats) bool { return s.SessionsFailed == 1 && s.ActiveSessions == 0 })
	if waited := time.Since(start); waited > 5*time.Second {
		t.Errorf("dribbler survived %v past the 300ms session deadline", waited)
	}
}

func TestGatewayServeAfterCloseFails(t *testing.T) {
	g := server.New()
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if err := g.Serve(ln); !errors.Is(err, server.ErrClosed) {
		t.Fatalf("Serve on closed gateway: %v", err)
	}
}

func TestStatsString(t *testing.T) {
	g, addr, ep := startGateway(t, nil, "prime")
	if _, err := attestApp(ep, dial(t, addr), "prime"); err != nil {
		t.Fatal(err)
	}
	st := waitStats(t, g, func(s server.Stats) bool { return s.Verifications == 1 })
	out := st.String()
	for _, want := range []string{"sessions:", "verdicts:", "traffic:", "verify latency:", "+inf"} {
		if !strings.Contains(out, want) {
			t.Errorf("Stats.String() missing %q:\n%s", want, out)
		}
	}
	var histTotal uint64
	for _, hb := range st.VerifyHist {
		histTotal += hb.Count
	}
	if histTotal != st.Verifications {
		t.Errorf("histogram total %d != verifications %d", histTotal, st.Verifications)
	}
}

// TestGatewayBackpressureQueue saturates a one-worker pool and asserts
// every queued session still completes correctly: backpressure delays,
// it does not drop.
func TestGatewayBackpressureQueue(t *testing.T) {
	g, addr, ep := startGateway(t, []server.Option{
		server.WithSessionSlots(8),
		server.WithVerifyWorkers(1, 1),
	}, "prime")

	const n = 6
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			gv, err := attestApp(ep, conn, "prime")
			if err != nil {
				errs <- err
				return
			}
			if !gv.OK {
				errs <- fmt.Errorf("verdict: %s", gv.Reason())
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := g.Snapshot()
	if st.VerdictOK != n || st.Verifications != n {
		t.Errorf("stats = %+v", st)
	}
}

// TestGatewayFastPath runs several sequential sessions of the same app and
// asserts the cross-session fast path engages: the verdict cache records
// hits, the first accepted session triggers a mining pass, and promoted
// sub-paths show up in the live dictionary — with every verdict still OK.
func TestGatewayFastPath(t *testing.T) {
	g, addr, ep := startGateway(t, []server.Option{server.WithMining(2, 0, 0)}, "prime")

	const sessions = 4
	for i := 0; i < sessions; i++ {
		gv, err := attestApp(ep, dial(t, addr), "prime")
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
		if !gv.OK {
			t.Fatalf("session %d verdict: %s", i, gv.Reason())
		}
	}

	st := waitStats(t, g, func(s server.Stats) bool { return s.VerdictOK == sessions })
	if st.CacheHits == 0 {
		t.Errorf("no cache hits across %d identical sessions: %+v", sessions, st)
	}
	if st.CacheEntries == 0 || st.CacheBytes == 0 {
		t.Errorf("cache empty after %d sessions: %+v", sessions, st)
	}
	if st.MinedSessions == 0 {
		t.Errorf("no mining pass ran: %+v", st)
	}
	if st.DictPromotions == 0 || st.DictPaths == 0 {
		t.Errorf("no dictionary promotion: %+v", st)
	}
}

// TestGatewayFastPathDisabled: CacheBytes/MineEvery < 0 turn both halves
// of the fast path off; sessions still verify.
func TestGatewayFastPathDisabled(t *testing.T) {
	g, addr, ep := startGateway(t, []server.Option{server.WithCache(-1), server.WithMining(-1, 0, 0)}, "prime")
	for i := 0; i < 2; i++ {
		gv, err := attestApp(ep, dial(t, addr), "prime")
		if err != nil {
			t.Fatal(err)
		}
		if !gv.OK {
			t.Fatalf("verdict: %s", gv.Reason())
		}
	}
	st := waitStats(t, g, func(s server.Stats) bool { return s.VerdictOK == 2 })
	if st.CacheHits != 0 || st.CacheMisses != 0 || st.CacheEntries != 0 {
		t.Errorf("cache active despite CacheBytes<0: %+v", st)
	}
	if st.MinedSessions != 0 || st.DictPromotions != 0 || st.DictPaths != 0 {
		t.Errorf("mining active despite MineEvery<0: %+v", st)
	}
}

// TestGatewayRejectionBuckets: an H_MEM-mismatched prover lands in the
// typed rejection bucket, not just the aggregate attack counter.
func TestGatewayRejectionBuckets(t *testing.T) {
	f := fixture(t, "prime")
	g, addr, _ := startGateway(t, nil, "prime")

	opts := core.DefaultLinkOptions()
	opts.NopPad++
	otherLink, err := core.LinkForCFA(f.app.Build(), opts)
	if err != nil {
		t.Fatal(err)
	}
	ep := remote.NewProverEndpoint()
	ep.Provision("prime", func() (*core.Prover, error) {
		return core.NewProver(otherLink, f.key, core.ProverConfig{SetupMem: f.app.SetupMem()})
	})

	gv, err := attestApp(ep, dial(t, addr), "prime")
	if err != nil {
		t.Fatal(err)
	}
	if gv.OK || gv.Code != verify.ReasonHMemMismatch {
		t.Fatalf("verdict = %+v", gv)
	}
	st := waitStats(t, g, func(s server.Stats) bool { return s.VerdictAttack == 1 })
	if st.Rejections[verify.ReasonHMemMismatch] != 1 {
		t.Errorf("rejection buckets = %v", st.Rejections)
	}
	if strings.Count(st.String(), "h-mem-mismatch") == 0 {
		t.Errorf("String() missing bucket line:\n%s", st.String())
	}
}
