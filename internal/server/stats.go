package server

import (
	"fmt"
	"strings"
	"time"

	"raptrack/internal/verify"
)

// HistBucket is one verify-latency histogram bucket; Le == 0 marks the
// +inf overflow bucket.
type HistBucket struct {
	Le    time.Duration
	Count uint64
}

// Stats is a point-in-time snapshot of the gateway, produced by
// [Gateway.Snapshot]. It is an immutable value read back from the obs
// metrics registry — the registry is the single source of truth; there
// is no second set of counters to mutate or drift. Counts are monotone
// except ActiveSessions, a gauge.
type Stats struct {
	SessionsStarted  uint64 // connections handled (accepted + rejected)
	SessionsAccepted uint64
	SessionsRejected uint64 // shed with a BUSY frame at the slot limit
	SessionsFailed   uint64 // accepted but errored (timeout, protocol, bad evidence)
	ActiveSessions   int    // sessions currently holding a slot

	VerdictOK     uint64 // sessions whose evidence attested a benign path
	VerdictAttack uint64 // well-formed evidence attesting a disallowed path
	// VerdictInconclusive counts sessions whose authentic evidence attested
	// detectable trace loss (verify.ReasonInconclusive): neither accept nor
	// attack — the device is expected to re-attest.
	VerdictInconclusive uint64
	// Rejections buckets non-OK verdicts (attack and inconclusive) by typed
	// reason code; index with a verify.ReasonCode.
	// Rejections[verify.ReasonNone] stays zero.
	Rejections [verify.NumReasons]uint64

	BytesIn  uint64
	BytesOut uint64

	Verifications uint64        // reconstructions run by the worker pool
	VerifyTotal   time.Duration // summed reconstruction wall time
	VerifyHist    []HistBucket

	// Fast-path instrumentation (verdict + segment caches, aggregated
	// across apps; shared caches are counted once).
	CacheHits      uint64
	CacheMisses    uint64
	CacheEvictions uint64
	CacheEntries   int
	CacheBytes     int64

	// Online mining: sessions mined, sub-paths promoted into live
	// dictionaries, and the current total dictionary size across apps.
	MinedSessions  uint64
	DictPromotions uint64
	DictPaths      int
	// DictQuarantines counts mined dictionaries that failed the promotion
	// self-check (decode + evidence round-trip) and were discarded before
	// reaching any prover handshake.
	DictQuarantines uint64

	// Automaton engine activity (aggregated across apps). Accepts carried
	// verdict authority without an interpreter run; NoPaths and Fallbacks
	// were re-rendered by the interpretive search; Rescues counts accepts
	// recovered by the tabulating rescue pass after speculative fallback.
	AutomatonDecodes   uint64
	AutomatonAccepts   uint64
	AutomatonNoPaths   uint64
	AutomatonFallbacks uint64
	AutomatonRescues   uint64
	AutomatonCompiles  uint64 // table compilations, incl. DICT-bump rebinds

	// Streaming attestation (SLICE delivery) and device healing.
	StreamSessions  uint64 // sessions delivering evidence as SLICE frames
	StreamSlices    uint64 // slices fed through streaming verification
	StreamAlarms    uint64 // definitive mid-stream alarms (all classes)
	StreamEarlyCuts uint64 // streamed sessions sealed before their final slice
	StreamTagBreaks uint64 // slices whose running auth tag broke the chain
	HealDirectives  uint64 // HEAL directives pushed to devices
	HealAcks        uint64 // HEAL directives acknowledged

	// Resilience instrumentation.
	PanicsRecovered  uint64 // session/worker panics caught and converted to errors
	BreakerOpens     uint64 // circuit-breaker closed/half-open -> open transitions
	BreakerHalfOpens uint64 // half-open probes admitted
	BreakerCloses    uint64 // breaker recoveries back to closed
	BreakerSheds     uint64 // sessions shed by an open breaker (BUSY + hint)
	ProverRetries    uint64 // prover-side retries reported via ObserveProverRetries
}

// Snapshot reads the gateway's registry into a Stats value. Sessions may
// land between individual reads, so the sums are consistent only once
// the gateway is quiescent (e.g. after Close has drained).
func (g *Gateway) Snapshot() Stats {
	m := g.m
	s := Stats{
		SessionsStarted:  m.sessionsStarted.Value(),
		SessionsAccepted: m.sessionsAccepted.Value(),
		SessionsRejected: m.shedCapacity.Value(),
		SessionsFailed:   m.sessionsFailed.Value(),
		ActiveSessions:   len(g.slots),

		VerdictOK:           m.verdictOK.Value(),
		VerdictAttack:       m.verdictAttack.Value(),
		VerdictInconclusive: m.verdictInconclusive.Value(),

		BytesIn:  m.bytesIn.Value(),
		BytesOut: m.bytesOut.Value(),

		MinedSessions:   m.minedSessions.Value(),
		DictPromotions:  m.dictPromotions.Value(),
		DictQuarantines: m.dictQuarantines.Value(),
		DictPaths:       g.dictPaths(),

		StreamSessions:  m.streamSessions.Value(),
		StreamSlices:    m.streamSlices.Value(),
		StreamEarlyCuts: m.streamEarlyCuts.Value(),
		StreamTagBreaks: m.streamTagBreaks.Value(),
		HealAcks:        m.healAcks.Value(),

		PanicsRecovered:  m.panicsRecovered.Value(),
		BreakerOpens:     m.breakerOpens.Value(),
		BreakerHalfOpens: m.breakerHalfOpens.Value(),
		BreakerCloses:    m.breakerCloses.Value(),
		BreakerSheds:     m.shedBreaker.Value(),
		ProverRetries:    m.proverRetries.Value(),
	}
	for i := range s.Rejections {
		s.Rejections[i] = m.rejections[i].Value()
	}
	for _, c := range m.streamAlarms {
		if c != nil {
			s.StreamAlarms += c.Value()
		}
	}
	for _, c := range m.healDirectives {
		if c != nil {
			s.HealDirectives += c.Value()
		}
	}
	hs := m.verifySeconds.Snapshot()
	s.Verifications = hs.Count
	s.VerifyTotal = time.Duration(hs.Sum * float64(time.Second))
	s.VerifyHist = make([]HistBucket, 0, len(hs.Counts))
	for i, cnt := range hs.Counts {
		le := time.Duration(0) // +inf overflow bucket
		if i < len(hs.Bounds) {
			le = time.Duration(hs.Bounds[i] * float64(time.Second))
		}
		s.VerifyHist = append(s.VerifyHist, HistBucket{Le: le, Count: cnt})
	}
	at := g.autTotals()
	s.AutomatonDecodes = at.Decodes
	s.AutomatonAccepts = at.Accepts
	s.AutomatonNoPaths = at.NoPaths
	s.AutomatonFallbacks = at.Fallbacks
	s.AutomatonRescues = at.Rescues
	s.AutomatonCompiles = at.Compiles
	ct := g.cacheTotals()
	s.CacheHits = ct.Hits
	s.CacheMisses = ct.Misses
	s.CacheEvictions = ct.Evictions
	s.CacheEntries = ct.Entries
	s.CacheBytes = ct.Bytes
	return s
}

// MergeStats folds per-replica snapshots into one fleet-level Stats
// value: counters sum, gauges (ActiveSessions, CacheEntries, CacheBytes,
// DictPaths) sum across replicas, and the verify-latency histograms
// merge bucket-by-bucket (every gateway uses one bucket layout; a
// replica snapshot with a divergent layout contributes its totals but
// not its buckets). A router composes its shards' snapshots with this
// instead of letting the last shard's snapshot clobber the rest.
func MergeStats(ss ...Stats) Stats {
	var out Stats
	for _, s := range ss {
		out.SessionsStarted += s.SessionsStarted
		out.SessionsAccepted += s.SessionsAccepted
		out.SessionsRejected += s.SessionsRejected
		out.SessionsFailed += s.SessionsFailed
		out.ActiveSessions += s.ActiveSessions
		out.VerdictOK += s.VerdictOK
		out.VerdictAttack += s.VerdictAttack
		out.VerdictInconclusive += s.VerdictInconclusive
		for i := range s.Rejections {
			out.Rejections[i] += s.Rejections[i]
		}
		out.BytesIn += s.BytesIn
		out.BytesOut += s.BytesOut
		out.Verifications += s.Verifications
		out.VerifyTotal += s.VerifyTotal
		out.VerifyHist = mergeHist(out.VerifyHist, s.VerifyHist)
		out.CacheHits += s.CacheHits
		out.CacheMisses += s.CacheMisses
		out.CacheEvictions += s.CacheEvictions
		out.CacheEntries += s.CacheEntries
		out.CacheBytes += s.CacheBytes
		out.MinedSessions += s.MinedSessions
		out.DictPromotions += s.DictPromotions
		out.DictPaths += s.DictPaths
		out.DictQuarantines += s.DictQuarantines
		out.AutomatonDecodes += s.AutomatonDecodes
		out.AutomatonAccepts += s.AutomatonAccepts
		out.AutomatonNoPaths += s.AutomatonNoPaths
		out.AutomatonFallbacks += s.AutomatonFallbacks
		out.AutomatonRescues += s.AutomatonRescues
		out.AutomatonCompiles += s.AutomatonCompiles
		out.StreamSessions += s.StreamSessions
		out.StreamSlices += s.StreamSlices
		out.StreamAlarms += s.StreamAlarms
		out.StreamEarlyCuts += s.StreamEarlyCuts
		out.StreamTagBreaks += s.StreamTagBreaks
		out.HealDirectives += s.HealDirectives
		out.HealAcks += s.HealAcks
		out.PanicsRecovered += s.PanicsRecovered
		out.BreakerOpens += s.BreakerOpens
		out.BreakerHalfOpens += s.BreakerHalfOpens
		out.BreakerCloses += s.BreakerCloses
		out.BreakerSheds += s.BreakerSheds
		out.ProverRetries += s.ProverRetries
	}
	return out
}

// mergeHist adds b's buckets into a when the layouts agree; an empty a
// adopts b's layout.
func mergeHist(a, b []HistBucket) []HistBucket {
	if len(a) == 0 {
		return append([]HistBucket(nil), b...)
	}
	if len(a) != len(b) {
		return a
	}
	for i := range b {
		if a[i].Le != b[i].Le {
			return a
		}
	}
	for i := range b {
		a[i].Count += b[i].Count
	}
	return a
}

// String renders the snapshot as the multi-line block `raptrack serve`
// prints on shutdown.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sessions:      %d started, %d accepted, %d rejected (busy), %d failed, %d active\n",
		s.SessionsStarted, s.SessionsAccepted, s.SessionsRejected, s.SessionsFailed, s.ActiveSessions)
	fmt.Fprintf(&b, "verdicts:      %d ok, %d attack, %d inconclusive\n",
		s.VerdictOK, s.VerdictAttack, s.VerdictInconclusive)
	if s.VerdictAttack > 0 || s.VerdictInconclusive > 0 {
		fmt.Fprintf(&b, "rejections:   ")
		for code, n := range s.Rejections {
			if n > 0 {
				fmt.Fprintf(&b, " %s:%d", verify.ReasonCode(code), n)
			}
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "traffic:       %d B in, %d B out\n", s.BytesIn, s.BytesOut)
	avg := time.Duration(0)
	if s.Verifications > 0 {
		avg = s.VerifyTotal / time.Duration(s.Verifications)
	}
	fmt.Fprintf(&b, "verifications: %d (avg %v)\n", s.Verifications, avg)
	fmt.Fprintf(&b, "verify latency:")
	for _, hb := range s.VerifyHist {
		if hb.Le == 0 {
			fmt.Fprintf(&b, " +inf:%d", hb.Count)
		} else {
			fmt.Fprintf(&b, " <=%v:%d", hb.Le, hb.Count)
		}
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "cache:         %d hits, %d misses, %d evictions, %d entries, %d B\n",
		s.CacheHits, s.CacheMisses, s.CacheEvictions, s.CacheEntries, s.CacheBytes)
	fmt.Fprintf(&b, "mining:        %d sessions mined, %d promotions, %d dictionary paths, %d quarantined\n",
		s.MinedSessions, s.DictPromotions, s.DictPaths, s.DictQuarantines)
	fmt.Fprintf(&b, "automaton:     %d decodes (%d accepts, %d no-path, %d fallbacks, %d rescued), %d compiles\n",
		s.AutomatonDecodes, s.AutomatonAccepts, s.AutomatonNoPaths, s.AutomatonFallbacks, s.AutomatonRescues, s.AutomatonCompiles)
	if s.StreamSessions > 0 {
		fmt.Fprintf(&b, "streaming:     %d sessions, %d slices, %d alarms, %d early cuts, %d tag breaks, heal %d pushed/%d acked\n",
			s.StreamSessions, s.StreamSlices, s.StreamAlarms, s.StreamEarlyCuts, s.StreamTagBreaks, s.HealDirectives, s.HealAcks)
	}
	fmt.Fprintf(&b, "resilience:    %d panics recovered, breaker %d opens/%d probes/%d closes/%d sheds, %d prover retries\n",
		s.PanicsRecovered, s.BreakerOpens, s.BreakerHalfOpens, s.BreakerCloses, s.BreakerSheds, s.ProverRetries)
	return b.String()
}
