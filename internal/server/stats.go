package server

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"raptrack/internal/verify"
)

// histBuckets is the verify-latency histogram size: len(verifyBuckets)
// finite buckets plus the +inf overflow bucket.
const histBuckets = 7

// verifyBuckets are the upper bounds of the verify-latency histogram; an
// implicit +inf bucket catches the tail. Verification cost scales with
// evidence volume, so the spread is wide.
var verifyBuckets = [histBuckets - 1]time.Duration{
	time.Millisecond,
	5 * time.Millisecond,
	25 * time.Millisecond,
	100 * time.Millisecond,
	500 * time.Millisecond,
	2500 * time.Millisecond,
}

// counters is the gateway's hot-path instrumentation: all fields are
// atomics so sessions never serialize on a stats lock.
type counters struct {
	started  atomic.Uint64 // connections handled, including shed ones
	accepted atomic.Uint64 // sessions that won a slot
	rejected atomic.Uint64 // sessions shed with a BUSY frame
	failed   atomic.Uint64 // accepted sessions that errored out

	verdictOK           atomic.Uint64
	verdictAttack       atomic.Uint64
	verdictInconclusive atomic.Uint64
	rejectedByCode      [verify.NumReasons]atomic.Uint64

	minedSessions   atomic.Uint64
	dictPromotions  atomic.Uint64
	dictQuarantines atomic.Uint64

	panicsRecovered  atomic.Uint64
	breakerOpens     atomic.Uint64
	breakerHalfOpens atomic.Uint64
	breakerCloses    atomic.Uint64
	breakerSheds     atomic.Uint64
	proverRetries    atomic.Uint64

	bytesIn  atomic.Uint64
	bytesOut atomic.Uint64

	verifications atomic.Uint64
	verifyNanos   atomic.Uint64
	verifyHist    [histBuckets]atomic.Uint64
}

func (c *counters) observeVerify(d time.Duration) {
	c.verifications.Add(1)
	c.verifyNanos.Add(uint64(d.Nanoseconds()))
	for i, le := range verifyBuckets {
		if d <= le {
			c.verifyHist[i].Add(1)
			return
		}
	}
	c.verifyHist[len(verifyBuckets)].Add(1)
}

// HistBucket is one verify-latency histogram bucket; Le == 0 marks the
// +inf overflow bucket.
type HistBucket struct {
	Le    time.Duration
	Count uint64
}

// Stats is a point-in-time snapshot of the gateway counters. Counts are
// monotone except ActiveSessions, a gauge.
type Stats struct {
	SessionsStarted  uint64 // connections handled (accepted + rejected)
	SessionsAccepted uint64
	SessionsRejected uint64 // shed with a BUSY frame
	SessionsFailed   uint64 // accepted but errored (timeout, protocol, bad evidence)
	ActiveSessions   int    // sessions currently holding a slot

	VerdictOK     uint64 // sessions whose evidence attested a benign path
	VerdictAttack uint64 // well-formed evidence attesting a disallowed path
	// VerdictInconclusive counts sessions whose authentic evidence attested
	// detectable trace loss (verify.ReasonInconclusive): neither accept nor
	// attack — the device is expected to re-attest.
	VerdictInconclusive uint64
	// Rejections buckets non-OK verdicts (attack and inconclusive) by typed
	// reason code; index with a verify.ReasonCode.
	// Rejections[verify.ReasonNone] stays zero.
	Rejections [verify.NumReasons]uint64

	BytesIn  uint64
	BytesOut uint64

	Verifications uint64        // reconstructions run by the worker pool
	VerifyTotal   time.Duration // summed reconstruction wall time
	VerifyHist    []HistBucket

	// Fast-path instrumentation (verdict + segment caches, aggregated
	// across apps; shared caches are counted once).
	CacheHits      uint64
	CacheMisses    uint64
	CacheEvictions uint64
	CacheEntries   int
	CacheBytes     int64

	// Online mining: sessions mined, sub-paths promoted into live
	// dictionaries, and the current total dictionary size across apps.
	MinedSessions  uint64
	DictPromotions uint64
	DictPaths      int
	// DictQuarantines counts mined dictionaries that failed the promotion
	// self-check (decode + evidence round-trip) and were discarded before
	// reaching any prover handshake.
	DictQuarantines uint64

	// Resilience instrumentation.
	PanicsRecovered  uint64 // session/worker panics caught and converted to errors
	BreakerOpens     uint64 // circuit-breaker closed/half-open -> open transitions
	BreakerHalfOpens uint64 // half-open probes admitted
	BreakerCloses    uint64 // breaker recoveries back to closed
	BreakerSheds     uint64 // sessions shed by an open breaker (BUSY + hint)
	ProverRetries    uint64 // prover-side retries reported via ObserveProverRetries
}

// snapshot reads every counter once; sessions may land between reads, so
// the sums are consistent only once the gateway is quiescent.
func (c *counters) snapshot(active int) Stats {
	s := Stats{
		SessionsStarted:  c.started.Load(),
		SessionsAccepted: c.accepted.Load(),
		SessionsRejected: c.rejected.Load(),
		SessionsFailed:   c.failed.Load(),
		ActiveSessions:   active,
		VerdictOK:           c.verdictOK.Load(),
		VerdictAttack:       c.verdictAttack.Load(),
		VerdictInconclusive: c.verdictInconclusive.Load(),
		BytesIn:             c.bytesIn.Load(),
		BytesOut:            c.bytesOut.Load(),
		Verifications:       c.verifications.Load(),
		VerifyTotal:         time.Duration(c.verifyNanos.Load()),
		MinedSessions:       c.minedSessions.Load(),
		DictPromotions:      c.dictPromotions.Load(),
		DictQuarantines:     c.dictQuarantines.Load(),
		PanicsRecovered:     c.panicsRecovered.Load(),
		BreakerOpens:        c.breakerOpens.Load(),
		BreakerHalfOpens:    c.breakerHalfOpens.Load(),
		BreakerCloses:       c.breakerCloses.Load(),
		BreakerSheds:        c.breakerSheds.Load(),
		ProverRetries:       c.proverRetries.Load(),
	}
	for i := range c.rejectedByCode {
		s.Rejections[i] = c.rejectedByCode[i].Load()
	}
	s.VerifyHist = make([]HistBucket, 0, histBuckets)
	for i, le := range verifyBuckets {
		s.VerifyHist = append(s.VerifyHist, HistBucket{Le: le, Count: c.verifyHist[i].Load()})
	}
	s.VerifyHist = append(s.VerifyHist, HistBucket{Le: 0, Count: c.verifyHist[len(verifyBuckets)].Load()})
	return s
}

// String renders the snapshot as the multi-line block `raptrack serve`
// prints on shutdown.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sessions:      %d started, %d accepted, %d rejected (busy), %d failed, %d active\n",
		s.SessionsStarted, s.SessionsAccepted, s.SessionsRejected, s.SessionsFailed, s.ActiveSessions)
	fmt.Fprintf(&b, "verdicts:      %d ok, %d attack, %d inconclusive\n",
		s.VerdictOK, s.VerdictAttack, s.VerdictInconclusive)
	if s.VerdictAttack > 0 || s.VerdictInconclusive > 0 {
		fmt.Fprintf(&b, "rejections:   ")
		for code, n := range s.Rejections {
			if n > 0 {
				fmt.Fprintf(&b, " %s:%d", verify.ReasonCode(code), n)
			}
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "traffic:       %d B in, %d B out\n", s.BytesIn, s.BytesOut)
	avg := time.Duration(0)
	if s.Verifications > 0 {
		avg = s.VerifyTotal / time.Duration(s.Verifications)
	}
	fmt.Fprintf(&b, "verifications: %d (avg %v)\n", s.Verifications, avg)
	fmt.Fprintf(&b, "verify latency:")
	for _, hb := range s.VerifyHist {
		if hb.Le == 0 {
			fmt.Fprintf(&b, " +inf:%d", hb.Count)
		} else {
			fmt.Fprintf(&b, " <=%v:%d", hb.Le, hb.Count)
		}
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "cache:         %d hits, %d misses, %d evictions, %d entries, %d B\n",
		s.CacheHits, s.CacheMisses, s.CacheEvictions, s.CacheEntries, s.CacheBytes)
	fmt.Fprintf(&b, "mining:        %d sessions mined, %d promotions, %d dictionary paths, %d quarantined\n",
		s.MinedSessions, s.DictPromotions, s.DictPaths, s.DictQuarantines)
	fmt.Fprintf(&b, "resilience:    %d panics recovered, breaker %d opens/%d probes/%d closes/%d sheds, %d prover retries\n",
		s.PanicsRecovered, s.BreakerOpens, s.BreakerHalfOpens, s.BreakerCloses, s.BreakerSheds, s.ProverRetries)
	return b.String()
}
