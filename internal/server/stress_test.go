package server_test

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"

	"raptrack/internal/remote"
	"raptrack/internal/server"
)

// TestGatewayStressConcurrent throws a mixed fleet at one gateway over
// loopback TCP: benign provers for two different apps, watermarked
// provers streaming many partial reports, and clients announcing an
// unprovisioned app. Every session must end with the correct outcome and
// the stats must add up exactly. Run under -race.
func TestGatewayStressConcurrent(t *testing.T) {
	const (
		benignPrime = 12 // full-buffer sessions, app "prime"
		benignGPS   = 8  // app "gps"
		streamed    = 6  // watermarked "gps" sessions (many partials)
		unknown     = 4  // sessions for an unprovisioned app
	)
	total := benignPrime + benignGPS + streamed + unknown

	g, addr, ep := startGateway(t, server.Config{
		MaxSessions:   total, // no shedding in this test: every session counts
		VerifyWorkers: 4,
	}, "prime", "gps")
	// A second endpoint whose gps prover emits partials every 512 bytes:
	// same key and link, so the gateway accepts its chains too.
	streamEP := remote.NewProverEndpoint()
	fixture(t, "gps").provision(streamEP, 512)

	type task struct {
		ep      *remote.ProverEndpoint
		app     string
		wantOK  bool
		wantErr string // substring of the expected error ("" = success)
	}
	var tasks []task
	for i := 0; i < benignPrime; i++ {
		tasks = append(tasks, task{ep: ep, app: "prime", wantOK: true})
	}
	for i := 0; i < benignGPS; i++ {
		tasks = append(tasks, task{ep: ep, app: "gps", wantOK: true})
	}
	for i := 0; i < streamed; i++ {
		tasks = append(tasks, task{ep: streamEP, app: "gps", wantOK: true})
	}
	for i := 0; i < unknown; i++ {
		tasks = append(tasks, task{ep: ep, app: "rogue", wantErr: "unknown application"})
	}

	var wg sync.WaitGroup
	errs := make(chan error, total)
	for i, tk := range tasks {
		wg.Add(1)
		go func(i int, tk task) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				errs <- fmt.Errorf("client %d: dial: %w", i, err)
				return
			}
			defer conn.Close()
			gv, err := tk.ep.AttestTo(conn, tk.app)
			switch {
			case tk.wantErr != "":
				if err == nil || !strings.Contains(err.Error(), tk.wantErr) {
					errs <- fmt.Errorf("client %d (%s): err = %v, want %q", i, tk.app, err, tk.wantErr)
				}
			case err != nil:
				errs <- fmt.Errorf("client %d (%s): %w", i, tk.app, err)
			case gv.OK != tk.wantOK:
				errs <- fmt.Errorf("client %d (%s): verdict %+v, want OK=%v", i, tk.app, gv, tk.wantOK)
			}
		}(i, tk)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Quiescent now (every AttestTo returned after the gateway's final
	// frame), so the counters must balance exactly.
	st := g.Stats()
	wantOK := uint64(benignPrime + benignGPS + streamed)
	if st.SessionsStarted != uint64(total) || st.SessionsAccepted != uint64(total) {
		t.Errorf("sessions: %+v, want %d started and accepted", st, total)
	}
	if st.SessionsRejected != 0 {
		t.Errorf("unexpected shedding: %+v", st)
	}
	if st.VerdictOK != wantOK || st.VerdictAttack != 0 {
		t.Errorf("verdicts: %+v, want %d ok", st, wantOK)
	}
	if st.SessionsFailed != unknown {
		t.Errorf("failed: %+v, want %d", st, unknown)
	}
	if st.Verifications != wantOK {
		t.Errorf("verifications: %+v, want %d", st, wantOK)
	}
	if got := st.VerdictOK + st.VerdictAttack + st.SessionsFailed; got != st.SessionsAccepted {
		t.Errorf("accounting: ok+attack+failed = %d, accepted = %d", got, st.SessionsAccepted)
	}
	if st.BytesIn == 0 || st.BytesOut == 0 {
		t.Errorf("byte counters: %+v", st)
	}

	// One of everything happened under concurrency; the shared verifiers
	// must still be reusable afterwards.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	gv, err := ep.AttestTo(conn, "prime")
	if err != nil || !gv.OK {
		t.Fatalf("post-stress session: %+v, %v", gv, err)
	}
}
