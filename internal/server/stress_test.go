package server_test

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"raptrack/internal/obs"
	"raptrack/internal/remote"
	"raptrack/internal/server"
)

// TestGatewayStressConcurrent throws a mixed fleet at one gateway over
// loopback TCP: benign provers for two different apps, watermarked
// provers streaming many partial reports, and clients announcing an
// unprovisioned app. Every session must end with the correct outcome and
// the stats must add up exactly. Run under -race.
func TestGatewayStressConcurrent(t *testing.T) {
	const (
		benignPrime = 12 // full-buffer sessions, app "prime"
		benignGPS   = 8  // app "gps"
		streamed    = 6  // watermarked "gps" sessions (many partials)
		unknown     = 4  // sessions for an unprovisioned app
	)
	total := benignPrime + benignGPS + streamed + unknown

	g, addr, ep := startGateway(t, []server.Option{
		server.WithSessionSlots(total), // no shedding in this test: every session counts
		server.WithVerifyWorkers(4, 0),
	}, "prime", "gps")
	// A second endpoint whose gps prover emits partials every 512 bytes:
	// same key and link, so the gateway accepts its chains too.
	streamEP := remote.NewProverEndpoint()
	fixture(t, "gps").provision(streamEP, 512)

	type task struct {
		ep      *remote.ProverEndpoint
		app     string
		wantOK  bool
		wantErr string // substring of the expected error ("" = success)
	}
	var tasks []task
	for i := 0; i < benignPrime; i++ {
		tasks = append(tasks, task{ep: ep, app: "prime", wantOK: true})
	}
	for i := 0; i < benignGPS; i++ {
		tasks = append(tasks, task{ep: ep, app: "gps", wantOK: true})
	}
	for i := 0; i < streamed; i++ {
		tasks = append(tasks, task{ep: streamEP, app: "gps", wantOK: true})
	}
	for i := 0; i < unknown; i++ {
		tasks = append(tasks, task{ep: ep, app: "rogue", wantErr: "unknown application"})
	}

	var wg sync.WaitGroup
	errs := make(chan error, total)
	for i, tk := range tasks {
		wg.Add(1)
		go func(i int, tk task) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				errs <- fmt.Errorf("client %d: dial: %w", i, err)
				return
			}
			defer conn.Close()
			gv, err := attestApp(tk.ep, conn, tk.app)
			switch {
			case tk.wantErr != "":
				if err == nil || !strings.Contains(err.Error(), tk.wantErr) {
					errs <- fmt.Errorf("client %d (%s): err = %v, want %q", i, tk.app, err, tk.wantErr)
				}
			case err != nil:
				errs <- fmt.Errorf("client %d (%s): %w", i, tk.app, err)
			case gv.OK != tk.wantOK:
				errs <- fmt.Errorf("client %d (%s): verdict %+v, want OK=%v", i, tk.app, gv, tk.wantOK)
			}
		}(i, tk)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Quiescent now (every AttestTo returned after the gateway's final
	// frame), so the counters must balance exactly.
	st := g.Snapshot()
	wantOK := uint64(benignPrime + benignGPS + streamed)
	if st.SessionsStarted != uint64(total) || st.SessionsAccepted != uint64(total) {
		t.Errorf("sessions: %+v, want %d started and accepted", st, total)
	}
	if st.SessionsRejected != 0 {
		t.Errorf("unexpected shedding: %+v", st)
	}
	if st.VerdictOK != wantOK || st.VerdictAttack != 0 {
		t.Errorf("verdicts: %+v, want %d ok", st, wantOK)
	}
	if st.SessionsFailed != unknown {
		t.Errorf("failed: %+v, want %d", st, unknown)
	}
	if st.Verifications != wantOK {
		t.Errorf("verifications: %+v, want %d", st, wantOK)
	}
	if got := st.VerdictOK + st.VerdictAttack + st.SessionsFailed; got != st.SessionsAccepted {
		t.Errorf("accounting: ok+attack+failed = %d, accepted = %d", got, st.SessionsAccepted)
	}
	if st.BytesIn == 0 || st.BytesOut == 0 {
		t.Errorf("byte counters: %+v", st)
	}

	// One of everything happened under concurrency; the shared verifiers
	// must still be reusable afterwards.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	gv, err := attestApp(ep, conn, "prime")
	if err != nil || !gv.OK {
		t.Fatalf("post-stress session: %+v, %v", gv, err)
	}
}

// TestGatewayMetricsScrapeUnderLoad hammers /metrics and /debug/sessions
// through the real admin handler while the mixed stress fleet runs, then
// checks the final scrape against the drained Snapshot. The point is the
// data race surface: scrape-time gauges walk the gateway's app map and
// cache stats concurrently with sessions mutating them. Run under -race.
func TestGatewayMetricsScrapeUnderLoad(t *testing.T) {
	const (
		benignPrime = 12
		benignGPS   = 8
		streamed    = 6
		unknown     = 4
	)
	total := benignPrime + benignGPS + streamed + unknown

	observer := obs.NewObserver(nil, 8)
	g, addr, ep := startGateway(t, []server.Option{
		server.WithSessionSlots(total),
		server.WithVerifyWorkers(4, 0),
		server.WithObserver(observer),
	}, "prime", "gps")
	streamEP := remote.NewProverEndpoint()
	fixture(t, "gps").provision(streamEP, 512)

	admin := httptest.NewServer(obs.AdminHandler(observer))
	defer admin.Close()
	scrape := func(path string) string {
		resp, err := http.Get(admin.URL + path)
		if err != nil {
			t.Errorf("scrape %s: %v", path, err)
			return ""
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Errorf("scrape %s: status %d, read err %v", path, resp.StatusCode, err)
			return ""
		}
		return string(body)
	}

	// Scrapers spin for the whole workload; each pass touches both the
	// Prometheus exposition and the JSON trace dump.
	done := make(chan struct{})
	var scrapers sync.WaitGroup
	for i := 0; i < 3; i++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				if body := scrape("/metrics"); body != "" &&
					!strings.Contains(body, "raptrack_sessions_started_total") {
					t.Error("scrape missing raptrack_sessions_started_total")
				}
				scrape("/debug/sessions")
			}
		}()
	}

	var wg sync.WaitGroup
	errs := make(chan error, total)
	for i := 0; i < total; i++ {
		app, tep, wantErr := "prime", ep, ""
		switch {
		case i >= benignPrime+benignGPS+streamed:
			app, wantErr = "rogue", "unknown application"
		case i >= benignPrime+benignGPS:
			app, tep = "gps", streamEP
		case i >= benignPrime:
			app = "gps"
		}
		wg.Add(1)
		go func(i int, app string, tep *remote.ProverEndpoint, wantErr string) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				errs <- fmt.Errorf("client %d: dial: %w", i, err)
				return
			}
			defer conn.Close()
			gv, err := attestApp(tep, conn, app)
			switch {
			case wantErr != "":
				if err == nil || !strings.Contains(err.Error(), wantErr) {
					errs <- fmt.Errorf("client %d (%s): err = %v, want %q", i, app, err, wantErr)
				}
			case err != nil:
				errs <- fmt.Errorf("client %d (%s): %w", i, app, err)
			case !gv.OK:
				errs <- fmt.Errorf("client %d (%s): verdict %+v", i, app, gv)
			}
		}(i, app, tep, wantErr)
	}
	wg.Wait()
	close(done)
	scrapers.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Quiescent: the final scrape and the Snapshot must agree exactly.
	st := g.Snapshot()
	final := scrape("/metrics")
	for _, want := range []string{
		fmt.Sprintf("raptrack_sessions_started_total %d", st.SessionsStarted),
		fmt.Sprintf(`raptrack_verdicts_total{verdict="ok"} %d`, st.VerdictOK),
		fmt.Sprintf("raptrack_verify_seconds_count %d", st.Verifications),
		fmt.Sprintf("raptrack_cache_hits_total %d", st.CacheHits),
		`raptrack_stage_seconds_bucket{stage="verify"`,
		`raptrack_breaker_state{app="prime"} 0`,
	} {
		if !strings.Contains(final, want) {
			t.Errorf("final scrape missing %q", want)
		}
	}
	if st.SessionsStarted != uint64(total) || st.VerdictOK != uint64(benignPrime+benignGPS+streamed) {
		t.Errorf("stats after scrape-under-load: %+v", st)
	}

	// The trace rings saw every app the workload announced.
	dump := scrape("/debug/sessions")
	for _, app := range []string{"prime", "gps"} {
		if !strings.Contains(dump, fmt.Sprintf("%q", app)) {
			t.Errorf("/debug/sessions missing app %q", app)
		}
	}
}
