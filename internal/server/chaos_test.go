// Chaos harness: hundreds of gateway sessions under seeded, randomized
// fault schedules spanning all three layers (simulated hardware, wire,
// gateway). The invariants are the ISSUE's acceptance bar:
//
//   - no false accepts, ever: an accepted verdict never comes from an
//     attempt whose evidence was perturbed before signing;
//   - transient (wire/gateway) faults eventually succeed via retry;
//   - detectable trace loss (MTB wrap) is inconclusive, never OK;
//   - the gateway neither deadlocks nor leaks goroutines under chaos.
//
// Determinism: chaosSeed pins the master schedule and every session forks
// a child injector from a stable label, so per-session fault schedules
// replay across runs regardless of goroutine interleaving. (Outcome
// tallies can still drift slightly across platforms — TCP read chunking
// changes how many wire rolls a session draws — so the tallies are
// asserted as bands, while the soundness invariants are absolute.)
//
// All must pass under -race; the CI chaos job runs this file with
// -count=2 to shake out cross-run state.
package server_test

import (
	"fmt"
	"io"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"raptrack/internal/core"
	"raptrack/internal/faults"
	"raptrack/internal/remote"
	"raptrack/internal/server"
	"raptrack/internal/verify"
)

// chaosSeed pins every fault schedule in this file.
const chaosSeed = 0xC4A05EED

// proverLog records every prover a chaos endpoint built, in creation
// order: retries build one prover per attempt, so the last entry is the
// prover behind the attempt that reached the returned verdict.
type proverLog struct {
	mu      sync.Mutex
	provers []*core.Prover
}

func (l *proverLog) add(p *core.Prover) {
	l.mu.Lock()
	l.provers = append(l.provers, p)
	l.mu.Unlock()
}

func (l *proverLog) last() *core.Prover {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.provers) == 0 {
		return nil
	}
	return l.provers[len(l.provers)-1]
}

// chaosEndpoint provisions f's app on a fresh endpoint whose provers run
// with inj's hardware-fault schedule attached to their MTB and DWT.
func chaosEndpoint(f *appFixture, inj *faults.Injector, bufSize, watermark int) (*remote.ProverEndpoint, *proverLog) {
	ep := remote.NewProverEndpoint()
	plog := &proverLog{}
	ep.Provision(f.name, func() (*core.Prover, error) {
		p, err := core.NewProver(f.link, f.key, core.ProverConfig{
			SetupMem:      f.app.SetupMem(),
			MTBBufferSize: bufSize,
			Watermark:     watermark,
		})
		if err != nil {
			return nil, err
		}
		inj.InstrumentMTB(p.Engine.MTB)
		inj.InstrumentDWT(p.Engine.DWT)
		plog.add(p)
		return p, nil
	})
	return ep, plog
}

// chaosDialer wraps every fresh connection in the session's wire-fault
// schedule.
func chaosDialer(addr string, inj *faults.Injector) func() (io.ReadWriteCloser, error) {
	return func() (io.ReadWriteCloser, error) {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		return inj.WrapConn(c), nil
	}
}

// chaosRetry is the prover policy under chaos: a real attempt budget and
// a real attempt deadline (a flipped length field otherwise pins a read
// until the gateway's timeout), but no real sleeping — backoff scheduling
// is covered by the remote tests; here wall clock goes to sessions.
func chaosRetry(attempts int) remote.RetryPolicy {
	return remote.RetryPolicy{
		MaxAttempts:    attempts,
		AttemptTimeout: 2 * time.Second,
		Sleep:          func(time.Duration) {},
	}
}

// TestChaosMixedFaultSchedule is the main run: faults in every layer at
// once. Soundness invariants are absolute; liveness is checked by the
// gateway staying consistent, serving a clean session afterwards, and
// releasing every goroutine at Close.
func TestChaosMixedFaultSchedule(t *testing.T) {
	sessions := 260
	if testing.Short() {
		sessions = 48
	}
	// Hardware probabilities are per event, and a prime run is ~28k
	// comparator evaluations and ~2.6k packets — so ~6e-5 per packet
	// already faults ~15% of attempts.
	master := faults.New(chaosSeed, faults.Plan{
		PacketDrop:        0.00006,
		PacketCorrupt:     0.00006,
		WatermarkSuppress: 0.02, // per watermark firing (~5/run); a suppressed drain wraps the buffer
		DWTMisfire:        0.00001,
		ArmJitterProb:     0.00004, // per TStart edge (~2.6k/run: one per traced loop iteration)
		ArmJitterMax:      3,

		// Wire probabilities are per Read/Write call; a prime session moves
		// ~25 calls (a partial-report frame per MTB buffer fill), so even
		// these look hot at the session level.
		ReadFlip:     0.01,
		WriteFlip:    0.01,
		Stall:        0.02,
		StallFor:     200 * time.Microsecond,
		PartialWrite: 0.008,
		Disconnect:   0.008,

		VerifyPanic:    0.04,
		VerifyStall:    0.02,
		VerifyStallFor: time.Millisecond,
	})

	f := fixture(t, "prime")
	before := runtime.NumGoroutine()
	g := server.New(
		server.WithSessionSlots(2*sessions), // capacity sheds off: every outcome is a verdict or typed failure
		server.WithBreaker(24, 50*time.Millisecond), // enabled, but above any plausible panic streak
		server.WithFaults(master.Fork("gateway").VerifyHook(), nil),
	)
	g.Register("prime", core.NewVerifier(f.link, f.key))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- g.Serve(ln) }()
	addr := ln.Addr().String()

	var (
		mu                 sync.Mutex
		okN, rejN, errN    int
		lossyOK            int
		retries, busyHints uint64
	)
	sem := make(chan struct{}, 8)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()

			inj := master.Fork(fmt.Sprintf("session-%04d", i))
			ep, plog := chaosEndpoint(f, inj, 0, 0)
			gv, rst, err := remote.NewClient(ep, remote.WithRetry(chaosRetry(6))).AttestDial("prime", chaosDialer(addr, inj))
			c := inj.Counts()

			mu.Lock()
			defer mu.Unlock()
			retries += uint64(rst.Retries)
			busyHints += uint64(rst.BusyHints)
			switch {
			case err != nil:
				errN++
				if c.Total() == 0 {
					t.Errorf("session %d: failed with no injected faults: %v", i, err)
				}
				// Terminal errors are an exhausted budget, or a fatal
				// classification (a wire flip landing in the HELO version
				// byte reads as a protocol mismatch — correctly terminal
				// from the prover's seat).
				if !strings.Contains(err.Error(), "gave up") && remote.Classify(err) != remote.ClassFatal {
					t.Errorf("session %d: unexpected terminal error: %v", i, err)
				}
			case gv.OK:
				okN++
				// THE invariant: no false accepts. The accepted attempt's
				// prover must carry zero *detectable* evidence perturbation:
				// no corrupted packets (the surviving bits are not a benign
				// edge, so reconstruction must reject them) and no buffer
				// wraps (overflow rides the signed report and must come back
				// inconclusive, never OK).
				//
				// Silent capture loss — InjectedDrops, DroppedArming — is
				// deliberately NOT in this list. Dropping one of prime's
				// ~2.6k repetitive loop-edge packets leaves a log that a
				// benign run with one fewer iteration genuinely produces; no
				// verifier can flag it without per-packet sequence numbers
				// the MTB does not emit. TestFaultsSingleDropVerdicts pins
				// the full behavior: repetitive-edge drops verify OK,
				// structurally required drops reject as missing-evidence,
				// and neither is ever misread as an attack. (DWT misfires
				// are likewise excluded: a redundant assert is harmless.)
				m := plog.last().Engine.MTB
				if m.InjectedCorruptions > 0 || m.Wraps > 0 {
					t.Errorf("session %d: FALSE ACCEPT: corruptions=%d wraps=%d",
						i, m.InjectedCorruptions, m.Wraps)
				}
				if m.InjectedDrops > 0 || m.DroppedArming > 0 {
					lossyOK++
				}
			default:
				rejN++
				if c.Total() == 0 {
					t.Errorf("session %d: rejected with no injected faults: %s", i, gv.Reason())
				}
			}
		}(i)
	}
	wg.Wait()
	g.ObserveProverRetries(retries)

	t.Logf("chaos: %d sessions -> %d ok (%d with silent capture loss), %d rejected, %d failed; %d retries (%d busy hints)",
		sessions, okN, lossyOK, rejN, errN, retries, busyHints)
	if okN+rejN+errN != sessions {
		t.Errorf("outcome accounting: %d+%d+%d != %d", okN, rejN, errN, sessions)
	}
	if okN < sessions/3 {
		t.Errorf("only %d/%d sessions succeeded — retry is not recovering transients", okN, sessions)
	}
	if retries == 0 {
		t.Error("no retries across the whole schedule — wire faults not reaching the prover loop")
	}

	// The gateway must be quiescent and internally consistent: every
	// admitted session reached a verdict, a typed failure, or a graceful
	// breaker shed. (A session can be counted twice — verdict reached,
	// then the verdict *write* lost to a wire fault also fails it — so the
	// buckets bound the accepted count from above, and each bucket from
	// below.)
	st := g.Snapshot()
	if st.ActiveSessions != 0 {
		t.Errorf("sessions still active after drain: %+v", st)
	}
	verdicts := st.VerdictOK + st.VerdictAttack + st.VerdictInconclusive
	if got := verdicts + st.SessionsFailed + st.BreakerSheds; got < st.SessionsAccepted {
		t.Errorf("accounting: %d sessions admitted but only %d accounted for", st.SessionsAccepted, got)
	}
	if verdicts+st.BreakerSheds > st.SessionsAccepted || st.SessionsFailed > st.SessionsAccepted {
		t.Errorf("accounting: buckets exceed admissions: %+v", st)
	}
	if st.PanicsRecovered == 0 {
		t.Errorf("no panics recovered despite a 4%% verify-panic schedule: %+v", st)
	}
	if st.ProverRetries != retries {
		t.Errorf("ProverRetries = %d, observed %d", st.ProverRetries, retries)
	}

	// Liveness: a clean prover attests successfully right after the storm.
	cleanEP := remote.NewProverEndpoint()
	f.provision(cleanEP, 0)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	gv, err := attestApp(cleanEP, conn, "prime")
	conn.Close()
	if err != nil || !gv.OK {
		t.Fatalf("post-chaos clean session: %+v, %v", gv, err)
	}

	// ... and Close neither deadlocks nor leaks.
	closed := make(chan error, 1)
	go func() { closed <- g.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Close deadlocked after chaos run")
	}
	if err := <-serveErr; err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, before)
}

// TestChaosWireFaultsRecoverWithRetry: wire-only faults are transient by
// construction (authenticators catch every corruption), so nearly every
// faulted session must still reach an accepted verdict within the retry
// budget — and an unfaulted session must never fail at all.
func TestChaosWireFaultsRecoverWithRetry(t *testing.T) {
	sessions := 220
	if testing.Short() {
		sessions = 40
	}
	master := faults.New(chaosSeed+1, faults.Plan{
		ReadFlip:     0.01,
		WriteFlip:    0.01,
		Stall:        0.02,
		StallFor:     200 * time.Microsecond,
		PartialWrite: 0.008,
		Disconnect:   0.008,
	})
	f := fixture(t, "prime")
	_, addr, _ := startGateway(t, []server.Option{server.WithSessionSlots(2 * sessions)}, "prime")

	var (
		mu                 sync.Mutex
		faultedN, faultedOK int
		retries            uint64
	)
	sem := make(chan struct{}, 8)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()

			inj := master.Fork(fmt.Sprintf("wire-%04d", i))
			ep, _ := chaosEndpoint(f, inj, 0, 0)
			gv, rst, err := remote.NewClient(ep, remote.WithRetry(chaosRetry(10))).AttestDial("prime", chaosDialer(addr, inj))

			mu.Lock()
			defer mu.Unlock()
			retries += uint64(rst.Retries)
			if inj.Counts().Wire() == 0 {
				// An untouched session has no excuse.
				if err != nil || !gv.OK {
					t.Errorf("session %d: unfaulted but not accepted: %+v, %v", i, gv, err)
				}
				return
			}
			faultedN++
			if err == nil && gv.OK {
				faultedOK++
			}
		}(i)
	}
	wg.Wait()

	t.Logf("wire chaos: %d/%d sessions faulted, %d recovered (%.1f%%), %d retries",
		faultedN, sessions, faultedOK, 100*float64(faultedOK)/float64(max(faultedN, 1)), retries)
	if faultedN < sessions/4 {
		t.Fatalf("only %d/%d sessions drew wire faults — the schedule is not exercising the wire", faultedN, sessions)
	}
	if retries == 0 {
		t.Error("no retries: wire faults are not surfacing as transient errors")
	}
	// The ISSUE's bar: >=95% of transiently-faulted sessions succeed
	// within the retry budget.
	if 100*faultedOK < 95*faultedN {
		t.Errorf("%d/%d faulted sessions recovered — below the 95%% bar", faultedOK, faultedN)
	}
}

// TestChaosOverflowIsInconclusive forces the loss path: every MTB_FLOW
// watermark exception is swallowed, the small buffer wraps, and the wrap
// count rides the signed report into the verifier. The verdict must be
// the typed inconclusive — detectable loss is never OK and never an
// attack claim.
func TestChaosOverflowIsInconclusive(t *testing.T) {
	const sessions = 24
	master := faults.New(chaosSeed+2, faults.Plan{WatermarkSuppress: 1})
	f := fixture(t, "prime")
	g, addr, _ := startGateway(t, nil, "prime")

	for i := 0; i < sessions; i++ {
		inj := master.Fork(fmt.Sprintf("overflow-%02d", i))
		ep, plog := chaosEndpoint(f, inj, 256, 128) // 32-packet buffer: prime overruns it
		gv, err := attestApp(ep, dial(t, addr), "prime")
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
		if gv.OK {
			t.Fatalf("session %d: FALSE ACCEPT: overflowed trace accepted", i)
		}
		if gv.Code != verify.ReasonInconclusive {
			t.Fatalf("session %d: code = %v (%s), want inconclusive", i, gv.Code, gv.Reason())
		}
		if m := plog.last().Engine.MTB; m.Wraps == 0 || m.WatermarkSuppressions == 0 {
			t.Fatalf("session %d: schedule did not overflow (wraps=%d suppressions=%d)",
				i, m.Wraps, m.WatermarkSuppressions)
		}
	}

	st := waitStats(t, g, func(s server.Stats) bool { return s.VerdictInconclusive == sessions })
	if st.VerdictOK != 0 || st.VerdictAttack != 0 || st.SessionsFailed != 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.Rejections[verify.ReasonInconclusive] != sessions {
		t.Errorf("rejection buckets = %v", st.Rejections)
	}
	if !strings.Contains(st.String(), "inconclusive") {
		t.Errorf("Stats.String() missing inconclusive bucket:\n%s", st)
	}
}
