package server

import (
	"time"

	"raptrack/internal/obs"
	"raptrack/internal/remote"
	"raptrack/internal/trace/pipeline"
	"raptrack/internal/verify"
)

// stageBounds are the per-stage session latency buckets (seconds): the
// handshake stages live in the sub-millisecond range, evidence transfer
// and reconstruction in the milliseconds-to-seconds range, so the spread
// is wider than the verify histogram alone.
var stageBounds = []float64{0.0001, 0.001, 0.005, 0.025, 0.1, 0.5, 2.5}

// verifyBounds are the reconstruction-latency buckets (seconds); they
// mirror the pre-registry verify histogram (1ms..2.5s) so snapshots and
// dashboards stay comparable across the API redesign.
var verifyBounds = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5}

// frameNames maps remote frame type bytes to metric label values.
var frameNames = [11]string{
	remote.FrameChal:    "chal",
	remote.FrameRprt:    "rprt",
	remote.FrameFail:    "fail",
	remote.FrameHello:   "helo",
	remote.FrameBusy:    "busy",
	remote.FrameVerdict: "vrdt",
	remote.FrameDict:    "dict",
	remote.FrameSlice:   "slice",
	remote.FrameHeal:    "heal",
	remote.FrameHealAck: "healack",
}

// phase indices into gatewayMetrics.phase.
const (
	phaseAuth = iota
	phaseExpand
	phaseSearch
	numPhases
)

var phaseNames = [numPhases]string{"auth", "expand", "search"}

// gatewayMetrics is every gateway metric, pre-resolved at construction so
// the session hot path touches only atomics — never the registry, never
// a label-map lookup. The registry these live in is the single source of
// truth; Gateway.Snapshot reads them back, it does not count separately.
type gatewayMetrics struct {
	sessionsStarted  *obs.Counter
	sessionsAccepted *obs.Counter
	sessionsFailed   *obs.Counter
	shedCapacity     *obs.Counter // BUSY at the slot limit
	shedBreaker      *obs.Counter // BUSY from an open breaker

	verdictOK           *obs.Counter
	verdictAttack       *obs.Counter
	verdictInconclusive *obs.Counter
	rejections          [verify.NumReasons]*obs.Counter
	decodeErrors        [pipeline.NumDecodeErrs]*obs.Counter

	bytesIn   *obs.Counter
	bytesOut  *obs.Counter
	framesIn  [len(frameNames)]*obs.Counter
	framesOut [len(frameNames)]*obs.Counter

	verifySeconds *obs.Histogram
	phase         [numPhases]*obs.Histogram
	stage         [obs.NumStages]*obs.Histogram

	streamSessions  *obs.Counter
	streamSlices    *obs.Counter
	streamAlarms    [5]*obs.Counter // by verify.SliceStatus (definitive classes only)
	streamEarlyCuts *obs.Counter
	streamTagBreaks *obs.Counter
	sliceSeconds    *obs.Histogram
	healDirectives  [4]*obs.Counter // by remote.HealDirective
	healAcks        *obs.Counter

	minedSessions   *obs.Counter
	dictPromotions  *obs.Counter
	dictQuarantines *obs.Counter

	panicsRecovered  *obs.Counter
	breakerOpens     *obs.Counter
	breakerHalfOpens *obs.Counter
	breakerCloses    *obs.Counter
	proverRetries    *obs.Counter
}

// registerMetrics installs the gateway's families into g's observer
// registry. Concrete counters/histograms carry the hot-path counts;
// values that already live elsewhere — slot occupancy, queue depth,
// cache totals, dictionary sizes, breaker states — are func-backed and
// evaluated only at scrape time, so there is no second counting system
// to drift.
func (g *Gateway) registerMetrics() *gatewayMetrics {
	r := g.obs.Registry()
	m := &gatewayMetrics{}

	m.sessionsStarted = r.Counter("raptrack_sessions_started_total",
		"Connections handled, including shed ones.")
	m.sessionsAccepted = r.Counter("raptrack_sessions_accepted_total",
		"Sessions that won a slot.")
	m.sessionsFailed = r.Counter("raptrack_sessions_failed_total",
		"Accepted sessions that errored out (timeout, protocol, bad evidence).")
	shed := r.CounterVec("raptrack_sessions_shed_total",
		"Sessions answered with one BUSY frame and closed, by cause.", "cause")
	m.shedCapacity = shed.With("capacity")
	m.shedBreaker = shed.With("breaker")
	r.GaugeFunc("raptrack_active_sessions",
		"Sessions currently holding a slot.",
		func() float64 { return float64(len(g.slots)) })
	r.GaugeFunc("raptrack_verify_queue_depth",
		"Verification jobs waiting for a pool worker.",
		func() float64 { return float64(len(g.jobs)) })

	verdicts := r.CounterVec("raptrack_verdicts_total",
		"Session verdicts delivered, by class.", "verdict")
	m.verdictOK = verdicts.With("ok")
	m.verdictAttack = verdicts.With("attack")
	m.verdictInconclusive = verdicts.With("inconclusive")
	rej := r.CounterVec("raptrack_rejections_total",
		"Non-OK verdicts by typed reason code.", "reason")
	for code := verify.ReasonCode(0); code < verify.NumReasons; code++ {
		m.rejections[code] = rej.With(code.String())
	}
	dec := r.CounterVec("raptrack_decode_errors_total",
		"Evidence decode failures by typed pipeline code (wrap-loss counts Inconclusive verdicts).", "code")
	for code := pipeline.DecodeErr(0); code < pipeline.NumDecodeErrs; code++ {
		m.decodeErrors[code] = dec.With(code.String())
	}

	bytes := r.CounterVec("raptrack_io_bytes_total",
		"Session transport bytes, by direction.", "dir")
	m.bytesIn = bytes.With("in")
	m.bytesOut = bytes.With("out")
	frames := r.CounterVec("raptrack_frames_total",
		"Protocol frames, by direction and frame type.", "dir", "type")
	for typ, name := range frameNames {
		if name == "" {
			continue
		}
		m.framesIn[typ] = frames.With("in", name)
		m.framesOut[typ] = frames.With("out", name)
	}

	m.verifySeconds = r.Histogram("raptrack_verify_seconds",
		"Worker-pool wall time of one verification (auth + expand + reconstruction).",
		verifyBounds)
	phases := r.HistogramVec("raptrack_verify_phase_seconds",
		"Verification wall time attributed to phases (auth, expand, search).",
		verifyBounds, "phase")
	for i, name := range phaseNames {
		m.phase[i] = phases.With(name)
	}
	stages := r.HistogramVec("raptrack_stage_seconds",
		"Session wall time per protocol stage.", stageBounds, "stage")
	for s := obs.Stage(0); s < obs.NumStages; s++ {
		m.stage[s] = stages.With(s.String())
	}

	m.streamSessions = r.Counter("raptrack_stream_sessions_total",
		"Sessions delivering evidence as SLICE frames (streaming attestation).")
	m.streamSlices = r.Counter("raptrack_stream_slices_total",
		"Evidence slices fed through streaming verification.")
	alarms := r.CounterVec("raptrack_stream_alarms_total",
		"Definitive non-OK slice judgments raised mid-stream, by class.", "class")
	for _, st := range []verify.SliceStatus{verify.SliceInconclusive, verify.SliceSuspect, verify.SliceReject} {
		m.streamAlarms[st] = alarms.With(st.String())
	}
	m.streamEarlyCuts = r.Counter("raptrack_stream_early_cuts_total",
		"Streaming sessions sealed before their final slice (chain-level rejects).")
	m.streamTagBreaks = r.Counter("raptrack_stream_tag_breaks_total",
		"SLICE frames whose running authentication tag broke the session chain.")
	m.sliceSeconds = r.Histogram("raptrack_stream_slice_verify_seconds",
		"Worker-pool wall time of one slice feed (incremental auth + prefix walk).",
		stageBounds)
	heals := r.CounterVec("raptrack_heal_directives_total",
		"HEAL directives pushed to devices, by directive.", "directive")
	for d := remote.HealQuarantine; d <= remote.HealReattest; d++ {
		m.healDirectives[d] = heals.With(d.String())
	}
	m.healAcks = r.Counter("raptrack_heal_acks_total",
		"HEAL directives acknowledged by devices.")
	r.GaugeVecFunc("raptrack_heal_devices",
		"Devices currently tracked by the healing state machine, by state.",
		[]string{"state"}, func() []obs.Sample {
			counts := g.heals.counts()
			samples := make([]obs.Sample, 0, 3)
			for st := HealSuspect; st <= HealHealing; st++ {
				samples = append(samples, obs.Sample{
					Labels: []string{st.String()},
					Value:  float64(counts[st]),
				})
			}
			return samples
		})

	m.minedSessions = r.Counter("raptrack_mined_sessions_total",
		"Accepted sessions whose evidence was mined for hot sub-paths.")
	m.dictPromotions = r.Counter("raptrack_dict_promotions_total",
		"Sub-paths promoted into live dictionaries.")
	m.dictQuarantines = r.Counter("raptrack_dict_quarantines_total",
		"Mined dictionaries discarded by the promotion self-check.")
	r.GaugeFunc("raptrack_dict_paths",
		"Live dictionary paths across registered apps.",
		func() float64 { return float64(g.dictPaths()) })

	r.CounterFunc("raptrack_cache_hits_total",
		"Verdict/segment cache hits across apps (shared caches counted once).",
		func() float64 { return float64(g.cacheTotals().Hits) })
	r.CounterFunc("raptrack_cache_misses_total",
		"Verdict/segment cache misses across apps.",
		func() float64 { return float64(g.cacheTotals().Misses) })
	r.CounterFunc("raptrack_cache_evictions_total",
		"Verdict/segment cache evictions across apps.",
		func() float64 { return float64(g.cacheTotals().Evictions) })
	r.GaugeFunc("raptrack_cache_entries",
		"Verdict/segment cache entries resident across apps.",
		func() float64 { return float64(g.cacheTotals().Entries) })
	r.GaugeFunc("raptrack_cache_bytes",
		"Verdict/segment cache bytes resident across apps.",
		func() float64 { return float64(g.cacheTotals().Bytes) })

	// Automaton engine activity lives in per-app verify.AutomatonCounters
	// (so DICT-bump recompiles keep the counts monotonic); like the cache
	// totals, the registry views are func-backed and summed at scrape time.
	r.CounterFunc("raptrack_automaton_decodes_total",
		"Evidence streams decoded by the compiled automaton engine.",
		func() float64 { return float64(g.autTotals().Decodes) })
	r.CounterFunc("raptrack_automaton_accepts_total",
		"Automaton decodes that accepted (verdict authority; no interpreter run).",
		func() float64 { return float64(g.autTotals().Accepts) })
	r.CounterFunc("raptrack_automaton_nopaths_total",
		"Automaton decodes that exhausted every derivation (interpreter re-ran and rendered the reject).",
		func() float64 { return float64(g.autTotals().NoPaths) })
	r.CounterFunc("raptrack_automaton_fallbacks_total",
		"Automaton decodes that gave up without exhausting the space (interpreter re-ran).",
		func() float64 { return float64(g.autTotals().Fallbacks) })
	r.CounterFunc("raptrack_automaton_rescues_total",
		"Automaton accepts recovered by the tabulating rescue pass after speculative fallback.",
		func() float64 { return float64(g.autTotals().Rescues) })
	r.CounterFunc("raptrack_automaton_steps_total",
		"Transition-table rows visited across automaton decodes.",
		func() float64 { return float64(g.autTotals().Steps) })
	r.CounterFunc("raptrack_automaton_backtracks_total",
		"Speculative checkpoints rewound across automaton decodes.",
		func() float64 { return float64(g.autTotals().Backtracks) })
	r.CounterFunc("raptrack_automaton_compiles_total",
		"Automaton table compilations, including O(dictionary) DICT-bump rebinds.",
		func() float64 { return float64(g.autTotals().Compiles) })
	r.CounterFunc("raptrack_automaton_compile_seconds_total",
		"Wall time spent compiling automaton tables.",
		func() float64 { return float64(g.autTotals().CompileNanos) / 1e9 })
	r.GaugeFunc("raptrack_automaton_table_bytes",
		"Resident transition-table bytes across the apps' live automata.",
		func() float64 { return float64(g.autTableBytes()) })

	m.panicsRecovered = r.Counter("raptrack_panics_recovered_total",
		"Session/worker panics caught and converted to errors.")
	brk := r.CounterVec("raptrack_breaker_transitions_total",
		"Circuit-breaker transitions, by event.", "event")
	m.breakerOpens = brk.With("open")
	m.breakerHalfOpens = brk.With("half_open")
	m.breakerCloses = brk.With("close")
	r.GaugeVecFunc("raptrack_breaker_state",
		"Per-app circuit-breaker state (0 closed, 1 open, 2 half-open).",
		[]string{"app"}, func() []obs.Sample {
			g.mu.Lock()
			samples := make([]obs.Sample, 0, len(g.apps))
			for name, st := range g.apps {
				samples = append(samples, obs.Sample{
					Labels: []string{name},
					Value:  float64(st.brk.current()),
				})
			}
			g.mu.Unlock()
			return samples
		})
	m.proverRetries = r.Counter("raptrack_prover_retries_total",
		"Prover-side retries reported via ObserveProverRetries.")

	return m
}

// span records one session stage into both views at once: the trace (the
// per-session timeline behind /debug/sessions) and the per-stage latency
// histogram (the fleet aggregate behind /metrics).
func (g *Gateway) span(t *obs.Trace, s obs.Stage, start, d time.Duration) {
	if start < 0 {
		t.Record(s, d)
	} else {
		t.RecordAt(s, start, d)
	}
	g.m.stage[s].ObserveDuration(d)
}

// cacheTotals aggregates cache effectiveness across the registered apps;
// a cache shared by several apps is counted once.
func (g *Gateway) cacheTotals() verify.CacheStats {
	var total verify.CacheStats
	g.mu.Lock()
	defer g.mu.Unlock()
	seen := make(map[*verify.Cache]bool, len(g.apps))
	for _, st := range g.apps {
		if st.cache == nil || seen[st.cache] {
			continue
		}
		seen[st.cache] = true
		cs := st.cache.Stats()
		total.Hits += cs.Hits
		total.Misses += cs.Misses
		total.Evictions += cs.Evictions
		total.Entries += cs.Entries
		total.Bytes += cs.Bytes
	}
	return total
}

// autSums is one scrape-time aggregation of the per-app automaton
// counter blocks (plain values, not atomics).
type autSums struct {
	Decodes, Accepts, NoPaths, Fallbacks, Rescues uint64
	Steps, Backtracks                             uint64
	Compiles, CompileNanos                        uint64
}

// autTotals sums automaton engine activity across registered apps.
func (g *Gateway) autTotals() autSums {
	var t autSums
	g.mu.Lock()
	for _, st := range g.apps {
		c := st.autCtrs
		if c == nil {
			continue
		}
		t.Decodes += c.Decodes.Load()
		t.Accepts += c.Accepts.Load()
		t.NoPaths += c.NoPaths.Load()
		t.Fallbacks += c.Fallbacks.Load()
		t.Rescues += c.Rescues.Load()
		t.Steps += c.Steps.Load()
		t.Backtracks += c.Backtracks.Load()
		t.Compiles += c.Compiles.Load()
		t.CompileNanos += c.CompileNanos.Load()
	}
	g.mu.Unlock()
	return t
}

// autTableBytes sums the resident transition tables of the apps' live
// (current dictionary version) automata.
func (g *Gateway) autTableBytes() int64 {
	var n int64
	g.mu.Lock()
	for _, st := range g.apps {
		if aut := st.dict.Load().aut; aut != nil {
			n += aut.Stats().TableBytes
		}
	}
	g.mu.Unlock()
	return n
}

// dictPaths sums the live dictionary sizes across registered apps.
func (g *Gateway) dictPaths() int {
	n := 0
	g.mu.Lock()
	for _, st := range g.apps {
		n += st.dict.Load().dict.Len()
	}
	g.mu.Unlock()
	return n
}
