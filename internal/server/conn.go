package server

import (
	"net"
	"time"

	"raptrack/internal/obs"
)

// timedConn enforces the gateway's availability policy at the transport:
// every Read/Write gets a fresh per-I/O deadline, capped by the overall
// session deadline, and moves the registry byte counters. A peer that
// stalls trips the I/O deadline; a peer that dribbles bytes forever to
// keep the I/O deadline fresh still dies at the session deadline.
type timedConn struct {
	net.Conn
	ioTimeout time.Duration
	end       time.Time // session deadline (absolute)
	bytesIn   *obs.Counter
	bytesOut  *obs.Counter
}

func (c *timedConn) frameDeadline() time.Time {
	d := time.Now().Add(c.ioTimeout)
	if d.After(c.end) {
		return c.end
	}
	return d
}

func (c *timedConn) Read(p []byte) (int, error) {
	if err := c.Conn.SetReadDeadline(c.frameDeadline()); err != nil {
		return 0, err
	}
	n, err := c.Conn.Read(p)
	c.bytesIn.Add(uint64(n))
	return n, err
}

func (c *timedConn) Write(p []byte) (int, error) {
	if err := c.Conn.SetWriteDeadline(c.frameDeadline()); err != nil {
		return 0, err
	}
	n, err := c.Conn.Write(p)
	c.bytesOut.Add(uint64(n))
	return n, err
}
