// Package server implements a concurrent attestation gateway: the
// Verifier side of the internal/remote protocol as a network service that
// many prover devices dial into simultaneously — the continuous
// fleet-auditing deployment that CFA papers (TRACES, ACFA) frame and that
// a single blocking RequestAttestation cannot serve.
//
// Session flow (device side speaks remote.AttestTo):
//
//	device  -> HELO v|app      announce protocol version + provisioned app
//	gateway -> [DICT] CHAL     live SpecCFA dictionary (when non-empty),
//	        |  BUSY            then a fresh challenge; or shed at capacity
//	device  -> RPRT* (Final)   signed (partial) report chain
//	gateway -> VRDT | FAIL     verdict summary (typed reason code), or
//	                           session error
//
// Three availability mechanisms keep a stalled or malicious device from
// wedging the service (they are availability defenses only — evidence
// integrity rests on the report authenticators, not the transport):
//
//   - a max-concurrent-sessions slot limit with graceful shedding: beyond
//     the cap, a connection is answered with one BUSY frame and closed;
//   - per-I/O read/write deadlines plus an overall session deadline,
//     enforced on every frame via the timedConn wrapper;
//   - a bounded worker pool owning the CPU-heavy path reconstruction
//     (verify.Verifier.Verify), so session goroutines queue for
//     verification (backpressure) instead of oversubscribing the host,
//     and the accept loop never blocks on verification at all.
//
// One immutable verify.Verifier per app is shared by all sessions (see
// the concurrency contract on verify.Verifier).
//
// # Fast path
//
// Each registered app gets a shared verify.Cache (unless disabled), so
// concurrent and successive sessions attesting identical firmware reuse
// pushdown work; and after accepted verdicts the gateway periodically
// mines the consumed evidence for hot sub-paths (speccfa.Mine), promoting
// them into a live dictionary delivered to provers in the DICT handshake
// frame — future CFLogs shrink without re-provisioning devices.
package server

import (
	"errors"
	"fmt"
	"net"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"raptrack/internal/attest"
	"raptrack/internal/remote"
	"raptrack/internal/speccfa"
	"raptrack/internal/verify"
)

// Config tunes a Gateway. Zero values select the documented defaults.
type Config struct {
	// MaxSessions caps concurrently served sessions; further connections
	// are shed with a BUSY frame (default 64).
	MaxSessions int
	// VerifyWorkers sizes the reconstruction worker pool (default
	// GOMAXPROCS).
	VerifyWorkers int
	// VerifyQueue bounds verification jobs waiting for a worker; beyond
	// it, session goroutines block — backpressure — until their session
	// deadline (default 2 * VerifyWorkers).
	VerifyQueue int
	// SessionTimeout bounds one whole session, connection to verdict
	// (default 30s).
	SessionTimeout time.Duration
	// IOTimeout bounds each read/write (default 10s).
	IOTimeout time.Duration
	// OnSessionError, when non-nil, observes per-session failures
	// (diagnostics; the session is already counted in Stats).
	OnSessionError func(remoteAddr string, err error)

	// BusyRetryAfter is the retry-after hint carried in capacity-shed BUSY
	// frames (0: no hint — the frame is wire-identical to protocol v2's
	// empty BUSY, so old provers are unaffected).
	BusyRetryAfter time.Duration
	// BreakerThreshold opens an app's circuit breaker after this many
	// consecutive verification *errors* — malformed/inauthentic evidence or
	// recovered verify panics, never attack verdicts (0: default 8;
	// negative: breaker disabled).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker sheds the app's sessions
	// before admitting a half-open probe (default 2s).
	BreakerCooldown time.Duration

	// VerifyHook, when non-nil, runs on the worker goroutine immediately
	// before each verification (chaos injection: panics and stalls land
	// exactly where a verifier bug would).
	VerifyHook func(app string)
	// DictFault, when non-nil, may rewrite a mined dictionary's encoded
	// bytes before the promotion self-check (chaos injection for the
	// quarantine path).
	DictFault func([]byte) []byte

	// CacheBytes bounds the per-app verification summary cache (0: 64 MiB
	// default; negative: no cache is attached at Register).
	CacheBytes int64
	// MineEvery runs speccfa.Mine on the evidence of every MineEvery-th
	// accepted session per app, starting with the first (0: default 16;
	// negative: mining off).
	MineEvery int
	// MinePaths caps the sub-paths one mining pass may surface (default 8).
	MinePaths int
	// MaxDictPaths caps the live dictionary a mining promotion may grow to
	// (default 32; hard limit speccfa.MaxPaths).
	MaxDictPaths int
}

func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 64
	}
	if c.VerifyWorkers <= 0 {
		c.VerifyWorkers = runtime.GOMAXPROCS(0)
	}
	if c.VerifyQueue <= 0 {
		c.VerifyQueue = 2 * c.VerifyWorkers
	}
	if c.SessionTimeout <= 0 {
		c.SessionTimeout = 30 * time.Second
	}
	if c.IOTimeout <= 0 {
		c.IOTimeout = 10 * time.Second
	}
	if c.MineEvery == 0 {
		c.MineEvery = 16
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 8
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	if c.MinePaths <= 0 {
		c.MinePaths = 8
	}
	if c.MaxDictPaths <= 0 || c.MaxDictPaths > speccfa.MaxPaths {
		c.MaxDictPaths = 32
	}
	return c
}

// appState is everything the gateway holds per registered application:
// the shared Verifier (cache-attached), and the live speculation
// dictionary swapped atomically by mining promotions. Sessions load the
// dictionary pointer once and use that snapshot for both delivery and
// expansion, so a promotion mid-session cannot desynchronize the two.
type appState struct {
	name     string
	verifier *verify.Verifier
	cache    *verify.Cache // nil when caching is disabled

	dict     atomic.Pointer[dictState]
	dictMu   sync.Mutex    // serializes mining promotions
	accepted atomic.Uint64 // accepted sessions (mining cadence)

	// brk sheds the app's sessions while its verify path is erroring
	// (see Config.BreakerThreshold).
	brk breaker
}

// dictState is one immutable version of an app's live dictionary.
type dictState struct {
	version uint64
	dict    *speccfa.Dictionary
	encoded []byte // DICT frame payload (nil when the dictionary is empty)
}

// verifyJob is one reconstruction request handed to the worker pool.
type verifyJob struct {
	app     *appState
	chal    attest.Challenge
	reports []*attest.Report
	dict    *speccfa.Dictionary // session dictionary snapshot
	resp    chan verifyResult   // buffered(1): workers never block on delivery
}

type verifyResult struct {
	verdict *verify.Verdict
	err     error
}

// Gateway is a concurrent attestation server. Construct with New,
// Register verifiers, then Serve one or more listeners; Close drains.
type Gateway struct {
	cfg Config

	mu        sync.Mutex
	apps      map[string]*appState
	listeners []net.Listener
	closed    bool // guarded by mu; set exactly once by Close

	slots chan struct{} // session slot semaphore (cap MaxSessions)
	jobs  chan verifyJob

	sessions sync.WaitGroup
	workers  sync.WaitGroup

	st counters
}

// New builds a gateway and starts its verification worker pool.
func New(cfg Config) *Gateway {
	cfg = cfg.withDefaults()
	g := &Gateway{
		cfg:   cfg,
		apps:  make(map[string]*appState),
		slots: make(chan struct{}, cfg.MaxSessions),
		jobs:  make(chan verifyJob, cfg.VerifyQueue),
	}
	g.workers.Add(cfg.VerifyWorkers)
	for i := 0; i < cfg.VerifyWorkers; i++ {
		go g.worker()
	}
	return g
}

// Register provisions the shared Verifier for one application. Unless
// caching is disabled (Config.CacheBytes < 0) a summary cache is attached
// — the Verifier's own if it already carries one, a fresh per-app cache
// otherwise — and the Verifier's provisioned speculation dictionary seeds
// the app's live dictionary. Safe to call while serving; re-registering
// replaces (and resets the live dictionary and mining cadence).
func (g *Gateway) Register(app string, v *verify.Verifier) {
	if g.cfg.CacheBytes >= 0 && v.Cache() == nil {
		v = v.With(verify.WithCache(verify.NewCache(g.cfg.CacheBytes)))
	}
	st := &appState{
		name:     app,
		verifier: v,
		cache:    v.Cache(),
		brk:      breaker{threshold: g.cfg.BreakerThreshold, cooldown: g.cfg.BreakerCooldown},
	}
	st.dict.Store(newDictState(0, v.Speculation()))
	g.mu.Lock()
	g.apps[app] = st
	g.mu.Unlock()
}

func newDictState(version uint64, d *speccfa.Dictionary) *dictState {
	ds := &dictState{version: version, dict: d}
	if d.Len() > 0 {
		ds.encoded = d.Encode()
	}
	return ds
}

func (g *Gateway) app(name string) *appState {
	g.mu.Lock()
	st := g.apps[name]
	g.mu.Unlock()
	return st
}

// ErrClosed is returned by Serve on a gateway that was already closed.
var ErrClosed = errors.New("server: gateway closed")

// Serve accepts sessions on l until Close (then returns nil) or a fatal
// accept error. Each connection is served on its own goroutine; the
// accept loop itself never runs protocol I/O or verification.
func (g *Gateway) Serve(l net.Listener) error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return ErrClosed
	}
	g.listeners = append(g.listeners, l)
	g.mu.Unlock()

	for {
		conn, err := l.Accept()
		if err != nil {
			if g.isClosed() {
				return nil
			}
			return fmt.Errorf("server: accept: %w", err)
		}
		// The session WaitGroup Add and the Close flag share the mutex:
		// either this Add happens before Close's Wait, or Close already
		// ran and the connection is dropped.
		g.mu.Lock()
		if g.closed {
			g.mu.Unlock()
			conn.Close()
			return nil
		}
		g.sessions.Add(1)
		g.mu.Unlock()
		go func() {
			defer g.sessions.Done()
			g.handleConn(conn)
		}()
	}
}

func (g *Gateway) isClosed() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.closed
}

// Close stops accepting, waits for in-flight sessions, and drains the
// worker pool. Idempotent.
func (g *Gateway) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	g.closed = true
	ls := g.listeners
	g.listeners = nil
	g.mu.Unlock()
	for _, l := range ls {
		_ = l.Close()
	}
	g.sessions.Wait()
	close(g.jobs)
	g.workers.Wait()
	return nil
}

// Stats snapshots the gateway counters, aggregating cache effectiveness
// across the registered apps (a cache shared by several apps is counted
// once).
func (g *Gateway) Stats() Stats {
	s := g.st.snapshot(len(g.slots))
	g.mu.Lock()
	seen := make(map[*verify.Cache]bool, len(g.apps))
	for _, st := range g.apps {
		s.DictPaths += st.dict.Load().dict.Len()
		if st.cache == nil || seen[st.cache] {
			continue
		}
		seen[st.cache] = true
		cs := st.cache.Stats()
		s.CacheHits += cs.Hits
		s.CacheMisses += cs.Misses
		s.CacheEvictions += cs.Evictions
		s.CacheEntries += cs.Entries
		s.CacheBytes += cs.Bytes
	}
	g.mu.Unlock()
	return s
}

// handleConn runs one session: acquire a slot or shed, then speak the
// protocol under deadlines.
func (g *Gateway) handleConn(conn net.Conn) {
	defer conn.Close()
	g.st.started.Add(1)

	select {
	case g.slots <- struct{}{}:
		defer func() { <-g.slots }()
	default:
		// At capacity: one best-effort BUSY frame, then hang up. The
		// write gets its own short deadline so a non-reading client
		// cannot pin this goroutine either.
		g.st.rejected.Add(1)
		_ = conn.SetWriteDeadline(time.Now().Add(g.cfg.IOTimeout))
		_ = remote.WriteFrame(conn, remote.FrameBusy, remote.EncodeBusy(g.cfg.BusyRetryAfter))
		return
	}

	g.st.accepted.Add(1)
	deadline := time.Now().Add(g.cfg.SessionTimeout)
	tc := &timedConn{Conn: conn, ioTimeout: g.cfg.IOTimeout, end: deadline, st: &g.st}
	if err := g.safeSession(tc, deadline); err != nil {
		g.st.failed.Add(1)
		if g.cfg.OnSessionError != nil {
			g.cfg.OnSessionError(conn.RemoteAddr().String(), err)
		}
	}
}

// safeSession runs session under a panic guard: one berserk session
// (protocol handler bug, injected fault) is recovered, counted, and
// reported as a session error instead of killing the whole gateway.
func (g *Gateway) safeSession(tc *timedConn, deadline time.Time) (err error) {
	defer func() {
		if p := recover(); p != nil {
			g.st.panicsRecovered.Add(1)
			err = fmt.Errorf("server: session panicked: %v", p)
		}
	}()
	return g.session(tc, deadline)
}

// session speaks one gateway session on an already-admitted connection.
func (g *Gateway) session(tc *timedConn, deadline time.Time) error {
	typ, payload, err := remote.ReadFrame(tc)
	if err != nil {
		return fmt.Errorf("server: reading hello: %w", err)
	}
	if typ != remote.FrameHello {
		_ = remote.WriteFrame(tc, remote.FrameFail, []byte("expected hello frame"))
		return fmt.Errorf("server: expected hello frame, got type %d", typ)
	}
	app, err := remote.ParseHello(payload)
	if err != nil {
		_ = remote.WriteFrame(tc, remote.FrameFail, []byte(err.Error()))
		return fmt.Errorf("server: %w", err)
	}
	st := g.app(app)
	if st == nil {
		_ = remote.WriteFrame(tc, remote.FrameFail, []byte(fmt.Sprintf("unknown application %q", app)))
		return fmt.Errorf("server: unknown application %q", app)
	}

	// Circuit breaker: while the app's verify path is erroring, shed with a
	// BUSY carrying the remaining cooldown — a graceful degradation, not a
	// session failure.
	admitted, probe, retryAfter := st.brk.admit(time.Now())
	if !admitted {
		g.st.breakerSheds.Add(1)
		if retryAfter <= 0 {
			retryAfter = g.cfg.BusyRetryAfter
		}
		_ = remote.WriteFrame(tc, remote.FrameBusy, remote.EncodeBusy(retryAfter))
		return nil
	}
	enqueued := false
	if probe {
		g.st.breakerHalfOpens.Add(1)
		// A probe that dies before its evidence reaches a worker decides
		// nothing; release the half-open slot for the next candidate.
		defer func() {
			if !enqueued {
				st.brk.abort()
			}
		}()
	}

	// One dictionary snapshot rules the whole session: what the prover
	// compresses with is exactly what the verifier expands with, even if a
	// mining promotion swaps the live pointer mid-flight.
	ds := st.dict.Load()
	if len(ds.encoded) > 0 {
		if err := remote.WriteFrame(tc, remote.FrameDict, ds.encoded); err != nil {
			return fmt.Errorf("server: sending dictionary: %w", err)
		}
	}

	chal, err := attest.NewChallenge(app)
	if err != nil {
		_ = remote.WriteFrame(tc, remote.FrameFail, []byte("challenge generation failed"))
		return err
	}
	if err := remote.WriteFrame(tc, remote.FrameChal, chal.Encode()); err != nil {
		return fmt.Errorf("server: sending challenge: %w", err)
	}
	reports, err := remote.CollectReports(tc)
	if err != nil {
		return err
	}

	verdict, sent, err := g.verify(st, chal, reports, ds.dict, deadline)
	enqueued = sent
	if err != nil {
		_ = remote.WriteFrame(tc, remote.FrameFail, []byte(err.Error()))
		return err
	}
	switch {
	case verdict.OK:
		g.st.verdictOK.Add(1)
	case verdict.Code == verify.ReasonInconclusive:
		// Authentic evidence attesting its own loss (MTB wrap / arming
		// drop): neither accept nor attack — the device should re-attest.
		g.st.verdictInconclusive.Add(1)
		g.st.rejectedByCode[verdict.Code].Add(1)
	default:
		g.st.verdictAttack.Add(1)
		if verdict.Code.Valid() {
			g.st.rejectedByCode[verdict.Code].Add(1)
		}
	}
	if err := remote.WriteFrame(tc, remote.FrameVerdict, remote.EncodeVerdict(verdict.OK, verdict.Code, verdict.Detail)); err != nil {
		return fmt.Errorf("server: sending verdict: %w", err)
	}
	return nil
}

// verify hands the reconstruction to the worker pool and waits for the
// result, but never past the session deadline: a saturated pool exerts
// backpressure here, not in the accept or read loops. enqueued reports
// whether the job reached the pool (every enqueued job is recorded by the
// app's circuit breaker exactly once, even if this session stops waiting).
func (g *Gateway) verify(st *appState, chal attest.Challenge, reports []*attest.Report, dict *speccfa.Dictionary, deadline time.Time) (vd *verify.Verdict, enqueued bool, err error) {
	job := verifyJob{app: st, chal: chal, reports: reports, dict: dict, resp: make(chan verifyResult, 1)}
	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
	select {
	case g.jobs <- job:
	case <-timer.C:
		return nil, false, errors.New("server: verification queue full past session deadline")
	}
	select {
	case r := <-job.resp:
		if r.err != nil {
			return nil, true, fmt.Errorf("server: malformed or inauthentic evidence: %w", r.err)
		}
		return r.verdict, true, nil
	case <-timer.C:
		// The worker finishes and delivers into the buffered channel;
		// only this session stops waiting.
		return nil, true, errors.New("server: verification exceeded session deadline")
	}
}

func (g *Gateway) worker() {
	defer g.workers.Done()
	for job := range g.jobs {
		g.runJob(job)
	}
}

// runJob verifies one session's evidence on a worker goroutine. A panic
// out of the verifier (or an injected VerifyHook fault) is recovered into
// an ordinary verify error: one poisoned session must not take down a
// pool worker and with it the gateway's verification capacity. Every job
// is delivered and breaker-recorded exactly once.
func (g *Gateway) runJob(job verifyJob) {
	start := time.Now()
	var res verifyResult
	func() {
		defer func() {
			if p := recover(); p != nil {
				g.st.panicsRecovered.Add(1)
				res = verifyResult{err: fmt.Errorf("server: verification panicked: %v", p)}
			}
		}()
		if h := g.cfg.VerifyHook; h != nil {
			h(job.app.name)
		}
		res.verdict, res.err = job.app.verifier.VerifyWithDictionary(job.chal, job.reports, job.dict)
	}()
	g.st.observeVerify(time.Since(start))
	if opened, closed := job.app.brk.record(res.err != nil, time.Now()); opened {
		g.st.breakerOpens.Add(1)
	} else if closed {
		g.st.breakerCloses.Add(1)
	}
	job.resp <- res
	if res.err == nil && res.verdict.OK {
		// Mine after delivery: the session is not kept waiting on
		// dictionary work.
		g.maybeMine(job.app, res.verdict)
	}
}

// maybeMine runs the online mining cadence for one accepted verdict: every
// MineEvery-th acceptance per app (starting with the first) the consumed
// evidence is mined and new hot sub-paths are promoted into the app's live
// dictionary, to be delivered to the next sessions' provers.
func (g *Gateway) maybeMine(st *appState, vd *verify.Verdict) {
	if g.cfg.MineEvery <= 0 {
		return
	}
	n := st.accepted.Add(1)
	if (n-1)%uint64(g.cfg.MineEvery) != 0 {
		return
	}
	g.st.minedSessions.Add(1)
	mined, err := speccfa.Mine(vd.Evidence, g.cfg.MinePaths, 2, 8)
	if err != nil || mined.Len() == 0 {
		return
	}
	st.dictMu.Lock()
	defer st.dictMu.Unlock()
	cur := st.dict.Load()
	merged, added, err := speccfa.Merge(cur.dict, mined, g.cfg.MaxDictPaths)
	if err != nil || added == 0 {
		return
	}
	// Promotion self-check: the exact bytes that would go out in DICT
	// frames must decode back to a dictionary that round-trips this
	// session's evidence. A dictionary that fails (bit rot, encoder bug,
	// injected DictFault) is quarantined — the live dictionary stays on the
	// last good version and never reaches a prover handshake.
	encoded := merged.Encode()
	if f := g.cfg.DictFault; f != nil {
		encoded = f(encoded)
	}
	checked, err := speccfa.DecodeDictionary(encoded)
	if err != nil {
		g.st.dictQuarantines.Add(1)
		return
	}
	rt, err := checked.Decompress(checked.Compress(vd.Evidence))
	if err != nil || !slices.Equal(rt, vd.Evidence) {
		g.st.dictQuarantines.Add(1)
		return
	}
	// Store the dictionary decoded FROM the checked bytes: provers (DICT
	// frame) and the verifier (expansion) derive from identical bits.
	st.dict.Store(&dictState{version: cur.version + 1, dict: checked, encoded: encoded})
	g.st.dictPromotions.Add(uint64(added))
}

// ObserveProverRetries folds prover-side retry counts into the gateway
// stats — deployments (and the serve selftest) report how many extra
// attempts their AttestWithRetry loops spent reaching a verdict.
func (g *Gateway) ObserveProverRetries(n uint64) {
	if n > 0 {
		g.st.proverRetries.Add(n)
	}
}
