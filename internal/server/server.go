// Package server implements a concurrent attestation gateway: the
// Verifier side of the internal/remote protocol as a network service that
// many prover devices dial into simultaneously — the continuous
// fleet-auditing deployment that CFA papers (TRACES, ACFA) frame and that
// a single blocking RequestAttestation cannot serve.
//
// Session flow (device side speaks remote.Client.Attest):
//
//	device  -> HELO v|app      announce protocol version + provisioned app
//	gateway -> [DICT] CHAL     live SpecCFA dictionary (when non-empty),
//	        |  BUSY            then a fresh challenge; or shed at capacity
//	device  -> RPRT* (Final)   signed (partial) report chain
//	gateway -> VRDT | FAIL     verdict summary (typed reason code), or
//	                           session error
//
// Three availability mechanisms keep a stalled or malicious device from
// wedging the service (they are availability defenses only — evidence
// integrity rests on the report authenticators, not the transport):
//
//   - a max-concurrent-sessions slot limit with graceful shedding: beyond
//     the cap, a connection is answered with one BUSY frame and closed;
//   - per-I/O read/write deadlines plus an overall session deadline,
//     enforced on every frame via the timedConn wrapper;
//   - a bounded worker pool owning the CPU-heavy path reconstruction
//     (verify.Verifier.Verify), so session goroutines queue for
//     verification (backpressure) instead of oversubscribing the host,
//     and the accept loop never blocks on verification at all.
//
// One immutable verify.Verifier per app is shared by all sessions (see
// the concurrency contract on verify.Verifier).
//
// # Observability
//
// Every count the gateway keeps lives in one obs.Registry (attach your
// own with WithObserver, e.g. to serve it via obs.AdminHandler): session
// and verdict counters, byte and frame counters, per-stage and per-phase
// latency histograms, plus scrape-time views of slot occupancy, queue
// depth, cache totals, dictionary sizes, and breaker states. Each
// session additionally leaves a span trace (accept → helo → dict_push →
// collect → verify → verdict_write) in the observer's per-app rings.
// Gateway.Snapshot reads the registry back into an immutable Stats
// value — there is no second counting system.
//
// # Fast path
//
// Each registered app gets a shared verify.Cache (unless disabled), so
// concurrent and successive sessions attesting identical firmware reuse
// pushdown work; and after accepted verdicts the gateway periodically
// mines the consumed evidence for hot sub-paths (speccfa.Mine), promoting
// them into a live dictionary delivered to provers in the DICT handshake
// frame — future CFLogs shrink without re-provisioning devices.
package server

import (
	"errors"
	"fmt"
	"net"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"raptrack/internal/attest"
	"raptrack/internal/obs"
	"raptrack/internal/remote"
	"raptrack/internal/speccfa"
	"raptrack/internal/trace/pipeline"
	"raptrack/internal/verify"
)

// appState is everything the gateway holds per registered application:
// the shared Verifier (cache-attached), and the live speculation
// dictionary swapped atomically by mining promotions. Sessions load the
// dictionary pointer once and use that snapshot for both delivery and
// expansion, so a promotion mid-session cannot desynchronize the two.
type appState struct {
	name     string
	verifier *verify.Verifier
	cache    *verify.Cache // nil when caching is disabled

	dict     atomic.Pointer[dictState]
	dictMu   sync.Mutex    // serializes mining promotions
	accepted atomic.Uint64 // accepted sessions (mining cadence)

	// autOn gates the compiled automaton engine for this app's sessions
	// (WithAutomaton); autCtrs outlives the per-dictState machines so
	// exported metrics stay monotonic across DICT-bump recompiles.
	autOn   bool
	autCtrs *verify.AutomatonCounters

	// brk sheds the app's sessions while its verify path is erroring
	// (see WithBreaker).
	brk breaker
}

// dictState is one immutable version of an app's live dictionary, paired
// with the automaton machine compiled against exactly that dictionary.
// Sessions load the pointer once, so a mining promotion mid-session can
// never hand a session a machine bound to a different dictionary than the
// one its prover compressed with (the per-session-snapshot invariant).
type dictState struct {
	version uint64
	dict    *speccfa.Dictionary
	encoded []byte            // DICT frame payload (nil when the dictionary is empty)
	aut     *verify.Automaton // machine bound to dict (nil: interpreter only)
}

// verifyJob is one reconstruction request handed to the worker pool.
type verifyJob struct {
	app         *appState
	device      string // session peer address (journal attribution)
	chal        attest.Challenge
	reports     []*attest.Report
	dict        *speccfa.Dictionary // session dictionary snapshot
	dictVersion uint64              // snapshot version (journal attribution)
	aut         *verify.Automaton   // machine compiled for dict (nil: interpreter)
	resp        chan verifyResult   // buffered(1): workers never block on delivery

	// exec, when set, replaces the default whole-evidence verification on
	// the worker (streaming sessions enqueue slice feeds and the seal this
	// way); it runs under the same panic guard and VerifyHook.
	exec func() verifyResult
	// finalize marks a job whose result is a session's authoritative
	// verdict: it gets the verify histograms, decode classification,
	// breaker record, journal commit, and mining treatment. Slice-feed
	// jobs are not finalize — only their session's seal is.
	finalize bool
}

type verifyResult struct {
	verdict *verify.Verdict
	err     error
}

// Gateway is a concurrent attestation server. Construct with New,
// Register verifiers, then Serve one or more listeners; Close drains.
type Gateway struct {
	cfg config
	obs *obs.Observer
	m   *gatewayMetrics

	mu        sync.Mutex
	apps      map[string]*appState
	listeners []net.Listener
	closed    bool // guarded by mu; set exactly once by Close

	slots chan struct{} // session slot semaphore (cap MaxSessions)
	jobs  chan verifyJob
	heals *healRegistry // per-device healing state machine (streaming)

	// dictBus, when set, receives mined dictionary promotions for
	// fleet-wide distribution instead of local installation (SetDictBus).
	dictBus atomic.Pointer[DictBus]

	sessions sync.WaitGroup
	workers  sync.WaitGroup
}

// DictBus receives locally mined, self-checked dictionary candidates for
// fleet-wide distribution. A gateway with a bus attached (SetDictBus)
// never installs its own promotions: the bus assigns a monotonic fleet
// epoch and installs the canonical merged dictionary on every replica —
// this gateway included — through AdoptDictionary, so all replicas step
// through one coherent version sequence. internal/router implements it.
type DictBus interface {
	// Propose offers the encoded candidate (already merged with this
	// gateway's live dictionary and round-trip self-checked against the
	// mined session's evidence). It may be called from verify-worker
	// goroutines and must not block on session work.
	Propose(app string, encoded []byte)
}

// SetDictBus attaches (or, with nil, detaches) the fleet dictionary
// distribution bus. Safe to call while serving; sessions in flight keep
// their dictionary snapshots either way.
func (g *Gateway) SetDictBus(bus DictBus) {
	if bus == nil {
		g.dictBus.Store(nil)
		return
	}
	g.dictBus.Store(&bus)
}

// New builds a gateway from functional options (see Option) and starts
// its verification worker pool. With no options every default applies
// and a private observer is created, exactly as documented on each
// option.
func New(opts ...Option) *Gateway {
	var s settings
	for _, opt := range opts {
		opt(&s)
	}
	return newGateway(s)
}

func newGateway(s settings) *Gateway {
	cfg := s.cfg.withDefaults()
	o := s.obs
	if o == nil {
		o = obs.NewObserver(nil, 0)
	}
	g := &Gateway{
		cfg:   cfg,
		obs:   o,
		apps:  make(map[string]*appState),
		slots: make(chan struct{}, cfg.MaxSessions),
		jobs:  make(chan verifyJob, cfg.VerifyQueue),
		heals: newHealRegistry(),
	}
	g.m = g.registerMetrics()
	g.workers.Add(cfg.VerifyWorkers)
	for i := 0; i < cfg.VerifyWorkers; i++ {
		go g.worker()
	}
	return g
}

// Observer returns the gateway's observability handle — the metrics
// registry plus the per-app session-trace rings. Serve it with
// obs.AdminHandler, or read it directly in tests.
func (g *Gateway) Observer() *obs.Observer { return g.obs }

// Register provisions the shared Verifier for one application. Unless
// caching is disabled (WithCache(-1)) a summary cache is attached — the
// Verifier's own if it already carries one, a fresh per-app cache
// otherwise — and the Verifier's provisioned speculation dictionary seeds
// the app's live dictionary. Safe to call while serving; re-registering
// replaces (and resets the live dictionary and mining cadence).
func (g *Gateway) Register(app string, v *verify.Verifier) {
	if g.cfg.CacheBytes >= 0 && v.Cache() == nil {
		v = v.With(verify.WithCache(verify.NewCache(g.cfg.CacheBytes)))
	}
	st := &appState{
		name:     app,
		verifier: v,
		cache:    v.Cache(),
		autOn:    !g.cfg.DisableAutomaton,
		autCtrs:  &verify.AutomatonCounters{},
		brk:      breaker{threshold: g.cfg.BreakerThreshold, cooldown: g.cfg.BreakerCooldown},
	}
	ds := st.newDictState(0, v.Speculation())
	st.dict.Store(ds)
	g.mu.Lock()
	g.apps[app] = st
	g.mu.Unlock()
	if len(ds.encoded) > 0 {
		g.journalDict(app, ds.version, ds.encoded)
	}
}

// newDictState freezes one immutable dictionary version for the app,
// compiling the automaton machine bound to it so every session verifies
// against a consistent dictionary+machine pair.
func (st *appState) newDictState(version uint64, d *speccfa.Dictionary) *dictState {
	ds := &dictState{version: version, dict: d}
	if d.Len() > 0 {
		ds.encoded = d.Encode()
	}
	ds.aut = st.compileAut(d)
	return ds
}

// compileAut lowers the app's golden artifact against d. The verifier's
// compiled transition core is reused, so a DICT version bump recompiles
// in O(dictionary) rather than O(image). Returns nil — sessions fall back
// to the interpretive search — when the engine is disabled on the gateway
// or the verifier, or when compilation fails.
func (st *appState) compileAut(d *speccfa.Dictionary) *verify.Automaton {
	if !st.autOn {
		return nil
	}
	start := time.Now()
	aut, err := st.verifier.CompileAutomaton(d)
	if err != nil || aut == nil {
		return nil
	}
	st.autCtrs.NoteCompile(time.Since(start))
	return aut.WithCounters(st.autCtrs)
}

func (g *Gateway) app(name string) *appState {
	g.mu.Lock()
	st := g.apps[name]
	g.mu.Unlock()
	return st
}

// ErrClosed is returned by Serve on a gateway that was already closed.
var ErrClosed = errors.New("server: gateway closed")

// Serve accepts sessions on l until Close (then returns nil) or a fatal
// accept error. Each connection is served on its own goroutine; the
// accept loop itself never runs protocol I/O or verification.
func (g *Gateway) Serve(l net.Listener) error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return ErrClosed
	}
	g.listeners = append(g.listeners, l)
	g.mu.Unlock()

	for {
		conn, err := l.Accept()
		if err != nil {
			if g.isClosed() {
				return nil
			}
			return fmt.Errorf("server: accept: %w", err)
		}
		// The session WaitGroup Add and the Close flag share the mutex:
		// either this Add happens before Close's Wait, or Close already
		// ran and the connection is dropped.
		g.mu.Lock()
		if g.closed {
			g.mu.Unlock()
			conn.Close()
			return nil
		}
		g.sessions.Add(1)
		g.mu.Unlock()
		go func() {
			defer g.sessions.Done()
			g.handleConn(conn)
		}()
	}
}

// ServeConn serves one already-accepted connection synchronously,
// running the same admission, deadline, and tracing path as connections
// from Serve's accept loop. It is how a shard router (internal/router)
// hands a peeked session to its pinned replica: the router re-plays the
// consumed HELO bytes through a prefix reader, so the gateway's protocol
// path is byte-identical to a directly dialed session. On a closed
// gateway the connection is dropped and ErrClosed returned.
func (g *Gateway) ServeConn(conn net.Conn) error {
	// The session WaitGroup Add and the Close flag share the mutex,
	// exactly as in Serve: either this Add happens before Close's Wait,
	// or Close already ran and the connection is dropped.
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		conn.Close()
		return ErrClosed
	}
	g.sessions.Add(1)
	g.mu.Unlock()
	defer g.sessions.Done()
	g.handleConn(conn)
	return nil
}

// Apps returns the registered application names (sorted), the corpus a
// router sweeps for dictionary distribution and cache warming.
func (g *Gateway) Apps() []string {
	g.mu.Lock()
	names := make([]string, 0, len(g.apps))
	for name := range g.apps {
		names = append(names, name)
	}
	g.mu.Unlock()
	slices.Sort(names)
	return names
}

// AdoptDictionary installs an externally distributed dictionary version
// for app: the fleet bus calls it on every replica when a promotion is
// assigned its fleet epoch. The exact encoded bytes are stored for the
// DICT handshake — every replica ships bit-identical frames — and the
// automaton is recompiled against the decoded dictionary, so the version
// arrives as a consistent dictionary+machine pair. Versions are
// monotonic: an epoch at or below the app's current version is a stale
// delivery and is ignored (nil error). Sessions in flight keep their
// snapshots (the per-session-snapshot invariant survives distribution).
func (g *Gateway) AdoptDictionary(app string, version uint64, encoded []byte) error {
	st := g.app(app)
	if st == nil {
		return fmt.Errorf("server: unknown application %q", app)
	}
	dict, err := speccfa.DecodeDictionary(encoded)
	if err != nil {
		return fmt.Errorf("server: adopting dictionary for %s: %w", app, err)
	}
	st.dictMu.Lock()
	defer st.dictMu.Unlock()
	if version <= st.dict.Load().version {
		return nil
	}
	enc := append([]byte(nil), encoded...)
	st.dict.Store(&dictState{version: version, dict: dict, encoded: enc, aut: st.compileAut(dict)})
	g.journalDict(app, version, enc)
	return nil
}

// DictSnapshot returns app's current live dictionary version and its
// encoded DICT-frame bytes (nil when the dictionary is empty or the app
// is unknown). The pair is one atomic snapshot.
func (g *Gateway) DictSnapshot(app string) (version uint64, encoded []byte) {
	st := g.app(app)
	if st == nil {
		return 0, nil
	}
	ds := st.dict.Load()
	return ds.version, ds.encoded
}

// WarmExport dumps up to max relocatable verification-cache records for
// app (verdicts and segment summaries; see verify.Cache.WarmDump). Nil
// when the app is unknown or caching is disabled.
func (g *Gateway) WarmExport(app string, max int) []verify.WarmEntry {
	st := g.app(app)
	if st == nil {
		return nil
	}
	return st.cache.WarmDump(max)
}

// WarmImport loads another replica's WarmExport records into app's
// cache, returning how many were admitted (already-resident keys are
// skipped). The gateway's ordinary cache budget and eviction apply.
func (g *Gateway) WarmImport(app string, entries []verify.WarmEntry) int {
	st := g.app(app)
	if st == nil {
		return 0
	}
	return st.cache.WarmLoad(entries)
}

func (g *Gateway) isClosed() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.closed
}

// Close stops accepting, waits for in-flight sessions, and drains the
// worker pool. Idempotent.
func (g *Gateway) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	g.closed = true
	ls := g.listeners
	g.listeners = nil
	g.mu.Unlock()
	for _, l := range ls {
		_ = l.Close()
	}
	g.sessions.Wait()
	close(g.jobs)
	g.workers.Wait()
	return nil
}

// countFrame bumps the frame counter for typ in the given direction
// array (nil entries cover unknown frame types defensively).
func countFrame(dir []*obs.Counter, typ byte) {
	if int(typ) < len(dir) && dir[typ] != nil {
		dir[typ].Inc()
	}
}

// readFrame and writeFrame wrap the remote framing with the per-type
// frame counters, so /metrics attributes traffic per protocol step.
func (g *Gateway) readFrame(tc *timedConn) (byte, []byte, error) {
	typ, payload, err := remote.ReadFrame(tc)
	if err == nil {
		countFrame(g.m.framesIn[:], typ)
	}
	return typ, payload, err
}

func (g *Gateway) writeFrame(tc *timedConn, typ byte, payload []byte) error {
	err := remote.WriteFrame(tc, typ, payload)
	if err == nil {
		countFrame(g.m.framesOut[:], typ)
	}
	return err
}

// handleConn runs one session: acquire a slot or shed, then speak the
// protocol under deadlines. Every connection — shed, failed, or verdict
// — commits exactly one span trace.
func (g *Gateway) handleConn(conn net.Conn) {
	defer conn.Close()
	g.m.sessionsStarted.Inc()
	tr := g.obs.StartTrace(conn.RemoteAddr().String())

	select {
	case g.slots <- struct{}{}:
		defer func() { <-g.slots }()
	default:
		// At capacity: one best-effort BUSY frame, then hang up. The
		// write gets its own short deadline so a non-reading client
		// cannot pin this goroutine either.
		g.m.shedCapacity.Inc()
		_ = conn.SetWriteDeadline(time.Now().Add(g.cfg.IOTimeout))
		if remote.WriteFrame(conn, remote.FrameBusy, remote.EncodeBusy(g.cfg.BusyRetryAfter)) == nil {
			countFrame(g.m.framesOut[:], remote.FrameBusy)
		}
		tr.Finish("shed-busy", "at session capacity")
		g.obs.Commit(tr)
		return
	}
	g.span(tr, obs.StageAccept, -1, time.Since(tr.Began))

	g.m.sessionsAccepted.Inc()
	deadline := time.Now().Add(g.cfg.SessionTimeout)
	tc := &timedConn{
		Conn:      conn,
		ioTimeout: g.cfg.IOTimeout,
		end:       deadline,
		bytesIn:   g.m.bytesIn,
		bytesOut:  g.m.bytesOut,
	}
	if err := g.safeSession(tc, deadline, tr); err != nil {
		g.m.sessionsFailed.Inc()
		tr.Finish("error", err.Error())
		if g.cfg.OnSessionError != nil {
			g.cfg.OnSessionError(conn.RemoteAddr().String(), err)
		}
	}
	g.obs.Commit(tr)
}

// safeSession runs session under a panic guard: one berserk session
// (protocol handler bug, injected fault) is recovered, counted, and
// reported as a session error instead of killing the whole gateway.
func (g *Gateway) safeSession(tc *timedConn, deadline time.Time, tr *obs.Trace) (err error) {
	defer func() {
		if p := recover(); p != nil {
			g.m.panicsRecovered.Inc()
			err = fmt.Errorf("server: session panicked: %v", p)
		}
	}()
	return g.session(tc, deadline, tr)
}

// session speaks one gateway session on an already-admitted connection.
// On a nil return the trace is already finished (verdict or graceful
// shed); on error the caller stamps the trace.
func (g *Gateway) session(tc *timedConn, deadline time.Time, tr *obs.Trace) error {
	stageStart := time.Now()
	typ, payload, err := g.readFrame(tc)
	if err != nil {
		return fmt.Errorf("server: reading hello: %w", err)
	}
	if typ != remote.FrameHello {
		_ = g.writeFrame(tc, remote.FrameFail, []byte("expected hello frame"))
		return fmt.Errorf("server: expected hello frame, got type %d", typ)
	}
	app, device, err := remote.ParseHelloID(payload)
	if err != nil {
		_ = g.writeFrame(tc, remote.FrameFail, []byte(err.Error()))
		return fmt.Errorf("server: %w", err)
	}
	// Journal attribution prefers the announced device identity — stable
	// across reconnects — over the ephemeral transport address.
	if device == "" {
		device = tc.RemoteAddr().String()
	}
	tr.SetApp(app)
	g.span(tr, obs.StageHelo, -1, time.Since(stageStart))
	st := g.app(app)
	if st == nil {
		_ = g.writeFrame(tc, remote.FrameFail, []byte(fmt.Sprintf("unknown application %q", app)))
		return fmt.Errorf("server: unknown application %q", app)
	}

	// Circuit breaker: while the app's verify path is erroring, shed with a
	// BUSY carrying the remaining cooldown — a graceful degradation, not a
	// session failure.
	admitted, probe, retryAfter := st.brk.admit(time.Now())
	if !admitted {
		g.m.shedBreaker.Inc()
		if retryAfter <= 0 {
			retryAfter = g.cfg.BusyRetryAfter
		}
		_ = g.writeFrame(tc, remote.FrameBusy, remote.EncodeBusy(retryAfter))
		tr.Finish("shed-busy", "breaker cooldown")
		return nil
	}
	enqueued := false
	if probe {
		g.m.breakerHalfOpens.Inc()
		// A probe that dies before its evidence reaches a worker decides
		// nothing; release the half-open slot for the next candidate.
		defer func() {
			if !enqueued {
				st.brk.abort()
			}
		}()
	}

	// One dictionary snapshot rules the whole session: what the prover
	// compresses with is exactly what the verifier expands with, even if a
	// mining promotion swaps the live pointer mid-flight.
	ds := st.dict.Load()
	if len(ds.encoded) > 0 {
		stageStart = time.Now()
		if err := g.writeFrame(tc, remote.FrameDict, ds.encoded); err != nil {
			return fmt.Errorf("server: sending dictionary: %w", err)
		}
		g.span(tr, obs.StageDictPush, -1, time.Since(stageStart))
	}

	chal, err := attest.NewChallenge(app)
	if err != nil {
		_ = g.writeFrame(tc, remote.FrameFail, []byte("challenge generation failed"))
		return err
	}
	stageStart = time.Now()
	if err := g.writeFrame(tc, remote.FrameChal, chal.Encode()); err != nil {
		return fmt.Errorf("server: sending challenge: %w", err)
	}
	// The first evidence frame decides the session's delivery mode: a
	// SLICE frame opens a streaming session (slice-by-slice verification
	// with mid-run HEAL directives), anything else is the batch report
	// stream.
	typ, payload, err = g.readFrame(tc)
	if err != nil {
		return fmt.Errorf("server: reading evidence: %w", truncated(err))
	}
	if typ == remote.FrameSlice {
		sent, err := g.streamSession(tc, tr, st, device, chal, ds, deadline, payload, stageStart)
		enqueued = sent
		return err
	}
	reports, err := g.collectReports(tc, typ, payload)
	if err != nil {
		return err
	}
	g.span(tr, obs.StageCollect, -1, time.Since(stageStart))

	verifyOffset := time.Since(tr.Began)
	stageStart = time.Now()
	verdict, sent, err := g.verify(st, device, chal, reports, ds, deadline)
	enqueued = sent
	if err != nil {
		_ = g.writeFrame(tc, remote.FrameFail, []byte(err.Error()))
		return err
	}
	// StageVerify is the session's view: queue wait plus reconstruction.
	// The expand sub-span (measured inside the verifier) is re-anchored
	// into the timeline after the auth phase it follows.
	g.span(tr, obs.StageVerify, -1, time.Since(stageStart))
	if tm := verdict.Timing; tm.Expand > 0 {
		g.span(tr, obs.StageExpand, verifyOffset+tm.Auth, tm.Expand)
	}

	// Fresh authenticated evidence of a benign run resolves any healing
	// state the device carried, whichever delivery mode it re-attested by.
	if verdict.OK {
		g.heals.accepted(healKey(app, device))
	}
	return g.deliverVerdict(tc, tr, verdict)
}

// deliverVerdict counts the verdict class, writes the VRDT frame, and
// finishes the trace — the shared tail of batch and streaming sessions.
func (g *Gateway) deliverVerdict(tc *timedConn, tr *obs.Trace, verdict *verify.Verdict) error {
	switch {
	case verdict.OK:
		g.m.verdictOK.Inc()
	case verdict.Code == verify.ReasonInconclusive:
		// Authentic evidence attesting its own loss (MTB wrap / arming
		// drop): neither accept nor attack — the device should re-attest.
		g.m.verdictInconclusive.Inc()
		g.m.rejections[verdict.Code].Inc()
	default:
		g.m.verdictAttack.Inc()
		if verdict.Code.Valid() {
			g.m.rejections[verdict.Code].Inc()
		}
	}
	stageStart := time.Now()
	if err := g.writeFrame(tc, remote.FrameVerdict, remote.EncodeVerdict(verdict.OK, verdict.Code, verdict.Detail)); err != nil {
		return fmt.Errorf("server: sending verdict: %w", err)
	}
	g.span(tr, obs.StageVerdictWrite, -1, time.Since(stageStart))
	if verdict.OK {
		tr.Finish("ok", "")
	} else {
		tr.Finish(verdict.Code.String(), verdict.Detail)
	}
	return nil
}

// verify hands the reconstruction to the worker pool and waits for the
// result, but never past the session deadline: a saturated pool exerts
// backpressure here, not in the accept or read loops. enqueued reports
// whether the job reached the pool (every enqueued job is recorded by the
// app's circuit breaker exactly once, even if this session stops waiting).
func (g *Gateway) verify(st *appState, device string, chal attest.Challenge, reports []*attest.Report, ds *dictState, deadline time.Time) (vd *verify.Verdict, enqueued bool, err error) {
	job := verifyJob{app: st, device: device, chal: chal, reports: reports,
		dict: ds.dict, dictVersion: ds.version, aut: ds.aut,
		finalize: true, resp: make(chan verifyResult, 1)}
	r, enqueued, err := g.enqueue(job, deadline)
	if err != nil {
		return nil, enqueued, err
	}
	if r.err != nil {
		return nil, true, fmt.Errorf("server: malformed or inauthentic evidence: %w", r.err)
	}
	return r.verdict, true, nil
}

// enqueue hands one job to the worker pool and waits for its result, but
// never past the session deadline. enqueued reports whether the job
// reached the pool even when the wait itself times out.
func (g *Gateway) enqueue(job verifyJob, deadline time.Time) (res verifyResult, enqueued bool, err error) {
	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
	select {
	case g.jobs <- job:
	case <-timer.C:
		return verifyResult{}, false, errors.New("server: verification queue full past session deadline")
	}
	select {
	case r := <-job.resp:
		return r, true, nil
	case <-timer.C:
		// The worker finishes and delivers into the buffered channel;
		// only this session stops waiting.
		return verifyResult{}, true, errors.New("server: verification exceeded session deadline")
	}
}

func (g *Gateway) worker() {
	defer g.workers.Done()
	for job := range g.jobs {
		g.runJob(job)
	}
}

// runJob verifies one session's evidence on a worker goroutine. A panic
// out of the verifier (or an injected VerifyHook fault) is recovered into
// an ordinary verify error: one poisoned session must not take down a
// pool worker and with it the gateway's verification capacity. Every
// finalize job is delivered and breaker-recorded exactly once; slice-feed
// jobs are delivered only (their session's seal job does the recording).
func (g *Gateway) runJob(job verifyJob) {
	start := time.Now()
	var res verifyResult
	func() {
		defer func() {
			if p := recover(); p != nil {
				g.m.panicsRecovered.Inc()
				res = verifyResult{err: fmt.Errorf("server: verification panicked: %v", p)}
			}
		}()
		if h := g.cfg.VerifyHook; h != nil {
			h(job.app.name)
		}
		if job.exec != nil {
			res = job.exec()
		} else {
			res.verdict, res.err = job.app.verifier.VerifyWithAutomaton(job.chal, job.reports, job.dict, job.aut)
		}
	}()
	// A non-finalize job is one slice feed of a streaming session: its
	// result is advisory, so it gets the slice histogram and delivery,
	// nothing else — the session's seal job carries the authoritative
	// verdict through the full accounting below.
	if !job.finalize {
		g.m.sliceSeconds.ObserveDuration(time.Since(start))
		job.resp <- res
		return
	}
	g.m.verifySeconds.ObserveDuration(time.Since(start))
	// Decode-failure classification: malformed evidence surfaces as a
	// typed pipeline error, attested capture loss as an Inconclusive
	// verdict (the pipeline's WrapLoss rendered by the verifier).
	if code, ok := pipeline.CodeOf(res.err); ok {
		g.m.decodeErrors[code].Inc()
	} else if res.verdict != nil && !res.verdict.OK && res.verdict.Code == verify.ReasonInconclusive {
		g.m.decodeErrors[pipeline.WrapLoss].Inc()
	}
	if res.verdict != nil {
		// Phase attribution from the verifier's own clock; expand and
		// search are skipped when the phase did not run (no dictionary,
		// early verdict, verdict-cache hit).
		tm := res.verdict.Timing
		g.m.phase[phaseAuth].ObserveDuration(tm.Auth)
		if tm.Expand > 0 {
			g.m.phase[phaseExpand].ObserveDuration(tm.Expand)
		}
		if tm.Search > 0 {
			g.m.phase[phaseSearch].ObserveDuration(tm.Search)
		}
	}
	if opened, closed := job.app.brk.record(res.err != nil, time.Now()); opened {
		g.m.breakerOpens.Inc()
	} else if closed {
		g.m.breakerCloses.Inc()
	}
	job.resp <- res
	// Evidence-plane commit after delivery: the session never waits on
	// storage, and every outcome — acceptance, typed rejection, or
	// evidence error — leaves a hash-chained record.
	g.journalVerdict(job, res)
	if res.err == nil && res.verdict.OK {
		// Mine after delivery: the session is not kept waiting on
		// dictionary work.
		g.maybeMine(job.app, res.verdict)
	}
}

// maybeMine runs the online mining cadence for one accepted verdict: every
// MineEvery-th acceptance per app (starting with the first) the consumed
// evidence is mined and new hot sub-paths are promoted into the app's live
// dictionary, to be delivered to the next sessions' provers.
func (g *Gateway) maybeMine(st *appState, vd *verify.Verdict) {
	if g.cfg.MineEvery <= 0 {
		return
	}
	n := st.accepted.Add(1)
	if (n-1)%uint64(g.cfg.MineEvery) != 0 {
		return
	}
	g.m.minedSessions.Inc()
	mined, err := speccfa.Mine(vd.Evidence, g.cfg.MinePaths, 2, 8)
	if err != nil || mined.Len() == 0 {
		return
	}
	if propose, ok := g.mineCandidate(st, mined, vd); ok {
		// Propose outside dictMu: the bus delivers the epoch-stamped
		// canonical version back through AdoptDictionary, which takes the
		// same mutex on this very gateway.
		propose()
	}
}

// mineCandidate runs the promotion critical section for one mined
// dictionary: merge, self-check, and either local installation or — with
// a fleet bus attached — a deferred Propose for the caller to run after
// the dictionary mutex is released.
func (g *Gateway) mineCandidate(st *appState, mined *speccfa.Dictionary, vd *verify.Verdict) (propose func(), ok bool) {
	st.dictMu.Lock()
	defer st.dictMu.Unlock()
	cur := st.dict.Load()
	merged, added, err := speccfa.Merge(cur.dict, mined, g.cfg.MaxDictPaths)
	if err != nil || added == 0 {
		return
	}
	// Promotion self-check: the exact bytes that would go out in DICT
	// frames must decode back to a dictionary that round-trips this
	// session's evidence. A dictionary that fails (bit rot, encoder bug,
	// injected DictFault) is quarantined — the live dictionary stays on the
	// last good version and never reaches a prover handshake.
	encoded := merged.Encode()
	if f := g.cfg.DictFault; f != nil {
		encoded = f(encoded)
	}
	checked, err := speccfa.DecodeDictionary(encoded)
	if err != nil {
		g.m.dictQuarantines.Inc()
		return
	}
	rt, err := checked.Decompress(checked.Compress(vd.Evidence))
	if err != nil || !slices.Equal(rt, vd.Evidence) {
		g.m.dictQuarantines.Inc()
		return
	}
	// With a fleet bus attached the checked candidate goes out for
	// distribution instead of installing locally: the bus assigns the
	// fleet epoch and delivers the canonical merged version back through
	// AdoptDictionary on every replica, this gateway included, keeping
	// all replicas on one monotonic version sequence.
	if bus := g.dictBus.Load(); bus != nil {
		g.m.dictPromotions.Add(uint64(added))
		b := *bus
		return func() { b.Propose(st.name, encoded) }, true
	}
	// Store the dictionary decoded FROM the checked bytes: provers (DICT
	// frame) and the verifier (expansion) derive from identical bits. The
	// automaton is recompiled against the checked dictionary so the new
	// version ships as a consistent dictionary+machine pair.
	st.dict.Store(&dictState{version: cur.version + 1, dict: checked, encoded: encoded, aut: st.compileAut(checked)})
	g.m.dictPromotions.Add(uint64(added))
	g.journalDict(st.name, cur.version+1, encoded)
	return nil, false
}

// ObserveProverRetries folds prover-side retry counts into the gateway
// registry — deployments (and the serve selftest) report how many extra
// attempts their client retry loops (remote.Client.AttestDial) spent
// reaching a verdict.
func (g *Gateway) ObserveProverRetries(n uint64) {
	if n > 0 {
		g.m.proverRetries.Add(n)
	}
}
