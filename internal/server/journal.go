package server

import (
	"raptrack/internal/attest"
	"raptrack/internal/journal"
	"raptrack/internal/verify"
)

// journalVerdict commits one completed verification to the evidence
// plane: the outcome classification plus the complete evidence bytes
// (challenge and signed report chain), enough for a bit-for-bit replay.
// Runs on the worker goroutine after the session has its result — the
// session never waits on storage — and swallows journal errors by
// design: the journal degrades internally, it never fails a session.
func (g *Gateway) journalVerdict(job verifyJob, res verifyResult) {
	j := g.cfg.Journal
	if j == nil {
		return
	}
	e := journal.Entry{
		Kind:        journal.KindVerdict,
		App:         job.app.name,
		Device:      job.device,
		DictVersion: job.dictVersion,
		Payload:     attest.EncodeEvidence(job.chal, job.reports),
	}
	switch {
	case res.err != nil:
		e.Outcome = journal.OutcomeError
		e.Detail = res.err.Error()
	case res.verdict.OK:
		e.Outcome = journal.OutcomeOK
	case res.verdict.Code == verify.ReasonInconclusive:
		e.Outcome = journal.OutcomeInconclusive
		e.Code = res.verdict.Code
		e.Detail = res.verdict.Detail
	default:
		e.Outcome = journal.OutcomeAttack
		e.Code = res.verdict.Code
		e.Detail = res.verdict.Detail
	}
	_ = j.Append(e)
}

// journalDict commits one live dictionary version (the registration seed
// or a mining promotion). Replay depends on these: each journaled
// verdict names its dictVersion, and the replay verifier expands its
// evidence with the matching journaled encoding.
func (g *Gateway) journalDict(app string, version uint64, encoded []byte) {
	j := g.cfg.Journal
	if j == nil {
		return
	}
	_ = j.Append(journal.Entry{
		Kind:        journal.KindDict,
		App:         app,
		DictVersion: version,
		Payload:     encoded,
	})
}
