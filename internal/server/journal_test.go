// Gateway × evidence-journal integration: every verdict the gateway
// hands a device lands in the journal with a decodable evidence payload,
// and a storming journal disk never fails a session — the gateway sheds
// records into the journal's ring and keeps verifying. Under -race.
package server_test

import (
	"testing"
	"time"

	"raptrack/internal/attest"
	"raptrack/internal/faults"
	"raptrack/internal/journal"
	"raptrack/internal/server"
)

// waitJournal polls the journal until pred holds over its counters.
func waitJournal(t *testing.T, j *journal.Journal, pred func(journal.Counters) bool) journal.Counters {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c := j.Counters()
		if pred(c) {
			return c
		}
		if time.Now().After(deadline) {
			t.Fatalf("journal condition not reached; last: %+v", c)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestGatewayJournalsEveryVerdict(t *testing.T) {
	dir := t.TempDir()
	j, err := journal.Open(dir, journal.Options{Fsync: journal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	// Registered before startGateway so LIFO cleanup closes the gateway
	// (and its in-flight appends) before the journal.
	t.Cleanup(func() { _ = j.Close() })

	g, addr, ep := startGateway(t, []server.Option{server.WithJournal(j)}, "prime")
	const sessions = 6
	for i := 0; i < sessions; i++ {
		gv, err := attestApp(ep, dial(t, addr), "prime")
		if err != nil {
			t.Fatal(err)
		}
		if !gv.OK {
			t.Fatalf("session %d rejected: %s", i, gv.Reason())
		}
	}
	waitStats(t, g, func(s server.Stats) bool { return s.VerdictOK == sessions })
	// The commit happens just after the verdict is delivered — poll.
	waitJournal(t, j, func(c journal.Counters) bool { return c.Appended >= sessions })

	rep, err := journal.ScanDir(nil, dir)
	if err != nil || rep.Break != nil {
		t.Fatalf("scan: break=%v, err=%v", rep.Break, err)
	}
	verdicts := 0
	for _, rec := range rep.Records {
		if rec.Kind != journal.KindVerdict {
			continue // dictionary snapshots ride along
		}
		verdicts++
		if rec.App != "prime" || rec.Device == "" {
			t.Fatalf("verdict record missing identity: %+v", rec)
		}
		if rec.Outcome != journal.OutcomeOK {
			t.Fatalf("healthy session journaled as %v: %+v", rec.Outcome, rec)
		}
		if _, reports, err := attest.DecodeEvidence(rec.Payload); err != nil || len(reports) == 0 {
			t.Fatalf("evidence payload does not decode (%d reports): %v", len(reports), err)
		}
	}
	if verdicts != sessions {
		t.Fatalf("journaled %d verdicts for %d sessions", verdicts, sessions)
	}
}

func TestGatewayJournalFsyncStormNeverFailsSessions(t *testing.T) {
	dir := t.TempDir()
	in := faults.New(11, faults.Plan{DiskFsyncErr: 1.0}) // every fsync fails
	fs := in.WrapFS(nil)
	fs.Disarm() // healthy disk for Open; the storm targets live commits
	j, err := journal.Open(dir, journal.Options{FS: fs, Fsync: journal.SyncEach})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = j.Close() })
	fs.Arm()

	g, addr, ep := startGateway(t, []server.Option{server.WithJournal(j)}, "prime")
	const sessions = 8
	for i := 0; i < sessions; i++ {
		// The journal's disk is on fire; devices must not notice.
		gv, err := attestApp(ep, dial(t, addr), "prime")
		if err != nil {
			t.Fatalf("session %d failed during fsync storm: %v", i, err)
		}
		if !gv.OK {
			t.Fatalf("session %d rejected during fsync storm: %s", i, gv.Reason())
		}
	}
	waitStats(t, g, func(s server.Stats) bool { return s.VerdictOK == sessions })
	c := waitJournal(t, j, func(c journal.Counters) bool { return c.Appended+c.Shed >= sessions })

	if !j.Degraded() {
		t.Fatal("journal not degraded under a total fsync storm")
	}
	if ok, detail := j.Health(); ok || detail == "" {
		t.Fatalf("health = %v %q", ok, detail)
	}
	// Every shed record is accounted: still held in the ring or counted
	// as evicted from it — nothing vanishes without a number attached.
	if c.Shed != uint64(len(j.Ring()))+c.RingDropped {
		t.Fatalf("shed accounting: shed=%d ring=%d dropped=%d", c.Shed, len(j.Ring()), c.RingDropped)
	}
	if in.Counts().DiskFsyncErrs == 0 {
		t.Fatal("injector recorded no fsync errors")
	}
}
