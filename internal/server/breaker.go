package server

import (
	"sync"
	"time"
)

type breakerState uint8

const (
	bkClosed breakerState = iota
	bkOpen
	bkHalfOpen
)

// breaker is a per-app circuit breaker over verification *errors* —
// malformed or inauthentic evidence and recovered verify panics, never
// attack verdicts (an attack is the verifier working, not failing).
// When BreakerThreshold consecutive errors accumulate, the breaker opens
// and the app's sessions are shed with BUSY (+ the remaining cooldown as
// a retry-after hint) instead of burning worker time on a failing path.
// After the cooldown one half-open probe session is admitted: its
// verification outcome closes the breaker or re-opens it.
//
// threshold <= 0 disables the breaker entirely.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu          sync.Mutex
	state       breakerState
	consecutive int       // consecutive verify errors
	openedAt    time.Time // last closed/half-open -> open transition
	probing     bool      // a half-open probe is in flight
}

func (b *breaker) enabled() bool { return b.threshold > 0 }

// admit decides whether a session may proceed toward verification.
// When shedding (ok == false), retryAfter carries the remaining cooldown
// as the BUSY hint; probe marks the session as the half-open probe, which
// must either reach a worker (record) or abort.
func (b *breaker) admit(now time.Time) (ok, probe bool, retryAfter time.Duration) {
	if !b.enabled() {
		return true, false, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case bkClosed:
		return true, false, 0
	case bkOpen:
		if rem := b.cooldown - now.Sub(b.openedAt); rem > 0 {
			return false, false, rem
		}
		b.state = bkHalfOpen
		b.probing = true
		return true, true, 0
	default: // bkHalfOpen
		if b.probing {
			return false, false, b.cooldown
		}
		// The previous probe aborted before deciding; admit another.
		b.probing = true
		return true, true, 0
	}
}

// record observes one verification outcome (every job a worker runs is
// recorded exactly once). It reports breaker transitions so the caller
// can count them: opened and closed are mutually exclusive.
func (b *breaker) record(failed bool, now time.Time) (opened, closed bool) {
	if !b.enabled() {
		return false, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if failed {
		b.consecutive++
		switch b.state {
		case bkHalfOpen:
			// The probe failed: back to shedding for another cooldown.
			b.state = bkOpen
			b.openedAt = now
			b.probing = false
			return true, false
		case bkClosed:
			if b.consecutive >= b.threshold {
				b.state = bkOpen
				b.openedAt = now
				return true, false
			}
		}
		return false, false
	}
	b.consecutive = 0
	if b.state != bkClosed {
		// A successful verification — the probe, or a job enqueued before
		// the breaker opened — proves the path works again.
		b.state = bkClosed
		b.probing = false
		return false, true
	}
	return false, false
}

// current reads the breaker state (scrape-time gauge).
func (b *breaker) current() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// abort releases the half-open probe slot when the probe session died
// before its evidence reached a worker: it decided nothing, so the next
// admitted session probes instead.
func (b *breaker) abort() {
	if !b.enabled() {
		return
	}
	b.mu.Lock()
	if b.state == bkHalfOpen {
		b.probing = false
	}
	b.mu.Unlock()
}
