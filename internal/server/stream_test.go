// Gateway streaming-attestation tests: slice delivery end to end, the
// batch/stream verdict differential, the device healing lifecycle
// (HEAL push, HEALACK, re-attest to healthy), journal/replay parity for
// sliced sessions, and a hostile-transport leg driving hand-crafted
// SLICE frames (loss, reorder, duplication, dropped acks) against the
// zero-false-accept invariant. All must pass under -race.
package server_test

import (
	"net"
	"strings"
	"sync"
	"testing"

	"raptrack/internal/attest"
	"raptrack/internal/core"
	"raptrack/internal/journal"
	"raptrack/internal/linker"
	"raptrack/internal/remote"
	"raptrack/internal/server"
	"raptrack/internal/verify"
)

// streamWatermark slices the gps run into a handful of partial reports.
const streamWatermark = 512

// streamEndpoint provisions f's app with a watermark so the prover emits
// several partial reports per run — one slice each.
func streamEndpoint(f *appFixture) *remote.ProverEndpoint {
	ep := remote.NewProverEndpoint()
	f.provision(ep, streamWatermark)
	return ep
}

// tamperedLink links f's firmware with different padding: the session
// transports fine, but H_MEM disagrees with the gateway's golden image.
func tamperedLink(t *testing.T, f *appFixture) *linker.Output {
	t.Helper()
	opts := core.DefaultLinkOptions()
	opts.NopPad++
	link, err := core.LinkForCFA(f.app.Build(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return link
}

func tamperedEndpoint(t *testing.T, f *appFixture) *remote.ProverEndpoint {
	t.Helper()
	link := tamperedLink(t, f)
	ep := remote.NewProverEndpoint()
	ep.Provision(f.name, func() (*core.Prover, error) {
		return core.NewProver(link, f.key, core.ProverConfig{
			SetupMem:  f.app.SetupMem(),
			Watermark: streamWatermark,
		})
	})
	return ep
}

// healLog collects HEAL directives delivered to the prover callback.
type healLog struct {
	mu    sync.Mutex
	heals []remote.Heal
}

func (l *healLog) add(h remote.Heal) {
	l.mu.Lock()
	l.heals = append(l.heals, h)
	l.mu.Unlock()
}

func (l *healLog) all() []remote.Heal {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]remote.Heal(nil), l.heals...)
}

func TestGatewayStreamingRoundTrip(t *testing.T) {
	f := fixture(t, "gps")
	g, addr, _ := startGateway(t, nil, "gps")
	cli := remote.NewClient(streamEndpoint(f),
		remote.WithDevice("dev-stream-1"), remote.WithStreaming(nil))

	gv, err := cli.Attest(dial(t, addr), "gps")
	if err != nil {
		t.Fatal(err)
	}
	if !gv.OK {
		t.Fatalf("verdict: %s", gv.Reason())
	}
	st := waitStats(t, g, func(s server.Stats) bool { return s.VerdictOK == 1 })
	if st.StreamSessions != 1 {
		t.Errorf("StreamSessions = %d, want 1", st.StreamSessions)
	}
	if st.StreamSlices < 2 {
		t.Errorf("StreamSlices = %d, want several (watermark slices the run)", st.StreamSlices)
	}
	// Only the seal is a verification; slice feeds ride the pool but are
	// counted separately.
	if st.Verifications != 1 {
		t.Errorf("Verifications = %d, want 1", st.Verifications)
	}
	if st.StreamAlarms != 0 || st.HealDirectives != 0 {
		t.Errorf("honest session raised alarms: %+v", st)
	}
	if hs := g.HealState("gps", "dev-stream-1"); hs != server.HealHealthy {
		t.Errorf("HealState = %v, want healthy", hs)
	}
}

// TestGatewayStreamingMatchesBatch runs the same honest and tampered
// provers through both delivery modes: the delivered verdicts must agree
// — streaming changes when the gateway learns, never what it concludes.
func TestGatewayStreamingMatchesBatch(t *testing.T) {
	f := fixture(t, "gps")
	_, addr, _ := startGateway(t, nil, "gps")

	for _, tc := range []struct {
		name string
		ep   *remote.ProverEndpoint
	}{
		{"honest", streamEndpoint(f)},
		{"tampered-hmem", tamperedEndpoint(t, f)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			batch := remote.NewClient(tc.ep, remote.WithDevice("dev-batch"))
			stream := remote.NewClient(tc.ep,
				remote.WithDevice("dev-stream"), remote.WithStreaming(nil))
			bv, err := batch.Attest(dial(t, addr), "gps")
			if err != nil {
				t.Fatal(err)
			}
			sv, err := stream.Attest(dial(t, addr), "gps")
			if err != nil {
				t.Fatal(err)
			}
			if bv.OK != sv.OK || bv.Code != sv.Code || bv.Detail != sv.Detail {
				t.Fatalf("verdicts diverge:\n batch:  %+v\n stream: %+v", bv, sv)
			}
		})
	}
}

// TestGatewayStreamingHealLifecycle walks one device through the full
// healing state machine: a tampered run raises a mid-stream H_MEM alarm
// (HEAL re-provision pushed before the run ends), the prover's ack moves
// it to healing, and an honest re-attestation returns it to healthy.
func TestGatewayStreamingHealLifecycle(t *testing.T) {
	f := fixture(t, "gps")
	g, addr, _ := startGateway(t, nil, "gps")
	const device = "dev-heal-1"

	var hl healLog
	bad := remote.NewClient(tamperedEndpoint(t, f),
		remote.WithDevice(device), remote.WithStreaming(hl.add))
	gv, err := bad.Attest(dial(t, addr), "gps")
	if err != nil {
		t.Fatal(err)
	}
	if gv.OK || !strings.Contains(gv.Reason(), "H_MEM") {
		t.Fatalf("tampered verdict = %+v", gv)
	}
	heals := hl.all()
	if len(heals) == 0 {
		t.Fatal("prover never received a HEAL directive")
	}
	if heals[0].Directive != remote.HealReprovision {
		t.Errorf("directive = %v, want re-provision (H_MEM mismatch)", heals[0].Directive)
	}
	st := waitStats(t, g, func(s server.Stats) bool { return s.HealAcks >= 1 })
	if st.StreamAlarms == 0 || st.HealDirectives == 0 {
		t.Errorf("stats = %+v", st)
	}
	// The ack committed the device to remediation: healing, not
	// quarantined, even though the sealed verdict confirmed the attack.
	if hs := g.HealState("gps", device); hs != server.HealHealing {
		t.Errorf("HealState after ack = %v, want healing", hs)
	}

	// Remediated (honest) re-attestation heals the device.
	good := remote.NewClient(streamEndpoint(f),
		remote.WithDevice(device), remote.WithStreaming(nil))
	gv, err = good.Attest(dial(t, addr), "gps")
	if err != nil || !gv.OK {
		t.Fatalf("re-attestation: %+v, %v", gv, err)
	}
	if hs := g.HealState("gps", device); hs != server.HealHealthy {
		t.Errorf("HealState after re-attest = %v, want healthy", hs)
	}
}

// TestGatewayStreamingJournalReplay seals streamed sessions — honest and
// tampered — and re-verifies every journaled record over its stored
// evidence, exactly as `raptrack replay` does: outcomes must reproduce
// bit-for-bit from the wire-fed report chain.
func TestGatewayStreamingJournalReplay(t *testing.T) {
	f := fixture(t, "gps")
	dir := t.TempDir()
	j, err := journal.Open(dir, journal.Options{Fsync: journal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = j.Close() })

	g, addr, _ := startGateway(t, []server.Option{
		server.WithJournal(j),
		server.WithMining(-1, 0, 0), // keep the replay dictionary empty
	}, "gps")

	honest := remote.NewClient(streamEndpoint(f),
		remote.WithDevice("dev-replay-1"), remote.WithStreaming(nil))
	if gv, err := honest.Attest(dial(t, addr), "gps"); err != nil || !gv.OK {
		t.Fatalf("honest: %+v, %v", gv, err)
	}
	bad := remote.NewClient(tamperedEndpoint(t, f),
		remote.WithDevice("dev-replay-2"), remote.WithStreaming(nil))
	if gv, err := bad.Attest(dial(t, addr), "gps"); err != nil || gv.OK {
		t.Fatalf("tampered: %+v, %v", gv, err)
	}
	waitStats(t, g, func(s server.Stats) bool { return s.VerdictOK+s.VerdictAttack == 2 })
	waitJournal(t, j, func(c journal.Counters) bool { return c.Appended >= 2 })

	rep, err := journal.ScanDir(nil, dir)
	if err != nil || rep.Break != nil {
		t.Fatalf("scan: break=%v, err=%v", rep.Break, err)
	}
	v := core.NewVerifier(f.link, f.key)
	verdicts := 0
	for _, rec := range rep.Records {
		if rec.Kind != journal.KindVerdict {
			continue
		}
		verdicts++
		chal, reports, err := attest.DecodeEvidence(rec.Payload)
		if err != nil {
			t.Fatalf("evidence decode: %v", err)
		}
		got, err := v.Verify(chal, reports)
		if err != nil {
			t.Fatalf("replay verify: %v", err)
		}
		want := journal.OutcomeAttack
		if got.OK {
			want = journal.OutcomeOK
		} else if got.Code == verify.ReasonInconclusive {
			want = journal.OutcomeInconclusive
		}
		if rec.Outcome != want || rec.Detail != got.Detail {
			t.Fatalf("replay diverges: journaled (%v, %q), replayed (%v, %q)",
				rec.Outcome, rec.Detail, want, got.Detail)
		}
	}
	if verdicts != 2 {
		t.Fatalf("journaled %d verdicts for 2 sessions", verdicts)
	}
}

// --- hostile transport: hand-crafted SLICE frames -------------------

// runReports executes one attested run locally and returns its signed
// report chain, for crafting slice frames by hand.
func runReports(t *testing.T, link *linker.Output, f *appFixture, chal attest.Challenge) []*attest.Report {
	t.Helper()
	p, err := core.NewProver(link, f.key, core.ProverConfig{
		SetupMem:  f.app.SetupMem(),
		Watermark: streamWatermark,
	})
	if err != nil {
		t.Fatal(err)
	}
	reports, _, err := p.Attest(chal)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) < 3 {
		t.Fatalf("watermark produced only %d reports; hostile schedules need several", len(reports))
	}
	return reports
}

// streamHandshake dials, announces (app, device), and consumes the
// DICT/CHAL handshake, returning the live connection and challenge.
func streamHandshake(t *testing.T, addr, app, device string) (net.Conn, attest.Challenge) {
	t.Helper()
	conn := dial(t, addr)
	if err := remote.WriteFrame(conn, remote.FrameHello, remote.EncodeHelloID(app, device)); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := remote.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if typ == remote.FrameDict {
		if typ, payload, err = remote.ReadFrame(conn); err != nil {
			t.Fatal(err)
		}
	}
	if typ != remote.FrameChal {
		t.Fatalf("expected challenge, got frame type %d", typ)
	}
	chal, err := attest.DecodeChallenge(payload)
	if err != nil {
		t.Fatal(err)
	}
	return conn, chal
}

// encodeSlices builds the honest SLICE payload sequence for reports:
// consecutive sequence numbers and the correct running tag chain.
func encodeSlices(chal attest.Challenge, reports []*attest.Report) [][]byte {
	tag := remote.SliceTagInit(chal.Nonce)
	var mark uint32
	out := make([][]byte, len(reports))
	for i, r := range reports {
		tag = remote.SliceTagNext(tag, r.Auth)
		mark += uint32(len(r.CFLog))
		out[i] = remote.EncodeSlice(remote.Slice{
			Seq: uint32(i), Mark: mark, Final: r.Final, Tag: tag, Report: r.Encode(),
		})
	}
	return out
}

// sendSlices writes the given payloads as SLICE frames.
func sendSlices(t *testing.T, conn net.Conn, payloads [][]byte) {
	t.Helper()
	for _, p := range payloads {
		if err := remote.WriteFrame(conn, remote.FrameSlice, p); err != nil {
			t.Fatal(err)
		}
	}
}

// expectFrame reads frames until one of type want arrives (skipping HEAL
// frames, which ride interleaved), failing on anything else.
func expectFrame(t *testing.T, conn net.Conn, want byte) []byte {
	t.Helper()
	for {
		typ, payload, err := remote.ReadFrame(conn)
		if err != nil {
			t.Fatalf("reading for frame type %d: %v", want, err)
		}
		if typ == want {
			return payload
		}
		if typ == remote.FrameHeal {
			continue
		}
		t.Fatalf("expected frame type %d, got %d (%q)", want, typ, payload)
	}
}

// TestGatewayStreamChaos drives hostile slice schedules — loss, loss
// with renumbering, reordering, duplication — plus a compromised device
// that never acks its HEAL. The invariants: no schedule ever yields an
// accepted verdict it did not earn, the tag chain catches every
// transport mutation, and a compromise is alarmed within one slice of
// the evidence that proves it.
func TestGatewayStreamChaos(t *testing.T) {
	f := fixture(t, "gps")
	g, addr, _ := startGateway(t, []server.Option{server.WithMining(-1, 0, 0)}, "gps")

	// Every hostile schedule must end in a FAIL frame (never VRDT-OK).
	hostile := []struct {
		name    string
		mutate  func([][]byte) [][]byte
		failSub string // expected FAIL payload substring
	}{
		{
			name: "slice-dropped",
			mutate: func(s [][]byte) [][]byte {
				return append(s[:1:1], s[2:]...) // drop slice 1: seq jumps
			},
			failSub: "out of order",
		},
		{
			name: "slice-dropped-renumbered",
			mutate: func(s [][]byte) [][]byte {
				// A smarter middle box re-sequences after the drop; the
				// running tag chain still betrays the missing slice.
				kept := append(s[:1:1], s[2:]...)
				out := make([][]byte, len(kept))
				for i, p := range kept {
					sl, err := remote.DecodeSlice(p)
					if err != nil {
						t.Fatal(err)
					}
					sl.Seq = uint32(i)
					out[i] = remote.EncodeSlice(sl)
				}
				return out
			},
			failSub: "tag chain",
		},
		{
			name: "slices-reordered",
			mutate: func(s [][]byte) [][]byte {
				out := append([][]byte(nil), s...)
				out[0], out[1] = out[1], out[0]
				return out
			},
			failSub: "out of order",
		},
		{
			name: "slice-duplicated",
			mutate: func(s [][]byte) [][]byte {
				out := append([][]byte(nil), s[:2]...)
				out = append(out, s[1]) // replay slice 1
				return append(out, s[2:]...)
			},
			failSub: "out of order",
		},
	}
	for i, tc := range hostile {
		t.Run(tc.name, func(t *testing.T) {
			conn, chal := streamHandshake(t, addr, "gps", "dev-hostile")
			reports := runReports(t, f.link, f, chal)
			slices := tc.mutate(encodeSlices(chal, reports))
			// The gateway FAILs at the first bad frame and hangs up; a
			// write into the closed half is acceptable, detection is not.
			for _, p := range slices {
				if remote.WriteFrame(conn, remote.FrameSlice, p) != nil {
					break
				}
			}
			payload := expectFrame(t, conn, remote.FrameFail)
			if !strings.Contains(string(payload), tc.failSub) {
				t.Errorf("FAIL = %q, want substring %q", payload, tc.failSub)
			}
			st := g.Snapshot()
			if st.VerdictOK != 0 {
				t.Fatalf("false accept under %s: %+v", tc.name, st)
			}
			_ = i
		})
	}
	st := waitStats(t, g, func(s server.Stats) bool {
		return s.SessionsFailed >= uint64(len(hostile))
	})
	if st.StreamTagBreaks == 0 {
		t.Errorf("renumbered drop never broke the tag chain: %+v", st)
	}

	// Bounded detection: a tampered device is alarmed on the very first
	// slice — the HEAL directive arrives while the rest of the evidence
	// is still unsent — and never acking leaves it quarantined.
	t.Run("heal-ack-dropped", func(t *testing.T) {
		conn, chal := streamHandshake(t, addr, "gps", "dev-noack")
		reports := runReports(t, tamperedLink(t, f), f, chal)
		slices := encodeSlices(chal, reports)
		sendSlices(t, conn, slices[:1])
		healPayload := expectFrame(t, conn, remote.FrameHeal)
		h, err := remote.DecodeHeal(healPayload)
		if err != nil {
			t.Fatal(err)
		}
		if h.Directive != remote.HealReprovision || h.Seq != 0 {
			t.Errorf("heal = %+v, want re-provision at slice 0", h)
		}
		sendSlices(t, conn, slices[1:])
		vp := expectFrame(t, conn, remote.FrameVerdict)
		gv, err := remote.DecodeVerdict(vp)
		if err != nil {
			t.Fatal(err)
		}
		if gv.OK || !strings.Contains(gv.Reason(), "H_MEM") {
			t.Fatalf("verdict = %+v", gv)
		}
		// No ack ever sent: the sealed attack leaves the device quarantined.
		waitStats(t, g, func(s server.Stats) bool { return s.VerdictAttack >= 1 })
		if hs := g.HealState("gps", "dev-noack"); hs != server.HealQuarantined {
			t.Errorf("HealState = %v, want quarantined", hs)
		}
		if st := g.Snapshot(); st.HealAcks != 0 {
			t.Errorf("HealAcks = %d, want 0", st.HealAcks)
		}
	})
}
