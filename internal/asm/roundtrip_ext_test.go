package asm_test

import (
	"testing"

	"raptrack/internal/apps"
	"raptrack/internal/asm"
	"raptrack/internal/mem"
)

// TestAppsSurviveTextRoundTrip formats every registered workload as
// assembly text, re-parses it, and checks the laid-out images are
// identical (H_MEM equality) — the strongest whole-surface test of the
// text assembler.
func TestAppsSurviveTextRoundTrip(t *testing.T) {
	for _, a := range apps.All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			orig := a.Build()
			text := asm.Format(orig)
			reparsed, err := asm.Parse(a.Name, text)
			if err != nil {
				t.Fatalf("parse formatted %s: %v", a.Name, err)
			}
			imgA, err := asm.Layout(orig, mem.NSCodeBase)
			if err != nil {
				t.Fatal(err)
			}
			imgB, err := asm.Layout(reparsed, mem.NSCodeBase)
			if err != nil {
				t.Fatalf("layout reparsed: %v", err)
			}
			if imgA.Hash() != imgB.Hash() {
				t.Errorf("%s: text round trip changed the image", a.Name)
			}
		})
	}
}
