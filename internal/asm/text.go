package asm

import (
	"fmt"
	"strconv"
	"strings"

	"raptrack/internal/isa"
)

// Textual assembly. The syntax mirrors the disassembler output:
//
//	; line comment
//	.func main              ; first function is the entry point
//	    push {r4, lr}
//	    mov r0, #5
//	    movw r1, :lower16:table
//	    movt r1, :upper16:table
//	loop:
//	    ldr r2, [r1, #4]
//	    str r2, [r1, r3]
//	    add r0, r0, #1
//	    cmp r0, #10
//	    blt loop
//	    ldrpc [r1, r0]
//	    bl helper
//	    pop {r4, pc}
//	.data table
//	    .word main.loop, helper ; symbol table (jump tables)
//	.bytes blob 01 02 ff        ; raw bytes
//
// Parse builds a Program; Format renders one back to parseable text
// (Parse∘Format is identity up to layout).

// ParseError reports a syntax error with its line number.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

type parser struct {
	prog *Program
	fn   *Function
	line int
}

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Line: p.line, Msg: fmt.Sprintf(format, args...)}
}

// Parse assembles source text into a Program.
func Parse(name, src string) (*Program, error) {
	p := &parser{prog: NewProgram(name)}
	for i, raw := range strings.Split(src, "\n") {
		p.line = i + 1
		line := raw
		if idx := strings.IndexByte(line, ';'); idx >= 0 {
			line = line[:idx]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := p.parseLine(line); err != nil {
			return nil, err
		}
	}
	if len(p.prog.Funcs) == 0 {
		return nil, &ParseError{Line: 0, Msg: "no .func defined"}
	}
	return p.prog, nil
}

func (p *parser) parseLine(line string) error {
	switch {
	case strings.HasPrefix(line, ".func "):
		name := strings.TrimSpace(line[len(".func "):])
		if name == "" {
			return p.errf(".func needs a name")
		}
		p.fn = p.prog.NewFunc(name)
		return nil
	case strings.HasPrefix(line, ".entry "):
		p.prog.Entry = strings.TrimSpace(line[len(".entry "):])
		return nil
	case strings.HasPrefix(line, ".data "):
		return p.parseData(line[len(".data "):])
	case strings.HasPrefix(line, ".bytes "):
		return p.parseBytes(line[len(".bytes "):])
	}
	if strings.HasSuffix(line, ":") {
		if p.fn == nil {
			return p.errf("label outside a function")
		}
		label := strings.TrimSuffix(line, ":")
		if !validIdent(label) {
			return p.errf("bad label %q", label)
		}
		if _, dup := p.fn.Labels()[label]; dup {
			return p.errf("duplicate label %q", label)
		}
		p.fn.Label(label)
		return nil
	}
	if p.fn == nil {
		return p.errf("instruction outside a function")
	}
	return p.parseInstr(line)
}

func (p *parser) parseData(rest string) error {
	// ".data name" on its own line followed by ".word" is also allowed,
	// but the common form is ".data name" then a ".word" list inline:
	// .data name
	//     .word a, b
	// For simplicity: ".data name .word a, b" single-line or use .bytes.
	fields := strings.SplitN(strings.TrimSpace(rest), " ", 2)
	name := fields[0]
	if !validIdent(name) && !strings.Contains(name, ".") {
		return p.errf("bad data segment name %q", name)
	}
	seg := &DataSegment{Name: name}
	if len(fields) == 2 {
		body := strings.TrimSpace(fields[1])
		if !strings.HasPrefix(body, ".word ") {
			return p.errf(".data %s: expected .word list", name)
		}
		for _, s := range strings.Split(body[len(".word "):], ",") {
			sym := strings.TrimSpace(s)
			if sym == "" {
				return p.errf(".data %s: empty symbol", name)
			}
			seg.Syms = append(seg.Syms, sym)
		}
	}
	p.prog.AddData(seg)
	return nil
}

func (p *parser) parseBytes(rest string) error {
	fields := strings.Fields(rest)
	if len(fields) < 1 {
		return p.errf(".bytes needs a name")
	}
	seg := &DataSegment{Name: fields[0]}
	for _, h := range fields[1:] {
		v, err := strconv.ParseUint(h, 16, 8)
		if err != nil {
			return p.errf(".bytes %s: bad hex byte %q", seg.Name, h)
		}
		seg.Bytes = append(seg.Bytes, byte(v))
	}
	p.prog.AddData(seg)
	return nil
}

func validIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func parseReg(s string) (isa.Reg, bool) {
	switch s {
	case "sp":
		return isa.SP, true
	case "lr":
		return isa.LR, true
	case "pc":
		return isa.PC, true
	}
	if strings.HasPrefix(s, "r") {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n <= 12 {
			return isa.Reg(n), true
		}
	}
	return 0, false
}

func parseImm(s string) (int32, bool) {
	if !strings.HasPrefix(s, "#") {
		return 0, false
	}
	v, err := strconv.ParseInt(strings.TrimPrefix(s[1:], "+"), 0, 64)
	if err != nil || v < -1<<31 || v > 1<<32-1 {
		return 0, false
	}
	return int32(v), true
}

// condSuffixes maps branch mnemonic suffixes to conditions.
var condSuffixes = map[string]isa.Cond{
	"eq": isa.EQ, "ne": isa.NE, "cs": isa.CS, "cc": isa.CC,
	"mi": isa.MI, "pl": isa.PL, "vs": isa.VS, "vc": isa.VC,
	"hi": isa.HI, "ls": isa.LS, "ge": isa.GE, "lt": isa.LT,
	"gt": isa.GT, "le": isa.LE,
}

// splitOperands splits on commas not inside {...} or [...].
func splitOperands(s string) []string {
	var out []string
	depth := 0
	start := 0
	for i, r := range s {
		switch r {
		case '{', '[':
			depth++
		case '}', ']':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	if rest := strings.TrimSpace(s[start:]); rest != "" {
		out = append(out, rest)
	}
	return out
}

func (p *parser) parseRegList(s string) (isa.RegList, error) {
	if !strings.HasPrefix(s, "{") || !strings.HasSuffix(s, "}") {
		return 0, p.errf("expected register list, got %q", s)
	}
	var l isa.RegList
	for _, part := range strings.Split(s[1:len(s)-1], ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		r, ok := parseReg(part)
		if !ok {
			return 0, p.errf("bad register %q in list", part)
		}
		l |= isa.Regs(r)
	}
	return l, nil
}

// parseMem parses "[rn, #imm]" or "[rn, rm]" -> (rn, rm, imm, isReg).
func (p *parser) parseMem(s string) (rn, rm isa.Reg, imm int32, isReg bool, err error) {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, 0, false, p.errf("expected memory operand, got %q", s)
	}
	parts := strings.Split(s[1:len(s)-1], ",")
	rn, ok := parseReg(strings.TrimSpace(parts[0]))
	if !ok {
		return 0, 0, 0, false, p.errf("bad base register in %q", s)
	}
	if len(parts) == 1 {
		return rn, 0, 0, false, nil
	}
	second := strings.TrimSpace(parts[1])
	if v, ok := parseImm(second); ok {
		return rn, 0, v, false, nil
	}
	if r, ok := parseReg(second); ok {
		return rn, r, 0, true, nil
	}
	return 0, 0, 0, false, p.errf("bad offset %q", second)
}

func (p *parser) parseInstr(line string) error {
	sp := strings.IndexAny(line, " \t")
	mnem := line
	rest := ""
	if sp >= 0 {
		mnem = line[:sp]
		rest = strings.TrimSpace(line[sp+1:])
	}
	ops := splitOperands(rest)
	f := p.fn

	emit3r := func(op isa.Op) error {
		if len(ops) != 3 {
			return p.errf("%s needs 3 operands", mnem)
		}
		rd, ok1 := parseReg(ops[0])
		rn, ok2 := parseReg(ops[1])
		if !ok1 || !ok2 {
			return p.errf("%s: bad registers", mnem)
		}
		if imm, ok := parseImm(ops[2]); ok {
			switch op {
			case isa.OpADDr:
				f.ADDi(rd, rn, imm)
			case isa.OpSUBr:
				f.SUBi(rd, rn, imm)
			case isa.OpLSLr:
				f.LSLi(rd, rn, imm)
			case isa.OpLSRr:
				f.LSRi(rd, rn, imm)
			default:
				if op == isa.OpANDr || op == isa.OpORRr || op == isa.OpEORr ||
					op == isa.OpBICr || op == isa.OpMUL || op == isa.OpUDIV || op == isa.OpSDIV {
					return p.errf("%s: immediate form not supported", mnem)
				}
				f.Emit(isa.Instr{Op: op, Rd: rd, Rn: rn, Imm: imm})
			}
			return nil
		}
		rm, ok := parseReg(ops[2])
		if !ok {
			return p.errf("%s: bad third operand %q", mnem, ops[2])
		}
		f.Emit(isa.Instr{Op: op, Rd: rd, Rn: rn, Rm: rm})
		return nil
	}

	memOp := func(opImm, opReg isa.Op) error {
		if len(ops) != 2 {
			return p.errf("%s needs 2 operands", mnem)
		}
		rd, ok := parseReg(ops[0])
		if !ok {
			return p.errf("%s: bad register %q", mnem, ops[0])
		}
		rn, rm, imm, isReg, err := p.parseMem(ops[1])
		if err != nil {
			return err
		}
		if isReg {
			if opReg == isa.OpInvalid {
				return p.errf("%s: register offset not supported", mnem)
			}
			f.Emit(isa.Instr{Op: opReg, Rd: rd, Rn: rn, Rm: rm})
		} else {
			f.Emit(isa.Instr{Op: opImm, Rd: rd, Rn: rn, Imm: imm})
		}
		return nil
	}

	switch mnem {
	case "nop":
		f.NOP()
	case "hlt":
		f.HLT()
	case "bkpt":
		f.BKPT()
	case "ret":
		f.RET()
	case "mov":
		if len(ops) != 2 {
			return p.errf("mov needs 2 operands")
		}
		rd, ok := parseReg(ops[0])
		if !ok {
			return p.errf("mov: bad register %q", ops[0])
		}
		if imm, ok := parseImm(ops[1]); ok {
			f.MOVi(rd, imm)
		} else if rm, ok := parseReg(ops[1]); ok {
			f.MOVr(rd, rm)
		} else {
			return p.errf("mov: bad operand %q", ops[1])
		}
	case "mvn":
		if len(ops) != 2 {
			return p.errf("mvn needs 2 operands")
		}
		rd, ok1 := parseReg(ops[0])
		rm, ok2 := parseReg(ops[1])
		if !ok1 || !ok2 {
			return p.errf("mvn: bad registers")
		}
		f.MVN(rd, rm)
	case "movw", "movt":
		if len(ops) != 2 {
			return p.errf("%s needs 2 operands", mnem)
		}
		rd, ok := parseReg(ops[0])
		if !ok {
			return p.errf("%s: bad register", mnem)
		}
		op := isa.OpMOVW
		half := ":lower16:"
		if mnem == "movt" {
			op = isa.OpMOVT
			half = ":upper16:"
		}
		if strings.HasPrefix(ops[1], half) {
			f.Emit(isa.Instr{Op: op, Rd: rd, Sym: ops[1][len(half):]})
		} else if imm, ok := parseImm(ops[1]); ok {
			f.Emit(isa.Instr{Op: op, Rd: rd, Imm: imm})
		} else {
			return p.errf("%s: bad operand %q", mnem, ops[1])
		}
	case "adr":
		if len(ops) != 2 {
			return p.errf("adr needs 2 operands")
		}
		rd, ok := parseReg(ops[0])
		if !ok {
			return p.errf("adr: bad register")
		}
		f.ADR(rd, ops[1])
	case "add":
		return emit3r(isa.OpADDr)
	case "sub":
		return emit3r(isa.OpSUBr)
	case "rsb":
		if len(ops) != 3 {
			return p.errf("rsb needs 3 operands")
		}
		rd, _ := parseReg(ops[0])
		rn, _ := parseReg(ops[1])
		imm, ok := parseImm(ops[2])
		if !ok {
			return p.errf("rsb: immediate required")
		}
		f.RSBi(rd, rn, imm)
	case "mul":
		return emit3r(isa.OpMUL)
	case "udiv":
		return emit3r(isa.OpUDIV)
	case "sdiv":
		return emit3r(isa.OpSDIV)
	case "and":
		return emit3r(isa.OpANDr)
	case "orr":
		return emit3r(isa.OpORRr)
	case "eor":
		return emit3r(isa.OpEORr)
	case "bic":
		return emit3r(isa.OpBICr)
	case "lsl":
		return emit3r(isa.OpLSLr)
	case "lsr":
		return emit3r(isa.OpLSRr)
	case "asr":
		if len(ops) != 3 {
			return p.errf("asr needs 3 operands")
		}
		rd, _ := parseReg(ops[0])
		rn, _ := parseReg(ops[1])
		imm, ok := parseImm(ops[2])
		if !ok {
			return p.errf("asr: immediate required")
		}
		f.ASRi(rd, rn, imm)
	case "cmp":
		if len(ops) != 2 {
			return p.errf("cmp needs 2 operands")
		}
		rn, ok := parseReg(ops[0])
		if !ok {
			return p.errf("cmp: bad register")
		}
		if imm, ok := parseImm(ops[1]); ok {
			f.CMPi(rn, imm)
		} else if rm, ok := parseReg(ops[1]); ok {
			f.CMPr(rn, rm)
		} else {
			return p.errf("cmp: bad operand %q", ops[1])
		}
	case "tst":
		if len(ops) != 2 {
			return p.errf("tst needs 2 operands")
		}
		rn, _ := parseReg(ops[0])
		rm, ok := parseReg(ops[1])
		if !ok {
			return p.errf("tst: bad register")
		}
		f.TST(rn, rm)
	case "ldr":
		return memOp(isa.OpLDRi, isa.OpLDRr)
	case "ldrb":
		return memOp(isa.OpLDRBi, isa.OpLDRBr)
	case "ldrh":
		return memOp(isa.OpLDRHi, isa.OpInvalid)
	case "str":
		return memOp(isa.OpSTRi, isa.OpSTRr)
	case "strb":
		return memOp(isa.OpSTRBi, isa.OpSTRBr)
	case "strh":
		return memOp(isa.OpSTRHi, isa.OpInvalid)
	case "ldrpc":
		if len(ops) != 1 {
			return p.errf("ldrpc needs a memory operand")
		}
		s := ops[0]
		s = strings.TrimSuffix(s, ", lsl #2]") + "]"
		rn, rm, _, isReg, err := p.parseMem(s)
		if err != nil {
			return err
		}
		if !isReg {
			return p.errf("ldrpc needs [rn, rm]")
		}
		f.LDRPC(rn, rm)
	case "push":
		if len(ops) != 1 {
			return p.errf("push needs a register list")
		}
		l, err := p.parseRegList(ops[0])
		if err != nil {
			return err
		}
		f.Emit(isa.Instr{Op: isa.OpPUSH, List: l})
	case "pop":
		if len(ops) != 1 {
			return p.errf("pop needs a register list")
		}
		l, err := p.parseRegList(ops[0])
		if err != nil {
			return err
		}
		f.Emit(isa.Instr{Op: isa.OpPOP, List: l})
	case "b":
		if len(ops) != 1 {
			return p.errf("b needs a target")
		}
		f.B(ops[0])
	case "bl":
		if len(ops) != 1 {
			return p.errf("bl needs a target")
		}
		f.BL(ops[0])
	case "blx":
		if len(ops) != 1 {
			return p.errf("blx needs a register")
		}
		rm, ok := parseReg(ops[0])
		if !ok {
			return p.errf("blx: bad register %q", ops[0])
		}
		f.BLX(rm)
	case "bx":
		if len(ops) != 1 {
			return p.errf("bx needs a register")
		}
		rm, ok := parseReg(ops[0])
		if !ok {
			return p.errf("bx: bad register %q", ops[0])
		}
		f.BX(rm)
	case "secall":
		if len(ops) != 1 {
			return p.errf("secall needs an immediate")
		}
		imm, ok := parseImm(ops[0])
		if !ok {
			return p.errf("secall: bad immediate %q", ops[0])
		}
		f.SECALL(imm)
	default:
		// Conditional branch: b<cond> target.
		if strings.HasPrefix(mnem, "b") {
			if cond, ok := condSuffixes[mnem[1:]]; ok {
				if len(ops) != 1 {
					return p.errf("%s needs a target", mnem)
				}
				f.Bcc(cond, ops[0])
				return nil
			}
		}
		return p.errf("unknown mnemonic %q", mnem)
	}
	return nil
}

// Format renders a program as parseable assembly text. Labels are placed
// by index; data segments use .word for symbol tables and .bytes
// otherwise.
func Format(p *Program) string {
	var b strings.Builder
	if p.Entry != "" && (len(p.Funcs) == 0 || p.Funcs[0].Name != p.Entry) {
		fmt.Fprintf(&b, ".entry %s\n", p.Entry)
	}
	for _, fn := range p.Funcs {
		fmt.Fprintf(&b, ".func %s\n", fn.Name)
		byIdx := make(map[int][]string)
		for name, idx := range fn.Labels() {
			byIdx[idx] = append(byIdx[idx], name)
		}
		for i := 0; i <= len(fn.Instrs); i++ {
			for _, name := range sortedStrings(byIdx[i]) {
				fmt.Fprintf(&b, "%s:\n", name)
			}
			if i == len(fn.Instrs) {
				break
			}
			fmt.Fprintf(&b, "    %s\n", fn.Instrs[i])
		}
	}
	for _, d := range p.Data {
		if len(d.Syms) > 0 {
			fmt.Fprintf(&b, ".data %s .word %s\n", d.Name, strings.Join(d.Syms, ", "))
		} else {
			fmt.Fprintf(&b, ".bytes %s", d.Name)
			for _, v := range d.Bytes {
				fmt.Fprintf(&b, " %02x", v)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func sortedStrings(s []string) []string {
	out := append([]string(nil), s...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
