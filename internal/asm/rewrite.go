package asm

import "raptrack/internal/isa"

// Edit replaces the instruction at one index with a sequence during
// RewriteFunc. Labels maps inner label names to offsets within Seq; an
// offset equal to len(Seq) names the position immediately after the
// replacement (i.e., the next original instruction).
type Edit struct {
	Seq    []isa.Instr
	Labels map[string]int
}

// RewriteFunc applies edits to fn in place, adjusting the label table, and
// returns the mapping from original instruction index to new index. The
// returned slice has len(old)+1 entries; the final entry maps the
// end-of-function position. Labels previously pointing at an edited index
// point at the start of its replacement.
func RewriteFunc(fn *Function, edits map[int]Edit) []int {
	old := fn.Instrs
	byIdx := make(map[int][]string)
	for name, idx := range fn.Labels() {
		byIdx[idx] = append(byIdx[idx], name)
	}
	var instrs []isa.Instr
	labels := make(map[string]int)
	newIndex := make([]int, len(old)+1)
	for i := 0; i <= len(old); i++ {
		newIndex[i] = len(instrs)
		for _, name := range byIdx[i] {
			labels[name] = len(instrs)
		}
		if i == len(old) {
			break
		}
		if e, ok := edits[i]; ok {
			for name, off := range e.Labels {
				labels[name] = len(instrs) + off
			}
			instrs = append(instrs, e.Seq...)
		} else {
			instrs = append(instrs, old[i])
		}
	}
	fn.Instrs = instrs
	fn.SetLabels(labels)
	return newIndex
}
