// Package asm provides the program representation used across the
// repository: functions of instructions with symbolic labels, read-only
// data segments (jump tables, string constants), a builder API for writing
// workloads, and a two-pass layout engine that assigns addresses and
// resolves symbols into an executable Image.
package asm

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"raptrack/internal/isa"
)

// Function is a unit of code: a named sequence of instructions with
// function-local labels. A label defined at index i names the address of
// the i-th instruction (or the end of the function if i == len(Instrs)).
type Function struct {
	Name   string
	Instrs []isa.Instr
	labels map[string]int
}

// NewFunction creates an empty function.
func NewFunction(name string) *Function {
	return &Function{Name: name, labels: make(map[string]int)}
}

// Label defines a local label at the current position. Defining the same
// label twice panics: programs are constructed by code, so this is a bug,
// not input.
func (f *Function) Label(name string) {
	if _, dup := f.labels[name]; dup {
		panic(fmt.Sprintf("asm: duplicate label %q in %q", name, f.Name))
	}
	f.labels[name] = len(f.Instrs)
}

// Labels returns a copy of the function's label table (label -> instruction
// index).
func (f *Function) Labels() map[string]int {
	out := make(map[string]int, len(f.labels))
	for k, v := range f.labels {
		out[k] = v
	}
	return out
}

// SetLabels replaces the label table; used by the linker when rewriting
// instruction sequences.
func (f *Function) SetLabels(l map[string]int) { f.labels = l }

// Emit appends an instruction and returns its index.
func (f *Function) Emit(i isa.Instr) int {
	f.Instrs = append(f.Instrs, i)
	return len(f.Instrs) - 1
}

// Size returns the function's code footprint in bytes.
func (f *Function) Size() uint32 {
	var n uint32
	for _, i := range f.Instrs {
		n += i.Size()
	}
	return n
}

// DataSegment is read-only data placed after the code (jump tables,
// lookup tables, constant strings). Either Bytes or Syms is used: Syms
// emits one 32-bit word per entry holding the named symbol's address.
type DataSegment struct {
	Name  string
	Bytes []byte
	Syms  []string
}

// Size returns the segment's footprint in bytes.
func (d *DataSegment) Size() uint32 {
	if len(d.Syms) > 0 {
		return uint32(4 * len(d.Syms))
	}
	return uint32(len(d.Bytes))
}

// Program is a complete application: functions in layout order, data
// segments, and the entry function name.
type Program struct {
	Name  string
	Funcs []*Function
	Data  []*DataSegment
	Entry string
}

// NewProgram creates an empty program.
func NewProgram(name string) *Program { return &Program{Name: name} }

// AddFunc appends fn to the program and returns it.
func (p *Program) AddFunc(fn *Function) *Function {
	p.Funcs = append(p.Funcs, fn)
	return fn
}

// NewFunc creates, appends and returns a new function. The first function
// added becomes the entry point unless Entry is set explicitly.
func (p *Program) NewFunc(name string) *Function {
	fn := NewFunction(name)
	if p.Entry == "" {
		p.Entry = name
	}
	return p.AddFunc(fn)
}

// Func returns the named function, or nil.
func (p *Program) Func(name string) *Function {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// AddData appends a data segment.
func (p *Program) AddData(d *DataSegment) { p.Data = append(p.Data, d) }

// Clone returns a deep copy of the program. The linker transforms a clone,
// leaving the original (the Verifier's reference copy) untouched.
func (p *Program) Clone() *Program {
	q := &Program{Name: p.Name, Entry: p.Entry}
	for _, f := range p.Funcs {
		nf := NewFunction(f.Name)
		nf.Instrs = append([]isa.Instr(nil), f.Instrs...)
		for k, v := range f.labels {
			nf.labels[k] = v
		}
		q.Funcs = append(q.Funcs, nf)
	}
	for _, d := range p.Data {
		nd := &DataSegment{Name: d.Name}
		nd.Bytes = append([]byte(nil), d.Bytes...)
		nd.Syms = append([]string(nil), d.Syms...)
		q.Data = append(q.Data, nd)
	}
	return q
}

// Range is a half-open address interval.
type Range struct{ Base, Limit uint32 }

// Contains reports whether addr falls inside the range.
func (r Range) Contains(addr uint32) bool { return addr >= r.Base && addr < r.Limit }

// Image is a laid-out program: every instruction has an address, every
// symbolic reference is resolved, and data segments have concrete bytes.
type Image struct {
	Prog *Program
	Base uint32

	// Code maps instruction address -> instruction (Addr/Target resolved).
	Code map[uint32]isa.Instr
	// Order lists instruction addresses in ascending order.
	Order []uint32

	// Symbols maps function names, qualified labels ("func.label") and
	// data segment names to addresses.
	Symbols map[string]uint32
	// FuncRanges maps each function name to its address range.
	FuncRanges map[string]Range
	// DataBase is the address of the first data segment; DataBytes the
	// concatenated segment contents (4-byte aligned start).
	DataBase  uint32
	DataBytes []byte

	// CodeSize is the code-only footprint; TotalSize includes data.
	CodeSize  uint32
	TotalSize uint32
}

// LayoutError reports a symbol resolution or layout failure.
type LayoutError struct {
	Func string
	Sym  string
	Msg  string
}

func (e *LayoutError) Error() string {
	if e.Sym != "" {
		return fmt.Sprintf("asm: layout of %q: symbol %q: %s", e.Func, e.Sym, e.Msg)
	}
	return fmt.Sprintf("asm: layout of %q: %s", e.Func, e.Msg)
}

// Layout assigns addresses starting at base, resolves all symbols, and
// returns the executable image. Functions are placed in Program order,
// then data segments (4-byte aligned).
func Layout(p *Program, base uint32) (*Image, error) {
	img := &Image{
		Prog:       p,
		Base:       base,
		Code:       make(map[uint32]isa.Instr),
		Symbols:    make(map[string]uint32),
		FuncRanges: make(map[string]Range),
	}

	// Pass 1: assign addresses and build the symbol table.
	addr := base
	type placed struct {
		fn    *Function
		addrs []uint32 // address of each instruction
		end   uint32
	}
	var placements []placed
	for _, fn := range p.Funcs {
		if _, dup := img.Symbols[fn.Name]; dup {
			return nil, &LayoutError{Func: fn.Name, Msg: "duplicate function name"}
		}
		img.Symbols[fn.Name] = addr
		pl := placed{fn: fn, addrs: make([]uint32, len(fn.Instrs))}
		start := addr
		for i, ins := range fn.Instrs {
			pl.addrs[i] = addr
			addr += ins.Size()
		}
		pl.end = addr
		img.FuncRanges[fn.Name] = Range{start, addr}
		for name, idx := range fn.labels {
			var la uint32
			if idx < len(pl.addrs) {
				la = pl.addrs[idx]
			} else {
				la = pl.end
			}
			img.Symbols[fn.Name+"."+name] = la
		}
		placements = append(placements, pl)
	}
	img.CodeSize = addr - base

	// Data segments, 4-byte aligned.
	addr = (addr + 3) &^ 3
	img.DataBase = addr
	for _, d := range p.Data {
		if _, dup := img.Symbols[d.Name]; dup {
			return nil, &LayoutError{Func: d.Name, Msg: "duplicate data segment name"}
		}
		img.Symbols[d.Name] = addr
		addr += d.Size()
	}
	img.TotalSize = addr - base

	// Pass 2: resolve symbols in instructions.
	resolve := func(fn *Function, sym string) (uint32, error) {
		if a, ok := img.Symbols[fn.Name+"."+sym]; ok {
			return a, nil
		}
		if a, ok := img.Symbols[sym]; ok {
			return a, nil
		}
		return 0, &LayoutError{Func: fn.Name, Sym: sym, Msg: "undefined"}
	}
	for _, pl := range placements {
		for i := range pl.fn.Instrs {
			ins := &pl.fn.Instrs[i]
			ins.Addr = pl.addrs[i]
			if ins.Sym == "" {
				img.Code[ins.Addr] = *ins
				continue
			}
			t, err := resolve(pl.fn, ins.Sym)
			if err != nil {
				return nil, err
			}
			ins.Target = t
			switch ins.Op {
			case isa.OpMOVW:
				ins.Imm = int32(t & 0xffff)
			case isa.OpMOVT:
				ins.Imm = int32(t >> 16)
			}
			img.Code[ins.Addr] = *ins
		}
	}

	// Materialize data bytes.
	for _, d := range p.Data {
		if len(d.Syms) > 0 {
			for _, s := range d.Syms {
				a, ok := img.Symbols[s]
				if !ok {
					return nil, &LayoutError{Func: d.Name, Sym: s, Msg: "undefined in data segment"}
				}
				img.DataBytes = binary.LittleEndian.AppendUint32(img.DataBytes, a)
			}
		} else {
			img.DataBytes = append(img.DataBytes, d.Bytes...)
		}
	}

	img.Order = make([]uint32, 0, len(img.Code))
	for a := range img.Code {
		img.Order = append(img.Order, a)
	}
	sort.Slice(img.Order, func(i, j int) bool { return img.Order[i] < img.Order[j] })
	return img, nil
}

// EntryAddr returns the address of the program's entry function.
func (img *Image) EntryAddr() (uint32, error) {
	a, ok := img.Symbols[img.Prog.Entry]
	if !ok {
		return 0, fmt.Errorf("asm: entry function %q not in image", img.Prog.Entry)
	}
	return a, nil
}

// InstrAt returns the instruction at addr.
func (img *Image) InstrAt(addr uint32) (isa.Instr, bool) {
	i, ok := img.Code[addr]
	return i, ok
}

// FuncOf returns the name of the function containing addr, or "".
func (img *Image) FuncOf(addr uint32) string {
	for name, r := range img.FuncRanges {
		if r.Contains(addr) {
			return name
		}
	}
	return ""
}

// CanonicalBytes serializes the image's current contents — every
// instruction in address order (canonical encoding) followed by the data
// bytes. This is the byte stream H_MEM is computed over; it changes if any
// instruction or table byte is tampered with.
func (img *Image) CanonicalBytes() []byte {
	var out []byte
	out = binary.LittleEndian.AppendUint32(out, img.Base)
	for _, a := range img.Order {
		ins := img.Code[a]
		out = binary.LittleEndian.AppendUint32(out, a)
		out = ins.Encode(out)
	}
	out = append(out, img.DataBytes...)
	return out
}

// Hash returns SHA-256 over CanonicalBytes — the H_MEM measurement.
func (img *Image) Hash() [32]byte { return sha256.Sum256(img.CanonicalBytes()) }

// Dump disassembles the image (test/debug aid).
func (img *Image) Dump() string {
	// Invert symbols for annotation.
	names := make(map[uint32][]string)
	for s, a := range img.Symbols {
		names[a] = append(names[a], s)
	}
	var b strings.Builder
	for _, a := range img.Order {
		if ns := names[a]; len(ns) > 0 {
			sort.Strings(ns)
			fmt.Fprintf(&b, "%s:\n", strings.Join(ns, ", "))
		}
		fmt.Fprintf(&b, "  %#08x: %s\n", a, img.Code[a])
	}
	if len(img.DataBytes) > 0 {
		fmt.Fprintf(&b, "  %#08x: .data (%d bytes)\n", img.DataBase, len(img.DataBytes))
	}
	return b.String()
}
