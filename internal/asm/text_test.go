package asm

import (
	"strings"
	"testing"

	"raptrack/internal/isa"
)

const sampleSrc = `
; a small complete program
.func main
    push {r4, lr}
    mov r0, #5
    movw r1, :lower16:table
    movt r1, :upper16:table
loop:
    add r0, r0, #1
    cmp r0, #10
    blt loop
    ldr r2, [r1, #0]
    bl helper
    pop {r4, pc}
.func helper
    eor r0, r0, r2
    bx lr
.data table .word main.loop, helper
.bytes blob 01 ff 7e
`

func TestParseSample(t *testing.T) {
	p, err := Parse("sample", sampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Funcs) != 2 || p.Entry != "main" {
		t.Fatalf("funcs=%d entry=%q", len(p.Funcs), p.Entry)
	}
	if len(p.Data) != 2 {
		t.Fatalf("data segments = %d", len(p.Data))
	}
	if len(p.Data[0].Syms) != 2 || p.Data[0].Syms[0] != "main.loop" {
		t.Errorf("word segment: %+v", p.Data[0])
	}
	if string(p.Data[1].Bytes) != "\x01\xff\x7e" {
		t.Errorf("byte segment: %x", p.Data[1].Bytes)
	}
	if _, err := Layout(p, 0x20_0000); err != nil {
		t.Fatalf("layout: %v", err)
	}
	main := p.Func("main")
	if main.Instrs[0].Op != isa.OpPUSH || !main.Instrs[0].List.Has(isa.LR) {
		t.Errorf("instr 0 = %v", main.Instrs[0])
	}
	if main.Instrs[2].Op != isa.OpMOVW || main.Instrs[2].Sym != "table" {
		t.Errorf("movw = %v", main.Instrs[2])
	}
	if l, ok := main.Labels()["loop"]; !ok || l != 4 {
		t.Errorf("loop label at %d", l)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"mov r0, #1", "outside a function"},
		{".func f\nfrobnicate r0", "unknown mnemonic"},
		{".func f\nmov r99, #1", "bad"},
		{".func f\nadd r0, r1", "3 operands"},
		{".func f\nx:\nx:\nnop", "duplicate label"},
		{".func f\npush r0", "register list"},
		{".func f\nldr r0, r1", "memory operand"},
		{".bytes blob zz", "bad hex"},
		{"", "no .func"},
		{".func f\nbweird x", "unknown mnemonic"},
	}
	for _, c := range cases {
		if _, err := Parse("t", c.src); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) err = %v, want mention of %q", c.src, err, c.want)
		}
	}
}

func TestParseLineNumbers(t *testing.T) {
	_, err := Parse("t", ".func f\nnop\nbogus r0\n")
	pe, ok := err.(*ParseError)
	if !ok || pe.Line != 3 {
		t.Fatalf("err = %v", err)
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	// A program using every mnemonic family the formatter can emit.
	p := NewProgram("rt")
	f := p.NewFunc("main")
	f.PUSH(isa.R4, isa.LR)
	f.MOVi(isa.R0, 42)
	f.MOVr(isa.R1, isa.R0)
	f.MVN(isa.R2, isa.R1)
	f.LA(isa.R3, "tbl")
	f.ADR(isa.R4, "end")
	f.ADDi(isa.R0, isa.R0, 1)
	f.ADDr(isa.R0, isa.R0, isa.R1)
	f.SUBi(isa.R0, isa.R0, 2)
	f.SUBr(isa.R0, isa.R0, isa.R1)
	f.RSBi(isa.R0, isa.R1, 7)
	f.MUL(isa.R5, isa.R0, isa.R1)
	f.UDIV(isa.R5, isa.R5, isa.R0)
	f.SDIV(isa.R5, isa.R5, isa.R0)
	f.ANDr(isa.R5, isa.R5, isa.R1)
	f.ORRr(isa.R5, isa.R5, isa.R1)
	f.EORr(isa.R5, isa.R5, isa.R1)
	f.BICr(isa.R5, isa.R5, isa.R1)
	f.LSLi(isa.R5, isa.R5, 3)
	f.LSLr(isa.R5, isa.R5, isa.R1)
	f.LSRi(isa.R5, isa.R5, 1)
	f.LSRr(isa.R5, isa.R5, isa.R1)
	f.ASRi(isa.R5, isa.R5, 2)
	f.CMPi(isa.R5, 0)
	f.CMPr(isa.R5, isa.R0)
	f.TST(isa.R5, isa.R0)
	f.Label("loop")
	f.LDRi(isa.R6, isa.R3, 4)
	f.LDRr(isa.R6, isa.R3, isa.R0)
	f.LDRBi(isa.R6, isa.R3, 1)
	f.LDRBr(isa.R6, isa.R3, isa.R0)
	f.LDRHi(isa.R6, isa.R3, 2)
	f.STRi(isa.R6, isa.R3, 4)
	f.STRr(isa.R6, isa.R3, isa.R0)
	f.STRBi(isa.R6, isa.R3, 1)
	f.STRBr(isa.R6, isa.R3, isa.R0)
	f.STRHi(isa.R6, isa.R3, 2)
	f.CMPi(isa.R0, 3)
	f.BNE("loop")
	f.BEQ("end")
	f.LDRPC(isa.R3, isa.R0)
	f.BL("aux")
	f.BLX(isa.R2)
	f.SECALL(5)
	f.NOP()
	f.Label("end")
	f.POP(isa.R4, isa.PC)

	aux := p.AddFunc(NewFunction("aux"))
	aux.ADDi(isa.R0, isa.R0, 1)
	aux.RET()

	p.AddData(&DataSegment{Name: "tbl", Syms: []string{"main.loop", "aux"}})
	p.AddData(&DataSegment{Name: "raw", Bytes: []byte{0xde, 0xad}})

	text := Format(p)
	q, err := Parse("rt", text)
	if err != nil {
		t.Fatalf("parse formatted text: %v\n%s", err, text)
	}
	imgP, err := Layout(p, 0x20_0000)
	if err != nil {
		t.Fatal(err)
	}
	imgQ, err := Layout(q, 0x20_0000)
	if err != nil {
		t.Fatalf("layout reparsed: %v", err)
	}
	if imgP.Hash() != imgQ.Hash() {
		// Diagnose the first difference.
		for i := range p.Funcs {
			a, b := p.Funcs[i], q.Funcs[i]
			for j := range a.Instrs {
				if j >= len(b.Instrs) || a.Instrs[j] != b.Instrs[j] {
					t.Fatalf("func %s instr %d: %v vs %v", a.Name, j, a.Instrs[j], b.Instrs[j])
				}
			}
		}
		t.Fatal("round trip changed the image hash")
	}
}

func TestFormatEntryDirective(t *testing.T) {
	p := NewProgram("t")
	p.NewFunc("helper")
	p.AddFunc(NewFunction("main")).HLT()
	p.Func("helper").HLT()
	p.Entry = "main"
	text := Format(p)
	if !strings.Contains(text, ".entry main") {
		t.Fatalf("missing .entry:\n%s", text)
	}
	q, err := Parse("t", text)
	if err != nil {
		t.Fatal(err)
	}
	if q.Entry != "main" {
		t.Errorf("entry = %q", q.Entry)
	}
}
