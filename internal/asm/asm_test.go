package asm

import (
	"strings"
	"testing"

	"raptrack/internal/isa"
)

func twoFuncProgram() *Program {
	p := NewProgram("t")
	f := p.NewFunc("main")
	f.MOVi(isa.R0, 1) // 2B @ base
	f.Label("mid")    //    @ base+2
	f.BL("helper")    // 4B @ base+2
	f.B("mid")        // 2B @ base+6
	f.HLT()           // 2B @ base+8

	h := p.AddFunc(NewFunction("helper"))
	h.ADDi(isa.R0, isa.R0, 1) // 2B @ base+10
	h.RET()                   // 2B @ base+12
	return p
}

func TestLayoutAddressesAndSymbols(t *testing.T) {
	p := twoFuncProgram()
	img, err := Layout(p, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if img.Symbols["main"] != 0x1000 {
		t.Errorf("main @ %#x", img.Symbols["main"])
	}
	if img.Symbols["main.mid"] != 0x1002 {
		t.Errorf("main.mid @ %#x", img.Symbols["main.mid"])
	}
	if img.Symbols["helper"] != 0x100a {
		t.Errorf("helper @ %#x", img.Symbols["helper"])
	}
	// BL resolves cross-function; B resolves to local label.
	bl, _ := img.InstrAt(0x1002)
	if bl.Target != 0x100a {
		t.Errorf("BL target %#x", bl.Target)
	}
	b, _ := img.InstrAt(0x1006)
	if b.Target != 0x1002 {
		t.Errorf("B target %#x", b.Target)
	}
	if img.CodeSize != 14 {
		t.Errorf("CodeSize = %d", img.CodeSize)
	}
	if got, err := img.EntryAddr(); err != nil || got != 0x1000 {
		t.Errorf("EntryAddr = %#x, %v", got, err)
	}
	if img.FuncOf(0x100b) != "helper" {
		t.Errorf("FuncOf = %q", img.FuncOf(0x100b))
	}
}

func TestLayoutUndefinedSymbol(t *testing.T) {
	p := NewProgram("t")
	f := p.NewFunc("main")
	f.B("nowhere")
	if _, err := Layout(p, 0x1000); err == nil {
		t.Fatal("undefined symbol must fail layout")
	} else if le, ok := err.(*LayoutError); !ok || le.Sym != "nowhere" {
		t.Fatalf("err = %v", err)
	}
}

func TestLayoutDuplicateFunc(t *testing.T) {
	p := NewProgram("t")
	p.NewFunc("f")
	p.AddFunc(NewFunction("f"))
	if _, err := Layout(p, 0x1000); err == nil {
		t.Fatal("duplicate function must fail layout")
	}
}

func TestDuplicateLabelPanics(t *testing.T) {
	f := NewFunction("f")
	f.Label("x")
	defer func() {
		if recover() == nil {
			t.Error("duplicate label should panic")
		}
	}()
	f.Label("x")
}

func TestMOVWMOVTSymbolResolution(t *testing.T) {
	p := NewProgram("t")
	f := p.NewFunc("main")
	f.LA(isa.R0, "tab")
	f.HLT()
	p.AddData(&DataSegment{Name: "tab", Bytes: []byte{1, 2, 3, 4}})
	img, err := Layout(p, 0x20_0000)
	if err != nil {
		t.Fatal(err)
	}
	tab := img.Symbols["tab"]
	movw, _ := img.InstrAt(0x20_0000)
	movt, _ := img.InstrAt(0x20_0004)
	if uint32(movw.Imm) != tab&0xffff {
		t.Errorf("MOVW imm %#x, want %#x", movw.Imm, tab&0xffff)
	}
	if uint32(movt.Imm) != tab>>16 {
		t.Errorf("MOVT imm %#x, want %#x", movt.Imm, tab>>16)
	}
}

func TestDataSegmentSymbolTable(t *testing.T) {
	p := NewProgram("t")
	f := p.NewFunc("main")
	f.Label("a")
	f.NOP()
	f.Label("b")
	f.HLT()
	p.AddData(&DataSegment{Name: "jump", Syms: []string{"main.b", "main.a"}})
	img, err := Layout(p, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(img.DataBytes) != 8 {
		t.Fatalf("data bytes = %d", len(img.DataBytes))
	}
	// Words hold the label addresses, little endian.
	w0 := uint32(img.DataBytes[0]) | uint32(img.DataBytes[1])<<8
	if w0 != uint32(img.Symbols["main.b"])&0xffff {
		t.Errorf("word0 = %#x", w0)
	}
}

func TestCloneIndependence(t *testing.T) {
	p := twoFuncProgram()
	q := p.Clone()
	q.Funcs[0].Instrs[0].Imm = 99
	q.Funcs[0].Label("added")
	if p.Funcs[0].Instrs[0].Imm == 99 {
		t.Error("clone shares instruction storage")
	}
	if _, ok := p.Funcs[0].Labels()["added"]; ok {
		t.Error("clone shares label table")
	}
}

func TestCanonicalBytesTamperSensitivity(t *testing.T) {
	p := twoFuncProgram()
	img, err := Layout(p, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	h1 := img.Hash()
	// Tamper with one instruction in the image.
	ins := img.Code[0x1000]
	ins.Imm = 2
	img.Code[0x1000] = ins
	if img.Hash() == h1 {
		t.Error("instruction tamper did not change H_MEM")
	}
	img.Code[0x1000] = func() isa.Instr { i := img.Code[0x1000]; i.Imm = 1; return i }()
	if img.Hash() != h1 {
		t.Error("hash not restored after undo")
	}
	// Data tampering.
	p2 := twoFuncProgram()
	p2.AddData(&DataSegment{Name: "d", Bytes: []byte{1}})
	img2, _ := Layout(p2, 0x1000)
	h2 := img2.Hash()
	img2.DataBytes[0] ^= 0xff
	if img2.Hash() == h2 {
		t.Error("data tamper did not change H_MEM")
	}
}

func TestLayoutDeterminism(t *testing.T) {
	a, err := Layout(twoFuncProgram(), 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Layout(twoFuncProgram(), 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash() != b.Hash() {
		t.Error("layout is not deterministic")
	}
}

func TestDump(t *testing.T) {
	img, err := Layout(twoFuncProgram(), 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	d := img.Dump()
	for _, want := range []string{"main", "helper", "bl ", "hlt", "0x00001000"} {
		if !strings.Contains(d, want) {
			t.Errorf("dump missing %q:\n%s", want, d)
		}
	}
}

func TestRewriteFunc(t *testing.T) {
	f := NewFunction("f")
	f.MOVi(isa.R0, 1) // 0
	f.Label("l1")
	f.MOVi(isa.R1, 2) // 1
	f.B("l1")         // 2
	f.HLT()           // 3

	edits := map[int]Edit{
		1: {
			Seq: []isa.Instr{
				{Op: isa.OpNOP},
				{Op: isa.OpMOVi, Rd: isa.R1, Imm: 2},
			},
			Labels: map[string]int{"body": 1},
		},
		2: {Seq: []isa.Instr{{Op: isa.OpB, Cond: isa.AL, Sym: "body"}}},
	}
	newIndex := RewriteFunc(f, edits)
	if len(f.Instrs) != 5 {
		t.Fatalf("instrs = %d", len(f.Instrs))
	}
	labels := f.Labels()
	if labels["l1"] != 1 {
		t.Errorf("l1 -> %d, want 1 (start of replacement)", labels["l1"])
	}
	if labels["body"] != 2 {
		t.Errorf("body -> %d, want 2", labels["body"])
	}
	if newIndex[0] != 0 || newIndex[1] != 1 || newIndex[2] != 3 || newIndex[3] != 4 || newIndex[4] != 5 {
		t.Errorf("newIndex = %v", newIndex)
	}
	if f.Instrs[3].Sym != "body" {
		t.Errorf("retargeted branch Sym = %q", f.Instrs[3].Sym)
	}
}

func TestRewriteFuncEndLabel(t *testing.T) {
	f := NewFunction("f")
	f.NOP()
	f.Label("end") // index 1 == len
	edits := map[int]Edit{0: {Seq: []isa.Instr{{Op: isa.OpNOP}, {Op: isa.OpNOP}}}}
	RewriteFunc(f, edits)
	if f.Labels()["end"] != 2 {
		t.Errorf("end label -> %d, want 2", f.Labels()["end"])
	}
}
