package asm

import "raptrack/internal/isa"

// Builder helpers: one emit method per instruction form, so workloads in
// internal/apps read like assembly listings.

// MOVi emits MOV rd, #imm.
func (f *Function) MOVi(rd isa.Reg, imm int32) {
	f.Emit(isa.Instr{Op: isa.OpMOVi, Rd: rd, Imm: imm})
}

// MOVr emits MOV rd, rm.
func (f *Function) MOVr(rd, rm isa.Reg) { f.Emit(isa.Instr{Op: isa.OpMOVr, Rd: rd, Rm: rm}) }

// MOVW emits MOVW rd, #imm16 (lower halfword, upper cleared).
func (f *Function) MOVW(rd isa.Reg, imm int32) {
	f.Emit(isa.Instr{Op: isa.OpMOVW, Rd: rd, Imm: imm})
}

// MOVT emits MOVT rd, #imm16 (upper halfword).
func (f *Function) MOVT(rd isa.Reg, imm int32) {
	f.Emit(isa.Instr{Op: isa.OpMOVT, Rd: rd, Imm: imm})
}

// MOV32 emits a MOVW/MOVT pair materializing a full 32-bit constant.
func (f *Function) MOV32(rd isa.Reg, v uint32) {
	f.MOVW(rd, int32(v&0xffff))
	f.MOVT(rd, int32(v>>16))
}

// LA emits a MOVW/MOVT pair materializing a symbol's address
// (:lower16:/:upper16: relocations).
func (f *Function) LA(rd isa.Reg, sym string) {
	f.Emit(isa.Instr{Op: isa.OpMOVW, Rd: rd, Sym: sym})
	f.Emit(isa.Instr{Op: isa.OpMOVT, Rd: rd, Sym: sym})
}

// ADR emits ADR rd, sym.
func (f *Function) ADR(rd isa.Reg, sym string) { f.Emit(isa.Instr{Op: isa.OpADR, Rd: rd, Sym: sym}) }

// MVN emits MVN rd, rm.
func (f *Function) MVN(rd, rm isa.Reg) { f.Emit(isa.Instr{Op: isa.OpMVN, Rd: rd, Rm: rm}) }

// ADDi emits ADD rd, rn, #imm.
func (f *Function) ADDi(rd, rn isa.Reg, imm int32) {
	f.Emit(isa.Instr{Op: isa.OpADDi, Rd: rd, Rn: rn, Imm: imm})
}

// ADDr emits ADD rd, rn, rm.
func (f *Function) ADDr(rd, rn, rm isa.Reg) {
	f.Emit(isa.Instr{Op: isa.OpADDr, Rd: rd, Rn: rn, Rm: rm})
}

// SUBi emits SUB rd, rn, #imm.
func (f *Function) SUBi(rd, rn isa.Reg, imm int32) {
	f.Emit(isa.Instr{Op: isa.OpSUBi, Rd: rd, Rn: rn, Imm: imm})
}

// SUBr emits SUB rd, rn, rm.
func (f *Function) SUBr(rd, rn, rm isa.Reg) {
	f.Emit(isa.Instr{Op: isa.OpSUBr, Rd: rd, Rn: rn, Rm: rm})
}

// RSBi emits RSB rd, rn, #imm (rd = imm - rn).
func (f *Function) RSBi(rd, rn isa.Reg, imm int32) {
	f.Emit(isa.Instr{Op: isa.OpRSBi, Rd: rd, Rn: rn, Imm: imm})
}

// MUL emits MUL rd, rn, rm.
func (f *Function) MUL(rd, rn, rm isa.Reg) {
	f.Emit(isa.Instr{Op: isa.OpMUL, Rd: rd, Rn: rn, Rm: rm})
}

// UDIV emits UDIV rd, rn, rm.
func (f *Function) UDIV(rd, rn, rm isa.Reg) {
	f.Emit(isa.Instr{Op: isa.OpUDIV, Rd: rd, Rn: rn, Rm: rm})
}

// SDIV emits SDIV rd, rn, rm.
func (f *Function) SDIV(rd, rn, rm isa.Reg) {
	f.Emit(isa.Instr{Op: isa.OpSDIV, Rd: rd, Rn: rn, Rm: rm})
}

// ANDr emits AND rd, rn, rm.
func (f *Function) ANDr(rd, rn, rm isa.Reg) {
	f.Emit(isa.Instr{Op: isa.OpANDr, Rd: rd, Rn: rn, Rm: rm})
}

// ORRr emits ORR rd, rn, rm.
func (f *Function) ORRr(rd, rn, rm isa.Reg) {
	f.Emit(isa.Instr{Op: isa.OpORRr, Rd: rd, Rn: rn, Rm: rm})
}

// EORr emits EOR rd, rn, rm.
func (f *Function) EORr(rd, rn, rm isa.Reg) {
	f.Emit(isa.Instr{Op: isa.OpEORr, Rd: rd, Rn: rn, Rm: rm})
}

// BICr emits BIC rd, rn, rm.
func (f *Function) BICr(rd, rn, rm isa.Reg) {
	f.Emit(isa.Instr{Op: isa.OpBICr, Rd: rd, Rn: rn, Rm: rm})
}

// LSLi emits LSL rd, rn, #imm.
func (f *Function) LSLi(rd, rn isa.Reg, imm int32) {
	f.Emit(isa.Instr{Op: isa.OpLSLi, Rd: rd, Rn: rn, Imm: imm})
}

// LSLr emits LSL rd, rn, rm.
func (f *Function) LSLr(rd, rn, rm isa.Reg) {
	f.Emit(isa.Instr{Op: isa.OpLSLr, Rd: rd, Rn: rn, Rm: rm})
}

// LSRi emits LSR rd, rn, #imm.
func (f *Function) LSRi(rd, rn isa.Reg, imm int32) {
	f.Emit(isa.Instr{Op: isa.OpLSRi, Rd: rd, Rn: rn, Imm: imm})
}

// LSRr emits LSR rd, rn, rm.
func (f *Function) LSRr(rd, rn, rm isa.Reg) {
	f.Emit(isa.Instr{Op: isa.OpLSRr, Rd: rd, Rn: rn, Rm: rm})
}

// ASRi emits ASR rd, rn, #imm.
func (f *Function) ASRi(rd, rn isa.Reg, imm int32) {
	f.Emit(isa.Instr{Op: isa.OpASRi, Rd: rd, Rn: rn, Imm: imm})
}

// CMPi emits CMP rn, #imm.
func (f *Function) CMPi(rn isa.Reg, imm int32) {
	f.Emit(isa.Instr{Op: isa.OpCMPi, Rn: rn, Imm: imm})
}

// CMPr emits CMP rn, rm.
func (f *Function) CMPr(rn, rm isa.Reg) { f.Emit(isa.Instr{Op: isa.OpCMPr, Rn: rn, Rm: rm}) }

// TST emits TST rn, rm.
func (f *Function) TST(rn, rm isa.Reg) { f.Emit(isa.Instr{Op: isa.OpTST, Rn: rn, Rm: rm}) }

// LDRi emits LDR rd, [rn, #imm].
func (f *Function) LDRi(rd, rn isa.Reg, imm int32) {
	f.Emit(isa.Instr{Op: isa.OpLDRi, Rd: rd, Rn: rn, Imm: imm})
}

// LDRr emits LDR rd, [rn, rm].
func (f *Function) LDRr(rd, rn, rm isa.Reg) {
	f.Emit(isa.Instr{Op: isa.OpLDRr, Rd: rd, Rn: rn, Rm: rm})
}

// LDRBi emits LDRB rd, [rn, #imm].
func (f *Function) LDRBi(rd, rn isa.Reg, imm int32) {
	f.Emit(isa.Instr{Op: isa.OpLDRBi, Rd: rd, Rn: rn, Imm: imm})
}

// LDRBr emits LDRB rd, [rn, rm].
func (f *Function) LDRBr(rd, rn, rm isa.Reg) {
	f.Emit(isa.Instr{Op: isa.OpLDRBr, Rd: rd, Rn: rn, Rm: rm})
}

// LDRHi emits LDRH rd, [rn, #imm].
func (f *Function) LDRHi(rd, rn isa.Reg, imm int32) {
	f.Emit(isa.Instr{Op: isa.OpLDRHi, Rd: rd, Rn: rn, Imm: imm})
}

// STRi emits STR rd, [rn, #imm].
func (f *Function) STRi(rd, rn isa.Reg, imm int32) {
	f.Emit(isa.Instr{Op: isa.OpSTRi, Rd: rd, Rn: rn, Imm: imm})
}

// STRr emits STR rd, [rn, rm].
func (f *Function) STRr(rd, rn, rm isa.Reg) {
	f.Emit(isa.Instr{Op: isa.OpSTRr, Rd: rd, Rn: rn, Rm: rm})
}

// STRBi emits STRB rd, [rn, #imm].
func (f *Function) STRBi(rd, rn isa.Reg, imm int32) {
	f.Emit(isa.Instr{Op: isa.OpSTRBi, Rd: rd, Rn: rn, Imm: imm})
}

// STRBr emits STRB rd, [rn, rm].
func (f *Function) STRBr(rd, rn, rm isa.Reg) {
	f.Emit(isa.Instr{Op: isa.OpSTRBr, Rd: rd, Rn: rn, Rm: rm})
}

// STRHi emits STRH rd, [rn, #imm].
func (f *Function) STRHi(rd, rn isa.Reg, imm int32) {
	f.Emit(isa.Instr{Op: isa.OpSTRHi, Rd: rd, Rn: rn, Imm: imm})
}

// PUSH emits PUSH {regs}.
func (f *Function) PUSH(regs ...isa.Reg) { f.Emit(isa.Instr{Op: isa.OpPUSH, List: isa.Regs(regs...)}) }

// POP emits POP {regs}. Including PC makes it a return.
func (f *Function) POP(regs ...isa.Reg) { f.Emit(isa.Instr{Op: isa.OpPOP, List: isa.Regs(regs...)}) }

// LDRPC emits LDR pc, [rn, rm, LSL #2] — a computed jump through a table.
func (f *Function) LDRPC(rn, rm isa.Reg) { f.Emit(isa.Instr{Op: isa.OpLDRPC, Rn: rn, Rm: rm}) }

// B emits an unconditional direct branch to a label or function.
func (f *Function) B(sym string) { f.Emit(isa.Instr{Op: isa.OpB, Cond: isa.AL, Sym: sym}) }

// Bcc emits a conditional branch.
func (f *Function) Bcc(c isa.Cond, sym string) { f.Emit(isa.Instr{Op: isa.OpB, Cond: c, Sym: sym}) }

// BEQ, BNE, BLT, BGE, BGT, BLE, BHI, BLS, BCS, BCC, BMI, BPL emit the common
// conditional branches.
func (f *Function) BEQ(sym string) { f.Bcc(isa.EQ, sym) }
func (f *Function) BNE(sym string) { f.Bcc(isa.NE, sym) }
func (f *Function) BLT(sym string) { f.Bcc(isa.LT, sym) }
func (f *Function) BGE(sym string) { f.Bcc(isa.GE, sym) }
func (f *Function) BGT(sym string) { f.Bcc(isa.GT, sym) }
func (f *Function) BLE(sym string) { f.Bcc(isa.LE, sym) }
func (f *Function) BHI(sym string) { f.Bcc(isa.HI, sym) }
func (f *Function) BLS(sym string) { f.Bcc(isa.LS, sym) }
func (f *Function) BCS(sym string) { f.Bcc(isa.CS, sym) }
func (f *Function) BCC(sym string) { f.Bcc(isa.CC, sym) }
func (f *Function) BMI(sym string) { f.Bcc(isa.MI, sym) }
func (f *Function) BPL(sym string) { f.Bcc(isa.PL, sym) }

// BL emits a direct call.
func (f *Function) BL(sym string) { f.Emit(isa.Instr{Op: isa.OpBL, Sym: sym}) }

// BLX emits an indirect call through rm.
func (f *Function) BLX(rm isa.Reg) { f.Emit(isa.Instr{Op: isa.OpBLX, Rm: rm}) }

// BX emits an indirect branch through rm; BX(LR) is a leaf return.
func (f *Function) BX(rm isa.Reg) { f.Emit(isa.Instr{Op: isa.OpBX, Rm: rm}) }

// RET emits BX lr.
func (f *Function) RET() { f.BX(isa.LR) }

// NOP emits a no-op.
func (f *Function) NOP() { f.Emit(isa.Instr{Op: isa.OpNOP}) }

// SECALL emits a secure-gateway call to service id.
func (f *Function) SECALL(id int32) { f.Emit(isa.Instr{Op: isa.OpSECALL, Imm: id}) }

// HLT emits the halt sentinel.
func (f *Function) HLT() { f.Emit(isa.Instr{Op: isa.OpHLT}) }

// BKPT emits a breakpoint (faults).
func (f *Function) BKPT() { f.Emit(isa.Instr{Op: isa.OpBKPT}) }
