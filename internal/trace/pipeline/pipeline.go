// Package pipeline is the unified trace-decode stack: every evidence
// format the system ingests — MTB ring packets, TRACES instrumentation
// logs, raw byte replays — decodes through the same three-stage
// composition instead of a per-format one-off parser.
//
// The shape follows OpenCSD's decoder architecture:
//
//	TraceSource  ->  frontend  ->  PacketProcessor*  ->  PathDecoder
//	(raw bytes)     (framing)      (typed record        (edge stream /
//	                                transforms)          verdict)
//
// A [TraceSource] supplies raw evidence bytes plus their format identity
// and any out-of-band capture-loss attestation. The format's registered
// [Frontend] frames the bytes into [Rec] records — the canonical typed
// element, one control-transfer evidence record with its stream offset.
// [PacketProcessor] stages transform the record stream (dictionary-marker
// expansion, loss gating, budget caps, fault annotation). A
// [PathDecoder] finally turns the processed records into whatever the
// consumer is after — for the RAP-Track verifier the reconstructed edge
// stream inside a Verdict, for the TRACES baseline its value-set verdict.
//
// Every failure anywhere on the stack is a typed [*Error] carrying a
// [DecodeErr] code and a stream offset, replacing the ad-hoc error
// values the per-format decoders used to invent.
package pipeline

import "raptrack/internal/trace"

// RecKind distinguishes what a record encodes.
type RecKind uint8

const (
	// RecEdge is a full control transfer: source and destination (MTB).
	RecEdge RecKind = iota
	// RecDest is a destination-only record (TRACES logs the taken target
	// with no source annotation).
	RecDest
)

// Rec is the canonical pipeline element: one decoded evidence record.
type Rec struct {
	Src uint32 // branch source address (RecEdge only)
	Dst uint32 // branch destination / logged word
	// Off is the record's byte offset in the source stream; synthesized
	// records (marker expansion) inherit the offset of the record they
	// expand from.
	Off  int
	Kind RecKind
}

// TraceSource supplies one stream of raw evidence bytes.
type TraceSource interface {
	// Format identifies the stream's encoding (frontend selection).
	Format() Format
	// Read returns the raw evidence bytes.
	Read() ([]byte, *Error)
	// Loss reports capture loss attested out of band — ring wraps and
	// arming drops the hardware counted while recording. (0, 0) means
	// the stream is complete as captured.
	Loss() (wraps, dropped uint64)
}

// PacketProcessor is one record-stream transform stage.
type PacketProcessor interface {
	// Name identifies the stage (diagnostics, metric labels).
	Name() string
	// Process transforms the record stream. The input slice must not be
	// retained; returning it unchanged is the no-op.
	Process(recs []Rec) ([]Rec, *Error)
}

// PathDecoder consumes the processed record stream and produces the
// final decode result R — the edge-stream verdict for full verifiers,
// or any narrower projection a tool wants.
type PathDecoder[R any] interface {
	DecodePath(recs []Rec) (R, error)
}

// Pipeline composes a source with its processor stages. The zero value
// is unusable; use New.
type Pipeline struct {
	src    TraceSource
	stages []PacketProcessor
	strict bool
}

// New composes src with stages, applied in order. Framing defaults to
// lenient: a Truncated or Misaligned stream is repaired to its
// whole-record prefix (what a wrapped hardware ring hands you anyway);
// use Strict to surface those as typed errors instead.
func New(src TraceSource, stages ...PacketProcessor) *Pipeline {
	return &Pipeline{src: src, stages: stages}
}

// Strict returns a copy of p that surfaces framing defects (Truncated,
// Misaligned) as errors instead of repairing to the whole-record prefix.
func (p *Pipeline) Strict() *Pipeline {
	q := *p
	q.strict = true
	return &q
}

// Source returns the pipeline's trace source.
func (p *Pipeline) Source() TraceSource { return p.src }

// Records runs source, frontend and every processor stage, returning the
// processed record stream.
func (p *Pipeline) Records() ([]Rec, *Error) {
	b, derr := p.src.Read()
	if derr != nil {
		return nil, derr
	}
	recs, derr := Parse(p.src.Format(), b)
	if derr != nil {
		// Tail repair: framing cuts below record granularity keep the
		// whole-record prefix in lenient mode. Anything else (unknown
		// format, implausible header) stays fatal in both modes.
		repairable := derr.Code == Truncated || derr.Code == Misaligned
		if p.strict || !repairable {
			return nil, derr
		}
	}
	for _, st := range p.stages {
		if b, ok := st.(sourceBinder); ok {
			b.bindSource(p.src)
		}
		var serr *Error
		recs, serr = st.Process(recs)
		if serr != nil {
			return nil, serr
		}
	}
	return recs, nil
}

// Packets is Records projected to the trace.Packet edge stream the
// verifier and automaton consume (RecDest records project with Src 0).
func (p *Pipeline) Packets() ([]trace.Packet, *Error) {
	recs, derr := p.Records()
	if derr != nil {
		return nil, derr
	}
	return Packets(recs), nil
}

// Decode runs the full stack: source, frontend, processors, then d.
func Decode[R any](p *Pipeline, d PathDecoder[R]) (R, error) {
	recs, derr := p.Records()
	if derr != nil {
		var zero R
		return zero, derr
	}
	return d.DecodePath(recs)
}

// Packets projects records onto the canonical edge stream.
func Packets(recs []Rec) []trace.Packet {
	out := make([]trace.Packet, len(recs))
	for i, r := range recs {
		out[i] = trace.Packet{Src: r.Src, Dst: r.Dst}
	}
	return out
}

// Words projects records onto the destination-word stream (TRACES).
func Words(recs []Rec) []uint32 {
	out := make([]uint32, len(recs))
	for i, r := range recs {
		out[i] = r.Dst
	}
	return out
}

// Recs lifts an edge stream back into records (replay, corpus tools).
// Offsets are synthesized from the MTB encoding.
func Recs(ps []trace.Packet) []Rec {
	out := make([]Rec, len(ps))
	for i, p := range ps {
		out[i] = Rec{Src: p.Src, Dst: p.Dst, Off: i * trace.PacketSize, Kind: RecEdge}
	}
	return out
}
