package pipeline

import (
	"fmt"

	"raptrack/internal/trace"
)

// Expander expands dictionary markers embedded in an edge stream back
// into the transfers they summarize. *speccfa.Dictionary satisfies it;
// the indirection keeps this package below speccfa in the import graph.
type Expander interface {
	// Len reports the number of dictionary entries (0 or a nil dictionary:
	// nothing to expand). Must be nil-receiver safe.
	Len() int
	// Decompress rewrites marker packets into their recorded sub-paths.
	Decompress(ps []trace.Packet) ([]trace.Packet, error)
}

// failOnLoss gates on the source's attested capture loss.
type failOnLoss struct {
	src TraceSource
}

// bindSource is the optional stage hook Records uses to hand stages their
// pipeline's source before processing starts.
type sourceBinder interface {
	bindSource(src TraceSource)
}

func (s *failOnLoss) bindSource(src TraceSource) { s.src = src }
func (s *failOnLoss) Name() string               { return "fail-on-loss" }

func (s *failOnLoss) Process(recs []Rec) ([]Rec, *Error) {
	if s.src == nil {
		return recs, nil
	}
	wraps, dropped := s.src.Loss()
	if wraps == 0 && dropped == 0 {
		return recs, nil
	}
	return nil, &Error{
		Code:   WrapLoss,
		Format: s.src.Format(),
		Off:    -1,
		Detail: fmt.Sprintf("detectable trace loss: %d MTB wrap(s), %d packet(s) dropped while arming; evidence incomplete, re-attest", wraps, dropped),
	}
}

// FailOnLoss returns a stage that fails the decode with WrapLoss when the
// source attests capture loss (ring wraps, arming drops). The records are
// authentic but provably incomplete, so downstream reconstruction would
// manufacture a false reject; the typed error lets the verifier render an
// Inconclusive verdict instead. The stage's Detail is the exact sentence
// verifiers have always attached to that verdict.
func FailOnLoss() PacketProcessor { return &failOnLoss{} }

// expandMarkers rewrites dictionary markers via an Expander.
type expandMarkers struct {
	x   Expander
	src TraceSource
}

func (s *expandMarkers) bindSource(src TraceSource) { s.src = src }
func (s *expandMarkers) Name() string               { return "expand-markers" }

func (s *expandMarkers) Process(recs []Rec) ([]Rec, *Error) {
	if s.x == nil || s.x.Len() == 0 {
		return recs, nil
	}
	f := FormatUnknown
	if s.src != nil {
		f = s.src.Format()
	}
	out, derr := expand(s.x, Packets(recs), f)
	if derr != nil {
		return nil, derr
	}
	return Recs(out), nil
}

// Expand applies marker expansion to an already-decoded edge stream —
// the hook for callers holding packets outside a pipeline (the verifier's
// compressed fast path materializes evidence this way).
func Expand(x Expander, ps []trace.Packet) ([]trace.Packet, *Error) {
	if x == nil || x.Len() == 0 {
		return ps, nil
	}
	return expand(x, ps, FormatMTB)
}

func expand(x Expander, ps []trace.Packet, f Format) ([]trace.Packet, *Error) {
	out, err := x.Decompress(ps)
	if err != nil {
		// A marker that does not expand means the bytes are not valid under
		// the claimed (format, dictionary) pair — an UnknownFormat defect,
		// not a policy violation.
		return nil, &Error{Code: UnknownFormat, Format: f, Off: -1,
			Detail: "dictionary marker expansion failed: " + err.Error(), Err: err}
	}
	return out, nil
}

// ExpandMarkers returns a stage that expands SpecCFA dictionary markers
// through x (pass the session's dictionary snapshot). A nil x, or one
// with no entries, is the no-op stage.
func ExpandMarkers(x Expander) PacketProcessor { return &expandMarkers{x: x} }

// limit caps the record stream.
type limit struct {
	n int
}

func (s *limit) Name() string { return "limit" }

func (s *limit) Process(recs []Rec) ([]Rec, *Error) {
	if len(recs) <= s.n {
		return recs, nil
	}
	off := -1
	if s.n < len(recs) {
		off = recs[s.n].Off
	}
	return nil, errf(Budget, FormatUnknown, off,
		"stream carries %d record(s), budget is %d", len(recs), s.n)
}

// Limit returns a stage that fails the decode with Budget when the stream
// exceeds n records — the gateway-side guard against adversarially long
// evidence (the verifier's instruction budget bounds work, this bounds
// memory before work even starts).
func Limit(n int) PacketProcessor { return &limit{n: n} }

// tap observes the stream without transforming it.
type tap struct {
	name string
	fn   func([]Rec)
}

func (s *tap) Name() string { return s.name }

func (s *tap) Process(recs []Rec) ([]Rec, *Error) {
	s.fn(recs)
	return recs, nil
}

// Tap returns a pass-through stage that calls fn with the stream at its
// position in the stage order (metrics, fault-schedule annotation,
// debugging). fn must not mutate or retain the slice.
func Tap(name string, fn func([]Rec)) PacketProcessor { return &tap{name: name, fn: fn} }
