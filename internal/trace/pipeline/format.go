package pipeline

import (
	"encoding/binary"

	"raptrack/internal/trace"
)

// Format identifies a trace evidence encoding. The zero value is
// FormatUnknown; decoding it (or any unregistered value) reports
// UnknownFormat.
type Format uint8

const (
	FormatUnknown Format = iota
	// FormatMTB is the Micro Trace Buffer stream: 8-byte records of
	// little-endian (source, destination) address pairs — the raw ring
	// contents and the CFLog a report chain assembles.
	FormatMTB
	// FormatTRACES is the TRACES baseline's instrumentation log: a
	// little-endian u32 record count followed by that many u32
	// destination words (the TEE-protected CFLog the Secure World
	// appends to).
	FormatTRACES
)

// tracesMaxWords caps a TRACES log's declared record count. A count above
// it (a 64 MiB+ log from an MCU with kilobytes of SRAM) marks bytes that
// are not a TRACES log at all, not a log that is merely long.
const tracesMaxWords = 1 << 24

// Frontend parses one format's raw bytes into records.
type Frontend struct {
	// Name is the format's registry name (CLI flags, metric labels).
	Name string
	// WordSize is the format's addressing granularity in bytes; a stream
	// length that is not a multiple of it is Misaligned.
	WordSize int
	// Parse decodes b strictly: any framing defect is a typed *Error.
	// recs carries the records decoded before the defect, so lenient
	// callers can keep the whole-record prefix (tail repair).
	Parse func(b []byte) (recs []Rec, err *Error)
}

var frontends = map[Format]Frontend{}

// RegisterFormat installs a frontend for f. Registering a format twice,
// or registering FormatUnknown, panics: the registry is a process-wide
// compile-time-shaped table, not a mutable namespace.
func RegisterFormat(f Format, fe Frontend) {
	if f == FormatUnknown {
		panic("pipeline: cannot register FormatUnknown")
	}
	if _, dup := frontends[f]; dup {
		panic("pipeline: duplicate format registration: " + fe.Name)
	}
	frontends[f] = fe
}

// Lookup returns the frontend registered for f.
func Lookup(f Format) (Frontend, bool) {
	fe, ok := frontends[f]
	return fe, ok
}

// FormatByName resolves a registry name ("mtb", "traces") to its Format.
func FormatByName(name string) (Format, bool) {
	for f, fe := range frontends {
		if fe.Name == name {
			return f, true
		}
	}
	return FormatUnknown, false
}

func (f Format) String() string {
	if fe, ok := frontends[f]; ok {
		return fe.Name
	}
	return "unknown"
}

// Parse decodes b as format f, strictly. Unregistered formats report
// UnknownFormat at offset 0.
func Parse(f Format, b []byte) ([]Rec, *Error) {
	fe, ok := frontends[f]
	if !ok {
		return nil, errf(UnknownFormat, f, 0, "no frontend registered for format %d", uint8(f))
	}
	return fe.Parse(b)
}

func init() {
	RegisterFormat(FormatMTB, Frontend{Name: "mtb", WordSize: 4, Parse: parseMTB})
	RegisterFormat(FormatTRACES, Frontend{Name: "traces", WordSize: 4, Parse: parseTRACES})
}

// parseMTB decodes the MTB ring encoding: consecutive 8-byte
// (source, destination) little-endian pairs.
func parseMTB(b []byte) ([]Rec, *Error) {
	n := len(b) / trace.PacketSize
	recs := make([]Rec, 0, n)
	for i := 0; i < n; i++ {
		off := i * trace.PacketSize
		recs = append(recs, Rec{
			Src:  binary.LittleEndian.Uint32(b[off:]),
			Dst:  binary.LittleEndian.Uint32(b[off+4:]),
			Off:  off,
			Kind: RecEdge,
		})
	}
	switch rem := len(b) % trace.PacketSize; {
	case rem%4 != 0:
		return recs, errf(Misaligned, FormatMTB, len(b)-rem%4,
			"%d stray byte(s) below word granularity", rem%4)
	case rem != 0:
		return recs, errf(Truncated, FormatMTB, n*trace.PacketSize,
			"stream ends mid-packet (source word without destination)")
	}
	return recs, nil
}

// parseTRACES decodes the TRACES log encoding: u32 count, then count
// destination words.
func parseTRACES(b []byte) ([]Rec, *Error) {
	if len(b) < 4 {
		return nil, errf(Truncated, FormatTRACES, len(b),
			"log shorter than its %d-byte count header", 4)
	}
	count := int(binary.LittleEndian.Uint32(b))
	if count > tracesMaxWords {
		return nil, errf(UnknownFormat, FormatTRACES, 0,
			"implausible record count %d (max %d): not a TRACES log", count, tracesMaxWords)
	}
	body := b[4:]
	have := len(body) / 4
	n := count
	if have < n {
		n = have
	}
	recs := make([]Rec, 0, n)
	for i := 0; i < n; i++ {
		off := 4 + i*4
		recs = append(recs, Rec{
			Dst:  binary.LittleEndian.Uint32(body[i*4:]),
			Off:  off,
			Kind: RecDest,
		})
	}
	switch {
	case len(body)%4 != 0:
		return recs, errf(Misaligned, FormatTRACES, len(b)-len(body)%4,
			"%d stray byte(s) below word granularity", len(body)%4)
	case have < count:
		return recs, errf(Truncated, FormatTRACES, len(b),
			"log declares %d record(s) but carries %d", count, have)
	case have > count:
		return recs, errf(UnknownFormat, FormatTRACES, 4+count*4,
			"%d word(s) beyond the declared count", have-count)
	}
	return recs, nil
}

// EncodeMTB serializes packets to the MTB stream encoding — the
// canonical encoder behind the deprecated trace.EncodePackets.
func EncodeMTB(ps []trace.Packet) []byte {
	out := make([]byte, 0, len(ps)*trace.PacketSize)
	for _, p := range ps {
		out = binary.LittleEndian.AppendUint32(out, p.Src)
		out = binary.LittleEndian.AppendUint32(out, p.Dst)
	}
	return out
}

// DecodeMTB strictly decodes an MTB stream to packets.
func DecodeMTB(b []byte) ([]trace.Packet, *Error) {
	recs, err := parseMTB(b)
	if err != nil {
		return nil, err
	}
	return Packets(recs), nil
}

// AppendMTB decodes an MTB chunk directly onto dst, skipping the record
// intermediate — the per-slice hot path of a streaming verifier, where a
// fresh allocation per slice would dominate the decode itself. The chunk
// must be whole packets; a trailing fragment yields the same error
// DecodeMTB reports, with offsets relative to the chunk.
func AppendMTB(dst []trace.Packet, b []byte) ([]trace.Packet, *Error) {
	n := len(b) / trace.PacketSize
	for i := 0; i < n; i++ {
		off := i * trace.PacketSize
		dst = append(dst, trace.Packet{
			Src: binary.LittleEndian.Uint32(b[off:]),
			Dst: binary.LittleEndian.Uint32(b[off+4:]),
		})
	}
	switch rem := len(b) % trace.PacketSize; {
	case rem%4 != 0:
		return dst, errf(Misaligned, FormatMTB, len(b)-rem%4,
			"%d stray byte(s) below word granularity", rem%4)
	case rem != 0:
		return dst, errf(Truncated, FormatMTB, n*trace.PacketSize,
			"stream ends mid-packet (source word without destination)")
	}
	return dst, nil
}

// EncodeTRACES serializes a TRACES destination log.
func EncodeTRACES(words []uint32) []byte {
	out := binary.LittleEndian.AppendUint32(make([]byte, 0, 4+4*len(words)), uint32(len(words)))
	for _, w := range words {
		out = binary.LittleEndian.AppendUint32(out, w)
	}
	return out
}

// DecodeTRACES strictly decodes a TRACES log to destination words.
func DecodeTRACES(b []byte) ([]uint32, *Error) {
	recs, err := parseTRACES(b)
	if err != nil {
		return nil, err
	}
	return Words(recs), nil
}
