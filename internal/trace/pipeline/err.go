package pipeline

import "fmt"

// DecodeErr is the typed decode error code — the library-wide enum every
// stage of the pipeline reports through (the OpenCSD ocsd.Err idiom:
// one flat code space instead of per-decoder ad-hoc error values).
// Gateways bucket decode failures by it, table tests pin it per format,
// and it is stable across releases: codes are append-only.
type DecodeErr uint8

const (
	// OK marks a successful decode (the zero value; never carried by a
	// non-nil *Error).
	OK DecodeErr = iota
	// Truncated: the stream ends mid-record — whole words are present but
	// the final record is incomplete (an MTB packet missing its
	// destination word, a TRACES log shorter than its declared count).
	Truncated
	// Misaligned: the stream length is not a multiple of the format's
	// word size, which no aligned capture window can produce — the bytes
	// were cut or shifted below word granularity.
	Misaligned
	// UnknownFormat: the bytes do not parse as the claimed format (no
	// frontend registered, an implausible header, a marker referencing a
	// dictionary entry that does not exist).
	UnknownFormat
	// WrapLoss: the source attests capture loss (MTB ring wrap past the
	// watermark, packets dropped while arming) — the records that remain
	// are authentic but provably incomplete.
	WrapLoss
	// Budget: a processing stage exceeded its record budget before the
	// stream was exhausted.
	Budget

	// NumDecodeErrs bounds the code space (array-indexed stats).
	NumDecodeErrs
)

var decodeErrNames = [NumDecodeErrs]string{
	OK:            "ok",
	Truncated:     "truncated",
	Misaligned:    "misaligned",
	UnknownFormat: "unknown-format",
	WrapLoss:      "wrap-loss",
	Budget:        "budget",
}

func (c DecodeErr) String() string {
	if c < NumDecodeErrs {
		return decodeErrNames[c]
	}
	return "invalid-decode-err"
}

// Valid reports whether c is a defined code (wire/stats guard).
func (c DecodeErr) Valid() bool { return c < NumDecodeErrs }

// Error is the pipeline's error value: a typed code plus where in the
// stream it fired. Every decode failure across sources, frontends and
// processors is an *Error, so callers switch on Code instead of matching
// message strings.
type Error struct {
	Code   DecodeErr
	Format Format
	// Off is the byte offset into the source stream the error anchors to:
	// for framing errors the end of the last whole record, for record
	// errors the offending record's first byte, -1 when no stream
	// position applies (source-level loss, budget caps).
	Off    int
	Detail string
	// Err is the wrapped underlying error, when the failure surfaced from
	// outside the pipeline (a dictionary expander, a source read).
	Err error
}

func (e *Error) Error() string {
	msg := fmt.Sprintf("pipeline: %s: %s", e.Format, e.Code)
	if e.Off >= 0 {
		msg += fmt.Sprintf(" at +%d", e.Off)
	}
	if e.Detail != "" {
		msg += ": " + e.Detail
	}
	return msg
}

// Unwrap exposes the underlying error to errors.Is/As chains.
func (e *Error) Unwrap() error { return e.Err }

// errf builds an *Error with a formatted detail.
func errf(code DecodeErr, f Format, off int, format string, args ...any) *Error {
	return &Error{Code: code, Format: f, Off: off, Detail: fmt.Sprintf(format, args...)}
}

// CodeOf extracts the typed code from an error chain. It reports OK,
// false for nil and code, true when a pipeline *Error is found; foreign
// errors yield OK, false so callers do not mistake them for clean
// decodes — check the boolean, not the code.
func CodeOf(err error) (DecodeErr, bool) {
	for err != nil {
		if e, ok := err.(*Error); ok {
			return e.Code, true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return OK, false
		}
		err = u.Unwrap()
	}
	return OK, false
}
