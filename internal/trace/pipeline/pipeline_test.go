package pipeline

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"raptrack/internal/trace"
)

func mtbStream(ps ...trace.Packet) []byte { return EncodeMTB(ps) }

var samplePackets = []trace.Packet{
	{Src: 0x0000_0101, Dst: 0x0000_0200},
	{Src: 0x0000_0208, Dst: 0x0000_0300},
	{Src: 0x0000_0310, Dst: 0x0000_0104},
}

func TestMTBRoundTrip(t *testing.T) {
	b := EncodeMTB(samplePackets)
	got, derr := DecodeMTB(b)
	if derr != nil {
		t.Fatalf("DecodeMTB: %v", derr)
	}
	if len(got) != len(samplePackets) {
		t.Fatalf("got %d packets, want %d", len(got), len(samplePackets))
	}
	for i, p := range got {
		if p != samplePackets[i] {
			t.Fatalf("packet %d: got %+v want %+v", i, p, samplePackets[i])
		}
	}
}

func TestTRACESRoundTrip(t *testing.T) {
	words := []uint32{0x200, 0x300, 7, 0x104} // loop-condition words may be odd
	b := EncodeTRACES(words)
	got, derr := DecodeTRACES(b)
	if derr != nil {
		t.Fatalf("DecodeTRACES: %v", derr)
	}
	if len(got) != len(words) {
		t.Fatalf("got %d words, want %d", len(got), len(words))
	}
	for i, w := range got {
		if w != words[i] {
			t.Fatalf("word %d: got %#x want %#x", i, w, words[i])
		}
	}
}

func TestEmptyStreams(t *testing.T) {
	if recs, derr := Parse(FormatMTB, nil); derr != nil || len(recs) != 0 {
		t.Fatalf("empty MTB: recs=%v err=%v", recs, derr)
	}
	// An empty TRACES log still carries its count header.
	if ws, derr := DecodeTRACES(EncodeTRACES(nil)); derr != nil || len(ws) != 0 {
		t.Fatalf("empty TRACES: words=%v err=%v", ws, derr)
	}
}

// TestDecodeErrTable pins the stable (code, offset) contract per format:
// the exact inputs that must yield each enum value, and where the error
// anchors in the stream. These are wire-stable — gateways bucket metrics
// by code and tools print offsets, so changes here are breaking.
func TestDecodeErrTable(t *testing.T) {
	okMTB := mtbStream(samplePackets...)
	okTRACES := EncodeTRACES([]uint32{0x200, 0x300})

	cases := []struct {
		name   string
		format Format
		input  []byte
		code   DecodeErr
		off    int
		prefix int // whole records decoded before the defect
	}{
		{"mtb/ok", FormatMTB, okMTB, OK, 0, 3},
		{"mtb/truncated-mid-packet", FormatMTB, okMTB[:20], Truncated, 16, 2},
		{"mtb/truncated-src-only", FormatMTB, okMTB[:4], Truncated, 0, 0},
		{"mtb/misaligned-1", FormatMTB, okMTB[:9], Misaligned, 8, 1},
		{"mtb/misaligned-3", FormatMTB, okMTB[:15], Misaligned, 12, 1},
		{"traces/ok", FormatTRACES, okTRACES, OK, 0, 2},
		{"traces/truncated-no-header", FormatTRACES, okTRACES[:3], Truncated, 3, 0},
		{"traces/truncated-short-body", FormatTRACES, okTRACES[:8], Truncated, 8, 1},
		{"traces/misaligned", FormatTRACES, okTRACES[:10], Misaligned, 8, 1},
		{"traces/unknown-implausible-count", FormatTRACES,
			EncodeTRACES(nil)[:0:0], UnknownFormat, 0, 0},
		{"traces/unknown-trailing-words", FormatTRACES,
			append(EncodeTRACES([]uint32{0x200}), 0xEE, 0xEE, 0xEE, 0xEE), UnknownFormat, 8, 1},
		{"unregistered-format", Format(0xEE), okMTB, UnknownFormat, 0, 0},
	}
	// Build the implausible-count input: header says 2^24+1 words.
	cases[9].input = EncodeTRACES(nil)
	cases[9].input[0], cases[9].input[1], cases[9].input[2], cases[9].input[3] = 0x01, 0x00, 0x00, 0x01

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			recs, derr := Parse(tc.format, tc.input)
			if tc.code == OK {
				if derr != nil {
					t.Fatalf("want clean decode, got %v", derr)
				}
				if len(recs) != tc.prefix {
					t.Fatalf("got %d records, want %d", len(recs), tc.prefix)
				}
				return
			}
			if derr == nil {
				t.Fatalf("want %v, got clean decode of %d records", tc.code, len(recs))
			}
			if derr.Code != tc.code {
				t.Fatalf("code: got %v want %v (%v)", derr.Code, tc.code, derr)
			}
			if derr.Off != tc.off {
				t.Fatalf("offset: got %d want %d (%v)", derr.Off, tc.off, derr)
			}
			if tc.name != "unregistered-format" && len(recs) != tc.prefix {
				t.Fatalf("prefix: got %d records, want %d", len(recs), tc.prefix)
			}
		})
	}
}

// TestWrapLoss pins the WrapLoss contract: a source attesting capture
// loss fails the decode through FailOnLoss with the verifier's historical
// Inconclusive detail sentence, byte for byte.
func TestWrapLoss(t *testing.T) {
	log := mtbStream(samplePackets...)
	p := New(MTBChain(log, 2, 3), FailOnLoss())
	_, derr := p.Records()
	if derr == nil {
		t.Fatal("want WrapLoss, got clean decode")
	}
	if derr.Code != WrapLoss {
		t.Fatalf("code: got %v want WrapLoss", derr.Code)
	}
	if derr.Off != -1 {
		t.Fatalf("offset: got %d want -1 (no stream position)", derr.Off)
	}
	want := "detectable trace loss: 2 MTB wrap(s), 3 packet(s) dropped while arming; evidence incomplete, re-attest"
	if derr.Detail != want {
		t.Fatalf("detail:\n got %q\nwant %q", derr.Detail, want)
	}

	// No loss: the stage is a pass-through.
	recs, derr := New(MTBChain(log, 0, 0), FailOnLoss()).Records()
	if derr != nil || len(recs) != len(samplePackets) {
		t.Fatalf("lossless chain: recs=%d err=%v", len(recs), derr)
	}
}

// TestLenientTailRepair pins the bit-compatibility contract with the
// legacy decoder: in the default lenient mode a ragged MTB stream decodes
// to exactly what trace.DecodePackets has always returned (the
// whole-packet prefix), while Strict surfaces the typed error.
func TestLenientTailRepair(t *testing.T) {
	full := mtbStream(samplePackets...)
	for cut := 0; cut <= len(full); cut++ {
		b := full[:cut]
		legacy := trace.DecodePackets(b)
		got, derr := New(Raw(FormatMTB, b)).Packets()
		if derr != nil {
			t.Fatalf("cut=%d: lenient decode failed: %v", cut, derr)
		}
		if len(got) != len(legacy) {
			t.Fatalf("cut=%d: got %d packets, legacy %d", cut, len(got), len(legacy))
		}
		for i := range got {
			if got[i] != legacy[i] {
				t.Fatalf("cut=%d packet %d: got %+v legacy %+v", cut, i, got[i], legacy[i])
			}
		}
		if cut%trace.PacketSize != 0 {
			if _, derr := New(Raw(FormatMTB, b)).Strict().Packets(); derr == nil {
				t.Fatalf("cut=%d: strict mode decoded a ragged stream cleanly", cut)
			}
		}
	}
}

func TestStrictDoesNotRepairUnknownFormat(t *testing.T) {
	// Trailing words beyond the declared count are not a framing cut;
	// lenient mode must not paper over them.
	b := append(EncodeTRACES([]uint32{0x200}), 0xEE, 0xEE, 0xEE, 0xEE)
	if _, derr := New(Raw(FormatTRACES, b)).Records(); derr == nil || derr.Code != UnknownFormat {
		t.Fatalf("lenient: got %v, want UnknownFormat", derr)
	}
}

func TestMTBRingLinearization(t *testing.T) {
	// Unwrapped: only bytes before the write position are valid.
	full := mtbStream(samplePackets...)
	buf := make([]byte, len(full))
	copy(buf, full)
	ps, derr := New(MTBRing(buf, 16, 0)).Packets()
	if derr != nil || len(ps) != 2 {
		t.Fatalf("unwrapped ring: packets=%d err=%v", len(ps), derr)
	}

	// Wrapped once at pos=8: oldest packet is buf[8:], newest is buf[:8].
	ps, derr = New(MTBRing(buf, 8, 1)).Packets()
	if derr != nil || len(ps) != 3 {
		t.Fatalf("wrapped ring: packets=%d err=%v", len(ps), derr)
	}
	want := []trace.Packet{samplePackets[1], samplePackets[2], samplePackets[0]}
	for i := range want {
		if ps[i] != want[i] {
			t.Fatalf("wrapped ring packet %d: got %+v want %+v", i, ps[i], want[i])
		}
	}

	// A wrapped ring attests its loss.
	if w, _ := MTBRing(buf, 8, 1).Loss(); w != 1 {
		t.Fatalf("wrapped ring Loss: got %d wraps, want 1", w)
	}
}

func TestLimitBudget(t *testing.T) {
	log := mtbStream(samplePackets...)
	if recs, derr := New(Raw(FormatMTB, log), Limit(3)).Records(); derr != nil || len(recs) != 3 {
		t.Fatalf("at budget: recs=%d err=%v", len(recs), derr)
	}
	_, derr := New(Raw(FormatMTB, log), Limit(2)).Records()
	if derr == nil || derr.Code != Budget {
		t.Fatalf("over budget: got %v, want Budget", derr)
	}
	if derr.Off != 16 {
		t.Fatalf("budget offset: got %d, want first over-budget record at 16", derr.Off)
	}
}

type fakeExpander struct {
	n   int
	out []trace.Packet
	err error
}

func (f *fakeExpander) Len() int { return f.n }
func (f *fakeExpander) Decompress(ps []trace.Packet) ([]trace.Packet, error) {
	if f.err != nil {
		return nil, f.err
	}
	return f.out, nil
}

func TestExpandMarkers(t *testing.T) {
	log := mtbStream(samplePackets[0])

	// Empty or nil expander: pass-through.
	for _, x := range []Expander{nil, &fakeExpander{n: 0}} {
		ps, derr := New(Raw(FormatMTB, log), ExpandMarkers(x)).Packets()
		if derr != nil || len(ps) != 1 {
			t.Fatalf("no-op expander: packets=%d err=%v", len(ps), derr)
		}
	}

	// Expansion rewrites the stream.
	x := &fakeExpander{n: 1, out: samplePackets}
	ps, derr := New(Raw(FormatMTB, log), ExpandMarkers(x)).Packets()
	if derr != nil || len(ps) != 3 {
		t.Fatalf("expansion: packets=%d err=%v", len(ps), derr)
	}

	// Expansion failure is UnknownFormat wrapping the cause.
	cause := errors.New("marker 0xF000_0007 beyond dictionary")
	_, derr = New(Raw(FormatMTB, log), ExpandMarkers(&fakeExpander{n: 1, err: cause})).Packets()
	if derr == nil || derr.Code != UnknownFormat {
		t.Fatalf("failed expansion: got %v, want UnknownFormat", derr)
	}
	if !errors.Is(derr, cause) {
		t.Fatal("failed expansion must wrap the expander's error")
	}
}

func TestTap(t *testing.T) {
	var seen int
	p := New(Raw(FormatMTB, mtbStream(samplePackets...)),
		Tap("count", func(recs []Rec) { seen = len(recs) }))
	if _, derr := p.Records(); derr != nil {
		t.Fatalf("tap pipeline: %v", derr)
	}
	if seen != 3 {
		t.Fatalf("tap saw %d records, want 3", seen)
	}
}

func TestDecodeGeneric(t *testing.T) {
	var d pathCounter
	got, err := Decode[pathSummary](New(Raw(FormatMTB, mtbStream(samplePackets...))), &d)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.edges != 3 || got.dests != 0 {
		t.Fatalf("got %+v", got)
	}
}

type pathSummary struct{ edges, dests int }

type pathCounter struct{}

func (pathCounter) DecodePath(recs []Rec) (pathSummary, error) {
	var out pathSummary
	for _, r := range recs {
		switch r.Kind {
		case RecEdge:
			out.edges++
		case RecDest:
			out.dests++
		}
	}
	return out, nil
}

func TestRecOffsets(t *testing.T) {
	recs, derr := Parse(FormatMTB, mtbStream(samplePackets...))
	if derr != nil {
		t.Fatal(derr)
	}
	for i, r := range recs {
		if r.Off != i*trace.PacketSize || r.Kind != RecEdge {
			t.Fatalf("rec %d: %+v", i, r)
		}
	}
	recs, derr = Parse(FormatTRACES, EncodeTRACES([]uint32{1, 2}))
	if derr != nil {
		t.Fatal(derr)
	}
	for i, r := range recs {
		if r.Off != 4+i*4 || r.Kind != RecDest || r.Src != 0 {
			t.Fatalf("rec %d: %+v", i, r)
		}
	}
}

func TestErrorRendering(t *testing.T) {
	e := errf(Truncated, FormatMTB, 16, "stream ends mid-packet")
	want := "pipeline: mtb: truncated at +16: stream ends mid-packet"
	if e.Error() != want {
		t.Fatalf("got %q want %q", e.Error(), want)
	}
	e = &Error{Code: WrapLoss, Format: FormatMTB, Off: -1}
	if s := e.Error(); strings.Contains(s, "+-1") {
		t.Fatalf("negative offset must not render: %q", s)
	}
}

func TestCodeOf(t *testing.T) {
	if c, ok := CodeOf(nil); ok || c != OK {
		t.Fatalf("nil: %v %v", c, ok)
	}
	if c, ok := CodeOf(errors.New("plain")); ok || c != OK {
		t.Fatalf("foreign: %v %v", c, ok)
	}
	direct := errf(Budget, FormatMTB, -1, "x")
	if c, ok := CodeOf(direct); !ok || c != Budget {
		t.Fatalf("direct: %v %v", c, ok)
	}
	wrapped := fmt.Errorf("verify: %w", direct)
	if c, ok := CodeOf(wrapped); !ok || c != Budget {
		t.Fatalf("wrapped: %v %v", c, ok)
	}
}

func TestDecodeErrNames(t *testing.T) {
	want := map[DecodeErr]string{
		OK: "ok", Truncated: "truncated", Misaligned: "misaligned",
		UnknownFormat: "unknown-format", WrapLoss: "wrap-loss", Budget: "budget",
	}
	for c, name := range want {
		if c.String() != name {
			t.Fatalf("%d: got %q want %q", c, c.String(), name)
		}
		if !c.Valid() {
			t.Fatalf("%s must be Valid", name)
		}
	}
	if NumDecodeErrs.Valid() || DecodeErr(0xFF).Valid() {
		t.Fatal("out-of-range codes must not be Valid")
	}
	if DecodeErr(0xFF).String() != "invalid-decode-err" {
		t.Fatal("invalid code must render as invalid-decode-err")
	}
}

func TestFormatRegistry(t *testing.T) {
	for _, tc := range []struct {
		f    Format
		name string
	}{{FormatMTB, "mtb"}, {FormatTRACES, "traces"}} {
		if tc.f.String() != tc.name {
			t.Fatalf("%v.String() = %q", tc.f, tc.f.String())
		}
		got, ok := FormatByName(tc.name)
		if !ok || got != tc.f {
			t.Fatalf("FormatByName(%q) = %v %v", tc.name, got, ok)
		}
		if _, ok := Lookup(tc.f); !ok {
			t.Fatalf("Lookup(%v) missing", tc.f)
		}
	}
	if _, ok := FormatByName("etm"); ok {
		t.Fatal("unregistered name must not resolve")
	}
	if FormatUnknown.String() != "unknown" {
		t.Fatalf("FormatUnknown renders %q", FormatUnknown.String())
	}
}

func TestRegisterFormatPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: want panic", name)
			}
		}()
		fn()
	}
	mustPanic("dup", func() { RegisterFormat(FormatMTB, Frontend{Name: "mtb2"}) })
	mustPanic("unknown", func() { RegisterFormat(FormatUnknown, Frontend{Name: "zero"}) })
}

func TestTRACESLogSource(t *testing.T) {
	words := []uint32{0x200, 0x300}
	recs, derr := New(TRACESLog(words)).Records()
	if derr != nil {
		t.Fatal(derr)
	}
	got := Words(recs)
	if len(got) != 2 || got[0] != 0x200 || got[1] != 0x300 {
		t.Fatalf("got %#x", got)
	}
	if w, d := TRACESLog(words).Loss(); w != 0 || d != 0 {
		t.Fatal("TRACES sources never attest loss")
	}
}
