package pipeline

import (
	"bytes"
	"testing"

	"raptrack/internal/trace"
)

// FuzzPipelineDecode drives arbitrary bytes through both registered
// frontends in lenient and strict mode. The first input byte selects the
// format (even: MTB, odd: TRACES); the rest is the stream.
//
// Invariants checked:
//   - no panics, and every surfaced *Error carries a valid code, the
//     frontend's format, and an offset inside [-1, len(stream)];
//   - lenient MTB decoding never fails and is bit-identical to the
//     legacy trace.DecodePackets oracle (whole-packet prefix);
//   - lenient decoding only ever repairs Truncated/Misaligned — when
//     strict fails with any other code, lenient fails identically;
//   - record offsets are strictly increasing, record-aligned positions
//     inside the stream.
func FuzzPipelineDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add(append([]byte{0}, EncodeMTB([]trace.Packet{{Src: 0x200010, Dst: 0x200040}})...))
	f.Add(append([]byte{0}, 1, 2, 3)) // ragged MTB tail
	f.Add(append([]byte{1}, EncodeTRACES([]uint32{0x200040, 0x200052})...))
	f.Add(append([]byte{1}, 2, 0, 0, 0, 0xAA)) // short TRACES body
	f.Add(append([]byte{1}, 1, 0, 0, 1))       // implausible TRACES count
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		format := FormatMTB
		if data[0]&1 == 1 {
			format = FormatTRACES
		}
		b := data[1:]

		lenient := New(Raw(format, b))
		recs, derr := lenient.Records()
		checkErr(t, derr, format, len(b))
		checkRecs(t, recs, format, len(b))

		if _, serr := New(Raw(format, b)).Strict().Records(); serr != nil {
			checkErr(t, serr, format, len(b))
		} else if derr != nil {
			t.Fatalf("lenient failed (%v) where strict succeeded", derr)
		}

		// Parse exposes the whole-record prefix alongside any error — the
		// prefix lenient repair must keep, and only for repairable codes.
		prefix, perr := Parse(format, b)
		switch {
		case perr == nil:
			if derr != nil {
				t.Fatalf("lenient failed (%v) on clean input", derr)
			}
			if len(recs) != len(prefix) {
				t.Fatalf("lenient %d records != parse %d on clean input", len(recs), len(prefix))
			}
		case perr.Code == Truncated || perr.Code == Misaligned:
			if derr != nil {
				t.Fatalf("lenient did not repair %v", perr)
			}
			if len(recs) != len(prefix) {
				t.Fatalf("repair kept %d records, whole-record prefix had %d", len(recs), len(prefix))
			}
		default:
			if derr == nil || derr.Code != perr.Code {
				t.Fatalf("lenient repaired unrepairable %v (got %v)", perr, derr)
			}
		}

		if format == FormatMTB {
			if derr != nil {
				t.Fatalf("lenient MTB decode failed: %v", derr)
			}
			//lint:ignore SA1019 the deprecated decoder is the differential oracle here
			legacy := trace.DecodePackets(b)
			got := Packets(recs)
			if !bytes.Equal(EncodeMTB(legacy), EncodeMTB(got)) {
				t.Fatalf("MTB divergence: legacy %d packets, pipeline %d", len(legacy), len(got))
			}
			if want := b[:len(b)-len(b)%trace.PacketSize]; !bytes.Equal(EncodeMTB(got), want) {
				t.Fatalf("re-encode is not the whole-packet prefix")
			}
		}
	})
}

func checkErr(t *testing.T, e *Error, format Format, n int) {
	t.Helper()
	if e == nil {
		return
	}
	if e.Code <= OK || e.Code >= NumDecodeErrs {
		t.Fatalf("invalid error code %d: %v", e.Code, e)
	}
	if e.Format != format {
		t.Fatalf("error format %v, frontend %v: %v", e.Format, format, e)
	}
	if e.Off < -1 || e.Off > n {
		t.Fatalf("offset %d outside [-1, %d]: %v", e.Off, n, e)
	}
}

func checkRecs(t *testing.T, recs []Rec, format Format, n int) {
	t.Helper()
	header, record := 0, 8 // MTB: bare 8-byte packets
	if format == FormatTRACES {
		header, record = 4, 4 // u32 count, then u32 words
	}
	prev := -1
	for i, r := range recs {
		if r.Off < 0 || r.Off >= n {
			t.Fatalf("record %d offset %d outside stream of %d bytes", i, r.Off, n)
		}
		if r.Off <= prev {
			t.Fatalf("record %d offset %d not increasing (prev %d)", i, r.Off, prev)
		}
		if (r.Off-header)%record != 0 {
			t.Fatalf("record %d offset %d not record-aligned", i, r.Off)
		}
		prev = r.Off
	}
}
