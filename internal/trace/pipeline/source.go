package pipeline

import "raptrack/internal/trace"

// byteSource is the common TraceSource shape: a fully materialized byte
// stream with its format and attested capture loss.
type byteSource struct {
	format  Format
	bytes   []byte
	wraps   uint64
	dropped uint64
}

func (s *byteSource) Format() Format                { return s.format }
func (s *byteSource) Read() ([]byte, *Error)        { return s.bytes, nil }
func (s *byteSource) Loss() (wraps, dropped uint64) { return s.wraps, s.dropped }

// MTBChain sources the CFLog a verified report chain assembled: log is
// the concatenated MTB evidence, wraps/dropped the loss counters the
// signed reports attest (summed across the chain). This is the verifier's
// post-authentication entry point.
func MTBChain(log []byte, wraps, dropped uint64) TraceSource {
	return &byteSource{format: FormatMTB, bytes: log, wraps: wraps, dropped: dropped}
}

// MTBRing sources a raw hardware ring capture: buf is the MTB SRAM
// window, pos the write position (MTB_POSITION byte offset) and wraps the
// attested wrap count. The ring is linearized oldest-first: an unwrapped
// ring carries buf[:pos]; a wrapped ring carries buf[pos:] then buf[:pos]
// — the un-overwritten tail precedes the newest packets, which is the
// only order that keeps packet boundaries intact.
func MTBRing(buf []byte, pos int, wraps uint64) TraceSource {
	if pos < 0 {
		pos = 0
	}
	if pos > len(buf) {
		pos = len(buf)
	}
	var lin []byte
	if wraps == 0 {
		lin = buf[:pos]
	} else {
		lin = make([]byte, 0, len(buf))
		lin = append(lin, buf[pos:]...)
		lin = append(lin, buf[:pos]...)
	}
	return &byteSource{format: FormatMTB, bytes: lin, wraps: wraps}
}

// TRACESLog sources a TRACES baseline instrumentation log from its
// destination words (the TEE CFLog the Secure World accumulated). The
// TRACES design excludes capture loss by construction — the Secure World
// log grows unboundedly rather than wrapping — so Loss is always (0, 0).
func TRACESLog(words []uint32) TraceSource {
	return &byteSource{format: FormatTRACES, bytes: EncodeTRACES(words)}
}

// Raw sources opaque bytes claimed to be format f with no loss
// attestation — replay tooling, fuzzers, and on-disk evidence.
func Raw(f Format, b []byte) TraceSource {
	return &byteSource{format: f, bytes: b}
}

// FromPackets sources an already-decoded edge stream by re-serializing it
// to the MTB encoding (testing and replay aid).
func FromPackets(ps []trace.Packet) TraceSource {
	return &byteSource{format: FormatMTB, bytes: EncodeMTB(ps)}
}
