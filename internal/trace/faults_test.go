// Fault-hook behavior of the hardware models: injected drops,
// corruption, watermark suppression, arming jitter and DWT misfires must
// perturb exactly the event they model, count themselves, and cost
// nothing when absent.
package trace

import "testing"

func TestMTBFaultsDrop(t *testing.T) {
	s := newSink()
	m := NewMTB(s, 0, 64)
	m.SetMaster(true)
	drop := true
	m.Faults = &MTBFaults{Drop: func(src, dst uint32) bool { return drop }}
	m.Record(1, 2)
	if m.TotalPackets != 0 || m.InjectedDrops != 1 {
		t.Fatalf("packets=%d drops=%d", m.TotalPackets, m.InjectedDrops)
	}
	drop = false
	m.Record(3, 4)
	if m.TotalPackets != 1 || m.InjectedDrops != 1 {
		t.Fatalf("packets=%d drops=%d", m.TotalPackets, m.InjectedDrops)
	}
	if p := s.packetAt(0, 0); p != (Packet{3, 4}) {
		t.Fatalf("stored %v", p)
	}
}

func TestMTBFaultsCorrupt(t *testing.T) {
	s := newSink()
	m := NewMTB(s, 0, 64)
	m.SetMaster(true)
	m.Faults = &MTBFaults{Corrupt: func(src, dst uint32) (uint32, uint32) {
		if src == 1 {
			return src ^ 0x80, dst
		}
		return src, dst // identity: must not count as an injection
	}}
	m.Record(1, 2)
	m.Record(3, 4)
	if m.InjectedCorruptions != 1 || m.TotalPackets != 2 {
		t.Fatalf("corruptions=%d packets=%d", m.InjectedCorruptions, m.TotalPackets)
	}
	if p := s.packetAt(0, 0); p != (Packet{0x81, 2}) {
		t.Fatalf("slot 0 = %v, want corrupted src 0x81", p)
	}
	if p := s.packetAt(0, 1); p != (Packet{3, 4}) {
		t.Fatalf("slot 1 = %v, want untouched", p)
	}
}

// TestMTBFaultsWatermarkSuppression is the loss-evidence mechanism end to
// end at the unit level: a swallowed MTB_FLOW exception means the drain
// never runs, the position keeps advancing, and the eventual wrap —
// which overwrites evidence — is visible in Wraps.
func TestMTBFaultsWatermarkSuppression(t *testing.T) {
	s := newSink()
	m := NewMTB(s, 0, 32) // 4 packets
	m.SetMaster(true)
	if err := m.SetWatermark(16); err != nil {
		t.Fatal(err)
	}
	fired := 0
	m.OnWatermark = func() {
		fired++
		m.ResetPosition()
	}
	m.Faults = &MTBFaults{SuppressWatermark: func() bool { return true }}
	for i := uint32(0); i < 5; i++ {
		m.Record(i, i)
	}
	if fired != 0 {
		t.Fatalf("watermark fired %d times under suppression", fired)
	}
	if m.WatermarkSuppressions == 0 {
		t.Fatal("suppressions not counted")
	}
	if m.Wraps != 1 {
		t.Fatalf("Wraps = %d; suppression must drive the buffer past capacity", m.Wraps)
	}
}

func TestMTBFaultsArmJitter(t *testing.T) {
	m := NewMTB(newSink(), 0, 64)
	m.SetArmLatency(1)
	m.Faults = &MTBFaults{ArmJitter: func() int { return 2 }}
	m.TStart()
	// Latency 1 + jitter 2: three retires before capture.
	for i := 0; i < 3; i++ {
		if m.Enabled() {
			t.Fatalf("enabled after %d retires, want 3", i)
		}
		m.Record(1, 2) // all lost to the stretched arming window
		m.OnRetire()
	}
	if !m.Enabled() {
		t.Fatal("not enabled after the jittered window elapsed")
	}
	if m.DroppedArming != 3 {
		t.Fatalf("DroppedArming = %d, want 3", m.DroppedArming)
	}
}

func TestDWTFaultsMisfire(t *testing.T) {
	d := NewDWT()
	if err := d.Program(RangeRule{Base: 0x100, Limit: 0x200, Action: ActionStartMTB}); err != nil {
		t.Fatal(err)
	}
	fire := true
	d.Misfire = func(RangeRule) bool { return fire }
	if start, _ := d.Evaluate(0x150); start {
		t.Fatal("misfiring comparator still asserted TSTART")
	}
	if d.Misfires != 1 {
		t.Fatalf("Misfires = %d", d.Misfires)
	}
	fire = false
	if start, _ := d.Evaluate(0x150); !start {
		t.Fatal("comparator dead after the fault cleared")
	}
}
