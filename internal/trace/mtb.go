package trace

import (
	"encoding/binary"
	"fmt"
)

// PacketSize is the size in bytes of one MTB trace packet: two 32-bit
// words, the branch source address and the branch destination address.
const PacketSize = 8

// Packet is one recorded control-flow transfer.
type Packet struct {
	Src uint32 // address of the branch instruction
	Dst uint32 // address execution continued at
}

func (p Packet) String() string { return fmt.Sprintf("%#08x -> %#08x", p.Src, p.Dst) }

// BufferWriter is where the MTB deposits packets. In the full system this
// is the Secure-World SRAM region holding CFLog (internal/mem.Memory);
// tests may use an in-memory stub.
type BufferWriter interface {
	Write32(addr uint32, v uint32) error
}

// MTBFaults is the optional fault-injection surface of the MTB model
// (chaos testing, internal/faults). Each non-nil hook is consulted on the
// hardware event it perturbs; production configurations leave MTB.Faults
// nil and pay nothing. Hooks run synchronously on the simulated CPU's
// goroutine, so they need no internal locking of the MTB itself.
type MTBFaults struct {
	// Drop, when it returns true, loses the offered hardware packet
	// silently — a capture miss the buffer never sees.
	Drop func(src, dst uint32) bool
	// Corrupt may rewrite a packet before it reaches SRAM — a bus or SRAM
	// bit error. Returning the inputs unchanged injects nothing.
	Corrupt func(src, dst uint32) (uint32, uint32)
	// SuppressWatermark, when it returns true, swallows one watermark
	// debug exception: the drain misses its window and the buffer keeps
	// filling toward a wrap (detectable afterwards via Wraps).
	SuppressWatermark func() bool
	// ArmJitter returns extra arming-latency instructions applied to one
	// TStart — activation-delay variance beyond the linker's NOP pad.
	ArmJitter func() int
}

// MTB models the Micro Trace Buffer. Zero value is not usable; use NewMTB.
//
// Register-level correspondence:
//
//	MTB_MASTER.TSTARTEN  -> SetMaster(true): trace everything, no latency
//	MTB_TSTART/MTB_TSTOP -> TStart/TStop (driven by DWT comparators)
//	MTB_POSITION         -> Position()
//	MTB_FLOW watermark   -> SetWatermark / OnWatermark
type MTB struct {
	base uint32 // SRAM address packets are written to
	size int    // buffer capacity in bytes (multiple of PacketSize)
	mem  BufferWriter

	pos       int // next write offset within the buffer
	watermark int // byte offset that triggers OnWatermark; 0 disables

	master       bool // TSTARTEN: unconditional tracing (naive MTB mode)
	tracing      bool // TSTART asserted more recently than TSTOP
	armLatency   int  // instructions between TSTART and first capture
	armCountdown int

	// OnWatermark is invoked (synchronously, from Record) when the write
	// position reaches the watermark. The CFA engine uses it to emit a
	// partial report and then call ResetPosition.
	OnWatermark func()

	// Faults, when non-nil, injects hardware faults (chaos testing).
	Faults *MTBFaults

	// Statistics.
	TotalPackets  uint64 // packets actually written
	EngineEntries uint64 // packets appended by SoftAppend (loop conditions)
	DroppedArming uint64 // packets lost during the TSTART arming window
	Wraps         uint64 // times the circular buffer wrapped

	// Fault-injection statistics (moved only by MTBFaults hooks).
	InjectedDrops         uint64 // packets lost to a Drop hook
	InjectedCorruptions   uint64 // packets rewritten by a Corrupt hook
	WatermarkSuppressions uint64 // watermark exceptions swallowed
}

// NewMTB creates an MTB whose circular buffer lives at [base, base+size) in
// w. size must be a positive multiple of PacketSize; the M33's MTB SRAM is
// 4 KB (§V-B), the default used across the repo.
func NewMTB(w BufferWriter, base uint32, size int) *MTB {
	if size <= 0 || size%PacketSize != 0 {
		panic(fmt.Sprintf("trace: MTB buffer size %d not a positive multiple of %d", size, PacketSize))
	}
	return &MTB{base: base, size: size, mem: w}
}

// DefaultBufferSize is the MTB SRAM capacity of the modelled Cortex-M33.
const DefaultBufferSize = 4096

// SetArmLatency sets the number of instructions that must retire after
// TSTART before the MTB captures packets (hardware activation delay).
// Latency 0 means immediate activation.
func (m *MTB) SetArmLatency(n int) {
	if n < 0 {
		n = 0
	}
	m.armLatency = n
}

// ArmLatency returns the configured activation delay.
func (m *MTB) ArmLatency() int { return m.armLatency }

// SetMaster sets MTB_MASTER.TSTARTEN: when true the MTB records every
// non-sequential transfer regardless of TSTART/TSTOP (the naive MTB mode of
// paper §I).
func (m *MTB) SetMaster(on bool) { m.master = on }

// TStart asserts the TSTART input (from a DWT comparator). Starting an
// already-started MTB is a no-op and does not restart the arming window.
func (m *MTB) TStart() {
	if m.tracing {
		return
	}
	m.tracing = true
	m.armCountdown = m.armLatency
	if f := m.Faults; f != nil && f.ArmJitter != nil {
		if j := f.ArmJitter(); j > 0 {
			m.armCountdown += j
		}
	}
}

// TStop asserts the TSTOP input.
func (m *MTB) TStop() { m.tracing = false }

// Tracing reports whether TSTART is currently in effect (regardless of the
// arming window).
func (m *MTB) Tracing() bool { return m.tracing || m.master }

// Enabled reports whether a packet would be captured right now.
func (m *MTB) Enabled() bool {
	return m.master || (m.tracing && m.armCountdown == 0)
}

// OnRetire advances the arming window; the CPU calls it once per retired
// instruction.
func (m *MTB) OnRetire() {
	if m.tracing && m.armCountdown > 0 {
		m.armCountdown--
	}
}

// Record offers a non-sequential transfer to the MTB. If enabled, the
// packet is written to the circular buffer; if the unit is still arming,
// the packet is lost (counted in DroppedArming).
func (m *MTB) Record(src, dst uint32) {
	if !m.Enabled() {
		if m.tracing && m.armCountdown > 0 {
			m.DroppedArming++
		}
		return
	}
	if f := m.Faults; f != nil {
		if f.Drop != nil && f.Drop(src, dst) {
			m.InjectedDrops++
			return
		}
		if f.Corrupt != nil {
			if s, d := f.Corrupt(src, dst); s != src || d != dst {
				m.InjectedCorruptions++
				src, dst = s, d
			}
		}
	}
	m.write(src, dst)
}

// SoftAppend writes a packet regardless of the enable state. This models
// Secure-World software appending an entry through the writable
// MTB_POSITION register — the mechanism the CFA engine uses to interleave
// loop-condition entries (§IV-D) with hardware packets in order.
func (m *MTB) SoftAppend(src, dst uint32) {
	m.EngineEntries++
	m.write(src, dst)
}

func (m *MTB) write(src, dst uint32) {
	addr := m.base + uint32(m.pos)
	// Errors are impossible for plain RAM targets; a device-window target
	// would be a configuration bug, so surface it loudly.
	if err := m.mem.Write32(addr, src); err != nil {
		panic(fmt.Sprintf("trace: MTB buffer write failed: %v", err))
	}
	if err := m.mem.Write32(addr+4, dst); err != nil {
		panic(fmt.Sprintf("trace: MTB buffer write failed: %v", err))
	}
	m.pos += PacketSize
	m.TotalPackets++
	if m.watermark > 0 && m.pos >= m.watermark && m.OnWatermark != nil {
		if f := m.Faults; f != nil && f.SuppressWatermark != nil && f.SuppressWatermark() {
			// The drain misses its window; the write position keeps
			// advancing and the eventual wrap (below) overwrites evidence.
			m.WatermarkSuppressions++
		} else {
			m.OnWatermark()
		}
	}
	if m.pos >= m.size {
		m.pos = 0
		m.Wraps++
	}
}

// SetWatermark programs MTB_FLOW: OnWatermark fires when the write position
// reaches off bytes. off must be a multiple of PacketSize within the
// buffer; 0 disables the watermark.
func (m *MTB) SetWatermark(off int) error {
	if off < 0 || off > m.size || off%PacketSize != 0 {
		return fmt.Errorf("trace: watermark %d invalid for %d-byte buffer", off, m.size)
	}
	m.watermark = off
	return nil
}

// Position returns the current write offset in bytes (MTB_POSITION).
func (m *MTB) Position() int { return m.pos }

// Base returns the SRAM address of the buffer.
func (m *MTB) Base() uint32 { return m.base }

// Size returns the buffer capacity in bytes.
func (m *MTB) Size() int { return m.size }

// ResetPosition rewinds the write pointer to the start of the buffer. The
// CFA engine calls this after draining a partial report (§IV-E: "the head
// pointer of CFLog is reset").
func (m *MTB) ResetPosition() { m.pos = 0 }

// DecodePackets parses raw buffer bytes into packets, silently dropping
// any trailing partial packet.
//
// Deprecated: decode through the pipeline package instead —
// pipeline.New(pipeline.Raw(pipeline.FormatMTB, b)).Packets() matches
// this function's lenient tail handling, and its Strict mode reports the
// defect as a typed error. Kept as the thin legacy wrapper (and the fuzz
// oracle the pipeline is differentially tested against).
func DecodePackets(b []byte) []Packet {
	n := len(b) / PacketSize
	out := make([]Packet, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, Packet{
			Src: binary.LittleEndian.Uint32(b[i*PacketSize:]),
			Dst: binary.LittleEndian.Uint32(b[i*PacketSize+4:]),
		})
	}
	return out
}

// EncodePackets serializes packets to the MTB wire format.
//
// Deprecated: use pipeline.EncodeMTB, the canonical encoder. Kept as the
// thin legacy wrapper.
func EncodePackets(ps []Packet) []byte {
	out := make([]byte, 0, len(ps)*PacketSize)
	for _, p := range ps {
		out = binary.LittleEndian.AppendUint32(out, p.Src)
		out = binary.LittleEndian.AppendUint32(out, p.Dst)
	}
	return out
}
