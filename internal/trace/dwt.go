// Package trace models the two ARMv8-M hardware tracing extensions
// RAP-Track builds on: the Micro Trace Buffer (MTB) and the Data Watchpoint
// and Trace unit (DWT).
//
// The models follow the MTB-M33 and DWT behaviour the paper relies on:
//
//   - The DWT provides four PC comparators. Paired comparators define an
//     address range; a range can be programmed to assert the MTB's TSTART
//     or TSTOP input when the PC is inside it (paper §II-B2, §IV-B).
//   - The MTB, while enabled, writes an 8-byte (source, destination) packet
//     into a circular SRAM buffer for every non-sequential PC change
//     (§II-B1). A watermark (MTB_FLOW) raises a debug exception when the
//     write position reaches it (§IV-E).
//   - MTB activation after TSTART is not immediate (§V-C: "'nop'
//     instructions were added in MTBAR trampolines to allow the MTB
//     sufficient time to activate"); ArmLatency models this.
package trace

import "fmt"

// CompAction selects what a DWT comparator range drives.
type CompAction uint8

// Comparator actions.
const (
	ActionNone     CompAction = iota
	ActionStartMTB            // assert MTB TSTART while PC in range
	ActionStopMTB             // assert MTB TSTOP while PC in range
)

func (a CompAction) String() string {
	switch a {
	case ActionStartMTB:
		return "start-mtb"
	case ActionStopMTB:
		return "stop-mtb"
	default:
		return "none"
	}
}

// NumComparators is the number of DWT comparators on the modelled
// Cortex-M33 (four, per the DWT TRM).
const NumComparators = 4

// RangeRule is a programmed comparator pair: [Base, Limit) with an action.
type RangeRule struct {
	Base, Limit uint32
	Action      CompAction
}

// Contains reports whether pc falls inside the rule's range.
func (r RangeRule) Contains(pc uint32) bool {
	return r.Action != ActionNone && pc >= r.Base && pc < r.Limit
}

func (r RangeRule) String() string {
	return fmt.Sprintf("[%#08x,%#08x) %s", r.Base, r.Limit, r.Action)
}

// DWT models the Data Watchpoint and Trace unit's PC-range comparators.
// Each RangeRule consumes two comparators (base and limit), mirroring the
// paper's configuration: two for MTBAR (TSTART) and two for MTBDR (TSTOP).
type DWT struct {
	rules []RangeRule

	// Misfire, when non-nil, may veto one comparator assertion (fault
	// injection, internal/faults): a rule whose range contains the PC
	// fails to drive its MTB input for that evaluation. Production
	// configurations leave it nil.
	Misfire func(RangeRule) bool
	// Misfires counts vetoed assertions.
	Misfires uint64
}

// NewDWT returns a DWT with no ranges programmed.
func NewDWT() *DWT { return &DWT{} }

// Program installs a comparator range. It returns an error if the unit is
// out of comparators (each range uses two).
func (d *DWT) Program(r RangeRule) error {
	if (len(d.rules)+1)*2 > NumComparators {
		return fmt.Errorf("trace: DWT out of comparators (%d available, each range uses 2)", NumComparators)
	}
	if r.Limit <= r.Base {
		return fmt.Errorf("trace: DWT range limit %#x <= base %#x", r.Limit, r.Base)
	}
	d.rules = append(d.rules, r)
	return nil
}

// Clear removes all programmed ranges.
func (d *DWT) Clear() { d.rules = d.rules[:0] }

// Rules returns the programmed ranges (read-only use).
func (d *DWT) Rules() []RangeRule { return d.rules }

// Evaluate checks pc against all ranges and returns which MTB inputs are
// asserted. Hardware evaluates comparators on every instruction fetch.
func (d *DWT) Evaluate(pc uint32) (start, stop bool) {
	for _, r := range d.rules {
		if r.Contains(pc) {
			if d.Misfire != nil && d.Misfire(r) {
				d.Misfires++
				continue
			}
			switch r.Action {
			case ActionStartMTB:
				start = true
			case ActionStopMTB:
				stop = true
			}
		}
	}
	return start, stop
}
