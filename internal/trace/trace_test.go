package trace

import (
	"testing"
	"testing/quick"
)

// sink is an in-memory BufferWriter.
type sink struct {
	words map[uint32]uint32
}

func newSink() *sink { return &sink{words: make(map[uint32]uint32)} }

func (s *sink) Write32(addr, v uint32) error {
	s.words[addr] = v
	return nil
}

func (s *sink) packetAt(base uint32, i int) Packet {
	return Packet{Src: s.words[base+uint32(i*8)], Dst: s.words[base+uint32(i*8)+4]}
}

func TestMTBMasterMode(t *testing.T) {
	s := newSink()
	m := NewMTB(s, 0x3000_0000, 64)
	m.Record(1, 2) // disabled: dropped silently
	if m.TotalPackets != 0 {
		t.Fatal("packet recorded while disabled")
	}
	m.SetMaster(true)
	m.Record(0x10, 0x20)
	if m.TotalPackets != 1 || m.Position() != 8 {
		t.Fatalf("packets=%d pos=%d", m.TotalPackets, m.Position())
	}
	if p := s.packetAt(0x3000_0000, 0); p.Src != 0x10 || p.Dst != 0x20 {
		t.Fatalf("stored packet %v", p)
	}
}

func TestMTBStartStopAndArming(t *testing.T) {
	s := newSink()
	m := NewMTB(s, 0, 64)
	m.SetArmLatency(2)
	m.TStart()
	if m.Enabled() {
		t.Fatal("must not be enabled during arming window")
	}
	m.Record(1, 2) // lost to arming
	if m.DroppedArming != 1 {
		t.Fatalf("DroppedArming = %d", m.DroppedArming)
	}
	m.OnRetire()
	m.OnRetire()
	if !m.Enabled() {
		t.Fatal("should be enabled after latency elapses")
	}
	m.Record(3, 4)
	if m.TotalPackets != 1 {
		t.Fatalf("TotalPackets = %d", m.TotalPackets)
	}
	// Re-asserting TSTART while tracing must not restart the window.
	m.TStart()
	if !m.Enabled() {
		t.Fatal("redundant TSTART restarted the arming window")
	}
	m.TStop()
	if m.Enabled() || m.Tracing() {
		t.Fatal("TSTOP did not stop tracing")
	}
	// A fresh start re-arms.
	m.TStart()
	if m.Enabled() {
		t.Fatal("fresh TSTART should re-arm")
	}
}

func TestMTBWrapAround(t *testing.T) {
	s := newSink()
	m := NewMTB(s, 0x100, 32) // 4 packets
	m.SetMaster(true)
	for i := uint32(0); i < 6; i++ {
		m.Record(i, i+100)
	}
	if m.Wraps != 1 {
		t.Fatalf("Wraps = %d", m.Wraps)
	}
	if m.Position() != 16 {
		t.Fatalf("Position = %d", m.Position())
	}
	// Oldest entries overwritten: slot 0 now holds packet 4.
	if p := s.packetAt(0x100, 0); p.Src != 4 {
		t.Fatalf("slot 0 = %v, want src 4", p)
	}
}

func TestMTBWatermark(t *testing.T) {
	s := newSink()
	m := NewMTB(s, 0, 64)
	m.SetMaster(true)
	if err := m.SetWatermark(16); err != nil {
		t.Fatal(err)
	}
	fired := 0
	m.OnWatermark = func() {
		fired++
		m.ResetPosition()
	}
	for i := uint32(0); i < 5; i++ {
		m.Record(i, i)
	}
	if fired != 2 {
		t.Fatalf("watermark fired %d times, want 2 (at packets 2 and 4)", fired)
	}
	if m.Wraps != 0 {
		t.Fatalf("reset position should prevent wraps, got %d", m.Wraps)
	}
}

func TestMTBWatermarkValidation(t *testing.T) {
	m := NewMTB(newSink(), 0, 64)
	for _, bad := range []int{-8, 7, 72} {
		if err := m.SetWatermark(bad); err == nil {
			t.Errorf("SetWatermark(%d) should fail", bad)
		}
	}
	if err := m.SetWatermark(0); err != nil {
		t.Errorf("SetWatermark(0) disables: %v", err)
	}
}

func TestMTBSoftAppend(t *testing.T) {
	s := newSink()
	m := NewMTB(s, 0, 64)
	// Disabled for hardware, but the engine can still append.
	m.SoftAppend(0xaa, 0xbb)
	if m.TotalPackets != 1 || m.EngineEntries != 1 {
		t.Fatalf("packets=%d engine=%d", m.TotalPackets, m.EngineEntries)
	}
}

func TestMTBBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewMTB with unaligned size should panic")
		}
	}()
	NewMTB(newSink(), 0, 12)
}

func TestPacketCodecRoundTrip(t *testing.T) {
	f := func(srcs, dsts []uint32) bool {
		n := len(srcs)
		if len(dsts) < n {
			n = len(dsts)
		}
		ps := make([]Packet, n)
		for i := 0; i < n; i++ {
			ps[i] = Packet{Src: srcs[i], Dst: dsts[i]}
		}
		got := DecodePackets(EncodePackets(ps))
		if len(got) != n {
			return false
		}
		for i := range got {
			if got[i] != ps[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodePacketsIgnoresTrailingBytes(t *testing.T) {
	raw := EncodePackets([]Packet{{1, 2}})
	raw = append(raw, 0xff, 0xee) // partial trailing packet
	got := DecodePackets(raw)
	if len(got) != 1 || got[0] != (Packet{1, 2}) {
		t.Fatalf("got %v", got)
	}
}

func TestDWTRanges(t *testing.T) {
	d := NewDWT()
	if err := d.Program(RangeRule{Base: 0x100, Limit: 0x200, Action: ActionStartMTB}); err != nil {
		t.Fatal(err)
	}
	if err := d.Program(RangeRule{Base: 0x0, Limit: 0x100, Action: ActionStopMTB}); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		pc          uint32
		start, stop bool
	}{
		{0x100, true, false},
		{0x1ff, true, false},
		{0x200, false, false}, // limit is exclusive
		{0x50, false, true},
		{0xfff0, false, false},
	}
	for _, c := range cases {
		start, stop := d.Evaluate(c.pc)
		if start != c.start || stop != c.stop {
			t.Errorf("Evaluate(%#x) = (%v,%v), want (%v,%v)", c.pc, start, stop, c.start, c.stop)
		}
	}
}

func TestDWTComparatorBudget(t *testing.T) {
	d := NewDWT()
	// Four comparators = two ranges.
	if err := d.Program(RangeRule{Base: 0, Limit: 1, Action: ActionStartMTB}); err != nil {
		t.Fatal(err)
	}
	if err := d.Program(RangeRule{Base: 1, Limit: 2, Action: ActionStopMTB}); err != nil {
		t.Fatal(err)
	}
	if err := d.Program(RangeRule{Base: 2, Limit: 3, Action: ActionStartMTB}); err == nil {
		t.Error("third range should exhaust the 4 comparators")
	}
	d.Clear()
	if err := d.Program(RangeRule{Base: 0, Limit: 1, Action: ActionStartMTB}); err != nil {
		t.Errorf("after Clear: %v", err)
	}
}

func TestDWTInvalidRange(t *testing.T) {
	d := NewDWT()
	if err := d.Program(RangeRule{Base: 0x200, Limit: 0x100, Action: ActionStartMTB}); err == nil {
		t.Error("inverted range should fail")
	}
}

// TestMTBDWTIntegration models the paper's §IV-B asymmetry at the unit
// level: a transfer whose source is outside the activation region is not
// recorded, one whose source is inside is.
func TestMTBDWTIntegration(t *testing.T) {
	s := newSink()
	m := NewMTB(s, 0, 64)
	d := NewDWT()
	_ = d.Program(RangeRule{Base: 0x1000, Limit: 0x1100, Action: ActionStartMTB})
	_ = d.Program(RangeRule{Base: 0x0, Limit: 0x1000, Action: ActionStopMTB})

	step := func(pc uint32, branchTo uint32) {
		start, stop := d.Evaluate(pc)
		if stop {
			m.TStop()
		}
		if start {
			m.TStart()
		}
		if branchTo != 0 {
			m.Record(pc, branchTo)
		}
		m.OnRetire()
	}

	// In MTBDR: branch INTO MTBAR not recorded.
	step(0x500, 0x1000)
	if m.TotalPackets != 0 {
		t.Fatal("DR->AR transfer must not be recorded")
	}
	// Inside MTBAR (latency 0 by default): branch OUT recorded.
	step(0x1000, 0x600)
	if m.TotalPackets != 1 {
		t.Fatal("AR->DR transfer must be recorded")
	}
	// Back in DR, nothing recorded.
	step(0x600, 0x700)
	if m.TotalPackets != 1 {
		t.Fatal("DR->DR transfer must not be recorded")
	}
}
