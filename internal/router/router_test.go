// Router behavior tests:
//
//   - the acceptance differential: every session class — honest devices
//     across apps, unknown apps, malformed and non-HELO first frames —
//     produces a bit-identical frame sequence through a 4-shard router
//     and a single directly-driven gateway;
//   - concurrent DICT propagation vs. in-flight sessions under -race:
//     no shard's version ever regresses, all replicas converge on one
//     (epoch, bytes) pair, and every session still verifies OK;
//   - cross-shard cache warming: a verdict computed on one shard
//     short-circuits the same evidence arriving on another;
//   - shard-kill/restart chaos in the PR 3 harness shape: seeded kill
//     schedule, BUSY retry-after shedding, recovery, zero false accepts.
//
// All must pass under -race.
package router_test

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"raptrack/internal/apps"
	"raptrack/internal/attest"
	"raptrack/internal/core"
	"raptrack/internal/faults"
	"raptrack/internal/linker"
	"raptrack/internal/remote"
	"raptrack/internal/router"
	"raptrack/internal/server"
)

const routerChaosSeed = 0xF1EE7C4A

// attestAs runs one batch attestation session announcing a device
// identity, through the unified client API (remote.Client).
func attestAs(ep *remote.ProverEndpoint, conn io.ReadWriter, app, device string) (remote.GatewayVerdict, error) {
	return remote.NewClient(ep, remote.WithDevice(device)).Attest(conn, app)
}

type appFixture struct {
	name string
	link *linker.Output
	key  *attest.HMACKey
	app  apps.App
}

var (
	fixturesMu sync.Mutex
	fixtures   = map[string]*appFixture{}
)

func fixture(t testing.TB, name string) *appFixture {
	t.Helper()
	fixturesMu.Lock()
	defer fixturesMu.Unlock()
	if f, ok := fixtures[name]; ok {
		return f
	}
	a, err := apps.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	link, err := core.LinkForCFA(a.Build(), core.DefaultLinkOptions())
	if err != nil {
		t.Fatal(err)
	}
	key, err := attest.GenerateHMACKey()
	if err != nil {
		t.Fatal(err)
	}
	f := &appFixture{name: name, link: link, key: key, app: a}
	fixtures[name] = f
	return f
}

func (f *appFixture) provision(ep *remote.ProverEndpoint) {
	ep.Provision(f.name, func() (*core.Prover, error) {
		return core.NewProver(f.link, f.key, core.ProverConfig{SetupMem: f.app.SetupMem()})
	})
}

// shardFactory builds identical replicas serving the given fixtures —
// the NewShard hook for every router in this file.
func shardFactory(fs []*appFixture, opts ...server.Option) func(int) (*server.Gateway, error) {
	return func(int) (*server.Gateway, error) {
		g := server.New(opts...)
		for _, f := range fs {
			g.Register(f.name, core.NewVerifier(f.link, f.key))
		}
		return g, nil
	}
}

// recordConn captures every byte the gateway side sends, so a test can
// compare the exact frame sequence two topologies produced.
type recordConn struct {
	net.Conn
	in bytes.Buffer
}

func (r *recordConn) Read(p []byte) (int, error) {
	n, err := r.Conn.Read(p)
	r.in.Write(p[:n])
	return n, err
}

// fingerprint renders a recorded gateway byte stream as one string per
// frame: the frame type plus the exact payload bytes, except CHAL
// payloads, which carry a fresh random nonce per session and are
// reduced to their length. Everything else must match bit-for-bit.
func fingerprint(t *testing.T, recorded []byte) []string {
	t.Helper()
	var out []string
	r := bytes.NewReader(recorded)
	for {
		typ, payload, err := remote.ReadFrame(r)
		if errors.Is(err, io.EOF) {
			return out
		}
		if err != nil {
			t.Fatalf("recorded stream does not parse as frames: %v", err)
		}
		if typ == remote.FrameChal {
			out = append(out, fmt.Sprintf("chal[%d]", len(payload)))
			continue
		}
		out = append(out, fmt.Sprintf("t%d:%x", typ, payload))
	}
}

// drive runs one client session against serve over an in-memory pipe
// and returns the recorded gateway byte stream. client speaks the
// prover's side on the recording connection.
func drive(t *testing.T, serve func(net.Conn), client func(*recordConn)) []byte {
	t.Helper()
	cc, sc := net.Pipe()
	done := make(chan struct{})
	go func() {
		serve(sc)
		close(done)
	}()
	rec := &recordConn{Conn: cc}
	client(rec)
	cc.Close()
	<-done
	return rec.in.Bytes()
}

// differentialCorpus drives every session class against serve and
// returns each class's frame fingerprint.
func differentialCorpus(t *testing.T, serve func(net.Conn)) map[string][]string {
	t.Helper()
	out := map[string][]string{}
	prime, quick := fixture(t, "prime"), fixture(t, "quicksort")
	ep := remote.NewProverEndpoint()
	prime.provision(ep)
	quick.provision(ep)

	for i := 0; i < 12; i++ {
		app := "prime"
		if i%2 == 1 {
			app = "quicksort"
		}
		device := fmt.Sprintf("device-%05d", i)
		rec := drive(t, serve, func(rc *recordConn) {
			gv, err := attestAs(ep, rc, app, device)
			if err != nil {
				t.Errorf("%s/%s: %v", app, device, err)
			} else if !gv.OK {
				t.Errorf("%s/%s verdict: %s", app, device, gv.Reason())
			}
		})
		out[app+"/"+device] = fingerprint(t, rec)
	}

	// Sessions the gateway answers with its canonical FAIL behavior: the
	// router must neither swallow nor rewrite them.
	raw := func(name string, typ byte, payload []byte) {
		rec := drive(t, serve, func(rc *recordConn) {
			if err := remote.WriteFrame(rc, typ, payload); err != nil {
				return
			}
			_, _ = io.Copy(io.Discard, rc) // recordConn captures the bytes
		})
		out[name] = fingerprint(t, rec)
	}
	raw("unknown-app", remote.FrameHello, remote.EncodeHelloID("ghost", "device-x"))
	raw("bad-version", remote.FrameHello, []byte{0x7f, 'p', 'r', 'i', 'm', 'e'})
	raw("not-hello", remote.FrameChal, []byte("zzzz"))
	raw("empty-hello", remote.FrameHello, nil)
	return out
}

// TestRouterDifferentialBitIdentical is the acceptance check: for
// identical evidence, a 4-shard router must produce frame sequences
// bit-identical to a single gateway (modulo each session's random
// challenge nonce, which no topology can pin).
func TestRouterDifferentialBitIdentical(t *testing.T) {
	fs := []*appFixture{fixture(t, "prime"), fixture(t, "quicksort")}
	miningOff := []server.Option{server.WithMining(-1, 0, 0)}

	single, err := shardFactory(fs, miningOff...)(0)
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	base := differentialCorpus(t, func(c net.Conn) { _ = single.ServeConn(c) })

	rt, err := router.New(router.Config{Shards: 4, NewShard: shardFactory(fs, miningOff...)})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	sharded := differentialCorpus(t, func(c net.Conn) { _ = rt.ServeConn(c) })

	if len(base) != len(sharded) {
		t.Fatalf("corpus mismatch: %d vs %d session classes", len(base), len(sharded))
	}
	identical := 0
	for name, want := range base {
		got, ok := sharded[name]
		if !ok {
			t.Errorf("%s: missing from sharded run", name)
			continue
		}
		if fmt.Sprint(want) != fmt.Sprint(got) {
			t.Errorf("%s: frame divergence\n single: %v\nsharded: %v", name, want, got)
			continue
		}
		identical++
	}
	if identical != len(base) {
		t.Errorf("only %d/%d session classes bit-identical", identical, len(base))
	}

	// The corpus must actually have spread across shards, or the
	// differential proved nothing about routing.
	shardsSeen := map[int]bool{}
	for i := 0; i < 12; i++ {
		app := "prime"
		if i%2 == 1 {
			app = "quicksort"
		}
		shardsSeen[rt.Locate(app, fmt.Sprintf("device-%05d", i))] = true
	}
	if len(shardsSeen) < 2 {
		t.Errorf("differential corpus landed on %d shard(s); widen the device set", len(shardsSeen))
	}
}

// TestRouterDictPropagationRace runs aggressive mining on every shard
// under concurrent traffic and asserts the fleet-epoch invariants: all
// sessions verify OK while dictionaries move, no shard's version ever
// regresses, and every replica converges on identical (version, bytes).
func TestRouterDictPropagationRace(t *testing.T) {
	f := fixture(t, "prime")
	rt, err := router.New(router.Config{
		Shards:       3,
		NewShard:     shardFactory([]*appFixture{f}, server.WithMining(1, 0, 0)),
		MaxDictPaths: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	// Version monitor: polls every shard's snapshot concurrently with
	// traffic; a torn or regressing version fails the test.
	stop := make(chan struct{})
	var monWG sync.WaitGroup
	monWG.Add(1)
	go func() {
		defer monWG.Done()
		last := make([]uint64, rt.Shards())
		for {
			select {
			case <-stop:
				return
			default:
			}
			for i := 0; i < rt.Shards(); i++ {
				gw := rt.Shard(i)
				if gw == nil {
					continue
				}
				v, enc := gw.DictSnapshot("prime")
				if v < last[i] {
					t.Errorf("shard %d: dictionary version regressed %d -> %d", i, last[i], v)
				}
				if v > 0 && len(enc) == 0 {
					t.Errorf("shard %d: version %d with empty encoded bytes (torn install)", i, v)
				}
				last[i] = v
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	const sessions = 36
	sem := make(chan struct{}, 8)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			ep := remote.NewProverEndpoint()
			f.provision(ep)
			device := fmt.Sprintf("device-%05d", i)
			rec := drive(t, func(c net.Conn) { _ = rt.ServeConn(c) }, func(rc *recordConn) {
				gv, err := attestAs(ep, rc, "prime", device)
				if err != nil {
					t.Errorf("session %d: %v", i, err)
				} else if !gv.OK {
					t.Errorf("session %d verdict: %s", i, gv.Reason())
				}
			})
			_ = rec
		}(i)
	}
	wg.Wait()
	close(stop)
	monWG.Wait()

	v0, enc0 := rt.Shard(0).DictSnapshot("prime")
	if v0 == 0 || len(enc0) == 0 {
		t.Fatalf("no fleet epoch distributed after %d mined sessions", sessions)
	}
	for i := 1; i < rt.Shards(); i++ {
		v, enc := rt.Shard(i).DictSnapshot("prime")
		if v != v0 || !bytes.Equal(enc, enc0) {
			t.Errorf("shard %d: (version %d, %d bytes) diverges from shard 0 (version %d, %d bytes)",
				i, v, len(enc), v0, len(enc0))
		}
	}
}

// TestRouterWarmCachesCrossShard: a verdict cached on one shard, moved
// by the warming sweep, must hit on first arrival at another shard.
func TestRouterWarmCachesCrossShard(t *testing.T) {
	f := fixture(t, "prime")
	rt, err := router.New(router.Config{
		Shards:   2,
		NewShard: shardFactory([]*appFixture{f}, server.WithMining(-1, 0, 0)),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	// Two devices pinned to different shards.
	devOn := func(shard int) string {
		for i := 0; ; i++ {
			d := fmt.Sprintf("device-%05d", i)
			if rt.Locate("prime", d) == shard {
				return d
			}
		}
	}
	devA, devB := devOn(0), devOn(1)

	attest := func(device string) {
		ep := remote.NewProverEndpoint()
		f.provision(ep)
		drive(t, func(c net.Conn) { _ = rt.ServeConn(c) }, func(rc *recordConn) {
			gv, err := attestAs(ep, rc, "prime", device)
			if err != nil {
				t.Fatalf("%s: %v", device, err)
			}
			if !gv.OK {
				t.Fatalf("%s verdict: %s", device, gv.Reason())
			}
		})
	}

	attest(devA) // populates shard 0's cache
	if moved := rt.WarmCaches(0); moved == 0 {
		t.Fatal("warming sweep moved no entries though shard 0 has a populated cache")
	}
	before := rt.Shard(1).Snapshot()
	attest(devB) // identical evidence, different device, different shard
	after := rt.Shard(1).Snapshot()
	if after.CacheHits <= before.CacheHits {
		t.Errorf("no cache hit on the warmed shard: before=%d after=%d (entries=%d)",
			before.CacheHits, after.CacheHits, after.CacheEntries)
	}
}

// TestRouterShardKillChaos is the PR 3 harness shape at fleet scope: a
// seeded schedule kills and restarts shards under live traffic with
// hardware faults attached to every prover. Invariants: sessions shed
// by a dead shard carry BUSY retry-after hints and recover via retry,
// the fleet returns to full strength, and no accepted verdict ever
// comes from perturbed evidence.
func TestRouterShardKillChaos(t *testing.T) {
	sessions := 60
	if testing.Short() {
		sessions = 16
	}
	f := fixture(t, "prime")
	master := faults.New(routerChaosSeed, faults.Plan{
		PacketCorrupt: 0.00006,
		ShardKill:     0.05,
		ShardDownFor:  40 * time.Millisecond,
	})
	const retryAfter = 15 * time.Millisecond
	rt, err := router.New(router.Config{
		Shards:     3,
		NewShard:   shardFactory([]*appFixture{f}, server.WithSessionSlots(64)),
		RetryAfter: retryAfter,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- rt.Serve(ln) }()
	addr := ln.Addr().String()

	// Kill scheduler: one deterministic schedule, at most one shard down
	// at a time, always restarted before the next kill is considered.
	killer := master.Fork("shard-killer")
	stop := make(chan struct{})
	var killWG sync.WaitGroup
	var kills int
	killWG.Add(1)
	go func() {
		defer killWG.Done()
		tick := time.NewTicker(3 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				if !killer.RollShardKill() {
					continue
				}
				target := kills % rt.Shards()
				kills++
				if err := rt.KillShard(target); err != nil {
					t.Errorf("kill shard %d: %v", target, err)
				}
				time.Sleep(killer.ShardDownFor())
				if err := rt.RestartShard(target); err != nil {
					t.Errorf("restart shard %d: %v", target, err)
				}
			}
		}
	}()

	retryPolicy := remote.RetryPolicy{
		MaxAttempts:    10,
		AttemptTimeout: 2 * time.Second,
		Sleep:          time.Sleep, // honor BUSY hints for real: they are short
	}
	var (
		mu              sync.Mutex
		okN, rejN, errN int
		busyHints       int
	)
	type provers struct {
		mu   sync.Mutex
		last *core.Prover
	}
	sem := make(chan struct{}, 8)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			inj := master.Fork(fmt.Sprintf("session-%04d", i))
			pl := &provers{}
			ep := remote.NewProverEndpoint()
			ep.Provision("prime", func() (*core.Prover, error) {
				p, err := core.NewProver(f.link, f.key, core.ProverConfig{SetupMem: f.app.SetupMem()})
				if err != nil {
					return nil, err
				}
				inj.InstrumentMTB(p.Engine.MTB)
				pl.mu.Lock()
				pl.last = p
				pl.mu.Unlock()
				return p, nil
			})
			dial := func() (io.ReadWriteCloser, error) { return net.Dial("tcp", addr) }
			gv, rst, err := remote.NewClient(ep, remote.WithRetry(retryPolicy)).AttestDial("prime", dial)

			mu.Lock()
			defer mu.Unlock()
			busyHints += rst.BusyHints
			switch {
			case err != nil:
				errN++
				if !strings.Contains(err.Error(), "gave up") && remote.Classify(err) != remote.ClassFatal {
					t.Errorf("session %d: unexpected terminal error: %v", i, err)
				}
			case gv.OK:
				okN++
				pl.mu.Lock()
				m := pl.last.Engine.MTB
				pl.mu.Unlock()
				if m.InjectedCorruptions > 0 || m.Wraps > 0 {
					t.Errorf("session %d: FALSE ACCEPT: corruptions=%d wraps=%d", i, m.InjectedCorruptions, m.Wraps)
				}
			default:
				rejN++
				if inj.Counts().Hardware() == 0 {
					t.Errorf("session %d: rejected with no injected faults: %s", i, gv.Reason())
				}
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	killWG.Wait()

	// Deterministic shed/recover coda: kill the shard owning a known
	// device, attest once (must shed BUSY with the router's hint), then
	// restart and attest again (must verify OK).
	device := "device-coda"
	target := rt.Locate("prime", device)
	if err := rt.KillShard(target); err != nil {
		t.Fatal(err)
	}
	ep := remote.NewProverEndpoint()
	f.provision(ep)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	_, aerr := attestAs(ep, conn, "prime", device)
	conn.Close()
	var busy *remote.BusyError
	if !errors.As(aerr, &busy) {
		t.Fatalf("dead shard: got %v, want a BUSY shed", aerr)
	}
	if busy.RetryAfter != retryAfter {
		t.Errorf("BUSY hint = %v, want the router's %v", busy.RetryAfter, retryAfter)
	}
	if err := rt.RestartShard(target); err != nil {
		t.Fatal(err)
	}
	conn, err = net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	gv, err := attestAs(ep, conn, "prime", device)
	conn.Close()
	if err != nil {
		t.Fatalf("after restart: %v", err)
	}
	if !gv.OK {
		t.Fatalf("after restart verdict: %s", gv.Reason())
	}

	if rt.LiveShards() != rt.Shards() {
		t.Errorf("fleet not back to full strength: %d/%d live", rt.LiveShards(), rt.Shards())
	}
	if got := killer.Counts().ShardKills; got == 0 {
		t.Error("kill schedule never fired; raise ShardKill or the tick rate")
	}
	if okN+rejN+errN != sessions {
		t.Errorf("outcome accounting: %d+%d+%d != %d", okN, rejN, errN, sessions)
	}
	if okN < sessions/2 {
		t.Errorf("only %d/%d sessions reached OK — retry is not recovering shard kills", okN, sessions)
	}
	t.Logf("shard-kill chaos: %d sessions -> %d ok, %d rejected, %d failed; %d kills, %d busy hints",
		sessions, okN, rejN, errN, killer.Counts().ShardKills, busyHints)

	if err := rt.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Errorf("serve: %v", err)
	}
}

// TestRouterMetricsComposite: the composite exposition must contain the
// router families once and every shard's gateway families under
// distinct shard labels — the -metrics-out clobbering fix.
func TestRouterMetricsComposite(t *testing.T) {
	f := fixture(t, "prime")
	rt, err := router.New(router.Config{Shards: 2, NewShard: shardFactory([]*appFixture{f})})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	ep := remote.NewProverEndpoint()
	f.provision(ep)
	drive(t, func(c net.Conn) { _ = rt.ServeConn(c) }, func(rc *recordConn) {
		if _, err := attestAs(ep, rc, "prime", "device-00000"); err != nil {
			t.Fatal(err)
		}
	})

	var buf bytes.Buffer
	if err := rt.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"raptrack_router_sessions_total",
		"raptrack_router_shards_live 2",
		`raptrack_sessions_started_total{shard="0"}`,
		`raptrack_sessions_started_total{shard="1"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("composite exposition missing %q", want)
		}
	}
	if n := strings.Count(text, "# TYPE raptrack_sessions_started_total counter"); n != 1 {
		t.Errorf("TYPE header emitted %d times, want once", n)
	}
	st := rt.Snapshot()
	if st.SessionsAccepted != 1 || st.VerdictOK != 1 {
		t.Errorf("merged snapshot = %+v, want the one session", st)
	}
}
