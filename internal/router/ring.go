// Package router is the horizontal scaling layer of the attestation
// plane: a [Router] fronts N in-process gateway replicas, peeks each
// session's HELO frame, and pins the session to a shard by consistent
// hashing on (app, device-id). Attestation state that amortizes across
// devices — SpecCFA dictionary promotions, verification-cache entries —
// is fleet property, so the router also runs the distribution bus that
// stamps mined promotions with a monotonic fleet epoch and installs
// them on every replica, plus a cache-warming sweep that moves
// relocatable verdict/segment summaries between shards.
//
// The per-session-snapshot invariant survives distribution: a gateway
// session loads its dictionary state exactly once, and the bus only
// ever installs complete (version, bytes, automaton) tuples through
// [server.Gateway.AdoptDictionary], so no session observes a torn
// version no matter how propagation interleaves with traffic.
package router

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// ring is a consistent-hash ring over shard indices. Each shard
// contributes vnodes points derived from sha256 of its (shard, replica)
// pair, so the point set for shard i is a stable function of i alone:
// growing the topology from N to N+1 shards adds only shard N's points
// and remaps ~1/(N+1) of the key space. Lookups binary-search the
// sorted point list — no locks, the ring is immutable once built.
type ring struct {
	points []ringPoint
}

type ringPoint struct {
	hash  uint64
	shard int
}

// defaultVNodes balances shard load to within a few percent at fleet
// key counts while keeping the ring small enough to rebuild at will.
const defaultVNodes = 128

// newRing builds a ring over shards 0..shards-1 with the given number
// of virtual nodes per shard (defaultVNodes when vnodes <= 0).
func newRing(shards, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	r := &ring{points: make([]ringPoint, 0, shards*vnodes)}
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: pointHash(s, v), shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break on shard index so the ring order is total and
		// identical everywhere, whatever order points were inserted.
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// pointHash derives the ring position of one virtual node.
func pointHash(shard, vnode int) uint64 {
	var b [16]byte
	binary.LittleEndian.PutUint64(b[0:8], uint64(shard))
	binary.LittleEndian.PutUint64(b[8:16], uint64(vnode))
	sum := sha256.Sum256(b[:])
	return binary.LittleEndian.Uint64(sum[:8])
}

// keyHash positions a session key on the ring. The NUL separator keeps
// ("ab","c") and ("a","bc") distinct, mirroring the HELO wire encoding.
func keyHash(app, device string) uint64 {
	h := sha256.New()
	h.Write([]byte(app))
	h.Write([]byte{0})
	h.Write([]byte(device))
	return binary.LittleEndian.Uint64(h.Sum(nil)[:8])
}

// lookup returns the shard owning (app, device): the first ring point
// clockwise from the key's hash. Returns -1 on an empty ring.
func (r *ring) lookup(app, device string) int {
	if len(r.points) == 0 {
		return -1
	}
	h := keyHash(app, device)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}
