// Ring property tests: shard balance over a fleet-sized device corpus
// and the consistent-hashing stability contract — growing or shrinking
// the topology by one shard remaps only that shard's ~1/N share of the
// key space, and every remapped key moves to (or from) exactly the
// shard that changed.
package router

import (
	"fmt"
	"testing"

	"raptrack/internal/remote"
)

// corpus returns a fixed 10k-device fleet spread over a few apps.
func corpus() [][2]string {
	apps := []string{"prime", "quicksort", "gps", "syringe"}
	keys := make([][2]string, 0, 10000)
	for i := 0; i < 10000; i++ {
		keys = append(keys, [2]string{apps[i%len(apps)], fmt.Sprintf("device-%05d", i)})
	}
	return keys
}

func TestRingBalance(t *testing.T) {
	keys := corpus()
	for _, shards := range []int{1, 2, 4, 8} {
		r := newRing(shards, 0)
		counts := make([]int, shards)
		for _, k := range keys {
			s := r.lookup(k[0], k[1])
			if s < 0 || s >= shards {
				t.Fatalf("lookup(%q,%q) = %d out of range [0,%d)", k[0], k[1], s, shards)
			}
			counts[s]++
		}
		ideal := len(keys) / shards
		for s, n := range counts {
			if n < ideal/2 || n > ideal*2 {
				t.Errorf("%d shards: shard %d owns %d devices, ideal %d (out of 2x band)", shards, s, n, ideal)
			}
		}
	}
}

func TestRingRemapStability(t *testing.T) {
	keys := corpus()
	owner := func(r *ring) []int {
		out := make([]int, len(keys))
		for i, k := range keys {
			out[i] = r.lookup(k[0], k[1])
		}
		return out
	}
	r3, r4, r5 := newRing(3, 0), newRing(4, 0), newRing(5, 0)
	o3, o4, o5 := owner(r3), owner(r4), owner(r5)

	// Growing 4 -> 5: a key may move only TO the new shard (shards 0..3
	// keep their ring points), and roughly 1/5 of the corpus moves.
	moved := 0
	for i := range keys {
		if o5[i] != o4[i] {
			if o5[i] != 4 {
				t.Fatalf("grow: key %v moved %d -> %d, not to the new shard", keys[i], o4[i], o5[i])
			}
			moved++
		}
	}
	frac := float64(moved) / float64(len(keys))
	if frac < 0.10 || frac > 0.30 {
		t.Errorf("grow 4->5 remapped %.1f%% of devices, want ~20%%", 100*frac)
	}

	// Shrinking 4 -> 3: exactly the keys shard 3 owned move (to survivors);
	// every other key keeps its owner.
	moved = 0
	for i := range keys {
		switch {
		case o4[i] == 3:
			if o3[i] == 3 || o3[i] == o4[i] {
				t.Fatalf("shrink: key %v still on removed shard", keys[i])
			}
			moved++
		case o3[i] != o4[i]:
			t.Fatalf("shrink: key %v moved %d -> %d though its shard survived", keys[i], o4[i], o3[i])
		}
	}
	frac = float64(moved) / float64(len(keys))
	if frac < 0.15 || frac > 0.35 {
		t.Errorf("shrink 4->3 remapped %.1f%% of devices, want ~25%%", 100*frac)
	}
}

// FuzzRouterHello drives the HELO-peek/shard-pin decision with
// arbitrary payloads: parsing must never panic, the pinned shard must
// be a valid index, and the decision must be a pure function of the
// payload (the replay-determinism the chaos harness leans on). Seeds
// live in testdata/fuzz/FuzzRouterHello (tools/fuzzcorpus).
func FuzzRouterHello(f *testing.F) {
	f.Add([]byte(remote.EncodeHelloID("prime", "device-00042")))
	f.Add([]byte(remote.EncodeHelloID("prime", "")))
	f.Add([]byte{})
	f.Add([]byte{0x01, 'g', 'p', 's'})           // stale protocol version
	f.Add([]byte{0x02, 0x00, 'd', 'e', 'v'})     // empty app, device only
	f.Add([]byte{0x02, 'a', 0x00, 'b', 0x00, 0}) // NULs inside the device field
	r := newRing(4, 0)
	f.Fuzz(func(t *testing.T, payload []byte) {
		app, device, err := remote.ParseHelloID(payload)
		var s1, s2 int
		if err == nil {
			s1, s2 = r.lookup(app, device), r.lookup(app, device)
		} else {
			// The router's fallback pin for unparsable identities.
			s1, s2 = r.lookup("", string(payload)), r.lookup("", string(payload))
		}
		if s1 != s2 {
			t.Fatalf("shard pin not deterministic: %d then %d", s1, s2)
		}
		if s1 < 0 || s1 >= 4 {
			t.Fatalf("shard %d out of range", s1)
		}
	})
}
