package router

import (
	"sync"
	"time"

	"raptrack/internal/server"
	"raptrack/internal/speccfa"
)

// fleetBus assigns fleet epochs to mined dictionary promotions and
// distributes the canonical result to every replica. It implements
// [server.DictBus]: a gateway with the bus attached stops installing
// promotions locally and Proposes its self-checked candidate instead;
// the bus merges the candidate into the fleet-canonical dictionary,
// bumps the app's epoch, and delivers the exact merged bytes back
// through AdoptDictionary on all shards — the proposer included — so
// replicas converge on one monotonic (epoch, bytes) sequence even when
// several shards mine divergent candidates concurrently.
type fleetBus struct {
	rt *Router
}

// fleetDict is one fleet-canonical dictionary version for an app.
type fleetDict struct {
	dict    *speccfa.Dictionary
	epoch   uint64
	encoded []byte
}

// fleetApp holds an app's current fleet dictionary. Its mutex
// serializes proposals per app: each epoch's bytes are decided and
// installed fleet-wide before the next proposal is considered, so no
// replica can ever hold bytes for an epoch that differ from another
// replica's bytes for the same epoch.
type fleetApp struct {
	mu    sync.Mutex
	state fleetDict
}

// Propose merges one shard's self-checked candidate into the fleet
// dictionary and, if anything new was learned, distributes the next
// epoch to every live shard. Duplicate proposals (the same sub-paths
// mined independently on two shards) merge to zero additions and
// produce no epoch. Called from gateway session goroutines, outside
// any gateway dictionary mutex.
func (b *fleetBus) Propose(app string, encoded []byte) {
	candidate, err := speccfa.DecodeDictionary(encoded)
	if err != nil {
		return // the gateway self-check passed, so this cannot happen
	}
	start := time.Now()
	rt := b.rt

	fd := rt.fleetDictFor(app)
	fd.mu.Lock()
	defer fd.mu.Unlock()
	merged, added, err := speccfa.Merge(fd.state.dict, candidate, rt.cfg.MaxDictPaths)
	if err != nil || added == 0 {
		return
	}
	next := fleetDict{dict: merged, epoch: fd.state.epoch + 1, encoded: merged.Encode()}
	fd.state = next
	rt.installEpoch(app, next)
	rt.m.dictProps.Inc()
	rt.m.dictLag.ObserveDuration(time.Since(start))
	rt.m.dictEpoch.With(app).Set(int64(next.epoch))
}

// fleetDictFor returns (creating on first use) app's fleet dictionary
// holder.
func (rt *Router) fleetDictFor(app string) *fleetApp {
	rt.fleetMu.Lock()
	defer rt.fleetMu.Unlock()
	fd, ok := rt.fleet[app]
	if !ok {
		fd = &fleetApp{}
		rt.fleet[app] = fd
	}
	return fd
}

// installEpoch pushes one (epoch, bytes) pair to every live shard.
// AdoptDictionary ignores stale versions, so a replica that was synced
// ahead of this call is left untouched.
func (rt *Router) installEpoch(app string, fd fleetDict) {
	for _, slot := range rt.slots {
		if gw := slot.gateway(); gw != nil {
			_ = gw.AdoptDictionary(app, fd.epoch, fd.encoded)
		}
	}
}

// syncDictionaries replays the current fleet epochs onto one gateway —
// the restart path: a replacement replica comes up with empty version-0
// dictionaries and must rejoin the fleet sequence before serving.
func (rt *Router) syncDictionaries(gw *server.Gateway) {
	rt.fleetMu.Lock()
	apps := make([]*fleetApp, 0, len(rt.fleet))
	names := make([]string, 0, len(rt.fleet))
	for name, fd := range rt.fleet {
		names = append(names, name)
		apps = append(apps, fd)
	}
	rt.fleetMu.Unlock()
	for i, fd := range apps {
		fd.mu.Lock()
		st := fd.state
		fd.mu.Unlock()
		if st.epoch > 0 {
			_ = gw.AdoptDictionary(names[i], st.epoch, st.encoded)
		}
	}
}
