package router

import (
	"strconv"

	"raptrack/internal/obs"
)

// routerMetrics is the router's slice of the obs registry. Session and
// shed counters are pre-resolved per shard at construction so the
// accept path never touches the label map.
type routerMetrics struct {
	sessions      []*obs.Counter // raptrack_router_sessions_total{shard="i"}
	shedDead      []*obs.Counter // raptrack_router_sheds_total{cause="shard_down",shard}
	shedNoHello   *obs.Counter   // ...{cause="bad_hello",shard="none"}
	shedClosed    *obs.Counter   // ...{cause="router_closed",shard="none"}
	dictProps     *obs.Counter
	dictLag       *obs.Histogram
	dictEpoch     *obs.GaugeVec
	warmMoved     *obs.Counter
	shardRestarts *obs.Counter
}

// dictLagBounds buckets propagation lag (seconds): an in-process bus
// lands in the sub-millisecond buckets; anything past 100ms means the
// bus was stuck behind a slow replica install.
var dictLagBounds = []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 1}

func registerRouterMetrics(reg *obs.Registry, shards int, live func() float64) routerMetrics {
	sessions := reg.CounterVec("raptrack_router_sessions_total",
		"Sessions routed, by destination shard.", "shard")
	sheds := reg.CounterVec("raptrack_router_sheds_total",
		"Sessions shed at the router, by cause and shard.", "cause", "shard")
	m := routerMetrics{
		sessions:    make([]*obs.Counter, shards),
		shedDead:    make([]*obs.Counter, shards),
		shedNoHello: sheds.With("bad_hello", "none"),
		shedClosed:  sheds.With("router_closed", "none"),
		dictProps: reg.Counter("raptrack_router_dict_propagations_total",
			"Fleet dictionary epochs distributed to all live shards."),
		dictLag: reg.Histogram("raptrack_router_dict_propagation_seconds",
			"Lag from a shard's promotion proposal to fleet-wide installation.",
			dictLagBounds),
		dictEpoch: reg.GaugeVec("raptrack_router_dict_epoch",
			"Current fleet dictionary epoch, per app.", "app"),
		warmMoved: reg.Counter("raptrack_router_warm_entries_total",
			"Verification-cache entries moved between shards by warming sweeps."),
		shardRestarts: reg.Counter("raptrack_router_shard_restarts_total",
			"Shard replicas restarted after a kill."),
	}
	for i := 0; i < shards; i++ {
		s := strconv.Itoa(i)
		m.sessions[i] = sessions.With(s)
		m.shedDead[i] = sheds.With("shard_down", s)
	}
	reg.GaugeFunc("raptrack_router_shards_live", "Shard replicas currently serving.", live)
	return m
}
