package router

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"raptrack/internal/obs"
	"raptrack/internal/remote"
	"raptrack/internal/server"
)

// Config sizes a Router. NewShard is the replica factory — the router
// owns replica lifecycle (construction, kill, restart), the factory
// owns replica configuration (registered apps, worker pools, journal
// hooks, its own obs.Observer so metric names never collide).
type Config struct {
	// Shards is the replica count (>= 1). The consistent-hash ring is
	// built over exactly this many shard indices and never changes for
	// the router's lifetime; a killed shard sheds rather than failing
	// over, preserving session pinning.
	Shards int
	// VNodes is the virtual-node count per shard on the ring
	// (defaultVNodes when 0).
	VNodes int
	// NewShard builds replica i. Called Shards times at construction and
	// again on each RestartShard.
	NewShard func(i int) (*server.Gateway, error)
	// MaxDictPaths caps the fleet-canonical dictionary, matching the
	// per-gateway mining cap (default 32, as in server defaults).
	MaxDictPaths int
	// HelloTimeout bounds the HELO peek (default 2s) so a silent
	// connection cannot pin an accept goroutine.
	HelloTimeout time.Duration
	// RetryAfter is the hint carried in BUSY sheds for dead shards
	// (default 1s).
	RetryAfter time.Duration
	// Registry receives the raptrack_router_* families; the router makes
	// its own when nil.
	Registry *obs.Registry
}

// shardSlot holds one replica position. The gateway pointer is nil
// while the shard is dead; route goroutines load it exactly once per
// session, so a kill that races an in-flight load is caught by
// ServeConn's own closed check.
type shardSlot struct {
	gw atomic.Pointer[server.Gateway]
}

func (s *shardSlot) gateway() *server.Gateway { return s.gw.Load() }

// Router fronts N in-process gateway replicas behind one listener,
// pinning each session to a shard by consistent hashing on the peeked
// HELO identity, and runs the fleet dictionary bus and cache-warming
// sweeps across them.
type Router struct {
	cfg  Config
	reg  *obs.Registry
	m    routerMetrics
	ring *ring
	bus  *fleetBus

	slots []*shardSlot
	live  atomic.Int64

	fleetMu sync.Mutex
	fleet   map[string]*fleetApp

	mu        sync.Mutex
	closed    bool
	final     server.Stats // merged shard stats captured at Close
	listeners []net.Listener
	sessions  sync.WaitGroup
}

// ErrClosed is returned by Serve/ServeConn on a closed router.
var ErrClosed = errors.New("router: closed")

// New builds the shard fleet and the routing ring. Every replica gets
// the fleet bus attached, so mining anywhere becomes fleet property.
func New(cfg Config) (*Router, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("router: need at least 1 shard, got %d", cfg.Shards)
	}
	if cfg.NewShard == nil {
		return nil, errors.New("router: Config.NewShard is required")
	}
	if cfg.MaxDictPaths <= 0 {
		cfg.MaxDictPaths = 32
	}
	if cfg.HelloTimeout <= 0 {
		cfg.HelloTimeout = 2 * time.Second
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	rt := &Router{
		cfg:   cfg,
		reg:   reg,
		ring:  newRing(cfg.Shards, cfg.VNodes),
		fleet: make(map[string]*fleetApp),
		slots: make([]*shardSlot, cfg.Shards),
	}
	rt.m = registerRouterMetrics(reg, cfg.Shards, func() float64 { return float64(rt.live.Load()) })
	rt.bus = &fleetBus{rt: rt}
	for i := range rt.slots {
		rt.slots[i] = &shardSlot{}
		gw, err := cfg.NewShard(i)
		if err != nil {
			for _, s := range rt.slots[:i] {
				if g := s.gateway(); g != nil {
					_ = g.Close()
				}
			}
			return nil, fmt.Errorf("router: building shard %d: %w", i, err)
		}
		gw.SetDictBus(rt.bus)
		rt.slots[i].gw.Store(gw)
		rt.live.Add(1)
	}
	return rt, nil
}

// Registry returns the router's own metric registry (the
// raptrack_router_* families; shard gateways keep their own).
func (rt *Router) Registry() *obs.Registry { return rt.reg }

// Shards returns the configured replica count.
func (rt *Router) Shards() int { return len(rt.slots) }

// LiveShards returns how many replicas are currently serving.
func (rt *Router) LiveShards() int { return int(rt.live.Load()) }

// Shard returns replica i's gateway, or nil while it is dead.
func (rt *Router) Shard(i int) *server.Gateway {
	if i < 0 || i >= len(rt.slots) {
		return nil
	}
	return rt.slots[i].gateway()
}

// Locate returns the shard index owning (app, device) — exported for
// tests and the fuzz target; the routing decision itself.
func (rt *Router) Locate(app, device string) int { return rt.ring.lookup(app, device) }

// Serve accepts sessions on l and routes each on its own goroutine
// until the listener fails or the router closes. Like
// server.Gateway.Serve, a closed router returns nil.
func (rt *Router) Serve(l net.Listener) error {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return ErrClosed
	}
	rt.listeners = append(rt.listeners, l)
	rt.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			if rt.isClosed() {
				return nil
			}
			return err
		}
		rt.mu.Lock()
		if rt.closed {
			rt.mu.Unlock()
			conn.Close()
			return ErrClosed
		}
		rt.sessions.Add(1)
		rt.mu.Unlock()
		go func() {
			defer rt.sessions.Done()
			rt.route(conn)
		}()
	}
}

// ServeConn routes one already-accepted connection synchronously — the
// handoff used by fleetsim and the chaos harness to drive the router
// over in-memory pipes.
func (rt *Router) ServeConn(conn net.Conn) error {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		conn.Close()
		rt.m.shedClosed.Inc()
		return ErrClosed
	}
	rt.sessions.Add(1)
	rt.mu.Unlock()
	defer rt.sessions.Done()
	rt.route(conn)
	return nil
}

// route peeks the first frame, pins the session, and replays the
// consumed bytes into the shard gateway so its protocol path is
// byte-identical to a directly dialed session. Any readable first
// frame — malformed HELO included — is forwarded and the gateway
// produces its canonical response (FAIL frames for protocol errors);
// the router itself sheds only when no frame arrives at all, or when
// the pinned shard is dead (one BUSY with a retry-after hint, exactly
// the gateway's own shedding idiom).
func (rt *Router) route(conn net.Conn) {
	_ = conn.SetReadDeadline(time.Now().Add(rt.cfg.HelloTimeout))
	typ, payload, err := remote.ReadFrame(conn)
	if err != nil {
		rt.m.shedNoHello.Inc()
		conn.Close()
		return
	}
	_ = conn.SetReadDeadline(time.Time{})

	var shard int
	if typ == remote.FrameHello {
		app, device, perr := remote.ParseHelloID(payload)
		if perr != nil {
			// Unroutable identity: still deterministic — hash the raw
			// payload so replays land on the same shard's FAIL path.
			shard = rt.ring.lookup("", string(payload))
		} else {
			shard = rt.ring.lookup(app, device)
		}
	} else {
		shard = rt.ring.lookup("", string(payload))
	}

	gw := rt.slots[shard].gateway()
	if gw != nil {
		rt.m.sessions[shard].Inc()
		if rt.serveOn(gw, conn, typ, payload) {
			return
		}
		// Lost the race with KillShard: the gateway refused the
		// connection, fall through to the dead-shard shed. The replay
		// conn was not touched, so the BUSY below is still frame-aligned.
	}
	rt.m.shedDead[shard].Inc()
	_ = conn.SetWriteDeadline(time.Now().Add(rt.cfg.HelloTimeout))
	_ = remote.WriteFrame(conn, remote.FrameBusy, remote.EncodeBusy(rt.cfg.RetryAfter))
	conn.Close()
}

// serveOn replays the peeked frame into gw. False means the gateway was
// already closed and never read a byte.
func (rt *Router) serveOn(gw *server.Gateway, conn net.Conn, typ byte, payload []byte) bool {
	hdr := make([]byte, remote.FrameHeaderSize, remote.FrameHeaderSize+len(payload))
	hdr[0] = typ
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	replay := append(hdr, payload...)
	pc := &prefixConn{Conn: conn, r: io.MultiReader(bytes.NewReader(replay), conn)}
	return !errors.Is(gw.ServeConn(pc), server.ErrClosed)
}

// prefixConn is a net.Conn whose reads drain a replay buffer before the
// underlying connection — how the consumed HELO bytes reach the shard.
type prefixConn struct {
	net.Conn
	r io.Reader
}

func (p *prefixConn) Read(b []byte) (int, error) { return p.r.Read(b) }

// KillShard closes replica i and marks it dead: its in-flight sessions
// drain, new sessions pinned to it shed with BUSY. No-op on an already
// dead shard.
func (rt *Router) KillShard(i int) error {
	if i < 0 || i >= len(rt.slots) {
		return fmt.Errorf("router: no shard %d", i)
	}
	gw := rt.slots[i].gw.Swap(nil)
	if gw == nil {
		return nil
	}
	rt.live.Add(-1)
	return gw.Close()
}

// RestartShard builds a replacement replica for a dead slot and rejoins
// it to the fleet: the bus is re-attached and the current fleet
// dictionary epochs are replayed onto it before it serves its first
// session, so a restart can never regress the fleet's dictionary
// version sequence.
func (rt *Router) RestartShard(i int) error {
	if i < 0 || i >= len(rt.slots) {
		return fmt.Errorf("router: no shard %d", i)
	}
	if rt.slots[i].gateway() != nil {
		return nil
	}
	gw, err := rt.cfg.NewShard(i)
	if err != nil {
		return fmt.Errorf("router: restarting shard %d: %w", i, err)
	}
	gw.SetDictBus(rt.bus)
	rt.syncDictionaries(gw)
	rt.slots[i].gw.Store(gw)
	rt.live.Add(1)
	rt.m.shardRestarts.Inc()
	return nil
}

// WarmCaches sweeps relocatable verification-cache records between
// shards: every live replica's top entries (up to maxPerApp per app)
// are offered to every other live replica. Entries are keyed on
// content (H_MEM and expanded evidence), not on device or challenge,
// so a verdict computed for a device pinned to shard A short-circuits
// the same firmware path arriving on shard B. Returns how many entries
// were newly admitted somewhere.
func (rt *Router) WarmCaches(maxPerApp int) int {
	live := make([]*server.Gateway, 0, len(rt.slots))
	idx := make([]int, 0, len(rt.slots))
	for i, s := range rt.slots {
		if gw := s.gateway(); gw != nil {
			live = append(live, gw)
			idx = append(idx, i)
		}
	}
	if len(live) < 2 {
		return 0
	}
	apps := map[string]bool{}
	for _, gw := range live {
		for _, a := range gw.Apps() {
			apps[a] = true
		}
	}
	moved := 0
	for app := range apps {
		for i, src := range live {
			recs := src.WarmExport(app, maxPerApp)
			if len(recs) == 0 {
				continue
			}
			for j, dst := range live {
				if idx[j] == idx[i] {
					continue
				}
				moved += dst.WarmImport(app, recs)
			}
		}
	}
	if moved > 0 {
		rt.m.warmMoved.Add(uint64(moved))
	}
	return moved
}

// Snapshot merges the live replicas' gateway snapshots into one
// fleet-level Stats value (dead replicas' counters left the fleet with
// them; the router's own raptrack_router_* families cover shedding and
// distribution).
func (rt *Router) Snapshot() server.Stats {
	rt.mu.Lock()
	if rt.closed {
		final := rt.final
		rt.mu.Unlock()
		return final
	}
	rt.mu.Unlock()
	parts := make([]server.Stats, 0, len(rt.slots))
	for _, s := range rt.slots {
		if gw := s.gateway(); gw != nil {
			parts = append(parts, gw.Snapshot())
		}
	}
	return server.MergeStats(parts...)
}

// DictPropagation reports the fleet bus's distribution activity —
// epochs distributed, the current epoch per app, and the lag histogram
// (proposal to fleet-wide installation). Benchmarks read this directly
// instead of scraping the exposition text.
func (rt *Router) DictPropagation() (props uint64, epochs map[string]uint64, lag obs.HistogramSnapshot) {
	rt.fleetMu.Lock()
	apps := make(map[string]*fleetApp, len(rt.fleet))
	for name, fd := range rt.fleet {
		apps[name] = fd
	}
	rt.fleetMu.Unlock()
	epochs = make(map[string]uint64, len(apps))
	for name, fd := range apps {
		fd.mu.Lock()
		epochs[name] = fd.state.epoch
		fd.mu.Unlock()
	}
	return rt.m.dictProps.Value(), epochs, rt.m.dictLag.Snapshot()
}

// MetricsParts assembles the composite exposition: the router's own
// registry unlabeled, each live shard's registry under shard="i".
// Reassembled per call so restarts (which swap registries) are picked
// up.
func (rt *Router) MetricsParts() []obs.Part {
	parts := []obs.Part{{Registry: rt.reg}}
	for i, s := range rt.slots {
		if gw := s.gateway(); gw != nil {
			parts = append(parts, obs.Part{Value: strconv.Itoa(i), Registry: gw.Observer().Registry()})
		}
	}
	return parts
}

// WriteMetrics renders the composite exposition document — what
// `raptrack serve -shards N -metrics-out` persists: one document,
// router families plus every shard's, no clobbering.
func (rt *Router) WriteMetrics(w io.Writer) error {
	return obs.WriteComposite(w, "shard", rt.MetricsParts())
}

// MetricsHandler serves WriteMetrics — mounted over the admin /metrics
// route via obs.WithRoute.
func (rt *Router) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = rt.WriteMetrics(w)
	})
}

// HealthProbe returns shard i's /healthz probe: ok while serving,
// degraded while dead (the router still serves other shards, so the
// process must not be killed over one replica).
func (rt *Router) HealthProbe(i int) func() obs.HealthStatus {
	return func() obs.HealthStatus {
		if rt.Shard(i) != nil {
			return obs.HealthStatus{Level: obs.HealthOK}
		}
		return obs.HealthStatus{
			Level:  obs.HealthDegraded,
			Detail: "replica down; pinned sessions shed with retry-after",
		}
	}
}

func (rt *Router) isClosed() bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.closed
}

// Close stops accepting, waits for routed sessions, and closes every
// live replica. Idempotent.
func (rt *Router) Close() error {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return nil
	}
	rt.closed = true
	ls := rt.listeners
	rt.listeners = nil
	rt.mu.Unlock()
	for _, l := range ls {
		_ = l.Close()
	}
	rt.sessions.Wait()
	var first error
	parts := make([]server.Stats, 0, len(rt.slots))
	for _, s := range rt.slots {
		if gw := s.gw.Swap(nil); gw != nil {
			rt.live.Add(-1)
			if err := gw.Close(); err != nil && first == nil {
				first = err
			}
			// Snapshot after Close so drained in-flight sessions are counted;
			// retained so Snapshot() stays meaningful on a closed router.
			parts = append(parts, gw.Snapshot())
		}
	}
	rt.mu.Lock()
	rt.final = server.MergeStats(parts...)
	rt.mu.Unlock()
	return first
}
