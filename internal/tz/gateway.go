package tz

import "fmt"

// DefaultContextSwitchCycles is the architectural cost charged for one
// Non-Secure -> Secure -> Non-Secure round trip: SG entry, callee-saved
// state handling, security-state transition stalls and the BXNS return.
// Measurements on Cortex-M33 silicon put the bare transition in the
// 20-30 cycle range each way; with the register save/clear sequences real
// TEE runtimes perform, instrumentation-based CFA papers report ~100+
// cycles per logged branch. 110 is used as the default round trip.
const DefaultContextSwitchCycles = 110

// Secure service identifiers. A SECALL immediate packs the service id in
// the low 16 bits and a service-specific argument in the high 16 bits
// (register number, stack offset, ...). The ids are shared between the
// code generators (internal/linker, internal/baseline/traces) and the
// Secure-World implementations (internal/cfa).
const (
	// SvcLogLoop logs the loop-condition register (R0 by convention; the
	// instrumentation block copies the counter there) — §IV-D.
	SvcLogLoop int32 = 1
	// SvcLogSite logs a statically-known destination identified by the
	// SECALL's own address (the engine holds a site->destination table
	// built at instrumentation time). Used by the TRACES baseline for
	// conditional branches.
	SvcLogSite int32 = 2
	// SvcLogReg logs the register named in the argument bits (indirect
	// call/jump destinations).
	SvcLogReg int32 = 3
	// SvcLogRet logs the return address at [SP + arg] (POP-to-PC returns).
	SvcLogRet int32 = 4
	// SvcLogLR logs the link register (BX LR returns).
	SvcLogLR int32 = 5
	// SvcLogTable logs the destination of a table jump: the argument
	// packs the base and index register numbers (rn | rm<<4).
	SvcLogTable int32 = 6
)

// SvcID extracts the service id from a SECALL immediate.
func SvcID(imm int32) int32 { return imm & 0xffff }

// SvcArg extracts the service argument from a SECALL immediate.
func SvcArg(imm int32) int32 { return int32(uint32(imm) >> 16) }

// SvcImm packs a service id and argument into a SECALL immediate.
func SvcImm(id, arg int32) int32 { return id&0xffff | arg<<16 }

// Service is a Secure-World entry point invoked via SECALL. imm is the
// full SECALL immediate (see SvcID/SvcArg); regs is the live Non-Secure
// register file (the PC slot holds the SECALL's own address while the
// service runs). The returned cycles are the service's own work, charged
// on top of the context-switch cost.
type Service func(imm int32, regs *[16]uint32) (cycles uint64, err error)

// UnknownServiceError reports a SECALL to an unregistered service id.
type UnknownServiceError struct{ ID int32 }

func (e *UnknownServiceError) Error() string {
	return fmt.Sprintf("tz: SECALL to unknown secure service #%d", e.ID)
}

// Gateway dispatches SECALL instructions to registered Secure-World
// services and accounts for their cycle cost.
type Gateway struct {
	services map[int32]Service

	// ContextSwitchCycles is the per-call round-trip cost.
	ContextSwitchCycles uint64

	// Statistics.
	Calls        uint64 // total SECALLs dispatched
	ServiceCalls map[int32]uint64
	CyclesSpent  uint64 // context switches + service work
}

// NewGateway returns a gateway with the default context-switch cost.
func NewGateway() *Gateway {
	return &Gateway{
		services:            make(map[int32]Service),
		ContextSwitchCycles: DefaultContextSwitchCycles,
		ServiceCalls:        make(map[int32]uint64),
	}
}

// Register installs a service under id (low 16 bits of the SECALL
// immediate), replacing any previous one.
func (g *Gateway) Register(id int32, s Service) { g.services[id] = s }

// Call dispatches the SECALL immediate and returns the total cycles to
// charge.
func (g *Gateway) Call(imm int32, regs *[16]uint32) (uint64, error) {
	id := SvcID(imm)
	s, ok := g.services[id]
	if !ok {
		return 0, &UnknownServiceError{ID: id}
	}
	g.Calls++
	g.ServiceCalls[id]++
	work, err := s(imm, regs)
	total := g.ContextSwitchCycles + work
	g.CyclesSpent += total
	return total, err
}

// ResetStats zeroes the call counters.
func (g *Gateway) ResetStats() {
	g.Calls = 0
	g.CyclesSpent = 0
	g.ServiceCalls = make(map[int32]uint64)
}
