// Package tz models the ARMv8-M TrustZone security extension as used by
// RAP-Track: Secure/Non-Secure world attribution (SAU), the banked memory
// protection unit (S-MPU / NS-MPU) with configuration locking, and the
// secure-gateway call path whose context-switch cost is the runtime
// overhead instrumentation-based CFA pays per logged branch.
//
// Only the Non-Secure application is executed instruction-by-instruction by
// internal/cpu. Secure-World services (the CFA engine, TRACES logging
// handlers) run as Go callbacks registered on a Gateway; each invocation is
// charged the architectural Non-Secure<->Secure round-trip cycle cost plus
// the service's own work, so runtime comparisons against hardware-parallel
// tracing remain meaningful.
package tz

import (
	"fmt"
	"sort"
)

// World is a TrustZone security state.
type World uint8

// Worlds.
const (
	NonSecure World = iota
	Secure
)

func (w World) String() string {
	if w == Secure {
		return "secure"
	}
	return "non-secure"
}

// Range is a half-open address interval [Base, Limit).
type Range struct {
	Base, Limit uint32
}

// Contains reports whether addr is inside the range.
func (r Range) Contains(addr uint32) bool { return addr >= r.Base && addr < r.Limit }

func (r Range) String() string { return fmt.Sprintf("[%#08x,%#08x)", r.Base, r.Limit) }

// SAU is the Security Attribution Unit: it decides which world an address
// belongs to. Addresses default to Non-Secure; MarkSecure carves out Secure
// regions (CFLog SRAM, Secure code, trace-unit control blocks).
type SAU struct {
	secure []Range // sorted by Base
}

// NewSAU returns an SAU with everything Non-Secure.
func NewSAU() *SAU { return &SAU{} }

// MarkSecure attributes [base, base+size) to the Secure World.
func (s *SAU) MarkSecure(base, size uint32) {
	s.secure = append(s.secure, Range{base, base + size})
	sort.Slice(s.secure, func(i, j int) bool { return s.secure[i].Base < s.secure[j].Base })
}

// WorldOf returns the world owning addr.
func (s *SAU) WorldOf(addr uint32) World {
	i := sort.Search(len(s.secure), func(i int) bool { return s.secure[i].Limit > addr })
	if i < len(s.secure) && s.secure[i].Contains(addr) {
		return Secure
	}
	return NonSecure
}

// SecurityFault reports a Non-Secure access to Secure-attributed memory
// (the SecureFault exception on real hardware).
type SecurityFault struct {
	Addr  uint32
	Write bool
}

func (f *SecurityFault) Error() string {
	op := "read"
	if f.Write {
		op = "write"
	}
	return fmt.Sprintf("tz: SecureFault: non-secure %s of secure address %#08x", op, f.Addr)
}

// MPURegion is one protection region of an MPU.
type MPURegion struct {
	Range
	ReadOnly bool
	Name     string
}

// MPU models one banked Memory Protection Unit (the NS-MPU for the
// attested application). Once locked, reconfiguration attempts fail — the
// CFA engine locks the NS-MPU after marking APP code read-only (§IV-A).
type MPU struct {
	regions []MPURegion
	locked  bool
}

// NewMPU returns an empty, unlocked MPU.
func NewMPU() *MPU { return &MPU{} }

// ErrMPULocked is returned when configuring a locked MPU.
var ErrMPULocked = fmt.Errorf("tz: MPU is locked")

// AddRegion installs a protection region.
func (m *MPU) AddRegion(r MPURegion) error {
	if m.locked {
		return ErrMPULocked
	}
	if r.Limit <= r.Base {
		return fmt.Errorf("tz: MPU region %q has limit %#x <= base %#x", r.Name, r.Limit, r.Base)
	}
	m.regions = append(m.regions, r)
	return nil
}

// Clear removes all regions.
func (m *MPU) Clear() error {
	if m.locked {
		return ErrMPULocked
	}
	m.regions = m.regions[:0]
	return nil
}

// Lock freezes the configuration until Unlock (which only the Secure World
// — i.e., the CFA engine — may call; the simulated NS application has no
// path to it).
func (m *MPU) Lock() { m.locked = true }

// Unlock re-enables configuration.
func (m *MPU) Unlock() { m.locked = false }

// Locked reports the lock state.
func (m *MPU) Locked() bool { return m.locked }

// Regions returns the installed regions (read-only use).
func (m *MPU) Regions() []MPURegion { return m.regions }

// MemFault is an MPU access violation (MemManage fault).
type MemFault struct {
	Addr   uint32
	Region string
}

func (f *MemFault) Error() string {
	return fmt.Sprintf("tz: MemManage fault: write to %#08x in read-only region %q", f.Addr, f.Region)
}

// CheckWrite validates a data write against the MPU.
func (m *MPU) CheckWrite(addr uint32) error {
	for _, r := range m.regions {
		if r.ReadOnly && r.Contains(addr) {
			return &MemFault{Addr: addr, Region: r.Name}
		}
	}
	return nil
}
