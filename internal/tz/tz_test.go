package tz

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestSAUAttribution(t *testing.T) {
	s := NewSAU()
	s.MarkSecure(0x1000_0000, 0x1000)
	s.MarkSecure(0x3000_0000, 0x100)
	cases := []struct {
		addr uint32
		want World
	}{
		{0x0, NonSecure},
		{0x1000_0000, Secure},
		{0x1000_0fff, Secure},
		{0x1000_1000, NonSecure},
		{0x3000_00ff, Secure},
		{0x3000_0100, NonSecure},
		{0x2fff_ffff, NonSecure},
	}
	for _, c := range cases {
		if got := s.WorldOf(c.addr); got != c.want {
			t.Errorf("WorldOf(%#x) = %v, want %v", c.addr, got, c.want)
		}
	}
}

func TestSAUBoundaryProperty(t *testing.T) {
	s := NewSAU()
	s.MarkSecure(0x4000, 0x1000)
	f := func(addr uint32) bool {
		in := addr >= 0x4000 && addr < 0x5000
		return (s.WorldOf(addr) == Secure) == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestMPULockSemantics(t *testing.T) {
	m := NewMPU()
	r := MPURegion{Range: Range{Base: 0x100, Limit: 0x200}, ReadOnly: true, Name: "code"}
	if err := m.AddRegion(r); err != nil {
		t.Fatal(err)
	}
	m.Lock()
	if !m.Locked() {
		t.Fatal("not locked")
	}
	if err := m.AddRegion(r); !errors.Is(err, ErrMPULocked) {
		t.Errorf("AddRegion while locked: %v", err)
	}
	if err := m.Clear(); !errors.Is(err, ErrMPULocked) {
		t.Errorf("Clear while locked: %v", err)
	}
	m.Unlock()
	if err := m.Clear(); err != nil {
		t.Errorf("Clear after unlock: %v", err)
	}
}

func TestMPUCheckWrite(t *testing.T) {
	m := NewMPU()
	_ = m.AddRegion(MPURegion{Range: Range{Base: 0x100, Limit: 0x200}, ReadOnly: true, Name: "code"})
	_ = m.AddRegion(MPURegion{Range: Range{Base: 0x200, Limit: 0x300}, ReadOnly: false, Name: "ram"})
	if err := m.CheckWrite(0x150); err == nil {
		t.Error("write to RO region should fault")
	} else {
		var mf *MemFault
		if !errors.As(err, &mf) || mf.Region != "code" {
			t.Errorf("fault = %v", err)
		}
	}
	if err := m.CheckWrite(0x250); err != nil {
		t.Errorf("write to RW region: %v", err)
	}
	if err := m.CheckWrite(0x999); err != nil {
		t.Errorf("write outside regions: %v", err)
	}
}

func TestMPURegionValidation(t *testing.T) {
	m := NewMPU()
	if err := m.AddRegion(MPURegion{Range: Range{Base: 0x200, Limit: 0x100}, Name: "bad"}); err == nil {
		t.Error("inverted region should fail")
	}
}

func TestSvcImmPacking(t *testing.T) {
	imm := SvcImm(SvcLogRet, 12)
	if SvcID(imm) != SvcLogRet {
		t.Errorf("SvcID = %d", SvcID(imm))
	}
	if SvcArg(imm) != 12 {
		t.Errorf("SvcArg = %d", SvcArg(imm))
	}
	f := func(id int32, arg int16) bool {
		id &= 0x7fff
		imm := SvcImm(id, int32(uint16(arg)))
		return SvcID(imm) == id && SvcArg(imm) == int32(uint16(arg))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGatewayDispatchAndAccounting(t *testing.T) {
	g := NewGateway()
	g.ContextSwitchCycles = 100
	var gotImm int32
	g.Register(7, func(imm int32, regs *[16]uint32) (uint64, error) {
		gotImm = imm
		regs[0] = 99
		return 25, nil
	})
	var regs [16]uint32
	cycles, err := g.Call(SvcImm(7, 3), &regs)
	if err != nil {
		t.Fatal(err)
	}
	if cycles != 125 {
		t.Errorf("cycles = %d, want 125", cycles)
	}
	if regs[0] != 99 {
		t.Error("service did not see live registers")
	}
	if gotImm != SvcImm(7, 3) {
		t.Errorf("imm = %#x", gotImm)
	}
	if g.Calls != 1 || g.ServiceCalls[7] != 1 || g.CyclesSpent != 125 {
		t.Errorf("stats: calls=%d svc=%d cycles=%d", g.Calls, g.ServiceCalls[7], g.CyclesSpent)
	}

	var use *UnknownServiceError
	if _, err := g.Call(42, &regs); !errors.As(err, &use) {
		t.Errorf("unknown service: %v", err)
	}

	g.ResetStats()
	if g.Calls != 0 || g.CyclesSpent != 0 {
		t.Error("ResetStats did not clear")
	}
}
