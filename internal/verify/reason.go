package verify

// ReasonCode classifies why a verdict rejected the evidence. The code is
// the machine-readable failure class (gateways bucket rejection counts by
// it, and it travels in the VRDT wire frame); Verdict.Detail carries the
// human-readable specifics.
type ReasonCode uint8

const (
	// ReasonNone marks an accepted verdict.
	ReasonNone ReasonCode = iota
	// ReasonHMemMismatch: the prover's measured firmware differs from the
	// Verifier's golden image.
	ReasonHMemMismatch
	// ReasonBadImage: the golden image itself is unusable (no entry
	// point, unlinked non-deterministic branch) — an offline-phase fault,
	// not an attack.
	ReasonBadImage
	// ReasonWorkBudget: the search exceeded MaxInstrs before reaching a
	// conclusion.
	ReasonWorkBudget
	// ReasonMissingEvidence: a non-deterministic point required a packet
	// the stream does not supply at that position (dropped or reordered
	// evidence).
	ReasonMissingEvidence
	// ReasonMalformedEvidence: evidence is present but structurally
	// inconsistent (wrong destination for a conditional, invalid loop
	// trip count, path leaving program code).
	ReasonMalformedEvidence
	// ReasonROP: a return destination does not match its call-site
	// successor.
	ReasonROP
	// ReasonJOP: an indirect call targets something other than a function
	// entry.
	ReasonJOP
	// ReasonEscape: an indirect jump leaves its function or lands between
	// instructions.
	ReasonEscape
	// ReasonUnexplained: no benign derivation explains the evidence and
	// no single contradiction was isolated.
	ReasonUnexplained
	// ReasonInconclusive: the evidence is authentic but provably
	// incomplete — the report chain itself attests detectable trace loss
	// (MTB buffer wraps past the watermark, packets dropped in the arming
	// window). The paper's lossless-reconstruction guarantee does not
	// hold for the session, so the Verifier renders neither accept nor
	// attack: soundness is preserved (never OK), and the device should
	// simply re-attest.
	ReasonInconclusive

	// NumReasons bounds the code space (array-indexed rejection stats).
	NumReasons
)

var reasonNames = [NumReasons]string{
	ReasonNone:              "ok",
	ReasonHMemMismatch:      "h-mem-mismatch",
	ReasonBadImage:          "bad-image",
	ReasonWorkBudget:        "work-budget",
	ReasonMissingEvidence:   "missing-evidence",
	ReasonMalformedEvidence: "malformed-evidence",
	ReasonROP:               "rop",
	ReasonJOP:               "jop",
	ReasonEscape:            "escape",
	ReasonUnexplained:       "unexplained",
	ReasonInconclusive:      "inconclusive",
}

func (c ReasonCode) String() string {
	if c < NumReasons {
		return reasonNames[c]
	}
	return "invalid-reason"
}

// Valid reports whether c is a defined reason code (wire decoding guard).
func (c ReasonCode) Valid() bool { return c < NumReasons }
