package verify

import (
	"fmt"

	"raptrack/internal/cfg"
	"raptrack/internal/isa"
)

// materialize turns an accepted derivation into the Verdict with the
// witness path and evidence statistics.
func (s *summarizer) materialize(entryPC uint32, top *outcome) *Verdict {
	vd := &Verdict{OK: true, Packets: len(s.packets), Instrs: s.work, Passes: int(s.evals)}
	s.emitLoops = 0
	emit := func(e Edge) {
		vd.Transfers++
		if s.v.opts.pathCap > 0 && len(vd.Path) < s.v.opts.pathCap {
			vd.Path = append(vd.Path, e)
		}
	}
	end, exitPC := s.emitFrame(entryPC, 0, nil, top, emit)
	if top.kind == exitLeaf {
		// The entry function returned through its pristine LR: the
		// destination is the CPU's halt sentinel.
		emit(Edge{Src: exitPC, Dst: haltSentinel, Kind: isa.KindReturn})
	}
	vd.PacketsUsed = end
	vd.LoopsReplayed = s.emitLoops
	return vd
}

const haltSentinel = 0xffff_fffe

// emitFrame replays the derivation of outcome o from (pc, cursor,
// loopCtx), emitting every control transfer, and returns the evidence
// cursor after the frame completes along with the exiting instruction's
// address.
func (s *summarizer) emitFrame(pc uint32, cursor int, loopCtx loopMap, o *outcome, emit func(Edge)) (int, uint32) {
	v := s.v
	img := v.link.Image
	for {
		st := s.advance(pc, cursor, loopCtx, emit)
		switch st.kind {
		case advPrune:
			// A stored derivation cannot prune: it was validated during
			// the search. Defensive stop.
			panic(fmt.Sprintf("verify: witness derivation pruned at %#x", pc))
		case advExit:
			return st.exit.cursor, st.exit.pc
		}
		if o == nil {
			panic(fmt.Sprintf("verify: witness derivation exhausted at node %#x", st.pc))
		}
		ins := img.Code[st.pc]
		next := st.pc + ins.Size()
		loopCtx = st.loopCtx

		switch o.branch {
		case brExit:
			if _, isGuard := v.link.Guards[st.pc]; isGuard {
				// Forward-loop exit taken.
				emit(Edge{Src: st.pc, Dst: ins.Target, Kind: isa.KindCond})
				pc = ins.Target
			} else {
				// Conditional not taken: fall through, no transfer.
				pc = next
			}
			cursor = st.cursor
			o = o.cont

		case brConsume:
			if site, isSite := v.link.Sites[st.pc]; isSite &&
				(site.Class == cfg.ClassCondNonLoop || site.Class == cfg.ClassCondLoopBack || site.Class == cfg.ClassCondLoopFwd) {
				emit(Edge{Src: st.pc, Dst: site.StaticTarget, Kind: isa.KindCond})
				pc = site.StaticTarget
				cursor = st.cursor + 1
			} else {
				// Forward-loop guard continuing into the logging branch.
				pc = next
				cursor = st.cursor
			}
			o = o.cont

		case brCall, brCallHalt:
			var calleeEntry uint32
			var calleeCursor int
			if site, isSite := v.link.Sites[st.pc]; isSite && site.Class == cfg.ClassIndirectCall {
				p := s.packets[st.cursor]
				calleeEntry = p.Dst
				calleeCursor = st.cursor + 1
				emit(Edge{Src: st.pc, Dst: calleeEntry, Kind: isa.KindIndirectCall})
			} else {
				calleeEntry = ins.Target
				calleeCursor = st.cursor
				emit(Edge{Src: st.pc, Dst: calleeEntry, Kind: isa.KindCall})
			}
			end, exitPC := s.emitFrame(calleeEntry, calleeCursor, nil, o.callee, emit)
			if o.branch == brCallHalt {
				return end, exitPC
			}
			if o.callee.kind == exitLeaf {
				// The callee's deterministic return edge is emitted here,
				// where the destination (this call's successor) is known.
				emit(Edge{Src: exitPC, Dst: next, Kind: isa.KindReturn})
			}
			pc = next
			cursor = end
			o = o.cont

		default:
			panic(fmt.Sprintf("verify: unknown derivation branch %d at %#x", o.branch, st.pc))
		}
	}
}
