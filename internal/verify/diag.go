package verify

import "raptrack/internal/trace"

// Diag runs the search and reports memo geometry (diagnostic/benchmark
// aid): entry count, total outcomes, advance-memo size and abstract work.
func Diag(v *Verifier, packets []trace.Packet) (entries, outcomes, advs int, work uint64) {
	img := v.link.Image
	entryPC, _ := img.EntryAddr()
	s := &summarizer{
		v:       v,
		packets: packets,
		memo:    make(map[nodeKey]*entry),
		advMemo: make(map[nodeKey]advState),
		inDirty: make(map[nodeKey]bool),
		segCap:  uint64(len(img.Code)) + 16,
		debug:   v.opts.debug,
	}
	s.walkState(entryPC, 0, nil)
	for len(s.dirty) > 0 && !s.aborted {
		key := s.dirty[0]
		s.dirty = s.dirty[1:]
		delete(s.inDirty, key)
		if e := s.memo[key]; e != nil {
			s.evaluate(key, e)
		}
	}
	for _, e := range s.memo {
		outcomes += len(e.outs)
	}
	return len(s.memo), outcomes, len(s.advMemo), s.work
}
