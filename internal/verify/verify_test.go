// Attack-matrix tests for the Verifier (paper §IV-F): every manipulation
// an adversary with full Non-Secure control could attempt must surface as
// a rejected verdict, while genuine evidence — including ambiguous
// recursive evidence — is accepted with a complete witness path.
package verify_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"raptrack/internal/asm"
	"raptrack/internal/attest"
	"raptrack/internal/cfa"
	"raptrack/internal/cpu"
	"raptrack/internal/isa"
	"raptrack/internal/linker"
	"raptrack/internal/mem"
	"raptrack/internal/trace"
	"raptrack/internal/trace/pipeline"
	"raptrack/internal/verify"
)

// attested links prog, runs it under the CFA engine, and returns the
// artifact plus the genuine packet stream.
func attested(t *testing.T, prog *asm.Program) (*linker.Output, []trace.Packet) {
	t.Helper()
	out, err := linker.Link(prog, linker.DefaultOptions())
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	key, err := attest.GenerateHMACKey()
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New()
	eng, err := cfa.New(cfa.Config{Link: out, Mem: m, Signer: key})
	if err != nil {
		t.Fatal(err)
	}
	chal, err := attest.NewChallenge(prog.Name)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Begin(chal); err != nil {
		t.Fatal(err)
	}
	c, err := cpu.New(eng.CPUConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(0); err != nil {
		t.Fatalf("run: %v", err)
	}
	reports, err := eng.Finish()
	if err != nil {
		t.Fatal(err)
	}
	var log []byte
	for _, r := range reports {
		log = append(log, r.CFLog...)
	}
	packets, derr := pipeline.New(pipeline.Raw(pipeline.FormatMTB, log)).Packets()
	if derr != nil {
		t.Fatal(derr)
	}
	return out, packets
}

func newVerifier(out *linker.Output) *verify.Verifier {
	key, _ := attest.GenerateHMACKey()
	return verify.New(out, key)
}

// richProgram exercises every evidence kind: indirect call, monitored and
// leaf returns, conditionals both ways, a logged loop and a static loop.
func richProgram() *asm.Program {
	p := asm.NewProgram("rich")
	main := p.NewFunc("main")
	main.PUSH(isa.LR)
	main.MOVi(isa.R0, 3)
	main.BL("square") // leaf
	main.CMPi(isa.R0, 5)
	main.BLT("small") // 9 < 5: not taken
	main.LA(isa.R2, "helper")
	main.BLX(isa.R2) // indirect call
	main.Label("small")
	main.CMPi(isa.R0, 0)
	main.BNE("go_on") // taken: produces conditional evidence
	main.MOVi(isa.R1, 7)
	main.Label("go_on")
	// Logged loop (runtime bound).
	main.MOVi(isa.R4, 6)
	main.MUL(isa.R4, isa.R4, isa.R0)
	main.Label("vloop")
	main.SUBi(isa.R4, isa.R4, 1)
	main.CMPi(isa.R4, 0)
	main.BNE("vloop")
	// Static loop.
	main.MOVi(isa.R5, 0)
	main.Label("sloop")
	main.ADDi(isa.R5, isa.R5, 1)
	main.CMPi(isa.R5, 4)
	main.BLT("sloop")
	main.POP(isa.PC) // monitored return

	sq := p.AddFunc(asm.NewFunction("square"))
	sq.MUL(isa.R0, isa.R0, isa.R0)
	sq.RET()

	h := p.AddFunc(asm.NewFunction("helper"))
	h.PUSH(isa.R4, isa.LR)
	h.ADDi(isa.R0, isa.R0, 1)
	h.POP(isa.R4, isa.PC) // monitored return
	return p
}

func TestGenuineEvidenceAccepted(t *testing.T) {
	out, pkts := attested(t, richProgram())
	v := newVerifier(out)
	vd := v.ReplayPackets(pkts)
	if !vd.OK {
		t.Fatalf("rejected: %s (pc=%#x)", vd.Reason(), vd.FailPC)
	}
	if vd.PacketsUsed != len(pkts) {
		t.Errorf("consumed %d of %d packets", vd.PacketsUsed, len(pkts))
	}
	if vd.Transfers == 0 || len(vd.Path) == 0 {
		t.Error("no path reconstructed")
	}
	if vd.LoopsReplayed < 2 { // one logged + one static
		t.Errorf("loops replayed = %d", vd.LoopsReplayed)
	}
}

// findPacket returns the index of the first packet matching pred.
func findPacket(t *testing.T, pkts []trace.Packet, pred func(trace.Packet) bool) int {
	t.Helper()
	for i, p := range pkts {
		if pred(p) {
			return i
		}
	}
	t.Fatal("packet not found")
	return -1
}

func mustReject(t *testing.T, out *linker.Output, pkts []trace.Packet, wantSub string) {
	t.Helper()
	vd := newVerifier(out).ReplayPackets(pkts)
	if vd.OK {
		t.Fatalf("tampered evidence accepted (%d packets)", len(pkts))
	}
	if wantSub != "" && !strings.Contains(vd.Reason(), wantSub) {
		t.Errorf("reason %q does not mention %q", vd.Reason(), wantSub)
	}
}

func stubOfClass(out *linker.Output, class string) *linker.Stub {
	for _, s := range out.Stubs {
		if s.Class.String() == class {
			return s
		}
	}
	return nil
}

func TestROPDetected(t *testing.T) {
	out, pkts := attested(t, richProgram())
	ret := stubOfClass(out, "return")
	if ret == nil {
		t.Fatal("no return stub")
	}
	i := findPacket(t, pkts, func(p trace.Packet) bool {
		return out.Stubs[p.Src] != nil && out.Stubs[p.Src].Class.String() == "return" && p.Dst != 0xffff_fffe
	})
	mutated := append([]trace.Packet(nil), pkts...)
	mutated[i].Dst = out.Image.Symbols["main"] + 8 // plausible code, wrong frame
	mustReject(t, out, mutated, "")
}

func TestJOPDetected(t *testing.T) {
	out, pkts := attested(t, richProgram())
	i := findPacket(t, pkts, func(p trace.Packet) bool {
		s := out.Stubs[p.Src]
		return s != nil && s.Class.String() == "icall"
	})
	mutated := append([]trace.Packet(nil), pkts...)
	// Redirect the call into the middle of a function (a gadget).
	mutated[i].Dst = out.Image.Symbols["helper"] + 2
	mustReject(t, out, mutated, "")
}

func TestDroppedEvidenceRejected(t *testing.T) {
	out, pkts := attested(t, richProgram())
	if len(pkts) < 2 {
		t.Fatal("too little evidence")
	}
	mustReject(t, out, pkts[:len(pkts)-1], "")
	mustReject(t, out, pkts[1:], "")
}

func TestInjectedEvidenceRejected(t *testing.T) {
	out, pkts := attested(t, richProgram())
	dup := append(append([]trace.Packet(nil), pkts...), pkts[len(pkts)-1])
	mustReject(t, out, dup, "")
}

func TestEmptyEvidenceRejected(t *testing.T) {
	out, _ := attested(t, richProgram())
	mustReject(t, out, nil, "")
}

func TestCondEvidenceTargetChecked(t *testing.T) {
	out, pkts := attested(t, richProgram())
	i := findPacket(t, pkts, func(p trace.Packet) bool {
		s := out.Stubs[p.Src]
		if s == nil {
			return false
		}
		c := s.Class.String()
		return c == "cond" || c == "loop-back" || c == "loop-fwd"
	})
	mutated := append([]trace.Packet(nil), pkts...)
	mutated[i].Dst ^= 0x40 // destination no longer the static target
	mustReject(t, out, mutated, "")
}

// TestLoopConditionReflectedInPath checks the §IV-D optimization's
// evidence semantics: the logged entry value drives the reconstructed
// iteration count. A different value is still *self-consistent* evidence
// (the iterations themselves are silent; stream integrity is the MAC's
// job) — but the witness path must faithfully reflect it.
func TestLoopConditionReflectedInPath(t *testing.T) {
	out, pkts := attested(t, richProgram())
	var secall uint32
	for a := range out.Loops {
		secall = a
	}
	if secall == 0 {
		t.Fatal("no logged loop")
	}
	v := newVerifier(out)
	base := v.ReplayPackets(pkts)
	if !base.OK {
		t.Fatal(base.Reason())
	}

	i := findPacket(t, pkts, func(p trace.Packet) bool { return p.Src == secall })
	mutated := append([]trace.Packet(nil), pkts...)
	mutated[i].Dst += 5 // five more iterations at loop entry
	vd := v.ReplayPackets(mutated)
	if !vd.OK {
		t.Fatalf("self-consistent evidence rejected: %s", vd.Reason())
	}
	if vd.Transfers != base.Transfers+5 {
		t.Errorf("transfers %d, want %d (+5 loop back-edges)", vd.Transfers, base.Transfers+5)
	}
}

func TestUnknownSourceRejected(t *testing.T) {
	out, pkts := attested(t, richProgram())
	mutated := append([]trace.Packet(nil), pkts...)
	mutated[0].Src = 0x1234_5678
	mustReject(t, out, mutated, "")
}

// TestRecursionAmbiguityResolved feeds the verifier the classic
// self-similar evidence (recursive fib) where greedy matching fails; the
// summarization search must find the unique consistent parse.
func TestRecursionAmbiguityResolved(t *testing.T) {
	p := asm.NewProgram("fib")
	main := p.NewFunc("main")
	main.PUSH(isa.LR)
	main.MOVi(isa.R0, 8)
	main.BL("fib")
	main.POP(isa.PC)
	f := p.AddFunc(asm.NewFunction("fib"))
	f.CMPi(isa.R0, 2)
	f.BLT("base")
	f.PUSH(isa.R4, isa.LR)
	f.MOVr(isa.R4, isa.R0)
	f.SUBi(isa.R0, isa.R4, 1)
	f.BL("fib")
	f.MOVr(isa.R1, isa.R0)
	f.SUBi(isa.R0, isa.R4, 2)
	f.MOVr(isa.R4, isa.R1)
	f.BL("fib")
	f.ADDr(isa.R0, isa.R4, isa.R0)
	f.POP(isa.R4, isa.PC)
	f.Label("base")
	f.RET()

	out, pkts := attested(t, p)
	vd := newVerifier(out).ReplayPackets(pkts)
	if !vd.OK {
		t.Fatalf("rejected: %s", vd.Reason())
	}
	if vd.Passes < 2 {
		t.Errorf("expected fixed-point iteration for recursive evidence, passes=%d", vd.Passes)
	}
	// And a truncated version must still be rejected.
	mustReject(t, out, pkts[:len(pkts)-3], "")
}

func TestPathCapRespected(t *testing.T) {
	out, pkts := attested(t, richProgram())
	key, _ := attest.GenerateHMACKey()
	v := verify.New(out, key, verify.WithPathCap(3))
	vd := v.ReplayPackets(pkts)
	if !vd.OK {
		t.Fatal(vd.Reason())
	}
	if len(vd.Path) > 3 {
		t.Errorf("path length %d exceeds cap", len(vd.Path))
	}
	if vd.Transfers <= 3 {
		t.Errorf("transfer count should exceed the cap, got %d", vd.Transfers)
	}
	vOff := verify.New(out, key, verify.WithPathCap(-1))
	if vd := vOff.ReplayPackets(pkts); len(vd.Path) != 0 {
		t.Error("PathCap -1 should disable recording")
	}
}

func TestWorkBudgetEnforced(t *testing.T) {
	out, pkts := attested(t, richProgram())
	key, _ := attest.GenerateHMACKey()
	v := verify.New(out, key, verify.WithMaxInstrs(10))
	vd := v.ReplayPackets(pkts)
	if vd.OK {
		t.Fatal("accepted under a 10-instruction budget")
	}
	if !strings.Contains(vd.Reason(), "budget") && !strings.Contains(vd.Reason(), "instruction") {
		t.Errorf("reason = %q", vd.Reason())
	}
}

func TestHMemMismatchRejected(t *testing.T) {
	prog := richProgram()
	out, err := linker.Link(prog, linker.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	key, _ := attest.GenerateHMACKey()
	m := mem.New()
	eng, err := cfa.New(cfa.Config{Link: out, Mem: m, Signer: key})
	if err != nil {
		t.Fatal(err)
	}
	chal, _ := attest.NewChallenge(prog.Name)
	if err := eng.Begin(chal); err != nil {
		t.Fatal(err)
	}
	c, _ := cpu.New(eng.CPUConfig())
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	reports, _ := eng.Finish()

	// The verifier's golden image differs (different program => different
	// H_MEM).
	other := richProgram()
	other.Funcs[0].Instrs[1].Imm = 99
	goldenOut, err := linker.Link(other, linker.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	v := verify.New(goldenOut, key)
	vd, err := v.Verify(chal, reports)
	if err != nil {
		t.Fatal(err)
	}
	if vd.OK || !strings.Contains(vd.Reason(), "H_MEM") {
		t.Errorf("verdict = %+v", vd)
	}
}

// TestVerifierConcurrentUse shares one Verifier across many goroutines
// (the gateway deployment shape: one Verifier per app, all sessions).
// Every reconstruction must succeed and agree; run under -race to catch
// hidden shared state in the search (memo maps, debug globals, ...).
func TestVerifierConcurrentUse(t *testing.T) {
	out, packets := attested(t, richProgram())
	v := newVerifier(out)
	want := v.ReplayPackets(packets)
	if !want.OK {
		t.Fatalf("baseline verdict: %s", want.Reason())
	}

	const goroutines, rounds = 8, 4
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*rounds)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				vd := v.ReplayPackets(packets)
				if !vd.OK {
					errs <- fmt.Errorf("concurrent verdict rejected: %s", vd.Reason())
					return
				}
				if vd.Transfers != want.Transfers || vd.PacketsUsed != want.PacketsUsed {
					errs <- fmt.Errorf("concurrent verdict diverged: %d/%d transfers, %d/%d packets",
						vd.Transfers, want.Transfers, vd.PacketsUsed, want.PacketsUsed)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
