package verify

import (
	"time"

	"raptrack/internal/attest"
	"raptrack/internal/speccfa"
	"raptrack/internal/trace"
	"raptrack/internal/trace/pipeline"
	"raptrack/internal/verify/automaton"
)

// SliceStatus classifies one evidence slice of a streaming session.
type SliceStatus uint8

const (
	// SliceOK: the chain is authentic so far and at least one benign
	// derivation is consistent with the evidence prefix.
	SliceOK SliceStatus = iota
	// SliceUnchecked: the chain is authentic so far but incremental path
	// checking is unavailable for this session (no compiled automaton, a
	// dictionary the machine is not bound to, or the prefix walk fell
	// back); only Seal judges the path.
	SliceUnchecked
	// SliceInconclusive: the signed reports attest detectable trace loss,
	// so the sealed verdict is already known to be ReasonInconclusive
	// (never OK); the device should re-attest.
	SliceInconclusive
	// SliceSuspect: no benign derivation explains any extension of the
	// evidence prefix — an early, sound compromise alarm. The sealed
	// verdict renders the authoritative rejection code and detail.
	SliceSuspect
	// SliceReject: the evidence is definitively rejected at the chain
	// level (authentication, ordering, H_MEM) — exact and final; Seal
	// returns the identical error or verdict.
	SliceReject
)

var sliceStatusNames = [...]string{
	SliceOK:           "ok",
	SliceUnchecked:    "unchecked",
	SliceInconclusive: "inconclusive",
	SliceSuspect:      "suspect",
	SliceReject:       "reject",
}

func (s SliceStatus) String() string {
	if int(s) < len(sliceStatusNames) {
		return sliceStatusNames[s]
	}
	return "invalid"
}

// Definitive reports whether the sealed outcome is already decided: a
// reject or suspect slice can never become an accept, and an
// inconclusive one seals inconclusive.
func (s SliceStatus) Definitive() bool {
	return s == SliceReject || s == SliceSuspect || s == SliceInconclusive
}

// SliceVerdict is Session.Feed's per-slice judgment. It is advisory
// except where Status.Definitive() holds: the authoritative whole-session
// verdict (bit-identical to Verifier.Verify on the same chain) comes from
// Seal.
type SliceVerdict struct {
	// Seq is the slice's position in the chain (0-based).
	Seq    int
	Status SliceStatus
	// Code/Detail explain a non-OK slice. For SliceReject they match what
	// Seal will produce; for SliceSuspect/SliceInconclusive they are the
	// early advisory form.
	Code   ReasonCode
	Detail string
	// Final echoes the report's final flag.
	Final bool
	// Packets counts evidence packets decoded for prefix checking so far
	// (compressed count under a dictionary; 0 when unchecked).
	Packets int
}

// sessionConfig resolves Begin's options.
type sessionConfig struct {
	dict        *speccfa.Dictionary
	dictSet     bool
	aut         *Automaton
	autSet      bool
	sliceChecks bool
}

// SessionOption configures one streaming session at Begin.
type SessionOption func(*sessionConfig)

// SessionDictionary sets the SpecCFA dictionary for this session's marker
// expansion, overriding the Verifier's constructor-provisioned one (as
// VerifyWithDictionary does for whole chains).
func SessionDictionary(d *speccfa.Dictionary) SessionOption {
	return func(c *sessionConfig) { c.dict, c.dictSet = d, true }
}

// SessionAutomaton sets the compiled machine snapshot for this session,
// overriding the Verifier's own (gateways pair each dictionary snapshot
// with the machine compiled for it). nil forces the interpreter.
func SessionAutomaton(a *Automaton) SessionOption {
	return func(c *sessionConfig) { c.aut, c.autSet = a, true }
}

// SessionSliceChecks toggles per-slice work (default on): incremental
// evidence decoding and the resumable prefix walk. Off, Feed only runs
// the incremental chain authentication and every path judgment waits for
// Seal — this is how the whole-chain Verify entry points ride the session
// API without paying for streaming they do not need.
func SessionSliceChecks(on bool) SessionOption {
	return func(c *sessionConfig) { c.sliceChecks = on }
}

// Session is a resumable verification: evidence slices (partial reports)
// are fed as they arrive, each judged against the running chain state —
// incremental authentication via attest.ChainAssembler, and a suspended
// automaton walk (automaton.StreamDecoder) whose cursor, speculative
// checkpoint ring and loop bindings persist between slices — and Seal
// renders the whole-session verdict bit-identical to Verifier.Verify on
// the same report chain. The whole-chain entry points are themselves a
// Begin/Feed/Seal loop, so there is exactly one verification code path.
//
// A Session is single-use scratch for one attestation session: not safe
// for concurrent use. Reports handed to Feed are retained until Seal.
type Session struct {
	v    *Verifier
	chal attest.Challenge
	dict *speccfa.Dictionary
	aut  *Automaton

	asm     *attest.ChainAssembler
	reports []*attest.Report
	wraps   uint64
	dropped uint64
	auth    time.Duration // accumulated chain-authentication time

	sliceChecks bool
	sd          *automaton.StreamDecoder // nil: prefix checking unavailable
	fedBytes    int                      // log bytes already decoded for sd
	pkBuf       []trace.Packet           // per-slice decode scratch (reused)

	// alarm latches the first definitive non-OK slice judgment; later
	// slices echo it (the outcome cannot improve).
	alarm *SliceVerdict

	chainErr error // first chain violation (sticky; Seal returns it)

	sealed  bool
	verdict *Verdict
	sealErr error
}

// Begin opens a streaming verification session against chal. The
// Verifier's golden H_MEM and authenticator anchor the session; options
// override the dictionary and automaton snapshot (gateways) or disable
// per-slice checking (the whole-chain entry points).
func (v *Verifier) Begin(chal attest.Challenge, opts ...SessionOption) *Session {
	cfg := sessionConfig{sliceChecks: true}
	for _, opt := range opts {
		opt(&cfg)
	}
	dict := v.opts.spec
	if cfg.dictSet {
		dict = cfg.dict
	}
	aut := v.aut
	if cfg.autSet {
		aut = cfg.aut
	}
	if !v.opts.automaton {
		aut = nil
	}
	s := &Session{
		v:           v,
		chal:        chal,
		dict:        dict,
		aut:         aut,
		asm:         attest.NewChainAssembler(chal, v.auth),
		sliceChecks: cfg.sliceChecks,
	}
	// Prefix checking needs a machine whose marker tables match this
	// session's dictionary (the uncompressed case binds trivially). The
	// walk records the witness path at the Verifier's cap so Seal can
	// finish the suspended walk in place of a second whole-stream decode.
	if s.sliceChecks && aut != nil && (dict.Len() == 0 || aut.Dictionary() == dict) {
		s.sd = aut.Stream(v.opts.pathCap, v.opts.maxInstrs)
	}
	return s
}

// Feed verifies r as the session's next evidence slice. The returned
// SliceVerdict is this slice's judgment; see SliceStatus for which
// judgments are definitive. Feeding after Seal reports SliceReject.
func (s *Session) Feed(r *attest.Report) SliceVerdict {
	sv := SliceVerdict{Seq: s.asm.Len(), Final: r.Final}
	if s.sealed {
		sv.Status = SliceReject
		sv.Detail = "session already sealed"
		return sv
	}
	if s.chainErr != nil {
		// The chain is already broken; the batch loop would never have
		// examined this report either.
		return s.echoAlarm(sv)
	}
	start := time.Now()
	err := s.asm.Add(r)
	s.auth += time.Since(start)
	if err != nil {
		s.chainErr = err
		sv.Status = SliceReject
		sv.Detail = err.Error()
		s.alarm = &sv
		return sv
	}
	s.reports = append(s.reports, r)
	s.wraps += uint64(r.Wraps)
	s.dropped += uint64(r.Dropped)

	// A definitive alarm (H_MEM mismatch, trace loss) is echoed, but the
	// chain keeps assembling above: a later report can still break it, and
	// Seal must judge exactly the chain Verify would.
	if s.alarm != nil {
		return s.echoAlarm(sv)
	}

	// The firmware measurement is signed into every report and the chain
	// check pinned it constant, so a mismatch is already definitive.
	if hmem := s.asm.HMem(); hmem != s.v.hmem {
		hv := s.v.hmemMismatch(hmem, PhaseTiming{})
		sv.Status = SliceReject
		sv.Code = hv.Code
		sv.Detail = hv.Detail
		s.alarm = &sv
		return sv
	}

	if !s.sliceChecks {
		sv.Status = SliceUnchecked
		return sv
	}

	// Signed loss evidence: the stream cannot be losslessly reconstructed,
	// so the sealed verdict is ReasonInconclusive regardless of the path.
	// Prefix checking against a lossy stream would raise false alarms —
	// drop it.
	if s.wraps > 0 || s.dropped > 0 {
		s.sd = nil
		sv.Status = SliceInconclusive
		sv.Code = ReasonInconclusive
		sv.Detail = "signed reports attest trace loss; session will seal inconclusive"
		s.alarm = &sv
		return sv
	}

	if s.sd == nil {
		sv.Status = SliceUnchecked
		return sv
	}

	// Advance the suspended walk over the newly completed packets. Only
	// whole 8-byte records are fed; a trailing fragment (which on an
	// honest prover never spans slices) waits for the next slice, and the
	// sealed pipeline judges the exact byte stream either way.
	log := s.asm.Log()
	aligned := len(log) - len(log)%trace.PacketSize
	chunk := log[s.fedBytes:aligned]
	pk, derr := pipeline.AppendMTB(s.pkBuf[:0], chunk)
	if derr != nil {
		s.sd = nil
		sv.Status = SliceUnchecked
		return sv
	}
	s.fedBytes = aligned
	st := s.sd.Feed(pk)
	s.pkBuf = pk[:0] // Feed copied them; keep the capacity for the next slice
	sv.Packets = s.sd.Packets()
	switch st {
	case automaton.StreamViable:
		sv.Status = SliceOK
	case automaton.StreamDead:
		sv.Status = SliceSuspect
		sv.Code = ReasonUnexplained
		sv.Detail = "no benign derivation explains any extension of the evidence prefix"
		s.alarm = &sv
	default:
		// StreamFallback: the walk gave up, but the decoder's per-packet
		// admissibility screen keeps running — later slices still get the
		// early hijack alarm, only the walk-backed judgment is gone.
		sv.Status = SliceUnchecked
	}
	return sv
}

// echoAlarm restates the latched definitive judgment for a later slice.
func (s *Session) echoAlarm(sv SliceVerdict) SliceVerdict {
	out := *s.alarm
	out.Seq, out.Final = sv.Seq, sv.Final
	return out
}

// Seal closes the session and renders the authoritative verdict —
// bit-identical (code, detail, FailPC, witness) to Verifier.Verify over
// the same report chain, by construction: this IS the whole-chain
// verification, run over the accumulated reports. Seal is idempotent.
func (s *Session) Seal() (*Verdict, error) {
	if !s.sealed {
		s.sealed = true
		s.verdict, s.sealErr = s.seal()
	}
	return s.verdict, s.sealErr
}

// seal is the engine body shared with VerifyWithAutomaton (which is a
// thin Begin/Feed/Seal loop over it).
func (s *Session) seal() (*Verdict, error) {
	v := s.v
	var tm PhaseTiming
	if s.chainErr != nil {
		return nil, s.chainErr
	}
	phase := time.Now()
	log, hmem, err := s.asm.Finish()
	tm.Auth = s.auth + time.Since(phase)
	if err != nil {
		return nil, err
	}
	if hmem != v.hmem {
		return v.hmemMismatch(hmem, tm), nil
	}
	aut := s.aut
	dict := s.dict

	// Streamed fast path: the per-slice prefix walk has already consumed
	// the stream; finish it with batch semantics instead of re-walking
	// from scratch. Requires full coverage (every log byte fed — a
	// trailing fragment or a post-alarm slice leaves a gap) and no
	// verdict cache (its keys cover the expanded stream). Full coverage
	// also pins the walk's accumulated packets to the whole-log decode —
	// a live sd means wraps == dropped == 0 and fedBytes == len(log)
	// means no trailing fragment — so an accept reuses them as the
	// verdict's evidence instead of decoding the log a second time. The
	// semantic verdict is the one a fresh whole-stream decode renders —
	// same path, transfers, loops and consumed packets; only the
	// search-effort counters (Instrs, Passes) may differ where the
	// lookahead pruner had to wait for evidence that batch mode had in
	// hand. Any non-accept falls through to the interpreter, which
	// renders the authoritative rejection exactly as the batch path does.
	if s.sd != nil && aut != nil && v.opts.cache == nil && s.fedBytes == len(log) &&
		s.sd.Status() != automaton.StreamFallback {
		phase = time.Now()
		res, st := s.sd.Seal()
		tm.Search = time.Since(phase)
		if st == automaton.StatusAccept {
			vd := acceptVerdict(&res)
			vd.Evidence = s.sd.Evidence()
			if dict.Len() > 0 {
				phase = time.Now()
				expanded, derr := pipeline.Expand(dict, vd.Evidence)
				tm.Expand += time.Since(phase)
				if derr != nil {
					// An accept consumed the stream through the same tables
					// and limits Decompress applies, so derr cannot happen;
					// report it defensively rather than mask it.
					return nil, derr
				}
				vd.Evidence = expanded
			}
			vd.Timing = tm
			return vd, nil
		}
		aut = nil
	}

	packets, derr := pipeline.New(pipeline.MTBChain(log, s.wraps, s.dropped), pipeline.FailOnLoss()).Packets()
	if derr != nil {
		if derr.Code == pipeline.WrapLoss {
			// The signed reports themselves attest detectable trace loss:
			// the MTB wrapped past the watermark or dropped packets while
			// arming. The stream cannot be losslessly reconstructed, so
			// reconstruction would produce a *false* reject; render an
			// Inconclusive verdict instead. Never OK — an adversary
			// fabricating loss evidence only downgrades its own session
			// from "attack detected" to "re-attest".
			return &Verdict{OK: false, Code: ReasonInconclusive, Detail: derr.Detail, Timing: tm}, nil
		}
		return nil, derr
	}

	// Compressed fast path: decode the marker stream directly, opening
	// dictionary sub-paths as precomputed jumps instead of materializing
	// the expansion up front. Requires the machine bound to this session's
	// dictionary snapshot, and no verdict cache (its keys cover the
	// expanded stream). On accept the expansion is still materialized once
	// for Verdict.Evidence — exactly what the reference pipeline exposes.
	if aut != nil && v.opts.cache == nil && dict.Len() > 0 && aut.Dictionary() == dict {
		phase = time.Now()
		res, st := aut.DecodeCompressed(packets, v.opts.pathCap, v.opts.maxInstrs)
		tm.Search = time.Since(phase)
		if st == automaton.StatusAccept {
			phase = time.Now()
			expanded, derr := pipeline.Expand(dict, packets)
			tm.Expand = time.Since(phase)
			if derr == nil {
				vd := acceptVerdict(&res)
				vd.Evidence = expanded
				vd.Timing = tm
				return vd, nil
			}
			// An accept consumed the stream through the same tables and
			// limits Decompress applies, so derr cannot happen; fall
			// through defensively and let the reference pipeline report.
		}
		// Non-accept: the interpreter renders the verdict. Do not retry
		// the automaton on the expanded stream — the derivation space is
		// identical, so it would fail the same way.
		aut = nil
	}

	if dict.Len() > 0 {
		phase = time.Now()
		expanded, derr := pipeline.Expand(dict, packets)
		tm.Expand += time.Since(phase)
		if derr != nil {
			return nil, derr
		}
		packets = expanded
	}
	if c := v.opts.cache; c != nil {
		if vd, ok := c.lookupVerdict(v.hmem, packets); ok {
			// lookupVerdict returned a private copy, so stamping this
			// session's evidence and timing never races other sessions.
			vd.Evidence = packets
			tm.CacheHit = true
			vd.Timing = tm
			return vd, nil
		}
	}
	phase = time.Now()
	var vd *Verdict
	if aut != nil {
		if res, st := aut.Decode(packets, v.opts.pathCap, v.opts.maxInstrs); st == automaton.StatusAccept {
			vd = acceptVerdict(&res)
		}
	}
	if vd == nil {
		vd = v.reconstruct(packets)
	}
	tm.Search += time.Since(phase)
	vd.Evidence = packets
	vd.Timing = tm
	if c := v.opts.cache; c != nil {
		c.storeVerdict(v.hmem, packets, vd)
	}
	return vd, nil
}

// Reports returns the reports accepted into the chain so far (gateways
// journal the sealed session's evidence from here). Aliases internal
// state; treat as read-only.
func (s *Session) Reports() []*attest.Report { return s.reports }

// Len returns the number of reports accepted into the chain so far.
func (s *Session) Len() int { return s.asm.Len() }

// ChainSealed reports whether a final-flagged report has been accepted.
func (s *Session) ChainSealed() bool { return s.asm.Sealed() }

// Challenge returns the session's challenge.
func (s *Session) Challenge() attest.Challenge { return s.chal }
