package verify

import (
	"raptrack/internal/attest"
	"raptrack/internal/speccfa"
	"raptrack/internal/trace"
	"raptrack/internal/verify/automaton"
)

// Automaton is the compiled table-driven verifier core: the per-app CFG
// and its SpecCFA dictionary lowered into a flat transition table with a
// zero-allocation decode loop (see package verify/automaton). It is the
// default engine for the accept path; the interpretive pushdown search
// stays on as the reference oracle and renders every non-accept verdict,
// which keeps reject/Inconclusive/error verdicts bit-identical to the
// interpreter by construction.
type Automaton = automaton.Machine

// AutomatonCounters aggregates automaton compile/decode activity. A
// gateway attaches one per app so metrics stay monotonic across the fresh
// Machines produced by DICT-bump recompiles.
type AutomatonCounters = automaton.Counters

// AutomatonStats sizes one compiled table.
type AutomatonStats = automaton.Stats

// Automaton returns the Verifier's compiled machine (nil when the
// automaton is disabled or compilation failed, leaving the interpreter).
func (v *Verifier) Automaton() *Automaton { return v.aut }

// CompileAutomaton lowers v's golden artifact against dict, reusing v's
// compiled transition core when available so a gateway DICT version bump
// recompiles in O(dictionary) rather than O(image). Returns (nil, nil)
// when the automaton is disabled on v. Gateways pair each dictionary
// snapshot with the machine compiled for it (the per-session-snapshot
// invariant: a session verifies against one consistent dictionary+machine
// pair even while mining promotes a new version concurrently).
func (v *Verifier) CompileAutomaton(dict *speccfa.Dictionary) (*Automaton, error) {
	if !v.opts.automaton {
		return nil, nil
	}
	if v.aut != nil {
		return v.aut.WithDictionary(dict), nil
	}
	return automaton.Compile(v.link, dict)
}

// reconcileAutomaton re-derives v.aut after option changes (Verifier.With):
// disabling drops the machine, a dictionary change rebinds the shared
// core, and enabling from scratch compiles. Compile errors leave the
// interpreter (aut == nil), matching New.
func (v *Verifier) reconcileAutomaton() {
	switch {
	case !v.opts.automaton:
		v.aut = nil
	case v.aut != nil:
		if v.aut.Dictionary() != v.opts.spec {
			v.aut = v.aut.WithDictionary(v.opts.spec)
		}
	default:
		if m, err := automaton.Compile(v.link, v.opts.spec); err == nil {
			v.aut = m
		}
	}
}

// VerifyWithAutomaton is VerifyWithDictionary with an explicit engine: aut
// decodes the accept path (nil, or a machine bound to a different
// dictionary than required, degrades to the interpreter). Gateways pass
// the machine snapshotted with the session's dictionary.
//
// Engine equivalence: an automaton accept is a validated benign
// derivation carrying the same witness the interpreter materializes; on
// any non-accept the interpreter re-runs and renders the authoritative
// verdict, so rejection codes, details and errors never depend on the
// engine. The one documented exception is the work budget: the automaton
// counts abstract instructions on the single speculative walk, not the
// whole fixed point, so a stream the interpreter would abort on
// ReasonWorkBudget can instead be accepted if the walk fits the budget —
// the same engine-dependence the verdict cache already has (budget
// verdicts are never cached for exactly that reason).
// VerifyWithAutomaton is a thin Begin/Feed/Seal loop over [Session]: the
// whole chain is fed with per-slice checking disabled, so the only work is
// the incremental chain authentication (identical to AssembleChain) and
// the sealed whole-stream verification. Streamed sessions run the same
// Seal, which is what keeps their verdicts bit-identical to this path.
func (v *Verifier) VerifyWithAutomaton(chal attest.Challenge, reports []*attest.Report, dict *speccfa.Dictionary, aut *Automaton) (*Verdict, error) {
	s := v.Begin(chal, SessionDictionary(dict), SessionAutomaton(aut), SessionSliceChecks(false))
	for _, r := range reports {
		s.Feed(r)
	}
	return s.Seal()
}

// ReplayPacketsAutomaton is ReplayPackets through the fast path: the
// stream is decoded against v's compiled table, with any non-accept
// re-rendered by the interpreter. The differential conformance suite
// compares this against ReplayPackets (pure interpreter) packet-for-packet.
func (v *Verifier) ReplayPacketsAutomaton(packets []trace.Packet) *Verdict {
	if v.opts.automaton && v.aut != nil {
		if res, st := v.aut.Decode(packets, v.opts.pathCap, v.opts.maxInstrs); st == automaton.StatusAccept {
			return acceptVerdict(&res)
		}
	}
	return v.reconstruct(packets)
}

// acceptVerdict shapes an automaton accept as the Verdict the interpreter
// would materialize: same witness edges, transfers, loop replays and
// consumed-packet accounting. Instrs/Passes describe this engine's effort
// (decode work and 1+backtracks), as they describe search effort on the
// interpreter.
func acceptVerdict(res *automaton.Result) *Verdict {
	return &Verdict{
		OK:            true,
		Packets:       res.PacketsUsed,
		PacketsUsed:   res.PacketsUsed,
		Instrs:        res.Work,
		Transfers:     res.Transfers,
		LoopsReplayed: res.LoopsReplayed,
		Passes:        int(res.Backtracks) + 1,
		Path:          res.Path,
	}
}
