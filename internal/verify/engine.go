package verify

import (
	"time"

	"raptrack/internal/attest"
	"raptrack/internal/speccfa"
	"raptrack/internal/trace"
	"raptrack/internal/trace/pipeline"
	"raptrack/internal/verify/automaton"
)

// Automaton is the compiled table-driven verifier core: the per-app CFG
// and its SpecCFA dictionary lowered into a flat transition table with a
// zero-allocation decode loop (see package verify/automaton). It is the
// default engine for the accept path; the interpretive pushdown search
// stays on as the reference oracle and renders every non-accept verdict,
// which keeps reject/Inconclusive/error verdicts bit-identical to the
// interpreter by construction.
type Automaton = automaton.Machine

// AutomatonCounters aggregates automaton compile/decode activity. A
// gateway attaches one per app so metrics stay monotonic across the fresh
// Machines produced by DICT-bump recompiles.
type AutomatonCounters = automaton.Counters

// AutomatonStats sizes one compiled table.
type AutomatonStats = automaton.Stats

// Automaton returns the Verifier's compiled machine (nil when the
// automaton is disabled or compilation failed, leaving the interpreter).
func (v *Verifier) Automaton() *Automaton { return v.aut }

// CompileAutomaton lowers v's golden artifact against dict, reusing v's
// compiled transition core when available so a gateway DICT version bump
// recompiles in O(dictionary) rather than O(image). Returns (nil, nil)
// when the automaton is disabled on v. Gateways pair each dictionary
// snapshot with the machine compiled for it (the per-session-snapshot
// invariant: a session verifies against one consistent dictionary+machine
// pair even while mining promotes a new version concurrently).
func (v *Verifier) CompileAutomaton(dict *speccfa.Dictionary) (*Automaton, error) {
	if !v.opts.automaton {
		return nil, nil
	}
	if v.aut != nil {
		return v.aut.WithDictionary(dict), nil
	}
	return automaton.Compile(v.link, dict)
}

// reconcileAutomaton re-derives v.aut after option changes (Verifier.With):
// disabling drops the machine, a dictionary change rebinds the shared
// core, and enabling from scratch compiles. Compile errors leave the
// interpreter (aut == nil), matching New.
func (v *Verifier) reconcileAutomaton() {
	switch {
	case !v.opts.automaton:
		v.aut = nil
	case v.aut != nil:
		if v.aut.Dictionary() != v.opts.spec {
			v.aut = v.aut.WithDictionary(v.opts.spec)
		}
	default:
		if m, err := automaton.Compile(v.link, v.opts.spec); err == nil {
			v.aut = m
		}
	}
}

// VerifyWithAutomaton is VerifyWithDictionary with an explicit engine: aut
// decodes the accept path (nil, or a machine bound to a different
// dictionary than required, degrades to the interpreter). Gateways pass
// the machine snapshotted with the session's dictionary.
//
// Engine equivalence: an automaton accept is a validated benign
// derivation carrying the same witness the interpreter materializes; on
// any non-accept the interpreter re-runs and renders the authoritative
// verdict, so rejection codes, details and errors never depend on the
// engine. The one documented exception is the work budget: the automaton
// counts abstract instructions on the single speculative walk, not the
// whole fixed point, so a stream the interpreter would abort on
// ReasonWorkBudget can instead be accepted if the walk fits the budget —
// the same engine-dependence the verdict cache already has (budget
// verdicts are never cached for exactly that reason).
func (v *Verifier) VerifyWithAutomaton(chal attest.Challenge, reports []*attest.Report, dict *speccfa.Dictionary, aut *Automaton) (*Verdict, error) {
	var tm PhaseTiming
	phase := time.Now()
	log, hmem, err := attest.AssembleChain(reports, chal, v.auth)
	tm.Auth = time.Since(phase)
	if err != nil {
		return nil, err
	}
	if hmem != v.hmem {
		return v.hmemMismatch(hmem, tm), nil
	}
	var wraps, dropped uint64
	for _, r := range reports {
		wraps += uint64(r.Wraps)
		dropped += uint64(r.Dropped)
	}
	packets, derr := pipeline.New(pipeline.MTBChain(log, wraps, dropped), pipeline.FailOnLoss()).Packets()
	if derr != nil {
		if derr.Code == pipeline.WrapLoss {
			// The signed reports themselves attest detectable trace loss:
			// the MTB wrapped past the watermark or dropped packets while
			// arming. The stream cannot be losslessly reconstructed, so
			// reconstruction would produce a *false* reject; render an
			// Inconclusive verdict instead. Never OK — an adversary
			// fabricating loss evidence only downgrades its own session
			// from "attack detected" to "re-attest".
			return &Verdict{OK: false, Code: ReasonInconclusive, Detail: derr.Detail, Timing: tm}, nil
		}
		return nil, derr
	}
	if !v.opts.automaton {
		aut = nil
	}

	// Compressed fast path: decode the marker stream directly, opening
	// dictionary sub-paths as precomputed jumps instead of materializing
	// the expansion up front. Requires the machine bound to this session's
	// dictionary snapshot, and no verdict cache (its keys cover the
	// expanded stream). On accept the expansion is still materialized once
	// for Verdict.Evidence — exactly what the reference pipeline exposes.
	if aut != nil && v.opts.cache == nil && dict.Len() > 0 && aut.Dictionary() == dict {
		phase = time.Now()
		res, st := aut.DecodeCompressed(packets, v.opts.pathCap, v.opts.maxInstrs)
		tm.Search = time.Since(phase)
		if st == automaton.StatusAccept {
			phase = time.Now()
			expanded, derr := pipeline.Expand(dict, packets)
			tm.Expand = time.Since(phase)
			if derr == nil {
				vd := acceptVerdict(&res)
				vd.Evidence = expanded
				vd.Timing = tm
				return vd, nil
			}
			// An accept consumed the stream through the same tables and
			// limits Decompress applies, so derr cannot happen; fall
			// through defensively and let the reference pipeline report.
		}
		// Non-accept: the interpreter renders the verdict. Do not retry
		// the automaton on the expanded stream — the derivation space is
		// identical, so it would fail the same way.
		aut = nil
	}

	if dict.Len() > 0 {
		phase = time.Now()
		expanded, derr := pipeline.Expand(dict, packets)
		tm.Expand += time.Since(phase)
		if derr != nil {
			return nil, derr
		}
		packets = expanded
	}
	if c := v.opts.cache; c != nil {
		if vd, ok := c.lookupVerdict(v.hmem, packets); ok {
			// lookupVerdict returned a private copy, so stamping this
			// session's evidence and timing never races other sessions.
			vd.Evidence = packets
			tm.CacheHit = true
			vd.Timing = tm
			return vd, nil
		}
	}
	phase = time.Now()
	var vd *Verdict
	if aut != nil {
		if res, st := aut.Decode(packets, v.opts.pathCap, v.opts.maxInstrs); st == automaton.StatusAccept {
			vd = acceptVerdict(&res)
		}
	}
	if vd == nil {
		vd = v.reconstruct(packets)
	}
	tm.Search += time.Since(phase)
	vd.Evidence = packets
	vd.Timing = tm
	if c := v.opts.cache; c != nil {
		c.storeVerdict(v.hmem, packets, vd)
	}
	return vd, nil
}

// ReplayPacketsAutomaton is ReplayPackets through the fast path: the
// stream is decoded against v's compiled table, with any non-accept
// re-rendered by the interpreter. The differential conformance suite
// compares this against ReplayPackets (pure interpreter) packet-for-packet.
func (v *Verifier) ReplayPacketsAutomaton(packets []trace.Packet) *Verdict {
	if v.opts.automaton && v.aut != nil {
		if res, st := v.aut.Decode(packets, v.opts.pathCap, v.opts.maxInstrs); st == automaton.StatusAccept {
			return acceptVerdict(&res)
		}
	}
	return v.reconstruct(packets)
}

// acceptVerdict shapes an automaton accept as the Verdict the interpreter
// would materialize: same witness edges, transfers, loop replays and
// consumed-packet accounting. Instrs/Passes describe this engine's effort
// (decode work and 1+backtracks), as they describe search effort on the
// interpreter.
func acceptVerdict(res *automaton.Result) *Verdict {
	return &Verdict{
		OK:            true,
		Packets:       res.PacketsUsed,
		PacketsUsed:   res.PacketsUsed,
		Instrs:        res.Work,
		Transfers:     res.Transfers,
		LoopsReplayed: res.LoopsReplayed,
		Passes:        int(res.Backtracks) + 1,
		Path:          res.Path,
	}
}
