// Package verify implements the Verifier side of RAP-Track: report-chain
// authentication, H_MEM validation, and lossless control-flow path
// reconstruction from CFLog evidence.
//
// # Reconstruction
//
// Reconstruction is an abstract replay over the linked image. Deterministic
// transfers (direct branches, calls, leaf returns) are followed statically;
// every non-deterministic point consumes evidence:
//
//   - indirect call/jump and monitored return stubs consume one MTB packet
//     whose source must be the stub's recording instruction;
//   - trampolined conditional branches are decided by presence: if the next
//     packet originates from the branch's stub the taken path was followed,
//     otherwise the fall-through was (forward-loop trampolines encode the
//     NOT-taken direction, §IV-C3.3);
//   - optimized simple loops consume one engine-appended loop-condition
//     packet at entry, from which the verifier recomputes the trip count.
//
// Because conditional evidence is presence-encoded (the untaken direction
// leaves no packet), a packet can in principle belong to a later dynamic
// instance of the same site; naive greedy matching mis-parses recursive
// programs, and plain backtracking search is exponential. The verifier
// therefore performs *pushdown summarization* (context-free reachability,
// as in interprocedural dataflow analysis): frame walks are memoized on
// (pc, evidence cursor, loop state) and yield sets of frame *outcomes* —
// "returns deterministically", "returns consuming a packet with
// destination D", or "halts" — iterated to a least fixed point. All
// cross-frame interaction is captured by the outcome's return destination,
// which the caller matches against its own call-site successor; this is
// simultaneously the reconstruction mechanism and the ROP policy check. A
// report is accepted iff some policy-conforming derivation explains the
// complete evidence stream; the witness path is then materialized from the
// derivation links.
//
// Replay policies detect the runtime attacks CFA targets: return
// destinations must match the call-site successor (ROP), indirect-call
// destinations must be function entries (JOP), table jumps must stay
// inside their function, and the evidence stream must be exhausted
// exactly.
//
// # Fast path
//
// Verifiers in a gateway share a [Cache] (see WithCache): whole-stream
// verdicts and deterministic segment walks are memoized across sessions,
// keyed by H_MEM and the exact evidence they depend on, so a fleet of
// devices running identical firmware amortizes the pushdown search.
package verify

import (
	"crypto/sha256"
	"fmt"
	"time"

	"raptrack/internal/asm"
	"raptrack/internal/attest"
	"raptrack/internal/linker"
	"raptrack/internal/speccfa"
	"raptrack/internal/trace"
	"raptrack/internal/verify/automaton"
)

// PhaseTiming attributes one verification's wall clock to its phases, so
// a gateway's observability layer can report where attestation time goes
// without instrumenting this package from outside.
type PhaseTiming struct {
	// Auth covers report-chain authentication and CFLog assembly.
	Auth time.Duration
	// Expand covers SpecCFA marker expansion (zero without a dictionary).
	Expand time.Duration
	// Search covers the pushdown reconstruction (zero on verdict-cache
	// hits and on verdicts decided before reconstruction, e.g. an H_MEM
	// mismatch).
	Search time.Duration
	// CacheHit marks a verdict served whole from the cross-session cache.
	CacheHit bool
}

// Edge is one reconstructed control transfer. It aliases the automaton
// package's edge type so witness paths flow between the engines without
// conversion.
type Edge = automaton.Edge

// Verdict is the outcome of verifying one attestation session.
type Verdict struct {
	OK bool
	// Code classifies the rejection (ReasonNone when OK); Detail carries
	// the human-readable specifics of the first recorded contradiction.
	Code   ReasonCode
	Detail string
	// FailPC is the replay PC at the first recorded contradiction (0 when
	// OK, or when the failure was global, e.g. an H_MEM mismatch).
	FailPC uint32

	// Evidence statistics.
	Packets       int    // packets in the assembled CFLog
	PacketsUsed   int    // packets consumed by the accepted derivation
	Instrs        uint64 // abstract instructions walked during the search
	Transfers     uint64 // control transfers on the accepted path
	LoopsReplayed uint64 // optimized-loop trip counts applied on the path
	Passes        int    // node evaluations performed by the search

	// Path holds the reconstructed transfer sequence, capped at PathCap.
	Path []Edge

	// Evidence is the decompressed packet stream the verdict judged
	// (populated by Verify/VerifyWithDictionary, nil from ReplayPackets
	// cache hits). Gateways mine it for hot sub-paths; treat as read-only.
	Evidence []trace.Packet

	// Timing attributes the verification wall clock per phase (populated
	// by Verify/VerifyWithDictionary; zero from ReplayPackets).
	Timing PhaseTiming
}

// Reason renders the failure cause as "code: detail" ("" when OK).
func (vd *Verdict) Reason() string {
	if vd.OK {
		return ""
	}
	if vd.Detail == "" {
		return vd.Code.String()
	}
	return vd.Code.String() + ": " + vd.Detail
}

// Verifier validates attestation evidence for one application. It holds
// the golden linked artifact (the Verifier runs the same offline phase on
// the published binary) and the report authenticator.
//
// A Verifier is immutable after New and safe for concurrent use: every
// Verify/ReplayPackets call allocates its own search state, so one
// Verifier per application can be shared across all gateway sessions.
// Derive a reconfigured copy with [Verifier.With].
type Verifier struct {
	link    *linker.Output
	auth    attest.Authenticator
	hmem    [sha256.Size]byte
	entries map[uint32]bool // function entry addresses (indirect-call policy)
	opts    options
	aut     *automaton.Machine // compiled fast path (nil: interpreter only)
}

// New builds a Verifier for the linked artifact, configured by functional
// options (see WithMaxInstrs, WithPathCap, WithSpeculation, WithCache,
// WithDebug). With no options the defaults match a plain verifier: 500M
// instruction budget, 4096 path edges, no speculation, no cache.
func New(link *linker.Output, auth attest.Authenticator, opts ...Option) *Verifier {
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	v := &Verifier{
		link:    link,
		auth:    auth,
		hmem:    link.Image.Hash(),
		entries: make(map[uint32]bool),
		opts:    o,
	}
	for name, r := range link.Image.FuncRanges {
		if name == linker.MTBARFunc {
			continue
		}
		v.entries[r.Base] = true
	}
	if o.automaton {
		// Compile failures (no entry point, register overflow) leave the
		// interpreter in charge; it reports them through its own verdicts.
		if m, err := automaton.Compile(link, o.spec); err == nil {
			v.aut = m
		}
	}
	return v
}

// ExpectedHMem returns the golden program measurement.
func (v *Verifier) ExpectedHMem() [sha256.Size]byte { return v.hmem }

// Verify authenticates the report chain against chal and reconstructs the
// execution path, expanding markers with the constructor-provisioned
// dictionary. A nil error with Verdict.OK == false means the evidence was
// well-formed but attests a disallowed execution (attack detected);
// errors are reserved for malformed/inauthentic evidence.
func (v *Verifier) Verify(chal attest.Challenge, reports []*attest.Report) (*Verdict, error) {
	return v.VerifyWithDictionary(chal, reports, v.opts.spec)
}

// VerifyWithDictionary is Verify with an explicit SpecCFA dictionary for
// this session (nil disables marker expansion), overriding the
// constructor-provisioned one. Gateways negotiating a live, mined
// dictionary per session use this entry point.
//
// The verdict cache is dictionary-independent: caching keys on the
// decompressed stream, so promoting new sub-paths never invalidates it.
func (v *Verifier) VerifyWithDictionary(chal attest.Challenge, reports []*attest.Report, dict *speccfa.Dictionary) (*Verdict, error) {
	return v.VerifyWithAutomaton(chal, reports, dict, v.aut)
}

// hmemMismatch renders the pre-reconstruction firmware-mismatch verdict.
func (v *Verifier) hmemMismatch(hmem [sha256.Size]byte, tm PhaseTiming) *Verdict {
	return &Verdict{
		OK:     false,
		Code:   ReasonHMemMismatch,
		Detail: fmt.Sprintf("H_MEM mismatch: prover code differs from golden image (got %x.., want %x..)", hmem[:8], v.hmem[:8]),
		Timing: tm,
	}
}

// ReplayPackets reconstructs a path directly from packets (testing and
// tooling aid; skips authentication and the whole-stream verdict cache,
// though an attached cache still shares segment summaries).
func (v *Verifier) ReplayPackets(packets []trace.Packet) *Verdict {
	return v.reconstruct(packets)
}

// retToHaltSentinel mirrors the CPU's initial-LR halt sentinel (with the
// Thumb bit cleared, as the hardware records it).
const retToHaltSentinel = 0xffff_fffe

func inRange(r asm.Range, addr uint32) bool { return addr >= r.Base && addr < r.Limit }
