// Package verify implements the Verifier side of RAP-Track: report-chain
// authentication, H_MEM validation, and lossless control-flow path
// reconstruction from CFLog evidence.
//
// # Reconstruction
//
// Reconstruction is an abstract replay over the linked image. Deterministic
// transfers (direct branches, calls, leaf returns) are followed statically;
// every non-deterministic point consumes evidence:
//
//   - indirect call/jump and monitored return stubs consume one MTB packet
//     whose source must be the stub's recording instruction;
//   - trampolined conditional branches are decided by presence: if the next
//     packet originates from the branch's stub the taken path was followed,
//     otherwise the fall-through was (forward-loop trampolines encode the
//     NOT-taken direction, §IV-C3.3);
//   - optimized simple loops consume one engine-appended loop-condition
//     packet at entry, from which the verifier recomputes the trip count.
//
// Because conditional evidence is presence-encoded (the untaken direction
// leaves no packet), a packet can in principle belong to a later dynamic
// instance of the same site; naive greedy matching mis-parses recursive
// programs, and plain backtracking search is exponential. The verifier
// therefore performs *pushdown summarization* (context-free reachability,
// as in interprocedural dataflow analysis): frame walks are memoized on
// (pc, evidence cursor, loop state) and yield sets of frame *outcomes* —
// "returns deterministically", "returns consuming a packet with
// destination D", or "halts" — iterated to a least fixed point. All
// cross-frame interaction is captured by the outcome's return destination,
// which the caller matches against its own call-site successor; this is
// simultaneously the reconstruction mechanism and the ROP policy check. A
// report is accepted iff some policy-conforming derivation explains the
// complete evidence stream; the witness path is then materialized from the
// derivation links.
//
// Replay policies detect the runtime attacks CFA targets: return
// destinations must match the call-site successor (ROP), indirect-call
// destinations must be function entries (JOP), table jumps must stay
// inside their function, and the evidence stream must be exhausted
// exactly.
package verify

import (
	"crypto/sha256"
	"fmt"

	"raptrack/internal/asm"
	"raptrack/internal/attest"
	"raptrack/internal/isa"
	"raptrack/internal/linker"
	"raptrack/internal/speccfa"
	"raptrack/internal/trace"
)

// Edge is one reconstructed control transfer.
type Edge struct {
	Src, Dst uint32
	Kind     isa.BranchKind
}

// Verdict is the outcome of verifying one attestation session.
type Verdict struct {
	OK     bool
	Reason string // human-readable failure cause ("" when OK)
	// FailPC is the replay PC at the first recorded contradiction (0 when
	// OK, or when the failure was global, e.g. an H_MEM mismatch).
	FailPC uint32

	// Evidence statistics.
	Packets       int    // packets in the assembled CFLog
	PacketsUsed   int    // packets consumed by the accepted derivation
	Instrs        uint64 // abstract instructions walked during the search
	Transfers     uint64 // control transfers on the accepted path
	LoopsReplayed uint64 // optimized-loop trip counts applied on the path
	Passes        int    // node evaluations performed by the search

	// Path holds the reconstructed transfer sequence, capped at PathCap.
	Path []Edge
}

// Options tunes verification.
type Options struct {
	// MaxInstrs bounds the total abstract work (default 500M).
	MaxInstrs uint64
	// PathCap bounds the recorded path edges (default 4096; -1 disables
	// recording).
	PathCap int
	// Debug prints search diagnostics to stdout (development aid). The
	// flag is carried per search state, so one debugging Verifier does
	// not affect concurrent verifications by others.
	Debug bool
	// Speculation, when non-nil, expands SpecCFA sub-path markers in the
	// evidence before reconstruction (must match the Prover's dictionary).
	Speculation *speccfa.Dictionary
}

// Verifier validates attestation evidence for one application. It holds
// the golden linked artifact (the Verifier runs the same offline phase on
// the published binary) and the report authenticator.
//
// A Verifier is immutable after New and safe for concurrent use: every
// Verify/ReplayPackets call allocates its own search state, so one
// Verifier per application can be shared across all gateway sessions.
type Verifier struct {
	link    *linker.Output
	auth    attest.Authenticator
	hmem    [sha256.Size]byte
	entries map[uint32]bool // function entry addresses (indirect-call policy)
	opts    Options
}

// New builds a Verifier for the linked artifact.
func New(link *linker.Output, auth attest.Authenticator, opts Options) *Verifier {
	if opts.MaxInstrs == 0 {
		opts.MaxInstrs = 500_000_000
	}
	if opts.PathCap == 0 {
		opts.PathCap = 4096
	}
	v := &Verifier{
		link:    link,
		auth:    auth,
		hmem:    link.Image.Hash(),
		entries: make(map[uint32]bool),
		opts:    opts,
	}
	for name, r := range link.Image.FuncRanges {
		if name == linker.MTBARFunc {
			continue
		}
		v.entries[r.Base] = true
	}
	return v
}

// ExpectedHMem returns the golden program measurement.
func (v *Verifier) ExpectedHMem() [sha256.Size]byte { return v.hmem }

// Verify authenticates the report chain against chal and reconstructs the
// execution path. A nil error with Verdict.OK == false means the evidence
// was well-formed but attests a disallowed execution (attack detected);
// errors are reserved for malformed/inauthentic evidence.
func (v *Verifier) Verify(chal attest.Challenge, reports []*attest.Report) (*Verdict, error) {
	log, hmem, err := attest.AssembleChain(reports, chal, v.auth)
	if err != nil {
		return nil, err
	}
	if hmem != v.hmem {
		return &Verdict{
			OK:     false,
			Reason: fmt.Sprintf("H_MEM mismatch: prover code differs from golden image (got %x.., want %x..)", hmem[:8], v.hmem[:8]),
		}, nil
	}
	packets := trace.DecodePackets(log)
	if v.opts.Speculation.Len() > 0 {
		packets, err = v.opts.Speculation.Decompress(packets)
		if err != nil {
			return nil, err
		}
	}
	return v.reconstruct(packets), nil
}

// ReplayPackets reconstructs a path directly from packets (testing and
// tooling aid; skips authentication).
func (v *Verifier) ReplayPackets(packets []trace.Packet) *Verdict {
	return v.reconstruct(packets)
}

// retToHaltSentinel mirrors the CPU's initial-LR halt sentinel (with the
// Thumb bit cleared, as the hardware records it).
const retToHaltSentinel = 0xffff_fffe

func inRange(r asm.Range, addr uint32) bool { return addr >= r.Base && addr < r.Limit }
