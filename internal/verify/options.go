package verify

import "raptrack/internal/speccfa"

// options holds the resolved Verifier configuration. It is immutable
// after New/With; derived Verifiers copy it by value.
type options struct {
	maxInstrs uint64
	pathCap   int
	debug     bool
	automaton bool
	spec      *speccfa.Dictionary
	cache     *Cache
}

func defaultOptions() options {
	return options{
		maxInstrs: 500_000_000,
		pathCap:   4096,
		automaton: true,
	}
}

// Option configures a Verifier at construction (verify.New) or when
// deriving one (Verifier.With).
type Option func(*options)

// WithMaxInstrs bounds the total abstract work of one reconstruction
// (default 500M). n == 0 restores the default.
func WithMaxInstrs(n uint64) Option {
	return func(o *options) {
		if n == 0 {
			n = 500_000_000
		}
		o.maxInstrs = n
	}
}

// WithPathCap bounds the recorded witness path edges (default 4096);
// pass a negative value to disable path recording entirely.
func WithPathCap(n int) Option {
	return func(o *options) {
		if n == 0 {
			n = 4096
		}
		o.pathCap = n
	}
}

// WithDebug toggles search diagnostics on stdout (development aid). The
// flag is carried per search state, so one debugging Verifier does not
// affect concurrent verifications by others.
func WithDebug(on bool) Option {
	return func(o *options) { o.debug = on }
}

// WithSpeculation provisions the SpecCFA sub-path dictionary used to
// expand marker packets before reconstruction (must match the Prover's
// dictionary). Per-session dictionaries — a gateway negotiating a live,
// mined dictionary — go through VerifyWithDictionary instead.
func WithSpeculation(d *speccfa.Dictionary) Option {
	return func(o *options) { o.spec = d }
}

// WithAutomaton toggles the table-driven fast path (default on): the
// compiled automaton decodes the accept path, and the interpreter — the
// reference oracle — renders every non-accept verdict. Off means every
// verification runs the interpretive pushdown search, as before the
// automaton existed; the differential conformance suite runs both.
func WithAutomaton(on bool) Option {
	return func(o *options) { o.automaton = on }
}

// WithCache attaches a cross-session summary cache: whole-stream verdicts
// and deterministic segment walks are memoized in it, keyed by (H_MEM,
// evidence window, loop state), so concurrent sessions attesting the same
// firmware reuse pushdown work. The cache may be shared by many Verifiers
// and is safe for concurrent use; nil detaches.
func WithCache(c *Cache) Option {
	return func(o *options) { o.cache = c }
}

// With derives a Verifier sharing v's golden artifact and authenticator
// but with opts applied on top of v's configuration. The receiver is not
// modified (Verifiers stay immutable after construction).
func (v *Verifier) With(opts ...Option) *Verifier {
	nv := *v
	for _, opt := range opts {
		opt(&nv.opts)
	}
	nv.reconcileAutomaton()
	return &nv
}

// Cache returns the attached summary cache (nil when caching is off).
func (v *Verifier) Cache() *Cache { return v.opts.cache }

// Speculation returns the constructor-provisioned SpecCFA dictionary
// (nil when none). Gateways use it to seed their live dictionary.
func (v *Verifier) Speculation() *speccfa.Dictionary { return v.opts.spec }
