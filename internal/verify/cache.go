package verify

import (
	"container/list"
	"crypto/sha256"
	"sync"
	"sync/atomic"

	"raptrack/internal/trace"
	"raptrack/internal/trace/pipeline"
)

// Cache is the cross-session verification fast path: a sharded, bounded
// LRU holding two kinds of relocatable reconstruction results, shared by
// every session verifying the same firmware fleet:
//
//   - whole-stream verdicts, keyed by SHA-256(H_MEM ‖ decompressed
//     evidence): fleet devices running identical firmware produce
//     identical evidence, so a repeated stream returns its verdict
//     without re-running the pushdown search at all;
//   - deterministic segment summaries, keyed by (H_MEM, pc, loop state)
//     plus the exact evidence window the walk peeked: near-identical
//     streams (same firmware, slightly different inputs) reuse every
//     segment whose local evidence window recurs, at any cursor offset.
//
// Soundness: cached values are pure functions of their key. A verdict is
// determined by (golden image, packet stream) — H_MEM determines the
// image, the digest covers the stream. A segment walk is determined by
// (image, entry pc, loop state, the packets it peeks); a stored summary
// carries that peeked window verbatim and is only replayed when the
// window (and end-of-stream condition, when observed) matches exactly at
// the new cursor, so a hit can never produce a result the uncached walk
// would not have produced. Changing the firmware changes H_MEM and
// therefore every key: invalidation is structural, never explicit.
//
// All methods are safe for concurrent use; one Cache may back many
// Verifiers (a gateway typically allocates one per application).
type Cache struct {
	shards [cacheShards]cacheShard

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

const cacheShards = 16

// DefaultCacheBytes is the capacity NewCache selects for maxBytes <= 0.
const DefaultCacheBytes = 64 << 20

type cacheShard struct {
	mu    sync.Mutex
	items map[cacheKey]*list.Element
	lru   *list.List // front = most recent
	bytes int64
	max   int64
}

// cacheKey identifies one cached value. kind separates the two value
// namespaces; h64 is a cheap per-node hash for segment entries (collisions
// are resolved by exact variant comparison, never trusted); hsum is the
// full SHA-256 stream digest for verdicts and H_MEM for segments.
type cacheKey struct {
	kind byte
	h64  uint64
	hsum [sha256.Size]byte
}

const (
	keyKindVerdict byte = 1
	keyKindSegment byte = 2
)

type cacheEntry struct {
	key  cacheKey
	val  any
	size int64
}

// NewCache builds a cache bounded to maxBytes of accounted payload
// (maxBytes <= 0 selects DefaultCacheBytes).
func NewCache(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		maxBytes = DefaultCacheBytes
	}
	c := &Cache{}
	per := maxBytes / cacheShards
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i].items = make(map[cacheKey]*list.Element)
		c.shards[i].lru = list.New()
		c.shards[i].max = per
	}
	return c
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Entries   int
	Bytes     int64
}

// Stats snapshots the counters and walks the shards for occupancy.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	s := CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		s.Entries += len(sh.items)
		s.Bytes += sh.bytes
		sh.mu.Unlock()
	}
	return s
}

func (c *Cache) shard(k cacheKey) *cacheShard {
	return &c.shards[(k.h64^uint64(k.kind)*0x9e3779b97f4a7c15)%cacheShards]
}

// get returns the cached value for k, refreshing its LRU position. It
// does not touch the hit/miss counters: a segment-bucket lookup only
// counts as a hit when a variant actually matches, so the callers count.
func (c *Cache) get(k cacheKey) (any, bool) {
	sh := c.shard(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.items[k]
	if !ok {
		return nil, false
	}
	sh.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// put inserts or replaces the value for k, evicting least-recently-used
// entries until the shard fits its budget. Values larger than the whole
// shard budget are not admitted (they would evict everything for one
// entry that itself cannot stay).
func (c *Cache) put(k cacheKey, v any, size int64) {
	sh := c.shard(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if size > sh.max {
		return
	}
	if el, ok := sh.items[k]; ok {
		e := el.Value.(*cacheEntry)
		sh.bytes += size - e.size
		e.val, e.size = v, size
		sh.lru.MoveToFront(el)
	} else {
		e := &cacheEntry{key: k, val: v, size: size}
		sh.items[k] = sh.lru.PushFront(e)
		sh.bytes += size
	}
	for sh.bytes > sh.max {
		back := sh.lru.Back()
		if back == nil {
			break
		}
		e := back.Value.(*cacheEntry)
		sh.lru.Remove(back)
		delete(sh.items, e.key)
		sh.bytes -= e.size
		c.evictions.Add(1)
	}
}

// --- verdict entries -------------------------------------------------

// cachedVerdict is one memoized whole-stream result. The Verdict value
// is returned by shallow copy: Path is shared read-only, Evidence is
// re-attached per call (it is the caller's own decompressed stream).
type cachedVerdict struct {
	vd Verdict
}

func verdictKey(hmem [sha256.Size]byte, packets []trace.Packet) cacheKey {
	h := sha256.New()
	h.Write(hmem[:])
	h.Write(pipeline.EncodeMTB(packets))
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	var h64 uint64
	for i := 0; i < 8; i++ {
		h64 = h64<<8 | uint64(sum[i])
	}
	return cacheKey{kind: keyKindVerdict, h64: h64, hsum: sum}
}

func (cv *cachedVerdict) sizeBytes() int64 {
	return 256 + int64(len(cv.vd.Path))*12 + int64(len(cv.vd.Detail))
}

// lookupVerdict returns a private copy of the memoized verdict for
// (hmem, packets), if any.
func (c *Cache) lookupVerdict(hmem [sha256.Size]byte, packets []trace.Packet) (*Verdict, bool) {
	v, ok := c.get(verdictKey(hmem, packets))
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	cv, ok := v.(*cachedVerdict)
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	vd := cv.vd // shallow copy; Path shared read-only
	return &vd, true
}

// storeVerdict memoizes vd for (hmem, packets). Budget-limited verdicts
// are not stored: they depend on the Verifier's MaxInstrs, which is not
// part of the key.
func (c *Cache) storeVerdict(hmem [sha256.Size]byte, packets []trace.Packet, vd *Verdict) {
	if vd.Code == ReasonWorkBudget {
		return
	}
	cv := &cachedVerdict{vd: *vd}
	cv.vd.Evidence = nil // do not pin evidence streams in the cache
	c.put(verdictKey(hmem, packets), cv, cv.sizeBytes())
}

// --- segment entries -------------------------------------------------

// noteRec is a diagnostic captured during a recorded segment walk,
// replayed on every cache hit so rejection detail does not depend on
// which session first walked the segment.
type noteRec struct {
	pc     uint32
	code   ReasonCode
	msg    string
	attack bool
}

// segSummary is one relocatable deterministic-segment result: entering at
// pc with loopCtx and evidence matching win at the cursor (plus, when eos
// is set, the stream ending right after the window), the walk ends in
// res with cursors expressed relative to the entry cursor.
type segSummary struct {
	pc      uint32
	loopCtx loopMap
	win     []trace.Packet
	eos     bool
	res     advState // cursor fields are deltas from the entry cursor
	note    *noteRec
}

// matches reports whether the summary applies at packets[cursor:].
func (sg *segSummary) matches(packets []trace.Packet, cursor int) bool {
	if cursor+len(sg.win) > len(packets) {
		return false
	}
	for i, p := range sg.win {
		if packets[cursor+i] != p {
			return false
		}
	}
	if sg.eos && cursor+len(sg.win) != len(packets) {
		return false
	}
	return true
}

func (sg *segSummary) sizeBytes() int64 {
	return 160 + int64(len(sg.win))*trace.PacketSize +
		int64(len(sg.loopCtx)+len(sg.res.loopCtx))*16
}

// segBucket holds the summaries recorded for one (H_MEM, pc, loop-hash)
// slot. Buckets are immutable snapshots (copy-on-write on insert) so
// readers never lock beyond the shard mutex.
type segBucket struct {
	variants []*segSummary
}

// maxSegVariants bounds one bucket: distinct windows per node are rare
// (different loop counts or tail positions), so a handful suffices.
const maxSegVariants = 6

func segKey(hmem [sha256.Size]byte, pc uint32, lhash uint64) cacheKey {
	const prime64 = 1099511628211
	h := (uint64(pc)*prime64 ^ lhash) * prime64
	return cacheKey{kind: keyKindSegment, h64: h, hsum: hmem}
}

// lookupSegment returns a summary applying at (pc, loopCtx,
// packets[cursor:]), if one was recorded by any session.
func (c *Cache) lookupSegment(hmem [sha256.Size]byte, pc uint32, loopCtx loopMap, packets []trace.Packet, cursor int) (*segSummary, bool) {
	v, ok := c.get(segKey(hmem, pc, loopCtx.hash()))
	if ok {
		if b, okb := v.(*segBucket); okb {
			for _, sg := range b.variants {
				if sg.pc == pc && loopMapsEqual(sg.loopCtx, loopCtx) && sg.matches(packets, cursor) {
					c.hits.Add(1)
					return sg, true
				}
			}
		}
	}
	c.misses.Add(1)
	return nil, false
}

// storeSegment records a summary, replacing the bucket snapshot. The
// newest variant goes first; the oldest falls off past maxSegVariants.
func (c *Cache) storeSegment(hmem [sha256.Size]byte, sg *segSummary) {
	k := segKey(hmem, sg.pc, sg.loopCtx.hash())
	var old []*segSummary
	if v, ok := c.get(k); ok {
		if b, okb := v.(*segBucket); okb {
			old = b.variants
		}
	}
	variants := make([]*segSummary, 0, len(old)+1)
	variants = append(variants, sg)
	for _, o := range old {
		if len(variants) >= maxSegVariants {
			break
		}
		variants = append(variants, o)
	}
	size := int64(48)
	for _, v := range variants {
		size += v.sizeBytes()
	}
	c.put(k, &segBucket{variants: variants}, size)
}

// --- cross-shard warming ---------------------------------------------

// WarmEntry is one relocatable cache record in transit between caches
// (Cache.WarmDump / Cache.WarmLoad). The payload is opaque: both cached
// value kinds — whole-stream verdicts and deterministic segment
// summaries — are pure functions of their key and immutable once
// stored, so sharing them between the caches of gateway replicas can
// never produce a result the receiving cache's own walks would not have
// produced.
type WarmEntry struct {
	key  cacheKey
	val  any
	size int64
}

// WarmDump exports up to max cache records, most-recently-used first
// within each shard, as relocatable entries a peer cache can WarmLoad.
// max <= 0 exports everything resident.
func (c *Cache) WarmDump(max int) []WarmEntry {
	if c == nil {
		return nil
	}
	var out []WarmEntry
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for el := sh.lru.Front(); el != nil; el = el.Next() {
			if max > 0 && len(out) >= max {
				break
			}
			e := el.Value.(*cacheEntry)
			out = append(out, WarmEntry{key: e.key, val: e.val, size: e.size})
		}
		sh.mu.Unlock()
		if max > 0 && len(out) >= max {
			break
		}
	}
	return out
}

// WarmLoad imports entries produced by another cache's WarmDump,
// skipping keys already resident (the local copy is at least as fresh)
// and respecting the byte budget exactly like locally stored values.
// It returns how many entries were admitted. Hit/miss counters are
// untouched: warming is not a lookup.
func (c *Cache) WarmLoad(entries []WarmEntry) int {
	if c == nil {
		return 0
	}
	added := 0
	for _, e := range entries {
		sh := c.shard(e.key)
		sh.mu.Lock()
		_, dup := sh.items[e.key]
		sh.mu.Unlock()
		if dup {
			continue
		}
		c.put(e.key, e.val, e.size)
		added++
	}
	return added
}

func loopMapsEqual(a, b loopMap) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}
