package verify

import (
	"fmt"

	"raptrack/internal/cfg"
	"raptrack/internal/isa"
	"raptrack/internal/trace"
)

// exitKind classifies how a frame walk terminates.
type exitKind uint8

const (
	exitLeaf exitKind = iota // deterministic BX LR: returns to the caller's site
	exitRet                  // monitored return: consumed a packet carrying retDst
	exitHalt                 // HLT reached (program over)
)

// outcome is one way a frame can complete from some state, plus the
// derivation links needed to materialize the witness path.
type outcome struct {
	kind   exitKind
	cursor int    // evidence cursor after completion
	retDst uint32 // exitRet only

	// Derivation: the node that produced this outcome, the local branch
	// taken there, the callee outcome (call nodes) and the continuation
	// outcome (nil when the node itself exits the frame).
	node   nodeKey
	branch uint8
	callee *outcome
	cont   *outcome
}

func (o *outcome) valueKey() uint64 {
	return uint64(o.kind)<<62 | uint64(o.retDst)<<30 | uint64(uint32(o.cursor))
}

// Branch identifiers.
const (
	brExit     = 0 // cond not-taken / guard exit-taken / frame exit
	brConsume  = 1 // cond taken / guard continue
	brCall     = 2
	brCallHalt = 3
)

// loopMap is the frame-local optimized-loop state: controlling-branch
// address -> remaining continue count. Copied on write, so a snapshot is
// never mutated after it escapes — cached segment summaries may share
// their maps across sessions.
type loopMap map[uint32]uint64

func (l loopMap) clone() loopMap {
	c := make(loopMap, len(l)+1)
	for k, v := range l {
		c[k] = v
	}
	return c
}

func (l loopMap) hash() uint64 {
	var h uint64
	for k, v := range l {
		h += (uint64(k)*1099511628211 ^ v) * 1099511628211
	}
	return h
}

// nodeKey identifies a memoized decision state.
type nodeKey struct {
	pc     uint32
	cursor int
	lhash  uint64
}

// entry is the memo cell for one nodeKey: the node's evaluation context,
// its outcome set (monotonically growing), and the reverse-dependency
// edges driving the worklist iteration.
type entry struct {
	outs []*outcome
	have map[uint64]bool

	// Evaluation context (all producers of the key share it).
	pc      uint32
	cursor  int
	loopCtx loopMap

	// dependents are nodes whose outcomes were computed using this
	// entry's (possibly partial) set: they are re-evaluated when it grows.
	// depOrder keeps registration order: dirty marks must propagate
	// deterministically, or the evaluation order — and with it which
	// contradiction is reported as "first" — would vary run to run with
	// map iteration (the differential conformance fuzzer catches this).
	dependents map[nodeKey]struct{}
	depOrder   []nodeKey

	visiting bool
}

// summarizer runs the fixed-point search as a worklist-driven chaotic
// iteration: nodes are evaluated once on discovery; when an entry's
// outcome set grows, the nodes that read it are marked dirty and
// re-evaluated. Outcome sets only grow, so the iteration converges.
type summarizer struct {
	v       *Verifier
	packets []trace.Packet

	memo      map[nodeKey]*entry
	advMemo   map[nodeKey]advState
	evalStack []nodeKey
	dirty     []nodeKey
	inDirty   map[nodeKey]bool
	evals     uint64

	work    uint64
	aborted bool

	firstCode   ReasonCode
	firstReason string
	firstPC     uint32
	attackNoted bool

	cache *Cache      // shared cross-session segment cache (nil = off)
	rec   *segRecord  // active segment recording (nil outside cache misses)

	segCap    uint64 // max instructions per deterministic segment
	emitLoops uint64 // loop trip counts applied during witness emission
	debug     bool   // verbose search diagnostics (WithDebug)
}

// segRecord tracks the evidence extent one recorded advance peeked, so
// the resulting summary can be keyed on exactly that window.
type segRecord struct {
	start int // entry cursor
	end   int // one past the last peeked in-stream position
	eos   bool
	note  *noteRec
}

func (s *summarizer) note(code ReasonCode, pc uint32, format string, args ...any) {
	if s.debug {
		fmt.Printf("note(eval %d): pc=%#x: %s\n", s.evals, pc, fmt.Sprintf(format, args...))
	}
	if r := s.rec; r != nil && r.note == nil {
		r.note = &noteRec{pc: pc, code: code, msg: fmt.Sprintf(format, args...)}
	}
	if s.firstReason == "" {
		s.firstCode = code
		s.firstReason = fmt.Sprintf(format, args...)
		s.firstPC = pc
	}
}

// noteAttack records a policy violation (ROP/JOP/escape). These are the
// actionable diagnostics, so they take precedence over generic
// missing-evidence notes from abandoned search branches.
func (s *summarizer) noteAttack(code ReasonCode, pc uint32, format string, args ...any) {
	if s.debug {
		fmt.Printf("ATTACK(eval %d): pc=%#x: %s\n", s.evals, pc, fmt.Sprintf(format, args...))
	}
	if r := s.rec; r != nil && r.note == nil {
		r.note = &noteRec{pc: pc, code: code, msg: fmt.Sprintf(format, args...), attack: true}
	}
	if s.firstReason == "" || !s.attackNoted {
		s.firstCode = code
		s.firstReason = fmt.Sprintf(format, args...)
		s.firstPC = pc
		s.attackNoted = true
	}
}

func (s *summarizer) budget(n uint64) bool {
	s.work += n
	if s.work > s.v.opts.maxInstrs {
		s.aborted = true
		return false
	}
	return true
}

// advKind classifies where a deterministic segment ended.
type advKind uint8

const (
	advNode  advKind = iota // a branching/calling node: pc holds it
	advExit                 // the frame completed (exit filled in)
	advPrune                // contradiction: no outcomes through here
)

// advState is the result of advancing a deterministic segment.
type advState struct {
	kind    advKind
	pc      uint32
	cursor  int
	loopCtx loopMap
	exit    struct {
		kind   exitKind
		cursor int
		retDst uint32
		pc     uint32 // address of the exiting instruction
	}
}

// advance walks deterministic steps (plain instructions, direct branches,
// optimized-loop conditionals and loop-condition SECALLs, indirect jumps
// and monitored returns — all evidence-forced) until a branching node, a
// frame exit, or a contradiction. When emit is non-nil the traversed
// transfers are reported (witness materialization).
func (s *summarizer) advance(pc uint32, cursor int, loopCtx loopMap, emit func(Edge)) advState {
	v := s.v
	img := v.link.Image
	var steps uint64
	for {
		steps++
		if steps > s.segCap || !s.budget(1) {
			if steps > s.segCap {
				s.note(ReasonMalformedEvidence, pc, "deterministic segment does not terminate (infinite loop at %#x)", pc)
			}
			return advState{kind: advPrune}
		}
		ins, ok := img.Code[pc]
		if !ok {
			s.note(ReasonMalformedEvidence, pc, "reconstructed path leaves program code at %#x", pc)
			return advState{kind: advPrune}
		}
		next := pc + ins.Size()

		// Branching nodes and calls are handled by walkNode.
		if site, isSite := v.link.Sites[pc]; isSite {
			switch site.Class {
			case cfg.ClassCondNonLoop, cfg.ClassCondLoopBack, cfg.ClassCondLoopFwd, cfg.ClassIndirectCall:
				return advState{kind: advNode, pc: pc, cursor: cursor, loopCtx: loopCtx}
			case cfg.ClassReturn:
				p, have := s.peek(cursor)
				if !have || p.Src != site.RecordAddr {
					s.note(ReasonMissingEvidence, pc, "missing return evidence for site %#x", pc)
					return advState{kind: advPrune}
				}
				if emit != nil {
					emit(Edge{Src: pc, Dst: p.Dst, Kind: isa.KindReturn})
				}
				st := advState{kind: advExit}
				st.exit.kind = exitRet
				st.exit.cursor = cursor + 1
				st.exit.retDst = p.Dst
				st.exit.pc = pc
				return st
			case cfg.ClassIndirectJump:
				p, have := s.peek(cursor)
				if !have || p.Src != site.RecordAddr {
					s.note(ReasonMissingEvidence, pc, "missing indirect-jump evidence for site %#x", pc)
					return advState{kind: advPrune}
				}
				fr, okr := img.FuncRanges[site.Func]
				if !okr || !inRange(fr, p.Dst) {
					s.noteAttack(ReasonEscape, pc, "indirect jump to %#x escapes function %q", p.Dst, site.Func)
					return advState{kind: advPrune}
				}
				if _, isInstr := img.Code[p.Dst]; !isInstr {
					s.noteAttack(ReasonEscape, pc, "indirect jump to %#x, which is not an instruction", p.Dst)
					return advState{kind: advPrune}
				}
				if emit != nil {
					emit(Edge{Src: pc, Dst: p.Dst, Kind: isa.KindIndirectJump})
				}
				pc = p.Dst
				cursor++
				steps = 0 // evidence consumed: the segment is productive
				continue
			}
		}
		if _, isGuard := v.link.Guards[pc]; isGuard {
			return advState{kind: advNode, pc: pc, cursor: cursor, loopCtx: loopCtx}
		}
		if ls, isLoopCond := v.link.LoopConds[pc]; isLoopCond {
			rem, have := loopCtx[pc]
			if !have {
				if !ls.Loop.Static {
					s.note(ReasonMissingEvidence, pc, "optimized loop branch at %#x reached without a logged loop condition", pc)
					return advState{kind: advPrune}
				}
				// Static loop: the trip count is derived from the
				// compile-time entry value; reaching the branch without a
				// context means a fresh loop entry.
				trips, err := ls.Loop.TripCount(uint32(ls.Loop.EntryValue))
				if err != nil {
					s.note(ReasonMalformedEvidence, pc, "static loop trip count: %v", err)
					return advState{kind: advPrune}
				}
				rem = trips
				loopCtx = loopCtx.clone()
				loopCtx[pc] = rem
				if emit != nil {
					s.emitLoops++
				}
			}
			taken := false
			loopCtx = loopCtx.clone()
			if ls.Loop.Forward {
				if rem == 0 {
					taken = true
					delete(loopCtx, pc)
				} else {
					loopCtx[pc] = rem - 1
				}
			} else {
				if rem > 0 {
					taken = true
					loopCtx[pc] = rem - 1
				} else {
					delete(loopCtx, pc)
				}
			}
			if taken {
				if emit != nil {
					emit(Edge{Src: pc, Dst: ins.Target, Kind: isa.KindCond})
				}
				pc = ins.Target
			} else {
				pc = next
			}
			steps = 0 // loop state advanced: the segment is productive
			continue
		}
		if ls, isLoop := v.link.Loops[pc]; isLoop {
			p, have := s.peek(cursor)
			if !have || p.Src != pc {
				s.note(ReasonMissingEvidence, pc, "missing loop-condition evidence for optimized loop at %#x", pc)
				return advState{kind: advPrune}
			}
			trips, err := ls.Loop.TripCount(p.Dst)
			if err != nil {
				s.note(ReasonMalformedEvidence, pc, "loop-condition evidence invalid: %v", err)
				return advState{kind: advPrune}
			}
			loopCtx = loopCtx.clone()
			loopCtx[ls.CondAddr] = trips
			if emit != nil {
				s.emitLoops++
			}
			cursor++
			steps = 0 // evidence consumed: the segment is productive
			pc = next
			continue
		}

		switch ins.Kind() {
		case isa.KindNone:
			pc = next
		case isa.KindDirect:
			if emit != nil {
				emit(Edge{Src: pc, Dst: ins.Target, Kind: isa.KindDirect})
			}
			pc = ins.Target
		case isa.KindCall:
			return advState{kind: advNode, pc: pc, cursor: cursor, loopCtx: loopCtx}
		case isa.KindReturn:
			// Deterministic leaf return. The destination is only known to
			// the caller, which emits the edge (witness materialization).
			st := advState{kind: advExit}
			st.exit.kind = exitLeaf
			st.exit.cursor = cursor
			st.exit.pc = pc
			return st
		case isa.KindHalt:
			st := advState{kind: advExit}
			st.exit.kind = exitHalt
			st.exit.cursor = cursor
			st.exit.pc = pc
			return st
		case isa.KindSecureCall:
			s.note(ReasonMalformedEvidence, pc, "unexpected secure call in attested code at %#x", pc)
			return advState{kind: advPrune}
		default:
			s.note(ReasonBadImage, pc, "unlinked non-deterministic branch (%s) in golden image at %#x", ins.Kind(), pc)
			return advState{kind: advPrune}
		}
	}
}

func (s *summarizer) peek(cursor int) (trace.Packet, bool) {
	if r := s.rec; r != nil {
		if cursor < len(s.packets) {
			if cursor+1 > r.end {
				r.end = cursor + 1
			}
		} else {
			// The walk observed end-of-stream: the summary only applies
			// where the stream ends at the same relative position.
			r.eos = true
		}
	}
	if cursor < len(s.packets) {
		return s.packets[cursor], true
	}
	return trace.Packet{}, false
}

// walkState advances from (pc, cursor, loopCtx) and returns the frame
// outcomes from there. Deterministic advances are memoized per session
// (worklist re-evaluations would otherwise re-walk the same segments) and,
// when a shared cache is attached, across sessions as relocatable segment
// summaries.
func (s *summarizer) walkState(pc uint32, cursor int, loopCtx loopMap) []*outcome {
	k := nodeKey{pc: pc, cursor: cursor, lhash: loopCtx.hash()}
	st, ok := s.advMemo[k]
	if !ok {
		st, ok = s.cachedAdvance(pc, cursor, loopCtx)
		if !ok {
			st = s.recordedAdvance(pc, cursor, loopCtx)
		}
		s.advMemo[k] = st
	}
	switch st.kind {
	case advPrune:
		return nil
	case advExit:
		return []*outcome{{kind: st.exit.kind, cursor: st.exit.cursor, retDst: st.exit.retDst}}
	}
	return s.walkNode(st.pc, st.cursor, st.loopCtx)
}

// cachedAdvance consults the shared cross-session segment cache. On a hit
// the stored note (if any) is replayed through the normal diagnostic
// precedence, and the summary's relative cursors are rebased to cursor.
func (s *summarizer) cachedAdvance(pc uint32, cursor int, loopCtx loopMap) (advState, bool) {
	if s.cache == nil {
		return advState{}, false
	}
	sg, ok := s.cache.lookupSegment(s.v.hmem, pc, loopCtx, s.packets, cursor)
	if !ok {
		return advState{}, false
	}
	if n := sg.note; n != nil {
		if n.attack {
			s.noteAttack(n.code, n.pc, "%s", n.msg)
		} else {
			s.note(n.code, n.pc, "%s", n.msg)
		}
	}
	st := sg.res
	switch st.kind {
	case advNode:
		st.cursor += cursor
	case advExit:
		st.exit.cursor += cursor
	}
	return st, true
}

// recordedAdvance runs advance with window recording and publishes the
// resulting summary to the shared cache (unless the walk was cut short by
// the work budget, which is a Verifier-local limit, not a property of the
// evidence).
func (s *summarizer) recordedAdvance(pc uint32, cursor int, loopCtx loopMap) advState {
	if s.cache == nil {
		return s.advance(pc, cursor, loopCtx, nil)
	}
	rec := &segRecord{start: cursor, end: cursor}
	s.rec = rec
	st := s.advance(pc, cursor, loopCtx, nil)
	s.rec = nil
	if s.aborted {
		return st
	}
	sg := &segSummary{
		pc:      pc,
		loopCtx: loopCtx,
		win:     append([]trace.Packet(nil), s.packets[rec.start:rec.end]...),
		eos:     rec.eos,
		res:     st,
		note:    rec.note,
	}
	switch st.kind {
	case advNode:
		sg.res.cursor -= cursor
	case advExit:
		sg.res.exit.cursor -= cursor
	}
	s.cache.storeSegment(s.v.hmem, sg)
	return st
}

// walkNode returns the memoized outcomes of a branching/calling node,
// evaluating it on first discovery and recording a reverse-dependency
// edge from the node currently being evaluated.
func (s *summarizer) walkNode(pc uint32, cursor int, loopCtx loopMap) []*outcome {
	key := nodeKey{pc: pc, cursor: cursor, lhash: loopCtx.hash()}
	e := s.memo[key]
	if e == nil {
		e = &entry{
			have:       make(map[uint64]bool),
			pc:         pc,
			cursor:     cursor,
			loopCtx:    loopCtx,
			dependents: make(map[nodeKey]struct{}),
		}
		s.memo[key] = e
		s.evaluate(key, e)
	}
	if n := len(s.evalStack); n > 0 {
		d := s.evalStack[n-1]
		if _, seen := e.dependents[d]; !seen {
			e.dependents[d] = struct{}{}
			e.depOrder = append(e.depOrder, d)
		}
	}
	return e.outs
}

// markDirty queues a node for re-evaluation.
func (s *summarizer) markDirty(key nodeKey) {
	if !s.inDirty[key] {
		s.inDirty[key] = true
		s.dirty = append(s.dirty, key)
	}
}

// evaluate (re)computes one node's outcomes from its stored context.
// Growth propagates to dependents through the dirty queue.
func (s *summarizer) evaluate(key nodeKey, e *entry) {
	if e.visiting || s.aborted {
		return
	}
	e.visiting = true
	s.evalStack = append(s.evalStack, key)
	s.evals++
	pc, cursor, loopCtx := e.pc, e.cursor, e.loopCtx

	// extend wraps continuation outcomes with this node's derivation,
	// allocating only for outcomes not already in the set.
	extend := func(branch uint8, callee *outcome, conts []*outcome) {
		for _, c := range conts {
			vk := c.valueKey()
			if e.have[vk] {
				continue
			}
			e.have[vk] = true
			e.outs = append(e.outs, &outcome{
				kind: c.kind, cursor: c.cursor, retDst: c.retDst,
				node: key, branch: branch, callee: callee, cont: c,
			})
			for _, d := range e.depOrder {
				s.markDirty(d)
			}
		}
	}

	v := s.v
	img := v.link.Image
	ins := img.Code[pc]
	next := pc + ins.Size()

	if site, isSite := v.link.Sites[pc]; isSite {
		switch site.Class {
		case cfg.ClassCondNonLoop, cfg.ClassCondLoopBack:
			// Not-taken: always structurally possible.
			extend(brExit, nil, s.walkState(next, cursor, loopCtx))
			// Taken: gated on matching evidence.
			if p, have := s.peek(cursor); have && p.Src == site.RecordAddr {
				if p.Dst == site.StaticTarget {
					extend(brConsume, nil, s.walkState(site.StaticTarget, cursor+1, loopCtx))
				} else {
					s.note(ReasonMalformedEvidence, pc, "conditional evidence destination %#x != static target %#x", p.Dst, site.StaticTarget)
				}
			}
		case cfg.ClassCondLoopFwd:
			// pc is the inserted continue-logging B: must consume.
			p, have := s.peek(cursor)
			if !have || p.Src != site.RecordAddr {
				s.note(ReasonMissingEvidence, pc, "missing loop-continue evidence for site %#x", pc)
			} else if p.Dst != site.StaticTarget {
				s.note(ReasonMalformedEvidence, pc, "loop-continue evidence destination %#x != static target %#x", p.Dst, site.StaticTarget)
			} else {
				extend(brConsume, nil, s.walkState(site.StaticTarget, cursor+1, loopCtx))
			}
		case cfg.ClassIndirectCall:
			p, have := s.peek(cursor)
			if !have || p.Src != site.RecordAddr {
				s.note(ReasonMissingEvidence, pc, "missing indirect-call evidence for site %#x", pc)
			} else if !v.entries[p.Dst] {
				s.noteAttack(ReasonJOP, pc, "indirect call to %#x, which is not a function entry (JOP)", p.Dst)
			} else {
				s.call(key, pc, next, p.Dst, cursor+1, loopCtx, extend)
			}
		}
	} else if _, isGuard := v.link.Guards[pc]; isGuard {
		stub := v.link.Guards[pc]
		// Exit taken: no evidence consumed.
		extend(brExit, nil, s.walkState(ins.Target, cursor, loopCtx))
		// Continue: falls into the logging B (which consumes); gated.
		if p, have := s.peek(cursor); have && p.Src == stub.RecordAddr {
			extend(brConsume, nil, s.walkState(next, cursor, loopCtx))
		}
	} else if ins.Kind() == isa.KindCall {
		s.call(key, pc, next, ins.Target, cursor, loopCtx, extend)
	} else {
		s.note(ReasonUnexplained, pc, "internal: evaluate at non-node %#x", pc)
	}

	s.evalStack = s.evalStack[:len(s.evalStack)-1]
	e.visiting = false
}

// call evaluates a call node: callee outcomes compose with continuations.
func (s *summarizer) call(key nodeKey, pc, retSite, callee uint32, cursor int, loopCtx loopMap,
	extend func(uint8, *outcome, []*outcome)) {
	couts := s.walkState(callee, cursor, nil)
	for _, co := range couts {
		switch co.kind {
		case exitHalt:
			// The program ended inside the callee.
			extend(brCallHalt, co, []*outcome{{kind: exitHalt, cursor: co.cursor}})
		case exitLeaf:
			extend(brCall, co, s.walkState(retSite, co.cursor, loopCtx))
		case exitRet:
			if co.retDst == retSite {
				extend(brCall, co, s.walkState(retSite, co.cursor, loopCtx))
			} else {
				s.noteAttack(ReasonROP, pc, "return destination %#x != call-site successor %#x (ROP)", co.retDst, retSite)
			}
		}
	}
}

// reconstruct runs the worklist fixed-point search over packets and, on
// acceptance, materializes the witness path.
func (v *Verifier) reconstruct(packets []trace.Packet) *Verdict {
	img := v.link.Image
	entryPC, err := img.EntryAddr()
	if err != nil {
		return &Verdict{OK: false, Code: ReasonBadImage, Detail: fmt.Sprintf("golden image has no entry: %v", err), Packets: len(packets)}
	}
	s := &summarizer{
		v:       v,
		packets: packets,
		memo:    make(map[nodeKey]*entry),
		advMemo: make(map[nodeKey]advState),
		inDirty: make(map[nodeKey]bool),
		cache:   v.opts.cache,
		segCap:  uint64(len(img.Code)) + 16,
		debug:   v.opts.debug,
	}

	fail := func(code ReasonCode, detail string, pc uint32) *Verdict {
		return &Verdict{
			OK: false, Code: code, Detail: detail, FailPC: pc,
			Packets: len(packets), Instrs: s.work, Passes: int(s.evals),
		}
	}

	// Seed the graph, then drain the dirty queue to the fixed point.
	s.walkState(entryPC, 0, nil)
	for len(s.dirty) > 0 && !s.aborted {
		key := s.dirty[0]
		s.dirty = s.dirty[1:]
		delete(s.inDirty, key)
		if e := s.memo[key]; e != nil {
			s.evaluate(key, e)
		}
	}
	if s.aborted {
		return fail(ReasonWorkBudget, fmt.Sprintf("verification exceeded the %d-instruction work budget", v.opts.maxInstrs), 0)
	}

	outs := s.walkState(entryPC, 0, nil)
	for _, o := range outs {
		if o.cursor != len(packets) {
			continue
		}
		switch o.kind {
		case exitHalt, exitLeaf:
			return s.materialize(entryPC, o)
		case exitRet:
			if o.retDst == retToHaltSentinel {
				return s.materialize(entryPC, o)
			}
		}
	}
	code, detail := ReasonUnexplained, "no benign path explains the evidence"
	if s.firstReason != "" {
		code = s.firstCode
		detail = "no benign path explains the evidence; first contradiction: " + s.firstReason
	}
	return fail(code, detail, s.firstPC)
}
