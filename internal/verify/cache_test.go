// Fast-path tests: a cache-backed Verifier must produce verdicts
// indistinguishable from an uncached one — on genuine and tampered
// evidence alike — while actually sharing work across sessions.
package verify_test

import (
	"fmt"
	"sync"
	"testing"

	"raptrack/internal/asm"
	"raptrack/internal/attest"
	"raptrack/internal/cfa"
	"raptrack/internal/cpu"
	"raptrack/internal/linker"
	"raptrack/internal/mem"
	"raptrack/internal/trace"
	"raptrack/internal/verify"
)

// attestedSession is like attested but keeps everything a Verify call
// needs: the challenge, the signed report chain, and the signing key.
func attestedSession(t *testing.T, prog *asm.Program) (*linker.Output, attest.Authenticator, attest.Challenge, []*attest.Report) {
	t.Helper()
	out, err := linker.Link(prog, linker.DefaultOptions())
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	key, err := attest.GenerateHMACKey()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := cfa.New(cfa.Config{Link: out, Mem: mem.New(), Signer: key})
	if err != nil {
		t.Fatal(err)
	}
	chal, err := attest.NewChallenge(prog.Name)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Begin(chal); err != nil {
		t.Fatal(err)
	}
	c, err := cpu.New(eng.CPUConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(0); err != nil {
		t.Fatalf("run: %v", err)
	}
	reports, err := eng.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return out, key, chal, reports
}

// tamperCorpus derives a family of genuine and manipulated streams that
// exercise accept, missing-evidence, malformed and attack verdicts.
func tamperCorpus(pkts []trace.Packet) [][]trace.Packet {
	cp := func(ps []trace.Packet) []trace.Packet { return append([]trace.Packet(nil), ps...) }
	corpus := [][]trace.Packet{
		cp(pkts),              // genuine
		pkts[:len(pkts)-1],    // dropped tail
		pkts[1:],              // dropped head
		append(cp(pkts), pkts[len(pkts)-1]), // injected duplicate
		nil,                   // empty
	}
	m := cp(pkts)
	m[0].Src = 0x1234_5678 // unknown source
	corpus = append(corpus, m)
	m = cp(pkts)
	m[len(m)/2].Dst ^= 0x40 // corrupted destination mid-stream
	corpus = append(corpus, m)
	return corpus
}

func sameVerdict(t *testing.T, i int, want, got *verify.Verdict) {
	t.Helper()
	if want.OK != got.OK || want.Code != got.Code {
		t.Fatalf("stream %d: verdict diverged: want (ok=%v code=%v), got (ok=%v code=%v)",
			i, want.OK, want.Code, got.OK, got.Code)
	}
	if want.Transfers != got.Transfers || want.PacketsUsed != got.PacketsUsed ||
		want.LoopsReplayed != got.LoopsReplayed {
		t.Fatalf("stream %d: stats diverged: want %+v, got %+v", i, want, got)
	}
	if len(want.Path) != len(got.Path) {
		t.Fatalf("stream %d: path length %d != %d", i, len(got.Path), len(want.Path))
	}
	for j := range want.Path {
		if want.Path[j] != got.Path[j] {
			t.Fatalf("stream %d: path[%d] = %+v, want %+v", i, j, got.Path[j], want.Path[j])
		}
	}
}

// TestCacheEquivalence replays a corpus through an uncached Verifier and
// a cache-backed one (twice, so the second pass runs on hits): verdicts,
// reason codes, witness paths and evidence statistics must agree exactly.
func TestCacheEquivalence(t *testing.T) {
	out, pkts := attested(t, richProgram())
	plain := newVerifier(out)
	cache := verify.NewCache(1 << 20)
	cached := plain.With(verify.WithCache(cache))

	corpus := tamperCorpus(pkts)
	for round := 0; round < 2; round++ {
		for i, stream := range corpus {
			want := plain.ReplayPackets(stream)
			got := cached.ReplayPackets(stream)
			sameVerdict(t, i, want, got)
		}
	}
	st := cache.Stats()
	if st.Hits == 0 {
		t.Error("second pass produced no cache hits")
	}
	if st.Entries == 0 || st.Bytes == 0 {
		t.Errorf("cache reports no occupancy: %+v", st)
	}
}

// TestVerdictCacheHit exercises the whole-stream verdict memo through the
// authenticated Verify path: the second session with identical evidence
// must return the same verdict and register a hit.
func TestVerdictCacheHit(t *testing.T) {
	out, key, chal, reports := attestedSession(t, richProgram())
	cache := verify.NewCache(1 << 20)
	v := verify.New(out, key, verify.WithCache(cache))

	first, err := v.Verify(chal, reports)
	if err != nil {
		t.Fatal(err)
	}
	if !first.OK {
		t.Fatalf("rejected: %s", first.Reason())
	}
	if len(first.Evidence) == 0 {
		t.Fatal("accepted verdict carries no evidence stream")
	}
	before := cache.Stats().Hits
	second, err := v.Verify(chal, reports)
	if err != nil {
		t.Fatal(err)
	}
	sameVerdict(t, 0, first, second)
	if len(second.Evidence) != len(first.Evidence) {
		t.Error("cache hit lost the evidence stream")
	}
	if cache.Stats().Hits <= before {
		t.Error("repeated Verify did not hit the verdict cache")
	}
}

// TestCacheEviction forces a tiny budget against a stream family with
// many distinct loop states (each a distinct cache key): the cache must
// evict rather than grow, and correctness must not depend on residency.
func TestCacheEviction(t *testing.T) {
	out, pkts := attested(t, richProgram())
	plain := newVerifier(out)
	cache := verify.NewCache(8 << 10) // 512 bytes per shard
	cached := plain.With(verify.WithCache(cache))

	var secall uint32
	for a := range out.Loops {
		secall = a
	}
	if secall == 0 {
		t.Fatal("no logged loop")
	}
	li := findPacket(t, pkts, func(p trace.Packet) bool { return p.Src == secall })
	for k := uint32(0); k < 64; k++ {
		stream := append([]trace.Packet(nil), pkts...)
		stream[li].Dst += k // k extra iterations: a fresh loop state
		sameVerdict(t, int(k), plain.ReplayPackets(stream), cached.ReplayPackets(stream))
	}
	st := cache.Stats()
	if st.Evictions == 0 {
		t.Errorf("tiny cache never evicted: %+v", st)
	}
	if st.Bytes > 8<<10 {
		t.Errorf("cache exceeded its byte budget: %+v", st)
	}
}

// TestCacheConcurrent hammers one shared cache from many goroutines with
// mixed genuine/tampered streams (run under -race): every verdict must
// match the uncached baseline.
func TestCacheConcurrent(t *testing.T) {
	out, pkts := attested(t, richProgram())
	plain := newVerifier(out)
	cache := verify.NewCache(1 << 20)
	cached := plain.With(verify.WithCache(cache))

	corpus := tamperCorpus(pkts)
	baseline := make([]*verify.Verdict, len(corpus))
	for i, stream := range corpus {
		baseline[i] = plain.ReplayPackets(stream)
	}

	const goroutines, rounds = 8, 6
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (g + r) % len(corpus)
				vd := cached.ReplayPackets(corpus[i])
				want := baseline[i]
				if vd.OK != want.OK || vd.Code != want.Code || vd.Transfers != want.Transfers {
					errs <- fmt.Errorf("stream %d: concurrent verdict diverged: ok=%v code=%v transfers=%d",
						i, vd.OK, vd.Code, vd.Transfers)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestWithDerivation checks that With produces an independent Verifier:
// the parent keeps its configuration, and the derived one actually uses
// the override.
func TestWithDerivation(t *testing.T) {
	out, pkts := attested(t, richProgram())
	v := newVerifier(out)
	if v.Cache() != nil {
		t.Fatal("fresh verifier unexpectedly has a cache")
	}
	c := verify.NewCache(0)
	vc := v.With(verify.WithCache(c))
	if vc.Cache() != c {
		t.Fatal("derived verifier did not adopt the cache")
	}
	if v.Cache() != nil {
		t.Fatal("With mutated its receiver")
	}
	tiny := v.With(verify.WithMaxInstrs(10))
	if vd := tiny.ReplayPackets(pkts); vd.OK || vd.Code != verify.ReasonWorkBudget {
		t.Fatalf("derived budget not applied: %+v", vd)
	}
	if vd := v.ReplayPackets(pkts); !vd.OK {
		t.Fatalf("parent affected by derivation: %s", vd.Reason())
	}
}

// TestReasonCodeClassification pins the code assigned to each canonical
// rejection class.
func TestReasonCodeClassification(t *testing.T) {
	out, pkts := attested(t, richProgram())
	v := newVerifier(out)

	cp := func(ps []trace.Packet) []trace.Packet { return append([]trace.Packet(nil), ps...) }

	rop := cp(pkts)
	i := findPacket(t, rop, func(p trace.Packet) bool {
		s := out.Stubs[p.Src]
		return s != nil && s.Class.String() == "return" && p.Dst != 0xffff_fffe
	})
	rop[i].Dst = out.Image.Symbols["main"] + 8
	if vd := v.ReplayPackets(rop); vd.OK || vd.Code != verify.ReasonROP {
		t.Errorf("ROP stream: code=%v detail=%q", vd.Code, vd.Detail)
	}

	jop := cp(pkts)
	i = findPacket(t, jop, func(p trace.Packet) bool {
		s := out.Stubs[p.Src]
		return s != nil && s.Class.String() == "icall"
	})
	jop[i].Dst = out.Image.Symbols["helper"] + 2
	if vd := v.ReplayPackets(jop); vd.OK || vd.Code != verify.ReasonJOP {
		t.Errorf("JOP stream: code=%v detail=%q", vd.Code, vd.Detail)
	}

	if vd := v.ReplayPackets(pkts[:len(pkts)-1]); vd.OK || vd.Code == verify.ReasonNone {
		t.Errorf("truncated stream: code=%v", vd.Code)
	}

	if got := verify.ReasonROP.String(); got != "rop" {
		t.Errorf("ReasonROP.String() = %q", got)
	}
	if verify.ReasonCode(200).Valid() {
		t.Error("out-of-range code reported valid")
	}
	if !verify.ReasonNone.Valid() {
		t.Error("ReasonNone reported invalid")
	}
}
