package automaton

import (
	"raptrack/internal/speccfa"
	"raptrack/internal/trace"
)

// The admissibility index answers, per evidence packet, whether ANY row
// of the compiled table could ever consume it. A packet no row can take
// is a static contradiction: an accepting walk must consume the whole
// stream, so its mere presence makes every extension of the prefix dead.
// StreamDecoder screens each fed packet against the index, which is what
// turns an authentic-but-fabricated edge (a compromised device signing
// evidence of a transfer the program cannot make) into an immediate
// StreamDead alarm instead of a whole-walk fallback — the walk's own
// NoPath proof is usually unavailable once its checkpoint ring has
// dropped an alternative.
//
// Soundness: the index over-approximates consumability. For each
// evidence-consuming opcode it admits the union of destinations any
// instance could match — exact static targets (opCond/opCondFwd), every
// call-site successor plus the halt sentinel (opRet), the function-entry
// policy set (opICall), the containing function range (opIJump), and any
// destination at all for trip-count records (opLoopLog). Admissible
// therefore never understates the walk; inadmissible is a proof.

// admitEntry is the destination admission set for one record (source)
// address, unioned over every row consuming that record.
type admitEntry struct {
	exact  map[uint32]struct{} // static taken targets
	any    bool                // opLoopLog: destination is trip evidence
	ret    bool                // opRet: any call-site successor / sentinel
	entry  bool                // opICall: any function entry
	ranges [][2]uint32         // opIJump: containing function [lo, hi)
}

// admitIndex is the dictionary-independent packet screen for one
// compiled core, built lazily on first streaming use.
type admitIndex struct {
	recs     map[uint32]*admitEntry
	retSites map[uint32]struct{}
}

func (c *core) admitIndex() *admitIndex {
	c.admitOnce.Do(func() {
		idx := &admitIndex{
			recs:     make(map[uint32]*admitEntry),
			retSites: map[uint32]struct{}{retToHaltSentinel: {}},
		}
		at := func(rec uint32) *admitEntry {
			e := idx.recs[rec]
			if e == nil {
				e = &admitEntry{exact: make(map[uint32]struct{})}
				idx.recs[rec] = e
			}
			return e
		}
		for i := range c.nodes {
			n := &c.nodes[i]
			switch n.op {
			case opCond, opCondFwd:
				at(n.record).exact[n.target] = struct{}{}
			case opRet:
				at(n.record).ret = true
			case opICall:
				at(n.record).entry = true
				idx.retSites[n.next] = struct{}{}
			case opIJump:
				at(n.record).ranges = append(at(n.record).ranges, [2]uint32{n.lo, n.hi})
			case opLoopLog:
				at(n.record).any = true
			case opCall:
				idx.retSites[n.next] = struct{}{}
			}
		}
		c.admit = idx
	})
	return c.admit
}

// Admissible reports whether some row of the table could consume p. In
// marker mode (a dictionary is bound) marker-range packets are admitted
// iff the dictionary defines their path id — their expansion is screened
// when the expanded packets are walked, not here.
func (m *Machine) Admissible(p trace.Packet) bool {
	if p.Src >= speccfa.MarkerBase {
		return m.dict.Len() > 0 && m.markers[p.Src&0xff] != nil
	}
	idx := m.core.admitIndex()
	e := idx.recs[p.Src]
	if e == nil {
		return false
	}
	if e.any || e.entry && m.core.isEntry(p.Dst) {
		return true
	}
	if _, ok := e.exact[p.Dst]; ok {
		return true
	}
	if e.ret {
		if _, ok := idx.retSites[p.Dst]; ok {
			return true
		}
	}
	for _, r := range e.ranges {
		if p.Dst >= r[0] && p.Dst < r[1] {
			return true
		}
	}
	return false
}
