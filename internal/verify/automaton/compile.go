package automaton

import (
	"fmt"
	"sort"
	"unsafe"

	"raptrack/internal/cfg"
	"raptrack/internal/isa"
	"raptrack/internal/linker"
	"raptrack/internal/speccfa"
)

// op is the lowered opcode of one table row. The zero value is opBad so
// gap rows (interiors of 4-byte instructions, unpopulated addresses)
// contradict any derivation that lands on them — mirroring the
// interpreter's "not an instruction" and "path leaves program code"
// prunes.
type op uint8

const (
	opBad      op = iota // gap / unlinked branch / secure call: prune
	opNone               // folded deterministic run: jump to next
	opDirect             // direct branch: emit edge, jump to target
	opCond               // presence-encoded conditional (non-loop / loop-back)
	opCondFwd            // forward-loop continue-logging branch: must consume
	opGuard              // forward-loop guard: exit to target or continue
	opRet                // monitored return: consume, match caller site
	opLeafRet            // deterministic BX LR: return via frame stack
	opHalt               // HLT: accept iff the stream is exhausted
	opCall               // direct call: push frame
	opICall              // indirect call: consume, JOP policy, push frame
	opIJump              // indirect jump: consume, range policy
	opLoopCond           // optimized-loop controlling branch: replay trips
	opLoopLog            // loop-condition SECALL: consume, seed the trip slot
)

// node flags.
const (
	nfStatic    uint8 = 1 << iota // opLoopCond: static loop (trips precomputed)
	nfStaticBad                   // opLoopCond: static trip precompute failed
	nfFwd                         // opLoopCond: forward (while-style) loop
)

// node is one table row. Successor addresses stay in the image address
// space (the decode loop re-indexes), so rows double as their own
// diagnostic anchor and folded runs can land anywhere.
type node struct {
	op     op
	flags  uint8
	slot   uint16 // opLoopCond/opLoopLog: frame-local loop register
	cost   uint32 // abstract instructions charged per visit (folded length)
	record uint32 // evidence source address this row consumes/matches
	target uint32 // taken / jump / call destination
	next   uint32 // fall-through / call-return successor
	lo, hi uint32 // opIJump: containing function range [lo, hi)
	trips  uint64 // opLoopCond: precomputed static trip count
	loop   *cfg.Loop
	first  *firstInfo // opCall: callee's first-consumption summary
}

// firstInfo is a callee's first-consumption summary: every record
// address whose packet some derivation through the function consumes
// first (an over-approximation), and whether some derivation returns or
// halts without consuming at all. The decode loop and the take lookahead
// prune calls whose callee provably cannot progress against the pending
// packet — this is what keeps recursive programs tractable: a
// self-recursive call faced with a foreign packet dies at depth one
// instead of recursing to the frame cap.
type firstInfo struct {
	eps  bool
	recs []uint32
}

func (f *firstInfo) admits(src uint32) bool {
	for _, r := range f.recs {
		if r == src {
			return true
		}
	}
	return false
}

const nodeBytes = int(unsafe.Sizeof(node{}))

// maxLoopSlots bounds the per-frame loop register file; real images have a
// handful of optimized loops, so hitting this means a pathological input.
const maxLoopSlots = 4096

// Compile lowers the linked artifact and binds dict (nil compiles a plain
// automaton usable on already-expanded streams). The error cases — no
// entry point, loop register overflow — leave the caller on the
// interpreter, which reports them through its own verdicts.
func Compile(link *linker.Output, dict *speccfa.Dictionary) (*Machine, error) {
	img := link.Image
	entry, err := img.EntryAddr()
	if err != nil {
		return nil, fmt.Errorf("automaton: %w", err)
	}
	if len(img.Order) == 0 {
		return nil, fmt.Errorf("automaton: empty image")
	}
	base := img.Base
	last := img.Order[len(img.Order)-1]
	limit := last + img.Code[last].Size()
	if limit <= base || (limit-base)&1 != 0 {
		return nil, fmt.Errorf("automaton: malformed image bounds [%#x, %#x)", base, limit)
	}

	// One loop register per controlling-branch address, shared image-wide:
	// the register file is per frame, so two functions using the same slot
	// index never collide. Deterministic assignment (sorted addresses)
	// keeps recompiles stable.
	slotAddrs := make([]uint32, 0, len(link.LoopConds)+len(link.Loops))
	seen := make(map[uint32]bool, len(link.LoopConds))
	for pc := range link.LoopConds {
		if !seen[pc] {
			seen[pc] = true
			slotAddrs = append(slotAddrs, pc)
		}
	}
	for _, ls := range link.Loops {
		if !seen[ls.CondAddr] {
			seen[ls.CondAddr] = true
			slotAddrs = append(slotAddrs, ls.CondAddr)
		}
	}
	if len(slotAddrs) > maxLoopSlots {
		return nil, fmt.Errorf("automaton: %d loop registers exceed %d", len(slotAddrs), maxLoopSlots)
	}
	sort.Slice(slotAddrs, func(i, j int) bool { return slotAddrs[i] < slotAddrs[j] })
	slotOf := make(map[uint32]uint16, len(slotAddrs))
	for i, pc := range slotAddrs {
		slotOf[pc] = uint16(i)
	}

	c := &core{
		base:   base,
		limit:  limit,
		entry:  entry,
		nodes:  make([]node, (limit-base)>>1),
		slots:  len(slotAddrs),
		segCap: uint64(len(img.Code)) + 16,
	}
	c.entries = make([]uint64, (len(c.nodes)+63)/64)

	// Lower every instruction with the interpreter's dispatch precedence:
	// Sites, then Guards, then LoopConds, then Loops, then the raw kind.
	for _, pc := range img.Order {
		ins := img.Code[pc]
		next := pc + ins.Size()
		nd := node{cost: 1, next: next}
		if site, ok := link.Sites[pc]; ok {
			switch site.Class {
			case cfg.ClassCondNonLoop, cfg.ClassCondLoopBack:
				nd.op = opCond
				nd.record = site.RecordAddr
				nd.target = site.StaticTarget
			case cfg.ClassCondLoopFwd:
				nd.op = opCondFwd
				nd.record = site.RecordAddr
				nd.target = site.StaticTarget
			case cfg.ClassIndirectCall:
				nd.op = opICall
				nd.record = site.RecordAddr
			case cfg.ClassReturn:
				nd.op = opRet
				nd.record = site.RecordAddr
			case cfg.ClassIndirectJump:
				nd.op = opIJump
				nd.record = site.RecordAddr
				if fr, okr := img.FuncRanges[site.Func]; okr {
					nd.lo, nd.hi = fr.Base, fr.Limit
				} else {
					nd.lo, nd.hi = 1, 0 // empty range: every target escapes
				}
			default:
				nd.op = opBad
			}
		} else if stub, ok := link.Guards[pc]; ok {
			nd.op = opGuard
			nd.record = stub.RecordAddr
			nd.target = ins.Target
		} else if ls, ok := link.LoopConds[pc]; ok {
			nd.op = opLoopCond
			nd.slot = slotOf[pc]
			nd.target = ins.Target
			if ls.Loop.Forward {
				nd.flags |= nfFwd
			}
			if ls.Loop.Static {
				nd.flags |= nfStatic
				if trips, terr := ls.Loop.TripCount(uint32(ls.Loop.EntryValue)); terr == nil {
					nd.trips = trips
				} else {
					nd.flags |= nfStaticBad
				}
			}
		} else if ls, ok := link.Loops[pc]; ok {
			nd.op = opLoopLog
			nd.record = pc
			nd.slot = slotOf[ls.CondAddr]
			nd.loop = ls.Loop
		} else {
			switch ins.Kind() {
			case isa.KindNone:
				nd.op = opNone
			case isa.KindDirect:
				nd.op = opDirect
				nd.target = ins.Target
			case isa.KindCall:
				nd.op = opCall
				nd.target = ins.Target
			case isa.KindReturn:
				nd.op = opLeafRet
			case isa.KindHalt:
				nd.op = opHalt
			default:
				// Secure calls and unlinked non-deterministic branches
				// contradict any derivation (opBad), as in the interpreter.
				nd.op = opBad
			}
		}
		c.nodes[(pc-base)>>1] = nd
		c.states++
	}

	// Fold deterministic runs: an opNone row chains directly to the row
	// its run ends at, accumulating the skipped instruction cost. Walking
	// addresses in descending order folds each suffix exactly once
	// (KindNone always falls through to a higher address).
	for i := len(img.Order) - 1; i >= 0; i-- {
		pc := img.Order[i]
		nd := &c.nodes[(pc-base)>>1]
		if nd.op != opNone {
			continue
		}
		if nd.next < base || nd.next >= limit || (nd.next-base)&1 != 0 {
			continue
		}
		if tn := &c.nodes[(nd.next-base)>>1]; tn.op == opNone {
			nd.cost += tn.cost
			nd.next = tn.next
			c.states--
		}
	}

	for name, fr := range img.FuncRanges {
		if name == linker.MTBARFunc {
			continue
		}
		if fr.Base >= base && fr.Base < limit && (fr.Base-base)&1 == 0 {
			i := (fr.Base - base) >> 1
			c.entries[i>>6] |= 1 << (i & 63)
		}
	}

	computeFirst(c)

	c.pool.New = func() any { return newDecodeState() }
	m := &Machine{core: c, dict: dict}
	m.bindDict()
	return m, nil
}

// computeFirst runs the FIRST-set fixed point over the lowered table and
// attaches each opCall row's callee summary. Every rule over-approximates
// (a superset of the evidence a derivation could consume first is always
// sound to prune against); if the fixed point fails to converge within
// the sweep cap the summaries are simply not attached.
func computeFirst(c *core) {
	n := len(c.nodes)
	rowOf := func(addr uint32) int {
		if addr < c.base || addr >= c.limit || (addr-c.base)&1 != 0 {
			return -1
		}
		return int((addr - c.base) >> 1)
	}

	recIdx := make(map[uint32]int)
	for i := range c.nodes {
		switch c.nodes[i].op {
		case opCond, opCondFwd, opGuard, opRet, opICall, opIJump, opLoopLog:
			if _, ok := recIdx[c.nodes[i].record]; !ok {
				recIdx[c.nodes[i].record] = len(recIdx)
			}
		}
	}
	words := (len(recIdx) + 63) / 64
	if words == 0 {
		words = 1
	}
	bits := make([]uint64, n*words)
	eps := make([]bool, n)

	// orInto unions row src's set into dst, reporting growth.
	orInto := func(dst, src int) bool {
		grew := false
		db, sb := bits[dst*words:(dst+1)*words], bits[src*words:(src+1)*words]
		for w := range db {
			if nv := db[w] | sb[w]; nv != db[w] {
				db[w] = nv
				grew = true
			}
		}
		if eps[src] && !eps[dst] {
			eps[dst] = true
			grew = true
		}
		return grew
	}
	setRec := func(row int, rec uint32) bool {
		bi := recIdx[rec]
		w, m := row*words+bi/64, uint64(1)<<(bi%64)
		if bits[w]&m == 0 {
			bits[w] |= m
			return true
		}
		return false
	}
	setEps := func(row int) bool {
		if !eps[row] {
			eps[row] = true
			return true
		}
		return false
	}
	orRow := func(dst int, addr uint32) bool {
		if s := rowOf(addr); s >= 0 {
			return orInto(dst, s)
		}
		return false
	}

	converged := false
	for sweep := 0; sweep < 256; sweep++ {
		changed := false
		for i := n - 1; i >= 0; i-- {
			nd := &c.nodes[i]
			switch nd.op {
			case opNone, opDirect:
				succ := nd.next
				if nd.op == opDirect {
					succ = nd.target
				}
				changed = orRow(i, succ) || changed
			case opCond:
				changed = setRec(i, nd.record) || changed
				changed = orRow(i, nd.next) || changed
			case opGuard:
				changed = setRec(i, nd.record) || changed
				changed = orRow(i, nd.target) || changed
			case opCondFwd, opRet, opICall, opIJump, opLoopLog:
				changed = setRec(i, nd.record) || changed
			case opLeafRet, opHalt:
				changed = setEps(i) || changed
			case opCall:
				if t := rowOf(nd.target); t >= 0 {
					tb := bits[t*words : (t+1)*words]
					db := bits[i*words : (i+1)*words]
					for w := range db {
						if nv := db[w] | tb[w]; nv != db[w] {
							db[w] = nv
							changed = true
						}
					}
					if eps[t] {
						changed = orRow(i, nd.next) || changed
					}
				}
			case opLoopCond:
				// Conservative: a non-consuming body re-reaches this row
				// with a decremented register, so both directions can be
				// the path to the first consumption.
				if nd.flags&nfStatic != 0 && nd.flags&nfStaticBad == 0 {
					changed = orRow(i, nd.target) || changed
					changed = orRow(i, nd.next) || changed
				}
			}
		}
		if !changed {
			converged = true
			break
		}
	}
	if !converged {
		return
	}

	// Materialize one shared summary per distinct call target.
	recOf := make([]uint32, len(recIdx))
	for rec, bi := range recIdx {
		recOf[bi] = rec
	}
	summaries := make(map[int]*firstInfo)
	for i := range c.nodes {
		nd := &c.nodes[i]
		if nd.op != opCall {
			continue
		}
		t := rowOf(nd.target)
		if t < 0 {
			continue
		}
		fi, ok := summaries[t]
		if !ok {
			fi = &firstInfo{eps: eps[t]}
			tb := bits[t*words : (t+1)*words]
			for bi, rec := range recOf {
				if tb[bi/64]&(1<<(bi%64)) != 0 {
					fi.recs = append(fi.recs, rec)
				}
			}
			summaries[t] = fi
		}
		nd.first = fi
	}
}
