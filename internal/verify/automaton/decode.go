package automaton

import (
	"raptrack/internal/isa"
	"raptrack/internal/speccfa"
	"raptrack/internal/trace"
)

// Decode caps. Frame and backtrack overflows yield StatusFallback (the
// interpreter's memoization handles unbounded recursion and pathological
// ambiguity); they are engine limits, not evidence judgments. The
// backtrack budget is deliberately small: a stream that speculation
// cannot settle quickly is recursion-shaped, and the tabulating rescue
// pass (summarize.go) resolves those in polynomial time instead.
const (
	maxFrames          = 8192
	maxBacktracks      = 64
	maxLiveCheckpoints = 1024
	trailCompactMin    = 8192
	maxExpanded        = 1 << 24 // mirrors speccfa.Decompress

	// streamMaxBacktracks caps a stream-mode walk far below the batch
	// budget. The streaming walk is advisory — a fallback only costs the
	// per-slice walk-backed judgment (the admissibility screen keeps
	// running, and Seal re-decodes with the full budget and the rescue
	// pass) — so burning the whole budget on recursion-shaped evidence
	// would buy nothing and the session would pay for the doomed walk
	// twice: once streaming, once at Seal.
	streamMaxBacktracks = 8
)

// Decode runs the automaton over an already-expanded packet stream.
// pathCap > 0 bounds the recorded witness edges (<= 0 disables recording,
// making an accept fully allocation-free); maxWork bounds the abstract
// instructions charged, exceeding it falls back.
func (m *Machine) Decode(packets []trace.Packet, pathCap int, maxWork uint64) (Result, Status) {
	return m.run(packets, false, pathCap, maxWork)
}

// DecodeCompressed decodes a SpecCFA-compressed stream directly, opening
// marker packets through the bound dictionary's precomputed jump tables
// instead of materializing the expanded stream first. Expansion-limit and
// unknown-marker conditions replicate speccfa.Decompress exactly and
// surface as StatusFallback (the interpreter pipeline reports them as
// errors).
func (m *Machine) DecodeCompressed(packets []trace.Packet, pathCap int, maxWork uint64) (Result, Status) {
	return m.run(packets, m.dict.Len() > 0, pathCap, maxWork)
}

func (m *Machine) run(stream []trace.Packet, expand bool, pathCap int, maxWork uint64) (Result, Status) {
	d := m.core.pool.Get().(*decodeState)
	d.oracle = nil
	res, st := d.decode(m, stream, expand, pathCap, maxWork)
	if st == StatusFallback && res.Work < maxWork && !d.rd.failed {
		// Speculation exhausted its budget without contradiction-exhausting
		// the space: recursion-shaped evidence. Tabulate the stream into a
		// choice oracle and replay it through the same evidence-checked
		// loop (see summarize.go; a failed rescue stays a fallback).
		if pk, okx := expandStream(m, stream, expand); okx {
			if bits, w, oks := d.sum.summarize(m.core, pk, maxWork-res.Work); oks {
				prior := res
				d.oracle = bits
				res, st = d.decode(m, stream, expand, pathCap, maxWork-prior.Work-w)
				res.Work += prior.Work + w
				res.Steps += prior.Steps
				res.Backtracks += prior.Backtracks
				if st == StatusAccept {
					m.counters.noteRescue()
				}
			}
		}
	}
	m.core.pool.Put(d)
	m.counters.noteDecode(st, res.Steps, res.Backtracks)
	return res, st
}

// loopSlot is one frame-local optimized-loop register: the remaining
// continue count of an entered loop. gen tags the last undo-trail interval
// that recorded the slot's prior value (see trailSlot).
type loopSlot struct {
	rem    uint64
	gen    uint64
	active bool
}

// trailEntry is one undo record. pop entries restore a popped frame
// (old.rem carries the return address); slot entries restore a loop
// register.
type trailEntry struct {
	idx int32
	pop bool
	old loopSlot
}

// readerMark is a restorable evidence-cursor position.
type readerMark struct {
	i         int
	subOff    int
	delivered int
	subRem    uint32
}

// evReader is a virtual cursor over the (possibly compressed) evidence:
// in expand mode, marker packets open into their dictionary sub-path,
// replicated subRem times, without materializing the expansion.
type evReader struct {
	stream    []trace.Packet
	markers   *[speccfa.MaxPaths][]trace.Packet
	sub       []trace.Packet // open marker sub-path (nil: reading stream)
	i         int            // stream position
	subOff    int            // position within sub
	subRem    uint32         // remaining sub repetitions (incl. current)
	delivered int            // packets consumed (expanded count)
	expand    bool
	failed    bool // unknown marker or expansion overflow: decode must fall back
}

// peek returns the next packet without consuming it. ok == false means
// end of stream — unless failed was set, which poisons the whole decode
// (the same stream makes Decompress error, so no alternative can save it).
func (r *evReader) peek() (trace.Packet, bool) {
	if r.sub != nil {
		return r.sub[r.subOff], true
	}
	for r.i < len(r.stream) {
		p := r.stream[r.i]
		if !r.expand || p.Src < speccfa.MarkerBase {
			return p, true
		}
		sub := r.markers[p.Src&0xff]
		if sub == nil {
			r.failed = true
			return trace.Packet{}, false
		}
		total := uint64(p.Dst) * uint64(len(sub))
		if uint64(r.delivered)+total > maxExpanded {
			r.failed = true
			return trace.Packet{}, false
		}
		if p.Dst == 0 {
			r.i++
			continue
		}
		r.sub, r.subOff, r.subRem = sub, 0, p.Dst
		return sub[0], true
	}
	return trace.Packet{}, false
}

// advance consumes the packet last returned by peek.
func (r *evReader) advance() {
	r.delivered++
	if r.sub == nil {
		r.i++
		return
	}
	r.subOff++
	if r.subOff == len(r.sub) {
		r.subOff = 0
		r.subRem--
		if r.subRem == 0 {
			r.sub = nil
			r.i++
		}
	}
}

func (r *evReader) mark() readerMark {
	return readerMark{i: r.i, subOff: r.subOff, delivered: r.delivered, subRem: r.subRem}
}

func (r *evReader) restore(mk readerMark) {
	r.i, r.subOff, r.delivered, r.subRem = mk.i, mk.subOff, mk.delivered, mk.subRem
	if mk.subRem > 0 {
		r.sub = r.markers[r.stream[mk.i].Src&0xff]
	} else {
		r.sub = nil
	}
}

// checkpoint records one unexplored speculative alternative: resume at pc
// with the snapshotted cursor/frame/register/witness extents, emitting
// edge first when emitEdge is set (a guard's exit transfer).
type checkpoint struct {
	pc        uint32
	emitEdge  bool
	edge      Edge
	mark      readerMark
	frames    int
	trail     int
	edges     int
	blindLow  int
	transfers uint64
	loops     uint64
	nonProd   uint64
}

// decodeState is the pooled scratch for one decode: all buffers are
// reused across decodes on the same core, so the loop allocates nothing
// once warm.
type decodeState struct {
	c  *core
	rd evReader

	// framesBuf/arenaBuf are explicit backings (length tracked
	// separately): undo writes may target indexes beyond the current
	// logical length, so growth always copies the full backing.
	framesBuf []uint32
	framesLen int
	arenaBuf  []loopSlot
	arenaLen  int
	slots     int

	trail  []trailEntry
	cps    []checkpoint
	cpHead int
	edges  []Edge
	sum    summarizer // pooled tabulation scratch for the rescue pass

	// blindLow is the lowest framesLen reached since the last progress
	// event (packet consumed, loop register mutated, or choice point
	// opened). framesLen - blindLow counts frames pushed blindly: with no
	// progress the walk is a deterministic pushdown run on fixed input, so
	// a blind chain longer than the state count must repeat a call row
	// with an identical continuation — unbounded descent, pruned. (This is
	// what stops a non-matching conditional from falling through into
	// recursion forever; nonProd cannot, because calls are frame motion.)
	blindLow int

	// oracle, when non-nil, replaces speculation: each choice point
	// (matching conditional, gated guard) consumes one bit instead of
	// checkpointing, so the walk is linear and allocation-free. Bits come
	// from the tabulating rescue pass; every evidence check still runs, so
	// a wrong oracle ends in a fallback, never an unsound accept.
	oracle    []uint8
	oraclePos int

	gen       uint64 // current undo-trail interval (monotonic across decodes)
	committed bool   // ring overflow or backjump dropped an alternative

	// streamMode suspends instead of deciding whenever the walk runs off
	// the end of the evidence: the stream is a growing prefix (see
	// StreamDecoder) and the missing packet may arrive in a later slice.
	// pausePC/pauseEOS record where to resume — the row about to consume
	// (row execution is idempotent up to its first consume, which is
	// exactly where the pause fired), or the end-of-stream accept check.
	streamMode bool
	pausePC    uint32
	pauseEOS   bool

	pathCap                                            int
	maxWork                                            uint64
	work, steps, nonProd, transfers, loops, backtracks uint64
}

func newDecodeState() *decodeState {
	return &decodeState{
		framesBuf: make([]uint32, 64),
		trail:     make([]trailEntry, 0, 256),
		cps:       make([]checkpoint, 0, 256),
		edges:     make([]Edge, 0, 256),
	}
}

func (d *decodeState) reset(m *Machine, stream []trace.Packet, expand bool, pathCap int, maxWork uint64) {
	c := m.core
	d.c = c
	d.rd = evReader{stream: stream, markers: &m.markers, expand: expand}
	d.slots = c.slots
	d.framesLen = 1 // root frame (no return address; slot registers only)
	d.framesBuf[0] = 0
	if c.slots > len(d.arenaBuf) {
		d.arenaBuf = make([]loopSlot, c.slots*2)
	}
	d.gen++ // stale register gens from prior decodes can never match
	for i := 0; i < c.slots; i++ {
		d.arenaBuf[i] = loopSlot{}
	}
	d.arenaLen = c.slots
	d.trail = d.trail[:0]
	d.cps = d.cps[:0]
	d.cpHead = 0
	d.edges = d.edges[:0]
	// Oracle replays have no alternatives to exhaust: any contradiction is
	// a fallback (the oracle was wrong), never an authoritative no-path.
	d.committed = d.oracle != nil
	d.oraclePos = 0
	d.streamMode = false
	d.pausePC = 0
	d.pauseEOS = false
	d.blindLow = 1
	d.pathCap = pathCap
	d.maxWork = maxWork
	d.work, d.steps, d.nonProd = 0, 0, 0
	d.transfers, d.loops, d.backtracks = 0, 0, 0
}

func (d *decodeState) emit(e Edge) {
	d.transfers++
	if d.pathCap > 0 && len(d.edges) < d.pathCap {
		d.edges = append(d.edges, e)
	}
}

// trailSlot records arenaBuf[i]'s value before its first mutation in the
// current interval (between the newest live checkpoint and now). Later
// same-interval mutations need no record: rewinding restores the interval
// entry state in one step.
func (d *decodeState) trailSlot(i int) {
	if len(d.cps) == d.cpHead {
		return // no live checkpoint: nothing can rewind past here
	}
	sl := &d.arenaBuf[i]
	if sl.gen == d.gen {
		return
	}
	d.trail = append(d.trail, trailEntry{idx: int32(i), old: *sl})
	sl.gen = d.gen
}

func (d *decodeState) pushFrame(ret uint32) bool {
	if d.framesLen >= maxFrames {
		return false
	}
	if d.framesLen == len(d.framesBuf) {
		nb := make([]uint32, len(d.framesBuf)*2)
		copy(nb, d.framesBuf)
		d.framesBuf = nb
	}
	d.framesBuf[d.framesLen] = ret
	d.framesLen++
	newLen := d.framesLen * d.slots
	if newLen > len(d.arenaBuf) {
		nb := make([]loopSlot, newLen*2)
		copy(nb, d.arenaBuf)
		d.arenaBuf = nb
	}
	for i := d.arenaLen; i < newLen; i++ {
		d.trailSlot(i)
		d.arenaBuf[i] = loopSlot{gen: d.arenaBuf[i].gen}
	}
	d.arenaLen = newLen
	return true
}

func (d *decodeState) popFrame() uint32 {
	d.framesLen--
	ret := d.framesBuf[d.framesLen]
	if len(d.cps) > d.cpHead {
		d.trail = append(d.trail, trailEntry{idx: int32(d.framesLen), pop: true, old: loopSlot{rem: uint64(ret)}})
	}
	d.arenaLen = d.framesLen * d.slots
	if d.framesLen < d.blindLow {
		d.blindLow = d.framesLen
	}
	return ret
}

func (d *decodeState) pushCP(cp checkpoint) {
	if len(d.cps)-d.cpHead >= maxLiveCheckpoints {
		// Commit the oldest alternative. Exhausting the stack can now only
		// mean fallback, never an authoritative no-path.
		d.cpHead++
		d.committed = true
	}
	if d.cpHead > 1024 && d.cpHead*2 > len(d.cps) {
		n := copy(d.cps, d.cps[d.cpHead:])
		d.cps = d.cps[:n]
		d.cpHead = 0
	}
	d.cps = append(d.cps, cp)
	d.blindLow = d.framesLen // a choice point restarts the blind segment
	d.gen++
	d.compactTrail()
}

// compactTrail drops the dead prefix: entries below the oldest live
// checkpoint's mark can never be rewound.
func (d *decodeState) compactTrail() {
	min := len(d.trail)
	if d.cpHead < len(d.cps) {
		min = d.cps[d.cpHead].trail
	}
	if min < trailCompactMin {
		return
	}
	n := copy(d.trail, d.trail[min:])
	d.trail = d.trail[:n]
	for i := d.cpHead; i < len(d.cps); i++ {
		d.cps[i].trail -= min
	}
}

// backtrack rewinds to the newest checkpoint and returns its resume pc.
func (d *decodeState) backtrack() (uint32, bool) {
	if len(d.cps) == d.cpHead {
		return 0, false
	}
	d.backtracks++
	cp := d.cps[len(d.cps)-1]
	d.cps = d.cps[:len(d.cps)-1]
	return d.rewindTo(&cp), true
}

// backjump rewinds to the OLDEST live checkpoint, discarding every newer
// one. Fired when speculation dove into blind recursion: the mistaken
// guess is the shallowest open choice (each deeper alternative replays
// the same dive under it), so oldest-first converges in O(depth) flips
// where newest-first re-explores the dive exponentially. Discarded
// alternatives mark the decode committed — exhausting the stack after a
// backjump means fallback, never an authoritative no-path.
func (d *decodeState) backjump() (uint32, bool) {
	if len(d.cps) == d.cpHead {
		return 0, false
	}
	d.backtracks++
	cp := d.cps[d.cpHead]
	if len(d.cps)-d.cpHead > 1 {
		d.committed = true
	}
	d.cps = d.cps[:d.cpHead]
	return d.rewindTo(&cp), true
}

// rewindTo replays the undo trail back to cp and restores its snapshot.
func (d *decodeState) rewindTo(cp *checkpoint) uint32 {
	for len(d.trail) > cp.trail {
		te := d.trail[len(d.trail)-1]
		d.trail = d.trail[:len(d.trail)-1]
		if te.pop {
			// Undo a pop: later entries (already processed, LIFO) have
			// restored everything above this frame.
			d.framesLen = int(te.idx) + 1
			d.framesBuf[te.idx] = uint32(te.old.rem)
			d.arenaLen = d.framesLen * d.slots
		} else {
			d.arenaBuf[te.idx] = te.old
		}
	}
	d.framesLen = cp.frames
	d.arenaLen = cp.frames * d.slots
	d.blindLow = cp.blindLow
	d.edges = d.edges[:cp.edges]
	d.transfers = cp.transfers
	d.loops = cp.loops
	d.nonProd = cp.nonProd
	d.rd.restore(cp.mark)
	d.gen++
	if cp.emitEdge {
		d.emit(cp.edge)
	}
	return cp.pc
}

func (d *decodeState) snapshot(resume uint32) checkpoint {
	return checkpoint{
		pc:        resume,
		mark:      d.rd.mark(),
		frames:    d.framesLen,
		trail:     len(d.trail),
		edges:     len(d.edges),
		blindLow:  d.blindLow,
		transfers: d.transfers,
		loops:     d.loops,
		nonProd:   d.nonProd,
	}
}

func (d *decodeState) result() Result {
	return Result{Work: d.work, Steps: d.steps, Backtracks: d.backtracks}
}

// statusPaused is the internal fourth outcome of a stream-mode walk: the
// current branch needs evidence that has not arrived. It never escapes
// the package — StreamDecoder translates it into "prefix still viable".
const statusPaused Status = 0xff

// pause suspends a stream-mode walk at pc (see decodeState.streamMode).
// The row's entry accounting (steps, work, non-progress) is undone: the
// resume re-executes the row from the top, and the sealed counters must
// describe each visit once, exactly as a batch walk over the whole
// stream would. Undoing nonProd also keeps the cycle prune honest — a
// row paused across many slices is suspended, not looping.
func (d *decodeState) pause(pc uint32) (Result, Status) {
	if pc >= d.c.base && pc < d.c.limit && (pc-d.c.base)&1 == 0 {
		n := &d.c.nodes[(pc-d.c.base)>>1]
		d.steps--
		d.work -= uint64(n.cost)
		d.nonProd--
	}
	d.pausePC = pc
	d.pauseEOS = false
	return d.result(), statusPaused
}

// eosOutcome evaluates a completion point: the frame structure admits
// termination here, so the walk accepts iff the stream is exhausted.
// settled == false means unconsumed evidence remains and the caller must
// prune this branch. A stream-mode walk pauses instead of accepting — the
// next slice may extend the evidence, and this completion point is
// re-evaluated on resume.
func (d *decodeState) eosOutcome() (Result, Status, bool) {
	if _, more := d.rd.peek(); more {
		return Result{}, 0, false
	}
	if d.rd.failed {
		return d.result(), StatusFallback, true
	}
	if d.streamMode {
		d.pauseEOS = true
		return d.result(), statusPaused, true
	}
	res := d.result()
	res.Transfers = d.transfers
	res.LoopsReplayed = d.loops
	res.PacketsUsed = d.rd.delivered
	if d.pathCap > 0 {
		res.Path = append([]Edge(nil), d.edges...)
	}
	return res, StatusAccept, true
}

// pruneStep abandons the current branch: rewind to the newest unexplored
// alternative, or settle the decode when none remain. done == true
// carries the terminal outcome; otherwise npc is the resume pc.
func (d *decodeState) pruneStep() (npc uint32, res Result, st Status, done bool) {
	if d.backtracks >= maxBacktracks || (d.streamMode && d.backtracks >= streamMaxBacktracks) {
		return 0, d.result(), StatusFallback, true
	}
	if npc, ok := d.backtrack(); ok {
		return npc, Result{}, 0, false
	}
	if d.committed {
		return 0, d.result(), StatusFallback, true
	}
	return 0, d.result(), StatusNoPath, true
}

// oracleNext consumes the next replay choice bit. Exhaustion answers
// false — the replay then contradicts and falls back, as with any other
// oracle mismatch.
func (d *decodeState) oracleNext() bool {
	if d.oraclePos >= len(d.oracle) {
		return false
	}
	b := d.oracle[d.oraclePos]
	d.oraclePos++
	return b != 0
}

// takeDead reports whether consuming the matching conditional packet and
// jumping to target provably contradicts the packet after it: the
// deterministic continuation (followed through leaf-return pops against
// the live frame stack, stopping at any choice point or call) reaches an
// evidence-consuming row whose record the next packet cannot satisfy.
// Killing such takes before checkpointing them is pure pruning — the
// branch would die within these same steps — but it is what keeps
// recursive programs tractable: presence-encoded conditionals in a
// self-recursive function match the packets of every deeper instance,
// and without the lookahead each doomed leaf guess costs a checkpoint
// and a backtrack tower.
func (d *decodeState) takeDead(target uint32) bool {
	c := d.c
	mk := d.rd.mark()
	d.rd.advance()
	p2, ok2 := d.rd.peek()
	d.rd.restore(mk)
	if d.rd.failed {
		return false // poisoned stream: let the main loop report fallback
	}
	if d.streamMode && !ok2 {
		// The lookahead ran off the unsealed stream: the packet it would
		// have contradicted may simply not have arrived yet, so nothing is
		// provably dead. (Every kill below judges the take against p2.)
		return false
	}
	vf := d.framesLen
	q := target
	for step := 0; step < 64; step++ {
		if q < c.base || q >= c.limit || (q-c.base)&1 != 0 {
			return true
		}
		n := &c.nodes[(q-c.base)>>1]
		switch n.op {
		case opNone:
			q = n.next
		case opDirect:
			q = n.target
		case opLeafRet:
			if vf == 1 {
				return ok2 // root leaf: accept requires stream exhaustion
			}
			vf--
			q = d.framesBuf[vf]
		case opRet:
			if !ok2 || p2.Src != n.record {
				return true
			}
			if vf == 1 {
				return p2.Dst != retToHaltSentinel
			}
			return p2.Dst != d.framesBuf[vf-1]
		case opCondFwd:
			return !ok2 || p2.Src != n.record || p2.Dst != n.target
		case opICall:
			return !ok2 || p2.Src != n.record || !c.isEntry(p2.Dst)
		case opIJump:
			return !ok2 || p2.Src != n.record || p2.Dst < n.lo || p2.Dst >= n.hi
		case opLoopLog:
			return !ok2 || p2.Src != n.record
		case opHalt:
			return ok2 // accept requires stream exhaustion
		case opBad:
			return true
		case opCall:
			f := n.first
			if f == nil {
				return false
			}
			if !ok2 {
				return !f.eps
			}
			if f.eps {
				return false
			}
			return !f.admits(p2.Src)
		default:
			// opCond/opGuard (choice) or opLoopCond (register-dependent):
			// outcome unknown.
			return false
		}
	}
	return false
}

// decode is the speculative table walk. See the package comment for the
// soundness contract; every evidence check below mirrors one check in
// verify's advance/evaluate, in the same order.
func (d *decodeState) decode(m *Machine, stream []trace.Packet, expand bool, pathCap int, maxWork uint64) (Result, Status) {
	d.reset(m, stream, expand, pathCap, maxWork)
	return d.run(d.c.entry, false)
}

// run executes the walk from pc (or from a suspended end-of-stream accept
// check when atEOS is set — the StreamDecoder resume path; batch decodes
// always enter at the automaton entry). It returns a terminal status, or
// statusPaused in stream mode with the resume point latched in
// pausePC/pauseEOS.
func (d *decodeState) run(pc uint32, atEOS bool) (Result, Status) {
	c := d.c
	base, limit := c.base, c.limit
	if atEOS {
		res, st, settled := d.eosOutcome()
		if settled {
			return res, st
		}
		npc, pres, pst, done := d.pruneStep()
		if done {
			return pres, pst
		}
		pc = npc
	}

	for {
		if pc < base || pc >= limit || (pc-base)&1 != 0 {
			goto prune
		}
		{
			n := &c.nodes[(pc-base)>>1]
			d.steps++
			d.work += uint64(n.cost)
			if d.work > d.maxWork {
				return d.result(), StatusFallback
			}
			// A row revisited with no consumed packet, loop-register
			// change, or frame motion since the last progress event is an
			// exact state repeat: the branch loops forever, so it admits no
			// completion and pruning it is sound.
			d.nonProd++
			if d.nonProd > c.segCap {
				goto prune
			}

			switch n.op {
			case opNone:
				pc = n.next
				continue

			case opDirect:
				d.emit(Edge{Src: pc, Dst: n.target, Kind: isa.KindDirect})
				pc = n.target
				continue

			case opCond:
				// Presence-encoded conditional: consume-first speculation.
				// The taken direction requires the matching packet (source
				// AND static destination, as in evaluate); the fall-through
				// is always structurally possible.
				p, ok := d.rd.peek()
				if ok && p.Src == n.record && p.Dst == n.target {
					if d.oracle != nil {
						if !d.oracleNext() {
							pc = n.next
							continue
						}
					} else {
						if d.takeDead(n.target) {
							pc = n.next
							continue
						}
						if d.rd.failed {
							return d.result(), StatusFallback
						}
						d.pushCP(d.snapshot(n.next))
					}
					d.rd.advance()
					d.nonProd = 0
					d.blindLow = d.framesLen
					d.emit(Edge{Src: pc, Dst: n.target, Kind: isa.KindCond})
					pc = n.target
					continue
				}
				if !ok {
					if d.rd.failed {
						return d.result(), StatusFallback
					}
					if d.streamMode {
						// A matching packet may yet arrive; the fall-through
						// guess must not be locked in before the evidence is.
						return d.pause(pc)
					}
				}
				pc = n.next
				continue

			case opCondFwd:
				// Forward-loop continue-logging branch: must consume.
				p, ok := d.rd.peek()
				if d.rd.failed {
					return d.result(), StatusFallback
				}
				if !ok {
					if d.streamMode {
						return d.pause(pc)
					}
					goto prune
				}
				if p.Src != n.record || p.Dst != n.target {
					goto prune
				}
				d.rd.advance()
				d.nonProd = 0
				d.blindLow = d.framesLen
				d.emit(Edge{Src: pc, Dst: n.target, Kind: isa.KindCond})
				pc = n.target
				continue

			case opGuard:
				// Forward-loop guard: continue-first (into the logging
				// branch, which consumes), exit checkpointed. Without the
				// gating packet only the exit exists.
				p, ok := d.rd.peek()
				if ok && p.Src == n.record {
					if d.oracle != nil {
						if d.oracleNext() {
							pc = n.next
							continue
						}
						d.emit(Edge{Src: pc, Dst: n.target, Kind: isa.KindCond})
						pc = n.target
						continue
					}
					cp := d.snapshot(n.target)
					cp.emitEdge = true
					cp.edge = Edge{Src: pc, Dst: n.target, Kind: isa.KindCond}
					d.pushCP(cp)
					pc = n.next
					continue
				}
				if !ok {
					if d.rd.failed {
						return d.result(), StatusFallback
					}
					if d.streamMode {
						// The gating packet may arrive in a later slice:
						// committing to the exit now would be a guess.
						return d.pause(pc)
					}
				}
				d.emit(Edge{Src: pc, Dst: n.target, Kind: isa.KindCond})
				pc = n.target
				continue

			case opRet:
				p, ok := d.rd.peek()
				if d.rd.failed {
					return d.result(), StatusFallback
				}
				if !ok {
					if d.streamMode {
						return d.pause(pc)
					}
					goto prune
				}
				if p.Src != n.record {
					goto prune
				}
				if d.framesLen == 1 {
					// Root return: accepted iff it returns to the CPU's
					// halt sentinel and exhausts the stream.
					if p.Dst != retToHaltSentinel {
						goto prune
					}
					d.rd.advance()
					d.emit(Edge{Src: pc, Dst: p.Dst, Kind: isa.KindReturn})
					goto eosCheck
				}
				if p.Dst != d.framesBuf[d.framesLen-1] {
					goto prune // ROP: destination != call-site successor
				}
				d.rd.advance()
				d.nonProd = 0
				d.emit(Edge{Src: pc, Dst: p.Dst, Kind: isa.KindReturn})
				pc = d.popFrame()
				d.blindLow = d.framesLen
				continue

			case opLeafRet:
				if d.framesLen == 1 {
					// Deterministic return through the pristine LR: the
					// destination is the halt sentinel.
					d.emit(Edge{Src: pc, Dst: retToHaltSentinel, Kind: isa.KindReturn})
					goto eosCheck
				}
				ret := d.popFrame()
				d.nonProd = 0
				d.emit(Edge{Src: pc, Dst: ret, Kind: isa.KindReturn})
				pc = ret
				continue

			case opHalt:
				goto eosCheck

			case opCall:
				if n.first != nil {
					// The callee's first consumption must be able to take
					// the pending packet (or the callee must be able to
					// return without consuming).
					if p, ok := d.rd.peek(); ok {
						if !n.first.eps && !n.first.admits(p.Src) {
							goto prune
						}
					} else {
						if d.rd.failed {
							return d.result(), StatusFallback
						}
						if d.streamMode {
							// Whether the callee's first consumption can take
							// the next packet is not yet decidable.
							return d.pause(pc)
						}
						if !n.first.eps {
							goto prune
						}
					}
				}
				if d.oracle == nil && d.framesLen-d.blindLow > d.c.states {
					goto divePrune // blind recursion: unbounded descent
				}
				d.emit(Edge{Src: pc, Dst: n.target, Kind: isa.KindCall})
				if !d.pushFrame(n.next) {
					return d.result(), StatusFallback
				}
				d.nonProd = 0
				pc = n.target
				continue

			case opICall:
				p, ok := d.rd.peek()
				if d.rd.failed {
					return d.result(), StatusFallback
				}
				if !ok {
					if d.streamMode {
						return d.pause(pc)
					}
					goto prune
				}
				if p.Src != n.record {
					goto prune
				}
				if !c.isEntry(p.Dst) {
					goto prune // JOP: target is not a function entry
				}
				d.rd.advance()
				d.nonProd = 0
				d.blindLow = d.framesLen
				d.emit(Edge{Src: pc, Dst: p.Dst, Kind: isa.KindIndirectCall})
				if !d.pushFrame(n.next) {
					return d.result(), StatusFallback
				}
				pc = p.Dst
				continue

			case opIJump:
				p, ok := d.rd.peek()
				if d.rd.failed {
					return d.result(), StatusFallback
				}
				if !ok {
					if d.streamMode {
						return d.pause(pc)
					}
					goto prune
				}
				if p.Src != n.record {
					goto prune
				}
				if p.Dst < n.lo || p.Dst >= n.hi {
					goto prune // escape: jump leaves the function
				}
				d.rd.advance()
				d.nonProd = 0
				d.blindLow = d.framesLen
				d.emit(Edge{Src: pc, Dst: p.Dst, Kind: isa.KindIndirectJump})
				pc = p.Dst // a non-instruction target lands on an opBad row
				continue

			case opLoopCond:
				si := (d.framesLen-1)*d.slots + int(n.slot)
				sl := &d.arenaBuf[si]
				if !sl.active {
					// Fresh entry: only static loops carry an implicit
					// context; a dynamic loop reached without its SECALL
					// contradicts (prune).
					if n.flags&nfStatic == 0 || n.flags&nfStaticBad != 0 {
						goto prune
					}
					d.trailSlot(si)
					sl.active, sl.rem = true, n.trips
					d.loops++
				} else {
					d.trailSlot(si)
				}
				taken := false
				if n.flags&nfFwd != 0 {
					if sl.rem == 0 {
						taken = true
						sl.active = false
					} else {
						sl.rem--
					}
				} else {
					if sl.rem > 0 {
						taken = true
						sl.rem--
					} else {
						sl.active = false
					}
				}
				d.nonProd = 0
				d.blindLow = d.framesLen
				if taken {
					d.emit(Edge{Src: pc, Dst: n.target, Kind: isa.KindCond})
					pc = n.target
				} else {
					pc = n.next
				}
				continue

			case opLoopLog:
				p, ok := d.rd.peek()
				if d.rd.failed {
					return d.result(), StatusFallback
				}
				if !ok {
					if d.streamMode {
						return d.pause(pc)
					}
					goto prune
				}
				if p.Src != n.record {
					goto prune
				}
				trips, err := n.loop.TripCount(p.Dst)
				if err != nil {
					goto prune // invalid trip evidence (malformed)
				}
				si := (d.framesLen-1)*d.slots + int(n.slot)
				d.trailSlot(si)
				d.arenaBuf[si] = loopSlot{rem: trips, gen: d.arenaBuf[si].gen, active: true}
				d.loops++
				d.rd.advance()
				d.nonProd = 0
				d.blindLow = d.framesLen
				pc = n.next
				continue

			default: // opBad: gap, unlinked branch, secure call
				goto prune
			}
		}

	eosCheck:
		// Frame structure admits completion here; accepted iff the stream
		// is exhausted (every packet explained).
		{
			res, st, settled := d.eosOutcome()
			if settled {
				return res, st
			}
			goto prune
		}

	prune:
	divePrune:
		// Dead branch (divePrune: blind recursion — flip the oldest open
		// guess, see backjump): rewind to the newest alternative or settle.
		{
			npc, res, st, done := d.pruneStep()
			if done {
				return res, st
			}
			pc = npc
			continue
		}
	}
}

// retToHaltSentinel mirrors verify's halt sentinel: the CPU's initial LR
// with the Thumb bit cleared, as the hardware records it.
const retToHaltSentinel = 0xffff_fffe
