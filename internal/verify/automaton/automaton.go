// Package automaton compiles a linked RAP-Track artifact (the per-app CFG
// with its trampoline/stub metadata) plus a SpecCFA sub-path dictionary
// into a flat, table-driven path automaton, and decodes evidence streams
// against it with a zero-allocation speculative loop.
//
// # Why a table
//
// The interpretive reconstruction in package verify re-walks the image
// graph per packet: every step consults four address-keyed maps (Sites,
// Guards, LoopConds, Loops) before the instruction itself, and every frame
// outcome flows through a memoized fixed point built from heap-allocated
// outcome nodes. All of that dispatch is static — it depends only on the
// golden image — so it is paid once here, at compile time: each
// instruction address lowers to one dense table entry whose opcode already
// encodes the site class, the evidence source it must match, its
// taken/fall-through successors and its loop binding. Runs of
// deterministic instructions (plain ALU ops ending in the next decision
// point) fold into a single entry carrying the accumulated instruction
// cost, so the decode loop touches exactly one table row per decision
// rather than one per instruction.
//
// # Soundness contract
//
// The decoder is a sound-accept fast path, not a second authority:
//
//   - It explores exactly the derivations the interpreter's pushdown
//     search admits — every evidence check (conditional presence
//     encoding, return/ROP matching, JOP entry policy, indirect-jump
//     range policy, loop trip replay) is replicated bit-for-bit — so an
//     accept is a validated benign derivation carrying a complete witness
//     path. When recursive evidence admits several benign derivations the
//     witness may interleave recursion levels differently than the
//     interpreter's materialization, but it covers the same edge multiset
//     (the differential conformance suite pins this invariant).
//   - On ANY other outcome — contradictions exhausted, caps or budget
//     exceeded, unknown dictionary marker, expansion overflow — it
//     returns a non-accept status and the caller re-runs the interpreter,
//     which renders the authoritative verdict. Reject, Inconclusive,
//     error and budget verdicts are therefore identical to the
//     interpreter's by construction.
//
// Speculation uses consume-first checkpointing: at a presence-encoded
// conditional whose next packet matches, the taken (consuming) direction
// is followed and a checkpoint records the fall-through alternative;
// contradictions rewind through an undo trail. The checkpoint stack is a
// bounded ring — overflow commits the oldest alternative, which can only
// convert a would-be reject into a fallback, never an unsound accept.
package automaton

import (
	"sync"
	"sync/atomic"
	"time"

	"raptrack/internal/isa"
	"raptrack/internal/speccfa"
	"raptrack/internal/trace"
)

// Edge is one reconstructed control transfer (mirrors verify.Edge, which
// aliases this type to avoid an import cycle).
type Edge struct {
	Src, Dst uint32
	Kind     isa.BranchKind
}

// Status classifies one decode attempt.
type Status uint8

const (
	// StatusAccept: the stream is a complete benign derivation; Result
	// carries the witness. The only status with verdict authority.
	StatusAccept Status = iota
	// StatusNoPath: every speculative alternative contradicted the
	// evidence. The caller must re-run the interpreter, which renders the
	// (bit-identical) reject with its diagnostic notes.
	StatusNoPath
	// StatusFallback: the decoder gave up without exhausting the space —
	// work budget, frame/backtrack caps, committed checkpoints lost to
	// ring overflow, or a dictionary condition (unknown marker, expansion
	// overflow) that the interpreter pipeline reports as an error.
	StatusFallback
)

func (s Status) String() string {
	switch s {
	case StatusAccept:
		return "accept"
	case StatusNoPath:
		return "no-path"
	case StatusFallback:
		return "fallback"
	}
	return "invalid"
}

// Result is the witness of one accepted decode.
type Result struct {
	Path          []Edge // recorded transfers, capped at the caller's path cap
	Transfers     uint64 // all transfers on the accepted path (not capped)
	LoopsReplayed uint64 // optimized-loop trip counts applied
	PacketsUsed   int    // packets consumed (expanded count in marker mode)
	Work          uint64 // abstract instructions charged against the budget
	Steps         uint64 // table rows visited
	Backtracks    uint64 // checkpoints rewound
}

// Stats describes one compiled table (size metrics for observability).
type Stats struct {
	States     int   // populated table rows (decision points after folding)
	Rows       int   // total table rows (dense address space / 2)
	TableBytes int64 // resident size of the transition table
	LoopSlots  int   // optimized-loop registers per frame
	DictPaths  int   // dictionary sub-paths bound as precomputed jumps
}

// Counters aggregates decode/compile activity across recompiles: a
// gateway attaches one Counters per app so DICT-bump recompiles (which
// produce fresh Machines) keep the exported metrics monotonic.
type Counters struct {
	Decodes      atomic.Uint64
	Accepts      atomic.Uint64
	NoPaths      atomic.Uint64
	Fallbacks    atomic.Uint64
	Rescues      atomic.Uint64 // accepts recovered by the tabulating rescue pass
	Steps        atomic.Uint64
	Backtracks   atomic.Uint64
	Compiles     atomic.Uint64
	CompileNanos atomic.Uint64
}

func (c *Counters) noteRescue() {
	if c != nil {
		c.Rescues.Add(1)
	}
}

// NoteCompile records one table (re)compilation that took d. Compilation
// happens outside the Machine (the caller times Compile/WithDictionary),
// so this is the caller-facing half of the counter block.
func (c *Counters) NoteCompile(d time.Duration) {
	if c != nil {
		c.Compiles.Add(1)
		c.CompileNanos.Add(uint64(d.Nanoseconds()))
	}
}

func (c *Counters) noteDecode(st Status, steps, backtracks uint64) {
	if c == nil {
		return
	}
	c.Decodes.Add(1)
	switch st {
	case StatusAccept:
		c.Accepts.Add(1)
	case StatusNoPath:
		c.NoPaths.Add(1)
	default:
		c.Fallbacks.Add(1)
	}
	c.Steps.Add(steps)
	c.Backtracks.Add(backtracks)
}

// Machine is one compiled automaton: the dictionary-independent transition
// core plus the marker jump tables of one bound dictionary. Machines are
// immutable and safe for concurrent decodes; WithDictionary rebinds share
// the core, so a DICT version bump recompiles in O(dictionary) time.
type Machine struct {
	core     *core
	dict     *speccfa.Dictionary
	markers  [speccfa.MaxPaths][]trace.Packet
	counters *Counters
}

// core is the dictionary-independent compiled table (see compile.go), plus
// the shared pool of decode scratch states.
type core struct {
	base    uint32
	limit   uint32
	entry   uint32
	nodes   []node
	entries []uint64 // bitset over rows: function-entry policy (JOP)
	slots   int      // loop registers per frame
	segCap  uint64   // visits without progress before a cycle prune
	states  int      // populated rows, for Stats

	pool sync.Pool // *decodeState

	// admit is the lazily built packet-admissibility screen (admit.go);
	// dictionary recompiles share it through the shared core.
	admitOnce sync.Once
	admit     *admitIndex
}

// Dictionary returns the bound dictionary (nil when compiled without one).
func (m *Machine) Dictionary() *speccfa.Dictionary { return m.dict }

// SetCounters attaches the persistent counter block decode activity is
// reported to (nil detaches). Returns m for chaining.
func (m *Machine) SetCounters(c *Counters) *Machine {
	m.counters = c
	return m
}

// Counters returns the attached counter block (nil when detached).
func (m *Machine) Counters() *Counters { return m.counters }

// WithCounters returns a Machine reporting decode activity to c, sharing
// the compiled core and dictionary binding (m itself when already
// attached). Unlike SetCounters it never mutates m, so it is safe on a
// machine other goroutines are decoding with.
func (m *Machine) WithCounters(c *Counters) *Machine {
	if m.counters == c {
		return m
	}
	nm := *m
	nm.counters = c
	return &nm
}

// Stats sizes the compiled table.
func (m *Machine) Stats() Stats {
	return Stats{
		States:     m.core.states,
		Rows:       len(m.core.nodes),
		TableBytes: int64(len(m.core.nodes))*int64(nodeBytes) + int64(len(m.core.entries))*8,
		LoopSlots:  m.core.slots,
		DictPaths:  m.dict.Len(),
	}
}

// WithDictionary returns a Machine decoding against dict, sharing the
// compiled core. Passing the already-bound dictionary returns m itself.
func (m *Machine) WithDictionary(dict *speccfa.Dictionary) *Machine {
	if dict == m.dict {
		return m
	}
	nm := &Machine{core: m.core, dict: dict, counters: m.counters}
	nm.bindDict()
	return nm
}

func (m *Machine) bindDict() {
	for _, sp := range m.dict.Paths() {
		m.markers[sp.ID] = sp.Packets
	}
}

// isEntry reports whether addr is a function entry (indirect-call policy).
func (c *core) isEntry(addr uint32) bool {
	if addr < c.base || addr >= c.limit || (addr-c.base)&1 != 0 {
		return false
	}
	i := (addr - c.base) >> 1
	return c.entries[i>>6]&(1<<(i&63)) != 0
}
