package automaton

import "raptrack/internal/trace"

// StreamStatus classifies the viability of a growing evidence prefix.
type StreamStatus uint8

const (
	// StreamViable: at least one benign derivation is consistent with the
	// prefix so far (or the walk is suspended awaiting more evidence on
	// such a derivation). The authoritative verdict still requires Seal.
	StreamViable StreamStatus = iota
	// StreamDead: every speculative alternative contradicted evidence that
	// has already arrived. Each contradiction is against packets in hand,
	// so NO extension of the prefix can be accepted — an early, sound
	// compromise alarm (the sealed whole-stream verdict renders the
	// authoritative code and detail).
	StreamDead
	// StreamFallback: the incremental walk gave up (backtrack/frame/work
	// limits, dropped alternatives, expansion failure) without exhausting
	// the space. Prefix checking is unavailable for the rest of the
	// session; only Seal decides.
	StreamFallback
)

func (s StreamStatus) String() string {
	switch s {
	case StreamViable:
		return "viable"
	case StreamDead:
		return "dead"
	default:
		return "fallback"
	}
}

// StreamDecoder is a resumable prefix walk over a growing evidence
// stream: a streaming Verifier feeds it the packets of each slice as it
// arrives and learns immediately whether any benign derivation is still
// consistent with the prefix. Internally it is the exact speculative
// decode of Machine.Decode run in stream mode — same tables, same
// checkpoint ring, same loop registers and undo trail — except that
// running off the end of the evidence suspends the walk (latching the
// resume point) instead of deciding, and the lookahead pruner never
// judges against packets that have not arrived.
//
// Soundness of the early alarm: a stream-mode walk only prunes a branch
// against evidence already in hand (a mismatching packet, a structural
// contradiction, or a provably non-productive cycle), never against the
// missing suffix — those sites pause instead. StreamDead therefore means
// every derivation of every extension is contradicted. Conversely the
// decoder never renders an accept: completion points pause until Seal, so
// verdict authority stays with the sealed whole-stream verification.
//
// A StreamDecoder is single-session scratch: not safe for concurrent use.
// The decode state is borrowed from the core's shared pool on first use
// and returned the moment the walk settles or seals, so honest streamed
// sessions reuse the same warmed buffers batch decodes do — a session
// abandoned mid-stream simply lets the garbage collector reclaim its
// loan. Packets handed to Feed are retained.
type StreamDecoder struct {
	m    *Machine
	d    *decodeState // nil before the first walk and after release
	pkts []trace.Packet

	pathCap int
	maxWork uint64
	expand  bool

	// admitPk/admitOK are a direct-mapped cache of recently admitted
	// packets: evidence streams are loop-dominated, so the same few
	// (src, dst) pairs recur and the per-packet screen can skip the
	// admissibility index lookups almost every time. Negative results are
	// never cached — an inadmissible packet settles the decoder for good.
	admitPk [64]trace.Packet
	admitOK [64]bool

	started bool
	sealed  bool
	settled bool // reached a terminal status
	res     Result
	st      Status
}

// Stream starts a resumable prefix walk. The decoder consumes the stream
// exactly as DecodeCompressed would: marker packets are opened through the
// bound dictionary when one is attached, so the caller feeds the raw
// (possibly compressed) CFLog packets of each slice. pathCap and maxWork
// carry Decode's meaning; maxWork bounds the whole session's walk.
func (m *Machine) Stream(pathCap int, maxWork uint64) *StreamDecoder {
	return &StreamDecoder{
		m:       m,
		pathCap: pathCap,
		maxWork: maxWork,
		expand:  m.dict.Len() > 0,
	}
}

// acquire borrows a warmed decode state from the core's pool and resets
// it over the packets accumulated so far.
func (s *StreamDecoder) acquire() {
	s.d = s.m.core.pool.Get().(*decodeState)
	s.d.oracle = nil
	s.d.reset(s.m, s.pkts, s.expand, s.pathCap, s.maxWork)
}

// release returns the borrowed decode state. Safe once the walk has
// settled: Result copies its witness path out of the state on accept.
func (s *StreamDecoder) release() {
	if s.d != nil {
		s.m.core.pool.Put(s.d)
		s.d = nil
	}
}

// Feed appends the slice's packets and advances the walk until it either
// suspends on missing evidence (StreamViable) or settles. Feeding after a
// dead status returns it unchanged.
//
// Every incoming packet is first screened against the admissibility
// index (admit.go): a packet no table row could ever consume is a static
// contradiction, so the decoder settles StreamDead immediately — the
// walk itself often cannot render that proof once its checkpoint ring
// has dropped an alternative. The screen outlives the walk: after a
// fallback the decoder keeps screening each slice (the index needs no
// walk state), so a hijacked edge still raises the early alarm even on
// evidence the speculative walk gave up on.
func (s *StreamDecoder) Feed(pk []trace.Packet) StreamStatus {
	if s.sealed || (s.settled && s.st == StatusNoPath) {
		return s.Status()
	}
	s.pkts = append(s.pkts, pk...)
	for _, p := range pk {
		h := (p.Src ^ p.Dst*0x9e3779b1) & 63
		if s.admitOK[h] && s.admitPk[h] == p {
			continue
		}
		if s.m.Admissible(p) {
			s.admitPk[h], s.admitOK[h] = p, true
			continue
		}
		if !s.settled {
			s.settled = true
			if s.d != nil {
				s.res = s.d.result()
			}
		}
		s.st = StatusNoPath
		s.release()
		return s.Status()
	}
	if s.settled { // fallback: the walk is done, only the screen runs
		return s.Status()
	}
	if !s.started {
		s.started = true
		s.acquire()
		s.d.streamMode = true
		s.step(s.m.core.entry, false)
		return s.Status()
	}
	if len(pk) == 0 {
		return s.Status()
	}
	// The stream is append-only, so every checkpointed reader mark (an
	// index into it) survives the extension; only the backing slice moves.
	s.d.rd.stream = s.pkts
	s.step(s.d.pausePC, s.d.pauseEOS)
	return s.Status()
}

// Seal marks the end of the evidence and runs the walk to a terminal
// status with batch semantics — from here on a missing packet is a
// missing packet, so suspended decision points resolve exactly as
// Machine.Decode would on the whole stream.
func (s *StreamDecoder) Seal() (Result, Status) {
	if s.settled {
		return s.res, s.st
	}
	s.sealed = true
	if !s.started {
		s.started = true
		s.acquire()
		s.step(s.m.core.entry, false)
	} else {
		s.d.streamMode = false
		s.step(s.d.pausePC, s.d.pauseEOS)
	}
	return s.res, s.st
}

func (s *StreamDecoder) step(pc uint32, atEOS bool) {
	res, st := s.d.run(pc, atEOS)
	if st != statusPaused {
		s.settled = true
		s.res, s.st = res, st
		s.release()
	}
}

// Status reports the current prefix viability.
func (s *StreamDecoder) Status() StreamStatus {
	if !s.settled {
		return StreamViable
	}
	switch s.st {
	case StatusNoPath:
		return StreamDead
	case StatusAccept:
		return StreamViable // only reachable after Seal
	default:
		return StreamFallback
	}
}

// Packets returns the total packets fed so far (compressed count when a
// dictionary is bound).
func (s *StreamDecoder) Packets() int { return len(s.pkts) }

// Evidence returns the accumulated packet stream. After a sealed accept it
// is exactly what a whole-stream decode of the same bytes would produce,
// so the caller can reuse it as the verdict's evidence instead of decoding
// the log a second time. Aliases internal state; treat as read-only.
func (s *StreamDecoder) Evidence() []trace.Packet { return s.pkts }
