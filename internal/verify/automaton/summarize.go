package automaton

import (
	"encoding/binary"
	"math/bits"

	"raptrack/internal/trace"
)

// This file is the decoder's rescue pass for recursive programs.
//
// Speculative decoding explores derivations depth-first, and
// presence-encoded conditionals inside a self-recursive function make that
// search exponential: the packets of every deeper dynamic instance match
// the same static site, so each mis-guessed recursion depth is only
// contradicted far downstream. The interpreter solves this with pushdown
// summarization; this pass is the same idea lowered onto the compiled
// table. Frame walks are tabulated per context — (entry row, start cursor)
// — so every dynamic instance of a call at the same evidence position
// shares one exploration, and outcomes ("returns at cursor E consuming a
// return packet to D", "returns deterministically at E") propagate to
// waiting call sites until a root derivation covering the whole stream is
// found. That is polynomial in stream length where the speculative walk
// is exponential.
//
// The pass does not render verdicts. Its product is an oracle: the
// take/fall-through bit sequence of the accepting derivation's choice
// points, in execution order. The caller replays the normal decode loop
// with that oracle in place of speculation, so every evidence check
// (conditional presence, ROP/JOP/escape policies, loop trips, stream
// exhaustion) is re-validated by the same code that validates speculative
// accepts. A summarizer bug can therefore cost a fallback to the
// interpreter, never an unsound accept.
//
// All scratch lives in flat pooled slices keyed by packed integers: one
// open-addressing set dedups configurations, contexts chain their
// outcomes and waiting call sites through index lists, and loop-register
// vectors are interned. A rescued decode allocates only on first use of
// its pooled state and on growth.

// Summarizer caps: bounded scratch, not evidence judgments. Exceeding
// them abandons the rescue (the interpreter takes over). The bit widths
// back the packed configuration key: context 16, row 16, cursor 22,
// loop-state 10.
const (
	sumMaxStream = 1 << 22 // expanded packets materialized for indexing
	sumMaxFacts  = 1 << 21
	sumMaxCtxs   = 1 << 16
	sumMaxRows   = 1 << 16
	sumMaxLoops  = 1 << 10
)

// outKind classifies how a frame context completes.
type outKind uint8

const (
	outLeaf outKind = iota // deterministic return (BX LR): no packet
	outRet                 // monitored return: consumed packet, dst checked by caller
)

// sumOutcome is one way a frame context completes: the cursor after its
// derivation and, for monitored returns, the recorded destination the
// caller must match (ROP). fact anchors the derivation for the oracle.
type sumOutcome struct {
	end  int32
	dst  uint32
	fact int32
	next int32 // next outcome of the same context (-1 ends)
	kind outKind
}

// sumFact is one reached configuration with its derivation back-pointer:
// prev is the predecessor fact (-1 at a context start), choice the
// decision taken at the predecessor's row to get here (-1 when forced),
// and splice* identify a callee derivation interposed between prev (the
// call row) and this resume point.
type sumFact struct {
	row       int32
	cur       int32
	ctx       int32
	loops     int32
	prev      int32
	spliceCtx int32
	spliceOut int32
	choice    int8
}

// u64set is an open-addressing hash set of packed configuration keys
// (linear probing, 0 is the empty slot; the zero key is tracked aside).
type u64set struct {
	tab     []uint64
	n       int
	hasZero bool
}

func (s *u64set) reset() {
	if s.tab == nil {
		s.tab = make([]uint64, 1<<13)
	} else {
		clear(s.tab)
	}
	s.n = 0
	s.hasZero = false
}

// add inserts k, reporting whether it was absent.
func (s *u64set) add(k uint64) bool {
	if k == 0 {
		if s.hasZero {
			return false
		}
		s.hasZero = true
		return true
	}
	if (s.n+1)*4 >= len(s.tab)*3 {
		old := s.tab
		s.tab = make([]uint64, len(old)*2)
		for _, ok := range old {
			if ok != 0 {
				s.place(ok)
			}
		}
	}
	mask := uint64(len(s.tab) - 1)
	i := hash64(k, len(s.tab))
	for {
		switch s.tab[i] {
		case 0:
			s.tab[i] = k
			s.n++
			return true
		case k:
			return false
		}
		i = (i + 1) & mask
	}
}

func (s *u64set) place(k uint64) {
	mask := uint64(len(s.tab) - 1)
	i := hash64(k, len(s.tab))
	for s.tab[i] != 0 {
		i = (i + 1) & mask
	}
	s.tab[i] = k
}

// hash64 is Fibonacci hashing into a power-of-two table: the HIGH bits of
// the product mix every input bit, so packed keys differing only in their
// high fields (context, row) spread instead of clustering.
func hash64(k uint64, n int) uint64 {
	return (k * 0x9e3779b97f4a7c15) >> (64 - uint(bits.TrailingZeros(uint(n))))
}

// u64map is an open-addressing map from non-zero packed keys to ids
// (keys are stored +1 so the zero slot means empty).
type u64map struct {
	keys []uint64
	vals []int32
	n    int
}

func (m *u64map) reset() {
	if m.keys == nil {
		m.keys = make([]uint64, 1<<10)
		m.vals = make([]int32, 1<<10)
	} else {
		clear(m.keys)
	}
	m.n = 0
}

// get looks k up, returning (id, true) when present.
func (m *u64map) get(k uint64) (int32, bool) {
	k++
	mask := uint64(len(m.keys) - 1)
	i := hash64(k, len(m.keys))
	for {
		switch m.keys[i] {
		case 0:
			return 0, false
		case k:
			return m.vals[i], true
		}
		i = (i + 1) & mask
	}
}

func (m *u64map) put(k uint64, v int32) {
	k++
	if (m.n+1)*4 >= len(m.keys)*3 {
		ok, ov := m.keys, m.vals
		m.keys = make([]uint64, len(ok)*2)
		m.vals = make([]int32, len(ok)*2)
		for i, kk := range ok {
			if kk != 0 {
				m.place(kk, ov[i])
			}
		}
	}
	m.place(k, v)
	m.n++
}

func (m *u64map) place(k uint64, v int32) {
	mask := uint64(len(m.keys) - 1)
	i := hash64(k, len(m.keys))
	for m.keys[i] != 0 {
		i = (i + 1) & mask
	}
	m.keys[i], m.vals[i] = k, v
}

// summarizer is the pooled tabulation scratch (one per decodeState).
type summarizer struct {
	c  *core
	pk []trace.Packet

	facts []sumFact
	queue []int32
	seen  u64set

	ctxIDs   u64map
	outHead  []int32 // per context: first outcome index (-1 none)
	waitHead []int32 // per context: first waiter index (-1 none)
	outs     []sumOutcome
	waits    []int32 // call-site fact ids
	waitNext []int32

	loopTab [][]uint64 // interned per-frame loop registers (0: all idle)
	loopIDs map[string]int32

	work   uint64
	budget uint64
	accept int32
}

// summarize tabulates the stream against the compiled table and returns
// the accepting derivation's choice-bit oracle. ok is false when no
// derivation was found within budget — from exhaustion or from any cap —
// and the caller falls back to the interpreter either way.
func (s *summarizer) summarize(c *core, pk []trace.Packet, budget uint64) (oracle []uint8, work uint64, ok bool) {
	if len(c.nodes) > sumMaxRows || len(pk) >= sumMaxStream {
		return nil, 0, false
	}
	s.c, s.pk, s.budget = c, pk, budget
	s.work, s.accept = 0, -1
	s.facts = s.facts[:0]
	s.queue = s.queue[:0]
	s.outs = s.outs[:0]
	s.waits = s.waits[:0]
	s.waitNext = s.waitNext[:0]
	s.outHead = s.outHead[:0]
	s.waitHead = s.waitHead[:0]
	s.seen.reset()
	s.ctxIDs.reset()
	s.loopTab = append(s.loopTab[:0], make([]uint64, c.slots))
	s.loopIDs = nil

	root := s.rowOf(c.entry)
	if root < 0 {
		return nil, 0, false
	}
	s.newCtx(int64(root) << 32)
	s.addFact(sumFact{row: root, ctx: 0, prev: -1, spliceCtx: -1, choice: -1})
	for len(s.queue) > 0 && s.accept < 0 {
		fi := s.queue[len(s.queue)-1]
		s.queue = s.queue[:len(s.queue)-1]
		if !s.process(fi) {
			return nil, s.work, false
		}
	}
	if s.accept < 0 {
		return nil, s.work, false
	}
	return s.oracle(), s.work, true
}

func (s *summarizer) rowOf(addr uint32) int32 {
	if addr < s.c.base || addr >= s.c.limit || (addr-s.c.base)&1 != 0 {
		return -1
	}
	return int32((addr - s.c.base) >> 1)
}

func (s *summarizer) addFact(f sumFact) {
	k := uint64(f.ctx)<<48 | uint64(f.row)<<32 | uint64(f.cur)<<10 | uint64(f.loops)
	if !s.seen.add(k) {
		return
	}
	s.facts = append(s.facts, f)
	s.queue = append(s.queue, int32(len(s.facts)-1))
}

// step derives a successor configuration within the same frame.
func (s *summarizer) step(fi int32, row, cur, loops int32, choice int8) {
	if row < 0 {
		return
	}
	f := &s.facts[fi]
	s.addFact(sumFact{row: row, cur: cur, ctx: f.ctx, loops: loops,
		prev: fi, spliceCtx: -1, choice: choice})
}

func (s *summarizer) newCtx(key int64) int32 {
	id := int32(len(s.outHead))
	s.outHead = append(s.outHead, -1)
	s.waitHead = append(s.waitHead, -1)
	s.ctxIDs.put(uint64(key), id)
	return id
}

// ctxOf interns the frame context starting at row with cursor cur,
// seeding its start configuration on first use.
func (s *summarizer) ctxOf(row, cur int32) int32 {
	k := int64(row)<<32 | int64(uint32(cur))
	if id, have := s.ctxIDs.get(uint64(k)); have {
		return id
	}
	if len(s.outHead) >= sumMaxCtxs {
		return -1
	}
	id := s.newCtx(k)
	s.addFact(sumFact{row: row, cur: cur, ctx: id, prev: -1, spliceCtx: -1, choice: -1})
	return id
}

// call registers fact fi (an opCall/opICall row) as a waiter on the
// callee context and resumes it against outcomes already tabulated.
func (s *summarizer) call(fi int32, calleeRow, startCur int32) {
	cid := s.ctxOf(calleeRow, startCur)
	if cid < 0 {
		return
	}
	s.waits = append(s.waits, fi)
	s.waitNext = append(s.waitNext, s.waitHead[cid])
	s.waitHead[cid] = int32(len(s.waits) - 1)
	for oi := s.outHead[cid]; oi >= 0; oi = s.outs[oi].next {
		s.resume(fi, cid, oi)
	}
}

// resume continues a waiting call site with one callee outcome: the
// return address stored by the call is its next address, so a monitored
// return must carry exactly that destination (ROP, as in the decode loop).
func (s *summarizer) resume(fi, cid, oi int32) {
	out := s.outs[oi]
	nd := &s.c.nodes[s.facts[fi].row]
	if out.kind == outRet && out.dst != nd.next {
		return
	}
	row := s.rowOf(nd.next)
	if row < 0 {
		return
	}
	f := &s.facts[fi]
	s.addFact(sumFact{row: row, cur: out.end, ctx: f.ctx, loops: f.loops,
		prev: fi, spliceCtx: cid, spliceOut: oi, choice: -1})
}

// complete records a context outcome and resumes every waiter.
func (s *summarizer) complete(cid int32, out sumOutcome) {
	for oi := s.outHead[cid]; oi >= 0; oi = s.outs[oi].next {
		o := &s.outs[oi]
		if o.end == out.end && o.kind == out.kind && o.dst == out.dst {
			return
		}
	}
	out.next = s.outHead[cid]
	s.outs = append(s.outs, out)
	oi := int32(len(s.outs) - 1)
	s.outHead[cid] = oi
	for w := s.waitHead[cid]; w >= 0; w = s.waitNext[w] {
		s.resume(s.waits[w], cid, oi)
	}
}

// setSlot interns the loop-register vector equal to base with slot
// replaced by val (0 idle, rem+1 when an entered loop has rem continues).
func (s *summarizer) setSlot(base int32, slot uint16, val uint64) int32 {
	v := s.loopTab[base]
	if v[slot] == val {
		return base
	}
	nv := make([]uint64, len(v))
	copy(nv, v)
	nv[slot] = val
	kb := make([]byte, 8*len(nv))
	for i, x := range nv {
		binary.LittleEndian.PutUint64(kb[i*8:], x)
	}
	k := string(kb)
	if s.loopIDs == nil {
		s.loopIDs = make(map[string]int32, 8)
	}
	if id, have := s.loopIDs[k]; have {
		return id
	}
	if len(s.loopTab) >= sumMaxLoops {
		return -1
	}
	id := int32(len(s.loopTab))
	s.loopTab = append(s.loopTab, nv)
	s.loopIDs[k] = id
	return id
}

// process executes one configuration's row semantics, deriving successor
// facts, context outcomes, or the root accept. Returns false when a
// scratch cap or the work budget is exceeded.
func (s *summarizer) process(fi int32) bool {
	f := s.facts[fi] // copied: addFact may grow s.facts
	nd := &s.c.nodes[f.row]
	s.work += uint64(nd.cost)
	if s.work > s.budget || len(s.facts) > sumMaxFacts {
		return false
	}
	n := int32(len(s.pk))
	var p trace.Packet
	if f.cur < n {
		p = s.pk[f.cur]
	}

	switch nd.op {
	case opNone:
		s.step(fi, s.rowOf(nd.next), f.cur, f.loops, -1)

	case opDirect:
		s.step(fi, s.rowOf(nd.target), f.cur, f.loops, -1)

	case opCond:
		if f.cur < n && p.Src == nd.record && p.Dst == nd.target {
			s.step(fi, s.rowOf(nd.target), f.cur+1, f.loops, 1)
			s.step(fi, s.rowOf(nd.next), f.cur, f.loops, 0)
		} else {
			s.step(fi, s.rowOf(nd.next), f.cur, f.loops, -1)
		}

	case opCondFwd:
		if f.cur < n && p.Src == nd.record && p.Dst == nd.target {
			s.step(fi, s.rowOf(nd.target), f.cur+1, f.loops, -1)
		}

	case opGuard:
		if f.cur < n && p.Src == nd.record {
			s.step(fi, s.rowOf(nd.next), f.cur, f.loops, 1)
			s.step(fi, s.rowOf(nd.target), f.cur, f.loops, 0)
		} else {
			s.step(fi, s.rowOf(nd.target), f.cur, f.loops, -1)
		}

	case opRet:
		if f.cur >= n || p.Src != nd.record {
			return true
		}
		if f.ctx == 0 {
			if p.Dst == retToHaltSentinel && f.cur+1 == n {
				s.accept = fi
			}
			return true
		}
		s.complete(f.ctx, sumOutcome{end: f.cur + 1, dst: p.Dst, fact: fi, kind: outRet})

	case opLeafRet:
		if f.ctx == 0 {
			if f.cur == n {
				s.accept = fi
			}
			return true
		}
		s.complete(f.ctx, sumOutcome{end: f.cur, fact: fi, kind: outLeaf})

	case opHalt:
		if f.cur == n {
			s.accept = fi
		}

	case opCall:
		if cr := s.rowOf(nd.target); cr >= 0 {
			s.call(fi, cr, f.cur)
		}

	case opICall:
		if f.cur < n && p.Src == nd.record && s.c.isEntry(p.Dst) {
			s.call(fi, s.rowOf(p.Dst), f.cur+1)
		}

	case opIJump:
		if f.cur < n && p.Src == nd.record && p.Dst >= nd.lo && p.Dst < nd.hi {
			s.step(fi, s.rowOf(p.Dst), f.cur+1, f.loops, -1)
		}

	case opLoopCond:
		// Replicate the decode loop's register logic exactly (0 encodes an
		// idle slot; an entered loop with rem continues left is rem+1).
		val := s.loopTab[f.loops][nd.slot]
		if val == 0 {
			if nd.flags&nfStatic == 0 || nd.flags&nfStaticBad != 0 {
				return true
			}
			val = nd.trips + 1
		}
		rem := val - 1
		taken := false
		if nd.flags&nfFwd != 0 {
			if rem == 0 {
				taken = true
				val = 0
			} else {
				rem--
				val = rem + 1
			}
		} else {
			if rem > 0 {
				taken = true
				rem--
				val = rem + 1
			} else {
				val = 0
			}
		}
		nl := s.setSlot(f.loops, nd.slot, val)
		if nl < 0 {
			return true
		}
		succ := nd.next
		if taken {
			succ = nd.target
		}
		s.step(fi, s.rowOf(succ), f.cur, nl, -1)

	case opLoopLog:
		if f.cur < n && p.Src == nd.record {
			if trips, err := nd.loop.TripCount(p.Dst); err == nil {
				if nl := s.setSlot(f.loops, nd.slot, trips+1); nl >= 0 {
					s.step(fi, s.rowOf(nd.next), f.cur+1, nl, -1)
				}
			}
		}
	}
	return true
}

// oracle linearizes the accepting derivation into its choice bits in
// execution order: each fact's predecessor chain first, then any spliced
// callee derivation, then the fact's own choice.
func (s *summarizer) oracle() []uint8 {
	var bits []uint8
	var rec func(fi int32)
	rec = func(fi int32) {
		f := &s.facts[fi]
		if f.prev >= 0 {
			rec(f.prev)
		}
		if f.spliceCtx >= 0 {
			rec(s.outs[f.spliceOut].fact)
		}
		if f.choice >= 0 {
			bits = append(bits, uint8(f.choice))
		}
	}
	rec(s.accept)
	return bits
}

// expandStream materializes the (possibly compressed) evidence for
// cursor-indexed tabulation. ok is false on an unknown marker, expansion
// overflow, or a stream too large to index (all of which end in the
// interpreter pipeline anyway).
func expandStream(m *Machine, stream []trace.Packet, expand bool) ([]trace.Packet, bool) {
	if !expand {
		if len(stream) > sumMaxStream {
			return nil, false
		}
		return stream, true
	}
	rd := evReader{stream: stream, markers: &m.markers, expand: true}
	out := make([]trace.Packet, 0, len(stream)*2)
	for {
		p, ok := rd.peek()
		if !ok {
			if rd.failed {
				return nil, false
			}
			return out, true
		}
		if len(out) >= sumMaxStream {
			return nil, false
		}
		out = append(out, p)
		rd.advance()
	}
}
