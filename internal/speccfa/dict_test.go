package speccfa

import (
	"strings"
	"testing"

	"raptrack/internal/trace"
)

// TestMineSkipsMarkerSources: a stream that still contains marker packets
// (e.g. mined before decompression by mistake) must not poison the
// dictionary — windows overlapping a marker are skipped, and the
// surrounding genuine repetition is still mined.
func TestMineSkipsMarkerSources(t *testing.T) {
	iter := []trace.Packet{pk(0xa0, 0xb0), pk(0xc0, 0xa0)}
	var stream []trace.Packet
	for i := 0; i < 10; i++ {
		stream = append(stream, iter...)
	}
	stream = append(stream, pk(MarkerBase|3, 7), pk(MarkerBase|3, 7))
	for i := 0; i < 10; i++ {
		stream = append(stream, iter...)
	}

	d, err := Mine(stream, 4, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() == 0 {
		t.Fatal("mining found nothing despite 20 repetitions")
	}
	for _, p := range d.Paths() {
		for _, pkt := range p.Packets {
			if pkt.Src >= MarkerBase {
				t.Fatalf("mined path %d contains marker source %#x", p.ID, pkt.Src)
			}
		}
	}
}

// TestMineAllMarkers: a stream of nothing but markers yields an empty
// dictionary, not an error.
func TestMineAllMarkers(t *testing.T) {
	stream := []trace.Packet{pk(MarkerBase, 1), pk(MarkerBase, 1), pk(MarkerBase, 1), pk(MarkerBase, 1)}
	d, err := Mine(stream, 4, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 0 {
		t.Fatalf("mined %d paths from pure markers", d.Len())
	}
}

// TestMineEmptyStream: mining a zero-packet stream (an accepted verdict
// with no evidence) is a no-op, not an error.
func TestMineEmptyStream(t *testing.T) {
	d, err := Mine(nil, 8, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 0 {
		t.Fatalf("mined %d paths from empty stream", d.Len())
	}
	if out := d.Compress(nil); len(out) != 0 {
		t.Error("empty dictionary compressed an empty stream into something")
	}
}

func distinctPath(i int) []trace.Packet {
	return []trace.Packet{pk(uint32(0x1000+i), 1), pk(uint32(0x2000+i), 2)}
}

// TestMergePromotes: new paths join, duplicates and substrings do not,
// and an unchanged merge returns the base pointer.
func TestMergePromotes(t *testing.T) {
	base, err := NewDictionary(distinctPath(0), distinctPath(1))
	if err != nil {
		t.Fatal(err)
	}
	extra, err := NewDictionary(distinctPath(1), distinctPath(2))
	if err != nil {
		t.Fatal(err)
	}
	merged, added, err := Merge(base, extra, 0)
	if err != nil {
		t.Fatal(err)
	}
	if added != 1 || merged.Len() != 3 {
		t.Fatalf("added=%d len=%d, want 1 and 3", added, merged.Len())
	}
	if base.Len() != 2 {
		t.Error("Merge mutated its base")
	}

	same, added, err := Merge(base, base, 0)
	if err != nil {
		t.Fatal(err)
	}
	if added != 0 || same != base {
		t.Errorf("self-merge: added=%d, base preserved=%v", added, same == base)
	}

	// A path that is a substring of an existing one is subsumed.
	super := []trace.Packet{pk(0x1000, 1), pk(0x2000, 2), pk(0x3000, 3)}
	bigBase, _ := NewDictionary(super)
	sub, _ := NewDictionary(super[:2])
	_, added, err = Merge(bigBase, sub, 0)
	if err != nil {
		t.Fatal(err)
	}
	if added != 0 {
		t.Errorf("substring path promoted (added=%d)", added)
	}
}

// TestMergeAtCapacity: a dictionary at MaxPaths accepts nothing more, and
// a cap below the base size is honored without truncating the base.
func TestMergeAtCapacity(t *testing.T) {
	seqs := make([][]trace.Packet, MaxPaths)
	for i := range seqs {
		seqs[i] = distinctPath(i)
	}
	full, err := NewDictionary(seqs...)
	if err != nil {
		t.Fatal(err)
	}
	extra, _ := NewDictionary(distinctPath(MaxPaths + 1))
	merged, added, err := Merge(full, extra, 0)
	if err != nil {
		t.Fatal(err)
	}
	if added != 0 || merged != full {
		t.Errorf("full dictionary grew: added=%d", added)
	}

	// Partial headroom: cap 4 over a 3-path base admits exactly one.
	base, _ := NewDictionary(seqs[0], seqs[1], seqs[2])
	extra2, _ := NewDictionary(distinctPath(500), distinctPath(501))
	merged, added, err = Merge(base, extra2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if added != 1 || merged.Len() != 4 {
		t.Errorf("cap not honored: added=%d len=%d", added, merged.Len())
	}
}

// TestDictionaryWireRoundTrip: Encode/DecodeDictionary reproduce the
// matching behavior exactly (same compression of the same stream).
func TestDictionaryWireRoundTrip(t *testing.T) {
	short := []trace.Packet{pk(1, 2), pk(3, 4)}
	long := []trace.Packet{pk(1, 2), pk(3, 4), pk(5, 6)}
	d, err := NewDictionary(short, long)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := DecodeDictionary(d.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if rt.Len() != d.Len() {
		t.Fatalf("round trip lost paths: %d != %d", rt.Len(), d.Len())
	}
	stream := append(append([]trace.Packet{}, long...), short...)
	a, b := d.Compress(stream), rt.Compress(stream)
	if len(a) != len(b) {
		t.Fatalf("compression diverged: %d != %d packets", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("compression diverged at %d: %v != %v", i, a[i], b[i])
		}
	}

	var empty *Dictionary
	rt, err = DecodeDictionary(empty.Encode())
	if err != nil || rt.Len() != 0 {
		t.Errorf("empty round trip: len=%d err=%v", rt.Len(), err)
	}
}

func TestDecodeDictionaryRejections(t *testing.T) {
	cases := []struct {
		name string
		b    []byte
		want string
	}{
		{"short", []byte{1}, "too short"},
		{"truncated header", []byte{1, 0, 5}, "truncated"},
		{"truncated body", []byte{1, 0, 0, 2, 0, 1, 2, 3}, "truncated"},
		{"tiny path", append([]byte{1, 0, 0, 1, 0}, make([]byte, trace.PacketSize)...), "need >= 2"},
		{"trailing", append(mustEncode(t), 0xff), "trailing"},
	}
	for _, c := range cases {
		if _, err := DecodeDictionary(c.b); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}

	// Marker-range source inside a path body.
	bad := (&Dictionary{paths: []SubPath{{ID: 0, Packets: []trace.Packet{pk(MarkerBase, 1), pk(1, 2)}}}}).Encode()
	if _, err := DecodeDictionary(bad); err == nil || !strings.Contains(err.Error(), "marker-range") {
		t.Errorf("marker path decoded: %v", err)
	}

	// Duplicate ids.
	dup := (&Dictionary{paths: []SubPath{
		{ID: 3, Packets: []trace.Packet{pk(1, 2), pk(3, 4)}},
		{ID: 3, Packets: []trace.Packet{pk(5, 6), pk(7, 8)}},
	}}).Encode()
	if _, err := DecodeDictionary(dup); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate ids decoded: %v", err)
	}
}

func mustEncode(t *testing.T) []byte {
	t.Helper()
	d, err := NewDictionary([]trace.Packet{pk(1, 2), pk(3, 4)})
	if err != nil {
		t.Fatal(err)
	}
	return d.Encode()
}
