// Package speccfa implements speculative sub-path compression of CFLog
// evidence, in the spirit of SpecCFA (Caulfield et al., ACSAC 2024), which
// the paper cites as the remedy for CFA's communication bottleneck (§V-B:
// "CFLog size directly impacts communication overhead/latency, often
// becoming the system's primary bottleneck [57]").
//
// The Verifier provisions a dictionary of speculated packet sub-paths
// (typically mined from a previous verified session). The Prover's CFA
// engine, before signing each report window, replaces maximal runs of
// matched sub-paths with one 8-byte marker packet carrying the path id and
// the repeat count. Loop-dominated evidence (per-iteration packets all
// alike) collapses dramatically. Decompression is exact, so verification
// remains lossless; a stream without markers decompresses to itself, so
// the Verifier can apply expansion unconditionally.
//
// Marker packets use source addresses in [MarkerBase, MarkerBase+256),
// a range that can never hold application code (the NS code window is far
// below it), so markers cannot collide with genuine evidence.
package speccfa

import (
	"fmt"

	"raptrack/internal/trace"
	"raptrack/internal/trace/pipeline"
)

// MarkerBase is the source-address namespace for marker packets.
const MarkerBase uint32 = 0xFF00_0000

// MaxPaths is the dictionary capacity (path ids are one byte).
const MaxPaths = 256

// SubPath is one speculated packet subsequence.
type SubPath struct {
	ID      byte
	Packets []trace.Packet
}

// Dictionary is a Verifier-provisioned speculation set. Construct with
// NewDictionary or Mine.
type Dictionary struct {
	paths []SubPath
}

// NewDictionary builds a dictionary from packet subsequences, assigning
// ids in order. Paths must have length >= 2 (a 1-packet path cannot save
// anything) and must not contain marker-range sources.
func NewDictionary(paths ...[]trace.Packet) (*Dictionary, error) {
	if len(paths) > MaxPaths {
		return nil, fmt.Errorf("speccfa: %d paths exceed the %d-entry dictionary", len(paths), MaxPaths)
	}
	d := &Dictionary{}
	for i, p := range paths {
		if len(p) < 2 {
			return nil, fmt.Errorf("speccfa: path %d has %d packets (need >= 2)", i, len(p))
		}
		for _, pkt := range p {
			if pkt.Src >= MarkerBase {
				return nil, fmt.Errorf("speccfa: path %d contains a marker-range source %#x", i, pkt.Src)
			}
		}
		d.paths = append(d.paths, SubPath{ID: byte(i), Packets: append([]trace.Packet(nil), p...)})
	}
	// Longest-first matching maximizes savings.
	for i := 1; i < len(d.paths); i++ {
		for j := i; j > 0 && len(d.paths[j].Packets) > len(d.paths[j-1].Packets); j-- {
			d.paths[j], d.paths[j-1] = d.paths[j-1], d.paths[j]
		}
	}
	return d, nil
}

// Len returns the number of dictionary paths.
func (d *Dictionary) Len() int {
	if d == nil {
		return 0
	}
	return len(d.paths)
}

// Paths returns the dictionary contents (read-only use).
func (d *Dictionary) Paths() []SubPath {
	if d == nil {
		return nil
	}
	return d.paths
}

// matchAt reports whether path p occurs in stream at position i.
func matchAt(stream []trace.Packet, i int, p []trace.Packet) bool {
	if i+len(p) > len(stream) {
		return false
	}
	for k, pk := range p {
		if stream[i+k] != pk {
			return false
		}
	}
	return true
}

// Compress replaces maximal non-overlapping runs of dictionary sub-paths
// with marker packets {Src: MarkerBase|id, Dst: repeatCount}. A nil
// dictionary returns the input unchanged.
func (d *Dictionary) Compress(stream []trace.Packet) []trace.Packet {
	if d.Len() == 0 {
		return stream
	}
	out := make([]trace.Packet, 0, len(stream))
	for i := 0; i < len(stream); {
		var hit *SubPath
		for pi := range d.paths {
			if matchAt(stream, i, d.paths[pi].Packets) {
				hit = &d.paths[pi]
				break
			}
		}
		if hit == nil {
			out = append(out, stream[i])
			i++
			continue
		}
		n := len(hit.Packets)
		repeats := uint32(1)
		for matchAt(stream, i+int(repeats)*n, hit.Packets) {
			repeats++
		}
		out = append(out, trace.Packet{Src: MarkerBase | uint32(hit.ID), Dst: repeats})
		i += int(repeats) * n
	}
	return out
}

// ErrUnknownMarker is wrapped by Decompress for markers outside the
// dictionary (evidence from a mismatched provisioning).
var ErrUnknownMarker = fmt.Errorf("speccfa: unknown sub-path marker")

// Decompress expands marker packets. It is exact: for any stream s,
// Decompress(Compress(s)) == s. Expansion is capped to guard against a
// forged repeat count blowing up verifier memory.
func (d *Dictionary) Decompress(stream []trace.Packet) ([]trace.Packet, error) {
	const maxExpanded = 1 << 24 // packets (128 MiB of evidence)
	out := make([]trace.Packet, 0, len(stream))
	for _, p := range stream {
		if p.Src < MarkerBase {
			out = append(out, p)
			continue
		}
		id := int(p.Src & 0xff)
		var sub *SubPath
		for pi := range d.Paths() {
			if int(d.paths[pi].ID) == id {
				sub = &d.paths[pi]
				break
			}
		}
		if sub == nil {
			return nil, fmt.Errorf("%w: id %d", ErrUnknownMarker, id)
		}
		total := uint64(p.Dst) * uint64(len(sub.Packets))
		if uint64(len(out))+total > maxExpanded {
			return nil, fmt.Errorf("speccfa: expansion exceeds %d packets", maxExpanded)
		}
		for r := uint32(0); r < p.Dst; r++ {
			out = append(out, sub.Packets...)
		}
	}
	return out, nil
}

// Mine derives a dictionary from an observed packet stream (typically the
// Verifier's reconstruction input from a previous accepted session): it
// scores subsequences of length minLen..maxLen by the bytes a compression
// pass would save and keeps the best non-redundant maxPaths of them.
func Mine(stream []trace.Packet, maxPaths, minLen, maxLen int) (*Dictionary, error) {
	if maxPaths <= 0 || maxPaths > MaxPaths {
		maxPaths = 16
	}
	if minLen < 2 {
		minLen = 2
	}
	if maxLen < minLen {
		maxLen = minLen
	}
	type cand struct {
		seq    []trace.Packet
		saving int
	}
	var cands []cand
	// Windows overlapping a marker-range source are not minable: markers
	// stand for already-compressed sub-paths, and a dictionary path may
	// never contain one. nextMarker[i] is the smallest j >= i with a
	// marker at j (len(stream) when none), so each window is a range check.
	nextMarker := make([]int, len(stream)+1)
	nextMarker[len(stream)] = len(stream)
	for i := len(stream) - 1; i >= 0; i-- {
		if stream[i].Src >= MarkerBase {
			nextMarker[i] = i
		} else {
			nextMarker[i] = nextMarker[i+1]
		}
	}
	for l := maxLen; l >= minLen; l-- {
		counts := make(map[string]int)
		firsts := make(map[string]int)
		for i := 0; i+l <= len(stream); i++ {
			if nextMarker[i] < i+l {
				continue
			}
			key := packetsKey(stream[i : i+l])
			if _, ok := firsts[key]; !ok {
				firsts[key] = i
			}
			counts[key]++
		}
		for key, n := range counts {
			if n < 2 {
				continue
			}
			// A run of n occurrences collapses to one marker packet.
			saving := (n*l - 1) * trace.PacketSize
			cands = append(cands, cand{
				seq:    append([]trace.Packet(nil), stream[firsts[key]:firsts[key]+l]...),
				saving: saving,
			})
		}
	}
	// Highest saving first (stable, deterministic tiebreak by key).
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && better(cands[j], cands[j-1]); j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	var chosen [][]trace.Packet
	for _, c := range cands {
		if len(chosen) >= maxPaths {
			break
		}
		// Skip candidates that are substrings of an already-chosen path
		// (the longer path subsumes them under longest-first matching).
		redundant := false
		for _, ch := range chosen {
			if containsSub(ch, c.seq) {
				redundant = true
				break
			}
		}
		if !redundant {
			chosen = append(chosen, c.seq)
		}
	}
	return NewDictionary(chosen...)
}

func better(a, b struct {
	seq    []trace.Packet
	saving int
}) bool {
	if a.saving != b.saving {
		return a.saving > b.saving
	}
	if len(a.seq) != len(b.seq) {
		return len(a.seq) > len(b.seq)
	}
	return packetsKey(a.seq) < packetsKey(b.seq)
}

func containsSub(haystack, needle []trace.Packet) bool {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		if matchAt(haystack, i, needle) {
			return true
		}
	}
	return false
}

func packetsKey(ps []trace.Packet) string {
	return string(pipeline.EncodeMTB(ps))
}
