package speccfa

import (
	"encoding/binary"
	"fmt"

	"raptrack/internal/trace"
	"raptrack/internal/trace/pipeline"
)

// Dictionary wire format (remote DICT frame payload, little-endian):
//
//	u16 count
//	count × { u8 id | u16 n | n × 8-byte packet }
//
// Paths travel in dictionary (longest-first) order with their assigned
// ids, so an encode/decode round trip reproduces the matching behavior
// exactly — both sides of a session compress and expand identically.

// Encode serializes the dictionary for delivery to a prover. A nil or
// empty dictionary encodes to a bare zero count.
func (d *Dictionary) Encode() []byte {
	out := binary.LittleEndian.AppendUint16(nil, uint16(d.Len()))
	for _, p := range d.Paths() {
		out = append(out, p.ID)
		out = binary.LittleEndian.AppendUint16(out, uint16(len(p.Packets)))
		out = append(out, pipeline.EncodeMTB(p.Packets)...)
	}
	return out
}

// DecodeDictionary parses an Encode payload, re-validating every path
// (lengths, marker-range sources, id uniqueness) so a malicious or
// corrupted frame cannot smuggle in an unsound speculation set.
func DecodeDictionary(b []byte) (*Dictionary, error) {
	if len(b) < 2 {
		return nil, fmt.Errorf("speccfa: dictionary payload too short (%d bytes)", len(b))
	}
	count := int(binary.LittleEndian.Uint16(b))
	if count > MaxPaths {
		return nil, fmt.Errorf("speccfa: dictionary count %d exceeds %d", count, MaxPaths)
	}
	b = b[2:]
	d := &Dictionary{}
	seen := make(map[byte]bool, count)
	for i := 0; i < count; i++ {
		if len(b) < 3 {
			return nil, fmt.Errorf("speccfa: truncated dictionary path %d header", i)
		}
		id := b[0]
		n := int(binary.LittleEndian.Uint16(b[1:]))
		b = b[3:]
		if n < 2 {
			return nil, fmt.Errorf("speccfa: dictionary path %d has %d packets (need >= 2)", i, n)
		}
		if len(b) < n*trace.PacketSize {
			return nil, fmt.Errorf("speccfa: truncated dictionary path %d body", i)
		}
		if seen[id] {
			return nil, fmt.Errorf("speccfa: duplicate dictionary path id %d", id)
		}
		seen[id] = true
		pkts, derr := pipeline.DecodeMTB(b[:n*trace.PacketSize])
		if derr != nil {
			return nil, fmt.Errorf("speccfa: dictionary path %d body: %w", i, derr)
		}
		b = b[n*trace.PacketSize:]
		for _, pkt := range pkts {
			if pkt.Src >= MarkerBase {
				return nil, fmt.Errorf("speccfa: dictionary path id %d contains a marker-range source %#x", id, pkt.Src)
			}
		}
		d.paths = append(d.paths, SubPath{ID: id, Packets: pkts})
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("speccfa: %d trailing bytes after dictionary", len(b))
	}
	return d, nil
}

// Merge promotes extra's paths into base, skipping exact duplicates and
// paths already subsumed as substrings of a base path, up to cap total
// paths (cap <= 0 or > MaxPaths selects MaxPaths). It returns the merged
// dictionary and how many paths were actually added; when nothing is
// added the base is returned unchanged, so callers can compare pointers
// to detect promotion. Neither input is modified.
func Merge(base, extra *Dictionary, cap int) (*Dictionary, int, error) {
	if cap <= 0 || cap > MaxPaths {
		cap = MaxPaths
	}
	if extra.Len() == 0 || base.Len() >= cap {
		return base, 0, nil
	}
	seqs := make([][]trace.Packet, 0, base.Len()+extra.Len())
	for _, p := range base.Paths() {
		seqs = append(seqs, p.Packets)
	}
	added := 0
	for _, p := range extra.Paths() {
		if len(seqs) >= cap {
			break
		}
		subsumed := false
		for _, have := range seqs[:base.Len()+added] {
			if containsSub(have, p.Packets) {
				subsumed = true
				break
			}
		}
		if !subsumed {
			seqs = append(seqs, p.Packets)
			added++
		}
	}
	if added == 0 {
		return base, 0, nil
	}
	merged, err := NewDictionary(seqs...)
	if err != nil {
		return nil, 0, err
	}
	return merged, added, nil
}
