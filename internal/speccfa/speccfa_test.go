package speccfa

import (
	"math/rand"
	"testing"
	"testing/quick"

	"raptrack/internal/trace"
)

func pk(src, dst uint32) trace.Packet { return trace.Packet{Src: src, Dst: dst} }

func TestCompressDecompressBasic(t *testing.T) {
	loop := []trace.Packet{pk(0x100, 0x200), pk(0x300, 0x100)}
	d, err := NewDictionary(loop)
	if err != nil {
		t.Fatal(err)
	}
	stream := []trace.Packet{pk(1, 2)}
	for i := 0; i < 5; i++ {
		stream = append(stream, loop...)
	}
	stream = append(stream, pk(3, 4))

	comp := d.Compress(stream)
	if len(comp) != 3 {
		t.Fatalf("compressed to %d packets, want 3 (pre, marker, post): %v", len(comp), comp)
	}
	if comp[1].Src != MarkerBase|0 || comp[1].Dst != 5 {
		t.Errorf("marker = %v", comp[1])
	}

	out, err := d.Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(stream) {
		t.Fatalf("expanded to %d, want %d", len(out), len(stream))
	}
	for i := range out {
		if out[i] != stream[i] {
			t.Fatalf("packet %d: %v != %v", i, out[i], stream[i])
		}
	}
}

func TestCompressLongestFirst(t *testing.T) {
	short := []trace.Packet{pk(1, 2), pk(3, 4)}
	long := []trace.Packet{pk(1, 2), pk(3, 4), pk(5, 6)}
	d, err := NewDictionary(short, long)
	if err != nil {
		t.Fatal(err)
	}
	stream := append(append([]trace.Packet{}, long...), long...)
	comp := d.Compress(stream)
	if len(comp) != 1 {
		t.Fatalf("want a single long-path marker, got %v", comp)
	}
	out, _ := d.Decompress(comp)
	if len(out) != 6 {
		t.Fatalf("expanded to %d", len(out))
	}
}

func TestDictionaryValidation(t *testing.T) {
	if _, err := NewDictionary([]trace.Packet{pk(1, 2)}); err == nil {
		t.Error("1-packet path accepted")
	}
	if _, err := NewDictionary([]trace.Packet{pk(MarkerBase, 2), pk(1, 2)}); err == nil {
		t.Error("marker-range source accepted")
	}
	many := make([][]trace.Packet, MaxPaths+1)
	for i := range many {
		many[i] = []trace.Packet{pk(uint32(i), 1), pk(uint32(i), 2)}
	}
	if _, err := NewDictionary(many...); err == nil {
		t.Error("oversized dictionary accepted")
	}
}

func TestDecompressRejections(t *testing.T) {
	d, _ := NewDictionary([]trace.Packet{pk(1, 2), pk(3, 4)})
	if _, err := d.Decompress([]trace.Packet{pk(MarkerBase|7, 1)}); err == nil {
		t.Error("unknown marker accepted")
	}
	if _, err := d.Decompress([]trace.Packet{pk(MarkerBase|0, 1<<30)}); err == nil {
		t.Error("expansion bomb accepted")
	}
}

// TestRoundTripProperty: for random streams and dictionaries,
// Decompress(Compress(s)) == s.
func TestRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	f := func() bool {
		// Random dictionary of 1-3 short paths over a small alphabet (to
		// force frequent matches).
		alphabet := []trace.Packet{pk(0x10, 0x20), pk(0x30, 0x40), pk(0x50, 0x60), pk(0x70, 0x80)}
		nPaths := 1 + r.Intn(3)
		paths := make([][]trace.Packet, nPaths)
		for i := range paths {
			l := 2 + r.Intn(3)
			paths[i] = make([]trace.Packet, l)
			for j := range paths[i] {
				paths[i][j] = alphabet[r.Intn(len(alphabet))]
			}
		}
		d, err := NewDictionary(paths...)
		if err != nil {
			return false
		}
		stream := make([]trace.Packet, r.Intn(200))
		for i := range stream {
			stream[i] = alphabet[r.Intn(len(alphabet))]
		}
		out, err := d.Decompress(d.Compress(stream))
		if err != nil || len(out) != len(stream) {
			return false
		}
		for i := range out {
			if out[i] != stream[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMineFindsLoopPattern(t *testing.T) {
	iter := []trace.Packet{pk(0xa0, 0xb0), pk(0xc0, 0xa0)}
	var stream []trace.Packet
	stream = append(stream, pk(1, 1))
	for i := 0; i < 50; i++ {
		stream = append(stream, iter...)
	}
	stream = append(stream, pk(2, 2))

	d, err := Mine(stream, 4, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() == 0 {
		t.Fatal("mining found nothing")
	}
	comp := d.Compress(stream)
	if len(comp) >= len(stream)/4 {
		t.Errorf("mined dictionary compresses %d -> %d (poor)", len(stream), len(comp))
	}
	out, err := d.Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(stream) {
		t.Fatalf("round trip %d != %d", len(out), len(stream))
	}
}

func TestNilDictionaryIsIdentity(t *testing.T) {
	var d *Dictionary
	stream := []trace.Packet{pk(1, 2), pk(3, 4)}
	if got := d.Compress(stream); len(got) != 2 {
		t.Error("nil dictionary must not compress")
	}
	if d.Len() != 0 {
		t.Error("nil Len")
	}
}
