package report

import (
	"strings"
	"testing"
	"time"
)

// TestVerifyBenchMatrix runs the engine matrix on the cheapest workload
// with a tiny budget: the point is shape and sanity of the artifact, not
// stable numbers (CI's bench-verify target measures for real).
func TestVerifyBenchMatrix(t *testing.T) {
	rs, err := VerifyBench([]string{"temperature"}, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 4 {
		t.Fatalf("cells = %d, want 4 (engine x cache)", len(rs))
	}
	seen := map[string]bool{}
	for _, r := range rs {
		seen[r.Engine+"/"+map[bool]string{false: "off", true: "on"}[r.Cache]] = true
		if r.App != "temperature" {
			t.Errorf("app = %q", r.App)
		}
		if r.NsPerOp <= 0 || r.Iterations <= 0 || r.SessionsPerSec <= 0 {
			t.Errorf("%s/cache=%v: empty measurement: %+v", r.Engine, r.Cache, r)
		}
		if r.LogBytes <= 0 {
			t.Errorf("%s/cache=%v: missing log size", r.Engine, r.Cache)
		}
	}
	for _, cell := range []string{"interp/off", "interp/on", "automaton/off", "automaton/on"} {
		if !seen[cell] {
			t.Errorf("matrix missing cell %s", cell)
		}
	}

	tab := VerifyBenchTable(rs)
	for _, w := range []string{"temperature", "interp", "automaton", "speedup", "x"} {
		if !strings.Contains(tab, w) {
			t.Errorf("table missing %q:\n%s", w, tab)
		}
	}
}

func TestVerifyBenchUnknownApp(t *testing.T) {
	if _, err := VerifyBench([]string{"no-such-app"}, time.Millisecond); err == nil {
		t.Fatal("expected error for unknown app")
	}
}
