package report

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"time"

	"raptrack/internal/apps"
	"raptrack/internal/attest"
	"raptrack/internal/core"
	"raptrack/internal/verify"
)

// StreamBenchApps is the workload subset the streaming benchmark covers
// by default: the gateway selftest workloads plus the longest evaluation
// stream, all of which cut into enough slices at the bench watermark for
// a meaningful detection-latency distribution.
var StreamBenchApps = []string{"fibcall", "prime", "gps", "crc32"}

// streamBenchWatermark is the MTB watermark the streaming benchmark
// attests at — the same default the gateway's streaming tests pin, small
// enough that every bench workload yields tens of slices.
const streamBenchWatermark = 512

// StreamBenchResult is one workload's row of the BENCH_stream.json
// artifact: the slices-to-detect distribution for a mid-run compromise,
// and the honest streamed-session throughput next to the batch path it
// must stay within 10% of.
type StreamBenchResult struct {
	App    string `json:"app"`
	Slices int    `json:"slices"`

	// Detection latency, in slices, from the first compromised slice to
	// the first definitive per-slice alarm. One trial per interior
	// injection point: a hijacked edge is planted in the injected slice's
	// CFLog and the report re-signed (the compromised-device model —
	// authentication passes, the attested path does not), so detection
	// exercises the streaming prefix checker rather than the MAC.
	Trials            int     `json:"trials"`
	P50SlicesToDetect float64 `json:"p50_slices_to_detect"`
	P99SlicesToDetect float64 `json:"p99_slices_to_detect"`
	MaxSlicesToDetect int     `json:"max_slices_to_detect"`
	// SealDetections counts trials only caught by the final Seal — each
	// is a detection-latency outlier equal to the remaining stream.
	SealDetections int `json:"seal_detections"`
	// Undetected counts trials where the perturbed stream still sealed
	// OK (the flip landed on an execution-equivalent encoding); such
	// trials carry no latency sample. Always 0 in practice.
	Undetected int `json:"undetected"`

	// Honest-session throughput, uncached: batch Verify vs a streamed
	// Begin/Feed/Seal session with per-slice checks on.
	BatchNsPerOp  int64   `json:"batch_ns_per_op"`
	StreamNsPerOp int64   `json:"stream_ns_per_op"`
	RegressionPct float64 `json:"regression_pct"`
}

// StreamBenchReport is the top-level BENCH_stream.json document.
type StreamBenchReport struct {
	Suite   string              `json:"suite"`
	Budget  string              `json:"budget_per_cell"`
	Results []StreamBenchResult `json:"results"`
}

// StreamBench measures the streaming verification plane for each named
// workload: detection latency in slices for a mid-run compromise, and
// the throughput cost of per-slice checking on honest sessions. budget
// is the minimum measured wall time per throughput cell; <= 0 picks the
// CI default (300ms).
func StreamBench(names []string, budget time.Duration) ([]StreamBenchResult, error) {
	if budget <= 0 {
		budget = 300 * time.Millisecond
	}
	var out []StreamBenchResult
	for _, name := range names {
		a, err := apps.Get(name)
		if err != nil {
			return nil, err
		}
		link, err := core.LinkForCFA(a.Build(), core.DefaultLinkOptions())
		if err != nil {
			return nil, fmt.Errorf("report: %s link: %w", name, err)
		}
		key, err := attest.GenerateHMACKey()
		if err != nil {
			return nil, err
		}
		prover, err := core.NewProver(link, key, core.ProverConfig{
			SetupMem:  a.SetupMem(),
			MaxSteps:  a.MaxSteps,
			Watermark: streamBenchWatermark,
		})
		if err != nil {
			return nil, err
		}
		chal, err := attest.NewChallenge(name)
		if err != nil {
			return nil, err
		}
		reports, _, err := prover.Attest(chal)
		if err != nil {
			return nil, fmt.Errorf("report: %s attest: %w", name, err)
		}
		if len(reports) < 3 {
			return nil, fmt.Errorf("report: %s cut into only %d slices at watermark %d", name, len(reports), streamBenchWatermark)
		}

		v := core.NewVerifier(link, key)
		r := StreamBenchResult{App: name, Slices: len(reports)}
		if err := measureDetection(v, key, chal, reports, &r); err != nil {
			return nil, fmt.Errorf("report: %s detection: %w", name, err)
		}
		if err := measureStreamThroughput(v, chal, reports, budget, &r); err != nil {
			return nil, fmt.Errorf("report: %s throughput: %w", name, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// compromiseAt deep-copies reports and plants a hijacked edge in slice
// i's evidence — a transfer from an address the program image does not
// instrument, the footprint of a code-reuse gadget — re-signing the
// report so the chain still authenticates (the compromised-device model:
// the MAC passes, the attested path does not).
func compromiseAt(reports []*attest.Report, i int, key attest.Signer) ([]*attest.Report, error) {
	out := make([]*attest.Report, len(reports))
	for j, r := range reports {
		cp := *r
		cp.CFLog = append([]byte(nil), r.CFLog...)
		cp.Auth = append([]byte(nil), r.Auth...)
		out[j] = &cp
	}
	log := out[i].CFLog
	if len(log) < 8 {
		return nil, fmt.Errorf("slice %d has no whole packet to hijack", i)
	}
	off := (len(log) / 2 / 8) * 8
	binary.LittleEndian.PutUint32(log[off:], 0xdeadbee0)   // gadget source
	binary.LittleEndian.PutUint32(log[off+4:], 0xdeadbee4) // gadget target
	if err := attest.SignReport(out[i], key); err != nil {
		return nil, err
	}
	return out, nil
}

// measureDetection runs one trial per interior injection point: stream
// the compromised chain through a slice-checking session and record how
// many slices past the injection the first definitive alarm lands.
func measureDetection(v *verify.Verifier, key attest.Signer, chal attest.Challenge, reports []*attest.Report, r *StreamBenchResult) error {
	var latencies []int
	for i := 1; i < len(reports)-1; i++ {
		mrep, err := compromiseAt(reports, i, key)
		if err != nil {
			return err
		}
		sess := v.Begin(chal)
		detected := -1
		for j, rep := range mrep {
			if sv := sess.Feed(rep); detected < 0 && sv.Status.Definitive() {
				detected = j
			}
		}
		vd, err := sess.Seal()
		r.Trials++
		switch {
		case detected >= 0:
			latencies = append(latencies, detected-i)
		case err != nil || !vd.OK:
			// Only the whole-stream seal caught it: latency is the whole
			// remaining stream.
			r.SealDetections++
			latencies = append(latencies, len(reports)-1-i)
		default:
			r.Undetected++
		}
	}
	if len(latencies) == 0 {
		return fmt.Errorf("no trial detected the compromise")
	}
	sort.Ints(latencies)
	r.P50SlicesToDetect = percentile(latencies, 50)
	r.P99SlicesToDetect = percentile(latencies, 99)
	r.MaxSlicesToDetect = latencies[len(latencies)-1]
	return nil
}

// percentile returns the p-th percentile of sorted samples by
// nearest-rank.
func percentile(sorted []int, p int) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := (p*len(sorted) + 99) / 100
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return float64(sorted[rank-1])
}

// measureStreamThroughput times the honest evidence stream through the
// batch path and through a slice-checking streamed session, both
// uncached, and records the streamed path's relative cost. The two paths
// are timed in alternating rounds and summarized by the median round, so
// a GC pause or a noisy neighbor perturbs both sides alike instead of
// landing wholly in whichever path's contiguous window it hit.
func measureStreamThroughput(v *verify.Verifier, chal attest.Challenge, reports []*attest.Report, budget time.Duration, r *StreamBenchResult) error {
	batch := func() error {
		vd, err := v.Verify(chal, reports)
		if err != nil {
			return err
		}
		if !vd.OK {
			return fmt.Errorf("benign stream rejected: %s", vd.Reason())
		}
		return nil
	}
	stream := func() error {
		sess := v.Begin(chal)
		for _, rep := range reports {
			sess.Feed(rep)
		}
		vd, err := sess.Seal()
		if err != nil {
			return err
		}
		if !vd.OK {
			return fmt.Errorf("benign stream rejected: %s", vd.Reason())
		}
		return nil
	}
	// One untimed warm-up of each path validates the operations.
	if err := batch(); err != nil {
		return err
	}
	if err := stream(); err != nil {
		return err
	}
	const opsPerRound = 4
	round := func(op func() error) (int64, error) {
		t0 := time.Now()
		for i := 0; i < opsPerRound; i++ {
			if err := op(); err != nil {
				return 0, err
			}
		}
		return time.Since(t0).Nanoseconds() / opsPerRound, nil
	}
	var bs, ss []int64
	start := time.Now()
	for len(bs) == 0 || time.Since(start) < 2*budget {
		b, err := round(batch)
		if err != nil {
			return err
		}
		s, err := round(stream)
		if err != nil {
			return err
		}
		bs = append(bs, b)
		ss = append(ss, s)
	}
	r.BatchNsPerOp = medianNs(bs)
	r.StreamNsPerOp = medianNs(ss)
	if r.BatchNsPerOp > 0 {
		r.RegressionPct = 100 * (float64(r.StreamNsPerOp) - float64(r.BatchNsPerOp)) / float64(r.BatchNsPerOp)
	}
	return nil
}

// medianNs returns the median of the samples (ties split low).
func medianNs(samples []int64) int64 {
	sorted := append([]int64(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)/2]
}

// StreamBenchTable renders the streaming matrix for terminal
// consumption: the detection-latency distribution and the streamed
// honest-session overhead per workload.
func StreamBenchTable(rs []StreamBenchResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Streaming attestation: slices-to-detect and honest-session overhead\n")
	fmt.Fprintf(&b, "%-12s %7s %7s %10s %10s %6s %14s %14s %10s\n",
		"app", "slices", "trials", "p50 detect", "p99 detect", "seal", "batch ns/op", "stream ns/op", "overhead")
	for _, r := range rs {
		fmt.Fprintf(&b, "%-12s %7d %7d %10.0f %10.0f %6d %14d %14d %9.1f%%\n",
			r.App, r.Slices, r.Trials, r.P50SlicesToDetect, r.P99SlicesToDetect,
			r.SealDetections, r.BatchNsPerOp, r.StreamNsPerOp, r.RegressionPct)
	}
	return b.String()
}
