package report

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"raptrack/internal/apps"
	"raptrack/internal/attest"
	"raptrack/internal/core"
	"raptrack/internal/verify"
)

// VerifyBenchApps is the workload subset the verifier-core benchmark
// covers by default: one short session (fibcall), the mid-sized
// peripheral-driven workloads the gateway serves in its selftest
// (prime, gps, crc32), and the longest evaluation stream (matmult).
var VerifyBenchApps = []string{"fibcall", "prime", "gps", "crc32", "matmult"}

// VerifyBenchResult is one cell of the engine × cache matrix for one
// workload. The JSON encoding of the full matrix is the BENCH_verify.json
// artifact CI uploads per PR, so verifier-core regressions are visible
// without re-running the suite locally.
type VerifyBenchResult struct {
	App    string `json:"app"`
	Engine string `json:"engine"` // "interp" or "automaton"
	Cache  bool   `json:"cache"`

	NsPerOp        int64   `json:"ns_per_op"`
	AllocsPerOp    int64   `json:"allocs_per_op"`
	BytesPerOp     int64   `json:"bytes_per_op"`
	SessionsPerSec float64 `json:"sessions_per_sec"`
	Iterations     int     `json:"iterations"`
	LogBytes       int     `json:"log_bytes"`
}

// VerifyBenchReport is the top-level BENCH_verify.json document.
type VerifyBenchReport struct {
	Suite   string              `json:"suite"`
	Budget  string              `json:"budget_per_cell"`
	Results []VerifyBenchResult `json:"results"`
}

// VerifyBench measures end-to-end verification of real attested evidence
// for each named workload through the 2x2 engine matrix: interpretive
// pushdown search vs compiled automaton, with and without the
// cross-session summary cache. Each cell reuses one frozen evidence
// stream (attested once up front), so the numbers isolate the verifier
// core — no emulation, signing, or network in the loop. budget is the
// minimum measured wall time per cell; <= 0 picks a default suitable for
// CI (300ms).
func VerifyBench(names []string, budget time.Duration) ([]VerifyBenchResult, error) {
	if budget <= 0 {
		budget = 300 * time.Millisecond
	}
	var out []VerifyBenchResult
	for _, name := range names {
		a, err := apps.Get(name)
		if err != nil {
			return nil, err
		}
		link, err := core.LinkForCFA(a.Build(), core.DefaultLinkOptions())
		if err != nil {
			return nil, fmt.Errorf("report: %s link: %w", name, err)
		}
		key, err := attest.GenerateHMACKey()
		if err != nil {
			return nil, err
		}
		prover, err := core.NewProver(link, key, core.ProverConfig{SetupMem: a.SetupMem(), MaxSteps: a.MaxSteps})
		if err != nil {
			return nil, err
		}
		chal, err := attest.NewChallenge(name)
		if err != nil {
			return nil, err
		}
		reports, stats, err := prover.Attest(chal)
		if err != nil {
			return nil, fmt.Errorf("report: %s attest: %w", name, err)
		}

		for _, mode := range []struct {
			engine string
			cache  bool
		}{
			{"interp", false},
			{"interp", true},
			{"automaton", false},
			{"automaton", true},
		} {
			opts := []verify.Option{verify.WithAutomaton(mode.engine == "automaton")}
			if mode.cache {
				// A fresh cache per cell: hit rates reflect this
				// stream alone, not a previous cell's residue.
				opts = append(opts, verify.WithCache(verify.NewCache(64<<20)))
			}
			v := core.NewVerifier(link, key, opts...)
			r, err := measureVerify(v, chal, reports, budget)
			if err != nil {
				return nil, fmt.Errorf("report: %s %s/cache=%v: %w", name, mode.engine, mode.cache, err)
			}
			r.App = name
			r.Engine = mode.engine
			r.Cache = mode.cache
			r.LogBytes = stats.CFLogBytes
			out = append(out, r)
		}
	}
	return out, nil
}

// measureVerify times repeated verifications of one frozen evidence
// stream until budget wall time has elapsed. Allocation counts come from
// runtime.MemStats deltas over the whole loop — coarser than the testing
// package's per-op accounting, but stable at the iteration counts the
// budget yields, and free of a testing.B dependency in a non-test build.
func measureVerify(v *verify.Verifier, chal attest.Challenge, reports []*attest.Report, budget time.Duration) (VerifyBenchResult, error) {
	// One warm-up op validates the verdict (and, cache on, pays the
	// cold-miss fill so steady-state numbers describe the hit path).
	verdict, err := v.Verify(chal, reports)
	if err != nil {
		return VerifyBenchResult{}, err
	}
	if !verdict.OK {
		return VerifyBenchResult{}, fmt.Errorf("benign stream rejected: %s", verdict.Reason())
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	iters := 0
	var elapsed time.Duration
	for elapsed < budget {
		if _, err := v.Verify(chal, reports); err != nil {
			return VerifyBenchResult{}, err
		}
		iters++
		elapsed = time.Since(start)
	}
	runtime.ReadMemStats(&after)

	ns := elapsed.Nanoseconds() / int64(iters)
	r := VerifyBenchResult{
		NsPerOp:     ns,
		AllocsPerOp: int64(after.Mallocs-before.Mallocs) / int64(iters),
		BytesPerOp:  int64(after.TotalAlloc-before.TotalAlloc) / int64(iters),
		Iterations:  iters,
	}
	if ns > 0 {
		r.SessionsPerSec = 1e9 / float64(ns)
	}
	return r, nil
}

// VerifyBenchTable renders the matrix for terminal consumption, one row
// per (app, engine, cache) cell plus the headline speedup column
// (automaton over interpreter at equal cache setting).
func VerifyBenchTable(rs []VerifyBenchResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Verifier core: interpreter vs compiled automaton (uncached and cached)\n")
	fmt.Fprintf(&b, "%-12s %-10s %-6s %14s %12s %12s %10s %9s\n",
		"app", "engine", "cache", "ns/op", "sessions/s", "allocs/op", "B/op", "speedup")
	interp := map[string]int64{} // app|cache -> interpreter ns/op
	for _, r := range rs {
		if r.Engine == "interp" {
			interp[fmt.Sprintf("%s|%v", r.App, r.Cache)] = r.NsPerOp
		}
	}
	for _, r := range rs {
		speedup := ""
		if base := interp[fmt.Sprintf("%s|%v", r.App, r.Cache)]; r.Engine == "automaton" && base > 0 && r.NsPerOp > 0 {
			speedup = fmt.Sprintf("%.2fx", float64(base)/float64(r.NsPerOp))
		}
		fmt.Fprintf(&b, "%-12s %-10s %-6v %14d %12.1f %12d %10d %9s\n",
			r.App, r.Engine, r.Cache, r.NsPerOp, r.SessionsPerSec, r.AllocsPerOp, r.BytesPerOp, speedup)
	}
	return b.String()
}
