// Package report runs the paper's evaluation matrix — every workload under
// all four systems (uninstrumented baseline, naive MTB, RAP-Track, TRACES)
// — and formats the tables behind each figure of the paper (Fig. 1a/1b, 8,
// 9, 10 and the footprint/ablation extras). It is shared by cmd/benchsuite
// and the root bench_test.go harness.
package report

import (
	"fmt"
	"strings"

	"raptrack/internal/apps"
	"raptrack/internal/attest"
	"raptrack/internal/baseline/naive"
	"raptrack/internal/baseline/traces"
	"raptrack/internal/core"
)

// Measurement holds one workload's numbers across all systems.
type Measurement struct {
	App string

	// Runtime (CPU cycles for the application run).
	BaselineCycles uint64
	NaiveCycles    uint64 // == BaselineCycles: tracing is parallel
	RAPCycles      uint64
	TracesCycles   uint64

	// CFLog bytes generated over the whole run.
	NaiveLog  uint64
	RAPLog    uint64
	TracesLog uint64

	// Code size (bytes; naive == baseline, it adds no instructions).
	BaselineCode uint32
	RAPCode      uint32
	TracesCode   uint32

	// Session details.
	RAPPartials    int
	NaivePartials  int
	TracesPartials int
	RAPStubs       int
	RAPLoops       int // loops instrumented with a loop-condition SECALL
	RAPStatic      int // fixed-count loops reconstructed with no evidence
	TracesVeneers  int
	TracesCalls    uint64
	RAPSecureCalls uint64
	RAPSetupCycles uint64
	RAPPauseCycles uint64

	// Verification result for the RAP-Track evidence.
	Verified     bool
	VerifyReason string
}

// Measure runs the full system matrix on one workload.
func Measure(a apps.App) (*Measurement, error) {
	m := &Measurement{App: a.Name}

	// Baseline == naive (same execution; the MTB does not slow the core).
	nres, err := naive.Run(a.Build(), naive.Config{SetupMem: a.SetupMem(), MaxSteps: a.MaxSteps})
	if err != nil {
		return nil, fmt.Errorf("report: %s naive: %w", a.Name, err)
	}
	m.BaselineCycles = nres.Cycles
	m.NaiveCycles = nres.Cycles
	m.NaiveLog = nres.CFLogBytes
	m.NaivePartials = nres.Partials
	m.BaselineCode = nres.CodeBytes

	// RAP-Track.
	link, err := core.LinkForCFA(a.Build(), core.DefaultLinkOptions())
	if err != nil {
		return nil, fmt.Errorf("report: %s link: %w", a.Name, err)
	}
	key, err := attest.GenerateHMACKey()
	if err != nil {
		return nil, err
	}
	prover, err := core.NewProver(link, key, core.ProverConfig{SetupMem: a.SetupMem(), MaxSteps: a.MaxSteps})
	if err != nil {
		return nil, err
	}
	chal, err := attest.NewChallenge(a.Name)
	if err != nil {
		return nil, err
	}
	reports, stats, err := prover.Attest(chal)
	if err != nil {
		return nil, fmt.Errorf("report: %s attest: %w", a.Name, err)
	}
	m.RAPCycles = stats.Cycles
	m.RAPLog = uint64(stats.CFLogBytes)
	m.RAPPartials = stats.Partials
	m.RAPCode = link.Image.CodeSize
	m.RAPStubs = link.Stats.Stubs
	m.RAPLoops = link.Stats.OptimizedLoops
	m.RAPStatic = link.Stats.StaticLoops
	m.RAPSecureCalls = stats.SecureCalls
	m.RAPSetupCycles = stats.SetupCycles
	m.RAPPauseCycles = stats.PauseCycles
	verdict, err := core.NewVerifier(link, key).Verify(chal, reports)
	if err != nil {
		return nil, fmt.Errorf("report: %s verify: %w", a.Name, err)
	}
	m.Verified = verdict.OK
	m.VerifyReason = verdict.Reason()

	// TRACES.
	tout, err := traces.Instrument(a.Build(), traces.DefaultOptions())
	if err != nil {
		return nil, fmt.Errorf("report: %s traces instrument: %w", a.Name, err)
	}
	tres, err := traces.Run(tout, traces.Config{SetupMem: a.SetupMem(), MaxSteps: a.MaxSteps})
	if err != nil {
		return nil, fmt.Errorf("report: %s traces run: %w", a.Name, err)
	}
	m.TracesCycles = tres.Cycles
	m.TracesLog = tres.CFLogBytes
	m.TracesPartials = tres.Partials
	m.TracesCode = tres.CodeBytes
	m.TracesVeneers = tout.Stats.Veneers
	m.TracesCalls = tres.SecureCalls
	return m, nil
}

// MeasureAll measures the paper's evaluation set (apps.EvalOrder), in the
// paper's presentation order. Extra workloads in the registry are covered
// by the test suite but kept out of the figure tables.
func MeasureAll() ([]*Measurement, error) {
	out := make([]*Measurement, 0, len(apps.EvalOrder))
	for _, name := range apps.EvalOrder {
		a, err := apps.Get(name)
		if err != nil {
			return nil, err
		}
		m, err := Measure(a)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// ratio formats a/b as a multiplier.
func ratio(a, b uint64) string {
	if b == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2fx", float64(a)/float64(b))
}

// pct formats (a-b)/b as a percentage overhead.
func pct(a, b uint64) string {
	if b == 0 {
		return "inf"
	}
	return fmt.Sprintf("%+.1f%%", 100*(float64(a)-float64(b))/float64(b))
}

// table renders rows with aligned columns.
func table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cols []string) {
		for i, c := range cols {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range rows {
		line(r)
	}
	return b.String()
}

// Fig1a renders the naive-MTB vs TRACES CFLog size comparison (paper
// Fig. 1a: naive logs are 1.9-217x larger).
func Fig1a(ms []*Measurement) string {
	rows := make([][]string, 0, len(ms))
	for _, m := range ms {
		rows = append(rows, []string{
			m.App,
			fmt.Sprintf("%d", m.NaiveLog),
			fmt.Sprintf("%d", m.TracesLog),
			ratio(m.NaiveLog, m.TracesLog),
		})
	}
	return "Fig 1(a): CFLog size, naive MTB vs instrumentation-based CFA\n" +
		table([]string{"app", "naive MTB (B)", "TRACES (B)", "naive/TRACES"}, rows)
}

// Fig1b renders the instrumentation runtime overhead comparison (paper
// Fig. 1b: instrumentation adds 1.1-14.1x runtime).
func Fig1b(ms []*Measurement) string {
	rows := make([][]string, 0, len(ms))
	for _, m := range ms {
		rows = append(rows, []string{
			m.App,
			fmt.Sprintf("%d", m.BaselineCycles),
			fmt.Sprintf("%d", m.TracesCycles),
			ratio(m.TracesCycles, m.BaselineCycles),
		})
	}
	return "Fig 1(b): runtime, instrumentation-based CFA vs uninstrumented\n" +
		table([]string{"app", "baseline (cyc)", "TRACES (cyc)", "TRACES/baseline"}, rows)
}

// Fig8 renders the runtime comparison across all systems (paper Fig. 8:
// RAP-Track adds 2-62% over naive MTB, TRACES 7-1309%).
func Fig8(ms []*Measurement) string {
	rows := make([][]string, 0, len(ms))
	for _, m := range ms {
		rows = append(rows, []string{
			m.App,
			fmt.Sprintf("%d", m.BaselineCycles),
			fmt.Sprintf("%d", m.NaiveCycles),
			fmt.Sprintf("%d", m.RAPCycles),
			fmt.Sprintf("%d", m.TracesCycles),
			pct(m.RAPCycles, m.NaiveCycles),
			pct(m.TracesCycles, m.NaiveCycles),
		})
	}
	return "Fig 8: runtime comparison (CPU cycles)\n" +
		table([]string{"app", "baseline", "naive MTB", "RAP-Track", "TRACES", "RAP vs naive", "TRACES vs naive"}, rows)
}

// Fig9 renders the CFLog size comparison (paper Fig. 9).
func Fig9(ms []*Measurement) string {
	rows := make([][]string, 0, len(ms))
	for _, m := range ms {
		rows = append(rows, []string{
			m.App,
			fmt.Sprintf("%d", m.NaiveLog),
			fmt.Sprintf("%d", m.RAPLog),
			fmt.Sprintf("%d", m.TracesLog),
			ratio(m.NaiveLog, m.RAPLog),
			ratio(m.RAPLog, m.TracesLog),
		})
	}
	return "Fig 9: CFLog size comparison (bytes)\n" +
		table([]string{"app", "naive MTB", "RAP-Track", "TRACES", "naive/RAP", "RAP/TRACES"}, rows)
}

// Fig10 renders the code size comparison (paper Fig. 10: RAP-Track
// slightly above TRACES).
func Fig10(ms []*Measurement) string {
	rows := make([][]string, 0, len(ms))
	for _, m := range ms {
		rows = append(rows, []string{
			m.App,
			fmt.Sprintf("%d", m.BaselineCode),
			fmt.Sprintf("%d", m.RAPCode),
			fmt.Sprintf("%d", m.TracesCode),
			pct(uint64(m.RAPCode), uint64(m.BaselineCode)),
			pct(uint64(m.TracesCode), uint64(m.BaselineCode)),
		})
	}
	return "Fig 10: code size comparison (bytes)\n" +
		table([]string{"app", "baseline", "RAP-Track", "TRACES", "RAP overhead", "TRACES overhead"}, rows)
}

// Footprint renders the session-detail table (§V prose: Secure-World
// footprint, 4 KB MTB partial reports).
func Footprint(ms []*Measurement) string {
	rows := make([][]string, 0, len(ms))
	for _, m := range ms {
		rows = append(rows, []string{
			m.App,
			fmt.Sprintf("%d", m.RAPStubs),
			fmt.Sprintf("%d", m.RAPLoops),
			fmt.Sprintf("%d", m.RAPStatic),
			fmt.Sprintf("%d", m.RAPSecureCalls),
			fmt.Sprintf("%d", m.RAPPartials),
			fmt.Sprintf("%d", m.NaivePartials),
			fmt.Sprintf("%v", m.Verified),
		})
	}
	return "Session details (4 KB MTB): stubs, optimized loops, secure calls, partial reports\n" +
		table([]string{"app", "stubs", "logged loops", "static loops", "RAP secalls", "RAP partials", "naive partials", "verified"}, rows)
}

// All renders every figure.
func All(ms []*Measurement) string {
	return strings.Join([]string{
		Fig1a(ms), Fig1b(ms), Fig8(ms), Fig9(ms), Fig10(ms), Footprint(ms),
	}, "\n")
}
