package report

import (
	"fmt"

	"raptrack/internal/apps"
	"raptrack/internal/attest"
	"raptrack/internal/baseline/traces"
	"raptrack/internal/core"
	"raptrack/internal/linker"
	"raptrack/internal/speccfa"
	"raptrack/internal/trace/pipeline"
	"raptrack/internal/verify"
)

// rapRun links and attests one app with explicit options, returning the
// run stats, the verification outcome, and the count of packets lost to
// the MTB arming window.
func rapRun(a apps.App, lopts linker.Options, armLatency int) (core.RunStats, bool, uint64, error) {
	link, err := core.LinkForCFA(a.Build(), lopts)
	if err != nil {
		return core.RunStats{}, false, 0, err
	}
	key, err := attest.GenerateHMACKey()
	if err != nil {
		return core.RunStats{}, false, 0, err
	}
	prover, err := core.NewProver(link, key, core.ProverConfig{
		SetupMem:   a.SetupMem(),
		MaxSteps:   a.MaxSteps,
		ArmLatency: armLatency,
	})
	if err != nil {
		return core.RunStats{}, false, 0, err
	}
	chal, err := attest.NewChallenge(a.Name)
	if err != nil {
		return core.RunStats{}, false, 0, err
	}
	reports, stats, err := prover.Attest(chal)
	if err != nil {
		return core.RunStats{}, false, 0, err
	}
	dropped := prover.Engine.MTB.DroppedArming
	verdict, err := core.NewVerifier(link, key).Verify(chal, reports)
	if err != nil {
		return core.RunStats{}, false, 0, err
	}
	return stats, verdict.OK, dropped, nil
}

// AblationNopPadding shows why the linker pads stubs with NOPs (§V-C): with
// the pads removed but the hardware arming latency unchanged, the MTB
// misses packets and verification fails.
func AblationNopPadding() (string, error) {
	rows := [][]string{}
	for _, name := range []string{"prime", "gps", "ultrasonic"} {
		a, err := apps.Get(name)
		if err != nil {
			return "", err
		}
		padded := core.DefaultLinkOptions()
		_, okPad, droppedPad, err := rapRun(a, padded, 2)
		if err != nil {
			return "", err
		}
		unpadded := padded
		unpadded.NopPad = 0
		_, okNone, droppedNone, err := rapRun(a, unpadded, 2)
		if err != nil {
			return "", err
		}
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%d", droppedPad), fmt.Sprintf("%v", okPad),
			fmt.Sprintf("%d", droppedNone), fmt.Sprintf("%v", okNone),
		})
	}
	return "Ablation: MTBAR NOP padding vs MTB activation latency (§V-C)\n" +
		table([]string{"app", "dropped (padded)", "verified", "dropped (no pad)", "verified"}, rows), nil
}

// AblationLoopOpt quantifies the §IV-D loop optimization: CFLog bytes and
// cycles with it on, off, and restricted to innermost loops.
func AblationLoopOpt() (string, error) {
	rows := [][]string{}
	for _, name := range []string{"matmult", "syringe", "ultrasonic", "bubblesort"} {
		a, err := apps.Get(name)
		if err != nil {
			return "", err
		}
		full := core.DefaultLinkOptions()
		sFull, okFull, _, err := rapRun(a, full, 2)
		if err != nil {
			return "", err
		}
		inner := full
		inner.NestedLoopOpt = false
		sInner, okInner, _, err := rapRun(a, inner, 2)
		if err != nil {
			return "", err
		}
		off := full
		off.LoopOpt = false
		sOff, okOff, _, err := rapRun(a, off, 2)
		if err != nil {
			return "", err
		}
		if !okFull || !okInner || !okOff {
			return "", fmt.Errorf("report: %s failed verification in loop-opt ablation", name)
		}
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%d", sFull.CFLogBytes), fmt.Sprintf("%d", sFull.Cycles),
			fmt.Sprintf("%d", sInner.CFLogBytes), fmt.Sprintf("%d", sInner.Cycles),
			fmt.Sprintf("%d", sOff.CFLogBytes), fmt.Sprintf("%d", sOff.Cycles),
		})
	}
	return "Ablation: simple-loop optimization (§IV-D) — nested / innermost-only / off\n" +
		table([]string{"app", "log nested", "cyc nested", "log innermost", "cyc innermost", "log off", "cyc off"}, rows), nil
}

// AblationContextSwitch sweeps the NS<->S round-trip cost and shows how
// TRACES runtime scales with it while RAP-Track stays flat (its only
// secure calls are loop-condition logs).
func AblationContextSwitch() (string, error) {
	a, err := apps.Get("gps")
	if err != nil {
		return "", err
	}
	rows := [][]string{}
	for _, csw := range []uint64{20, 60, 110, 200, 400} {
		link, err := core.LinkForCFA(a.Build(), core.DefaultLinkOptions())
		if err != nil {
			return "", err
		}
		key, _ := attest.GenerateHMACKey()
		prover, err := core.NewProver(link, key, core.ProverConfig{
			SetupMem:            a.SetupMem(),
			ContextSwitchCycles: csw,
		})
		if err != nil {
			return "", err
		}
		chal, _ := attest.NewChallenge(a.Name)
		_, stats, err := prover.Attest(chal)
		if err != nil {
			return "", err
		}
		tout, err := traces.Instrument(a.Build(), traces.DefaultOptions())
		if err != nil {
			return "", err
		}
		tres, err := traces.Run(tout, traces.Config{SetupMem: a.SetupMem(), ContextSwitchCycles: csw})
		if err != nil {
			return "", err
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", csw),
			fmt.Sprintf("%d", stats.Cycles),
			fmt.Sprintf("%d", tres.Cycles),
			ratio(tres.Cycles, stats.Cycles),
		})
	}
	return "Ablation: NS<->S context-switch cost sweep (gps)\n" +
		table([]string{"CSW cycles", "RAP-Track cyc", "TRACES cyc", "TRACES/RAP"}, rows), nil
}

// AblationWatermark sweeps the MTB watermark and reports partial-report
// counts and pause cycles (§IV-E) for the log-heaviest workload.
func AblationWatermark() (string, error) {
	a, err := apps.Get("prime")
	if err != nil {
		return "", err
	}
	rows := [][]string{}
	for _, wm := range []int{512, 1024, 2048, 4096} {
		link, err := core.LinkForCFA(a.Build(), core.DefaultLinkOptions())
		if err != nil {
			return "", err
		}
		key, _ := attest.GenerateHMACKey()
		prover, err := core.NewProver(link, key, core.ProverConfig{
			SetupMem:  a.SetupMem(),
			Watermark: wm,
		})
		if err != nil {
			return "", err
		}
		chal, _ := attest.NewChallenge(a.Name)
		reports, stats, err := prover.Attest(chal)
		if err != nil {
			return "", err
		}
		verdict, err := core.NewVerifier(link, key).Verify(chal, reports)
		if err != nil {
			return "", err
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", wm),
			fmt.Sprintf("%d", len(reports)),
			fmt.Sprintf("%d", stats.Partials),
			fmt.Sprintf("%d", stats.PauseCycles),
			fmt.Sprintf("%v", verdict.OK),
		})
	}
	return "Ablation: MTB_FLOW watermark sweep (prime) — partial reports (§IV-E)\n" +
		table([]string{"watermark (B)", "reports", "partials", "pause cyc", "verified"}, rows), nil
}

// AblationSpeculation measures the SpecCFA extension: evidence bytes
// without and with a dictionary mined from a previous accepted session.
func AblationSpeculation() (string, error) {
	rows := [][]string{}
	for _, name := range []string{"gps", "ultrasonic", "prime", "geiger"} {
		a, err := apps.Get(name)
		if err != nil {
			return "", err
		}
		link, err := core.LinkForCFA(a.Build(), core.DefaultLinkOptions())
		if err != nil {
			return "", err
		}
		key, err := attest.GenerateHMACKey()
		if err != nil {
			return "", err
		}
		p1, err := core.NewProver(link, key, core.ProverConfig{SetupMem: a.SetupMem()})
		if err != nil {
			return "", err
		}
		chal1, _ := attest.NewChallenge(name)
		reports1, stats1, err := p1.Attest(chal1)
		if err != nil {
			return "", err
		}
		var log []byte
		for _, r := range reports1 {
			log = append(log, r.CFLog...)
		}
		// Concatenated report windows are whole-packet; lenient decode
		// matches the verifier's framing.
		minePackets, derr := pipeline.New(pipeline.Raw(pipeline.FormatMTB, log)).Packets()
		if derr != nil {
			return "", derr
		}
		dict, err := speccfa.Mine(minePackets, 8, 2, 8)
		if err != nil {
			return "", err
		}
		p2, err := core.NewProver(link, key, core.ProverConfig{SetupMem: a.SetupMem(), Speculation: dict})
		if err != nil {
			return "", err
		}
		chal2, _ := attest.NewChallenge(name)
		reports2, stats2, err := p2.Attest(chal2)
		if err != nil {
			return "", err
		}
		verdict, err := core.NewVerifier(link, key, verify.WithSpeculation(dict)).Verify(chal2, reports2)
		if err != nil {
			return "", err
		}
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%d", stats1.CFLogBytes),
			fmt.Sprintf("%d", stats2.CFLogBytes),
			ratio(uint64(stats1.CFLogBytes), uint64(stats2.CFLogBytes)),
			fmt.Sprintf("%d", dict.Len()),
			fmt.Sprintf("%v", verdict.OK),
		})
	}
	return "Ablation: SpecCFA sub-path speculation (extension; paper cites [57] for the communication bottleneck)\n" +
		table([]string{"app", "plain (B)", "speculated (B)", "reduction", "dict paths", "verified"}, rows), nil
}

// Ablations renders all ablation studies.
func Ablations() (string, error) {
	var out string
	for _, f := range []func() (string, error){
		AblationNopPadding, AblationLoopOpt, AblationContextSwitch, AblationWatermark, AblationSpeculation,
	} {
		s, err := f()
		if err != nil {
			return "", err
		}
		out += s + "\n"
	}
	return out, nil
}
