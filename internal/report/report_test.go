package report

import (
	"strings"
	"testing"

	"raptrack/internal/apps"
)

func fakeMeasurements() []*Measurement {
	return []*Measurement{
		{
			App:            "alpha",
			BaselineCycles: 1000, NaiveCycles: 1000, RAPCycles: 1100, TracesCycles: 5000,
			NaiveLog: 8000, RAPLog: 800, TracesLog: 400,
			BaselineCode: 100, RAPCode: 150, TracesCode: 140,
			RAPStubs: 3, RAPLoops: 1, RAPStatic: 2, RAPSecureCalls: 1,
			RAPPartials: 0, NaivePartials: 2, Verified: true,
		},
		{
			App:            "beta",
			BaselineCycles: 2000, NaiveCycles: 2000, RAPCycles: 2500, TracesCycles: 20000,
			NaiveLog: 16000, RAPLog: 15000, TracesLog: 7500,
			BaselineCode: 200, RAPCode: 260, TracesCode: 250,
			Verified: true,
		},
	}
}

func TestRenderersContainData(t *testing.T) {
	ms := fakeMeasurements()
	cases := []struct {
		name   string
		render func([]*Measurement) string
		want   []string
	}{
		{"Fig1a", Fig1a, []string{"alpha", "8000", "400", "20.00x"}},
		{"Fig1b", Fig1b, []string{"beta", "20000", "10.00x"}},
		{"Fig8", Fig8, []string{"alpha", "+10.0%", "+400.0%"}},
		{"Fig9", Fig9, []string{"alpha", "10.00x", "2.00x"}},
		{"Fig10", Fig10, []string{"alpha", "+50.0%", "+40.0%"}},
		{"Footprint", Footprint, []string{"alpha", "true"}},
	}
	for _, c := range cases {
		out := c.render(ms)
		for _, w := range c.want {
			if !strings.Contains(out, w) {
				t.Errorf("%s output missing %q:\n%s", c.name, w, out)
			}
		}
	}
	all := All(ms)
	for _, c := range cases {
		if !strings.Contains(all, strings.SplitN(c.render(ms), "\n", 2)[0]) {
			t.Errorf("All() missing %s header", c.name)
		}
	}
}

func TestRatioAndPctEdgeCases(t *testing.T) {
	if ratio(5, 0) != "inf" || pct(5, 0) != "inf" {
		t.Error("division by zero must render as inf")
	}
	if got := ratio(10, 4); got != "2.50x" {
		t.Errorf("ratio = %q", got)
	}
	if got := pct(110, 100); got != "+10.0%" {
		t.Errorf("pct = %q", got)
	}
	if got := pct(90, 100); got != "-10.0%" {
		t.Errorf("pct = %q", got)
	}
}

func TestTableAlignment(t *testing.T) {
	out := table([]string{"a", "long-header"}, [][]string{{"xxxxxx", "1"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if len(lines[0]) != len(lines[1]) {
		t.Errorf("separator misaligned: %q vs %q", lines[0], lines[1])
	}
}

// TestMeasureOne exercises the full matrix on the cheapest workload.
func TestMeasureOne(t *testing.T) {
	a, err := apps.Get("temperature")
	if err != nil {
		t.Fatal(err)
	}
	m, err := Measure(a)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Verified {
		t.Errorf("not verified: %s", m.VerifyReason)
	}
	if m.BaselineCycles == 0 || m.RAPCycles <= m.BaselineCycles || m.TracesCycles <= m.RAPCycles {
		t.Errorf("cycle ordering violated: base=%d rap=%d traces=%d",
			m.BaselineCycles, m.RAPCycles, m.TracesCycles)
	}
	if m.NaiveLog == 0 || m.RAPLog == 0 || m.TracesLog == 0 {
		t.Error("missing log sizes")
	}
	if m.RAPCode <= m.BaselineCode {
		t.Error("instrumented code should be larger")
	}
}
