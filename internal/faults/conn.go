package faults

import (
	"errors"
	"fmt"
	"io"
	"time"
)

// ErrInjected marks transport errors manufactured by a FaultyConn, so
// tests can tell injected failures from organic ones with errors.Is.
var ErrInjected = errors.New("faults: injected transport fault")

// FaultyConn wraps a connection with the injector's wire-fault schedule.
// Faults surface exactly as the real failures they model: a disconnect
// closes the underlying conn (the peer sees a genuine EOF/reset mid
// frame), a partial write delivers a strict prefix, bit flips corrupt
// in-flight bytes without touching the caller's buffer.
type FaultyConn struct {
	inner io.ReadWriteCloser
	in    *Injector
}

// WrapConn interposes the injector's wire faults on conn. A zero wire
// plan makes the wrapper transparent.
func (in *Injector) WrapConn(conn io.ReadWriteCloser) *FaultyConn {
	return &FaultyConn{inner: conn, in: in}
}

func (f *FaultyConn) stall() {
	if f.in.roll(f.in.plan.Stall, &f.in.c.Stalls) {
		d := f.in.plan.StallFor
		if d <= 0 {
			d = time.Millisecond
		}
		time.Sleep(d)
	}
}

// disconnect severs the transport for both directions and returns the
// error the caller sees for this operation.
func (f *FaultyConn) disconnect(op string) error {
	f.inner.Close()
	return fmt.Errorf("%w: %s disconnect: %w", ErrInjected, op, io.ErrClosedPipe)
}

// flipBit corrupts one uniformly-chosen bit of b.
func (f *FaultyConn) flipBit(b []byte) {
	i := f.in.intn(len(b)) - 1
	bit := f.in.intn(8) - 1
	b[i] ^= 1 << bit
}

func (f *FaultyConn) Read(p []byte) (int, error) {
	f.stall()
	if f.in.roll(f.in.plan.Disconnect, &f.in.c.Disconnects) {
		return 0, f.disconnect("read")
	}
	n, err := f.inner.Read(p)
	if n > 0 && f.in.roll(f.in.plan.ReadFlip, &f.in.c.ReadFlips) {
		f.flipBit(p[:n])
	}
	return n, err
}

func (f *FaultyConn) Write(p []byte) (int, error) {
	f.stall()
	if f.in.roll(f.in.plan.Disconnect, &f.in.c.Disconnects) {
		return 0, f.disconnect("write")
	}
	buf := p
	if len(p) > 0 && f.in.roll(f.in.plan.WriteFlip, &f.in.c.WriteFlips) {
		buf = append([]byte(nil), p...) // never corrupt the caller's buffer
		f.flipBit(buf)
	}
	if len(p) > 1 && f.in.roll(f.in.plan.PartialWrite, &f.in.c.PartialWrites) {
		keep := f.in.intn(len(buf) - 1) // strict prefix: 1..len-1 bytes
		n, err := f.inner.Write(buf[:keep])
		if err != nil {
			return n, err
		}
		f.inner.Close() // the rest of the frame never arrives
		return n, fmt.Errorf("%w: write cut short after %d/%d bytes: %w",
			ErrInjected, n, len(p), io.ErrUnexpectedEOF)
	}
	n, err := f.inner.Write(buf)
	if n > len(p) {
		n = len(p) // io.Writer contract vs. the copied buffer
	}
	return n, err
}

// Close closes the underlying connection.
func (f *FaultyConn) Close() error { return f.inner.Close() }
