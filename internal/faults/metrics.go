package faults

import "raptrack/internal/obs"

// RegisterMetrics exports the injector's fault counters into reg as the
// labeled family raptrack_injected_faults_total{layer,kind}, collected
// at scrape time from Counts — the registry stays the single source of
// truth without a second counting system inside the injector.
//
// A zero-plan injector registers an all-zero family, which deployments
// use to keep the fault series present (and provably quiet) on
// production scrapes; chaos harnesses register their seeded injectors
// over the same names.
func (in *Injector) RegisterMetrics(reg *obs.Registry) {
	reg.CounterVecFunc("raptrack_injected_faults_total",
		"Faults injected by the chaos schedule, by stack layer and kind.",
		[]string{"layer", "kind"},
		func() []obs.Sample {
			c := in.Counts()
			return []obs.Sample{
				{Labels: []string{"hardware", "packet_drop"}, Value: float64(c.PacketDrops)},
				{Labels: []string{"hardware", "packet_corrupt"}, Value: float64(c.PacketCorruptions)},
				{Labels: []string{"hardware", "watermark_suppress"}, Value: float64(c.WatermarkSuppressions)},
				{Labels: []string{"hardware", "dwt_misfire"}, Value: float64(c.DWTMisfires)},
				{Labels: []string{"hardware", "arm_jitter"}, Value: float64(c.ArmJitters)},
				{Labels: []string{"wire", "read_flip"}, Value: float64(c.ReadFlips)},
				{Labels: []string{"wire", "write_flip"}, Value: float64(c.WriteFlips)},
				{Labels: []string{"wire", "stall"}, Value: float64(c.Stalls)},
				{Labels: []string{"wire", "partial_write"}, Value: float64(c.PartialWrites)},
				{Labels: []string{"wire", "disconnect"}, Value: float64(c.Disconnects)},
				{Labels: []string{"gateway", "verify_panic"}, Value: float64(c.VerifyPanics)},
				{Labels: []string{"gateway", "verify_stall"}, Value: float64(c.VerifyStalls)},
				{Labels: []string{"disk", "short_write"}, Value: float64(c.DiskShortWrites)},
				{Labels: []string{"disk", "write_err"}, Value: float64(c.DiskWriteErrs)},
				{Labels: []string{"disk", "fsync_err"}, Value: float64(c.DiskFsyncErrs)},
				{Labels: []string{"disk", "bit_flip"}, Value: float64(c.DiskBitFlips)},
				{Labels: []string{"disk", "torn_tail"}, Value: float64(c.TornTails)},
			}
		})
}
