// Disk-fault chaos for the evidence journal: seeded schedules of short
// writes, fsync-error bursts, simulated power loss (torn tails), and
// cold-read bit flips, each asserting the journal's recover-or-detect
// contract — every durable record is byte-identical to what was
// appended, every lost record is accounted, and nothing is ever
// silently altered or dropped. All must pass under -race.
package faults

import (
	"fmt"
	"testing"
	"time"

	"raptrack/internal/journal"
	"raptrack/internal/verify"
)

func chaosEntry(i int) journal.Entry {
	return journal.Entry{
		Kind:        journal.KindVerdict,
		Time:        time.Unix(1700000000, int64(i)),
		App:         "prime",
		Device:      fmt.Sprintf("10.0.0.1:%d", 50000+i),
		Outcome:     journal.OutcomeOK,
		Code:        verify.ReasonNone,
		Detail:      fmt.Sprintf("chaos-%d", i),
		Payload:     []byte(fmt.Sprintf("evidence-payload-%08d", i)),
	}
}

// assertDurablePrefix opens the journal read-only with a clean FS and
// checks that the surviving records are exactly a prefix of what was
// offered — recover-or-detect, never silent alteration.
func assertDurablePrefix(t *testing.T, dir string, offered int) int {
	t.Helper()
	rep, err := journal.ScanDir(nil, dir)
	if err != nil {
		t.Fatalf("clean rescan: %v", err)
	}
	if rep.Break != nil {
		t.Fatalf("clean rescan found a chain break: %v", rep.Break)
	}
	if len(rep.Records) > offered {
		t.Fatalf("recovered %d records, more than the %d offered", len(rep.Records), offered)
	}
	for i, rec := range rep.Records {
		want := chaosEntry(i)
		if rec.Seq != uint64(i+1) || rec.Detail != want.Detail ||
			string(rec.Payload) != string(want.Payload) {
			t.Fatalf("record %d altered: %+v", i, rec)
		}
	}
	return len(rep.Records)
}

func TestDiskFaultsShortWriteDegrades(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			in := New(seed, Plan{DiskWriteShort: 0.2})
			fs := in.WrapFS(nil)
			fs.Disarm() // healthy disk for Open; the schedule targets appends
			j, err := journal.Open(dir, journal.Options{FS: fs, Fsync: journal.SyncNever})
			if err != nil {
				t.Fatal(err)
			}
			fs.Arm()
			const offered = 40
			for i := 0; i < offered; i++ {
				if err := j.Append(chaosEntry(i)); err != nil {
					t.Fatalf("append %d: %v", i, err)
				}
			}
			c := j.Counters()
			if c.Appended+c.Shed != offered {
				t.Fatalf("accounting: appended %d + shed %d != offered %d", c.Appended, c.Shed, offered)
			}
			if in.Counts().DiskShortWrites == 0 {
				t.Skip("schedule injected no short write in this run")
			}
			if !j.Degraded() || c.Shed == 0 || c.WriteErrors == 0 {
				t.Fatalf("short write did not degrade: %+v", c)
			}
			_ = j.Close()

			// The short write left a partial frame; recovery truncates it
			// as torn and keeps the intact prefix.
			survived := assertDurablePrefix(t, dir, offered)
			if survived >= offered {
				t.Fatalf("nothing lost despite short write (%d records)", survived)
			}
		})
	}
}

func TestDiskFaultsFsyncErrorBurst(t *testing.T) {
	dir := t.TempDir()
	in := New(7, Plan{DiskFsyncErr: 1.0}) // every fsync fails
	fs := in.WrapFS(nil)
	fs.Disarm()
	j, err := journal.Open(dir, journal.Options{FS: fs, Fsync: journal.SyncEach})
	if err != nil {
		t.Fatal(err)
	}
	fs.Arm()
	const offered = 25
	for i := 0; i < offered; i++ {
		// Appends never error the caller, even with a storming fsync.
		if err := j.Append(chaosEntry(i)); err != nil {
			t.Fatalf("append %d during fsync storm: %v", i, err)
		}
	}
	if !j.Degraded() {
		t.Fatal("fsync storm did not degrade the journal")
	}
	if ok, detail := j.Health(); ok || detail == "" {
		t.Fatalf("health = %v %q", ok, detail)
	}
	c := j.Counters()
	if c.Appended+c.Shed != offered || c.WriteErrors == 0 {
		t.Fatalf("accounting under fsync storm: %+v", c)
	}
	if in.Counts().DiskFsyncErrs == 0 {
		t.Fatal("no fsync errors recorded by the injector")
	}
	_ = j.Close()
	assertDurablePrefix(t, dir, offered)
}

func TestDiskFaultsCrashTornTail(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			in := New(seed, Plan{})
			fs := in.WrapFS(nil)
			// SyncNever: nothing is durable beyond segment headers, so a
			// crash strands a seeded partial tail.
			j, err := journal.Open(dir, journal.Options{FS: fs, Fsync: journal.SyncNever})
			if err != nil {
				t.Fatal(err)
			}
			const offered = 15
			for i := 0; i < offered; i++ {
				if err := j.Append(chaosEntry(i)); err != nil {
					t.Fatal(err)
				}
			}
			// Power cut: no Close, no fsync.
			if err := fs.Crash(); err != nil {
				t.Fatal(err)
			}

			survived := assertDurablePrefix(t, dir, offered)
			// Recovery must also append cleanly at the survived head.
			j2, err := journal.Open(dir, journal.Options{})
			if err != nil {
				t.Fatalf("reopen after crash: %v", err)
			}
			if err := j2.Append(chaosEntry(survived)); err != nil {
				t.Fatal(err)
			}
			if err := j2.Close(); err != nil {
				t.Fatal(err)
			}
			if got := assertDurablePrefix(t, dir, offered); got != survived+1 {
				t.Fatalf("post-crash journal has %d records, want %d", got, survived+1)
			}
		})
	}
}

func TestDiskFaultsCrashAfterFsyncKeepsEverything(t *testing.T) {
	dir := t.TempDir()
	in := New(3, Plan{})
	fs := in.WrapFS(nil)
	j, err := journal.Open(dir, journal.Options{FS: fs, Fsync: journal.SyncEach})
	if err != nil {
		t.Fatal(err)
	}
	const offered = 10
	for i := 0; i < offered; i++ {
		if err := j.Append(chaosEntry(i)); err != nil {
			t.Fatal(err)
		}
	}
	// SyncEach acknowledged every append durable; a crash must lose none.
	if err := fs.Crash(); err != nil {
		t.Fatal(err)
	}
	if got := assertDurablePrefix(t, dir, offered); got != offered {
		t.Fatalf("crash after group commit lost records: %d of %d", got, offered)
	}
}

func TestDiskFaultsColdBitFlipDetected(t *testing.T) {
	// Build a clean journal, then read it back through a flipping FS:
	// every altered read must be detected (refused), never silently
	// accepted as different records.
	dir := t.TempDir()
	j, err := journal.Open(dir, journal.Options{Fsync: journal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	const offered = 20
	for i := 0; i < offered; i++ {
		if err := j.Append(chaosEntry(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	detected := 0
	for seed := uint64(1); seed <= 10; seed++ {
		in := New(seed, Plan{DiskBitFlip: 0.5})
		fs := in.WrapFS(nil)
		rep, err := journal.ScanDir(fs, dir)
		if err != nil {
			// IO-level refusal also counts as detection.
			detected++
			continue
		}
		if rep.Break != nil || rep.Torn != nil {
			detected++
			continue
		}
		// No damage report: then the records must be byte-identical —
		// the flip hit a non-chain file (e.g. the advisory manifest) or
		// did not fire.
		if len(rep.Records) != offered {
			t.Fatalf("seed %d: silent record loss: %d of %d", seed, len(rep.Records), offered)
		}
		for i, rec := range rep.Records {
			if rec.Detail != chaosEntry(i).Detail || string(rec.Payload) != string(chaosEntry(i).Payload) {
				t.Fatalf("seed %d: silent alteration of record %d", seed, i)
			}
		}
	}
	if detected == 0 {
		t.Fatal("no bit flip detected across 10 seeds — schedule not firing")
	}
}

func TestDiskFaultsDeterministicSchedule(t *testing.T) {
	// Same seed + same operation sequence → same fault schedule.
	run := func() (Counts, int) {
		dir := t.TempDir()
		in := New(42, Plan{DiskWriteShort: 0.15, DiskFsyncErr: 0.1})
		fs := in.WrapFS(nil)
		fs.Disarm()
		j, err := journal.Open(dir, journal.Options{FS: fs, Fsync: journal.SyncEach})
		if err != nil {
			t.Fatal(err)
		}
		fs.Arm()
		for i := 0; i < 30; i++ {
			_ = j.Append(chaosEntry(i))
		}
		c := int(j.Counters().Appended)
		_ = j.Close()
		return in.Counts(), c
	}
	c1, a1 := run()
	c2, a2 := run()
	if c1 != c2 || a1 != a2 {
		t.Fatalf("seeded schedule not deterministic:\n%+v (%d appended)\n%+v (%d appended)", c1, a1, c2, a2)
	}
}
