// Package faults is the deterministic chaos-injection subsystem: one
// seeded [Injector] drives fault schedules across all four layers of
// the attestation stack —
//
//   - simulated hardware (MTB packet drops/corruption, watermark
//     suppression driving buffer wraps, DWT comparator misfires, arming
//     jitter) via [Injector.InstrumentMTB] / [Injector.InstrumentDWT];
//   - the wire (bit flips, partial writes, stalls, mid-frame
//     disconnects) via [Injector.WrapConn];
//   - the gateway (verify panics and stalls) via [Injector.VerifyHook];
//   - the disk under the evidence journal (short writes, write and
//     fsync errors, torn tails on simulated power loss, cold-read bit
//     flips) via [Injector.WrapFS].
//
// Determinism contract: an Injector owns a single rand.Rand behind a
// mutex, so a fixed seed and a fixed *sequence of decisions* replays
// exactly. Concurrent sessions interleave nondeterministically, so a
// chaos harness gives each session its own child via [Injector.Fork]
// with a stable label — per-session schedules then replay regardless of
// scheduling.
//
// Everything here is test/chaos machinery: production paths never
// construct an Injector, and all hooks are nil-safe no-ops when absent.
package faults

import (
	"crypto/sha256"
	"encoding/binary"
	"math/rand"
	"sync"
	"time"

	"raptrack/internal/trace"
)

// Plan sets per-event fault probabilities (0 disables, 1 always fires).
// A zero Plan injects nothing.
type Plan struct {
	// Simulated-hardware faults (InstrumentMTB / InstrumentDWT).
	PacketDrop        float64 // MTB capture miss per offered packet
	PacketCorrupt     float64 // single-bit SRAM/bus flip per packet
	WatermarkSuppress float64 // swallowed MTB_FLOW exception per firing
	DWTMisfire        float64 // comparator fails to assert per evaluation
	ArmJitterProb     float64 // extra arming latency per TSTART...
	ArmJitterMax      int     // ...uniform in [1, ArmJitterMax] instructions

	// Wire faults (WrapConn).
	ReadFlip     float64       // single-bit flip in received bytes, per Read
	WriteFlip    float64       // single-bit flip in sent bytes, per Write
	Stall        float64       // injected latency per Read/Write...
	StallFor     time.Duration // ...of this duration (default 1ms)
	PartialWrite float64       // Write delivers a strict prefix then errors
	Disconnect   float64       // peer vanishes mid-frame, per Read/Write

	// Gateway faults (VerifyHook).
	VerifyPanic    float64       // worker panics mid-verify
	VerifyStall    float64       // worker stalls...
	VerifyStallFor time.Duration // ...for this long (default 5ms)

	// Disk faults (WrapFS) against the evidence journal.
	DiskWriteShort float64 // a strict prefix lands, then the write errors
	DiskWriteErr   float64 // write fails outright, nothing lands
	DiskFsyncErr   float64 // fsync reports failure (durability unknown)
	DiskBitFlip    float64 // single-bit flip per whole-file read (cold rot)

	// Fleet faults (router chaos harnesses poll RollShardKill once per
	// scheduling tick): a live shard replica dies and stays down for
	// ShardDownFor before the harness restarts it.
	ShardKill    float64
	ShardDownFor time.Duration // default 50ms
}

// Counts is a snapshot of faults actually injected.
type Counts struct {
	PacketDrops           uint64
	PacketCorruptions     uint64
	WatermarkSuppressions uint64
	DWTMisfires           uint64
	ArmJitters            uint64

	ReadFlips     uint64
	WriteFlips    uint64
	Stalls        uint64
	PartialWrites uint64
	Disconnects   uint64

	VerifyPanics uint64
	VerifyStalls uint64

	DiskShortWrites uint64
	DiskWriteErrs   uint64
	DiskFsyncErrs   uint64
	DiskBitFlips    uint64
	TornTails       uint64 // partial tails stranded by Crash

	ShardKills uint64
}

// Hardware totals the simulated-hardware faults — the ones that perturb
// evidence *before* it is signed. A chaos harness's no-false-accept
// invariant keys on this: an accepted verdict must come from an attempt
// whose Hardware() count is zero (wire faults, by contrast, are caught
// by authenticators and can never corrupt an accepted session).
func (c Counts) Hardware() uint64 {
	return c.PacketDrops + c.PacketCorruptions + c.WatermarkSuppressions +
		c.DWTMisfires + c.ArmJitters
}

// Wire totals the transport faults.
func (c Counts) Wire() uint64 {
	return c.ReadFlips + c.WriteFlips + c.Stalls + c.PartialWrites + c.Disconnects
}

// Disk totals the evidence-journal storage faults.
func (c Counts) Disk() uint64 {
	return c.DiskShortWrites + c.DiskWriteErrs + c.DiskFsyncErrs +
		c.DiskBitFlips + c.TornTails
}

// Total sums every injected fault.
func (c Counts) Total() uint64 {
	return c.Hardware() + c.Wire() + c.VerifyPanics + c.VerifyStalls + c.Disk() +
		c.ShardKills
}

// Injector makes seeded fault decisions. Safe for concurrent use; see
// the package comment for the determinism contract.
type Injector struct {
	seed uint64
	plan Plan

	mu sync.Mutex
	r  *rand.Rand
	c  Counts
}

// New returns an Injector replaying the fault schedule of (seed, plan).
func New(seed uint64, plan Plan) *Injector {
	return &Injector{
		seed: seed,
		plan: plan,
		r:    rand.New(rand.NewSource(int64(seed))),
	}
}

// Fork derives a child Injector with the same Plan whose seed is a hash
// of the parent's seed and label. Same (seed, label) → same child
// schedule, independent of when or from which goroutine Fork is called.
func (in *Injector) Fork(label string) *Injector {
	h := sha256.New()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], in.seed)
	h.Write(b[:])
	h.Write([]byte(label))
	child := binary.LittleEndian.Uint64(h.Sum(nil)[:8])
	return New(child, in.plan)
}

// Plan returns the injector's fault plan.
func (in *Injector) Plan() Plan { return in.plan }

// Counts returns a snapshot of the faults injected so far.
func (in *Injector) Counts() Counts {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.c
}

// roll draws one decision; count is bumped under the same lock so Counts
// snapshots are consistent with the schedule.
func (in *Injector) roll(p float64, count *uint64) bool {
	if p <= 0 {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.r.Float64() >= p {
		return false
	}
	*count++
	return true
}

// intn draws a uniform value in [1, n] under the injector lock.
func (in *Injector) intn(n int) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return 1 + in.r.Intn(n)
}

// InstrumentMTB attaches the injector's hardware-fault schedule to m.
// Corruption flips a single uniformly-chosen bit across the 64-bit
// (src, dst) pair — the minimal SRAM upset the authenticators must catch.
func (in *Injector) InstrumentMTB(m *trace.MTB) {
	m.Faults = &trace.MTBFaults{
		Drop: func(src, dst uint32) bool {
			return in.roll(in.plan.PacketDrop, &in.c.PacketDrops)
		},
		Corrupt: func(src, dst uint32) (uint32, uint32) {
			if !in.roll(in.plan.PacketCorrupt, &in.c.PacketCorruptions) {
				return src, dst
			}
			bit := in.intn(64) - 1
			if bit < 32 {
				src ^= 1 << bit
			} else {
				dst ^= 1 << (bit - 32)
			}
			return src, dst
		},
		SuppressWatermark: func() bool {
			return in.roll(in.plan.WatermarkSuppress, &in.c.WatermarkSuppressions)
		},
		ArmJitter: func() int {
			if in.plan.ArmJitterMax <= 0 ||
				!in.roll(in.plan.ArmJitterProb, &in.c.ArmJitters) {
				return 0
			}
			return in.intn(in.plan.ArmJitterMax)
		},
	}
}

// InstrumentDWT attaches the comparator-misfire schedule to d.
func (in *Injector) InstrumentDWT(d *trace.DWT) {
	d.Misfire = func(trace.RangeRule) bool {
		return in.roll(in.plan.DWTMisfire, &in.c.DWTMisfires)
	}
}

// RollShardKill draws one fleet-layer decision: whether a live shard
// dies this scheduling tick. Deterministic like every other roll — a
// chaos harness polls it on a fixed cadence so the kill schedule
// replays under a pinned seed.
func (in *Injector) RollShardKill() bool {
	return in.roll(in.plan.ShardKill, &in.c.ShardKills)
}

// ShardDownFor returns how long a killed shard stays down before the
// harness restarts it.
func (in *Injector) ShardDownFor() time.Duration {
	if in.plan.ShardDownFor > 0 {
		return in.plan.ShardDownFor
	}
	return 50 * time.Millisecond
}

// VerifyHook returns a gateway verify hook (install via server.WithFaults)
// that panics or stalls verify workers per the plan.
func (in *Injector) VerifyHook() func(app string) {
	return func(app string) {
		if in.roll(in.plan.VerifyStall, &in.c.VerifyStalls) {
			d := in.plan.VerifyStallFor
			if d <= 0 {
				d = 5 * time.Millisecond
			}
			time.Sleep(d)
		}
		if in.roll(in.plan.VerifyPanic, &in.c.VerifyPanics) {
			panic("faults: injected verify panic (app " + app + ")")
		}
	}
}
