package faults

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"raptrack/internal/journal"
)

// ErrInjectedDisk marks every disk fault this layer manufactures, so
// harnesses can assert the journal degraded for the injected reason and
// not a real environmental failure.
var ErrInjectedDisk = errors.New("faults: injected disk error")

// WrapFS wraps a journal filesystem with the injector's seeded
// disk-fault schedule: short writes, write errors, fsync errors, and
// cold-read bit flips. The returned *DiskFS additionally simulates
// power loss — [DiskFS.Crash] discards every byte not yet covered by an
// fsync (keeping a seeded partial tail, the torn-record signature an
// interrupted append leaves on a real disk).
func (in *Injector) WrapFS(inner journal.FS) *DiskFS {
	if inner == nil {
		inner = journal.OSFS
	}
	d := &DiskFS{in: in, inner: inner, synced: make(map[string]int64), size: make(map[string]int64)}
	d.armed.Store(true)
	return d
}

// DiskFS is a chaos filesystem for the evidence journal. It forwards to
// the wrapped FS, injecting faults per the plan, and tracks per-path
// durable offsets so Crash can replay what a power cut leaves behind.
type DiskFS struct {
	in    *Injector
	inner journal.FS
	armed atomic.Bool

	mu     sync.Mutex
	synced map[string]int64 // bytes guaranteed durable per path
	size   map[string]int64 // bytes written per path (durable or not)
}

// Arm enables fault injection (the default). Durability tracking for
// Crash runs regardless of arming.
func (d *DiskFS) Arm() { d.armed.Store(true) }

// Disarm suspends fault injection — a harness opens the journal over a
// healthy disk, then arms the schedule to target steady-state appends.
func (d *DiskFS) Disarm() { d.armed.Store(false) }

// inj returns the injector when faults are armed, nil otherwise.
func (d *DiskFS) inj() *Injector {
	if d.armed.Load() {
		return d.in
	}
	return nil
}

func (d *DiskFS) MkdirAll(path string, perm os.FileMode) error { return d.inner.MkdirAll(path, perm) }

func (d *DiskFS) OpenFile(name string, flag int, perm os.FileMode) (journal.File, error) {
	f, err := d.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	if flag&os.O_TRUNC != 0 {
		d.size[name] = 0
		d.synced[name] = 0
	} else if flag&os.O_APPEND != 0 {
		if _, ok := d.size[name]; !ok {
			// Reopened pre-existing file (recovery): its current contents
			// are durable by definition.
			if data, rerr := d.inner.ReadFile(name); rerr == nil {
				d.size[name] = int64(len(data))
				d.synced[name] = int64(len(data))
			}
		}
	}
	d.mu.Unlock()
	return &diskFile{fs: d, name: name, inner: f}, nil
}

func (d *DiskFS) Rename(oldpath, newpath string) error {
	err := d.inner.Rename(oldpath, newpath)
	if err == nil {
		d.mu.Lock()
		d.size[newpath] = d.size[oldpath]
		d.synced[newpath] = d.synced[oldpath]
		delete(d.size, oldpath)
		delete(d.synced, oldpath)
		d.mu.Unlock()
	}
	return err
}

func (d *DiskFS) Remove(name string) error {
	err := d.inner.Remove(name)
	if err == nil {
		d.mu.Lock()
		delete(d.size, name)
		delete(d.synced, name)
		d.mu.Unlock()
	}
	return err
}

func (d *DiskFS) ReadDir(name string) ([]os.DirEntry, error) { return d.inner.ReadDir(name) }

// ReadFile injects cold-storage bit flips: per the plan, one read
// returns the stored bytes with a single uniformly-chosen bit inverted —
// the undetected-by-the-OS media rot the per-record CRC and hash chain
// exist to catch.
func (d *DiskFS) ReadFile(name string) ([]byte, error) {
	data, err := d.inner.ReadFile(name)
	if err != nil || len(data) == 0 {
		return data, err
	}
	if in := d.inj(); in != nil && in.roll(in.plan.DiskBitFlip, &in.c.DiskBitFlips) {
		out := append([]byte(nil), data...)
		bit := in.intn(len(out)*8) - 1
		out[bit/8] ^= 1 << (bit % 8)
		return out, nil
	}
	return data, err
}

func (d *DiskFS) Truncate(name string, size int64) error {
	err := d.inner.Truncate(name, size)
	if err == nil {
		d.mu.Lock()
		d.size[name] = size
		if d.synced[name] > size {
			d.synced[name] = size
		}
		d.mu.Unlock()
	}
	return err
}

func (d *DiskFS) SyncDir(name string) error { return d.inner.SyncDir(name) }

// Crash simulates power loss: every path loses its bytes beyond the
// last fsync, except for a seeded prefix of the unsynced tail — the
// partially-flushed page a real crash strands, i.e. a torn record for
// the recovery scan to find. Call only after the journal writing
// through this FS is closed or abandoned.
func (d *DiskFS) Crash() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for name, written := range d.size {
		durable := d.synced[name]
		if written <= durable {
			continue
		}
		keep := durable
		if tail := written - durable; tail > 1 && d.in != nil {
			// Strand part of one unsynced page.
			keep += int64(d.in.intn(int(tail)) - 1)
		}
		if err := d.inner.Truncate(name, keep); err != nil {
			return fmt.Errorf("faults: crash truncate %s: %w", name, err)
		}
		if keep > durable {
			d.in.mu.Lock()
			d.in.c.TornTails++
			d.in.mu.Unlock()
		}
		d.size[name] = keep
		d.synced[name] = keep
	}
	return nil
}

// diskFile wraps one journal file handle with write/fsync faults.
type diskFile struct {
	fs    *DiskFS
	name  string
	inner journal.File
}

func (f *diskFile) Write(p []byte) (int, error) {
	in := f.fs.inj()
	if in != nil && in.roll(in.plan.DiskWriteErr, &in.c.DiskWriteErrs) {
		return 0, fmt.Errorf("%w: write %s", ErrInjectedDisk, f.name)
	}
	if in != nil && len(p) > 1 && in.roll(in.plan.DiskWriteShort, &in.c.DiskShortWrites) {
		// A strict prefix lands on disk, then the device errors — the
		// canonical torn-record producer.
		n := in.intn(len(p) - 1)
		wrote, err := f.inner.Write(p[:n])
		f.note(wrote)
		if err != nil {
			return wrote, err
		}
		return wrote, fmt.Errorf("%w: short write %s (%d of %d bytes)", ErrInjectedDisk, f.name, wrote, len(p))
	}
	n, err := f.inner.Write(p)
	f.note(n)
	return n, err
}

func (f *diskFile) note(n int) {
	if n <= 0 {
		return
	}
	f.fs.mu.Lock()
	f.fs.size[f.name] += int64(n)
	f.fs.mu.Unlock()
}

func (f *diskFile) Sync() error {
	in := f.fs.inj()
	if in != nil && in.roll(in.plan.DiskFsyncErr, &in.c.DiskFsyncErrs) {
		return fmt.Errorf("%w: fsync %s", ErrInjectedDisk, f.name)
	}
	if err := f.inner.Sync(); err != nil {
		return err
	}
	f.fs.mu.Lock()
	f.fs.synced[f.name] = f.fs.size[f.name]
	f.fs.mu.Unlock()
	return nil
}

func (f *diskFile) Close() error { return f.inner.Close() }
