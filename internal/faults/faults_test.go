// Unit tests for the injector's determinism contract and the wire
// wrapper's fault semantics. The chaos harness in internal/server leans
// on both: replayable per-session schedules, and injected faults that
// look exactly like the organic failures they model.
package faults

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"raptrack/internal/trace"
)

// schedule draws n drop decisions from a fresh fork of (seed, label).
func schedule(seed uint64, label string, n int) []bool {
	in := New(seed, Plan{PacketDrop: 0.5}).Fork(label)
	out := make([]bool, n)
	for i := range out {
		out[i] = in.roll(in.plan.PacketDrop, &in.c.PacketDrops)
	}
	return out
}

func TestFaultsForkDeterminism(t *testing.T) {
	a := schedule(42, "session-0007", 256)
	b := schedule(42, "session-0007", 256)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same (seed, label) diverged at decision %d", i)
		}
	}

	same := func(x, y []bool) bool {
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if same(a, schedule(42, "session-0008", 256)) {
		t.Error("different labels produced identical schedules")
	}
	if same(a, schedule(43, "session-0007", 256)) {
		t.Error("different seeds produced identical schedules")
	}
}

func TestFaultsCountsMatchSchedule(t *testing.T) {
	in := New(1, Plan{PacketDrop: 0.25})
	fired := uint64(0)
	for i := 0; i < 1000; i++ {
		if in.roll(in.plan.PacketDrop, &in.c.PacketDrops) {
			fired++
		}
	}
	c := in.Counts()
	if c.PacketDrops != fired {
		t.Fatalf("counted %d drops, schedule fired %d", c.PacketDrops, fired)
	}
	if c.Hardware() != fired || c.Wire() != 0 || c.Total() != fired {
		t.Fatalf("layer totals inconsistent: %+v", c)
	}
}

func TestFaultsZeroPlanIsTransparent(t *testing.T) {
	in := New(7, Plan{})
	m := trace.NewMTB(wordSink{}, 0, 256)
	in.InstrumentMTB(m)
	m.SetMaster(true)
	for i := 0; i < 64; i++ {
		m.Record(uint32(i), uint32(i+1))
	}
	if m.InjectedDrops != 0 || m.InjectedCorruptions != 0 {
		t.Fatalf("zero plan perturbed the MTB: drops=%d corruptions=%d",
			m.InjectedDrops, m.InjectedCorruptions)
	}

	var buf bytes.Buffer
	fc := in.WrapConn(nopCloser{&buf})
	msg := []byte("attestation frame bytes")
	if n, err := fc.Write(msg); err != nil || n != len(msg) {
		t.Fatalf("write through zero plan: n=%d err=%v", n, err)
	}
	if !bytes.Equal(buf.Bytes(), msg) {
		t.Fatalf("zero plan corrupted the wire: %q", buf.Bytes())
	}
	if c := in.Counts(); c.Total() != 0 {
		t.Fatalf("zero plan recorded faults: %+v", c)
	}
}

type nopCloser struct{ io.ReadWriter }

func (nopCloser) Close() error { return nil }

// wordSink discards MTB packets; these tests only read the counters.
type wordSink struct{}

func (wordSink) Write32(uint32, uint32) error { return nil }

// TestFaultsConnWriteFlipPreservesCallerBuffer: the wrapper must corrupt
// bytes in flight, never the caller's slice — the prover's report bytes
// are reused for its own chain hash.
func TestFaultsConnWriteFlipPreservesCallerBuffer(t *testing.T) {
	in := New(3, Plan{WriteFlip: 1})
	var buf bytes.Buffer
	fc := in.WrapConn(nopCloser{&buf})
	msg := []byte("do not touch the caller's bytes")
	orig := append([]byte(nil), msg...)
	if _, err := fc.Write(msg); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(msg, orig) {
		t.Fatal("WriteFlip mutated the caller's buffer")
	}
	if bytes.Equal(buf.Bytes(), orig) {
		t.Fatal("WriteFlip delivered uncorrupted bytes")
	}
	diff := 0
	for i := range orig {
		if buf.Bytes()[i] != orig[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("flip touched %d bytes, want exactly 1", diff)
	}
}

// TestFaultsConnPartialWriteSeversTransport: a partial write must deliver
// a strict prefix, surface a typed injected error, and leave the peer
// with a dead conn — the shape of a mid-frame crash.
func TestFaultsConnPartialWriteSeversTransport(t *testing.T) {
	in := New(9, Plan{PartialWrite: 1})
	var buf bytes.Buffer
	fc := in.WrapConn(nopCloser{&buf})
	msg := make([]byte, 128)
	n, err := fc.Write(msg)
	if !errors.Is(err, ErrInjected) || !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v, want injected unexpected-EOF", err)
	}
	if n <= 0 || n >= len(msg) || buf.Len() != n {
		t.Fatalf("delivered %d bytes (buffered %d), want a strict prefix", n, buf.Len())
	}
	if c := in.Counts(); c.PartialWrites != 1 || c.Wire() != 1 {
		t.Fatalf("counts = %+v", c)
	}
}

// TestFaultsConnDisconnectIsInjectedError: disconnects must be
// distinguishable from organic failures via errors.Is(ErrInjected).
func TestFaultsConnDisconnectIsInjectedError(t *testing.T) {
	in := New(11, Plan{Disconnect: 1})
	fc := in.WrapConn(nopCloser{&bytes.Buffer{}})
	if _, err := fc.Read(make([]byte, 8)); !errors.Is(err, ErrInjected) {
		t.Fatalf("read err = %v, want ErrInjected", err)
	}
	if c := in.Counts(); c.Disconnects != 1 {
		t.Fatalf("counts = %+v", c)
	}
}
