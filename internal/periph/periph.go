// Package periph provides deterministic synthetic peripherals for the
// evaluation workloads. The paper's applications drive real sensors
// (ultrasonic ranger, Geiger tube, GPS UART, temperature sensor, syringe
// stepper); here each is replaced by a memory-mapped device fed from a
// seeded PRNG so that executions are reproducible while exercising the
// same control-flow patterns (polling loops, byte-stream parsing, command
// dispatch).
package periph

import "raptrack/internal/mem"

// Standard device base addresses inside the peripheral window.
const (
	UARTBase       = mem.PeriphBase + 0x0000
	UltrasonicBase = mem.PeriphBase + 0x1000
	GeigerBase     = mem.PeriphBase + 0x2000
	TempBase       = mem.PeriphBase + 0x3000
	GPIOBase       = mem.PeriphBase + 0x4000
	HostLinkBase   = mem.PeriphBase + 0x5000
	DeviceWindow   = 0x100 // bytes mapped per device
)

// Rand is a small deterministic xorshift32 PRNG used by all devices.
type Rand struct{ state uint32 }

// NewRand seeds a generator (seed 0 is remapped to a fixed constant).
func NewRand(seed uint32) *Rand {
	if seed == 0 {
		seed = 0x9e3779b9
	}
	return &Rand{state: seed}
}

// Next returns the next 32-bit value.
func (r *Rand) Next() uint32 {
	x := r.state
	x ^= x << 13
	x ^= x >> 17
	x ^= x << 5
	r.state = x
	return x
}

// Intn returns a value in [0, n).
func (r *Rand) Intn(n uint32) uint32 {
	if n == 0 {
		return 0
	}
	return r.Next() % n
}

// UART register offsets.
const (
	UARTData   = 0x00 // RX data (read consumes), TX data (write)
	UARTStatus = 0x04 // bit0: RX available, bit1: TX ready (always)
)

// UART is a byte-stream serial port. The RX stream is fixed at
// construction; TX bytes are captured for inspection.
type UART struct {
	rx  []byte
	pos int
	TX  []byte
}

// NewUART creates a UART whose receive side will deliver stream.
func NewUART(stream []byte) *UART { return &UART{rx: stream} }

// Read32 implements mem.Device.
func (u *UART) Read32(off uint32) uint32 {
	switch off {
	case UARTData:
		if u.pos < len(u.rx) {
			b := u.rx[u.pos]
			u.pos++
			return uint32(b)
		}
		return 0
	case UARTStatus:
		s := uint32(2) // TX always ready
		if u.pos < len(u.rx) {
			s |= 1
		}
		return s
	}
	return 0
}

// Write32 implements mem.Device.
func (u *UART) Write32(off uint32, v uint32) {
	if off == UARTData {
		u.TX = append(u.TX, byte(v))
	}
}

// Ultrasonic ranger registers.
const (
	UltraTrigger = 0x00 // write 1 to emit a pulse
	UltraEcho    = 0x04 // reads 1 while the echo is high
)

// Ultrasonic models a Seeed-style ranger: after a trigger, the echo line
// stays high for a pseudo-random number of polls (the application measures
// distance by counting polls — a variable-duration loop).
type Ultrasonic struct {
	rng      *Rand
	remain   uint32
	MinPolls uint32
	MaxPolls uint32
	Triggers int
}

// NewUltrasonic creates a ranger with echo widths in [min, max] polls.
func NewUltrasonic(seed, min, max uint32) *Ultrasonic {
	if max < min {
		max = min
	}
	return &Ultrasonic{rng: NewRand(seed), MinPolls: min, MaxPolls: max}
}

// Read32 implements mem.Device.
func (u *Ultrasonic) Read32(off uint32) uint32 {
	if off == UltraEcho {
		if u.remain > 0 {
			u.remain--
			return 1
		}
		return 0
	}
	return 0
}

// Write32 implements mem.Device.
func (u *Ultrasonic) Write32(off uint32, v uint32) {
	if off == UltraTrigger && v != 0 {
		u.Triggers++
		u.remain = u.MinPolls + u.rng.Intn(u.MaxPolls-u.MinPolls+1)
	}
}

// Geiger counter registers.
const (
	GeigerPulse = 0x00 // reads 1 when a decay event is pending (read clears)
	GeigerTick  = 0x04 // advances simulated time by one sampling slot
)

// Geiger models a pocket Geiger tube: each sampling slot has a
// pseudo-random chance of holding a decay event.
type Geiger struct {
	rng     *Rand
	pending uint32
	// RatePercent is the per-slot event probability (0-100).
	RatePercent uint32
}

// NewGeiger creates a tube with the given per-slot event rate.
func NewGeiger(seed, ratePercent uint32) *Geiger {
	return &Geiger{rng: NewRand(seed), RatePercent: ratePercent}
}

// Read32 implements mem.Device.
func (g *Geiger) Read32(off uint32) uint32 {
	if off == GeigerPulse {
		p := g.pending
		g.pending = 0
		return p
	}
	return 0
}

// Write32 implements mem.Device.
func (g *Geiger) Write32(off uint32, v uint32) {
	if off == GeigerTick {
		if g.rng.Intn(100) < g.RatePercent {
			g.pending = 1
		}
	}
}

// Temperature sensor registers (Grove-style analog thermistor front end).
const (
	TempSample = 0x00 // raw 10-bit ADC reading; a new sample per read
)

// Temp produces a slowly wandering raw ADC sequence.
type Temp struct {
	rng *Rand
	raw uint32
}

// NewTemp creates a sensor starting near mid-scale.
func NewTemp(seed uint32) *Temp { return &Temp{rng: NewRand(seed), raw: 512} }

// Read32 implements mem.Device.
func (t *Temp) Read32(off uint32) uint32 {
	if off == TempSample {
		// Random walk clamped to 10 bits.
		delta := int32(t.rng.Intn(9)) - 4
		v := int32(t.raw) + delta
		if v < 0 {
			v = 0
		}
		if v > 1023 {
			v = 1023
		}
		t.raw = uint32(v)
		return t.raw
	}
	return 0
}

// Write32 implements mem.Device.
func (t *Temp) Write32(uint32, uint32) {}

// GPIO registers.
const (
	GPIOOut = 0x00 // output latch
)

// GPIO is an output port that counts writes (stepper pulses, valve
// toggles).
type GPIO struct {
	Latch  uint32
	Writes int
}

// Read32 implements mem.Device.
func (g *GPIO) Read32(off uint32) uint32 {
	if off == GPIOOut {
		return g.Latch
	}
	return 0
}

// Write32 implements mem.Device.
func (g *GPIO) Write32(off uint32, v uint32) {
	if off == GPIOOut {
		g.Latch = v
		g.Writes++
	}
}

// HostLink registers.
const (
	HostData = 0x00 // result word sink
)

// HostLink captures 32-bit result words the application reports.
type HostLink struct{ Words []uint32 }

// Read32 implements mem.Device.
func (h *HostLink) Read32(uint32) uint32 { return 0 }

// Write32 implements mem.Device.
func (h *HostLink) Write32(off uint32, v uint32) {
	if off == HostData {
		h.Words = append(h.Words, v)
	}
}
