package periph

import "testing"

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
	if NewRand(0).Next() == 0 {
		t.Error("zero seed must be remapped")
	}
	r := NewRand(3)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(10); v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
	}
	if NewRand(1).Intn(0) != 0 {
		t.Error("Intn(0) should be 0")
	}
}

func TestUARTStream(t *testing.T) {
	u := NewUART([]byte{10, 20, 30})
	if u.Read32(UARTStatus)&1 == 0 {
		t.Fatal("RX should be available")
	}
	for i, want := range []uint32{10, 20, 30} {
		if got := u.Read32(UARTData); got != want {
			t.Errorf("byte %d = %d", i, got)
		}
	}
	if u.Read32(UARTStatus)&1 != 0 {
		t.Fatal("RX should be exhausted")
	}
	if u.Read32(UARTData) != 0 {
		t.Error("exhausted read should be 0")
	}
	u.Write32(UARTData, 'A')
	u.Write32(UARTData, 'B')
	if string(u.TX) != "AB" {
		t.Errorf("TX = %q", u.TX)
	}
	if u.Read32(UARTStatus)&2 == 0 {
		t.Error("TX must always be ready")
	}
}

func TestUltrasonicEchoWidths(t *testing.T) {
	u := NewUltrasonic(1, 5, 9)
	for trial := 0; trial < 20; trial++ {
		u.Write32(UltraTrigger, 1)
		polls := 0
		for u.Read32(UltraEcho) == 1 {
			polls++
			if polls > 100 {
				t.Fatal("echo never fell")
			}
		}
		if polls < 5 || polls > 9 {
			t.Errorf("trial %d: %d polls outside [5,9]", trial, polls)
		}
	}
	if u.Triggers != 20 {
		t.Errorf("Triggers = %d", u.Triggers)
	}
	// No trigger, no echo.
	v := NewUltrasonic(1, 5, 9)
	if v.Read32(UltraEcho) != 0 {
		t.Error("echo high without trigger")
	}
}

func TestGeigerEvents(t *testing.T) {
	g := NewGeiger(11, 50)
	events := 0
	for i := 0; i < 1000; i++ {
		g.Write32(GeigerTick, 1)
		if g.Read32(GeigerPulse) == 1 {
			events++
		}
		if g.Read32(GeigerPulse) != 0 {
			t.Fatal("pulse must clear on read")
		}
	}
	if events < 400 || events > 600 {
		t.Errorf("events = %d, expected ~500 at 50%%", events)
	}
	never := NewGeiger(11, 0)
	for i := 0; i < 100; i++ {
		never.Write32(GeigerTick, 1)
		if never.Read32(GeigerPulse) != 0 {
			t.Fatal("0%% rate produced an event")
		}
	}
}

func TestTempRandomWalkBounds(t *testing.T) {
	d := NewTemp(5)
	prev := uint32(512)
	for i := 0; i < 5000; i++ {
		v := d.Read32(TempSample)
		if v > 1023 {
			t.Fatalf("sample %d out of 10-bit range", v)
		}
		diff := int32(v) - int32(prev)
		if diff < -4 || diff > 4 {
			t.Fatalf("step %d too large", diff)
		}
		prev = v
	}
}

func TestGPIOLatchAndCount(t *testing.T) {
	g := &GPIO{}
	g.Write32(GPIOOut, 1)
	g.Write32(GPIOOut, 0)
	g.Write32(GPIOOut, 1)
	if g.Latch != 1 || g.Writes != 3 {
		t.Errorf("latch=%d writes=%d", g.Latch, g.Writes)
	}
	if g.Read32(GPIOOut) != 1 {
		t.Error("latch readback")
	}
}

func TestHostLinkCapture(t *testing.T) {
	h := &HostLink{}
	h.Write32(HostData, 42)
	h.Write32(HostData, 43)
	h.Write32(0x40, 99) // not the data register
	if len(h.Words) != 2 || h.Words[0] != 42 || h.Words[1] != 43 {
		t.Errorf("words = %v", h.Words)
	}
}
