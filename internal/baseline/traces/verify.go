package traces

import (
	"fmt"

	"raptrack/internal/cfg"
	"raptrack/internal/isa"
)

// Lossless verification of TRACES evidence.
//
// TRACES logs 4-byte destination words with no source annotation, so a
// word's site must be inferred from replay context — with the same
// fundamental ambiguity as RAP-Track's presence-encoded conditionals
// (worse, in fact: every iteration of a trampolined loop logs the same
// destination). Verification therefore reuses the pushdown-summarization
// approach of internal/verify in a value-set form: frame walks are
// memoized on (pc, cursor, loop state) and yield outcome sets, iterated
// with a dependency-driven worklist; the report is accepted iff some
// policy-conforming derivation consumes the evidence exactly.

// Verdict is the outcome of verifying one TRACES evidence stream.
type Verdict struct {
	OK     bool
	Reason string
	// Words and Evals are the evidence length and search effort.
	Words, Evals int
}

// haltSentinel mirrors the CPU's initial-LR halt value.
const haltSentinel = 0xffff_fffe

type tExit uint8

const (
	tLeaf tExit = iota
	tRet
	tHalt
)

type tOutcome struct {
	kind   tExit
	cursor int
	retDst uint32
}

type tKey struct {
	pc     uint32
	cursor int
	lhash  uint64
}

type tEntry struct {
	outs       map[tOutcome]struct{}
	pc         uint32
	cursor     int
	loopCtx    tLoopMap
	dependents map[tKey]struct{}
	visiting   bool
}

type tLoopMap map[uint32]uint64

func (l tLoopMap) clone() tLoopMap {
	c := make(tLoopMap, len(l)+1)
	for k, v := range l {
		c[k] = v
	}
	return c
}

func (l tLoopMap) hash() uint64 {
	var h uint64
	for k, v := range l {
		h += (uint64(k)*1099511628211 ^ v) * 1099511628211
	}
	return h
}

type tVerifier struct {
	out     *Output
	ev      []uint32
	entries map[uint32]bool

	memo      map[tKey]*tEntry
	advMemo   map[tKey]tAdv
	evalStack []tKey
	dirty     []tKey
	inDirty   map[tKey]bool
	evals     int

	work    uint64
	maxWork uint64
	aborted bool

	reason string
}

func (t *tVerifier) note(format string, args ...any) {
	if t.reason == "" {
		t.reason = fmt.Sprintf(format, args...)
	}
}

func (t *tVerifier) budget() bool {
	t.work++
	if t.work > t.maxWork {
		t.aborted = true
		return false
	}
	return true
}

func (t *tVerifier) word(cursor int) (uint32, bool) {
	if cursor < len(t.ev) {
		return t.ev[cursor], true
	}
	return 0, false
}

type tAdv struct {
	prune   bool
	node    bool
	pc      uint32
	cursor  int
	loopCtx tLoopMap
	exit    tOutcome
}

// advance walks deterministic steps to the next decision node or frame
// exit.
func (t *tVerifier) advance(pc uint32, cursor int, loopCtx tLoopMap) tAdv {
	img := t.out.Image
	var steps uint64
	segCap := uint64(len(img.Code)) + 16
	for {
		steps++
		if steps > segCap || !t.budget() {
			if steps > segCap {
				t.note("deterministic segment does not terminate at %#x", pc)
			}
			return tAdv{prune: true}
		}
		ins, ok := img.Code[pc]
		if !ok {
			t.note("path leaves program code at %#x", pc)
			return tAdv{prune: true}
		}
		next := pc + ins.Size()

		if site, isSite := t.out.Sites[pc]; isSite {
			switch site.Class {
			case cfg.ClassCondNonLoop, cfg.ClassCondLoopBack, cfg.ClassCondLoopFwd, cfg.ClassIndirectCall:
				return tAdv{node: true, pc: pc, cursor: cursor, loopCtx: loopCtx}
			case cfg.ClassReturn:
				dst, have := t.word(cursor)
				if !have {
					t.note("missing return evidence for site %#x", pc)
					return tAdv{prune: true}
				}
				return tAdv{exit: tOutcome{kind: tRet, cursor: cursor + 1, retDst: dst}}
			case cfg.ClassIndirectJump:
				dst, have := t.word(cursor)
				if !have {
					t.note("missing indirect-jump evidence for site %#x", pc)
					return tAdv{prune: true}
				}
				fr, okr := img.FuncRanges[site.Func]
				if !okr || dst < fr.Base || dst >= fr.Limit {
					t.note("indirect jump to %#x escapes function %q", dst, site.Func)
					return tAdv{prune: true}
				}
				if _, isInstr := img.Code[dst]; !isInstr {
					t.note("indirect jump to %#x is not an instruction", dst)
					return tAdv{prune: true}
				}
				pc = dst
				cursor++
				steps = 0
				continue
			}
		}
		if _, isGuard := t.out.Guards[pc]; isGuard {
			return tAdv{node: true, pc: pc, cursor: cursor, loopCtx: loopCtx}
		}
		if ls, isCond := t.out.LoopConds[pc]; isCond {
			rem, have := loopCtx[pc]
			if !have {
				if !ls.Loop.Static {
					t.note("optimized loop branch at %#x without a logged condition", pc)
					return tAdv{prune: true}
				}
				trips, err := ls.Loop.TripCount(uint32(ls.Loop.EntryValue))
				if err != nil {
					t.note("static loop trip count: %v", err)
					return tAdv{prune: true}
				}
				rem = trips
				loopCtx = loopCtx.clone()
				loopCtx[pc] = rem
			}
			taken := false
			loopCtx = loopCtx.clone()
			if ls.Loop.Forward {
				if rem == 0 {
					taken = true
					delete(loopCtx, pc)
				} else {
					loopCtx[pc] = rem - 1
				}
			} else {
				if rem > 0 {
					taken = true
					loopCtx[pc] = rem - 1
				} else {
					delete(loopCtx, pc)
				}
			}
			if taken {
				pc = ins.Target
			} else {
				pc = next
			}
			steps = 0
			continue
		}
		if ls, isLoop := t.out.Loops[pc]; isLoop {
			v, have := t.word(cursor)
			if !have {
				t.note("missing loop-condition evidence at %#x", pc)
				return tAdv{prune: true}
			}
			trips, err := ls.Loop.TripCount(v)
			if err != nil {
				t.note("loop-condition evidence invalid: %v", err)
				return tAdv{prune: true}
			}
			loopCtx = loopCtx.clone()
			loopCtx[ls.CondAddr] = trips
			cursor++
			steps = 0
			pc = next
			continue
		}

		switch ins.Kind() {
		case isa.KindNone:
			pc = next
		case isa.KindDirect:
			pc = ins.Target
		case isa.KindCall:
			return tAdv{node: true, pc: pc, cursor: cursor, loopCtx: loopCtx}
		case isa.KindReturn:
			return tAdv{exit: tOutcome{kind: tLeaf, cursor: cursor}}
		case isa.KindHalt:
			return tAdv{exit: tOutcome{kind: tHalt, cursor: cursor}}
		case isa.KindSecureCall:
			t.note("unexpected secure call at %#x", pc)
			return tAdv{prune: true}
		default:
			t.note("unlinked non-deterministic branch at %#x", pc)
			return tAdv{prune: true}
		}
	}
}

func (t *tVerifier) walkState(pc uint32, cursor int, loopCtx tLoopMap) map[tOutcome]struct{} {
	k := tKey{pc: pc, cursor: cursor, lhash: loopCtx.hash()}
	st, ok := t.advMemo[k]
	if !ok {
		st = t.advance(pc, cursor, loopCtx)
		t.advMemo[k] = st
	}
	if st.prune {
		return nil
	}
	if !st.node {
		return map[tOutcome]struct{}{st.exit: {}}
	}
	return t.walkNode(st.pc, st.cursor, st.loopCtx)
}

func (t *tVerifier) walkNode(pc uint32, cursor int, loopCtx tLoopMap) map[tOutcome]struct{} {
	key := tKey{pc: pc, cursor: cursor, lhash: loopCtx.hash()}
	e := t.memo[key]
	if e == nil {
		e = &tEntry{
			outs:       make(map[tOutcome]struct{}),
			pc:         pc,
			cursor:     cursor,
			loopCtx:    loopCtx,
			dependents: make(map[tKey]struct{}),
		}
		t.memo[key] = e
		t.evaluate(key, e)
	}
	if n := len(t.evalStack); n > 0 {
		e.dependents[t.evalStack[n-1]] = struct{}{}
	}
	return e.outs
}

func (t *tVerifier) markDirty(key tKey) {
	if !t.inDirty[key] {
		t.inDirty[key] = true
		t.dirty = append(t.dirty, key)
	}
}

func (t *tVerifier) evaluate(key tKey, e *tEntry) {
	if e.visiting || t.aborted {
		return
	}
	e.visiting = true
	t.evalStack = append(t.evalStack, key)
	t.evals++
	pc, cursor, loopCtx := e.pc, e.cursor, e.loopCtx

	merge := func(outs map[tOutcome]struct{}) {
		for o := range outs {
			if _, ok := e.outs[o]; !ok {
				e.outs[o] = struct{}{}
				for d := range e.dependents {
					t.markDirty(d)
				}
			}
		}
	}

	img := t.out.Image
	ins := img.Code[pc]
	next := pc + ins.Size()

	if site, isSite := t.out.Sites[pc]; isSite {
		switch site.Class {
		case cfg.ClassCondNonLoop, cfg.ClassCondLoopBack:
			merge(t.walkState(next, cursor, loopCtx))
			if w, have := t.word(cursor); have && w == site.StaticTarget {
				merge(t.walkState(site.StaticTarget, cursor+1, loopCtx))
			}
		case cfg.ClassCondLoopFwd:
			w, have := t.word(cursor)
			if !have || w != site.StaticTarget {
				t.note("missing loop-continue evidence for site %#x", pc)
			} else {
				merge(t.walkState(site.StaticTarget, cursor+1, loopCtx))
			}
		case cfg.ClassIndirectCall:
			w, have := t.word(cursor)
			if !have {
				t.note("missing indirect-call evidence for site %#x", pc)
			} else if !t.entries[w] {
				t.note("indirect call to %#x, not a function entry (JOP)", w)
			} else {
				t.call(pc, next, w, cursor+1, loopCtx, merge)
			}
		}
	} else if site, isGuard := t.out.Guards[pc]; isGuard {
		merge(t.walkState(ins.Target, cursor, loopCtx))
		if w, have := t.word(cursor); have && w == site.StaticTarget {
			merge(t.walkState(next, cursor, loopCtx))
		}
	} else if ins.Kind() == isa.KindCall {
		t.call(pc, next, ins.Target, cursor, loopCtx, merge)
	}

	t.evalStack = t.evalStack[:len(t.evalStack)-1]
	e.visiting = false
}

func (t *tVerifier) call(pc, retSite, callee uint32, cursor int, loopCtx tLoopMap,
	merge func(map[tOutcome]struct{})) {
	for co := range t.walkState(callee, cursor, nil) {
		switch co.kind {
		case tHalt:
			merge(map[tOutcome]struct{}{co: {}})
		case tLeaf:
			merge(t.walkState(retSite, co.cursor, loopCtx))
		case tRet:
			if co.retDst == retSite {
				merge(t.walkState(retSite, co.cursor, loopCtx))
			} else {
				t.note("return destination %#x != call-site successor %#x (ROP)", co.retDst, retSite)
			}
		}
	}
}

// Verify reconstructs evidence (the logged destination stream) against the
// instrumented artifact and reports whether some policy-conforming
// execution explains it exactly.
func Verify(out *Output, evidence []uint32) *Verdict {
	entryPC, err := out.Image.EntryAddr()
	if err != nil {
		return &Verdict{OK: false, Reason: err.Error(), Words: len(evidence)}
	}
	t := &tVerifier{
		out:     out,
		ev:      evidence,
		entries: make(map[uint32]bool),
		memo:    make(map[tKey]*tEntry),
		advMemo: make(map[tKey]tAdv),
		inDirty: make(map[tKey]bool),
		maxWork: 500_000_000,
	}
	for name, r := range out.Image.FuncRanges {
		if name == VeneerFunc {
			continue
		}
		t.entries[r.Base] = true
	}

	t.walkState(entryPC, 0, nil)
	for len(t.dirty) > 0 && !t.aborted {
		key := t.dirty[0]
		t.dirty = t.dirty[1:]
		delete(t.inDirty, key)
		if e := t.memo[key]; e != nil {
			t.evaluate(key, e)
		}
	}
	vd := &Verdict{Words: len(evidence), Evals: t.evals}
	if t.aborted {
		vd.Reason = "verification exceeded the work budget"
		return vd
	}
	for o := range t.walkState(entryPC, 0, nil) {
		if o.cursor != len(evidence) {
			continue
		}
		if o.kind == tHalt || o.kind == tLeaf || (o.kind == tRet && o.retDst == haltSentinel) {
			vd.OK = true
			return vd
		}
	}
	vd.Reason = t.reason
	if vd.Reason == "" {
		vd.Reason = "no benign path explains the evidence"
	} else {
		vd.Reason = "no benign path explains the evidence; first contradiction: " + vd.Reason
	}
	return vd
}
