// Package traces implements the TRACES baseline (Caulfield et al., the
// state-of-the-art instrumentation-based CFA the paper compares against,
// §V). Every non-deterministic branch is redirected through a Non-Secure
// veneer that performs a SECALL into the Secure World, which appends a
// 4-byte destination entry to a TEE-protected CFLog and charges the
// NS<->S context-switch cost — the overhead RAP-Track's parallel tracking
// eliminates. The branch classification is identical to RAP-Track's ("it
// is also possible to implement instrumentation-based CFA that records the
// exact branches tracked by RAP-Track", §V-B); the loop-condition
// optimization is applied to innermost simple loops only, matching the
// published TRACES scope.
package traces

import (
	"fmt"

	"raptrack/internal/asm"
	"raptrack/internal/cfg"
	"raptrack/internal/isa"
	"raptrack/internal/mem"
	"raptrack/internal/tz"
)

// VeneerFunc is the name of the synthesized veneer region.
const VeneerFunc = "__traces_veneers"

// Options configures instrumentation.
type Options struct {
	// Base is the layout base address (default mem.NSCodeBase).
	Base uint32
	// LoopOpt enables the innermost-simple-loop condition logging.
	LoopOpt bool
}

// DefaultOptions returns the published-TRACES configuration.
func DefaultOptions() Options {
	return Options{Base: mem.NSCodeBase, LoopOpt: true}
}

// Stats summarizes the instrumentation.
type Stats struct {
	Veneers        int
	ByClass        map[cfg.Class]int
	OptimizedLoops int
	StaticLoops    int
	CodeBefore     uint32
	CodeAfter      uint32
}

// Site describes one instrumented branch site in the final image.
type Site struct {
	Class cfg.Class
	Func  string
	// SiteAddr is the redirected branch at the original location;
	// GuardAddr (forward loops) the kept conditional preceding it.
	SiteAddr  uint32
	GuardAddr uint32
	// StaticTarget is the destination the Secure World logs for
	// conditional classes (the taken target, or the fall-through label of
	// a forward-loop continue).
	StaticTarget uint32

	siteNewIdx, guardNewIdx int
	ref                     *veneerRef
}

// LoopSite describes one optimized loop. Static loops carry no SECALL.
type LoopSite struct {
	Loop       *cfg.Loop
	Func       string
	SecallAddr uint32
	CondAddr   uint32

	secallNewIdx, condNewIdx int
}

// Output is the instrumented artifact set.
type Output struct {
	Prog  *asm.Program
	Image *asm.Image
	// SiteTargets maps each conditional veneer's SECALL address to the
	// statically-known destination the Secure World logs for it.
	SiteTargets map[uint32]uint32
	// Site metadata for lossless verification (see Verify).
	Sites     map[uint32]*Site
	Guards    map[uint32]*Site
	Loops     map[uint32]*LoopSite
	LoopConds map[uint32]*LoopSite
	Stats     Stats
}

type veneerRef struct {
	secallIdx int // SECALL index within the veneer function
	branchIdx int // following branch index (holds the resolved target)
}

// tEdit augments an asm.Edit with offset bookkeeping for site resolution.
type tEdit struct {
	asm.Edit
	site              *Site
	siteOff, guardOff int
	loop              *LoopSite
	secallOff         int
}

// Instrument rewrites prog (not modified; a clone is transformed) with
// TRACES logging veneers.
func Instrument(p *asm.Program, opts Options) (*Output, error) {
	if opts.Base == 0 {
		opts.Base = mem.NSCodeBase
	}
	prog := p.Clone()
	analysis, err := cfg.Analyze(prog, cfg.Options{LoopOpt: opts.LoopOpt, NestedLoopOpt: false})
	if err != nil {
		return nil, err
	}
	out := &Output{
		Prog:        prog,
		SiteTargets: make(map[uint32]uint32),
		Sites:       make(map[uint32]*Site),
		Guards:      make(map[uint32]*Site),
		Loops:       make(map[uint32]*LoopSite),
		LoopConds:   make(map[uint32]*LoopSite),
	}
	out.Stats.ByClass = make(map[cfg.Class]int)
	out.Stats.CodeBefore = progCodeSize(p)

	ven := asm.NewFunction(VeneerFunc)
	var allSites []*Site
	var allLoops []*LoopSite
	count := 0

	for _, fn := range prog.Funcs {
		fa := analysis.Funcs[fn.Name]
		edits := make(map[int]*tEdit)

		simpleCond := make(map[int]*cfg.Loop)
		if opts.LoopOpt {
			seenHeads := make(map[int]bool)
			for _, l := range fa.Loops {
				if !l.Simple {
					continue
				}
				if seenHeads[l.Head] {
					l.Simple = false
					continue
				}
				seenHeads[l.Head] = true
				simpleCond[l.Cond] = l
			}
		}

		for i, ins := range fn.Instrs {
			class := fa.Classes[i]
			if !class.NonDeterministic() {
				continue
			}
			if _, ok := simpleCond[i]; ok {
				continue
			}
			label := fmt.Sprintf("v%d", count)
			count++
			full := VeneerFunc + "." + label
			ven.Label(label)
			out.Stats.ByClass[class]++
			site := &Site{Class: class, Func: fn.Name, guardNewIdx: -1}
			e := &tEdit{site: site}

			switch class {
			case cfg.ClassIndirectCall:
				ven.Emit(isa.Instr{Op: isa.OpSECALL, Imm: tz.SvcImm(tz.SvcLogReg, int32(ins.Rm))})
				ven.Emit(isa.Instr{Op: isa.OpBX, Rm: ins.Rm})
				e.Seq = []isa.Instr{{Op: isa.OpBL, Sym: full, Wide: true}}
			case cfg.ClassReturn:
				if ins.Op == isa.OpPOP {
					off := int32(4 * (ins.List.Count() - 1)) // PC pops last (highest address)
					ven.Emit(isa.Instr{Op: isa.OpSECALL, Imm: tz.SvcImm(tz.SvcLogRet, off)})
				} else {
					ven.Emit(isa.Instr{Op: isa.OpSECALL, Imm: tz.SvcImm(tz.SvcLogLR, 0)})
				}
				moved := ins
				moved.Addr, moved.Target = 0, 0
				ven.Emit(moved)
				e.Seq = []isa.Instr{{Op: isa.OpB, Cond: isa.AL, Sym: full, Wide: true}}
			case cfg.ClassIndirectJump:
				if ins.Op == isa.OpLDRPC {
					ven.Emit(isa.Instr{Op: isa.OpSECALL, Imm: tz.SvcImm(tz.SvcLogTable, int32(ins.Rn)|int32(ins.Rm)<<4)})
				} else {
					ven.Emit(isa.Instr{Op: isa.OpSECALL, Imm: tz.SvcImm(tz.SvcLogReg, int32(ins.Rm))})
				}
				moved := ins
				moved.Addr, moved.Target = 0, 0
				ven.Emit(moved)
				e.Seq = []isa.Instr{{Op: isa.OpB, Cond: isa.AL, Sym: full, Wide: true}}
			case cfg.ClassCondNonLoop, cfg.ClassCondLoopBack:
				site.ref = &veneerRef{secallIdx: len(ven.Instrs), branchIdx: len(ven.Instrs) + 1}
				ven.Emit(isa.Instr{Op: isa.OpSECALL, Imm: tz.SvcImm(tz.SvcLogSite, 0)})
				ven.Emit(isa.Instr{Op: isa.OpB, Cond: isa.AL, Sym: qualify(fn, ins.Sym), Wide: true})
				e.Seq = []isa.Instr{{Op: isa.OpB, Cond: ins.Cond, Sym: full, Wide: true}}
			case cfg.ClassCondLoopFwd:
				fall := fmt.Sprintf("__tr_fall%d", count)
				site.ref = &veneerRef{secallIdx: len(ven.Instrs), branchIdx: len(ven.Instrs) + 1}
				ven.Emit(isa.Instr{Op: isa.OpSECALL, Imm: tz.SvcImm(tz.SvcLogSite, 0)})
				ven.Emit(isa.Instr{Op: isa.OpB, Cond: isa.AL, Sym: fn.Name + "." + fall, Wide: true})
				kept := ins
				kept.Addr, kept.Target = 0, 0
				e.Seq = []isa.Instr{
					kept,
					{Op: isa.OpB, Cond: isa.AL, Sym: full, Wide: true},
				}
				e.Labels = map[string]int{fall: 2}
				e.guardOff = 0
				e.siteOff = 1
			default:
				return nil, fmt.Errorf("traces: unhandled class %v", class)
			}
			edits[i] = e
			allSites = append(allSites, site)
		}

		// Innermost simple loops: log the loop condition once. Fully
		// static loops need no logging at all.
		loopIdx := 0
		for _, l := range fa.Loops {
			if !l.Simple {
				continue
			}
			site := &LoopSite{Loop: l, Func: fn.Name}
			if l.Static {
				site.secallNewIdx = -1
				site.condNewIdx = l.Cond
				allLoops = append(allLoops, site)
				out.Stats.StaticLoops++
				continue
			}
			body := fmt.Sprintf("__tr_l%d_body", loopIdx)
			loopIdx++
			block := []isa.Instr{
				{Op: isa.OpPUSH, List: isa.Regs(isa.R0)},
				{Op: isa.OpMOVr, Rd: isa.R0, Rm: l.CounterReg},
				{Op: isa.OpSECALL, Imm: tz.SvcImm(tz.SvcLogLoop, 0)},
				{Op: isa.OpPOP, List: isa.Regs(isa.R0)},
			}
			if e, ok := edits[l.Head]; ok {
				n := len(block)
				e.Seq = append(append([]isa.Instr(nil), block...), e.Seq...)
				if e.Labels == nil {
					e.Labels = make(map[string]int)
				} else {
					for k := range e.Labels {
						e.Labels[k] += n
					}
				}
				e.Labels[body] = n
				e.siteOff += n
				e.guardOff += n
				e.loop = site
				e.secallOff = 2
			} else {
				head := fn.Instrs[l.Head]
				head.Addr, head.Target = 0, 0
				edits[l.Head] = &tEdit{
					Edit: asm.Edit{
						Seq:    append(append([]isa.Instr(nil), block...), head),
						Labels: map[string]int{body: len(block)},
					},
					loop:      site,
					secallOff: 2,
				}
			}
			tail := fn.Instrs[l.Tail]
			tail.Addr, tail.Target = 0, 0
			tail.Sym = body
			if _, ok := edits[l.Tail]; ok {
				return nil, fmt.Errorf("traces: %s: conflicting edit on loop tail %d", fn.Name, l.Tail)
			}
			edits[l.Tail] = &tEdit{Edit: asm.Edit{Seq: []isa.Instr{tail}}}
			site.condNewIdx = l.Cond
			allLoops = append(allLoops, site)
			out.Stats.OptimizedLoops++
		}

		plain := make(map[int]asm.Edit, len(edits))
		for i, e := range edits {
			plain[i] = e.Edit
		}
		newIndex := asm.RewriteFunc(fn, plain)
		for i, e := range edits {
			if e.site != nil {
				e.site.siteNewIdx = newIndex[i] + e.siteOff
				if e.site.Class == cfg.ClassCondLoopFwd {
					e.site.guardNewIdx = newIndex[i] + e.guardOff
				}
			}
			if e.loop != nil {
				e.loop.secallNewIdx = newIndex[i] + e.secallOff
			}
		}
		for _, site := range allLoops {
			if site.Func == fn.Name {
				site.condNewIdx = newIndex[site.condNewIdx]
			}
		}
	}
	if len(ven.Instrs) == 0 {
		ven.NOP()
	}
	prog.AddFunc(ven)

	img, err := asm.Layout(prog, opts.Base)
	if err != nil {
		return nil, err
	}
	out.Image = img
	out.Stats.Veneers = count
	out.Stats.CodeAfter = progCodeSize(prog)

	for _, site := range allSites {
		fn := prog.Func(site.Func)
		site.SiteAddr = fn.Instrs[site.siteNewIdx].Addr
		out.Sites[site.SiteAddr] = site
		if site.guardNewIdx >= 0 {
			site.GuardAddr = fn.Instrs[site.guardNewIdx].Addr
			out.Guards[site.GuardAddr] = site
		}
		if site.ref != nil {
			secall := ven.Instrs[site.ref.secallIdx]
			branch := ven.Instrs[site.ref.branchIdx]
			out.SiteTargets[secall.Addr] = branch.Target
			site.StaticTarget = branch.Target
		}
	}
	for _, site := range allLoops {
		fn := prog.Func(site.Func)
		site.CondAddr = fn.Instrs[site.condNewIdx].Addr
		out.LoopConds[site.CondAddr] = site
		if site.secallNewIdx >= 0 {
			site.SecallAddr = fn.Instrs[site.secallNewIdx].Addr
			out.Loops[site.SecallAddr] = site
		}
	}
	return out, nil
}

func qualify(fn *asm.Function, sym string) string {
	if _, ok := fn.Labels()[sym]; ok {
		return fn.Name + "." + sym
	}
	return sym
}

func progCodeSize(p *asm.Program) uint32 {
	var n uint32
	for _, f := range p.Funcs {
		n += f.Size()
	}
	return n
}
