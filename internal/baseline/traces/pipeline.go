package traces

import "raptrack/internal/trace/pipeline"

// Pipeline adapters: the TRACES baseline rides the unified trace-decode
// stack. Evidence serializes to the registered FormatTRACES log encoding
// (u32 count, then count destination words), decodes through the shared
// frontend with typed errors, and verifies via a PathDecoder — so the
// baseline and RAP-Track consume evidence through the same seam and a
// gateway can host both behind one decode path.

// EncodeLog serializes a destination-word stream to the TRACES log
// encoding — the canonical on-wire/on-disk form of baseline evidence.
func EncodeLog(words []uint32) []byte { return pipeline.EncodeTRACES(words) }

// DecodeLog strictly decodes a TRACES log, reporting framing defects as
// typed pipeline errors (Truncated / Misaligned / UnknownFormat).
func DecodeLog(b []byte) ([]uint32, *pipeline.Error) { return pipeline.DecodeTRACES(b) }

// Source exposes the run's evidence as a pipeline TraceSource. TRACES
// excludes capture loss by construction (the TEE log grows instead of
// wrapping), so the source never attests loss.
func (r *Result) Source() pipeline.TraceSource { return pipeline.TRACESLog(r.Evidence) }

// Decoder is the pipeline PathDecoder for TRACES evidence: the processed
// record stream's destination words feed the value-set pushdown verifier.
type Decoder struct {
	Out *Output
}

// DecodePath verifies the record stream against the instrumented
// artifact. A well-formed stream attesting a disallowed execution is a
// non-OK Verdict, not an error — matching the RAP-Track verifier's
// contract.
func (d Decoder) DecodePath(recs []pipeline.Rec) (*Verdict, error) {
	return Verify(d.Out, pipeline.Words(recs)), nil
}

// VerifyPipeline runs src through the decode stack (with any extra
// stages) and verifies the result — the one-call path a gateway uses.
func VerifyPipeline(out *Output, src pipeline.TraceSource, stages ...pipeline.PacketProcessor) (*Verdict, error) {
	return pipeline.Decode[*Verdict](pipeline.New(src, stages...), Decoder{Out: out})
}
