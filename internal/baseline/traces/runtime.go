package traces

import (
	"encoding/binary"
	"errors"
	"fmt"

	"raptrack/internal/cpu"
	"raptrack/internal/isa"
	"raptrack/internal/mem"
	"raptrack/internal/tz"
)

// Secure-World work cycle constants (aligned with internal/cfa so the two
// engines are comparable).
const (
	logAppendCycles   = 20
	hashCyclesPerByte = 13
	signFixedCycles   = 4000
)

// EntrySize is the TRACES CFLog entry size: one 32-bit destination word.
const EntrySize = 4

// Result summarizes one TRACES-instrumented run.
type Result struct {
	// Evidence is the full logged destination stream (across windows).
	Evidence    []uint32
	Cycles      uint64 // application cycles including instrumentation + SECALLs
	Steps       uint64
	SecureCalls uint64 // NS->S transitions taken
	Entries     uint64 // CFLog entries appended
	CFLogBytes  uint64
	Partials    int    // buffer-full report emissions
	PauseCycles uint64 // hash+sign work during report emission
	CodeBytes   uint32 // instrumented code footprint
}

// Config tunes a run.
type Config struct {
	SetupMem func(*mem.Memory)
	// BufferSize is the Secure CFLog capacity before a partial report
	// (default 4 KB, matching the RAP-Track MTB SRAM budget).
	BufferSize int
	// ContextSwitchCycles overrides the NS<->S round-trip cost.
	ContextSwitchCycles uint64
	MaxSteps            uint64
}

// Engine is the TRACES Secure-World runtime: SECALL-served logging into a
// TEE-protected CFLog with partial-report emission.
type Engine struct {
	out     *Output
	mem     *mem.Memory
	Gateway *tz.Gateway

	buf      []byte
	bufCap   int
	Entries  uint64
	Partials int
	// AllWords accumulates every logged destination across partial-report
	// windows (the Verifier-side view of the full evidence stream).
	AllWords []uint32
	// PauseCycles accumulates report emission (hash + sign) work.
	PauseCycles uint64
}

// NewEngine wires the secure runtime for an instrumented artifact.
func NewEngine(out *Output, m *mem.Memory, cfg Config) *Engine {
	bufCap := cfg.BufferSize
	if bufCap == 0 {
		bufCap = 4096
	}
	e := &Engine{
		out:     out,
		mem:     m,
		Gateway: tz.NewGateway(),
		bufCap:  bufCap,
	}
	if cfg.ContextSwitchCycles != 0 {
		e.Gateway.ContextSwitchCycles = cfg.ContextSwitchCycles
	}
	e.Gateway.Register(tz.SvcLogSite, e.svcLogSite)
	e.Gateway.Register(tz.SvcLogReg, e.svcLogReg)
	e.Gateway.Register(tz.SvcLogRet, e.svcLogRet)
	e.Gateway.Register(tz.SvcLogLR, e.svcLogLR)
	e.Gateway.Register(tz.SvcLogTable, e.svcLogTable)
	e.Gateway.Register(tz.SvcLogLoop, e.svcLogLoop)
	return e
}

func (e *Engine) append4(v uint32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
	e.AllWords = append(e.AllWords, v)
	e.Entries++
	if len(e.buf) >= e.bufCap {
		// Emit a partial report: hash + sign the window, then reset.
		e.PauseCycles += uint64(len(e.buf))*hashCyclesPerByte + signFixedCycles
		e.Partials++
		e.buf = e.buf[:0]
	}
}

func (e *Engine) svcLogSite(_ int32, regs *[16]uint32) (uint64, error) {
	dst, ok := e.out.SiteTargets[regs[isa.PC]]
	if !ok {
		return 0, fmt.Errorf("traces: SECALL at %#x has no site-target entry", regs[isa.PC])
	}
	e.append4(dst)
	return logAppendCycles, nil
}

func (e *Engine) svcLogReg(imm int32, regs *[16]uint32) (uint64, error) {
	e.append4(regs[tz.SvcArg(imm)&15])
	return logAppendCycles, nil
}

func (e *Engine) svcLogRet(imm int32, regs *[16]uint32) (uint64, error) {
	addr := regs[isa.SP] + uint32(tz.SvcArg(imm))
	v, err := e.mem.Read32(addr)
	if err != nil {
		return 0, err
	}
	e.append4(v &^ 1)
	return logAppendCycles, nil
}

func (e *Engine) svcLogLR(_ int32, regs *[16]uint32) (uint64, error) {
	e.append4(regs[isa.LR] &^ 1)
	return logAppendCycles, nil
}

func (e *Engine) svcLogTable(imm int32, regs *[16]uint32) (uint64, error) {
	arg := tz.SvcArg(imm)
	rn, rm := arg&15, arg>>4&15
	addr := regs[rn] + regs[rm]<<2
	v, err := e.mem.Read32(addr)
	if err != nil {
		return 0, err
	}
	e.append4(v &^ 1)
	return logAppendCycles, nil
}

func (e *Engine) svcLogLoop(_ int32, regs *[16]uint32) (uint64, error) {
	e.append4(regs[isa.R0])
	return logAppendCycles, nil
}

// Run executes the instrumented artifact under the TRACES engine.
func Run(out *Output, cfg Config) (*Result, error) {
	if out == nil {
		return nil, errors.New("traces: nil output")
	}
	m := mem.New()
	if cfg.SetupMem != nil {
		cfg.SetupMem(m)
	}
	eng := NewEngine(out, m, cfg)
	c, err := cpu.New(cpu.Config{Image: out.Image, Mem: m, Gateway: eng.Gateway})
	if err != nil {
		return nil, err
	}
	if err := c.Run(cfg.MaxSteps); err != nil {
		return nil, fmt.Errorf("traces: run: %w", err)
	}
	return &Result{
		Evidence:    eng.AllWords,
		Cycles:      c.Cycles,
		Steps:       c.Steps,
		SecureCalls: eng.Gateway.Calls,
		Entries:     eng.Entries,
		CFLogBytes:  eng.Entries * EntrySize,
		Partials:    eng.Partials,
		PauseCycles: eng.PauseCycles,
		CodeBytes:   out.Image.CodeSize,
	}, nil
}
