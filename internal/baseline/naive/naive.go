// Package naive implements the "naive MTB" CFA baseline of paper §I: the
// unmodified application runs with MTB_MASTER.TSTARTEN set, so the trace
// buffer records every taken non-sequential transfer — including the large
// population of deterministic branches a verifier does not need. It adds
// no runtime overhead (tracing is parallel), but CFLog grows 1.9-217x over
// instrumentation-based CFA, overflowing the 4 KB MTB SRAM and forcing
// frequent partial-report pauses.
package naive

import (
	"fmt"

	"raptrack/internal/asm"
	"raptrack/internal/cpu"
	"raptrack/internal/mem"
	"raptrack/internal/trace"
)

// Result summarizes one naive-MTB run.
type Result struct {
	Cycles     uint64 // application cycles (no instrumentation: equals baseline)
	Steps      uint64
	Transfers  uint64 // taken non-sequential transfers
	Packets    uint64 // MTB packets written (== Transfers)
	CFLogBytes uint64 // total evidence bytes generated
	Partials   int    // watermark-triggered report emissions (4 KB buffer)
	CodeBytes  uint32 // unmodified code footprint
}

// Config tunes a run.
type Config struct {
	// SetupMem prepares peripherals in the fresh memory system.
	SetupMem func(*mem.Memory)
	// MTBBufferSize defaults to the 4 KB M33 MTB SRAM.
	MTBBufferSize int
	// MaxSteps bounds execution (0: harness default).
	MaxSteps uint64
}

// Run executes prog with master-enabled MTB tracing and no code changes.
func Run(prog *asm.Program, cfg Config) (*Result, error) {
	img, err := asm.Layout(prog.Clone(), mem.NSCodeBase)
	if err != nil {
		return nil, fmt.Errorf("naive: layout: %w", err)
	}
	m := mem.New()
	if cfg.SetupMem != nil {
		cfg.SetupMem(m)
	}
	bufSize := cfg.MTBBufferSize
	if bufSize == 0 {
		bufSize = trace.DefaultBufferSize
	}
	mtb := trace.NewMTB(m, mem.SDataBase, bufSize)
	mtb.SetMaster(true)
	partials := 0
	if err := mtb.SetWatermark(bufSize); err != nil {
		return nil, err
	}
	mtb.OnWatermark = func() {
		partials++
		mtb.ResetPosition()
	}

	c, err := cpu.New(cpu.Config{Image: img, Mem: m, MTB: mtb})
	if err != nil {
		return nil, err
	}
	if err := c.Run(cfg.MaxSteps); err != nil {
		return nil, fmt.Errorf("naive: run: %w", err)
	}
	return &Result{
		Cycles:     c.Cycles,
		Steps:      c.Steps,
		Transfers:  c.TotalBranches(),
		Packets:    mtb.TotalPackets,
		CFLogBytes: mtb.TotalPackets * trace.PacketSize,
		Partials:   partials,
		CodeBytes:  img.CodeSize,
	}, nil
}
