package baseline

import (
	"reflect"
	"testing"

	"raptrack/internal/apps"
	"raptrack/internal/baseline/traces"
)

// Differential pipeline conformance for the TRACES baseline: verifying
// through the unified decode pipeline (TRACES log encoding -> shared
// frontend -> PathDecoder) must render a Verdict identical to calling
// the value-set verifier on the raw word stream, for every workload.
// Round-tripping the evidence through the on-wire log encoding must be
// lossless.
func TestTracesPipelineConformance(t *testing.T) {
	for _, a := range apps.All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			out, err := traces.Instrument(a.Build(), traces.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			res, err := traces.Run(out, traces.Config{SetupMem: a.SetupMem(), MaxSteps: a.MaxSteps})
			if err != nil {
				t.Fatal(err)
			}

			words, derr := traces.DecodeLog(traces.EncodeLog(res.Evidence))
			if derr != nil {
				t.Fatalf("log round-trip: %v", derr)
			}
			if !reflect.DeepEqual(words, res.Evidence) {
				t.Fatalf("log round-trip lost words: %d vs %d", len(words), len(res.Evidence))
			}

			legacy := traces.Verify(out, res.Evidence)
			piped, err := traces.VerifyPipeline(out, res.Source())
			if err != nil {
				t.Fatalf("pipeline verify: %v", err)
			}
			if !reflect.DeepEqual(legacy, piped) {
				t.Fatalf("verdict divergence:\nlegacy   %+v\npipeline %+v", legacy, piped)
			}
			if !piped.OK {
				t.Fatalf("rejected: %s", piped.Reason)
			}
		})
	}
}
