// Package baseline_test cross-checks the two comparison systems (naive MTB
// and TRACES instrumentation) against the plain runs on every workload.
package baseline_test

import (
	"testing"

	"raptrack/internal/apps"
	"raptrack/internal/baseline/naive"
	"raptrack/internal/baseline/traces"
	"raptrack/internal/mem"
	"raptrack/internal/trace"
)

func TestNaiveMatchesPlainSemantics(t *testing.T) {
	for _, a := range apps.All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			plain, plainDev, err := apps.RunPlain(a)
			if err != nil {
				t.Fatal(err)
			}
			var dev *apps.Devices
			res, err := naive.Run(a.Build(), naive.Config{
				SetupMem: func(m *mem.Memory) { dev = a.Setup(m) },
			})
			if err != nil {
				t.Fatalf("naive run: %v", err)
			}
			// Naive MTB adds zero cycles: tracing is parallel.
			if res.Cycles != plain.Cycles {
				t.Errorf("cycles: naive %d != plain %d", res.Cycles, plain.Cycles)
			}
			if res.Steps != plain.Steps {
				t.Errorf("steps: naive %d != plain %d", res.Steps, plain.Steps)
			}
			// Every taken transfer is logged at 8 bytes.
			if res.CFLogBytes != res.Transfers*trace.PacketSize {
				t.Errorf("cflog %d != transfers %d * 8", res.CFLogBytes, res.Transfers)
			}
			if res.Transfers == 0 {
				t.Error("no transfers recorded")
			}
			assertHostWords(t, plainDev, dev)
		})
	}
}

func TestTracesMatchesPlainSemantics(t *testing.T) {
	for _, a := range apps.All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			plain, plainDev, err := apps.RunPlain(a)
			if err != nil {
				t.Fatal(err)
			}
			out, err := traces.Instrument(a.Build(), traces.DefaultOptions())
			if err != nil {
				t.Fatalf("instrument: %v", err)
			}
			var dev *apps.Devices
			res, err := traces.Run(out, traces.Config{
				SetupMem: func(m *mem.Memory) { dev = a.Setup(m) },
			})
			if err != nil {
				t.Fatalf("traces run: %v", err)
			}
			if res.Cycles <= plain.Cycles {
				t.Errorf("TRACES cycles %d should exceed plain %d (context switches)", res.Cycles, plain.Cycles)
			}
			if res.Entries == 0 {
				t.Error("no CFLog entries")
			}
			if res.SecureCalls == 0 {
				t.Error("no secure calls")
			}
			if res.CodeBytes <= out.Stats.CodeBefore {
				t.Errorf("instrumented code %d should exceed original %d", res.CodeBytes, out.Stats.CodeBefore)
			}
			assertHostWords(t, plainDev, dev)
		})
	}
}

func assertHostWords(t *testing.T, want, got *apps.Devices) {
	t.Helper()
	if want == nil || got == nil || want.Host == nil {
		return
	}
	if len(got.Host.Words) != len(want.Host.Words) {
		t.Fatalf("host words differ: plain %v vs %v", want.Host.Words, got.Host.Words)
	}
	for i := range want.Host.Words {
		if got.Host.Words[i] != want.Host.Words[i] {
			t.Errorf("host word %d: plain %d, got %d", i, want.Host.Words[i], got.Host.Words[i])
		}
	}
}

// TestNaiveLogMuchLargerThanTraces checks the Fig. 1(a) relationship: the
// naive MTB CFLog dwarfs the instrumentation-based one.
func TestNaiveLogMuchLargerThanTraces(t *testing.T) {
	for _, name := range []string{"matmult", "ultrasonic", "syringe"} {
		a, err := apps.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		nres, err := naive.Run(a.Build(), naive.Config{SetupMem: a.SetupMem()})
		if err != nil {
			t.Fatal(err)
		}
		out, err := traces.Instrument(a.Build(), traces.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		tres, err := traces.Run(out, traces.Config{SetupMem: a.SetupMem()})
		if err != nil {
			t.Fatal(err)
		}
		if nres.CFLogBytes < 2*tres.CFLogBytes {
			t.Errorf("%s: naive CFLog %dB not >= 2x TRACES %dB", name, nres.CFLogBytes, tres.CFLogBytes)
		}
		t.Logf("%s: naive=%dB traces=%dB ratio=%.1f", name, nres.CFLogBytes, tres.CFLogBytes,
			float64(nres.CFLogBytes)/float64(tres.CFLogBytes))
	}
}

// TestTracesLosslessVerification reconstructs every workload's TRACES
// evidence (dst-only words) and checks exact consumption.
func TestTracesLosslessVerification(t *testing.T) {
	for _, a := range apps.All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			out, err := traces.Instrument(a.Build(), traces.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			res, err := traces.Run(out, traces.Config{SetupMem: a.SetupMem(), MaxSteps: a.MaxSteps})
			if err != nil {
				t.Fatal(err)
			}
			vd := traces.Verify(out, res.Evidence)
			if !vd.OK {
				t.Fatalf("rejected: %s (%d words, %d evals)", vd.Reason, vd.Words, vd.Evals)
			}
			// Tampered evidence must be rejected.
			if len(res.Evidence) > 2 {
				drop := traces.Verify(out, res.Evidence[:len(res.Evidence)-1])
				if drop.OK {
					t.Error("dropped-word evidence accepted")
				}
				// A small bit-flip is not guaranteed invalid: on table-jump
				// heavy workloads (dispatch) a +/-2 nudge of an indirect dst
				// can land on another in-function instruction, which the
				// escape policy deliberately allows. Clobber the word with a
				// value no site class accepts: out of every function range,
				// not an instruction, and an absurd loop entry value.
				mut := append([]uint32(nil), res.Evidence...)
				mut[len(mut)/2] = 0xFFFF_FFFD
				if v := traces.Verify(out, mut); v.OK {
					t.Error("mutated evidence accepted")
				}
			}
		})
	}
}
