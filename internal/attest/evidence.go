package attest

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
)

// Evidence file format: a challenge plus its full report chain, suitable
// for offline verification ("raptrack attest -out" / "raptrack verify").
//
//	magic "RTEV" | u32 version | challenge | u32 count | count x (u32 len | report)

var evidenceMagic = []byte("RTEV")

// evidenceVersion is bumped on layout changes.
const evidenceVersion = 1

// EncodeEvidence serializes a challenge and its report chain.
func EncodeEvidence(chal Challenge, reports []*Report) []byte {
	var b []byte
	b = append(b, evidenceMagic...)
	b = binary.LittleEndian.AppendUint32(b, evidenceVersion)
	cb := chal.Encode()
	b = binary.LittleEndian.AppendUint32(b, uint32(len(cb)))
	b = append(b, cb...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(reports)))
	for _, r := range reports {
		rb := r.Encode()
		b = binary.LittleEndian.AppendUint32(b, uint32(len(rb)))
		b = append(b, rb...)
	}
	return b
}

// ErrBadEvidence is returned for malformed evidence files.
var ErrBadEvidence = errors.New("attest: malformed evidence file")

// DecodeEvidence parses an evidence file.
func DecodeEvidence(b []byte) (Challenge, []*Report, error) {
	var chal Challenge
	if len(b) < 12 || !bytes.Equal(b[:4], evidenceMagic) {
		return chal, nil, ErrBadEvidence
	}
	if v := binary.LittleEndian.Uint32(b[4:]); v != evidenceVersion {
		return chal, nil, fmt.Errorf("%w: version %d (want %d)", ErrBadEvidence, v, evidenceVersion)
	}
	b = b[8:]
	take := func(n uint32) ([]byte, bool) {
		if uint32(len(b)) < n {
			return nil, false
		}
		out := b[:n]
		b = b[n:]
		return out, true
	}
	lenField := func() (uint32, bool) {
		f, ok := take(4)
		if !ok {
			return 0, false
		}
		return binary.LittleEndian.Uint32(f), true
	}

	n, ok := lenField()
	if !ok {
		return chal, nil, ErrBadEvidence
	}
	cb, ok := take(n)
	if !ok {
		return chal, nil, ErrBadEvidence
	}
	chal, err := DecodeChallenge(cb)
	if err != nil {
		return chal, nil, err
	}
	count, ok := lenField()
	if !ok || count > 1<<20 {
		return chal, nil, ErrBadEvidence
	}
	reports := make([]*Report, 0, count)
	for i := uint32(0); i < count; i++ {
		rl, ok := lenField()
		if !ok {
			return chal, nil, ErrBadEvidence
		}
		rb, ok := take(rl)
		if !ok {
			return chal, nil, ErrBadEvidence
		}
		r, err := DecodeReport(rb)
		if err != nil {
			return chal, nil, err
		}
		reports = append(reports, r)
	}
	if len(b) != 0 {
		return chal, nil, fmt.Errorf("%w: %d trailing bytes", ErrBadEvidence, len(b))
	}
	return chal, reports, nil
}

// Key returns the raw HMAC key material (for provisioning files).
func (h *HMACKey) Key() []byte { return append([]byte(nil), h.key...) }
