package attest

import (
	"bytes"
	"crypto/sha256"
	"fmt"
)

// ChainAssembler authenticates and orders a partial-report chain
// incrementally: a streaming Verifier feeds it one report per evidence
// slice and learns about a broken chain at the first report that breaks
// it, instead of after the final report has landed.
//
// The checks, their order, and the ChainError texts are exactly those of
// [AssembleChain] — which is itself implemented on top of this type — so
// a streamed session and a whole-chain verification reject identically.
// The only check that cannot be decided at Add time is the final-flag
// placement: a mid-chain report carrying Final is only provably misplaced
// once a successor arrives, so Add reports it on the *next* call (before
// looking at the new report, as the batch loop never reaches it either),
// and Finish reports a missing final flag on the last report.
type ChainAssembler struct {
	chal Challenge
	auth Authenticator

	n       int // reports accepted so far
	finalAt int // index of the report that carried Final (-1: none yet)
	hmem    [sha256.Size]byte
	log     []byte
}

// NewChainAssembler starts an empty chain for chal, authenticated by a.
func NewChainAssembler(chal Challenge, a Authenticator) *ChainAssembler {
	return &ChainAssembler{chal: chal, auth: a, finalAt: -1}
}

// Add authenticates r as the next report in the chain. A non-nil error is
// a *ChainError identical to what AssembleChain would return for the same
// prefix; the assembler is then poisoned only in the sense that the caller
// should stop feeding it (Add does not track poisoning itself).
func (ca *ChainAssembler) Add(r *Report) error {
	if ca.finalAt >= 0 {
		// The batch loop fails the earlier report's final-flag check before
		// ever examining this one.
		return &ChainError{Reason: fmt.Sprintf("report %d: misplaced final flag", ca.finalAt)}
	}
	i := ca.n
	if !VerifyReport(r, ca.auth) {
		return &ChainError{Reason: fmt.Sprintf("report %d: bad authenticator", i)}
	}
	if r.App != ca.chal.App {
		return &ChainError{Reason: fmt.Sprintf("report %d: app %q != challenge app %q", i, r.App, ca.chal.App)}
	}
	if r.Nonce != ca.chal.Nonce {
		return &ChainError{Reason: fmt.Sprintf("report %d: nonce mismatch (replay?)", i)}
	}
	if r.Seq != uint32(i) {
		return &ChainError{Reason: fmt.Sprintf("report %d: sequence %d out of order", i, r.Seq)}
	}
	if i == 0 {
		ca.hmem = r.HMem
	} else if !bytes.Equal(ca.hmem[:], r.HMem[:]) {
		return &ChainError{Reason: fmt.Sprintf("report %d: H_MEM changed mid-session", i)}
	}
	if r.Final {
		ca.finalAt = i
	}
	ca.log = append(ca.log, r.CFLog...)
	ca.n++
	return nil
}

// Finish closes the chain, returning the concatenated CFLog and the
// common H_MEM. It fails on an empty chain and on a chain whose last
// report did not carry the final flag, with the same errors AssembleChain
// produces.
func (ca *ChainAssembler) Finish() ([]byte, [sha256.Size]byte, error) {
	var zero [sha256.Size]byte
	if ca.n == 0 {
		return nil, zero, &ChainError{Reason: "empty"}
	}
	if ca.finalAt != ca.n-1 {
		return nil, zero, &ChainError{Reason: fmt.Sprintf("report %d: misplaced final flag", ca.n-1)}
	}
	return ca.log, ca.hmem, nil
}

// Len returns the number of reports accepted so far.
func (ca *ChainAssembler) Len() int { return ca.n }

// Sealed reports whether a Final report has been accepted.
func (ca *ChainAssembler) Sealed() bool { return ca.finalAt >= 0 }

// HMem returns the chain's common H_MEM (meaningful once Len() > 0).
func (ca *ChainAssembler) HMem() [sha256.Size]byte { return ca.hmem }

// Log returns the CFLog concatenated so far. The slice aliases the
// assembler's buffer; treat as read-only.
func (ca *ChainAssembler) Log() []byte { return ca.log }
