package attest

import (
	"bytes"
	"testing"
)

// FuzzDecodeChallenge feeds arbitrary bytes to the challenge decoder: no
// panic, and accepted inputs must round-trip through Encode.
func FuzzDecodeChallenge(f *testing.F) {
	chal, err := NewChallenge("prime")
	if err != nil {
		f.Fatal(err)
	}
	f.Add(chal.Encode())
	f.Add(Challenge{App: ""}.Encode())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, NonceSize+4))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := DecodeChallenge(data)
		if err != nil {
			return
		}
		if !bytes.Equal(c.Encode(), data) {
			t.Fatalf("re-encode mismatch: %x", data)
		}
	})
}

// FuzzDecodeReport feeds arbitrary bytes to the report decoder: no panic,
// and accepted inputs must round-trip through Encode (the encoding is
// canonical, so decode(encode(decode(x))) == decode(x) collapses to byte
// equality).
func FuzzDecodeReport(f *testing.F) {
	key, err := GenerateHMACKey()
	if err != nil {
		f.Fatal(err)
	}
	chal, err := NewChallenge("gps")
	if err != nil {
		f.Fatal(err)
	}
	r := &Report{
		App:   "gps",
		Nonce: chal.Nonce,
		Seq:   0,
		Final: true,
		CFLog: []byte{1, 2, 3, 4, 5, 6, 7, 8},
	}
	if err := SignReport(r, key); err != nil {
		f.Fatal(err)
	}
	f.Add(r.Encode())
	f.Add((&Report{}).Encode())
	f.Add((&Report{App: "x", Seq: 7}).Encode())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := DecodeReport(data)
		if err != nil {
			return
		}
		if !bytes.Equal(rep.Encode(), data) {
			t.Fatalf("re-encode mismatch: %x", data)
		}
	})
}
