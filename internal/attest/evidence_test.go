package attest

import (
	"bytes"
	"testing"
)

func TestEvidenceRoundTrip(t *testing.T) {
	key, _ := GenerateHMACKey()
	chal, err := NewChallenge("demo")
	if err != nil {
		t.Fatal(err)
	}
	chain := makeChain(t, key, chal, []byte{1, 2, 3}, []byte{4}, []byte{5, 6})
	raw := EncodeEvidence(chal, chain)

	gotChal, gotReports, err := DecodeEvidence(raw)
	if err != nil {
		t.Fatal(err)
	}
	if gotChal.App != chal.App || gotChal.Nonce != chal.Nonce {
		t.Errorf("challenge mismatch: %+v", gotChal)
	}
	if len(gotReports) != len(chain) {
		t.Fatalf("reports = %d", len(gotReports))
	}
	for i := range chain {
		if !bytes.Equal(gotReports[i].CFLog, chain[i].CFLog) ||
			gotReports[i].Seq != chain[i].Seq {
			t.Errorf("report %d mismatch", i)
		}
	}
	// The decoded chain still assembles and authenticates.
	if _, _, err := AssembleChain(gotReports, gotChal, key); err != nil {
		t.Errorf("decoded chain: %v", err)
	}
}

func TestEvidenceMalformed(t *testing.T) {
	key, _ := GenerateHMACKey()
	chal, _ := NewChallenge("demo")
	raw := EncodeEvidence(chal, makeChain(t, key, chal, []byte{1}))

	cases := map[string][]byte{
		"empty":       nil,
		"short":       raw[:6],
		"bad magic":   append([]byte("XXXX"), raw[4:]...),
		"bad version": append(append([]byte{}, raw[:4]...), append([]byte{9, 0, 0, 0}, raw[8:]...)...),
		"truncated":   raw[:len(raw)-3],
		"trailing":    append(append([]byte{}, raw...), 0xff),
	}
	for name, b := range cases {
		if _, _, err := DecodeEvidence(b); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestHMACKeyMaterialRoundTrip(t *testing.T) {
	key, _ := GenerateHMACKey()
	clone := NewHMACKey(key.Key())
	msg := []byte("message")
	a, _ := key.Sign(msg)
	if !clone.Verify(msg, a) {
		t.Error("key material round trip failed")
	}
}
