package attest

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func sampleReport() *Report {
	r := &Report{App: "demo", Seq: 3, Final: true, CFLog: []byte{1, 2, 3, 4, 5, 6, 7, 8}}
	for i := range r.Nonce {
		r.Nonce[i] = byte(i)
	}
	for i := range r.HMem {
		r.HMem[i] = byte(0xf0 | i&0xf)
	}
	r.Auth = []byte{9, 9, 9}
	return r
}

func TestReportEncodeDecodeRoundTrip(t *testing.T) {
	in := sampleReport()
	out, err := DecodeReport(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if out.App != in.App || out.Nonce != in.Nonce || out.Seq != in.Seq ||
		out.Final != in.Final || out.HMem != in.HMem ||
		!bytes.Equal(out.CFLog, in.CFLog) || !bytes.Equal(out.Auth, in.Auth) {
		t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
	}
}

func TestReportRoundTripProperty(t *testing.T) {
	f := func(app string, nonce [NonceSize]byte, seq uint32, final bool, log []byte, auth []byte) bool {
		in := &Report{App: app, Nonce: nonce, Seq: seq, Final: final, CFLog: log, Auth: auth}
		out, err := DecodeReport(in.Encode())
		if err != nil {
			return false
		}
		return out.App == in.App && out.Nonce == in.Nonce && out.Seq == in.Seq &&
			out.Final == in.Final && bytes.Equal(out.CFLog, in.CFLog) &&
			bytes.Equal(out.Auth, in.Auth)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDecodeReportMalformed(t *testing.T) {
	good := sampleReport().Encode()
	for _, n := range []int{0, 3, 10, len(good) - 1} {
		if _, err := DecodeReport(good[:n]); err == nil {
			t.Errorf("truncation to %d accepted", n)
		}
	}
	// Oversized length prefix.
	bad := append([]byte(nil), good...)
	bad[0] = 0xff
	bad[1] = 0xff
	if _, err := DecodeReport(bad); err == nil {
		t.Error("oversized body length accepted")
	}
}

func TestHMACSignVerify(t *testing.T) {
	key, err := GenerateHMACKey()
	if err != nil {
		t.Fatal(err)
	}
	r := sampleReport()
	if err := SignReport(r, key); err != nil {
		t.Fatal(err)
	}
	if !VerifyReport(r, key) {
		t.Fatal("genuine report rejected")
	}
	// Any field flip breaks the MAC.
	r.CFLog[0] ^= 1
	if VerifyReport(r, key) {
		t.Error("tampered CFLog accepted")
	}
	r.CFLog[0] ^= 1
	r.Seq++
	if VerifyReport(r, key) {
		t.Error("tampered Seq accepted")
	}
	r.Seq--
	r.Final = !r.Final
	if VerifyReport(r, key) {
		t.Error("tampered Final accepted")
	}
	r.Final = !r.Final
	// Wrong key.
	other := NewHMACKey([]byte("different key material........"))
	if VerifyReport(r, other) {
		t.Error("wrong key accepted")
	}
}

func TestEd25519SignVerify(t *testing.T) {
	signer, auth, err := GenerateEd25519()
	if err != nil {
		t.Fatal(err)
	}
	r := sampleReport()
	if err := SignReport(r, signer); err != nil {
		t.Fatal(err)
	}
	if !VerifyReport(r, auth) {
		t.Fatal("genuine signature rejected")
	}
	r.HMem[0] ^= 1
	if VerifyReport(r, auth) {
		t.Error("tampered H_MEM accepted")
	}
	if auth.Algorithm() != "ed25519" || signer.Algorithm() != "ed25519" {
		t.Error("algorithm labels")
	}
	if auth.Verify([]byte("m"), []byte("short")) {
		t.Error("malformed signature accepted")
	}
}

func makeChain(t *testing.T, key *HMACKey, chal Challenge, windows ...[]byte) []*Report {
	t.Helper()
	var hmem [32]byte
	hmem[0] = 0xaa
	out := make([]*Report, len(windows))
	for i, w := range windows {
		r := &Report{
			App: chal.App, Nonce: chal.Nonce, Seq: uint32(i),
			Final: i == len(windows)-1, HMem: hmem, CFLog: w,
		}
		if err := SignReport(r, key); err != nil {
			t.Fatal(err)
		}
		out[i] = r
	}
	return out
}

func TestAssembleChainHappyPath(t *testing.T) {
	key, _ := GenerateHMACKey()
	chal, err := NewChallenge("app")
	if err != nil {
		t.Fatal(err)
	}
	chain := makeChain(t, key, chal, []byte{1, 2}, []byte{3}, []byte{4, 5, 6})
	log, hmem, err := AssembleChain(chain, chal, key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(log, []byte{1, 2, 3, 4, 5, 6}) {
		t.Errorf("log = %v", log)
	}
	if hmem[0] != 0xaa {
		t.Error("hmem not propagated")
	}
}

func TestAssembleChainRejections(t *testing.T) {
	key, _ := GenerateHMACKey()
	chal, _ := NewChallenge("app")
	fresh := func() []*Report { return makeChain(t, key, chal, []byte{1}, []byte{2}, []byte{3}) }

	check := func(name string, mutate func([]*Report) []*Report, wantSub string) {
		t.Run(name, func(t *testing.T) {
			_, _, err := AssembleChain(mutate(fresh()), chal, key)
			if err == nil {
				t.Fatal("accepted")
			}
			if !strings.Contains(err.Error(), wantSub) {
				t.Errorf("err %q does not mention %q", err, wantSub)
			}
		})
	}

	check("empty", func(c []*Report) []*Report { return nil }, "empty")
	check("dropped window", func(c []*Report) []*Report { return append(c[:1], c[2:]...) }, "sequence")
	check("reordered", func(c []*Report) []*Report { c[0], c[1] = c[1], c[0]; return c }, "sequence")
	check("missing final", func(c []*Report) []*Report { return c[:2] }, "final")
	check("bad auth", func(c []*Report) []*Report { c[1].Auth[0] ^= 1; return c }, "authenticator")
	check("hmem drift", func(c []*Report) []*Report {
		c[2].HMem[5] ^= 1
		_ = SignReport(c[2], key)
		return c
	}, "H_MEM")
	check("wrong app", func(c []*Report) []*Report {
		c[0].App = "evil"
		_ = SignReport(c[0], key)
		return c
	}, "app")

	// Nonce replay: verify against a different challenge.
	other, _ := NewChallenge("app")
	if _, _, err := AssembleChain(fresh(), other, key); err == nil ||
		!strings.Contains(err.Error(), "nonce") {
		t.Errorf("replay err = %v", err)
	}
}

func TestChallengesAreFresh(t *testing.T) {
	a, _ := NewChallenge("x")
	b, _ := NewChallenge("x")
	if a.Nonce == b.Nonce {
		t.Error("two challenges share a nonce")
	}
}

// TestReportLossEvidence: the Wraps/Dropped loss counters survive the
// wire round trip and sit under the authenticator — a prover cannot
// quietly zero (or invent) loss evidence without breaking the MAC.
func TestReportLossEvidence(t *testing.T) {
	in := sampleReport()
	in.Wraps = 3
	in.Dropped = 17
	out, err := DecodeReport(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if out.Wraps != 3 || out.Dropped != 17 {
		t.Fatalf("round trip: wraps=%d dropped=%d", out.Wraps, out.Dropped)
	}

	key, err := GenerateHMACKey()
	if err != nil {
		t.Fatal(err)
	}
	if err := SignReport(in, key); err != nil {
		t.Fatal(err)
	}
	if !VerifyReport(in, key) {
		t.Fatal("genuine report rejected")
	}
	in.Wraps = 0
	if VerifyReport(in, key) {
		t.Error("zeroed Wraps accepted: loss evidence not signed")
	}
	in.Wraps = 3
	in.Dropped++
	if VerifyReport(in, key) {
		t.Error("tampered Dropped accepted: loss evidence not signed")
	}
}

// TestDecodeReportNonCanonicalFinal: the Final byte on the wire must be
// 0 or 1 — anything else cannot re-encode to the same bytes, so it is
// rejected instead of silently canonicalized.
func TestDecodeReportNonCanonicalFinal(t *testing.T) {
	r := sampleReport()
	r.Final = true
	enc := r.Encode()
	// The Final byte sits after bodyLen(4) + appLen(4) + app + nonce + seq(4).
	off := 4 + 4 + len(r.App) + NonceSize + 4
	if enc[off] != 1 {
		t.Fatalf("final byte not at offset %d", off)
	}
	enc[off] = 2
	if _, err := DecodeReport(enc); err == nil {
		t.Error("non-canonical Final byte accepted")
	}
}
