// Package attest defines the RA/CFA wire formats exchanged between the
// Prover's Root of Trust and the Verifier: challenges, (partial) reports,
// and the authentication primitives (HMAC-SHA256 for the symmetric setting,
// Ed25519 for the asymmetric one), following the protocol of paper §II-C:
// the report binds the challenge nonce, the program-memory measurement
// H_MEM and the control-flow log CFLog under a key held only by the RoT.
package attest

import (
	"crypto/ed25519"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// NonceSize is the challenge nonce size in bytes.
const NonceSize = 16

// Challenge is the Verifier's attestation request.
type Challenge struct {
	Nonce [NonceSize]byte
	App   string // name of the application to attest
}

// NewChallenge draws a fresh random challenge for app.
func NewChallenge(app string) (Challenge, error) {
	var c Challenge
	c.App = app
	if _, err := io.ReadFull(rand.Reader, c.Nonce[:]); err != nil {
		return Challenge{}, fmt.Errorf("attest: drawing nonce: %w", err)
	}
	return c, nil
}

// Encode serializes the challenge for transmission.
func (c Challenge) Encode() []byte {
	var b []byte
	b = append(b, c.Nonce[:]...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(c.App)))
	b = append(b, c.App...)
	return b
}

// ErrBadChallenge is returned for malformed challenge encodings.
var ErrBadChallenge = errors.New("attest: malformed challenge encoding")

// DecodeChallenge parses a serialized challenge.
func DecodeChallenge(b []byte) (Challenge, error) {
	var c Challenge
	if len(b) < NonceSize+4 {
		return c, ErrBadChallenge
	}
	copy(c.Nonce[:], b)
	n := binary.LittleEndian.Uint32(b[NonceSize:])
	rest := b[NonceSize+4:]
	if uint32(len(rest)) != n {
		return c, ErrBadChallenge
	}
	c.App = string(rest)
	return c, nil
}

// Report is one attestation report. A CFA session produces zero or more
// partial reports (emitted when the MTB watermark fires, §IV-E) followed by
// exactly one final report; Seq numbers them from zero and Final marks the
// last.
type Report struct {
	App   string
	Nonce [NonceSize]byte
	Seq   uint32
	Final bool
	// Wraps and Dropped are the RoT's own loss evidence for this report's
	// window: circular-buffer wraps past the watermark (each one
	// overwrote unreported packets) and packets lost during the TSTART
	// arming window. Both are signed, so a Verifier can distinguish
	// detectable trace loss (inconclusive) from a disallowed path (attack)
	// without trusting the transport. Zero in healthy sessions.
	Wraps   uint32
	Dropped uint32
	HMem    [sha256.Size]byte
	CFLog   []byte // raw packet stream for this report's window
	Auth    []byte // MAC or signature over the canonical encoding
}

// signedBytes is the canonical byte string authenticated by Auth.
func (r *Report) signedBytes() []byte {
	var b []byte
	b = binary.LittleEndian.AppendUint32(b, uint32(len(r.App)))
	b = append(b, r.App...)
	b = append(b, r.Nonce[:]...)
	b = binary.LittleEndian.AppendUint32(b, r.Seq)
	if r.Final {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = binary.LittleEndian.AppendUint32(b, r.Wraps)
	b = binary.LittleEndian.AppendUint32(b, r.Dropped)
	b = append(b, r.HMem[:]...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(r.CFLog)))
	b = append(b, r.CFLog...)
	return b
}

// Encode serializes the report including its authenticator.
func (r *Report) Encode() []byte {
	body := r.signedBytes()
	var b []byte
	b = binary.LittleEndian.AppendUint32(b, uint32(len(body)))
	b = append(b, body...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(r.Auth)))
	b = append(b, r.Auth...)
	return b
}

// ErrBadReport is returned for malformed report encodings.
var ErrBadReport = errors.New("attest: malformed report encoding")

// DecodeReport parses a serialized report.
func DecodeReport(b []byte) (*Report, error) {
	if len(b) < 4 {
		return nil, ErrBadReport
	}
	bodyLen := binary.LittleEndian.Uint32(b)
	rest := b[4:]
	if uint32(len(rest)) < bodyLen {
		return nil, ErrBadReport
	}
	body := rest[:bodyLen]
	rest = rest[bodyLen:]
	if len(rest) < 4 {
		return nil, ErrBadReport
	}
	authLen := binary.LittleEndian.Uint32(rest)
	rest = rest[4:]
	if uint32(len(rest)) != authLen {
		return nil, ErrBadReport
	}

	r := &Report{Auth: append([]byte(nil), rest...)}
	// Parse body.
	if len(body) < 4 {
		return nil, ErrBadReport
	}
	appLen := binary.LittleEndian.Uint32(body)
	body = body[4:]
	if uint32(len(body)) < appLen {
		return nil, ErrBadReport
	}
	r.App = string(body[:appLen])
	body = body[appLen:]
	if len(body) < NonceSize+4+1+4+4+sha256.Size+4 {
		return nil, ErrBadReport
	}
	copy(r.Nonce[:], body)
	body = body[NonceSize:]
	r.Seq = binary.LittleEndian.Uint32(body)
	body = body[4:]
	if body[0] > 1 {
		return nil, ErrBadReport // non-canonical Final flag
	}
	r.Final = body[0] == 1
	body = body[1:]
	r.Wraps = binary.LittleEndian.Uint32(body)
	body = body[4:]
	r.Dropped = binary.LittleEndian.Uint32(body)
	body = body[4:]
	copy(r.HMem[:], body)
	body = body[sha256.Size:]
	logLen := binary.LittleEndian.Uint32(body)
	body = body[4:]
	if uint32(len(body)) != logLen {
		return nil, ErrBadReport
	}
	r.CFLog = append([]byte(nil), body...)
	return r, nil
}

// Signer authenticates reports on the Prover side.
type Signer interface {
	// Sign returns the authenticator for msg.
	Sign(msg []byte) ([]byte, error)
	// Algorithm names the scheme ("hmac-sha256", "ed25519").
	Algorithm() string
}

// Authenticator verifies report authenticators on the Verifier side.
type Authenticator interface {
	Verify(msg, auth []byte) bool
	Algorithm() string
}

// HMACKey is a shared symmetric key implementing both Signer and
// Authenticator with HMAC-SHA256.
type HMACKey struct{ key []byte }

// NewHMACKey wraps key (copied).
func NewHMACKey(key []byte) *HMACKey {
	return &HMACKey{key: append([]byte(nil), key...)}
}

// GenerateHMACKey draws a random 32-byte key.
func GenerateHMACKey() (*HMACKey, error) {
	k := make([]byte, 32)
	if _, err := io.ReadFull(rand.Reader, k); err != nil {
		return nil, fmt.Errorf("attest: generating key: %w", err)
	}
	return &HMACKey{key: k}, nil
}

// Sign computes HMAC-SHA256 over msg.
func (h *HMACKey) Sign(msg []byte) ([]byte, error) {
	m := hmac.New(sha256.New, h.key)
	m.Write(msg)
	return m.Sum(nil), nil
}

// Verify checks an HMAC-SHA256 authenticator.
func (h *HMACKey) Verify(msg, auth []byte) bool {
	want, _ := h.Sign(msg)
	return hmac.Equal(want, auth)
}

// Algorithm returns "hmac-sha256".
func (h *HMACKey) Algorithm() string { return "hmac-sha256" }

// Ed25519Signer signs with an Ed25519 private key.
type Ed25519Signer struct{ priv ed25519.PrivateKey }

// Ed25519Authenticator verifies with the matching public key.
type Ed25519Authenticator struct{ pub ed25519.PublicKey }

// GenerateEd25519 creates a fresh signer/authenticator pair.
func GenerateEd25519() (*Ed25519Signer, *Ed25519Authenticator, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, nil, fmt.Errorf("attest: generating ed25519 key: %w", err)
	}
	return &Ed25519Signer{priv: priv}, &Ed25519Authenticator{pub: pub}, nil
}

// Sign produces an Ed25519 signature over msg.
func (s *Ed25519Signer) Sign(msg []byte) ([]byte, error) {
	return ed25519.Sign(s.priv, msg), nil
}

// Algorithm returns "ed25519".
func (s *Ed25519Signer) Algorithm() string { return "ed25519" }

// Verify checks an Ed25519 signature.
func (a *Ed25519Authenticator) Verify(msg, auth []byte) bool {
	return len(auth) == ed25519.SignatureSize && ed25519.Verify(a.pub, msg, auth)
}

// Algorithm returns "ed25519".
func (a *Ed25519Authenticator) Algorithm() string { return "ed25519" }

// SignReport fills r.Auth.
func SignReport(r *Report, s Signer) error {
	auth, err := s.Sign(r.signedBytes())
	if err != nil {
		return err
	}
	r.Auth = auth
	return nil
}

// VerifyReport checks r.Auth.
func VerifyReport(r *Report, a Authenticator) bool {
	return a.Verify(r.signedBytes(), r.Auth)
}

// ChainError describes a broken partial-report chain.
type ChainError struct{ Reason string }

func (e *ChainError) Error() string { return "attest: report chain: " + e.Reason }

// AssembleChain authenticates and orders a partial-report chain against a
// challenge, returning the concatenated CFLog and the common H_MEM. It is
// the whole-chain form of [ChainAssembler]; streaming verifiers feed the
// assembler directly and get identical errors at the earliest slice that
// can prove them.
func AssembleChain(reports []*Report, chal Challenge, a Authenticator) ([]byte, [sha256.Size]byte, error) {
	ca := NewChainAssembler(chal, a)
	for _, r := range reports {
		if err := ca.Add(r); err != nil {
			return nil, [sha256.Size]byte{}, err
		}
	}
	return ca.Finish()
}
