package isa

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Canonical encoding.
//
// Program-memory attestation (H_MEM) must change whenever any instruction
// field changes, so the encoding is injective over all fields that affect
// execution. It is NOT the Thumb bit encoding and its length is independent
// of Size(): layout uses Size(), hashing uses Encode(). Each record is:
//
//	u8  op
//	u8  cond
//	u8  rd, rn, rm
//	u8  flags (bit0: wide)
//	i32 imm (little endian)
//	u16 reglist
//	u32 target (resolved absolute address; 0 if none)
//	u16 len(sym) + sym bytes
//
// Symbolic references are retained so that pre-layout programs can also be
// fingerprinted deterministically.

const fixedEncLen = 1 + 1 + 3 + 1 + 4 + 2 + 4 + 2

// EncodedLen returns the canonical encoding length of i.
func (i Instr) EncodedLen() int { return fixedEncLen + len(i.Sym) }

// Encode appends the canonical encoding of i to dst and returns the result.
func (i Instr) Encode(dst []byte) []byte {
	var flags byte
	if i.Wide {
		flags |= 1
	}
	dst = append(dst, byte(i.Op), byte(i.Cond), byte(i.Rd), byte(i.Rn), byte(i.Rm), flags)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(i.Imm))
	dst = binary.LittleEndian.AppendUint16(dst, uint16(i.List))
	dst = binary.LittleEndian.AppendUint32(dst, i.Target)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(i.Sym)))
	dst = append(dst, i.Sym...)
	return dst
}

// ErrBadEncoding is returned by Decode for malformed input.
var ErrBadEncoding = errors.New("isa: bad instruction encoding")

// Decode parses one canonical instruction record from b, returning the
// instruction and the number of bytes consumed. Addr is not part of the
// encoding and is left zero.
func Decode(b []byte) (Instr, int, error) {
	if len(b) < fixedEncLen {
		return Instr{}, 0, fmt.Errorf("%w: %d bytes remaining", ErrBadEncoding, len(b))
	}
	var i Instr
	i.Op = Op(b[0])
	i.Cond = Cond(b[1])
	i.Rd = Reg(b[2])
	i.Rn = Reg(b[3])
	i.Rm = Reg(b[4])
	i.Wide = b[5]&1 != 0
	i.Imm = int32(binary.LittleEndian.Uint32(b[6:]))
	i.List = RegList(binary.LittleEndian.Uint16(b[10:]))
	i.Target = binary.LittleEndian.Uint32(b[12:])
	symLen := int(binary.LittleEndian.Uint16(b[16:]))
	if len(b) < fixedEncLen+symLen {
		return Instr{}, 0, fmt.Errorf("%w: symbol overruns buffer", ErrBadEncoding)
	}
	i.Sym = string(b[fixedEncLen : fixedEncLen+symLen])
	return i, fixedEncLen + symLen, nil
}
