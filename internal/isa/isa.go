// Package isa defines the instruction set executed by the simulated
// ARMv8-M-class CPU in internal/cpu.
//
// The instruction set is a structured model of the Thumb/Thumb-2 subset that
// matters for control-flow attestation: it preserves real register semantics
// (LR/SP/PC), condition codes, 16/32-bit instruction sizes (so code layout
// and code-size overheads are meaningful), and the full branch taxonomy the
// RAP-Track offline phase classifies (direct, conditional, call, indirect
// call, indirect jump, POP-to-PC and BX-LR returns, table jumps).
//
// Instructions are not bit-exact Thumb encodings. Layout and code-size
// accounting use Size (2 or 4 bytes, per Thumb norms), while hashing and
// program-memory attestation use Encode, a canonical, injective
// serialization of all instruction fields.
package isa

import "fmt"

// Reg names a CPU register. R0-R12 are general purpose; SP, LR and PC have
// their architectural roles.
type Reg uint8

// Architectural registers.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	SP // stack pointer
	LR // link register
	PC // program counter
)

// NumRegs is the size of the architectural register file.
const NumRegs = 16

func (r Reg) String() string {
	switch r {
	case SP:
		return "sp"
	case LR:
		return "lr"
	case PC:
		return "pc"
	default:
		return fmt.Sprintf("r%d", uint8(r))
	}
}

// Cond is a condition code as used by conditional branches.
type Cond uint8

// Condition codes (ARM order).
const (
	EQ Cond = iota // Z set
	NE             // Z clear
	CS             // C set (unsigned >=)
	CC             // C clear (unsigned <)
	MI             // N set
	PL             // N clear
	VS             // V set
	VC             // V clear
	HI             // unsigned >
	LS             // unsigned <=
	GE             // signed >=
	LT             // signed <
	GT             // signed >
	LE             // signed <=
	AL             // always
)

func (c Cond) String() string {
	names := [...]string{"eq", "ne", "cs", "cc", "mi", "pl", "vs", "vc",
		"hi", "ls", "ge", "lt", "gt", "le", ""}
	if int(c) < len(names) {
		return names[c]
	}
	return fmt.Sprintf("cond%d", uint8(c))
}

// Invert returns the opposite condition. Inverting AL is not meaningful and
// returns AL.
func (c Cond) Invert() Cond {
	if c == AL {
		return AL
	}
	// Conditions come in adjacent true/false pairs: EQ/NE, CS/CC, ...
	return c ^ 1
}

// Op is an operation code.
type Op uint8

// Operations. The comment shows the operand shape used by the executor.
const (
	OpInvalid Op = iota

	// Data processing.
	OpMOVr // MOV  Rd, Rm
	OpMOVi // MOV  Rd, #imm8 (0..255)
	OpMOVW // MOVW Rd, #imm16 (or :lower16:Sym)
	OpMOVT // MOVT Rd, #imm16 (or :upper16:Sym)
	OpMVN  // MVN  Rd, Rm
	OpADDi // ADD  Rd, Rn, #imm
	OpADDr // ADD  Rd, Rn, Rm
	OpSUBi // SUB  Rd, Rn, #imm
	OpSUBr // SUB  Rd, Rn, Rm
	OpRSBi // RSB  Rd, Rn, #imm (imm-Rn)
	OpMUL  // MUL  Rd, Rn, Rm
	OpUDIV // UDIV Rd, Rn, Rm
	OpSDIV // SDIV Rd, Rn, Rm
	OpANDr // AND  Rd, Rn, Rm
	OpORRr // ORR  Rd, Rn, Rm
	OpEORr // EOR  Rd, Rn, Rm
	OpBICr // BIC  Rd, Rn, Rm
	OpLSLi // LSL  Rd, Rn, #imm
	OpLSLr // LSL  Rd, Rn, Rm
	OpLSRi // LSR  Rd, Rn, #imm
	OpLSRr // LSR  Rd, Rn, Rm
	OpASRi // ASR  Rd, Rn, #imm
	OpCMPi // CMP  Rn, #imm
	OpCMPr // CMP  Rn, Rm
	OpTST  // TST  Rn, Rm
	OpADR  // ADR  Rd, Sym (PC-relative address of symbol)

	// Memory.
	OpLDRi  // LDR  Rd, [Rn, #imm]
	OpLDRr  // LDR  Rd, [Rn, Rm]
	OpLDRBi // LDRB Rd, [Rn, #imm]
	OpLDRBr // LDRB Rd, [Rn, Rm]
	OpLDRHi // LDRH Rd, [Rn, #imm]
	OpSTRi  // STR  Rd, [Rn, #imm]
	OpSTRr  // STR  Rd, [Rn, Rm]
	OpSTRBi // STRB Rd, [Rn, #imm]
	OpSTRBr // STRB Rd, [Rn, Rm]
	OpSTRHi // STRH Rd, [Rn, #imm]
	OpPUSH  // PUSH {reglist}
	OpPOP   // POP  {reglist} — a list containing PC is a return
	OpLDRPC // LDR  PC, [Rn, Rm, LSL #2] — computed table jump

	// Control flow.
	OpB   // B<cond> Sym — direct branch, conditional when Cond != AL
	OpBL  // BL  Sym — direct call (LR := return address)
	OpBLX // BLX Rm — indirect call through register
	OpBX  // BX  Rm — indirect branch; BX LR is a function return

	// System.
	OpNOP    // no operation
	OpSECALL // SECALL #imm — secure-gateway call into the Secure World
	OpHLT    // halt execution (test/bench harness sentinel)
	OpBKPT   // breakpoint — treated as a fault
)

var opNames = map[Op]string{
	OpMOVr: "mov", OpMOVi: "mov", OpMOVW: "movw", OpMOVT: "movt", OpMVN: "mvn",
	OpADDi: "add", OpADDr: "add", OpSUBi: "sub", OpSUBr: "sub", OpRSBi: "rsb",
	OpMUL: "mul", OpUDIV: "udiv", OpSDIV: "sdiv",
	OpANDr: "and", OpORRr: "orr", OpEORr: "eor", OpBICr: "bic",
	OpLSLi: "lsl", OpLSLr: "lsl", OpLSRi: "lsr", OpLSRr: "lsr", OpASRi: "asr",
	OpCMPi: "cmp", OpCMPr: "cmp", OpTST: "tst", OpADR: "adr",
	OpLDRi: "ldr", OpLDRr: "ldr", OpLDRBi: "ldrb", OpLDRBr: "ldrb", OpLDRHi: "ldrh",
	OpSTRi: "str", OpSTRr: "str", OpSTRBi: "strb", OpSTRBr: "strb", OpSTRHi: "strh",
	OpPUSH: "push", OpPOP: "pop", OpLDRPC: "ldrpc",
	OpB: "b", OpBL: "bl", OpBLX: "blx", OpBX: "bx",
	OpNOP: "nop", OpSECALL: "secall", OpHLT: "hlt", OpBKPT: "bkpt",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op%d", uint8(o))
}

// RegList is a bitmask of registers for PUSH/POP (bit i set == Ri included).
type RegList uint16

// Has reports whether r is in the list.
func (l RegList) Has(r Reg) bool { return l&(1<<r) != 0 }

// Count returns the number of registers in the list.
func (l RegList) Count() int {
	n := 0
	for v := uint16(l); v != 0; v &= v - 1 {
		n++
	}
	return n
}

// Regs builds a RegList from individual registers.
func Regs(rs ...Reg) RegList {
	var l RegList
	for _, r := range rs {
		l |= 1 << r
	}
	return l
}

func (l RegList) String() string {
	s := "{"
	first := true
	for r := R0; r <= PC; r++ {
		if l.Has(r) {
			if !first {
				s += ","
			}
			s += r.String()
			first = false
		}
	}
	return s + "}"
}

// Instr is one instruction. Sym holds a symbolic branch target or data
// symbol prior to layout; Target is the resolved absolute address after
// layout. Addr is the instruction's own address after layout.
type Instr struct {
	Op   Op
	Cond Cond
	Rd   Reg
	Rn   Reg
	Rm   Reg
	Imm  int32
	List RegList

	// Sym is a symbolic reference: the branch target of OpB/OpBL, the
	// symbol whose address half OpMOVW/OpMOVT loads, or the symbol OpADR
	// materializes.
	Sym string

	// Wide forces the 32-bit encoding. The RAP-Track linker sets it on
	// rewritten branches whose displacement exceeds the narrow range
	// (trampolines into the distant MTBAR region).
	Wide bool

	// Addr and Target are filled in by asm layout.
	Addr   uint32
	Target uint32
}

// Size returns the instruction's footprint in bytes (2 or 4), following
// Thumb norms: wide forms, MOVW/MOVT, BL, table jumps and SECALL gateways
// are 32-bit; common register forms are 16-bit.
func (i Instr) Size() uint32 {
	if i.Wide {
		return 4
	}
	switch i.Op {
	case OpMOVW, OpMOVT, OpBL, OpLDRPC, OpSECALL, OpADR, OpUDIV, OpSDIV:
		return 4
	case OpLDRi, OpSTRi, OpLDRBi, OpSTRBi, OpLDRHi, OpSTRHi:
		// Narrow loads/stores reach a limited immediate range.
		if i.Imm < 0 || i.Imm > 124 || i.Rn > R7 || i.Rd > R7 {
			return 4
		}
		return 2
	case OpADDi, OpSUBi:
		if i.Imm < 0 || i.Imm > 255 || i.Rd > R7 || i.Rn > R7 {
			return 4
		}
		return 2
	case OpMOVi, OpCMPi:
		if i.Imm < 0 || i.Imm > 255 || i.Rn > R7 || i.Rd > R7 {
			return 4
		}
		return 2
	case OpRSBi:
		return 4
	default:
		return 2
	}
}

// BranchKind classifies an instruction's control-flow behaviour. This is the
// taxonomy the RAP-Track offline phase (internal/cfg, internal/linker) works
// in.
type BranchKind uint8

// Branch kinds.
const (
	KindNone         BranchKind = iota // not a control transfer
	KindDirect                         // B (unconditional, fixed target)
	KindCond                           // B<cond> (fixed target, data-dependent direction)
	KindCall                           // BL (fixed target, pushes return in LR)
	KindIndirectCall                   // BLX Rm
	KindIndirectJump                   // BX Rm (Rm != LR), LDRPC table jump
	KindReturn                         // BX LR or POP {...,PC}
	KindSecureCall                     // SECALL (gateway into Secure World)
	KindHalt                           // HLT
)

func (k BranchKind) String() string {
	names := [...]string{"none", "direct", "cond", "call", "icall", "ijump",
		"return", "secall", "halt"}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("kind%d", uint8(k))
}

// Kind returns the instruction's BranchKind.
func (i Instr) Kind() BranchKind {
	switch i.Op {
	case OpB:
		if i.Cond == AL {
			return KindDirect
		}
		return KindCond
	case OpBL:
		return KindCall
	case OpBLX:
		return KindIndirectCall
	case OpBX:
		if i.Rm == LR {
			return KindReturn
		}
		return KindIndirectJump
	case OpLDRPC:
		return KindIndirectJump
	case OpPOP:
		if i.List.Has(PC) {
			return KindReturn
		}
		return KindNone
	case OpSECALL:
		return KindSecureCall
	case OpHLT:
		return KindHalt
	default:
		return KindNone
	}
}

// IsBranch reports whether the instruction can transfer control
// non-sequentially (excluding SECALL and HLT, which are handled by the
// secure-service and harness layers).
func (i Instr) IsBranch() bool {
	switch i.Kind() {
	case KindDirect, KindCond, KindCall, KindIndirectCall, KindIndirectJump, KindReturn:
		return true
	}
	return false
}

// WritesReg reports whether the instruction writes general register r
// (ignoring PC/SP side effects of branches and stack ops).
func (i Instr) WritesReg(r Reg) bool {
	switch i.Op {
	case OpMOVr, OpMOVi, OpMOVW, OpMOVT, OpMVN, OpADDi, OpADDr, OpSUBi, OpSUBr,
		OpRSBi, OpMUL, OpUDIV, OpSDIV, OpANDr, OpORRr, OpEORr, OpBICr,
		OpLSLi, OpLSLr, OpLSRi, OpLSRr, OpASRi, OpADR,
		OpLDRi, OpLDRr, OpLDRBi, OpLDRBr, OpLDRHi:
		return i.Rd == r
	case OpPOP:
		return i.List.Has(r)
	case OpBL, OpBLX:
		return r == LR
	}
	return false
}

// AccessesMemory reports whether the instruction loads or stores data
// memory.
func (i Instr) AccessesMemory() bool {
	switch i.Op {
	case OpLDRi, OpLDRr, OpLDRBi, OpLDRBr, OpLDRHi,
		OpSTRi, OpSTRr, OpSTRBi, OpSTRBr, OpSTRHi,
		OpPUSH, OpPOP, OpLDRPC:
		return true
	}
	return false
}

func (i Instr) String() string {
	name := i.Op.String()
	if i.Op == OpB && i.Cond != AL {
		name += i.Cond.String()
	}
	tgt := i.Sym
	if tgt == "" && i.Target != 0 {
		tgt = fmt.Sprintf("%#x", i.Target)
	}
	switch i.Op {
	case OpNOP, OpHLT, OpBKPT:
		return name
	case OpB, OpBL:
		return fmt.Sprintf("%s %s", name, tgt)
	case OpBX, OpBLX:
		return fmt.Sprintf("%s %s", name, i.Rm)
	case OpPUSH, OpPOP:
		return fmt.Sprintf("%s %s", name, i.List)
	case OpSECALL:
		return fmt.Sprintf("%s #%d", name, i.Imm)
	case OpMOVr, OpMVN:
		return fmt.Sprintf("%s %s, %s", name, i.Rd, i.Rm)
	case OpMOVi:
		return fmt.Sprintf("%s %s, #%d", name, i.Rd, i.Imm)
	case OpMOVW, OpMOVT:
		if i.Sym != "" {
			half := ":lower16:"
			if i.Op == OpMOVT {
				half = ":upper16:"
			}
			return fmt.Sprintf("%s %s, %s%s", name, i.Rd, half, i.Sym)
		}
		return fmt.Sprintf("%s %s, #%d", name, i.Rd, i.Imm)
	case OpADR:
		return fmt.Sprintf("%s %s, %s", name, i.Rd, tgt)
	case OpCMPi:
		return fmt.Sprintf("%s %s, #%d", name, i.Rn, i.Imm)
	case OpCMPr, OpTST:
		return fmt.Sprintf("%s %s, %s", name, i.Rn, i.Rm)
	case OpADDi, OpSUBi, OpRSBi, OpLSLi, OpLSRi, OpASRi:
		return fmt.Sprintf("%s %s, %s, #%d", name, i.Rd, i.Rn, i.Imm)
	case OpADDr, OpSUBr, OpMUL, OpUDIV, OpSDIV, OpANDr, OpORRr, OpEORr, OpBICr, OpLSLr, OpLSRr:
		return fmt.Sprintf("%s %s, %s, %s", name, i.Rd, i.Rn, i.Rm)
	case OpLDRi, OpLDRBi, OpLDRHi:
		return fmt.Sprintf("%s %s, [%s, #%d]", name, i.Rd, i.Rn, i.Imm)
	case OpLDRr, OpLDRBr:
		return fmt.Sprintf("%s %s, [%s, %s]", name, i.Rd, i.Rn, i.Rm)
	case OpSTRi, OpSTRBi, OpSTRHi:
		return fmt.Sprintf("%s %s, [%s, #%d]", name, i.Rd, i.Rn, i.Imm)
	case OpSTRr, OpSTRBr:
		return fmt.Sprintf("%s %s, [%s, %s]", name, i.Rd, i.Rn, i.Rm)
	case OpLDRPC:
		return fmt.Sprintf("%s [%s, %s, lsl #2]", name, i.Rn, i.Rm)
	default:
		return name
	}
}
